package capri

// Telemetry observer-equivalence and overhead tests (DESIGN.md §4j): the
// live telemetry bus must be a pure observer. Arming it — or attaching a
// full bus with an HTTP sampler scraping mid-run — must leave every
// simulated observable byte-identical, and the disarmed hot path must not
// allocate a single extra object versus the armed one (publishing is
// atomic adds only; the off state is one pointer load per run).

import (
	"net/http"
	"reflect"
	"testing"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/prog"
	"capri/internal/progen"
	"capri/internal/telemetry"
	"capri/internal/workload"
)

// telemetryProgram compiles one small two-thread generated program — enough
// work to cross the machine's telemetry publish interval on the threaded
// core while keeping the armed/disarmed matrix fast.
func telemetryProgram(t *testing.T) *prog.Program {
	t.Helper()
	src := progen.Generate(11, progen.Config{Funcs: 3, MaxDepth: 3, MaxStmts: 5, MaxLoopTrip: 6, Threads: 2})
	res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, 64))
	if err != nil {
		t.Fatal(err)
	}
	return res.Program
}

// TestDispatchEquivalenceTelemetry runs both dispatch cores on a paper
// benchmark and a generated program with machine telemetry disarmed,
// armed, and armed with a live bus being scraped — the images, the full
// stats, and the audit event digests must be identical in all three.
func TestDispatchEquivalenceTelemetry(t *testing.T) {
	telemetry.DisableMachine()
	b, err := workload.ByName("genome")
	if err != nil {
		t.Fatal(err)
	}
	bres, err := compile.Compile(b.Build(benchScale), compile.OptionsForLevel(compile.LevelLICM, 256))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name      string
		p         *prog.Program
		threads   int
		threshold int
	}{
		{"genome", bres.Program, b.Threads, 256},
		{"progen-mt2", telemetryProgram(t), 2, 64},
	}
	for _, tc := range cases {
		for _, disp := range []machine.DispatchMode{machine.DispatchThreaded, machine.DispatchSwitch} {
			cfg := diffConfig(tc.threads, tc.threshold, false)
			cfg.Dispatch = disp
			what := tc.name + "/" + disp.String()

			offImg, offStats, offDig := dispatchRun(t, what+" disarmed", tc.p, tc.threads, cfg, true)

			telemetry.EnableMachine()
			onImg, onStats, onDig := dispatchRun(t, what+" armed", tc.p, tc.threads, cfg, true)
			telemetry.DisableMachine()

			bus, err := telemetry.Start(telemetry.Options{Listen: "127.0.0.1:0"})
			if err != nil {
				t.Fatal(err)
			}
			busImg, busStats, busDig := dispatchRun(t, what+" bus", tc.p, tc.threads, cfg, true)
			if resp, err := http.Get("http://" + bus.Addr() + "/metrics"); err != nil {
				t.Errorf("%s: scrape: %v", what, err)
			} else {
				resp.Body.Close()
			}
			bus.Stop()

			requireIdentical(t, what+" armed vs disarmed", onImg, offImg)
			requireIdentical(t, what+" bus vs disarmed", busImg, offImg)
			if !reflect.DeepEqual(onStats, offStats) {
				t.Errorf("%s: armed stats diverge:\n  off %+v\n  on  %+v", what, offStats, onStats)
			}
			if !reflect.DeepEqual(busStats, offStats) {
				t.Errorf("%s: bus stats diverge:\n  off %+v\n  bus %+v", what, offStats, busStats)
			}
			if onDig != offDig || busDig != offDig {
				t.Errorf("%s: audit streams diverge: off %d events (%#x), on %d (%#x), bus %d (%#x)",
					what, offDig.n, offDig.sum, onDig.n, onDig.sum, busDig.n, busDig.sum)
			}
		}
	}
}

// TestTelemetryZeroAllocWhenOff counter-asserts the zero-overhead-when-off
// contract: a full machine run allocates exactly the same number of
// objects with telemetry disarmed as armed. Publishing is atomic adds
// into preallocated snapshot structs, and the disarmed gate is one
// pointer load — neither side may put anything on the heap.
func TestTelemetryZeroAllocWhenOff(t *testing.T) {
	telemetry.DisableMachine()
	p := telemetryProgram(t)
	cfg := diffConfig(2, 64, false)
	run := func() {
		m, err := machine.New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm any process-global caches before counting
	off := testing.AllocsPerRun(5, run)
	telemetry.EnableMachine()
	on := testing.AllocsPerRun(5, run)
	telemetry.DisableMachine()
	if off != on {
		t.Errorf("telemetry arming changed the run's allocation count: disarmed %.0f, armed %.0f", off, on)
	}
}
