package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"capri/internal/audit"
	"capri/internal/fault"
	"capri/internal/machine"
)

// writeRecord builds a deterministic capri/run-record/v1 file from a
// synthetic event stream, optionally embedding a fault plan.
func writeTestRecord(t *testing.T, dir, name string, events []audit.Event, plan *fault.Plan) string {
	t.Helper()
	rec := audit.NewFlightRecorder(0)
	aud := audit.NewAuditor(audit.Options{ProxyLatency: 40, Windows: true})
	aud.AttachRecorder(rec)
	sink := audit.Tee(rec, aud)
	for _, e := range events {
		sink.Tap(e)
	}
	rr, err := audit.NewRunRecordFull(rec, aud, "synthetic", "cafe", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		b, err := json.Marshal(plan)
		if err != nil {
			t.Fatal(err)
		}
		rr.Faults = b
	}
	path := filepath.Join(dir, name)
	if err := rr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func testEvents() []audit.Event {
	const addr = uint64(0x100000)
	return []audit.Event{
		{Kind: audit.EvStore, Core: 0, Cycle: 10, Addr: addr, Seq: 1, Region: 1, Val: 7},
		{Kind: audit.EvCommit, Core: 0, Cycle: 12, Region: 1},
		{Kind: audit.EvCrash, Cycle: 40},
		{Kind: audit.EvTornDrainWrite, Core: 0, Cycle: 40, Addr: addr, Seq: 1, Region: 1, Val: 7, Flags: audit.FlagApplied},
	}
}

func testPlan() fault.Plan {
	return fault.Plan{
		Schema:  fault.PlanSchema,
		Target:  fault.Target{Synth: "rmwsweep", Threshold: 64},
		Seed:    9,
		CrashAt: 300,
		Faults: []fault.Fault{
			{Kind: fault.KindTornDrain, Core: 0, Keep: 2},
			{Kind: fault.KindRecoveryCrash, Step: 5},
		},
	}
}

// TestSummaryRendersFaultPlan: summary of a record with an embedded fault
// plan matches the golden rendering — identity, audit verdict, the injected
// faults, and the event census.
func TestSummaryRendersFaultPlan(t *testing.T) {
	plan := testPlan()
	path := writeTestRecord(t, t.TempDir(), "a.json", testEvents(), &plan)
	r, err := audit.ReadRunRecord(path)
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := runSummary(&out, []string{path}); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`schema       capri/run-record/v1
workload     synthetic
fingerprint  cafe
events       4 total, 4 retained, 0 dropped from the ring
digest       %s  (over the complete stream)
audit        ok: 4 events, 0 violations
faults       rmwsweep crash@300, 2 injected (plan seed 9)
  inject       torn-drain(core=0,keep=2)
  inject       recovery-crash(step=5)
cycle span   10 .. 40 (retained tail)
event census (retained tail):
  store                   1
  commit                  1
  crash                   1
  torn-drain              1
`, r.Digest)
	if got := out.String(); got != want {
		t.Errorf("summary golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSummaryRendersPercentiles: a record carrying a histogram payload gets
// the p50/p99/p999 table; histograms with no samples are omitted from it.
func TestSummaryRendersPercentiles(t *testing.T) {
	path := writeTestRecord(t, t.TempDir(), "m.json", testEvents(), nil)
	r, err := audit.ReadRunRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	var m machine.Metrics
	for i := uint64(1); i <= 1000; i++ {
		m.CommitLat.Record(i)
	}
	m.WPQDepth.Record(3)
	if err := r.SetMetrics(&m); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := runSummary(&out, []string{path}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// 1..1000: p50 falls in bucket [256,512) -> upper bound 511; p99 and
	// p999 in [512,1024) -> clamped to Max=1000.
	wantLat := fmt.Sprintf("  %-20s %10d %8d %8d %8d %8d\n", "commit latency", 1000, 511, 1000, 1000, 1000)
	if !strings.Contains(got, wantLat) {
		t.Errorf("summary missing commit-latency percentile row %q:\n%s", wantLat, got)
	}
	wantWPQ := fmt.Sprintf("  %-20s %10d %8d %8d %8d %8d\n", "WPQ depth", 1, 3, 3, 3, 3)
	if !strings.Contains(got, wantWPQ) {
		t.Errorf("summary missing WPQ percentile row %q:\n%s", wantWPQ, got)
	}
	if strings.Contains(got, "front-end occupancy") {
		t.Errorf("empty histogram rendered a percentile row:\n%s", got)
	}

	// Records without a metrics payload print no percentile section.
	bare := writeTestRecord(t, t.TempDir(), "bare.json", testEvents(), nil)
	out.Reset()
	if err := runSummary(&out, []string{bare}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "percentiles") {
		t.Errorf("metrics-less record rendered a percentile section:\n%s", out.String())
	}
}

// TestDiffTreatsPlansAsIdentity: records under different fault plans are
// flagged as different experiments; identical plans are confirmed.
func TestDiffTreatsPlansAsIdentity(t *testing.T) {
	dir := t.TempDir()
	planA := testPlan()
	planB := testPlan()
	planB.CrashAt = 700
	planB.Faults = planB.Faults[:1]
	a := writeTestRecord(t, dir, "a.json", testEvents(), &planA)
	b := writeTestRecord(t, dir, "b.json", testEvents(), &planB)
	same := writeTestRecord(t, dir, "same.json", testEvents(), &planA)
	ra, err := audit.ReadRunRecord(a)
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := runDiff(&out, []string{a, b}); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`identical event streams (digest %s)
fault plans differ — different experiments, not a regression:
  a: rmwsweep crash@300 torn-drain(core=0,keep=2) recovery-crash(step=5)
  b: rmwsweep crash@700 torn-drain(core=0,keep=2)
machine statistics identical
`, ra.Digest)
	if got := out.String(); got != want {
		t.Errorf("diff golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	out.Reset()
	if err := runDiff(&out, []string{a, same}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(),
		"identical fault plans (rmwsweep crash@300 torn-drain(core=0,keep=2) recovery-crash(step=5))") {
		t.Errorf("identical plans not confirmed:\n%s", out.String())
	}
}

// TestDiffNoPlansStaysQuiet: records without fault plans print no plan line
// (the common non-campaign diff is unchanged).
func TestDiffNoPlansStaysQuiet(t *testing.T) {
	dir := t.TempDir()
	a := writeTestRecord(t, dir, "a.json", testEvents(), nil)
	b := writeTestRecord(t, dir, "b.json", testEvents(), nil)
	var out bytes.Buffer
	if err := runDiff(&out, []string{a, b}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "fault plan") {
		t.Errorf("plan line printed for plan-less records:\n%s", out.String())
	}
}
