// Command capriinspect examines capri/run-record/v1 provenance records
// written by `caprisim -record-out`, `capribench -audit -record-out` and
// `capricrash -record-out`.
//
// Usage:
//
//	capriinspect summary run.json            # identity, verdict, percentiles, event census
//	capriinspect line 0x1040 run.json        # one cache line's event history
//	capriinspect regions run.json [core]     # per-region commit/drain timeline
//	capriinspect diff a.json b.json          # record-vs-record stat diff
//
// `line` prints the full retained provenance chain of one cache line — every
// store, proxy launch/arrival, writeback, drain write, NVM read, and recovery
// action touching it, in stream order. `regions` reconstructs the region
// timeline (commit → boundary launch → phase-2 drain) from the same stream.
// `diff` compares two records' event censuses and machine statistics, for
// before/after runs of the same workload.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"strconv"

	"capri/internal/audit"
	"capri/internal/fault"
	"capri/internal/machine"
	"capri/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch cmd, args := os.Args[1], os.Args[2:]; cmd {
	case "summary":
		err = runSummary(os.Stdout, args)
	case "line":
		err = runLine(os.Stdout, args)
	case "regions":
		err = runRegions(os.Stdout, args)
	case "diff":
		err = runDiff(os.Stdout, args)
	case "-h", "-help", "--help", "help":
		usage()
	default:
		err = fmt.Errorf("capriinspect: unknown command %q (have summary, line, regions, diff)", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  capriinspect summary <run.json>
  capriinspect line <addr> <run.json>
  capriinspect regions <run.json> [core]
  capriinspect diff <a.json> <b.json>
`)
	os.Exit(2)
}

func runSummary(w io.Writer, args []string) error {
	if len(args) != 1 {
		usage()
	}
	r, err := audit.ReadRunRecord(args[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "schema       %s\n", r.Schema)
	if r.Name != "" {
		fmt.Fprintf(w, "workload     %s\n", r.Name)
	}
	if r.Fingerprint != "" {
		fmt.Fprintf(w, "fingerprint  %s\n", r.Fingerprint)
	}
	fmt.Fprintf(w, "events       %d total, %d retained, %d dropped from the ring\n",
		r.EventsTotal, r.EventsKept, r.Dropped)
	fmt.Fprintf(w, "digest       %s  (over the complete stream)\n", r.Digest)
	switch {
	case r.Audit == nil || !r.Audit.Enabled:
		fmt.Fprintf(w, "audit        not run\n")
	case r.Audit.Violations == 0:
		fmt.Fprintf(w, "audit        ok: %d events, 0 violations\n", r.Audit.Events)
	default:
		fmt.Fprintf(w, "audit        FAILED: %d violations in %d events\n", r.Audit.Violations, r.Audit.Events)
		fmt.Fprintf(w, "  first rule   %s\n", r.Audit.FirstRule)
		fmt.Fprintf(w, "  first detail %s\n", r.Audit.FirstDetail)
	}
	if len(r.Faults) > 0 {
		plan, err := decodePlan(r.Faults)
		if err != nil {
			fmt.Fprintf(w, "faults       unreadable plan: %v\n", err)
		} else {
			fmt.Fprintf(w, "faults       %s crash@%d, %d injected (plan seed %d)\n",
				plan.Target.Name(), plan.CrashAt, len(plan.Faults), plan.Seed)
			for _, f := range plan.Faults {
				fmt.Fprintf(w, "  inject       %s\n", f)
			}
		}
	}
	if err := summarizeMetrics(w, r.Metrics); err != nil {
		return err
	}
	events := r.DecodedEvents()
	if len(events) > 0 {
		fmt.Fprintf(w, "cycle span   %d .. %d (retained tail)\n", events[0].Cycle, events[len(events)-1].Cycle)
	}
	fmt.Fprintf(w, "event census (retained tail):\n")
	for k, n := range censusOf(events) {
		if n > 0 {
			fmt.Fprintf(w, "  %-14s %10d\n", audit.Kind(k), n)
		}
	}
	perCoreBreakdown(w, events)
	return nil
}

// perCoreBreakdown prints one row per core: total events plus the columns
// that show how the protocol load was spread — stores, region commits,
// phase-2 drains and their NVM writes, synchronizing stores, and recovery
// redo/undo work. On a multi-core contention run this is where cross-core
// skew (one core draining far more than its peers) becomes visible.
func perCoreBreakdown(w io.Writer, events []audit.Event) {
	type row struct {
		total, stores, commits, drains, drainWr, syncs, recov uint64
	}
	rows := map[int32]*row{}
	for _, e := range events {
		r := rows[e.Core]
		if r == nil {
			r = &row{}
			rows[e.Core] = r
		}
		r.total++
		switch e.Kind {
		case audit.EvStore:
			r.stores++
		case audit.EvCommit:
			r.commits++
		case audit.EvDrain:
			r.drains++
		case audit.EvDrainWrite, audit.EvTornDrainWrite:
			r.drainWr++
		case audit.EvSync:
			r.syncs++
		case audit.EvRecoveryRedoWrite, audit.EvRecoveryRedo, audit.EvRecoveryUndo:
			r.recov++
		}
	}
	if len(rows) < 2 {
		return // single-core runs: the global census already says it all
	}
	cores := make([]int32, 0, len(rows))
	for c := range rows {
		cores = append(cores, c)
	}
	sort.Slice(cores, func(i, j int) bool { return cores[i] < cores[j] })
	fmt.Fprintf(w, "per-core events (retained tail):\n")
	fmt.Fprintf(w, "  %-5s %10s %10s %10s %10s %10s %10s %10s\n",
		"core", "total", "stores", "commits", "drains", "drain-wr", "syncs", "recovery")
	for _, c := range cores {
		r := rows[c]
		fmt.Fprintf(w, "  %-5d %10d %10d %10d %10d %10d %10d %10d\n",
			c, r.total, r.stores, r.commits, r.drains, r.drainWr, r.syncs, r.recov)
	}
}

// summarizeMetrics renders the tail-latency report from the record's
// embedded histogram payload (caprisim -record-out collects it): p50/p99/
// p999 of commit latency and the buffer occupancies. Records without a
// metrics payload (older records, capricrash records) print nothing.
func summarizeMetrics(w io.Writer, raw json.RawMessage) error {
	if len(raw) == 0 {
		return nil
	}
	var m machine.Metrics
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("capriinspect: unreadable metrics payload: %w", err)
	}
	rows := []struct {
		name string
		h    *stats.Hist
	}{
		{"commit latency", &m.CommitLat},
		{"front-end occupancy", &m.FrontOcc},
		{"back-end occupancy", &m.BackOcc},
		{"path in flight", &m.PathInFlight},
		{"WPQ depth", &m.WPQDepth},
		{"drain-bank depth", &m.DrainQueue},
	}
	printed := false
	for _, r := range rows {
		if r.h.Count == 0 {
			continue
		}
		if !printed {
			fmt.Fprintf(w, "percentiles  (power-of-two bucket upper bounds)\n")
			fmt.Fprintf(w, "  %-20s %10s %8s %8s %8s %8s\n", "metric", "samples", "p50", "p99", "p999", "max")
			printed = true
		}
		fmt.Fprintf(w, "  %-20s %10d %8d %8d %8d %8d\n", r.name, r.h.Count,
			r.h.Percentile(50), r.h.Percentile(99), r.h.Percentile(99.9), r.h.Max)
	}
	return nil
}

func censusOf(events []audit.Event) [audit.NumKinds]uint64 {
	var census [audit.NumKinds]uint64
	for _, e := range events {
		census[e.Kind]++
	}
	return census
}

func runLine(w io.Writer, args []string) error {
	if len(args) != 2 {
		usage()
	}
	addr, err := strconv.ParseUint(args[0], 0, 64)
	if err != nil {
		return fmt.Errorf("capriinspect: bad address %q: %w", args[0], err)
	}
	r, err := audit.ReadRunRecord(args[1])
	if err != nil {
		return err
	}
	line := addr &^ 63
	n := 0
	for _, e := range r.DecodedEvents() {
		if !e.HasAddr() || e.Line() != line {
			continue
		}
		n++
		fmt.Fprintln(w, e)
	}
	if n == 0 {
		return fmt.Errorf("capriinspect: no retained events touch line %#x (of %d kept; %d dropped from the ring)",
			line, r.EventsKept, r.Dropped)
	}
	fmt.Fprintf(w, "-- %d events on line %#x\n", n, line)
	return nil
}

func runRegions(w io.Writer, args []string) error {
	if len(args) != 1 && len(args) != 2 {
		usage()
	}
	r, err := audit.ReadRunRecord(args[0])
	if err != nil {
		return err
	}
	core := int64(-1)
	if len(args) == 2 {
		c, err := strconv.ParseInt(args[1], 0, 32)
		if err != nil {
			return fmt.Errorf("capriinspect: bad core %q: %w", args[1], err)
		}
		core = c
	}
	n := 0
	for _, e := range r.DecodedEvents() {
		if core >= 0 && int64(e.Core) != core {
			continue
		}
		switch e.Kind {
		case audit.EvCommit, audit.EvDrain, audit.EvCrash,
			audit.EvRecoveryRedo, audit.EvRecoveryUndo, audit.EvRecoveryDone:
			n++
			fmt.Fprintln(w, e)
		case audit.EvLaunch, audit.EvBackArrive:
			if e.Flags.Has(audit.FlagBoundary) {
				n++
				fmt.Fprintln(w, e)
			}
		}
	}
	if n == 0 {
		return fmt.Errorf("capriinspect: no region-lifecycle events retained")
	}
	fmt.Fprintf(w, "-- %d region-lifecycle events\n", n)
	return nil
}

func runDiff(w io.Writer, args []string) error {
	if len(args) != 2 {
		usage()
	}
	a, err := audit.ReadRunRecord(args[0])
	if err != nil {
		return err
	}
	b, err := audit.ReadRunRecord(args[1])
	if err != nil {
		return err
	}
	if a.Digest == b.Digest {
		fmt.Fprintf(w, "identical event streams (digest %s)\n", a.Digest)
	} else {
		fmt.Fprintf(w, "event streams differ\n")
	}
	// An injected fault plan is part of a run's identity: two records under
	// different plans are different experiments, not a regression.
	if err := diffPlans(w, a.Faults, b.Faults); err != nil {
		return err
	}
	if a.EventsTotal != b.EventsTotal {
		fmt.Fprintf(w, "events_total  %d -> %d (%+d)\n", a.EventsTotal, b.EventsTotal,
			int64(b.EventsTotal)-int64(a.EventsTotal))
	}
	ca, cb := censusOf(a.DecodedEvents()), censusOf(b.DecodedEvents())
	for k := audit.Kind(0); k < audit.NumKinds; k++ {
		if ca[k] != cb[k] {
			fmt.Fprintf(w, "census %-14s %10d -> %10d (%+d)\n", k, ca[k], cb[k], int64(cb[k])-int64(ca[k]))
		}
	}
	diffs, err := diffStats(a.Stats, b.Stats)
	if err != nil {
		return err
	}
	if len(diffs) == 0 {
		fmt.Fprintf(w, "machine statistics identical\n")
		return nil
	}
	fmt.Fprintf(w, "machine statistics (%d fields differ):\n", len(diffs))
	for _, d := range diffs {
		fmt.Fprintf(w, "  %-24s %14.6g -> %14.6g (%+g)\n", d.path, d.a, d.b, d.b-d.a)
	}
	return nil
}

// decodePlan parses an embedded capri/fault-plan/v1 payload.
func decodePlan(raw json.RawMessage) (fault.Plan, error) {
	var p fault.Plan
	if err := json.Unmarshal(raw, &p); err != nil {
		return p, err
	}
	if p.Schema != fault.PlanSchema {
		return p, fmt.Errorf("schema %q, want %q", p.Schema, fault.PlanSchema)
	}
	return p, nil
}

// diffPlans compares the records' embedded fault plans as run identity.
func diffPlans(w io.Writer, a, b json.RawMessage) error {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	summarize := func(raw json.RawMessage) (string, fault.Plan, error) {
		if len(raw) == 0 {
			return "(no fault plan)", fault.Plan{}, nil
		}
		p, err := decodePlan(raw)
		if err != nil {
			return "", p, err
		}
		return p.Summary(), p, nil
	}
	sa, pa, err := summarize(a)
	if err != nil {
		return err
	}
	sb, pb, err := summarize(b)
	if err != nil {
		return err
	}
	if reflect.DeepEqual(pa, pb) {
		fmt.Fprintf(w, "identical fault plans (%s)\n", sa)
		return nil
	}
	fmt.Fprintf(w, "fault plans differ — different experiments, not a regression:\n")
	fmt.Fprintf(w, "  a: %s\n", sa)
	fmt.Fprintf(w, "  b: %s\n", sb)
	return nil
}

type statDiff struct {
	path string
	a, b float64
}

// diffStats compares the numeric leaves of two opaque stats payloads by
// dotted path, so capriinspect needs no knowledge of the machine.Stats
// shape and keeps working as counters are added.
func diffStats(a, b json.RawMessage) ([]statDiff, error) {
	if a == nil || b == nil {
		return nil, nil
	}
	var va, vb any
	if err := json.Unmarshal(a, &va); err != nil {
		return nil, err
	}
	if err := json.Unmarshal(b, &vb); err != nil {
		return nil, err
	}
	la, lb := map[string]float64{}, map[string]float64{}
	flatten("", va, la)
	flatten("", vb, lb)
	paths := map[string]bool{}
	for p := range la {
		paths[p] = true
	}
	for p := range lb {
		paths[p] = true
	}
	var out []statDiff
	for p := range paths {
		if la[p] != lb[p] {
			out = append(out, statDiff{p, la[p], lb[p]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out, nil
}

func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case float64:
		out[prefix] = x
	case map[string]any:
		for k, val := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, val, out)
		}
	case []any:
		for i, val := range x {
			flatten(fmt.Sprintf("%s[%d]", prefix, i), val, out)
		}
	}
}
