package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"capri/internal/audit"
	"capri/internal/fault"
	"capri/internal/resultstore"
)

// runCampaign is `capricrash -campaign`: a seeded hardware-fault campaign
// (DESIGN.md §4f) over the synthetic fault workloads, a slice of the progen
// corpus, and — with -benches — every paper benchmark. Torn NVM line writes,
// nested crashes during recovery, and transient drain write errors are
// injected per seeded plan; every run is observed by the online Fig. 7
// auditor and verified against its golden state. Any failure is shrunk to a
// minimal reproducible fault plan and written as JSON for `-plan` replay.
func runCampaign(seed uint64, trials, maxFaults, corpus, threshold, scale, jobs int,
	benches bool, cores []int, duration time.Duration, planOut, recordOut, storeDir string) {
	targets := append(fault.SynthTargets(threshold), fault.CorpusTargets(corpus, threshold)...)
	if benches {
		targets = append(targets, fault.BenchTargets(scale, threshold)...)
	}
	if len(cores) > 0 {
		// -cores 2,4,8: the cross-core contention workloads at each geometry,
		// each target pinned to its own core count (Plan.Target.Cores), so a
		// shrunk failing plan replays on the exact machine that produced it.
		targets = append(targets, fault.ContentionTargets(scale, threshold, cores...)...)
	}
	var store *resultstore.Store
	if storeDir != "" {
		s, err := resultstore.Open(storeDir)
		if err != nil {
			fatal(err)
		}
		store = s
		defer store.Close()
	}
	fmt.Printf("fault campaign: %d targets, %d trials each, <= %d faults/plan, seed %d, %d job(s)\n",
		len(targets), trials, maxFaults, seed, max(jobs, 1))
	start := time.Now()
	res, err := fault.RunCampaign(fault.CampaignConfig{
		Seed:      seed,
		Trials:    trials,
		MaxFaults: maxFaults,
		Targets:   targets,
		Budget:    duration,
		Jobs:      jobs,
		Store:     store,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%d targets, %d trials, %d faults injected in %v\n",
		res.Targets, res.Trials, res.Faults, time.Since(start).Round(time.Millisecond))
	if store != nil {
		fmt.Printf("result store: %d target outcomes replayed, %d freshly executed\n",
			res.StoreHits, res.Targets-res.StoreHits)
	}
	fmt.Printf("crashes %d (vacuous %d, exhausted %d), recoveries %d, nested crashes %d\n",
		res.Crashes, res.Vacuous, res.Exhausted, res.Recoveries, res.NestedCrashes)
	fmt.Printf("drain retries %d, auditor events %d\n", res.DrainRetries, res.EventsAudited)
	if len(res.Failures) == 0 {
		fmt.Println("all plans recovered to the golden state — no violations")
		return
	}
	for i, f := range res.Failures {
		fmt.Printf("\nFAILURE %d: %s\n", i+1, f.Err)
		fmt.Printf("  plan:   %s\n", f.Plan.Summary())
		fmt.Printf("  shrunk: %s (%d shrink runs)\n", f.Shrunk.Summary(), f.ShrinkRuns)
	}
	// The first failure's minimal plan is the artifact: replay it with
	// `capricrash -plan <file>`.
	first := res.Failures[0]
	if planOut == "" {
		planOut = "fault-plan-min.json"
	}
	if err := first.Shrunk.WriteFile(planOut); err != nil {
		fatal(err)
	}
	if planOut != "-" {
		fmt.Printf("\nminimal failing plan -> %s\n", planOut)
	}
	if recordOut != "" {
		outc, err := fault.ReplayPlan(first.Shrunk)
		if err != nil {
			fatal(err)
		}
		writePlanRecord(recordOut, outc, first.Shrunk)
	}
	os.Exit(1)
}

// runPlanReplay is `capricrash -plan failure.json`: replay one fault plan
// exactly and report whether it still violates.
func runPlanReplay(path, recordOut string) {
	plan, err := fault.ReadPlan(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replaying plan: %s\n", plan.Summary())
	outc, err := fault.ReplayPlan(plan)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("crashed=%v vacuous=%v exhausted=%v recoveries=%d nested=%d retries=%d events=%d\n",
		outc.Crashed, outc.Vacuous, outc.Exhausted, outc.Recoveries,
		outc.NestedCrashes, outc.DrainRetries, outc.EventsAudited)
	if recordOut != "" {
		writePlanRecord(recordOut, outc, plan)
	}
	if outc.Err != nil {
		fmt.Printf("FAIL: %v\n", outc.Err)
		os.Exit(1)
	}
	fmt.Println("OK: recovered to the golden state, audit clean")
}

// writePlanRecord writes the outcome's capri/run-record/v1 provenance record
// with the fault plan embedded (RunRecord.Faults), so capriinspect shows what
// was injected and diff treats the plan as part of the run's identity.
func writePlanRecord(path string, outc fault.Outcome, plan fault.Plan) {
	if outc.Flight == nil {
		return
	}
	var cfg, stats any
	name := plan.Target.Name()
	fingerprint := ""
	if outc.Machine != nil {
		fp := outc.Machine.Program().Fingerprint()
		fingerprint = fmt.Sprintf("%x", fp[:])
		cfg = outc.Machine.Config()
		stats = outc.Machine.Stats()
	}
	rr, err := audit.NewRunRecordFull(outc.Flight, outc.Auditor, name, fingerprint, cfg, stats)
	if err != nil {
		fatal(err)
	}
	pj, err := json.Marshal(plan)
	if err != nil {
		fatal(err)
	}
	rr.Faults = pj
	if err := rr.WriteFile(path); err != nil {
		fatal(err)
	}
	if path != "-" {
		fmt.Printf("record: %d events (%d retained) -> %s\n", rr.EventsTotal, rr.EventsKept, path)
	}
}
