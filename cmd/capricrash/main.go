// Command capricrash runs a crash-injection campaign: it executes a
// benchmark to completion for the golden state, then crashes fresh runs at a
// sweep of instruction counts, recovers each with the §5.4 protocol, resumes,
// and checks that every recovered run reproduces the golden output exactly.
//
// Usage:
//
//	capricrash -bench genome -points 25 -threshold 64 [-scale 1]
//	capricrash -fuzz 100 [-threads 2]   # random-program campaign
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/progen"
	"capri/internal/recovery"
	"capri/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "genome", "benchmark to crash (see capricc -list)")
		threshold = flag.Int("threshold", 64, "region store threshold")
		points    = flag.Int("points", 25, "number of crash points to sweep")
		scale     = flag.Int("scale", 1, "workload scale factor")
		fuzz      = flag.Int("fuzz", 0, "instead of a benchmark, validate N random generated programs")
		threads   = flag.Int("threads", 1, "threads for generated programs (with -fuzz)")
		barriers  = flag.Bool("barriers", false, "generate SPMD programs with barrier episodes (with -fuzz)")
		seed      = flag.Uint64("seed", 1, "starting seed for -fuzz")
	)
	flag.Parse()

	if *fuzz > 0 {
		runFuzz(*fuzz, *seed, *threads, *threshold, *points, *barriers)
		return
	}

	b, err := workload.ByName(*benchName)
	if err != nil {
		fatal(err)
	}
	src := b.Build(*scale)
	res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, *threshold))
	if err != nil {
		fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Threshold = *threshold
	cfg.L2Size = 2 << 20
	cfg.DRAMSize = 16 << 20

	fmt.Printf("golden run of %s ...\n", b.Name)
	golden, err := machine.New(res.Program, cfg)
	if err != nil {
		fatal(err)
	}
	if err := golden.Run(); err != nil {
		fatal(err)
	}
	var goldenOut [][]uint64
	for t := 0; t < src.NumThreads(); t++ {
		goldenOut = append(goldenOut, golden.Output(t))
	}
	total := golden.Instret()
	fmt.Printf("golden: %d instructions, %d cycles\n", total, golden.Cycles())

	step := total / uint64(*points)
	if step == 0 {
		step = 1
	}
	ok, failed := 0, 0
	for crashAt := step; crashAt < total; crashAt += step {
		m, err := machine.New(res.Program, cfg)
		if err != nil {
			fatal(err)
		}
		if err := m.RunUntil(crashAt); err != nil {
			fatal(fmt.Errorf("crash@%d: %w", crashAt, err))
		}
		if m.Done() {
			break
		}
		img, err := m.Crash()
		if err != nil {
			fatal(err)
		}
		r, rep, err := machine.Recover(img)
		if err != nil {
			fatal(fmt.Errorf("crash@%d recover: %w", crashAt, err))
		}
		if err := r.Run(); err != nil {
			fatal(fmt.Errorf("crash@%d resume: %w", crashAt, err))
		}
		good := rep.ConflictingUndo == 0
		for t := 0; t < src.NumThreads(); t++ {
			if !reflect.DeepEqual(r.Output(t), goldenOut[t]) {
				good = false
			}
		}
		if good {
			ok++
			fmt.Printf("crash@%-10d OK   (regions redone %d, undone entries %d, slices %d)\n",
				crashAt, rep.RegionsRedone, rep.EntriesUndone, rep.SlicesExecuted)
		} else {
			failed++
			fmt.Printf("crash@%-10d FAIL (conflicting undos: %d)\n", crashAt, rep.ConflictingUndo)
		}
	}
	fmt.Printf("\n%d crash points recovered correctly, %d failed\n", ok, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// runFuzz validates n randomly generated structured programs: each is
// compiled, run for a golden state, crash-swept, and recovered; any
// divergence is a bug in the compiler or the recovery protocol.
func runFuzz(n int, seed uint64, threads, threshold, points int, barriers bool) {
	gcfg := progen.DefaultConfig()
	gcfg.Threads = threads
	gcfg.Barriers = barriers
	cfg := machine.DefaultConfig()
	cfg.Cores = threads
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	cfg.Threshold = threshold
	cfg.L2Size = 256 << 10
	cfg.DRAMSize = 1 << 20

	failures := 0
	for i := 0; i < n; i++ {
		s := seed + uint64(i)*2654435761
		p := progen.Generate(s, gcfg)
		opts := compile.OptionsForLevel(compile.LevelLICM, threshold)
		res, err := recovery.ValidateProgram(p, opts, cfg, points)
		if err != nil {
			failures++
			fmt.Printf("seed %-22d FAIL: %v\n", s, err)
			continue
		}
		fmt.Printf("seed %-22d OK   (%d crash points, %d regions redone, %d undos, %d slices)\n",
			s, res.Points, res.RegionsRedone, res.EntriesUndone, res.SlicesExecuted)
	}
	fmt.Printf("\n%d/%d random programs recovered correctly at every crash point\n", n-failures, n)
	if failures > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
