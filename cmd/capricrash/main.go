// Command capricrash runs a crash-injection campaign: it executes a
// benchmark to completion for the golden state, then crashes fresh runs at a
// sweep of instruction counts, recovers each with the §5.4 protocol, resumes,
// and checks that every recovered run reproduces the golden output exactly.
//
// Usage:
//
//	capricrash -bench genome -points 25 -threshold 64 [-scale 1]
//	capricrash -bench genome -audit              # Fig. 7 auditor on every run
//	capricrash -bench genome -audit -record-out crash.json
//	capricrash -fuzz 100 [-threads 2]   # random-program campaign
//	capricrash -campaign -seed 1 -trials 3 -corpus 12 -benches
//	capricrash -campaign -cores 2,4,8            # add cross-core contention targets
//	capricrash -plan fault-plan-min.json         # replay one fault plan
//
// With -audit, every crashed run is observed end-to-end (run → crash →
// recovery replay → resumption) by the online Fig. 7 invariant auditor; any
// violation fails the campaign with the offending per-line event chain. With
// -record-out, the capri/run-record/v1 provenance record of the first
// violating run — or, if the sweep is clean, the last crash point — is
// written for offline inspection with capriinspect.
//
// With -campaign, the hardware fault model of DESIGN.md §4f is driven by
// seeded random fault plans (torn NVM line writes at the power failure,
// nested crashes during recovery, transient drain write errors) over the
// synthetic fault workloads, a slice of the progen corpus, and optionally all
// paper benchmarks. Every failure is shrunk to a minimal reproducible plan
// (written to -plan-out) that -plan replays exactly.
//
// With -cores, the campaign additionally targets the cross-core contention
// workloads (shared counters, the MPMC persistent queue, lock-protected
// records) at each listed core geometry, with crash points landing inside
// atomic two-phase commits and mid-drain; outside -campaign a single core
// count overrides the sweep machine's geometry.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"time"

	"capri/internal/audit"
	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/progen"
	"capri/internal/recovery"
	"capri/internal/telemetry"
	"capri/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "genome", "benchmark to crash (see capricc -list)")
		threshold = flag.Int("threshold", 64, "region store threshold")
		points    = flag.Int("points", 25, "number of crash points to sweep")
		scale     = flag.Int("scale", 1, "workload scale factor")
		fuzz      = flag.Int("fuzz", 0, "instead of a benchmark, validate N random generated programs")
		threads   = flag.Int("threads", 1, "threads for generated programs (with -fuzz)")
		barriers  = flag.Bool("barriers", false, "generate SPMD programs with barrier episodes (with -fuzz)")
		seed      = flag.Uint64("seed", 1, "starting seed for -fuzz")
		auditRun  = flag.Bool("audit", false, "attach the online Fig. 7 invariant auditor to every crashed run")
		recordOut = flag.String("record-out", "", "write the capri/run-record/v1 record of the first violating (else last) crash run")

		campaign  = flag.Bool("campaign", false, "run a seeded hardware-fault campaign (torn writes, nested crashes, drain errors)")
		trials    = flag.Int("trials", 3, "fault plans per target (with -campaign)")
		maxFaults = flag.Int("max-faults", 3, "max faults per plan (with -campaign)")
		corpus    = flag.Int("corpus", 12, "progen corpus programs to target (with -campaign)")
		benches   = flag.Bool("benches", false, "include all paper benchmarks as campaign targets (with -campaign)")
		coreList  = flag.String("cores", "", "comma-separated core counts (e.g. 2,4,8): with -campaign adds the cross-core contention workloads at those geometries; otherwise a single count overrides the sweep machine")
		duration  = flag.Duration("duration", 0, "stop starting new campaign targets after this long (with -campaign; 0 = no budget)")
		planOut   = flag.String("plan-out", "", "where -campaign writes the minimal failing fault plan (default fault-plan-min.json)")
		planIn    = flag.String("plan", "", "replay one capri/fault-plan/v1 JSON fault plan and exit")
		jobs      = flag.Int("jobs", 1, "campaign targets to run in parallel (with -campaign; 0 = GOMAXPROCS)")
		storeDir  = flag.String("store", "", "content-addressed result store `dir` (with -campaign); stored target outcomes replay instead of re-running")
		listen    = flag.String("listen", "", "serve live OpenMetrics telemetry on this `addr` (e.g. :9090) while the command runs")
		hbOut     = flag.String("heartbeat-out", "", "append JSONL telemetry heartbeats to this `file` (\"-\" = stderr)")
		hbEvery   = flag.Duration("heartbeat-interval", time.Second, "heartbeat sampling interval (with -heartbeat-out)")
	)
	flag.Parse()

	bus, err := telemetry.Start(telemetry.Options{
		Listen:        *listen,
		HeartbeatPath: *hbOut,
		Interval:      *hbEvery,
	})
	if err != nil {
		fatal(err)
	}
	defer bus.Stop()
	if addr := bus.Addr(); addr != "" {
		fmt.Fprintf(os.Stderr, "telemetry: serving OpenMetrics on http://%s/metrics\n", addr)
	}

	cores, err := parseCores(*coreList)
	if err != nil {
		fatal(err)
	}

	if *planIn != "" {
		runPlanReplay(*planIn, *recordOut)
		return
	}
	if *campaign {
		runCampaign(*seed, *trials, *maxFaults, *corpus, *threshold, *scale, *jobs,
			*benches, cores, *duration, *planOut, *recordOut, *storeDir)
		return
	}

	if *fuzz > 0 {
		runFuzz(*fuzz, *seed, *threads, *threshold, *points, *barriers, *auditRun)
		return
	}

	b, err := workload.ByName(*benchName)
	if err != nil {
		fatal(err)
	}
	src := b.Build(*scale)
	res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, *threshold))
	if err != nil {
		fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Threshold = *threshold
	cfg.L2Size = 2 << 20
	cfg.DRAMSize = 16 << 20
	if len(cores) > 1 {
		fatal(fmt.Errorf("-cores outside -campaign takes a single core count, got %q", *coreList))
	}
	if len(cores) == 1 {
		cfg.Cores = cores[0]
	}
	if n := src.NumThreads(); cfg.Cores < n {
		cfg.Cores = n
	}

	fmt.Printf("golden run of %s ...\n", b.Name)
	golden, err := machine.New(res.Program, cfg)
	if err != nil {
		fatal(err)
	}
	if err := golden.Run(); err != nil {
		fatal(err)
	}
	var goldenOut [][]uint64
	for t := 0; t < src.NumThreads(); t++ {
		goldenOut = append(goldenOut, golden.Output(t))
	}
	total := golden.Instret()
	fmt.Printf("golden: %d instructions, %d cycles\n", total, golden.Cycles())

	step := total / uint64(*points)
	if step == 0 {
		step = 1
	}
	ok, failed := 0, 0
	var events uint64
	for crashAt := step; crashAt < total; crashAt += step {
		m, err := machine.New(res.Program, cfg)
		if err != nil {
			fatal(err)
		}
		// Provenance tap for this crash run: the flight recorder preserves
		// per-line event chains; the auditor checks Fig. 7 invariants online
		// across the crash and the recovery replay.
		var (
			flight *audit.FlightRecorder
			aud    *audit.Auditor
			tap    audit.Sink
		)
		if *auditRun || *recordOut != "" {
			flight = audit.NewFlightRecorder(audit.DefaultRecorderCap)
			tap = flight
			if *auditRun {
				aud = audit.NewAuditor(m.AuditOptions())
				aud.AttachRecorder(flight)
				tap = audit.Tee(flight, aud)
			}
			m.SetTap(tap)
		}
		if err := m.RunUntil(crashAt); err != nil {
			fatal(fmt.Errorf("crash@%d: %w", crashAt, err))
		}
		if m.Done() {
			break
		}
		img, err := m.Crash()
		if err != nil {
			fatal(err)
		}
		var r *machine.Machine
		var rep *machine.RecoveryReport
		if tap != nil {
			r, rep, err = machine.RecoverInstrumented(img, nil, tap)
		} else {
			r, rep, err = machine.Recover(img)
		}
		if err != nil {
			fatal(fmt.Errorf("crash@%d recover: %w", crashAt, err))
		}
		if err := r.Run(); err != nil {
			fatal(fmt.Errorf("crash@%d resume: %w", crashAt, err))
		}
		good := rep.ConflictingUndo == 0
		if b.Check != nil {
			// Interleaving-dependent workload (the contention suite): verify
			// the conservation invariants and exactly-once I/O instead of
			// comparing outputs word-for-word (see workload.Benchmark.Check).
			if err := b.Check(*scale, r.MemSnapshot()); err != nil {
				good = false
			}
			for t := 0; t < src.NumThreads(); t++ {
				if len(r.Output(t)) != len(goldenOut[t]) {
					good = false
				}
			}
		} else {
			for t := 0; t < src.NumThreads(); t++ {
				if !reflect.DeepEqual(r.Output(t), goldenOut[t]) {
					good = false
				}
			}
		}
		if aud != nil {
			events += aud.EventsAudited()
			if err := aud.Err(); err != nil {
				writeRecord(*recordOut, flight, aud, b.Name, r)
				fatal(fmt.Errorf("crash@%d %w", crashAt, err))
			}
		}
		if good {
			ok++
			fmt.Printf("crash@%-10d OK   (regions redone %d, undone entries %d, slices %d)\n",
				crashAt, rep.RegionsRedone, rep.EntriesUndone, rep.SlicesExecuted)
		} else {
			failed++
			fmt.Printf("crash@%-10d FAIL (conflicting undos: %d)\n", crashAt, rep.ConflictingUndo)
		}
		if flight != nil && crashAt+step >= total {
			writeRecord(*recordOut, flight, aud, b.Name, r)
		}
	}
	fmt.Printf("\n%d crash points recovered correctly, %d failed\n", ok, failed)
	if *auditRun {
		fmt.Printf("auditor: %d provenance events, 0 violations\n", events)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// writeRecord dumps the crash run's provenance record (no-op without
// -record-out).
func writeRecord(path string, flight *audit.FlightRecorder, aud *audit.Auditor, name string, m *machine.Machine) {
	if path == "" || flight == nil {
		return
	}
	fp := m.Program().Fingerprint()
	rr, err := audit.NewRunRecordFull(flight, aud, name,
		fmt.Sprintf("%x", fp[:]), m.Config(), m.Stats())
	if err != nil {
		fatal(err)
	}
	if err := rr.WriteFile(path); err != nil {
		fatal(err)
	}
	if path != "-" {
		fmt.Printf("record: %d events (%d retained) -> %s\n", rr.EventsTotal, rr.EventsKept, path)
	}
}

// runFuzz validates n randomly generated structured programs: each is
// compiled, run for a golden state, crash-swept, and recovered; any
// divergence is a bug in the compiler or the recovery protocol. With audited
// set, every crashed run is additionally observed by the Fig. 7 auditor.
func runFuzz(n int, seed uint64, threads, threshold, points int, barriers, audited bool) {
	gcfg := progen.DefaultConfig()
	gcfg.Threads = threads
	gcfg.Barriers = barriers
	cfg := machine.DefaultConfig()
	cfg.Cores = threads
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	cfg.Threshold = threshold
	cfg.L2Size = 256 << 10
	cfg.DRAMSize = 1 << 20

	failures := 0
	var events uint64
	for i := 0; i < n; i++ {
		s := seed + uint64(i)*2654435761
		p := progen.Generate(s, gcfg)
		opts := compile.OptionsForLevel(compile.LevelLICM, threshold)
		validate := recovery.ValidateProgram
		if audited {
			validate = recovery.ValidateProgramAudited
		}
		res, err := validate(p, opts, cfg, points)
		if err != nil {
			failures++
			fmt.Printf("seed %-22d FAIL: %v\n", s, err)
			continue
		}
		events += res.EventsAudited
		fmt.Printf("seed %-22d OK   (%d crash points, %d regions redone, %d undos, %d slices)\n",
			s, res.Points, res.RegionsRedone, res.EntriesUndone, res.SlicesExecuted)
	}
	fmt.Printf("\n%d/%d random programs recovered correctly at every crash point\n", n-failures, n)
	if audited {
		fmt.Printf("auditor: %d provenance events across all crashed runs\n", events)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// parseCores parses the -cores flag: a comma-separated list of positive core
// counts ("" parses to nil).
func parseCores(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-cores: %q is not a positive core count", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
