package main

import "testing"

func figWith(name string, rates ...float64) figure {
	f := figure{Figure: name}
	for _, r := range rates {
		f.Samples = append(f.Samples, sample{SimInstPerSec: r})
	}
	if len(rates) > 0 {
		f.SimInstPerSec = rates[0]
	}
	return f
}

func reportWith(figs ...figure) *report {
	return &report{Schema: "capri/bench-sim/v5", Scale: 1, Jobs: 1, Figures: figs}
}

func findRow(t *testing.T, rows []row, name string) row {
	t.Helper()
	for _, r := range rows {
		if r.name == name {
			return r
		}
	}
	t.Fatalf("no row for %s in %+v", name, rows)
	return row{}
}

func TestCompareReportsSignificantRegression(t *testing.T) {
	old := reportWith(figWith("fig8", 100, 101, 99, 100, 102))
	new := reportWith(figWith("fig8", 80, 81, 79, 80, 82))
	rows := compareReports(old, new, 0.01)
	r := findRow(t, rows, "fig8")
	if !r.regressed {
		t.Errorf("clean 20%% slowdown must gate: %+v", r)
	}
	// The reverse direction is an improvement, never a gate failure.
	rows = compareReports(new, old, 0.01)
	r = findRow(t, rows, "fig8")
	if r.regressed || r.verdict != "improved" {
		t.Errorf("speedup flagged as regression: %+v", r)
	}
}

func TestCompareReportsNoiseNotSignificant(t *testing.T) {
	old := reportWith(figWith("fig8", 100, 104, 96, 101, 99))
	new := reportWith(figWith("fig8", 98, 103, 95, 102, 100))
	rows := compareReports(old, new, 0.01)
	if r := findRow(t, rows, "fig8"); r.regressed {
		t.Errorf("overlapping noise must not gate: %+v", r)
	}
}

func TestCompareReportsSignificantButTiny(t *testing.T) {
	// A perfectly clean 0.5% slowdown is significant by rank but below
	// min-delta — not worth gating on.
	old := reportWith(figWith("fig8", 1000, 1001, 1002, 1003, 1004))
	new := reportWith(figWith("fig8", 995, 996, 997, 998, 999))
	rows := compareReports(old, new, 0.01)
	if r := findRow(t, rows, "fig8"); r.regressed {
		t.Errorf("sub-min-delta change must not gate: %+v", r)
	}
}

func TestCompareReportsPointFallback(t *testing.T) {
	// v4-style reports: no samples array, single figure rate.
	old := reportWith(figure{Figure: "fig8", SimInstPerSec: 100})
	new := reportWith(figure{Figure: "fig8", SimInstPerSec: 92})
	rows := compareReports(old, new, 0.01)
	r := findRow(t, rows, "fig8")
	if !r.c.Fallback {
		t.Fatalf("sample-less reports must use the point fallback: %+v", r)
	}
	if r.regressed {
		t.Errorf("8%% point drop is inside the 10%% cliff: %+v", r)
	}
	new = reportWith(figure{Figure: "fig8", SimInstPerSec: 85})
	rows = compareReports(old, new, 0.01)
	if r := findRow(t, rows, "fig8"); !r.regressed {
		t.Errorf("15%% point drop must trip the fallback cliff: %+v", r)
	}
}

func TestCompareReportsSkipsSilentFigures(t *testing.T) {
	// Replay-only figures (rate 0 everywhere) and degenerate samples carry
	// no signal and must not produce rows.
	old := reportWith(figure{Figure: "fig10"}, figWith("fig8", 100, 101, 99, 100))
	deg := figure{Figure: "fig8", Samples: []sample{{SimInstPerSec: 0, Degenerate: true}}, Degenerate: true}
	new := reportWith(figure{Figure: "fig10"}, deg)
	rows := compareReports(old, new, 0.01)
	if len(rows) != 0 {
		t.Errorf("signal-free figures produced rows: %+v", rows)
	}
}

func TestCompareReportsRefFig8(t *testing.T) {
	oldRef := figWith("fig8-refstore", 50, 51, 49, 50, 52)
	newRef := figWith("fig8-refstore", 40, 41, 39, 40, 42)
	old := reportWith()
	old.RefFig8 = &oldRef
	new := reportWith()
	new.RefFig8 = &newRef
	rows := compareReports(old, new, 0.01)
	if r := findRow(t, rows, "fig8-refstore"); !r.regressed {
		t.Errorf("ref_fig8 regression missed: %+v", r)
	}
}

func TestComparable(t *testing.T) {
	a := reportWith()
	b := reportWith()
	if reason, ok := comparable(a, b); !ok {
		t.Errorf("identical shapes not comparable: %s", reason)
	}
	b.Scale = 2
	if _, ok := comparable(a, b); ok {
		t.Errorf("scale mismatch must not be comparable")
	}
	b.Scale = 1
	b.Jobs = 4
	if _, ok := comparable(a, b); ok {
		t.Errorf("jobs mismatch must not be comparable")
	}
}

func TestPointFallbackFewSamples(t *testing.T) {
	// Three samples per side cannot reach significance — must fall back,
	// and only the cliff gates.
	old := reportWith(figWith("fig8", 100, 101, 99))
	new := reportWith(figWith("fig8", 95, 96, 94))
	rows := compareReports(old, new, 0.01)
	r := findRow(t, rows, "fig8")
	if !r.c.Fallback {
		t.Fatalf("3v3 samples must use the point fallback: %+v", r)
	}
	if r.regressed {
		t.Errorf("5%% drop inside the 10%% cliff must not gate: %+v", r)
	}
}
