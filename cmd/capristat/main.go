// Command capristat compares two capri/bench-sim perf reports with a
// variance-aware, benchstat-style test: for every figure present in both
// reports it runs the Mann-Whitney U rank test over the per-sample
// simulated-throughput arrays (schema v5, `capribench -perf -samples N`)
// and reports the median ± MAD of each side, the relative delta, the
// p-value, and a verdict. A difference counts only when it is both
// statistically significant (p < 0.05) and large enough to matter
// (default 1%) — one lucky or unlucky run can no longer pass or fail the
// gate.
//
// Usage:
//
//	capristat old.json new.json          # print the comparison table
//	capristat -gate old.json new.json    # exit non-zero on a significant regression
//	capristat -gate -min-delta 0.02 old.json new.json
//
// Reports without samples arrays (schema <= v4, or -samples 1) fall back
// per figure to the single-sample 10% point comparison the old
// `-perfgate` applied — documented fallback, not the methodology.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"capri/internal/stats"
)

// pointTolerance is the fractional regression the single-sample fallback
// tolerates — the old `-perfgate` cliff, kept only for reports that
// carry no samples array.
const pointTolerance = 0.10

// figure is the slice of the perf report's per-figure JSON capristat
// consumes. The JSON names are the cross-tool contract with capribench;
// fields the comparison does not need are ignored by the decoder.
type figure struct {
	Figure        string   `json:"figure"`
	InstPerSec    float64  `json:"inst_per_sec"`
	SimInstPerSec float64  `json:"sim_inst_per_sec"`
	Degenerate    bool     `json:"degenerate"`
	Samples       []sample `json:"samples"`
}

// sample is one -samples N measurement of a figure.
type sample struct {
	SimInstPerSec float64 `json:"sim_inst_per_sec"`
	Degenerate    bool    `json:"degenerate"`
}

// host is the report's machine fingerprint.
type host struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Hostname   string `json:"hostname"`
}

// report is the slice of capri/bench-sim/v* capristat consumes.
type report struct {
	Schema   string   `json:"schema"`
	Scale    int      `json:"scale"`
	Dispatch string   `json:"dispatch"`
	Jobs     int      `json:"jobs"`
	Samples  int      `json:"samples"`
	Host     *host    `json:"host"`
	Figures  []figure `json:"figures"`
	RefFig8  *figure  `json:"ref_fig8"`
}

// load reads and decodes one report.
func load(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// rates extracts a figure's usable throughput samples: every
// non-degenerate positive per-sample rate, or the figure's own rate as a
// single point for reports without samples arrays. The wall-derived rate
// backs up pre-v3 reports that never recorded a simulated-only rate.
func rates(f figure) []float64 {
	var out []float64
	for _, s := range f.Samples {
		if !s.Degenerate && s.SimInstPerSec > 0 {
			out = append(out, s.SimInstPerSec)
		}
	}
	if len(out) > 0 {
		return out
	}
	if !f.Degenerate {
		if f.SimInstPerSec > 0 {
			return []float64{f.SimInstPerSec}
		}
		if f.InstPerSec > 0 {
			return []float64{f.InstPerSec}
		}
	}
	return nil
}

// row is one figure's comparison outcome.
type row struct {
	name       string
	c          stats.Comparison
	oldN, newN int
	regressed  bool
	verdict    string
}

// compareReports compares every figure present in both reports (plus the
// ref_fig8 series) and returns the per-figure rows in new-report order.
// minDelta is the relative slowdown below which even a statistically
// significant difference is not gated on.
func compareReports(old, new *report, minDelta float64) []row {
	figuresOf := func(r *report) []figure {
		fs := append([]figure(nil), r.Figures...)
		if r.RefFig8 != nil {
			fs = append(fs, *r.RefFig8)
		}
		return fs
	}
	oldBy := map[string]figure{}
	for _, f := range figuresOf(old) {
		oldBy[f.Figure] = f
	}
	var rows []row
	for _, nf := range figuresOf(new) {
		of, ok := oldBy[nf.Figure]
		if !ok {
			continue
		}
		os, ns := rates(of), rates(nf)
		if len(os) == 0 || len(ns) == 0 {
			continue // no timing signal on one side (replays, degenerate)
		}
		r := row{name: nf.Figure, oldN: len(os), newN: len(ns)}
		r.c = stats.CompareRates(os, ns)
		switch {
		case r.c.Fallback:
			// Single-sample fallback: the old 10% point cliff.
			if r.c.NewMedian < r.c.OldMedian*(1-pointTolerance) {
				r.regressed = true
				r.verdict = "REGRESSED (point fallback)"
			} else {
				r.verdict = "~ (point fallback)"
			}
		case r.c.Significant && r.c.Delta < -minDelta:
			r.regressed = true
			r.verdict = "REGRESSED"
		case r.c.Significant && r.c.Delta > minDelta:
			r.verdict = "improved"
		default:
			r.verdict = "~"
		}
		rows = append(rows, r)
	}
	return rows
}

// comparable reports whether two reports' rates may be compared at all:
// same scale, dispatch core, and worker count (the same skips the old
// gate applied).
func comparable(old, new *report) (string, bool) {
	if old.Scale != new.Scale {
		return fmt.Sprintf("scale %d != %d", old.Scale, new.Scale), false
	}
	if old.Dispatch != "" && new.Dispatch != "" && old.Dispatch != new.Dispatch {
		return fmt.Sprintf("dispatch %q != %q", old.Dispatch, new.Dispatch), false
	}
	if oj, nj := max(old.Jobs, 1), max(new.Jobs, 1); oj != nj {
		return fmt.Sprintf("jobs %d != %d", oj, nj), false
	}
	return "", true
}

func main() {
	var (
		gate     = flag.Bool("gate", false, "exit non-zero when any figure shows a statistically significant regression")
		minDelta = flag.Float64("min-delta", 0.01, "smallest relative slowdown worth gating on, even when statistically significant")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: capristat [-gate] [-min-delta F] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	fail(err)
	new, err := load(flag.Arg(1))
	fail(err)

	if reason, ok := comparable(old, new); !ok {
		fmt.Printf("capristat: reports not comparable (%s); nothing gated\n", reason)
		return
	}
	if old.Host != nil && new.Host != nil && *old.Host != *new.Host {
		fmt.Printf("note: host fingerprints differ (%+v vs %+v) — rates may not be comparable\n",
			*old.Host, *new.Host)
	}

	rows := compareReports(old, new, *minDelta)
	if len(rows) == 0 {
		fmt.Println("capristat: no figure with timing signal on both sides")
		return
	}
	fmt.Printf("%-18s %22s %22s %8s %8s  %s\n", "figure", "old sim inst/s", "new sim inst/s", "delta", "p", "verdict")
	regressed := false
	for _, r := range rows {
		fmt.Printf("%-18s %12.0f ±%8.0f %12.0f ±%8.0f %+7.1f%% %8.3f  %s (n=%d vs %d)\n",
			r.name, r.c.OldMedian, r.c.OldMAD, r.c.NewMedian, r.c.NewMAD,
			100*r.c.Delta, r.c.P, r.verdict, r.oldN, r.newN)
		regressed = regressed || r.regressed
	}
	if regressed {
		if *gate {
			fail(fmt.Errorf("capristat: statistically significant regression (alpha %.2g, min delta %.0f%%)",
				stats.CompareAlpha, 100**minDelta))
		}
		fmt.Println("capristat: regression detected (not gating without -gate)")
	}
}

// fail exits with an error message when err is non-nil.
func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
