// Command caprirun assembles a .casm text program, compiles it with the
// Capri compiler, and executes it on the simulated whole-system-persistent
// machine — optionally crashing it mid-run and recovering, to demonstrate
// failure atomicity on user-written programs.
//
// Usage:
//
//	caprirun prog.casm                       # run to completion
//	caprirun -crash 5000 prog.casm           # power fails after 5000 instrs
//	caprirun -threshold 64 -baseline prog.casm
//
// Cross-process persistence: with -image the "NVM and battery-backed
// buffers" live in a file, so a crash in one invocation is recovered by the
// next — whole-system persistence across process lifetimes:
//
//	caprirun -image state.img -crash 5000 prog.casm   # dies, writes state.img
//	caprirun -image state.img prog.casm               # recovers and finishes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"capri/internal/asm"
	"capri/internal/compile"
	"capri/internal/image"
	"capri/internal/machine"
	"capri/internal/trace"
)

func main() {
	var (
		threshold = flag.Int("threshold", compile.DefaultThreshold, "region store threshold")
		crashAt   = flag.Uint64("crash", 0, "inject a power failure after N retired instructions (0 = none)")
		baseline  = flag.Bool("baseline", false, "run on the volatile baseline machine (no Capri)")
		stats     = flag.Bool("stats", false, "print machine statistics")
		imgPath   = flag.String("image", "", "persistent state file: recover from it if present; crashes write it")
		tracePath = flag.String("trace", "", "write a persistence event trace to this file (.json: Chrome trace-event format for Perfetto)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: caprirun [flags] prog.casm")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	check(err)
	src, err := asm.Parse(path, string(data))
	check(err)

	cfg := machine.DefaultConfig()
	cfg.Threshold = *threshold
	if src.NumThreads() > cfg.Cores {
		cfg.Cores = src.NumThreads()
	}

	if *baseline {
		cfg.Capri = false
		m, err := machine.New(src, cfg)
		check(err)
		check(m.Run())
		report(m, src.NumThreads(), *stats)
		return
	}

	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.NewRecorder(0)
		defer func() {
			f, err := os.Create(*tracePath)
			check(err)
			if strings.HasSuffix(*tracePath, ".json") {
				check(rec.WriteChromeTo(f))
			} else {
				_, err = rec.WriteTo(f)
				check(err)
			}
			check(f.Close())
			fmt.Printf("trace: %s (%s)\n", *tracePath, rec.Summary())
		}()
	}

	// Recover from a prior invocation's persistent image if one exists.
	if *imgPath != "" {
		if img, err := image.LoadFile(*imgPath); err == nil {
			fmt.Printf("recovering from %s ...\n", *imgPath)
			var tr machine.Tracer
			if rec != nil {
				tr = trace.MachineTracer{R: rec}
			}
			r, rep, err := machine.RecoverTraced(img, tr)
			check(err)
			fmt.Printf("recovered: %d regions redone, %d entries undone, %d slices, %d cores resumed\n",
				rep.RegionsRedone, rep.EntriesUndone, rep.SlicesExecuted, rep.CoresResumed)
			threads := img.Prog.NumThreads()
			if *crashAt > 0 {
				check(r.RunUntil(*crashAt))
				if !r.Done() {
					img2, err := r.Crash()
					check(err)
					check(image.Save(*imgPath, img2))
					fmt.Printf("power failed again after %d instructions; state saved to %s\n",
						r.Instret(), *imgPath)
					return
				}
			} else {
				check(r.Run())
			}
			os.Remove(*imgPath) // completed: the image is consumed
			report(r, threads, *stats)
			return
		} else if !os.IsNotExist(err) {
			check(err)
		}
	}

	res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, *threshold))
	check(err)
	fmt.Printf("compiled: %d regions, %d ckpt stores (%d pruned, %d hoisted), %d loops unrolled\n",
		res.Stats.Regions, res.Stats.CkptsInserted, res.Stats.CkptsPruned,
		res.Stats.CkptsHoisted, res.Stats.LoopsUnrolled)

	m, err := machine.New(res.Program, cfg)
	check(err)

	if rec != nil {
		m.SetTracer(trace.MachineTracer{R: rec})
	}

	if *crashAt == 0 {
		check(m.Run())
		report(m, src.NumThreads(), *stats)
		return
	}

	check(m.RunUntil(*crashAt))
	if m.Done() {
		fmt.Println("program finished before the crash point")
		report(m, src.NumThreads(), *stats)
		return
	}
	img, err := m.Crash()
	check(err)
	fmt.Printf("power failed after %d instructions\n", m.Instret())
	if *imgPath != "" {
		check(image.Save(*imgPath, img))
		fmt.Printf("persistent state saved to %s; rerun with -image to recover\n", *imgPath)
		return
	}
	// Keep tracing across the crash: the recovered machine reuses the same
	// recorder, so the trace shows the crash edge, the recovery edge, and the
	// re-executed regions in one timeline.
	var tr machine.Tracer
	if rec != nil {
		tr = trace.MachineTracer{R: rec}
	}
	r, rep, err := machine.RecoverTraced(img, tr)
	check(err)
	fmt.Printf("recovered: %d regions redone, %d entries undone (%d applied), %d slices, %d cores resumed\n",
		rep.RegionsRedone, rep.EntriesUndone, rep.UndoneApplied, rep.SlicesExecuted, rep.CoresResumed)
	check(r.Run())
	report(r, src.NumThreads(), *stats)
}

func report(m *machine.Machine, threads int, withStats bool) {
	for t := 0; t < threads; t++ {
		fmt.Printf("thread %d output: %v\n", t, m.Output(t))
	}
	fmt.Printf("cycles: %d, instructions: %d\n", m.Cycles(), m.Instret())
	if withStats {
		s := m.Stats()
		fmt.Printf("stores %d, ckpts %d, boundaries %d, regions %d (avg %.1f insts, %.1f stores)\n",
			s.Stores, s.Ckpts, s.Boundaries, s.Regions, s.AvgRegionInsts, s.AvgRegionStores)
		fmt.Printf("NVM writes %d, stale skips %d, scan hits %d, stalls %d\n",
			s.NVMWrites, s.NVMStaleSkips, s.ScanHits, s.StallCycles)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
