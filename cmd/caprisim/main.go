// Command caprisim runs one benchmark on the simulated Capri machine and
// reports cycles, the slowdown versus the volatile baseline, and the
// persistence machinery's counters.
//
// Usage:
//
//	caprisim -bench water-spatial -threshold 256 [-scale 1]
//	caprisim -file prog.casm    # simulate a text program instead
//	caprisim -config            # print the paper's Table 1 configuration
package main

import (
	"flag"
	"fmt"
	"os"

	"capri/internal/asm"
	"capri/internal/compile"
	"capri/internal/figures"
	"capri/internal/machine"
	"capri/internal/prog"
	"capri/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "genome", "benchmark to run (see capricc -list)")
		threshold = flag.Int("threshold", compile.DefaultThreshold, "region store threshold")
		levelName = flag.String("level", "+licm", "optimization level")
		scale     = flag.Int("scale", 1, "workload scale factor")
		config    = flag.Bool("config", false, "print the Table 1 machine configuration and exit")
		file      = flag.String("file", "", "simulate a .casm text program instead of a benchmark")
	)
	flag.Parse()

	if *config {
		fmt.Print(machine.DefaultConfig().Table1())
		return
	}

	var level compile.Level = compile.LevelLICM
	for _, l := range compile.Levels {
		if l.String() == *levelName {
			level = l
		}
	}

	var b workload.Benchmark
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		p, err := asm.Parse(*file, string(data))
		if err != nil {
			fatal(err)
		}
		b = workload.Benchmark{
			Name: *file, Suite: "casm", Threads: p.NumThreads(),
			Build: func(int) *prog.Program { return p },
		}
	} else {
		var err error
		b, err = workload.ByName(*benchName)
		if err != nil {
			fatal(err)
		}
	}
	h := figures.NewHarness(*scale)
	base, err := h.Baseline(b)
	if err != nil {
		fatal(err)
	}
	r, err := h.Run(b, level, *threshold)
	if err != nil {
		fatal(err)
	}
	s := r.Machine

	fmt.Printf("benchmark          %s (%s, %d threads), level %s, threshold %d\n",
		b.Name, b.Suite, b.Threads, level, *threshold)
	fmt.Printf("baseline cycles    %d\n", base)
	fmt.Printf("capri cycles       %d  (normalized %.3f)\n", s.Cycles, r.Norm)
	fmt.Printf("instructions       %d retired (%d stores, %d ckpt stores, %d boundaries)\n",
		s.Instret, s.Stores, s.Ckpts, s.Boundaries)
	fmt.Printf("regions            %d dynamic; avg %.1f insts, %.1f stores per region\n",
		s.Regions, s.AvgRegionInsts, s.AvgRegionStores)
	fmt.Printf("front-end proxy    %d allocs, %d merges, %d stalls, %d boundary entries (%d elided)\n",
		s.FrontAllocs, s.FrontMerges, s.FrontStalls, s.BoundaryEntries, s.ElidedBds)
	fmt.Printf("stale-read guard   %d scan hits, %d window hits, %d seq-guard drops\n",
		s.ScanHits, s.WindowHits, s.NVMStaleSkips)
	fmt.Printf("NVM                %d write ops, %d word writes\n", s.NVMWrites, s.NVMWordWrites)
	fmt.Printf("caches             L1 %d/%d hit/miss, L2 %d/%d, DRAM$ %d/%d\n",
		s.L1Hits, s.L1Misses, s.L2Hits, s.L2Misses, s.DRAMHits, s.DRAMMisses)
	fmt.Printf("stall cycles       %d\n", s.StallCycles)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
