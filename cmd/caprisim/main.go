// Command caprisim runs one benchmark on the simulated Capri machine and
// reports cycles, the slowdown versus the volatile baseline, and the
// persistence machinery's counters.
//
// Usage:
//
//	caprisim -bench water-spatial -threshold 256 [-scale 1]
//	caprisim -bench genome -trace-out trace.json   # Chrome/Perfetto trace
//	caprisim -bench genome -metrics                # occupancy histograms
//	caprisim -bench genome -audit                  # online Fig. 7 invariant auditor
//	caprisim -bench genome -record-out run.json    # provenance run record (capriinspect)
//	caprisim -file prog.casm    # simulate a text program instead
//	caprisim -config            # print the paper's Table 1 configuration
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"capri/internal/asm"
	"capri/internal/audit"
	"capri/internal/compile"
	"capri/internal/figures"
	"capri/internal/machine"
	"capri/internal/prog"
	"capri/internal/stats"
	"capri/internal/telemetry"
	"capri/internal/trace"
	"capri/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "genome", "benchmark to run (see capricc -list)")
		threshold = flag.Int("threshold", compile.DefaultThreshold, "region store threshold")
		levelName = flag.String("level", "+licm", "optimization level")
		scale     = flag.Int("scale", 1, "workload scale factor")
		config    = flag.Bool("config", false, "print the Table 1 machine configuration and exit")
		file      = flag.String("file", "", "simulate a .casm text program instead of a benchmark")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON file (open in Perfetto)")
		metrics   = flag.Bool("metrics", false, "collect and print occupancy/latency histograms")
		auditRun  = flag.Bool("audit", false, "run the online Fig. 7 invariant auditor; exit non-zero on any violation")
		recordOut = flag.String("record-out", "", "write a capri/run-record/v1 provenance record (\"-\" for stdout; inspect with capriinspect)")
		listen    = flag.String("listen", "", "serve live OpenMetrics telemetry on this `addr` (e.g. :9090) while the command runs")
		hbOut     = flag.String("heartbeat-out", "", "append JSONL telemetry heartbeats to this `file` (\"-\" = stderr)")
		hbEvery   = flag.Duration("heartbeat-interval", time.Second, "heartbeat sampling interval (with -heartbeat-out)")
	)
	flag.Parse()

	bus, err := telemetry.Start(telemetry.Options{
		Listen:        *listen,
		HeartbeatPath: *hbOut,
		Interval:      *hbEvery,
	})
	if err != nil {
		fatal(err)
	}
	defer bus.Stop()
	if addr := bus.Addr(); addr != "" {
		fmt.Fprintf(os.Stderr, "telemetry: serving OpenMetrics on http://%s/metrics\n", addr)
	}

	if *config {
		fmt.Print(machine.DefaultConfig().Table1())
		return
	}

	var level compile.Level = compile.LevelLICM
	for _, l := range compile.Levels {
		if l.String() == *levelName {
			level = l
		}
	}

	var b workload.Benchmark
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		p, err := asm.Parse(*file, string(data))
		if err != nil {
			fatal(err)
		}
		b = workload.Benchmark{
			Name: *file, Suite: "casm", Threads: p.NumThreads(),
			Build: func(int) *prog.Program { return p },
		}
	} else {
		var err error
		b, err = workload.ByName(*benchName)
		if err != nil {
			fatal(err)
		}
	}
	h := figures.NewHarness(*scale)
	baseStats, err := h.BaselineStats(b)
	if err != nil {
		fatal(err)
	}
	base := baseStats.Cycles

	var s machine.Stats
	var norm float64
	var hist *machine.Metrics
	if *traceOut != "" || *metrics || *auditRun || *recordOut != "" {
		// Instrumented path: run the machine directly with a recorder and/or
		// histogram collection attached (the cached harness path cannot carry
		// per-run instrumentation).
		var tr machine.Tracer
		var rec *trace.Recorder
		if *traceOut != "" {
			rec = trace.NewRecorder(0)
			tr = trace.MachineTracer{R: rec}
		}
		// The provenance tap: a bounded flight recorder feeds the run record,
		// and the auditor checks every event online.
		var (
			flight *audit.FlightRecorder
			aud    *audit.Auditor
			tap    func(*machine.Machine) audit.Sink
		)
		if *recordOut != "" || *auditRun {
			tap = func(m *machine.Machine) audit.Sink {
				flight = audit.NewFlightRecorder(audit.DefaultRecorderCap)
				if !*auditRun {
					return flight
				}
				aud = audit.NewAuditor(m.AuditOptions())
				aud.AttachRecorder(flight)
				return audit.Tee(flight, aud)
			}
		}
		// A run record always collects the histograms: they are
		// deterministic observers (no effect on simulated state), and
		// `capriinspect summary` derives its percentile report from them.
		collect := *metrics || *recordOut != ""
		m, err := h.RunTapped(b, level, *threshold, tr, tap, collect)
		if err != nil {
			fatal(err)
		}
		s = m.Stats()
		norm = float64(s.Cycles) / float64(base)
		if *metrics {
			hist = m.Metrics()
		}
		if *recordOut != "" {
			fp := m.Program().Fingerprint()
			rr, err := audit.NewRunRecordFull(flight, aud, b.Name,
				fmt.Sprintf("%x", fp[:]), m.Config(), m.Stats())
			if err != nil {
				fatal(err)
			}
			if err := rr.SetMetrics(m.Metrics()); err != nil {
				fatal(err)
			}
			if err := rr.WriteFile(*recordOut); err != nil {
				fatal(err)
			}
			if *recordOut != "-" {
				fmt.Printf("record             %d events (%d retained) -> %s\n",
					rr.EventsTotal, rr.EventsKept, *recordOut)
			}
		}
		if aud != nil {
			if err := aud.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "audit FAILED after %d events: %v\n", aud.EventsAudited(), err)
				os.Exit(1)
			}
			fmt.Printf("audit              ok: %d provenance events, 0 violations\n", aud.EventsAudited())
		}
		if rec != nil {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			if err := rec.WriteChromeTo(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("trace              %s: %d events (%s) -> %s\n",
				b.Name, rec.Len(), rec.Summary(), *traceOut)
		}
	} else {
		r, err := h.Run(b, level, *threshold)
		if err != nil {
			fatal(err)
		}
		s = r.Machine
		norm = r.Norm
	}

	fmt.Printf("benchmark          %s (%s, %d threads), level %s, threshold %d\n",
		b.Name, b.Suite, b.Threads, level, *threshold)
	fmt.Printf("baseline cycles    %d\n", base)
	fmt.Printf("capri cycles       %d  (normalized %.3f)\n", s.Cycles, norm)
	fmt.Printf("instructions       %d retired (%d stores, %d ckpt stores, %d boundaries)\n",
		s.Instret, s.Stores, s.Ckpts, s.Boundaries)
	fmt.Printf("regions            %d dynamic; avg %.1f insts, %.1f stores per region\n",
		s.Regions, s.AvgRegionInsts, s.AvgRegionStores)
	fmt.Printf("front-end proxy    %d allocs, %d merges, %d stalls, %d boundary entries (%d elided)\n",
		s.FrontAllocs, s.FrontMerges, s.FrontStalls, s.BoundaryEntries, s.ElidedBds)
	fmt.Printf("stale-read guard   %d scan hits, %d window hits, %d seq-guard drops\n",
		s.ScanHits, s.WindowHits, s.NVMStaleSkips)
	fmt.Printf("NVM                %d write ops, %d word writes\n", s.NVMWrites, s.NVMWordWrites)
	fmt.Printf("caches             L1 %d/%d hit/miss, L2 %d/%d, DRAM$ %d/%d\n",
		s.L1Hits, s.L1Misses, s.L2Hits, s.L2Misses, s.DRAMHits, s.DRAMMisses)
	fmt.Printf("stall cycles       %d\n", s.StallCycles)

	// Critical-core cycle breakdown from the always-on ledger: where the
	// makespan went. The rows sum exactly to the cycle count.
	fmt.Printf("cycle breakdown (critical core):\n")
	for cc := machine.CycleCause(0); cc < machine.NumCycleCauses; cc++ {
		n := s.CycleBy[cc]
		if n == 0 {
			continue
		}
		fmt.Printf("  %-11s %12d  (%5.1f%%)\n", cc, n, 100*float64(n)/float64(s.Cycles))
	}

	if hist != nil {
		fmt.Printf("histograms (sampled at region boundaries / controller writebacks):\n")
		for _, hh := range []struct {
			name string
			h    *stats.Hist
		}{
			{"front-end occupancy", &hist.FrontOcc},
			{"back-end occupancy", &hist.BackOcc},
			{"path in flight", &hist.PathInFlight},
			{"monitoring window", &hist.WindowLive},
			{"dirty L1 lines", &hist.L1Dirty},
			{"WPQ depth", &hist.WPQDepth},
			{"drain-bank depth", &hist.DrainQueue},
			{"region insts", &hist.RegionInsts},
			{"region stores", &hist.RegionStores},
			{"commit latency", &hist.CommitLat},
		} {
			fmt.Printf("  %-20s %s\n", hh.name, hh.h)
		}
		fmt.Printf("commit latency distribution (cycles):\n%s", hist.CommitLat.Bars(40))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
