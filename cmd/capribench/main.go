// Command capribench regenerates the paper's evaluation artifacts over the
// synthetic benchmark suites: Figure 8 (threshold sweep), Figure 9
// (cumulative compiler optimizations), Figures 10/11 (region shape), the
// §6.2 headline numbers, and Table 1.
//
// Usage:
//
//	capribench -fig 8            # one figure
//	capribench -all              # everything
//	capribench -fig 8 -jobs 8    # shard the sweep across 8 workers
//	capribench -fig 8 -store /tmp/capri-resultstore   # reuse stored results
//	capribench -headline         # suite geomeans only
//	capribench -list             # benchmark inventory
//	capribench -perf             # time the sweeps, write BENCH_sim.json
//	capribench -sweepcheck       # assert parallel == sequential, warm == 0 sims
//	capribench -sweepcheck -verify EXPERIMENTS.md    # plus docs block check
//	capribench -explain          # stall-attribution tables (cycle ledger)
//	capribench -explain -verify EXPERIMENTS.md   # diff tables vs the docs
//	capribench -audit            # run the suite under the Fig. 7 auditor
//	capribench -audit -record-out records/       # plus per-benchmark run records
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"capri/internal/figures"
	"capri/internal/machine"
	"capri/internal/resultstore"
	"capri/internal/stats"
	"capri/internal/telemetry"
	"capri/internal/workload"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure to regenerate: 8, 9, 10 or 11")
		all      = flag.Bool("all", false, "regenerate every figure and the headline")
		headline = flag.Bool("headline", false, "print the §6.2 headline overheads")
		scale    = flag.Int("scale", 1, "workload scale factor")
		list     = flag.Bool("list", false, "list benchmarks and exit")
		chart    = flag.String("chart", "", "additionally render one column as an ASCII bar chart (e.g. \"256\" for fig 8, \"+licm\" for fig 9)")
		perf     = flag.Bool("perf", false, "time the figure sweeps and write a perf-regression report")
		samples  = flag.Int("samples", 1, "with -perf, repeat the timed pipeline this many times and record every sample (variance-aware gating via capristat)")
		perfOut  = flag.String("perfout", "BENCH_sim.json", "perf report output path (with -perf)")
		perfRef  = flag.Bool("perfref", true, "with -perf, also time the Figure-8 sweep on the map-backed reference store and record the speedup")
		seedWall = flag.Float64("seedwall", 0, "with -perf, record this externally measured seed-binary `capribench -fig 8` wall-clock (seconds); see `make perf-seed`")
		perfGate = flag.String("perfgate", "", "with -perf, fail if any sweep's inst/s regressed more than 10% vs this committed report (read before -perfout overwrites it)")
		explain  = flag.Bool("explain", false, "print the stall-attribution tables (where the Capri-vs-baseline cycles went)")
		verify   = flag.String("verify", "", "with -explain, diff the tables against the marked blocks in this file instead of printing")
		auditAll = flag.Bool("audit", false, "run every benchmark under the online Fig. 7 invariant auditor; exit non-zero on any violation")
		recDir   = flag.String("record-out", "", "with -audit, write per-benchmark capri/run-record/v1 files into this directory")
		auditTh  = flag.Int("threshold", 256, "region store threshold (with -audit)")
		jobs     = flag.Int("jobs", 1, "parallel sweep workers (0 = GOMAXPROCS); see README \"Running parallel sweeps\"")
		storeDir = flag.String("store", "", "content-addressed result store `dir`; stored configurations replay instead of simulating")
		sweepChk = flag.Bool("sweepcheck", false, "assert the sweep determinism contract: parallel tables byte-identical to sequential, warm store rerun does zero simulations; with -verify FILE, also byte-check the embedded accounting block")
		listen   = flag.String("listen", "", "serve live OpenMetrics telemetry on this `addr` (e.g. :9090) while the command runs")
		hbOut    = flag.String("heartbeat-out", "", "append JSONL telemetry heartbeats to this `file` (\"-\" = stderr)")
		hbEvery  = flag.Duration("heartbeat-interval", time.Second, "heartbeat sampling interval (with -heartbeat-out)")
	)
	flag.Parse()

	bus, err := telemetry.Start(telemetry.Options{
		Listen:        *listen,
		HeartbeatPath: *hbOut,
		Interval:      *hbEvery,
	})
	check(err)
	defer bus.Stop()
	if addr := bus.Addr(); addr != "" {
		fmt.Fprintf(os.Stderr, "telemetry: serving OpenMetrics on http://%s/metrics\n", addr)
	}

	if *sweepChk {
		check(runSweepCheck(*scale, *jobs, *verify))
		return
	}

	if *auditAll {
		check(runAudit(*scale, *auditTh, *recDir))
		return
	}

	if *perf {
		check(runPerf(*scale, *jobs, *samples, *storeDir, *perfRef, *seedWall, *perfOut, *perfGate))
		return
	}

	if *explain {
		check(runExplain(*scale, *verify))
		return
	}

	if *list {
		for _, b := range append(workload.All(), workload.Micros()...) {
			fmt.Printf("%-18s %-8s threads=%d\n", b.Name, b.Suite, b.Threads)
		}
		return
	}

	h := figures.NewHarness(*scale)
	h.Parallelism = *jobs
	if *storeDir != "" {
		store, err := resultstore.Open(*storeDir)
		check(err)
		// Close seals the final batch of results into a segment. Error paths
		// exit without sealing; the store ignores the partial batch.
		defer store.Close()
		h.UseStore(store)
	}

	if *all || *fig == 0 && !*headline {
		fmt.Print(machine.DefaultConfig().Table1())
		fmt.Println()
	}

	show := func(tbl *stats.Table, baseline float64) {
		fmt.Println(tbl)
		if *chart != "" {
			fmt.Println(tbl.Chart(*chart, baseline, 50))
		}
	}
	runFig := func(n int) {
		switch n {
		case 8:
			tbl, err := h.Fig8(nil)
			check(err)
			show(tbl, 1.0)
		case 9:
			tbl, err := h.Fig9()
			check(err)
			show(tbl, 1.0)
		case 10:
			tbl, err := h.Fig10()
			check(err)
			show(tbl, 0)
		case 11:
			tbl, err := h.Fig11()
			check(err)
			show(tbl, 0)
		case 12: // not a paper figure: the §6.2 NVM-endurance claim as a table
			tbl, err := h.NVMWrites()
			check(err)
			show(tbl, 0)
		default:
			check(fmt.Errorf("capribench: unknown figure %d (have 8-11, 12 = NVM writes)", n))
		}
	}

	switch {
	case *all:
		for _, n := range []int{8, 9, 10, 11, 12} {
			runFig(n)
		}
		printHeadline(h)
	case *headline:
		printHeadline(h)
	case *fig != 0:
		runFig(*fig)
	default:
		flag.Usage()
	}
}

func printHeadline(h *figures.Harness) {
	hd, err := h.Headline()
	check(err)
	fmt.Println("Headline overheads at threshold 256, all optimizations (paper §6.2):")
	fmt.Printf("  SPEC CPU2017   %+6.1f%%   (paper:  0.0%%)\n", 100*hd.SPEC)
	fmt.Printf("  STAMP          %+6.1f%%   (paper: 12.4%%)\n", 100*hd.STAMP)
	fmt.Printf("  Splash-3       %+6.1f%%   (paper:  9.1%%)\n", 100*hd.Splash)
	fmt.Printf("  overall        %+6.1f%%   (paper:  5.1%%)\n", 100*hd.Overall)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
