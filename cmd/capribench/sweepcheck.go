package main

import (
	"fmt"
	"os"
	"strings"

	"capri/internal/figures"
	"capri/internal/resultstore"
)

// sweepBlockName is the marker name of the sweep-accounting block embedded
// in EXPERIMENTS.md. It reuses the explain-block marker syntax so `make
// docs-verify` byte-checks it with the same extractor.
const sweepBlockName = "sweep-accounting"

// sweepTables is one harness's rendered Fig8+Fig9 output plus the counters
// the determinism contract compares.
type sweepTables struct {
	fig8, fig9 string
	instret    uint64
	decBlocks  uint64
	decHits    uint64
	decFused   uint64
	simRuns    uint64
	storeHits  uint64
	storeMiss  uint64
	compiles   int64
}

// renderSweep runs the full Fig8 threshold sweep and the Fig9 level sweep on
// one harness and snapshots the counters.
func renderSweep(scale, jobs int, store *resultstore.Store) (sweepTables, error) {
	var out sweepTables
	h := figures.NewHarness(scale)
	h.Parallelism = jobs
	if store != nil {
		h.UseStore(store)
	}
	t8, err := h.Fig8(nil)
	if err != nil {
		return out, err
	}
	t9, err := h.Fig9()
	if err != nil {
		return out, err
	}
	out.fig8, out.fig9 = t8.String(), t9.String()
	out.instret = h.Instret()
	out.decBlocks, out.decHits, out.decFused = h.DecodeStats()
	out.simRuns = h.SimRuns()
	out.storeHits, out.storeMiss = h.StoreStats()
	out.compiles = h.CompileCacheStats().Misses
	return out, nil
}

// runSweepCheck asserts the sweep orchestrator's determinism contract
// (DESIGN.md §4h) end-to-end, in three acts:
//
//  1. sequential reference — no store, Parallelism 1;
//  2. cold parallel — jobs workers against an empty store: the fig8/fig9
//     tables and every simulation counter must be byte-identical to the
//     sequential run's, and each store probe must miss;
//  3. warm rerun — a fresh harness over the reopened store: identical
//     tables again, with zero simulations and zero compilations
//     (counter-asserted, not assumed).
//
// With verifyPath set it additionally byte-checks the accounting block
// embedded in that file (the docs-verify half of the contract); otherwise it
// prints the block for pasting into EXPERIMENTS.md.
func runSweepCheck(scale, jobs int, verifyPath string) error {
	if jobs < 2 {
		jobs = 4 // the contract is about parallelism; a 1-job check is vacuous
	}
	dir, err := os.MkdirTemp("", "capri-sweepcheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	seq, err := renderSweep(scale, 1, nil)
	if err != nil {
		return fmt.Errorf("sweepcheck sequential: %w", err)
	}

	store, err := resultstore.Open(dir)
	if err != nil {
		return err
	}
	cold, err := renderSweep(scale, jobs, store)
	if err != nil {
		return fmt.Errorf("sweepcheck cold parallel: %w", err)
	}
	if err := store.Close(); err != nil {
		return err
	}
	if cold.fig8 != seq.fig8 || cold.fig9 != seq.fig9 {
		return fmt.Errorf("sweepcheck: parallel (-jobs %d) tables differ from sequential:\n--- sequential fig8 ---\n%s--- parallel fig8 ---\n%s--- sequential fig9 ---\n%s--- parallel fig9 ---\n%s",
			jobs, seq.fig8, cold.fig8, seq.fig9, cold.fig9)
	}
	if cold.instret != seq.instret || cold.simRuns != seq.simRuns {
		return fmt.Errorf("sweepcheck: parallel run simulated different work: %d inst / %d sims vs sequential %d / %d",
			cold.instret, cold.simRuns, seq.instret, seq.simRuns)
	}
	if cold.decBlocks != seq.decBlocks || cold.decHits != seq.decHits || cold.decFused != seq.decFused {
		return fmt.Errorf("sweepcheck: parallel decode counters diverged: %d/%d/%d vs %d/%d/%d",
			cold.decBlocks, cold.decHits, cold.decFused, seq.decBlocks, seq.decHits, seq.decFused)
	}
	if cold.storeHits != 0 {
		return fmt.Errorf("sweepcheck: cold store served %d hits from an empty store", cold.storeHits)
	}

	warmStore, err := resultstore.Open(dir)
	if err != nil {
		return err
	}
	warmStats := warmStore.Stats()
	warm, err := renderSweep(scale, jobs, warmStore)
	if err != nil {
		return fmt.Errorf("sweepcheck warm: %w", err)
	}
	if err := warmStore.Close(); err != nil {
		return err
	}
	if warm.fig8 != seq.fig8 || warm.fig9 != seq.fig9 {
		return fmt.Errorf("sweepcheck: warm-store tables differ from sequential")
	}
	if warm.simRuns != 0 || warm.instret != 0 {
		return fmt.Errorf("sweepcheck: warm store still simulated %d runs / %d instructions, want 0", warm.simRuns, warm.instret)
	}
	if warm.compiles != 0 {
		return fmt.Errorf("sweepcheck: warm store still compiled %d times, want 0", warm.compiles)
	}
	if warm.storeMiss != 0 || warm.storeHits == 0 {
		return fmt.Errorf("sweepcheck: warm store traffic %d hits / %d misses, want all hits", warm.storeHits, warm.storeMiss)
	}

	block := renderSweepBlock(seq, cold, warm, warmStats)
	fmt.Printf("sweepcheck: -jobs %d tables byte-identical to sequential; warm rerun: 0 sims, 0 compiles, %d store hits\n",
		jobs, warm.storeHits)
	if verifyPath == "" {
		fmt.Printf("\n<!-- explain:%s -->\n%s<!-- /explain:%s -->\n", sweepBlockName, block, sweepBlockName)
		return nil
	}
	data, err := os.ReadFile(verifyPath)
	if err != nil {
		return err
	}
	want, err := extractBlock(string(data), sweepBlockName)
	if err != nil {
		return fmt.Errorf("%s: %w", verifyPath, err)
	}
	if want != block {
		return fmt.Errorf("docs-verify: sweep block %q is stale in %s (run `capribench -sweepcheck` and update)\n--- documented:\n%s--- measured:\n%s",
			sweepBlockName, verifyPath, want, block)
	}
	fmt.Printf("docs-verify: sweep block %q in %s matches the simulator\n", sweepBlockName, verifyPath)
	return nil
}

// renderSweepBlock builds the deterministic accounting block embedded in
// EXPERIMENTS.md: pure counters — configurations, simulations, store entries
// and segments — never wall times, so the block is byte-stable across
// machines and job counts.
func renderSweepBlock(seq, cold, warm sweepTables, warmStats resultstore.Stats) string {
	var b strings.Builder
	b.WriteString("```text\n")
	fmt.Fprintf(&b, "fig8+fig9 sweep accounting (scale 1; counters, not clocks)\n")
	fmt.Fprintf(&b, "  simulations (cold)      %6d  (baselines + fig8 cells + fig9 cells)\n", seq.simRuns)
	fmt.Fprintf(&b, "  instructions simulated  %6d k\n", seq.instret/1000)
	fmt.Fprintf(&b, "  distinct compilations   %6d\n", seq.compiles)
	fmt.Fprintf(&b, "  store entries sealed    %6d  in %d segment(s)\n", warmStats.Entries, warmStats.Segments)
	fmt.Fprintf(&b, "  warm-store rerun        %6d  simulations, %d compilations, %d store hits\n",
		warm.simRuns, warm.compiles, warm.storeHits)
	fmt.Fprintf(&b, "  parallel == sequential  fig8, fig9 byte-identical; instret delta %d\n",
		cold.instret-seq.instret)
	b.WriteString("```\n")
	return b.String()
}
