package main

import (
	"fmt"
	"math"
	"os"
	"strings"

	"capri/internal/compile"
	"capri/internal/figures"
	"capri/internal/workload"
)

// The explain blocks embedded in EXPERIMENTS.md. Each one is a full
// stall-attribution table at a configuration the paper's figures discuss:
// the figure-8 endpoints (tight threshold 32, default 256) and figure 9's
// +ckpt level, where checkpoint overhead peaks before unrolling/pruning/LICM
// claw it back. `capribench -explain` prints them; `-explain -verify FILE`
// re-runs the simulations and diffs the output against the blocks in FILE
// (the `make docs-verify` target).
var explainBlocks = []struct {
	name      string
	level     compile.Level
	threshold int
}{
	{"fig8-t32", compile.LevelLICM, 32},
	{"fig8-t256", compile.LevelLICM, 256},
	{"fig9-ckpt", compile.LevelCkpt, 256},
}

// renderExplainBlock builds one block's canonical markdown content: a fenced
// code block holding the attribution table. This exact text lives between the
// `<!-- explain:NAME -->` markers in EXPERIMENTS.md.
func renderExplainBlock(h *figures.Harness, level compile.Level, threshold int) (string, error) {
	tbl, err := h.Explain(level, threshold)
	if err != nil {
		return "", err
	}
	if err := checkResiduals(h, level, threshold, tbl); err != nil {
		return "", err
	}
	return "```text\n" + tbl.String() + "```\n", nil
}

// checkResiduals enforces the explain contract: on every benchmark, the named
// causes account for at least 95% of the Capri-vs-baseline gap (residual at
// most 5% of the gap). The ledger is exhaustive, so the residual should be
// exactly zero — a violation means some cycle increment lost its cause tag.
func checkResiduals(h *figures.Harness, level compile.Level, threshold int, tbl interface {
	Value(label, col string) (float64, bool)
}) error {
	for _, b := range workload.All() {
		resid, ok1 := tbl.Value(b.Name, "resid")
		total, ok2 := tbl.Value(b.Name, "total")
		if !ok1 || !ok2 {
			return fmt.Errorf("explain %s@%d: %s missing from table", level, threshold, b.Name)
		}
		limit := 0.05 * math.Abs(total)
		if limit < 1e-9 {
			limit = 1e-9 // a zero-gap benchmark still must have zero residual
		}
		if math.Abs(resid) > limit {
			return fmt.Errorf("explain %s@%d: %s residual %.4f%% exceeds 5%% of the %.4f%% gap",
				level, threshold, b.Name, resid, total)
		}
	}
	return nil
}

// runExplain prints every explain block (verifyPath empty), or re-renders
// them and diffs against the marked blocks inside verifyPath, failing on any
// mismatch. The simulator is deterministic, so byte equality is the contract.
func runExplain(scale int, verifyPath string) error {
	h := figures.NewHarness(scale)
	if verifyPath == "" {
		for _, blk := range explainBlocks {
			content, err := renderExplainBlock(h, blk.level, blk.threshold)
			if err != nil {
				return err
			}
			fmt.Printf("<!-- explain:%s -->\n%s<!-- /explain:%s -->\n\n", blk.name, content, blk.name)
		}
		return nil
	}

	data, err := os.ReadFile(verifyPath)
	if err != nil {
		return err
	}
	doc := string(data)
	var failed []string
	for _, blk := range explainBlocks {
		want, err := extractBlock(doc, blk.name)
		if err != nil {
			return fmt.Errorf("%s: %w", verifyPath, err)
		}
		got, err := renderExplainBlock(h, blk.level, blk.threshold)
		if err != nil {
			return err
		}
		if got != want {
			failed = append(failed, blk.name)
			fmt.Printf("explain block %q is stale in %s.\n--- documented:\n%s--- measured:\n%s",
				blk.name, verifyPath, want, got)
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("docs-verify: %d stale explain block(s) in %s: %s (run `capribench -explain` and update)",
			len(failed), verifyPath, strings.Join(failed, ", "))
	}
	fmt.Printf("docs-verify: %d explain blocks in %s match the simulator\n", len(explainBlocks), verifyPath)
	return nil
}

// extractBlock returns the text between `<!-- explain:name -->\n` and
// `<!-- /explain:name -->` in doc.
func extractBlock(doc, name string) (string, error) {
	open := fmt.Sprintf("<!-- explain:%s -->\n", name)
	close := fmt.Sprintf("<!-- /explain:%s -->", name)
	i := strings.Index(doc, open)
	if i < 0 {
		return "", fmt.Errorf("explain block %q not found (missing %q)", name, strings.TrimSpace(open))
	}
	rest := doc[i+len(open):]
	j := strings.Index(rest, close)
	if j < 0 {
		return "", fmt.Errorf("explain block %q not terminated (missing %q)", name, close)
	}
	return rest[:j], nil
}
