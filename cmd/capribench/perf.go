package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"capri/internal/compile"
	"capri/internal/figures"
	"capri/internal/machine"
	"capri/internal/resultstore"
	"capri/internal/workload"
)

// BenchSchema identifies the BENCH_sim.json format. v2 added the dispatch
// mode and the per-sweep decode-cache counters (blocks decoded, cache hits,
// fused superinstructions); v3 separates simulated-only throughput from
// wall-clock (a result store replays configurations without simulating, so
// wall-derived inst/s would gate replay speed, not simulator speed) and
// records the sweep's job count and result-store traffic; v4 adds the
// multi-core figures (fig8-mt4 and its lockstep control) with their
// mt_inst_per_sec throughput, quantum grant/abort counters, and run-queue
// traffic. Older
// reports remain readable for gating — figures they lack are skipped.
const BenchSchema = "capri/bench-sim/v4"

// gateTolerance is the fractional inst/s regression `-perfgate` tolerates
// before failing (wall-clock noise allowance).
const gateTolerance = 0.10

// perfFigure is one timed sweep in the perf report.
type perfFigure struct {
	// Figure names the artifact ("fig8", "fig9", ..., "headline",
	// "fig8-refstore" for the map-backed reference run).
	Figure string `json:"figure"`
	// WallSeconds is the sweep's wall-clock time. Figures 9-11 share the
	// harness run cache, so their walls are honest *incremental* costs.
	WallSeconds float64 `json:"wall_seconds"`
	// Instructions newly simulated during this sweep (cache hits excluded).
	Instructions uint64 `json:"instructions"`
	// InstPerSec is Instructions / WallSeconds — the simulator throughput
	// trajectory future PRs regress against. Zero when the sweep simulated
	// nothing new (pure cache replay).
	InstPerSec float64 `json:"inst_per_sec"`
	// Mallocs and BytesAlloc are the process-wide allocation deltas of the
	// sweep; MallocsPerKInst normalizes per thousand simulated instructions.
	Mallocs         uint64  `json:"mallocs"`
	MallocsPerKInst float64 `json:"mallocs_per_kinst"`
	BytesAlloc      uint64  `json:"bytes_alloc"`
	// Decode-cache traffic of the sweep (threaded dispatch only): basic
	// blocks translated to thunk runs, block entries served from the cache,
	// and fused superinstructions among the decoded thunks.
	DecodeBlocks uint64 `json:"decode_blocks,omitempty"`
	DecodeHits   uint64 `json:"decode_hits,omitempty"`
	DecodeFused  uint64 `json:"decode_fused,omitempty"`
	// SimRuns counts machines actually turned during the sweep; store hits
	// replay without simulating and are counted in StoreHits instead.
	SimRuns   uint64 `json:"sim_runs"`
	StoreHits uint64 `json:"store_hits,omitempty"`
	// SimSeconds is wall time spent inside machine.Run, summed per run.
	// SimInstPerSec = Instructions / SimSeconds is the throughput the gate
	// compares: unlike InstPerSec it cannot be inflated by store replays or
	// deflated by compile/setup time. Zero when the sweep simulated nothing.
	SimSeconds    float64 `json:"sim_seconds"`
	SimInstPerSec float64 `json:"sim_inst_per_sec"`
	// MTInstPerSec is the multi-threaded simulated throughput of the fig8-mt4
	// sweeps (the 4-thread Splash-3 suite on 8 simulated cores). It equals
	// SimInstPerSec for those figures and is zero elsewhere; it exists as a
	// named series so the lockstep-vs-extension ratio can be read straight
	// out of the report.
	MTInstPerSec float64 `json:"mt_inst_per_sec,omitempty"`
	// Quantum extension traffic of the sweep (runq.go + quantum.go): grants
	// count dispatches extended past the strict per-instruction quantum,
	// aborts count extension attempts declined or cut short by a conflict.
	// SchedQueueOps counts run-queue pushes+pops — the scheduler traffic the
	// extension exists to cut; compare fig8-mt4 against its lockstep control.
	QuantumGrants uint64 `json:"quantum_grants,omitempty"`
	QuantumAborts uint64 `json:"quantum_aborts,omitempty"`
	SchedQueueOps uint64 `json:"sched_queue_ops,omitempty"`
}

// perfReport is the BENCH_sim.json payload.
type perfReport struct {
	Schema    string    `json:"schema"`
	Generated time.Time `json:"generated"`
	Scale     int       `json:"scale"`
	GoVersion string    `json:"go_version"`
	// Dispatch records which execution core produced the numbers
	// ("threaded" or "switch") — inst/s from different cores do not gate
	// against each other meaningfully.
	Dispatch   string `json:"dispatch,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Jobs is the sweep worker count (-jobs); wall-clock comparisons only
	// mean something between reports with the same value.
	Jobs             int          `json:"jobs,omitempty"`
	Figures          []perfFigure `json:"figures"`
	TotalWallSeconds float64      `json:"total_wall_seconds"`
	// ResultStore snapshots the attached store's traffic at the end of the
	// run (-store); absent when no store was attached.
	ResultStore *resultstore.Stats `json:"result_store,omitempty"`
	// RefFig8 times the identical Figure-8 sweep on the map-backed
	// reference memory store (the seed's data structure grafted into the
	// current binary); SpeedupVsRefStore is its wall-clock divided by the
	// paged store's. It isolates the store swap alone — every other hot-path
	// optimization benefits both runs equally, so this ratio understates the
	// full speedup over the seed.
	RefFig8           *perfFigure `json:"ref_fig8,omitempty"`
	SpeedupVsRefStore float64     `json:"speedup_vs_ref_store,omitempty"`
	// SeedFig8WallSeconds is the measured `capribench -fig 8` wall-clock of
	// the actual seed binary (map store plus all its hot-path allocations),
	// supplied via -seedwall; `make perf-seed` builds the seed from git and
	// measures it. SpeedupVsSeed is the end-to-end ratio the ISSUE targets:
	// >= 1.5x.
	SeedFig8WallSeconds float64 `json:"seed_fig8_wall_seconds,omitempty"`
	SpeedupVsSeed       float64 `json:"speedup_vs_seed,omitempty"`
	// Compile-cache accounting per harness: a sweep that compiles the same
	// (benchmark, level, threshold) twice shows up here as hits shy of the
	// expected count, entries above it.
	Fig8CompileCache   compile.CacheStats `json:"fig8_compile_cache"`
	FigureCompileCache compile.CacheStats `json:"figure_compile_cache"`
}

// measure times fn, attributing instruction and allocation deltas.
func measure(name string, h *figures.Harness, fn func() error) (perfFigure, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	inst0 := h.Instret()
	blk0, hit0, fus0 := h.DecodeStats()
	runs0, sec0 := h.SimRuns(), h.SimSeconds()
	hits0, _ := h.StoreStats()
	start := time.Now()
	err := fn()
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return perfFigure{}, fmt.Errorf("%s: %w", name, err)
	}
	blk1, hit1, fus1 := h.DecodeStats()
	hits1, _ := h.StoreStats()
	pf := perfFigure{
		Figure:       name,
		WallSeconds:  wall,
		Instructions: h.Instret() - inst0,
		Mallocs:      after.Mallocs - before.Mallocs,
		BytesAlloc:   after.TotalAlloc - before.TotalAlloc,
		DecodeBlocks: blk1 - blk0,
		DecodeHits:   hit1 - hit0,
		DecodeFused:  fus1 - fus0,
		SimRuns:      h.SimRuns() - runs0,
		StoreHits:    hits1 - hits0,
		SimSeconds:   h.SimSeconds() - sec0,
	}
	if wall > 0 && pf.Instructions > 0 {
		pf.InstPerSec = float64(pf.Instructions) / wall
		pf.MallocsPerKInst = 1000 * float64(pf.Mallocs) / float64(pf.Instructions)
	}
	if pf.SimSeconds > 0 && pf.Instructions > 0 {
		pf.SimInstPerSec = float64(pf.Instructions) / pf.SimSeconds
	}
	return pf, nil
}

// runMTFigure times the 4-thread Splash-3 suite — the paper's Figure-8
// multi-threaded class — on fresh machines at the paper configuration
// (8 cores, threshold 256, LICM). noExt pins the scheduler to the strict
// per-instruction lockstep schedule (Config.NoQuantumExt), giving the
// control the extension's speedup is measured against; both runs produce
// byte-identical simulated results (the dispatch equivalence suite proves
// it), so the ratio is pure simulator speed.
func runMTFigure(name string, scale int, noExt bool) (perfFigure, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	pf := perfFigure{Figure: name}
	for _, b := range workload.BySuite(workload.SuiteSplash) {
		res, err := compile.Compile(b.Build(scale), compile.OptionsForLevel(compile.LevelLICM, 256))
		if err != nil {
			return perfFigure{}, fmt.Errorf("%s: %s: %w", name, b.Name, err)
		}
		cfg := machine.DefaultConfig()
		cfg.NoQuantumExt = noExt
		m, err := machine.New(res.Program, cfg)
		if err != nil {
			return perfFigure{}, fmt.Errorf("%s: %s: %w", name, b.Name, err)
		}
		t0 := time.Now()
		if err := m.Run(); err != nil {
			return perfFigure{}, fmt.Errorf("%s: %s: %w", name, b.Name, err)
		}
		pf.SimSeconds += time.Since(t0).Seconds()
		s := m.Stats()
		pf.Instructions += s.Instret
		pf.QuantumGrants += s.QuantumGrants
		pf.QuantumAborts += s.QuantumAborts
		pf.SchedQueueOps += s.SchedQueueOps
		pf.SimRuns++
	}
	pf.WallSeconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	pf.Mallocs = after.Mallocs - before.Mallocs
	pf.BytesAlloc = after.TotalAlloc - before.TotalAlloc
	if pf.Instructions > 0 {
		pf.MallocsPerKInst = 1000 * float64(pf.Mallocs) / float64(pf.Instructions)
		if pf.WallSeconds > 0 {
			pf.InstPerSec = float64(pf.Instructions) / pf.WallSeconds
		}
		if pf.SimSeconds > 0 {
			pf.SimInstPerSec = float64(pf.Instructions) / pf.SimSeconds
			pf.MTInstPerSec = pf.SimInstPerSec
		}
	}
	return pf, nil
}

// loadPerfRef reads a previously committed perf report for gating. v1 reports
// (no dispatch/decode fields) decode fine — the missing fields stay zero.
func loadPerfRef(path string) (*perfReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep perfReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// gateRate picks the throughput a report's figure gates on: the
// simulated-only rate when the report carries one (schema v3), otherwise the
// wall-derived rate older reports recorded. Mixing the two for one figure is
// fine — both measure instructions per second of actual simulation when no
// store is attached, which is how reference reports are produced.
func gateRate(f perfFigure) float64 {
	if f.SimInstPerSec > 0 {
		return f.SimInstPerSec
	}
	return f.InstPerSec
}

// gatePerf compares the fresh report against the committed reference and
// errors when any timed sweep's throughput regressed by more than
// gateTolerance. The comparison prefers simulated-only inst/s (store hits
// replay results without simulating, so wall-derived rates from a warm
// store would gate disk speed, not the simulator). Sweeps that simulated
// nothing new in either report (pure cache replays: fig10/11, headline, or
// fully warm store runs) carry no signal and are skipped, as is a reference
// produced by a different dispatch core, at another scale, or with a
// different worker count.
func gatePerf(rep *perfReport, ref *perfReport) error {
	if ref.Scale != rep.Scale {
		fmt.Printf("  gate: reference scale %d != %d, skipping\n", ref.Scale, rep.Scale)
		return nil
	}
	if ref.Dispatch != "" && ref.Dispatch != rep.Dispatch {
		fmt.Printf("  gate: reference dispatch %q != %q, skipping\n", ref.Dispatch, rep.Dispatch)
		return nil
	}
	// A v2 reference has no jobs field (0 == 1: sequential).
	refJobs, repJobs := max(ref.Jobs, 1), max(rep.Jobs, 1)
	if refJobs != repJobs {
		fmt.Printf("  gate: reference jobs %d != %d, skipping\n", refJobs, repJobs)
		return nil
	}
	refBy := map[string]perfFigure{}
	for _, f := range ref.Figures {
		refBy[f.Figure] = f
	}
	// The reference-store run is always sequential and storeless, so it is
	// gateable like-for-like even when the main sweeps ran parallel or
	// replayed from a warm store.
	figs := rep.Figures
	if ref.RefFig8 != nil && rep.RefFig8 != nil {
		refBy[ref.RefFig8.Figure] = *ref.RefFig8
		figs = append(append([]perfFigure{}, figs...), *rep.RefFig8)
	}
	var failed []string
	for _, f := range figs {
		r, ok := refBy[f.Figure]
		if !ok || gateRate(r) <= 0 || gateRate(f) <= 0 {
			continue
		}
		ratio := gateRate(f) / gateRate(r)
		verdict := "ok"
		if ratio < 1-gateTolerance {
			verdict = "REGRESSED"
			failed = append(failed, f.Figure)
		}
		fmt.Printf("  gate: %-10s %10.0f inst/s vs ref %10.0f  (%.2fx) %s\n",
			f.Figure, gateRate(f), gateRate(r), ratio, verdict)
	}
	if len(failed) != 0 {
		return fmt.Errorf("perf gate: %v regressed more than %.0f%% vs reference", failed, 100*gateTolerance)
	}
	return nil
}

// runPerf times the full figure pipeline and writes BENCH_sim.json. jobs
// shards the sweeps; a non-empty storeDir attaches the result store to the
// figure harnesses (never to the reference-store harness: its wall-clock IS
// the measurement). withRef additionally times the Figure-8 sweep on the
// map-backed reference store to record the paged store's wall-clock speedup.
// A non-empty gatePath names a committed reference report to regress
// against: the fresh report is still written, then an error is returned if
// throughput fell beyond tolerance.
func runPerf(scale, jobs int, storeDir string, withRef bool, seedWall float64, outPath, gatePath string) error {
	var gateRef *perfReport
	if gatePath != "" {
		// Read the reference up front — outPath may overwrite it.
		ref, err := loadPerfRef(gatePath)
		if err != nil {
			return fmt.Errorf("perf gate: %w", err)
		}
		gateRef = ref
	}
	rep := perfReport{
		Schema:     BenchSchema,
		Generated:  time.Now().UTC(),
		Scale:      scale,
		GoVersion:  runtime.Version(),
		Dispatch:   machine.DefaultConfig().Dispatch.String(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Jobs:       max(jobs, 1),
	}
	var store *resultstore.Store
	if storeDir != "" {
		s, err := resultstore.Open(storeDir)
		if err != nil {
			return err
		}
		store = s
		defer store.Close()
	}

	// Figure 8 on a fresh harness: the headline sweep (21 benchmarks x 6
	// thresholds, plus baselines).
	h8 := figures.NewHarness(scale)
	h8.Parallelism = jobs
	if store != nil {
		h8.UseStore(store)
	}
	pf, err := measure("fig8", h8, func() error { _, err := h8.Fig8(nil); return err })
	if err != nil {
		return err
	}
	rep.Figures = append(rep.Figures, pf)

	// Figures 9-11 and the headline share one harness (as capribench -all
	// does): fig9 pays the level sweep, 10/11 replay its cache.
	h := figures.NewHarness(scale)
	h.Parallelism = jobs
	if store != nil {
		h.UseStore(store)
	}
	for _, f := range []struct {
		name string
		run  func() error
	}{
		{"fig9", func() error { _, err := h.Fig9(); return err }},
		{"fig10", func() error { _, err := h.Fig10(); return err }},
		{"fig11", func() error { _, err := h.Fig11(); return err }},
		{"headline", func() error { _, err := h.Headline(); return err }},
	} {
		pf, err := measure(f.name, h, f.run)
		if err != nil {
			return err
		}
		rep.Figures = append(rep.Figures, pf)
	}
	// The multi-core figures: the 4-thread Splash-3 suite with the quantum
	// extension (the default scheduler) and pinned to strict lockstep. Their
	// simulated results are identical; the mt_inst_per_sec ratio is the
	// scheduler speedup on lockstep-heavy workloads.
	var mtExt, mtLock perfFigure
	for _, mt := range []struct {
		name  string
		noExt bool
		out   *perfFigure
	}{
		{"fig8-mt4", false, &mtExt},
		{"fig8-mt4-lockstep", true, &mtLock},
	} {
		pf, err := runMTFigure(mt.name, scale, mt.noExt)
		if err != nil {
			return err
		}
		*mt.out = pf
		rep.Figures = append(rep.Figures, pf)
	}
	for _, f := range rep.Figures {
		rep.TotalWallSeconds += f.WallSeconds
	}
	rep.Fig8CompileCache = h8.CompileCacheStats()
	rep.FigureCompileCache = h.CompileCacheStats()
	if store != nil {
		st := store.Stats()
		rep.ResultStore = &st
	}

	if withRef {
		// The reference harness gets neither store nor parallelism: its
		// wall-clock is compared against fig8's, so both must pay for every
		// simulation the same way.
		href := figures.NewHarness(scale)
		href.RefStore = true
		pf, err := measure("fig8-refstore", href, func() error { _, err := href.Fig8(nil); return err })
		if err != nil {
			return err
		}
		rep.RefFig8 = &pf
		// Wall-vs-wall ratios are only honest when fig8 simulated everything
		// sequentially: a store replay would be compared against the
		// reference harness's full simulation cost, and a parallel sweep's
		// wall reflects scheduling, not per-run simulator speed.
		if fig8 := rep.Figures[0]; fig8.WallSeconds > 0 && fig8.StoreHits == 0 && rep.Jobs <= 1 {
			rep.SpeedupVsRefStore = pf.WallSeconds / fig8.WallSeconds
		}
	}
	if seedWall > 0 {
		rep.SeedFig8WallSeconds = seedWall
		if fig8 := rep.Figures[0]; fig8.WallSeconds > 0 && fig8.StoreHits == 0 && rep.Jobs <= 1 {
			rep.SpeedupVsSeed = seedWall / fig8.WallSeconds
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}

	fmt.Printf("perf: wrote %s (scale %d, %s dispatch, %d job(s))\n", outPath, scale, rep.Dispatch, rep.Jobs)
	for _, f := range rep.Figures {
		fmt.Printf("  %-10s %8.3fs  %9d inst  %10.0f sim inst/s  %6.1f mallocs/kinst\n",
			f.Figure, f.WallSeconds, f.Instructions, f.SimInstPerSec, f.MallocsPerKInst)
		if f.SimRuns+f.StoreHits > 0 {
			fmt.Printf("  %-10s %d simulated, %d replayed from the result store\n",
				"", f.SimRuns, f.StoreHits)
		}
		if f.DecodeBlocks+f.DecodeHits > 0 {
			fmt.Printf("  %-10s decode: %d blocks, %d cache hits, %d fused ops\n",
				"", f.DecodeBlocks, f.DecodeHits, f.DecodeFused)
		}
	}
	if mtExt.MTInstPerSec > 0 && mtLock.MTInstPerSec > 0 {
		fmt.Printf("  multi-core: %d quantum grants, %d aborts; sim speedup vs lockstep: %.2fx\n",
			mtExt.QuantumGrants, mtExt.QuantumAborts, mtExt.MTInstPerSec/mtLock.MTInstPerSec)
		if mtLock.SchedQueueOps > 0 {
			fmt.Printf("  multi-core: scheduler queue ops %d vs %d lockstep (%.0f%% fewer pops)\n",
				mtExt.SchedQueueOps, mtLock.SchedQueueOps,
				100*(1-float64(mtExt.SchedQueueOps)/float64(mtLock.SchedQueueOps)))
		}
	}
	if rep.ResultStore != nil {
		fmt.Printf("  result store: %d entries in %d segment(s); %d hits, %d misses, %d puts this run\n",
			rep.ResultStore.Entries, rep.ResultStore.Segments, rep.ResultStore.Hits, rep.ResultStore.Misses, rep.ResultStore.Puts)
	}
	for _, cc := range []struct {
		name string
		s    compile.CacheStats
	}{{"fig8", rep.Fig8CompileCache}, {"fig9-11", rep.FigureCompileCache}} {
		fmt.Printf("  compile cache %-8s %4d compiles, %4d hits (%d distinct configurations)\n",
			cc.name, cc.s.Misses, cc.s.Hits, cc.s.Entries)
	}
	if rep.RefFig8 != nil {
		fmt.Printf("  %-10s %8.3fs  (map-backed reference store, same binary)\n", rep.RefFig8.Figure, rep.RefFig8.WallSeconds)
		if rep.SpeedupVsRefStore > 0 {
			fmt.Printf("  store-swap speedup vs in-binary reference: %.2fx\n", rep.SpeedupVsRefStore)
		} else {
			fmt.Printf("  store-swap speedup: n/a (fig8 replayed from store or ran parallel)\n")
		}
	}
	if rep.SpeedupVsSeed > 0 {
		fmt.Printf("  fig8-seed  %8.3fs  (seed binary, via -seedwall)\n", rep.SeedFig8WallSeconds)
		fmt.Printf("  end-to-end speedup vs seed: %.2fx (target >= 1.5x)\n", rep.SpeedupVsSeed)
	}
	if gateRef != nil {
		return gatePerf(&rep, gateRef)
	}
	return nil
}
