package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"capri/internal/compile"
	"capri/internal/figures"
	"capri/internal/machine"
	"capri/internal/resultstore"
	"capri/internal/stats"
	"capri/internal/workload"
)

// BenchSchema identifies the BENCH_sim.json format. v2 added the dispatch
// mode and the per-sweep decode-cache counters (blocks decoded, cache hits,
// fused superinstructions); v3 separates simulated-only throughput from
// wall-clock (a result store replays configurations without simulating, so
// wall-derived inst/s would gate replay speed, not simulator speed) and
// records the sweep's job count and result-store traffic; v4 adds the
// multi-core figures (fig8-mt4 and its lockstep control) with their
// mt_inst_per_sec throughput, quantum grant/abort counters, and run-queue
// traffic; v5 adds the multi-sample methodology (-samples N): a per-figure
// samples array with median/MAD summary rates, the host fingerprint, and
// the degenerate-rate guard. Older reports remain readable for gating —
// figures and fields they lack are skipped.
const BenchSchema = "capri/bench-sim/v5"

// gateTolerance is the fractional inst/s regression `-perfgate` tolerates
// before failing (wall-clock noise allowance). This single-sample point
// cliff is the documented fallback only — `make perf` gates through
// `capristat`, which judges the v5 samples arrays with a rank test
// instead (see cmd/capristat).
const gateTolerance = 0.10

// minMeasurableSeconds is the guard below which a wall or simulated
// duration carries no rate signal: a sub-millisecond sweep at a tiny
// -scale divides a handful of instructions by timer jitter. Rates over
// such durations are reported as 0 with Degenerate set instead of a
// huge or +Inf value.
const minMeasurableSeconds = 1e-3

// safeRate returns inst/secs, guarding the degenerate cases: no
// instructions or no elapsed time yield (0, false) — nothing measured —
// while a positive duration under minMeasurableSeconds with work done
// yields (0, true): there WAS a measurement, but it is too short to be a
// rate.
func safeRate(inst uint64, secs float64) (rate float64, degenerate bool) {
	if inst == 0 || secs <= 0 {
		return 0, false
	}
	if secs < minMeasurableSeconds {
		return 0, true
	}
	return float64(inst) / secs, false
}

// perfFigure is one timed sweep in the perf report.
type perfFigure struct {
	// Figure names the artifact ("fig8", "fig9", ..., "headline",
	// "fig8-refstore" for the map-backed reference run).
	Figure string `json:"figure"`
	// WallSeconds is the sweep's wall-clock time. Figures 9-11 share the
	// harness run cache, so their walls are honest *incremental* costs.
	WallSeconds float64 `json:"wall_seconds"`
	// Instructions newly simulated during this sweep (cache hits excluded).
	Instructions uint64 `json:"instructions"`
	// InstPerSec is Instructions / WallSeconds — the simulator throughput
	// trajectory future PRs regress against. Zero when the sweep simulated
	// nothing new (pure cache replay).
	InstPerSec float64 `json:"inst_per_sec"`
	// Mallocs and BytesAlloc are the process-wide allocation deltas of the
	// sweep; MallocsPerKInst normalizes per thousand simulated instructions.
	Mallocs         uint64  `json:"mallocs"`
	MallocsPerKInst float64 `json:"mallocs_per_kinst"`
	BytesAlloc      uint64  `json:"bytes_alloc"`
	// Decode-cache traffic of the sweep (threaded dispatch only): basic
	// blocks translated to thunk runs, block entries served from the cache,
	// and fused superinstructions among the decoded thunks.
	DecodeBlocks uint64 `json:"decode_blocks,omitempty"`
	DecodeHits   uint64 `json:"decode_hits,omitempty"`
	DecodeFused  uint64 `json:"decode_fused,omitempty"`
	// SimRuns counts machines actually turned during the sweep; store hits
	// replay without simulating and are counted in StoreHits instead.
	SimRuns   uint64 `json:"sim_runs"`
	StoreHits uint64 `json:"store_hits,omitempty"`
	// SimSeconds is wall time spent inside machine.Run, summed per run.
	// SimInstPerSec = Instructions / SimSeconds is the throughput the gate
	// compares: unlike InstPerSec it cannot be inflated by store replays or
	// deflated by compile/setup time. Zero when the sweep simulated nothing.
	SimSeconds    float64 `json:"sim_seconds"`
	SimInstPerSec float64 `json:"sim_inst_per_sec"`
	// MTInstPerSec is the multi-threaded simulated throughput of the fig8-mt4
	// sweeps (the 4-thread Splash-3 suite on 8 simulated cores). It equals
	// SimInstPerSec for those figures and is zero elsewhere; it exists as a
	// named series so the lockstep-vs-extension ratio can be read straight
	// out of the report.
	MTInstPerSec float64 `json:"mt_inst_per_sec,omitempty"`
	// Quantum extension traffic of the sweep (runq.go + quantum.go): grants
	// count dispatches extended past the strict per-instruction quantum,
	// aborts count extension attempts declined or cut short by a conflict.
	// SchedQueueOps counts run-queue pushes+pops — the scheduler traffic the
	// extension exists to cut; compare fig8-mt4 against its lockstep control.
	QuantumGrants uint64 `json:"quantum_grants,omitempty"`
	QuantumAborts uint64 `json:"quantum_aborts,omitempty"`
	SchedQueueOps uint64 `json:"sched_queue_ops,omitempty"`
	// Degenerate marks a figure whose duration fell below the measurable
	// floor (minMeasurableSeconds) while it did simulate work: its rates
	// are reported as 0 rather than a jitter-derived number.
	Degenerate bool `json:"degenerate,omitempty"`
	// Samples holds every per-sample measurement when the report was
	// produced with -samples N (schema v5); the figure's top-level fields
	// are the median sample's, so they stay internally consistent. The
	// median/MAD summarize the samples' sim_inst_per_sec.
	Samples             []perfSample `json:"samples,omitempty"`
	MedianSimInstPerSec float64      `json:"median_sim_inst_per_sec,omitempty"`
	MADSimInstPerSec    float64      `json:"mad_sim_inst_per_sec,omitempty"`
}

// perfSample is one of a figure's -samples N measurements: the timing
// signal capristat's rank test consumes, without the per-sweep counters
// (identical across samples by determinism).
type perfSample struct {
	WallSeconds   float64 `json:"wall_seconds"`
	Instructions  uint64  `json:"instructions"`
	SimSeconds    float64 `json:"sim_seconds"`
	SimInstPerSec float64 `json:"sim_inst_per_sec"`
	Degenerate    bool    `json:"degenerate,omitempty"`
}

// sampleOf extracts a figure measurement's timing sample.
func sampleOf(f perfFigure) perfSample {
	return perfSample{
		WallSeconds:   f.WallSeconds,
		Instructions:  f.Instructions,
		SimSeconds:    f.SimSeconds,
		SimInstPerSec: f.SimInstPerSec,
		Degenerate:    f.Degenerate,
	}
}

// hostInfo fingerprints the machine a report was produced on: rate
// comparisons between different hosts are not regressions, and capristat
// warns when the fingerprints differ.
type hostInfo struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Hostname   string `json:"hostname,omitempty"`
}

// currentHost captures the running machine's fingerprint.
func currentHost() *hostInfo {
	name, _ := os.Hostname()
	return &hostInfo{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Hostname:   name,
	}
}

// perfReport is the BENCH_sim.json payload.
type perfReport struct {
	Schema    string    `json:"schema"`
	Generated time.Time `json:"generated"`
	Scale     int       `json:"scale"`
	GoVersion string    `json:"go_version"`
	// Dispatch records which execution core produced the numbers
	// ("threaded" or "switch") — inst/s from different cores do not gate
	// against each other meaningfully.
	Dispatch   string `json:"dispatch,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Jobs is the sweep worker count (-jobs); wall-clock comparisons only
	// mean something between reports with the same value.
	Jobs int `json:"jobs,omitempty"`
	// Samples is the -samples count the report was produced with (v5);
	// 0 or 1 means single-sample. Host fingerprints the producing
	// machine.
	Samples          int          `json:"samples,omitempty"`
	Host             *hostInfo    `json:"host,omitempty"`
	Figures          []perfFigure `json:"figures"`
	TotalWallSeconds float64      `json:"total_wall_seconds"`
	// ResultStore snapshots the attached store's traffic at the end of the
	// run (-store); absent when no store was attached.
	ResultStore *resultstore.Stats `json:"result_store,omitempty"`
	// RefFig8 times the identical Figure-8 sweep on the map-backed
	// reference memory store (the seed's data structure grafted into the
	// current binary); SpeedupVsRefStore is its wall-clock divided by the
	// paged store's. It isolates the store swap alone — every other hot-path
	// optimization benefits both runs equally, so this ratio understates the
	// full speedup over the seed.
	RefFig8           *perfFigure `json:"ref_fig8,omitempty"`
	SpeedupVsRefStore float64     `json:"speedup_vs_ref_store,omitempty"`
	// SeedFig8WallSeconds is the measured `capribench -fig 8` wall-clock of
	// the actual seed binary (map store plus all its hot-path allocations),
	// supplied via -seedwall; `make perf-seed` builds the seed from git and
	// measures it. SpeedupVsSeed is the end-to-end ratio the ISSUE targets:
	// >= 1.5x.
	SeedFig8WallSeconds float64 `json:"seed_fig8_wall_seconds,omitempty"`
	SpeedupVsSeed       float64 `json:"speedup_vs_seed,omitempty"`
	// Compile-cache accounting per harness: a sweep that compiles the same
	// (benchmark, level, threshold) twice shows up here as hits shy of the
	// expected count, entries above it.
	Fig8CompileCache   compile.CacheStats `json:"fig8_compile_cache"`
	FigureCompileCache compile.CacheStats `json:"figure_compile_cache"`
}

// measure times fn, attributing instruction and allocation deltas.
func measure(name string, h *figures.Harness, fn func() error) (perfFigure, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	inst0 := h.Instret()
	blk0, hit0, fus0 := h.DecodeStats()
	runs0, sec0 := h.SimRuns(), h.SimSeconds()
	hits0, _ := h.StoreStats()
	start := time.Now()
	err := fn()
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return perfFigure{}, fmt.Errorf("%s: %w", name, err)
	}
	blk1, hit1, fus1 := h.DecodeStats()
	hits1, _ := h.StoreStats()
	pf := perfFigure{
		Figure:       name,
		WallSeconds:  wall,
		Instructions: h.Instret() - inst0,
		Mallocs:      after.Mallocs - before.Mallocs,
		BytesAlloc:   after.TotalAlloc - before.TotalAlloc,
		DecodeBlocks: blk1 - blk0,
		DecodeHits:   hit1 - hit0,
		DecodeFused:  fus1 - fus0,
		SimRuns:      h.SimRuns() - runs0,
		StoreHits:    hits1 - hits0,
		SimSeconds:   h.SimSeconds() - sec0,
	}
	if pf.Instructions > 0 {
		pf.MallocsPerKInst = 1000 * float64(pf.Mallocs) / float64(pf.Instructions)
	}
	var degWall, degSim bool
	pf.InstPerSec, degWall = safeRate(pf.Instructions, wall)
	pf.SimInstPerSec, degSim = safeRate(pf.Instructions, pf.SimSeconds)
	pf.Degenerate = degWall || degSim
	return pf, nil
}

// runMTFigure times the 4-thread Splash-3 suite — the paper's Figure-8
// multi-threaded class — on fresh machines at the paper configuration
// (8 cores, threshold 256, LICM). noExt pins the scheduler to the strict
// per-instruction lockstep schedule (Config.NoQuantumExt), giving the
// control the extension's speedup is measured against; both runs produce
// byte-identical simulated results (the dispatch equivalence suite proves
// it), so the ratio is pure simulator speed.
func runMTFigure(name string, scale int, noExt bool) (perfFigure, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	pf := perfFigure{Figure: name}
	for _, b := range workload.BySuite(workload.SuiteSplash) {
		res, err := compile.Compile(b.Build(scale), compile.OptionsForLevel(compile.LevelLICM, 256))
		if err != nil {
			return perfFigure{}, fmt.Errorf("%s: %s: %w", name, b.Name, err)
		}
		cfg := machine.DefaultConfig()
		cfg.NoQuantumExt = noExt
		m, err := machine.New(res.Program, cfg)
		if err != nil {
			return perfFigure{}, fmt.Errorf("%s: %s: %w", name, b.Name, err)
		}
		t0 := time.Now()
		if err := m.Run(); err != nil {
			return perfFigure{}, fmt.Errorf("%s: %s: %w", name, b.Name, err)
		}
		pf.SimSeconds += time.Since(t0).Seconds()
		s := m.Stats()
		pf.Instructions += s.Instret
		pf.QuantumGrants += s.QuantumGrants
		pf.QuantumAborts += s.QuantumAborts
		pf.SchedQueueOps += s.SchedQueueOps
		pf.SimRuns++
	}
	pf.WallSeconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	pf.Mallocs = after.Mallocs - before.Mallocs
	pf.BytesAlloc = after.TotalAlloc - before.TotalAlloc
	if pf.Instructions > 0 {
		pf.MallocsPerKInst = 1000 * float64(pf.Mallocs) / float64(pf.Instructions)
	}
	var degWall, degSim bool
	pf.InstPerSec, degWall = safeRate(pf.Instructions, pf.WallSeconds)
	pf.SimInstPerSec, degSim = safeRate(pf.Instructions, pf.SimSeconds)
	pf.MTInstPerSec = pf.SimInstPerSec
	pf.Degenerate = degWall || degSim
	return pf, nil
}

// loadPerfRef reads a previously committed perf report for gating. v1 reports
// (no dispatch/decode fields) decode fine — the missing fields stay zero.
func loadPerfRef(path string) (*perfReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep perfReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// gateRate picks the throughput a report's figure gates on: the
// simulated-only rate when the report carries one (schema v3), otherwise the
// wall-derived rate older reports recorded. Mixing the two for one figure is
// fine — both measure instructions per second of actual simulation when no
// store is attached, which is how reference reports are produced.
func gateRate(f perfFigure) float64 {
	if f.SimInstPerSec > 0 {
		return f.SimInstPerSec
	}
	return f.InstPerSec
}

// gatePerf compares the fresh report against the committed reference and
// errors when any timed sweep's throughput regressed by more than
// gateTolerance. The comparison prefers simulated-only inst/s (store hits
// replay results without simulating, so wall-derived rates from a warm
// store would gate disk speed, not the simulator). Sweeps that simulated
// nothing new in either report (pure cache replays: fig10/11, headline, or
// fully warm store runs) carry no signal and are skipped, as is a reference
// produced by a different dispatch core, at another scale, or with a
// different worker count.
func gatePerf(rep *perfReport, ref *perfReport) error {
	if ref.Scale != rep.Scale {
		fmt.Printf("  gate: reference scale %d != %d, skipping\n", ref.Scale, rep.Scale)
		return nil
	}
	if ref.Dispatch != "" && ref.Dispatch != rep.Dispatch {
		fmt.Printf("  gate: reference dispatch %q != %q, skipping\n", ref.Dispatch, rep.Dispatch)
		return nil
	}
	// A v2 reference has no jobs field (0 == 1: sequential).
	refJobs, repJobs := max(ref.Jobs, 1), max(rep.Jobs, 1)
	if refJobs != repJobs {
		fmt.Printf("  gate: reference jobs %d != %d, skipping\n", refJobs, repJobs)
		return nil
	}
	refBy := map[string]perfFigure{}
	for _, f := range ref.Figures {
		refBy[f.Figure] = f
	}
	// The reference-store run is always sequential and storeless, so it is
	// gateable like-for-like even when the main sweeps ran parallel or
	// replayed from a warm store.
	figs := rep.Figures
	if ref.RefFig8 != nil && rep.RefFig8 != nil {
		refBy[ref.RefFig8.Figure] = *ref.RefFig8
		figs = append(append([]perfFigure{}, figs...), *rep.RefFig8)
	}
	var failed []string
	for _, f := range figs {
		r, ok := refBy[f.Figure]
		if !ok || gateRate(r) <= 0 || gateRate(f) <= 0 {
			continue
		}
		ratio := gateRate(f) / gateRate(r)
		verdict := "ok"
		if ratio < 1-gateTolerance {
			verdict = "REGRESSED"
			failed = append(failed, f.Figure)
		}
		fmt.Printf("  gate: %-10s %10.0f inst/s vs ref %10.0f  (%.2fx) %s\n",
			f.Figure, gateRate(f), gateRate(r), ratio, verdict)
	}
	if len(failed) != 0 {
		return fmt.Errorf("perf gate: %v regressed more than %.0f%% vs reference", failed, 100*gateTolerance)
	}
	return nil
}

// perfPass is one full timed pass over the figure pipeline — one sample
// of every figure, plus the pass's compile-cache and store accounting.
type perfPass struct {
	figures []perfFigure
	ref     *perfFigure
	fig8CC  compile.CacheStats
	figCC   compile.CacheStats
	store   *resultstore.Stats
}

// runPerfPass times the full figure pipeline once on fresh harnesses.
// jobs shards the sweeps; a non-nil store attaches the result store to
// the figure harnesses (never to the reference-store harness: its
// wall-clock IS the measurement). withRef additionally times the
// Figure-8 sweep on the map-backed reference store.
func runPerfPass(scale, jobs int, store *resultstore.Store, withRef bool) (perfPass, error) {
	var pass perfPass

	// Figure 8 on a fresh harness: the headline sweep (21 benchmarks x 6
	// thresholds, plus baselines).
	h8 := figures.NewHarness(scale)
	h8.Parallelism = jobs
	if store != nil {
		h8.UseStore(store)
	}
	pf, err := measure("fig8", h8, func() error { _, err := h8.Fig8(nil); return err })
	if err != nil {
		return pass, err
	}
	pass.figures = append(pass.figures, pf)

	// Figures 9-11 and the headline share one harness (as capribench -all
	// does): fig9 pays the level sweep, 10/11 replay its cache.
	h := figures.NewHarness(scale)
	h.Parallelism = jobs
	if store != nil {
		h.UseStore(store)
	}
	for _, f := range []struct {
		name string
		run  func() error
	}{
		{"fig9", func() error { _, err := h.Fig9(); return err }},
		{"fig10", func() error { _, err := h.Fig10(); return err }},
		{"fig11", func() error { _, err := h.Fig11(); return err }},
		{"headline", func() error { _, err := h.Headline(); return err }},
	} {
		pf, err := measure(f.name, h, f.run)
		if err != nil {
			return pass, err
		}
		pass.figures = append(pass.figures, pf)
	}
	// The multi-core figures: the 4-thread Splash-3 suite with the quantum
	// extension (the default scheduler) and pinned to strict lockstep. Their
	// simulated results are identical; the mt_inst_per_sec ratio is the
	// scheduler speedup on lockstep-heavy workloads.
	for _, mt := range []struct {
		name  string
		noExt bool
	}{
		{"fig8-mt4", false},
		{"fig8-mt4-lockstep", true},
	} {
		pf, err := runMTFigure(mt.name, scale, mt.noExt)
		if err != nil {
			return pass, err
		}
		pass.figures = append(pass.figures, pf)
	}
	pass.fig8CC = h8.CompileCacheStats()
	pass.figCC = h.CompileCacheStats()
	if store != nil {
		st := store.Stats()
		pass.store = &st
	}

	if withRef {
		// The reference harness gets neither store nor parallelism: its
		// wall-clock is compared against fig8's, so both must pay for every
		// simulation the same way.
		href := figures.NewHarness(scale)
		href.RefStore = true
		pf, err := measure("fig8-refstore", href, func() error { _, err := href.Fig8(nil); return err })
		if err != nil {
			return pass, err
		}
		pass.ref = &pf
	}
	return pass, nil
}

// medianIndex returns the index of the lower-median element of xs.
func medianIndex(xs []float64) int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx[(len(idx)-1)/2]
}

// summarize folds one figure's per-pass measurements into the reported
// figure: the median pass's measurement (by simulated rate, so every
// reported counter comes from one internally consistent pass) carrying
// the full samples array and the median/MAD summary.
func summarize(samples []perfFigure) perfFigure {
	rates := make([]float64, len(samples))
	for i, s := range samples {
		rates[i] = s.SimInstPerSec
	}
	f := samples[medianIndex(rates)]
	if len(samples) > 1 {
		for _, s := range samples {
			f.Samples = append(f.Samples, sampleOf(s))
		}
		f.MedianSimInstPerSec = stats.Median(rates)
		f.MADSimInstPerSec = stats.MAD(rates)
	}
	return f
}

// runPerf times the full figure pipeline `samples` times and writes
// BENCH_sim.json. With samples > 1 the result store is never attached —
// a warm store replays configurations without simulating, so repeated
// passes would measure disk replay, not the simulator — and each
// figure's report carries the per-sample array `capristat` judges. A
// non-empty gatePath names a committed reference report to regress
// against with the single-sample point gate (the documented fallback;
// `make perf` gates through capristat instead): the fresh report is
// still written, then an error is returned if throughput fell beyond
// tolerance.
func runPerf(scale, jobs, samples int, storeDir string, withRef bool, seedWall float64, outPath, gatePath string) error {
	if samples < 1 {
		samples = 1
	}
	var gateRef *perfReport
	if gatePath != "" {
		// Read the reference up front — outPath may overwrite it.
		ref, err := loadPerfRef(gatePath)
		if err != nil {
			return fmt.Errorf("perf gate: %w", err)
		}
		gateRef = ref
	}
	rep := perfReport{
		Schema:     BenchSchema,
		Generated:  time.Now().UTC(),
		Scale:      scale,
		GoVersion:  runtime.Version(),
		Dispatch:   machine.DefaultConfig().Dispatch.String(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Jobs:       max(jobs, 1),
		Samples:    samples,
		Host:       currentHost(),
	}
	var store *resultstore.Store
	if storeDir != "" {
		if samples > 1 {
			fmt.Printf("perf: -samples %d ignores -store %s (warm replays carry no timing signal)\n", samples, storeDir)
		} else {
			s, err := resultstore.Open(storeDir)
			if err != nil {
				return err
			}
			store = s
			defer store.Close()
		}
	}

	passes := make([]perfPass, samples)
	for s := 0; s < samples; s++ {
		pass, err := runPerfPass(scale, jobs, store, withRef)
		if err != nil {
			return err
		}
		passes[s] = pass
		if samples > 1 {
			fmt.Printf("perf: sample %d/%d  fig8 %.3fs  (%.0f sim inst/s)\n",
				s+1, samples, pass.figures[0].WallSeconds, pass.figures[0].SimInstPerSec)
		}
	}

	for i := range passes[0].figures {
		col := make([]perfFigure, samples)
		for s := range passes {
			col[s] = passes[s].figures[i]
		}
		rep.Figures = append(rep.Figures, summarize(col))
	}
	for _, f := range rep.Figures {
		rep.TotalWallSeconds += f.WallSeconds
	}
	rep.Fig8CompileCache = passes[0].fig8CC
	rep.FigureCompileCache = passes[0].figCC
	rep.ResultStore = passes[samples-1].store

	if withRef {
		col := make([]perfFigure, samples)
		for s := range passes {
			col[s] = *passes[s].ref
		}
		ref := summarize(col)
		rep.RefFig8 = &ref
		// Wall-vs-wall ratios are only honest when fig8 simulated everything
		// sequentially: a store replay would be compared against the
		// reference harness's full simulation cost, and a parallel sweep's
		// wall reflects scheduling, not per-run simulator speed.
		if fig8 := rep.Figures[0]; fig8.WallSeconds > 0 && fig8.StoreHits == 0 && rep.Jobs <= 1 {
			rep.SpeedupVsRefStore = ref.WallSeconds / fig8.WallSeconds
		}
	}
	if seedWall > 0 {
		rep.SeedFig8WallSeconds = seedWall
		if fig8 := rep.Figures[0]; fig8.WallSeconds > 0 && fig8.StoreHits == 0 && rep.Jobs <= 1 {
			rep.SpeedupVsSeed = seedWall / fig8.WallSeconds
		}
	}
	var mtExt, mtLock perfFigure
	for _, f := range rep.Figures {
		switch f.Figure {
		case "fig8-mt4":
			mtExt = f
		case "fig8-mt4-lockstep":
			mtLock = f
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}

	fmt.Printf("perf: wrote %s (scale %d, %s dispatch, %d job(s), %d sample(s))\n",
		outPath, scale, rep.Dispatch, rep.Jobs, rep.Samples)
	for _, f := range rep.Figures {
		fmt.Printf("  %-10s %8.3fs  %9d inst  %10.0f sim inst/s  %6.1f mallocs/kinst\n",
			f.Figure, f.WallSeconds, f.Instructions, f.SimInstPerSec, f.MallocsPerKInst)
		if len(f.Samples) > 1 {
			fmt.Printf("  %-10s median %.0f ± %.0f MAD sim inst/s over %d samples\n",
				"", f.MedianSimInstPerSec, f.MADSimInstPerSec, len(f.Samples))
		}
		if f.Degenerate {
			fmt.Printf("  %-10s DEGENERATE: duration below %.0fms, rates reported as 0\n",
				"", 1000*minMeasurableSeconds)
		}
		if f.SimRuns+f.StoreHits > 0 {
			fmt.Printf("  %-10s %d simulated, %d replayed from the result store\n",
				"", f.SimRuns, f.StoreHits)
		}
		if f.DecodeBlocks+f.DecodeHits > 0 {
			fmt.Printf("  %-10s decode: %d blocks, %d cache hits, %d fused ops\n",
				"", f.DecodeBlocks, f.DecodeHits, f.DecodeFused)
		}
	}
	if mtExt.MTInstPerSec > 0 && mtLock.MTInstPerSec > 0 {
		fmt.Printf("  multi-core: %d quantum grants, %d aborts; sim speedup vs lockstep: %.2fx\n",
			mtExt.QuantumGrants, mtExt.QuantumAborts, mtExt.MTInstPerSec/mtLock.MTInstPerSec)
		if mtLock.SchedQueueOps > 0 {
			fmt.Printf("  multi-core: scheduler queue ops %d vs %d lockstep (%.0f%% fewer pops)\n",
				mtExt.SchedQueueOps, mtLock.SchedQueueOps,
				100*(1-float64(mtExt.SchedQueueOps)/float64(mtLock.SchedQueueOps)))
		}
	}
	if rep.ResultStore != nil {
		fmt.Printf("  result store: %d entries in %d segment(s); %d hits, %d misses, %d puts this run\n",
			rep.ResultStore.Entries, rep.ResultStore.Segments, rep.ResultStore.Hits, rep.ResultStore.Misses, rep.ResultStore.Puts)
	}
	for _, cc := range []struct {
		name string
		s    compile.CacheStats
	}{{"fig8", rep.Fig8CompileCache}, {"fig9-11", rep.FigureCompileCache}} {
		fmt.Printf("  compile cache %-8s %4d compiles, %4d hits (%d distinct configurations)\n",
			cc.name, cc.s.Misses, cc.s.Hits, cc.s.Entries)
	}
	if rep.RefFig8 != nil {
		fmt.Printf("  %-10s %8.3fs  (map-backed reference store, same binary)\n", rep.RefFig8.Figure, rep.RefFig8.WallSeconds)
		if rep.SpeedupVsRefStore > 0 {
			fmt.Printf("  store-swap speedup vs in-binary reference: %.2fx\n", rep.SpeedupVsRefStore)
		} else {
			fmt.Printf("  store-swap speedup: n/a (fig8 replayed from store or ran parallel)\n")
		}
	}
	if rep.SpeedupVsSeed > 0 {
		fmt.Printf("  fig8-seed  %8.3fs  (seed binary, via -seedwall)\n", rep.SeedFig8WallSeconds)
		fmt.Printf("  end-to-end speedup vs seed: %.2fx (target >= 1.5x)\n", rep.SpeedupVsSeed)
	}
	if gateRef != nil {
		return gatePerf(&rep, gateRef)
	}
	return nil
}
