package main

import (
	"fmt"
	"os"
	"path/filepath"

	"capri/internal/audit"
	"capri/internal/compile"
	"capri/internal/figures"
	"capri/internal/machine"
	"capri/internal/workload"
)

// runAudit executes every paper benchmark under the online Fig. 7 invariant
// auditor and reports per-benchmark verdicts. With recordDir != "", each run
// additionally writes a capri/run-record/v1 file <dir>/<bench>.json for
// offline inspection with capriinspect. Any violation makes the sweep fail.
func runAudit(scale, threshold int, recordDir string) error {
	if recordDir != "" {
		if err := os.MkdirAll(recordDir, 0o755); err != nil {
			return err
		}
	}
	h := figures.NewHarness(scale)
	var events uint64
	violations := 0
	for _, b := range workload.All() {
		var (
			flight *audit.FlightRecorder
			aud    *audit.Auditor
		)
		tap := func(m *machine.Machine) audit.Sink {
			flight = audit.NewFlightRecorder(audit.DefaultRecorderCap)
			aud = audit.NewAuditor(m.AuditOptions())
			aud.AttachRecorder(flight)
			return audit.Tee(flight, aud)
		}
		m, err := h.RunTapped(b, compile.LevelLICM, threshold, nil, tap, false)
		if err != nil {
			return err
		}
		events += aud.EventsAudited()
		if recordDir != "" {
			fp := m.Program().Fingerprint()
			rr, err := audit.NewRunRecordFull(flight, aud, b.Name,
				fmt.Sprintf("%x", fp[:]), m.Config(), m.Stats())
			if err != nil {
				return err
			}
			if err := rr.WriteFile(filepath.Join(recordDir, b.Name+".json")); err != nil {
				return err
			}
		}
		if err := aud.Err(); err != nil {
			violations++
			fmt.Printf("%-18s FAIL after %d events\n%v\n", b.Name, aud.EventsAudited(), err)
			continue
		}
		fmt.Printf("%-18s ok   %8d provenance events\n", b.Name, aud.EventsAudited())
	}
	fmt.Printf("\naudited %d benchmarks, %d provenance events total\n", len(workload.All()), events)
	if violations > 0 {
		return fmt.Errorf("capribench: %d benchmarks violated Fig. 7 invariants", violations)
	}
	return nil
}
