// Command capricc runs the Capri compiler over a named benchmark workload
// and reports the static region formation: boundaries, checkpoint stores,
// pruning and unrolling activity, and (optionally) the disassembly.
//
// Usage:
//
//	capricc -bench ssca2 -threshold 256 -level +licm [-dump] [-scale 1]
//	capricc -file prog.casm [-o compiled.casm]   # assemble + compile a text program
//	capricc -list
package main

import (
	"flag"
	"fmt"
	"os"

	"capri/internal/asm"
	"capri/internal/compile"
	"capri/internal/prog"
	"capri/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "ssca2", "benchmark to compile (see -list)")
		threshold = flag.Int("threshold", compile.DefaultThreshold, "region store threshold")
		levelName = flag.String("level", "+licm", "optimization level: region, +ckpt, +unrolling, +pruning, +licm")
		dump      = flag.Bool("dump", false, "print the compiled program disassembly")
		scale     = flag.Int("scale", 1, "workload scale factor")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		file      = flag.String("file", "", "assemble and compile a .casm text program instead of a benchmark")
		out       = flag.String("o", "", "write the compiled program as assembly to this file")
	)
	flag.Parse()

	if *list {
		for _, b := range append(workload.All(), workload.Micros()...) {
			fmt.Printf("%-18s %-8s threads=%d shortloops=%v\n", b.Name, b.Suite, b.Threads, b.ShortLoops)
		}
		return
	}

	level, err := parseLevel(*levelName)
	if err != nil {
		fatal(err)
	}
	var p *prog.Program
	var srcName string
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		p, err = asm.Parse(*file, string(data))
		if err != nil {
			fatal(err)
		}
		srcName = *file
	} else {
		b, err := workload.ByName(*benchName)
		if err != nil {
			fatal(err)
		}
		p = b.Build(*scale)
		srcName = fmt.Sprintf("%s (%s, %d threads)", b.Name, b.Suite, b.Threads)
	}
	in := p.Stats()

	res, err := compile.Compile(p, compile.OptionsForLevel(level, *threshold))
	if err != nil {
		fatal(err)
	}
	st := res.Stats

	fmt.Printf("input program    %s\n", srcName)
	fmt.Printf("level            %s  threshold %d\n", level, *threshold)
	fmt.Printf("input            %d funcs, %d blocks, %d insts, %d stores\n",
		in.Funcs, in.Blocks, in.Insts, in.Stores)
	fmt.Printf("output           %d blocks, %d insts, %d stores, %d ckpt stores\n",
		st.Static.Blocks, st.Static.Insts, st.Static.Stores, st.Static.Ckpts)
	fmt.Printf("regions          %d static boundaries\n", st.Regions)
	fmt.Printf("checkpoints      %d inserted, %d pruned (recovery slices), %d hoisted by LICM\n",
		st.CkptsInserted, st.CkptsPruned, st.CkptsHoisted)
	fmt.Printf("unrolling        %d loops unrolled, %d body copies\n",
		st.LoopsUnrolled, st.UnrollCopies)

	if *out != "" {
		if err := os.WriteFile(*out, []byte(asm.Format(res.Program)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote            %s\n", *out)
	}
	if *dump {
		fmt.Println()
		fmt.Print(asm.Format(res.Program))
	}
}

func parseLevel(s string) (compile.Level, error) {
	for _, l := range compile.Levels {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("capricc: unknown level %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
