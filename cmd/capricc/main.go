// Command capricc runs the Capri compiler over a named benchmark workload
// and reports the static region formation: boundaries, checkpoint stores,
// pruning and unrolling activity, and (optionally) the disassembly.
//
// Usage:
//
//	capricc -bench ssca2 -threshold 256 -level +licm [-dump] [-scale 1]
//	capricc -bench radix -verify-after all -stats-json
//	capricc -bench radix -dump-after regions
//	capricc -file prog.casm [-o compiled.casm]   # assemble + compile a text program
//	capricc -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"capri/internal/asm"
	"capri/internal/compile"
	"capri/internal/prog"
	"capri/internal/workload"
)

func main() {
	var (
		benchName   = flag.String("bench", "ssca2", "benchmark to compile (see -list)")
		threshold   = flag.Int("threshold", compile.DefaultThreshold, "region store threshold")
		levelName   = flag.String("level", "+licm", "optimization level: region, +ckpt, +unrolling, +pruning, +licm")
		dump        = flag.Bool("dump", false, "print the compiled program disassembly")
		scale       = flag.Int("scale", 1, "workload scale factor")
		list        = flag.Bool("list", false, "list benchmarks and exit")
		file        = flag.String("file", "", "assemble and compile a .casm text program instead of a benchmark")
		out         = flag.String("o", "", "write the compiled program as assembly to this file")
		verifyAfter = flag.String("verify-after", "", "run the semantic region verifier after this pass (a pass name, or 'all'); the final program is always verified")
		dumpAfter   = flag.String("dump-after", "", "print the program disassembly after each run of this pass")
		statsJSON   = flag.Bool("stats-json", false, "emit compile statistics as JSON (schema capri/compile-stats/v1) instead of the text report")
	)
	flag.Parse()

	if *list {
		for _, b := range append(workload.All(), workload.Micros()...) {
			fmt.Printf("%-18s %-8s threads=%d shortloops=%v\n", b.Name, b.Suite, b.Threads, b.ShortLoops)
		}
		return
	}

	level, err := parseLevel(*levelName)
	if err != nil {
		fatal(err)
	}
	var p *prog.Program
	var srcName string
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		p, err = asm.Parse(*file, string(data))
		if err != nil {
			fatal(err)
		}
		srcName = *file
	} else {
		b, err := workload.ByName(*benchName)
		if err != nil {
			fatal(err)
		}
		p = b.Build(*scale)
		srcName = fmt.Sprintf("%s (%s, %d threads)", b.Name, b.Suite, b.Threads)
	}
	in := p.Stats()

	opts := compile.OptionsForLevel(level, *threshold)
	opts.VerifyAfter = *verifyAfter
	var hooks compile.Hooks
	if *dumpAfter != "" {
		if err := validPass(*dumpAfter); err != nil {
			fatal(err)
		}
		hooks.AfterPass = func(pass string, p *prog.Program) {
			if pass != *dumpAfter {
				return
			}
			fmt.Printf("; ---- after %s ----\n", pass)
			fmt.Print(asm.Format(p))
		}
	}

	res, err := compile.CompileWithHooks(p, opts, hooks)
	if err != nil {
		fatal(err)
	}
	st := res.Stats

	if *statsJSON {
		writeStatsJSON(srcName, level, res, in)
	} else {
		fmt.Printf("input program    %s\n", srcName)
		fmt.Printf("level            %s  threshold %d\n", level, *threshold)
		fmt.Printf("input            %d funcs, %d blocks, %d insts, %d stores\n",
			in.Funcs, in.Blocks, in.Insts, in.Stores)
		fmt.Printf("output           %d blocks, %d insts, %d stores, %d ckpt stores\n",
			st.Static.Blocks, st.Static.Insts, st.Static.Stores, st.Static.Ckpts)
		fmt.Printf("regions          %d static boundaries\n", st.Regions)
		fmt.Printf("checkpoints      %d inserted, %d pruned (recovery slices), %d hoisted by LICM\n",
			st.CkptsInserted, st.CkptsPruned, st.CkptsHoisted)
		fmt.Printf("unrolling        %d loops unrolled, %d body copies\n",
			st.LoopsUnrolled, st.UnrollCopies)
		fmt.Printf("passes           ")
		for i, ps := range st.Passes {
			if i > 0 {
				fmt.Printf(", ")
			}
			fmt.Printf("%s x%d", ps.Name, ps.Runs)
		}
		fmt.Println()
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(asm.Format(res.Program)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote            %s\n", *out)
	}
	if *dump {
		fmt.Println()
		fmt.Print(asm.Format(res.Program))
	}
}

// statsDoc is the -stats-json document. Schema "capri/compile-stats/v1":
//
//	schema   string           always "capri/compile-stats/v1"
//	input    {name, funcs, blocks, insts, stores}
//	options  {level, threshold, maxUnroll, verifyAfter}
//	stats    compile.Stats: regions, checkpoint/unroll/inline counters, the
//	         static output shape, and passes[] with per-pass {name, runs,
//	         changed, wallNs, verifyNs} in pipeline order
type statsDoc struct {
	Schema  string      `json:"schema"`
	Input   inputDoc    `json:"input"`
	Options optionsDoc  `json:"options"`
	Stats   statsFields `json:"stats"`
}

type inputDoc struct {
	Name   string `json:"name"`
	Funcs  int    `json:"funcs"`
	Blocks int    `json:"blocks"`
	Insts  int    `json:"insts"`
	Stores int    `json:"stores"`
}

type optionsDoc struct {
	Level       string `json:"level"`
	Threshold   int    `json:"threshold"`
	MaxUnroll   int    `json:"maxUnroll"`
	VerifyAfter string `json:"verifyAfter,omitempty"`
}

type statsFields struct {
	Regions       int       `json:"regions"`
	CkptsInserted int       `json:"ckptsInserted"`
	CkptsPruned   int       `json:"ckptsPruned"`
	CkptsHoisted  int       `json:"ckptsHoisted"`
	LoopsUnrolled int       `json:"loopsUnrolled"`
	UnrollCopies  int       `json:"unrollCopies"`
	CallsInlined  int       `json:"callsInlined"`
	Static        staticDoc `json:"static"`
	Passes        []passDoc `json:"passes"`
}

type staticDoc struct {
	Funcs      int `json:"funcs"`
	Blocks     int `json:"blocks"`
	Insts      int `json:"insts"`
	Stores     int `json:"stores"`
	Ckpts      int `json:"ckpts"`
	Boundaries int `json:"boundaries"`
}

type passDoc struct {
	Name     string `json:"name"`
	Runs     int    `json:"runs"`
	Changed  int    `json:"changed"`
	WallNS   int64  `json:"wallNs"`
	VerifyNS int64  `json:"verifyNs"`
}

func writeStatsJSON(srcName string, level compile.Level, res *compile.Result, in prog.StaticStats) {
	st := res.Stats
	doc := statsDoc{
		Schema: "capri/compile-stats/v1",
		Input:  inputDoc{Name: srcName, Funcs: in.Funcs, Blocks: in.Blocks, Insts: in.Insts, Stores: in.Stores},
		Options: optionsDoc{
			Level:       level.String(),
			Threshold:   res.Options.Threshold,
			MaxUnroll:   res.Options.MaxUnroll,
			VerifyAfter: res.Options.VerifyAfter,
		},
		Stats: statsFields{
			Regions:       st.Regions,
			CkptsInserted: st.CkptsInserted,
			CkptsPruned:   st.CkptsPruned,
			CkptsHoisted:  st.CkptsHoisted,
			LoopsUnrolled: st.LoopsUnrolled,
			UnrollCopies:  st.UnrollCopies,
			CallsInlined:  st.CallsInlined,
			Static: staticDoc{
				Funcs:      st.Static.Funcs,
				Blocks:     st.Static.Blocks,
				Insts:      st.Static.Insts,
				Stores:     st.Static.Stores,
				Ckpts:      st.Static.Ckpts,
				Boundaries: st.Static.Boundaries,
			},
		},
	}
	for _, ps := range st.Passes {
		doc.Stats.Passes = append(doc.Stats.Passes, passDoc{
			Name: ps.Name, Runs: ps.Runs, Changed: ps.Changed,
			WallNS: ps.WallNS, VerifyNS: ps.VerifyNS,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

// validPass rejects a -dump-after selector naming no known pass, so a typo
// does not silently dump nothing.
func validPass(name string) error {
	for _, n := range compile.AllPassNames {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("capricc: -dump-after=%s: unknown pass (have %v)", name, compile.AllPassNames)
}

func parseLevel(s string) (compile.Level, error) {
	for _, l := range compile.Levels {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("capricc: unknown level %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
