package capri

// Dispatch-equivalence differential tests: the pre-decoded threaded core with
// fused superinstructions must be cycle-for-cycle and image-identical to the
// reference per-instruction switch core. Both cores run the identical machine
// configuration — the only divergence either run is permitted is Steps (the
// threaded core retires whole decoded runs per dispatch, by design) and the
// decode-cache counters (zero under the switch core). Everything else —
// cycles, retirement, memory and NVM images, committed output, the full
// per-cause cycle ledger, and the complete audit event stream — must match
// exactly, or the threaded core is not an optimization but a different
// machine.

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"capri/internal/audit"
	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/prog"
	"capri/internal/progen"
	"capri/internal/workload"
)

// eventDigest folds every field of every audit event into one FNV-1a hash:
// two machines with equal digests produced indistinguishable event streams.
type eventDigest struct {
	sum uint64
	n   uint64
}

func (d *eventDigest) Tap(e audit.Event) {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(d.sum) // chain, so event order matters
	put(uint64(e.Kind))
	put(uint64(e.Flags))
	put(uint64(uint32(e.Core)))
	put(e.Cycle)
	put(e.Addr)
	put(e.Seq)
	put(e.Region)
	put(e.Val)
	put(e.Val2)
	put(uint64(e.Count))
	d.sum = h.Sum64()
	d.n++
}

// dispatchRun executes p under the given machine configuration and returns
// the final image, the full stats, and (when tapped) the audit stream digest.
// The untapped legs matter on their own: an audit sink forces the quantum
// extension onto its conservative service horizon, so only untapped runs
// exercise the wide-window grant path the perf harness runs under.
func dispatchRun(t *testing.T, what string, p *prog.Program, threads int, cfg machine.Config, tap bool) (machineImage, machine.Stats, eventDigest) {
	t.Helper()
	m, err := machine.New(p, cfg)
	if err != nil {
		t.Fatalf("%s (%v): %v", what, cfg.Dispatch, err)
	}
	var dig eventDigest
	if tap {
		m.SetTap(&dig)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("%s (%v): %v", what, cfg.Dispatch, err)
	}
	return imageOf(m, threads), m.Stats(), dig
}

// comparableStats strips the fields the two dispatch cores legitimately
// disagree on: Steps counts dispatches (a decoded run retires many
// instructions per step), the decode counters exist only in the threaded
// core, and the scheduler counters (quantum grants/aborts, run-queue ops)
// depend on how many dispatches the run took. Everything else — every
// simulated observable — must match exactly.
func comparableStats(s machine.Stats) machine.Stats {
	s.Steps = 0
	s.DecodeBlocks, s.DecodeHits, s.DecodeFused = 0, 0, 0
	s.QuantumGrants, s.QuantumAborts, s.SchedQueueOps = 0, 0, 0
	return s
}

func requireDispatchIdentical(t *testing.T, what string, p *prog.Program, threads, threshold int) {
	t.Helper()
	base := diffConfig(threads, threshold, false)
	thCfg := base
	thCfg.Dispatch = machine.DispatchThreaded
	swCfg := base
	swCfg.Dispatch = machine.DispatchSwitch
	noExtCfg := thCfg
	noExtCfg.NoQuantumExt = true

	// Tapped legs: the chained digest pins the exact audit event order, so a
	// window that reordered a single launch or drain event would surface.
	thImg, thStats, thDig := dispatchRun(t, what, p, threads, thCfg, true)
	swImg, swStats, swDig := dispatchRun(t, what, p, threads, swCfg, true)
	neImg, neStats, neDig := dispatchRun(t, what, p, threads, noExtCfg, true)
	requireIdentical(t, what, thImg, swImg)
	requireIdentical(t, what+" (NoQuantumExt)", neImg, swImg)
	if a, b := comparableStats(thStats), comparableStats(swStats); !reflect.DeepEqual(a, b) {
		t.Errorf("%s: stats diverge beyond Steps/decode counters:\n  threaded %+v\n  switch   %+v", what, a, b)
	}
	if a, b := comparableStats(neStats), comparableStats(swStats); !reflect.DeepEqual(a, b) {
		t.Errorf("%s: NoQuantumExt stats diverge beyond Steps/decode counters:\n  threaded %+v\n  switch   %+v", what, a, b)
	}
	if thDig.n != swDig.n || thDig.sum != swDig.sum {
		t.Errorf("%s: audit streams diverge: threaded %d events (%#x), switch %d events (%#x)",
			what, thDig.n, thDig.sum, swDig.n, swDig.sum)
	}
	if neDig.n != swDig.n || neDig.sum != swDig.sum {
		t.Errorf("%s: NoQuantumExt audit stream diverges: %d events (%#x), switch %d events (%#x)",
			what, neDig.n, neDig.sum, swDig.n, swDig.sum)
	}

	// Untapped legs: with no audit sink the extension grants its widest
	// windows (drain-completion horizon only); the NVM image, memory image,
	// and full cycle ledger must still be byte-identical to the reference.
	wtImg, wtStats, _ := dispatchRun(t, what, p, threads, thCfg, false)
	wsImg, wsStats, _ := dispatchRun(t, what, p, threads, swCfg, false)
	requireIdentical(t, what+" (untapped)", wtImg, wsImg)
	if a, b := comparableStats(wtStats), comparableStats(wsStats); !reflect.DeepEqual(a, b) {
		t.Errorf("%s: untapped stats diverge beyond Steps/decode counters:\n  threaded %+v\n  switch   %+v", what, a, b)
	}
}

// TestDispatchEquivalenceBenchmarks sweeps every paper benchmark through both
// execution cores and requires indistinguishable outcomes.
func TestDispatchEquivalenceBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("dispatch equivalence sweep is not short")
	}
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			src := b.Build(benchScale)
			res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, 256))
			if err != nil {
				t.Fatal(err)
			}
			requireDispatchIdentical(t, b.Name, res.Program, b.Threads, 256)
		})
	}
}

// TestDispatchEquivalenceMultiCore sweeps the scheduler geometries the
// conflict-aware quantum extension cares about: 2, 4, and 8 cores change the
// run-queue tie-break pattern, the number of horizons a grant must clear,
// and the phase alignment of store bursts. Every geometry runs the full
// five-leg equivalence check (threaded vs switch, extension on and off,
// tapped and untapped).
func TestDispatchEquivalenceMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-core dispatch sweep is not short")
	}
	for _, threads := range []int{2, 4, 8} {
		for s := 0; s < 6; s++ {
			shape := progen.Config{Funcs: 2, MaxDepth: 2, MaxStmts: 5, MaxLoopTrip: 5, Threads: threads}
			if s%2 == 1 {
				shape.Barriers = true
			}
			name := fmt.Sprintf("cores%d_seed%d", threads, s)
			src := progen.Generate(uint64(threads*1000+s)*0x9e3779b9+7, shape)
			res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, 64))
			if err != nil {
				t.Fatalf("%s: compile: %v", name, err)
			}
			requireDispatchIdentical(t, name, res.Program, threads, 64)
			if t.Failed() {
				t.Fatalf("%s: stopping after first divergence", name)
			}
		}
	}
}

// TestDispatchEquivalenceProgen is the property-based half: generated
// programs reach block shapes, fusion opportunities, and stall interleavings
// the curated benchmarks do not (short blocks, dense branches, barrier
// lockstep with tiny quanta).
func TestDispatchEquivalenceProgen(t *testing.T) {
	if testing.Short() {
		t.Skip("dispatch progen sweep is not short")
	}
	const seeds = 104 // 4 shapes x 26 seeds, mirroring the store sweep
	shapes := []progen.Config{
		{Funcs: 3, MaxDepth: 3, MaxStmts: 5, MaxLoopTrip: 6, Threads: 1},
		{Funcs: 2, MaxDepth: 2, MaxStmts: 4, MaxLoopTrip: 4, Threads: 2},
		{Funcs: 4, MaxDepth: 3, MaxStmts: 6, MaxLoopTrip: 5, Threads: 1},
		{Funcs: 2, MaxDepth: 2, MaxStmts: 4, MaxLoopTrip: 4, Threads: 2, Barriers: true},
	}
	for s := 0; s < seeds; s++ {
		shape := shapes[s%len(shapes)]
		name := fmt.Sprintf("seed%d_t%d", s, shape.Threads)
		src := progen.Generate(uint64(s)*0x9e3779b9+1, shape)
		res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, 64))
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		requireDispatchIdentical(t, name, res.Program, shape.Threads, 64)
		if t.Failed() {
			t.Fatalf("%s: stopping after first divergence", name)
		}
	}
}
