// crashlab: a systematic study of the recovery protocol. It runs a small
// program that interleaves bursty stores with hot-line rewrites (the access
// pattern that provokes the paper's Figure 6/7 writeback-vs-proxy races),
// crashes it at *every* instruction boundary, recovers each image, and
// reports aggregate statistics about what recovery had to do: how many
// regions were redone, how many entries rolled back via undo data, and how
// many pruned checkpoints were reconstructed by recovery slices.
//
//	go run ./examples/crashlab
package main

import (
	"fmt"
	"log"

	"capri"
	"capri/internal/isa"
)

func buildHotCold() *capri.Program {
	bd := capri.NewBuilder("hotcold")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	const (
		rI    = isa.Reg(8)
		rN    = isa.Reg(9)
		rBase = isa.Reg(10)
		rHot  = isa.Reg(11)
		rV    = isa.Reg(12)
		rOff  = isa.Reg(13)
	)

	f.SetBlock(entry)
	f.MovI(isa.SP, int64(capri.StackBase(0)))
	f.MovI(rI, 0)
	f.MovI(rN, 300)
	f.MovI(rBase, int64(capri.HeapBase))
	f.MovI(rHot, int64(capri.HeapBase)+8192)
	f.MovI(rV, 1)
	f.Br(header)

	f.SetBlock(header)
	f.BrIf(rI, isa.CondGE, rN, exit, body)

	f.SetBlock(body)
	// Hot line: rewritten every iteration (merge + writeback-race food).
	f.Add(rV, rV, rI)
	f.Store(rHot, 0, rV)
	f.Store(rHot, 8, rI)
	// Cold stream: a fresh address each iteration.
	f.OpI(isa.OpShlI, rOff, rI, 3)
	f.Add(rOff, rOff, rBase)
	f.Store(rOff, 0, rV)
	f.AddI(rI, rI, 1)
	f.Br(header)

	f.SetBlock(exit)
	f.Emit(rV)
	f.Halt()
	bd.SetThreadEntries(f)
	return bd.Program()
}

func main() {
	p := buildHotCold()
	res, err := capri.Compile(p, capri.OptionsForLevel(capri.LevelLICM, 32))
	if err != nil {
		log.Fatal(err)
	}
	cfg := capri.DefaultConfig()
	cfg.Cores = 1
	cfg.Threshold = 32

	golden, err := capri.NewMachine(res.Program, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := golden.Run(); err != nil {
		log.Fatal(err)
	}
	want := golden.Output(0)[0]
	total := golden.Instret()
	fmt.Printf("hotcold: %d instructions, golden value %d\n", total, want)
	fmt.Printf("sweeping every crash point 1..%d ...\n", total-1)

	var (
		points, redone, undone, undoApplied, slices int
		maxUndone                                   int
	)
	for crashAt := uint64(1); crashAt < total; crashAt++ {
		m, _ := capri.NewMachine(res.Program, cfg)
		if err := m.RunUntil(crashAt); err != nil {
			log.Fatal(err)
		}
		if m.Done() {
			break
		}
		img, err := m.Crash()
		if err != nil {
			log.Fatal(err)
		}
		r, rep, err := capri.Recover(img)
		if err != nil {
			log.Fatalf("crash@%d: %v", crashAt, err)
		}
		if err := r.Run(); err != nil {
			log.Fatalf("crash@%d resume: %v", crashAt, err)
		}
		if got := r.Output(0)[0]; got != want {
			log.Fatalf("crash@%d: recovered %d, want %d", crashAt, got, want)
		}
		points++
		redone += rep.RegionsRedone
		undone += rep.EntriesUndone
		undoApplied += rep.UndoneApplied
		slices += rep.SlicesExecuted
		if rep.EntriesUndone > maxUndone {
			maxUndone = rep.EntriesUndone
		}
	}

	fmt.Printf("\nall %d crash points recovered to the golden value\n", points)
	fmt.Printf("  committed regions replayed from proxy buffers: %d\n", redone)
	fmt.Printf("  interrupted-region entries examined for undo:  %d (max %d in one crash)\n", undone, maxUndone)
	fmt.Printf("  undo restores actually applied to NVM:         %d\n", undoApplied)
	fmt.Printf("  recovery slices executed (pruned checkpoints): %d\n", slices)
	fmt.Println("\ninvariant held: recovery always lands exactly on a region boundary,")
	fmt.Println("regardless of how writebacks and proxy drains interleaved before the crash.")
}
