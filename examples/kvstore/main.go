// kvstore: an unmodified open-addressing key-value store made crash
// consistent by whole-system persistence. The store code below knows nothing
// about NVM, logging, or transactions — exactly the class of "ordinary
// program" the paper's §2.1 argues should get persistence for free. We run a
// workload of inserts and updates, crash it at several points, recover, and
// verify the final table state always matches the crash-free run.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"capri"
	"capri/internal/isa"
)

const (
	tableSlots = 1 << 12 // open-addressing table: [key, value] pairs
	numOps     = 1200
)

// buildStore emits the KV store program: a PCG-ish key generator drives
// insert-or-update operations against a linear-probing hash table laid out
// at HeapBase; each slot is 16 bytes ([key, value]). After the workload, the
// program folds the whole table into a checksum and emits it.
func buildStore() *capri.Program {
	bd := capri.NewBuilder("kvstore")
	f := bd.Func("main")

	entry := f.Block()
	opHdr := f.Block()     // outer loop over operations
	opBody := f.Block()    // generate key/value
	probeHdr := f.Block()  // probe loop
	probeBody := f.Block() // check slot
	insert := f.Block()    // empty or matching slot: write
	nextSlot := f.Block()  // collision: key check
	advance := f.Block()   // advance the probe cursor
	opLatch := f.Block()
	sumPre := f.Block()
	sumHdr := f.Block()
	sumBody := f.Block()
	exit := f.Block()

	const (
		rOp    = isa.Reg(8)  // operation counter
		rNOps  = isa.Reg(9)  // total operations
		rBase  = isa.Reg(10) // table base
		rKey   = isa.Reg(11)
		rVal   = isa.Reg(12)
		rSlot  = isa.Reg(13) // current probe slot index
		rAddr  = isa.Reg(14) // slot address
		rCur   = isa.Reg(15) // key stored at slot
		rMask  = isa.Reg(16)
		rSeed  = isa.Reg(17)
		rSum   = isa.Reg(18)
		rZero  = isa.Reg(19)
		rProbe = isa.Reg(20) // probe counter (bounds the probe loop)
	)

	f.SetBlock(entry)
	f.MovI(isa.SP, int64(capri.StackBase(0)))
	f.MovI(rOp, 0)
	f.MovI(rNOps, numOps)
	f.MovI(rBase, int64(capri.HeapBase))
	f.MovI(rMask, tableSlots-1)
	f.MovI(rSeed, 0x9e3779b9)
	f.MovI(rZero, 0)
	f.Br(opHdr)

	f.SetBlock(opHdr)
	f.BrIf(rOp, isa.CondGE, rNOps, sumPre, opBody)

	f.SetBlock(opBody)
	// key = (seed * 6364136223846793005 + 1442695040888963407) folded into a
	// small space so updates happen (collisions on purpose).
	f.MulI(rSeed, rSeed, 6364136223846793005)
	f.OpI(isa.OpAddI, rSeed, rSeed, 1442695040888963407)
	f.OpI(isa.OpShrI, rKey, rSeed, 33)
	f.OpI(isa.OpAndI, rKey, rKey, (tableSlots/2)-1)
	f.OpI(isa.OpAddI, rKey, rKey, 1) // keys are nonzero (0 = empty slot)
	f.Mul(rVal, rKey, rOp)
	f.Op3(isa.OpAnd, rSlot, rKey, rMask)
	f.MovI(rProbe, 0)
	f.Br(probeHdr)

	f.SetBlock(probeHdr)
	f.BrIf(rProbe, isa.CondGE, rMask, opLatch, probeBody) // table full: drop op

	f.SetBlock(probeBody)
	f.OpI(isa.OpShlI, rAddr, rSlot, 4) // slot * 16
	f.Add(rAddr, rAddr, rBase)
	f.Load(rCur, rAddr, 0)
	f.BrIf(rCur, isa.CondEQ, rZero, insert, nextSlot)

	f.SetBlock(nextSlot)
	f.BrIf(rCur, isa.CondEQ, rKey, insert, advance)

	f.SetBlock(advance)
	f.AddI(rSlot, rSlot, 1)
	f.Op3(isa.OpAnd, rSlot, rSlot, rMask)
	f.AddI(rProbe, rProbe, 1)
	f.Br(probeHdr)

	f.SetBlock(insert)
	f.Store(rAddr, 0, rKey)
	f.Store(rAddr, 8, rVal)
	f.Br(opLatch)

	f.SetBlock(opLatch)
	f.AddI(rOp, rOp, 1)
	f.Br(opHdr)

	// Checksum sweep.
	f.SetBlock(sumPre)
	f.MovI(rSlot, 0)
	f.MovI(rSum, 0)
	f.Br(sumHdr)
	f.SetBlock(sumHdr)
	f.BrIf(rSlot, isa.CondGT, rMask, exit, sumBody)
	f.SetBlock(sumBody)
	f.OpI(isa.OpShlI, rAddr, rSlot, 4)
	f.Add(rAddr, rAddr, rBase)
	f.Load(rCur, rAddr, 0)
	f.Load(rVal, rAddr, 8)
	f.Add(rSum, rSum, rCur)
	f.Op3(isa.OpXor, rSum, rSum, rVal)
	f.AddI(rSlot, rSlot, 1)
	f.Br(sumHdr)

	f.SetBlock(exit)
	f.Emit(rSum)
	f.Halt()
	bd.SetThreadEntries(f)
	return bd.Program()
}

func main() {
	p := buildStore()
	res, err := capri.Compile(p, capri.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	cfg := capri.DefaultConfig()
	cfg.Cores = 1

	golden, err := capri.NewMachine(res.Program, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := golden.Run(); err != nil {
		log.Fatal(err)
	}
	want := golden.Output(0)[0]
	total := golden.Instret()
	fmt.Printf("kvstore: %d ops, table checksum %#x, %d instructions\n", numOps, want, total)

	for _, frac := range []uint64{10, 25, 50, 75, 90} {
		crashAt := total * frac / 100
		m, _ := capri.NewMachine(res.Program, cfg)
		if err := m.RunUntil(crashAt); err != nil {
			log.Fatal(err)
		}
		if m.Done() {
			break
		}
		img, err := m.Crash()
		if err != nil {
			log.Fatal(err)
		}
		r, _, err := capri.Recover(img)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.Run(); err != nil {
			log.Fatal(err)
		}
		got := r.Output(0)[0]
		status := "OK"
		if got != want {
			status = "MISMATCH"
		}
		fmt.Printf("crash at %2d%% (%7d instrs): recovered checksum %#x  %s\n",
			frac, crashAt, got, status)
		if got != want {
			log.Fatal("recovery produced a different table state")
		}
	}
	fmt.Println("all crash points recovered to the exact golden table state")
}
