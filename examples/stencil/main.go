// stencil: a four-thread Splash-style scientific kernel — a 1-D Jacobi-like
// relaxation over per-thread grid partitions with a lock-protected shared
// residual — crashed mid-computation and recovered. Demonstrates
// whole-system persistence for a multi-threaded, data-race-free program:
// locks and atomics become region boundaries, so every thread rolls back at
// most its in-flight region and the recovered state equals the crash-free
// run's.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"capri"
	"capri/internal/isa"
)

const (
	threads = 4
	cells   = 512 // cells per thread partition
	sweeps  = 6
)

// Shared memory layout.
const (
	lockOff  = int64(0) // lock word at HeapBase
	statOff  = int64(8) // shared residual accumulator
	gridBase = capri.HeapBase + 4096
)

// buildWorker emits one thread's function: initialize its partition, then
// perform `sweeps` relaxation passes, folding a partial residual into the
// shared accumulator under the lock after each sweep.
func buildWorker(f *capri.FuncBuilder, tid int) {
	const (
		rI     = isa.Reg(8)
		rN     = isa.Reg(9)
		rBase  = isa.Reg(10)
		rPrev  = isa.Reg(11)
		rCur   = isa.Reg(12)
		rNext  = isa.Reg(13)
		rRes   = isa.Reg(14) // per-sweep residual
		rSweep = isa.Reg(15)
		rNSw   = isa.Reg(16)
		rShare = isa.Reg(17) // HeapBase (lock + accumulator)
		rTmp   = isa.Reg(18)
		rSum   = isa.Reg(19) // final checksum
	)

	entry := f.Block()
	initHdr := f.Block()
	initBody := f.Block()
	sweepHdr := f.Block()
	cellPre := f.Block()
	cellHdr := f.Block()
	cellBody := f.Block()
	reduce := f.Block()
	sumPre := f.Block()
	sumHdr := f.Block()
	sumBody := f.Block()
	exit := f.Block()

	part := int64(gridBase) + int64(tid)*cells*8

	f.SetBlock(entry)
	f.MovI(isa.SP, int64(capri.StackBase(tid)))
	f.MovI(rBase, part)
	f.MovI(rShare, int64(capri.HeapBase))
	f.MovI(rI, 0)
	f.MovI(rN, cells)
	f.MovI(rSweep, 0)
	f.MovI(rNSw, sweeps)
	f.Br(initHdr)

	// Initialize cells: cell[i] = i*(tid+3).
	f.SetBlock(initHdr)
	f.BrIf(rI, isa.CondGE, rN, sweepHdr, initBody)
	f.SetBlock(initBody)
	f.MulI(rTmp, rI, int64(tid+3))
	f.OpI(isa.OpShlI, rCur, rI, 3)
	f.Add(rCur, rCur, rBase)
	f.Store(rCur, 0, rTmp)
	f.AddI(rI, rI, 1)
	f.Br(initHdr)

	// Sweep loop.
	f.SetBlock(sweepHdr)
	f.BrIf(rSweep, isa.CondGE, rNSw, sumPre, cellPre)

	f.SetBlock(cellPre)
	f.MovI(rI, 1)
	f.MovI(rRes, 0)
	f.AddI(rTmp, rN, -1)
	f.Br(cellHdr)

	f.SetBlock(cellHdr)
	f.BrIf(rI, isa.CondGE, rTmp, reduce, cellBody)

	// cell[i] = (cell[i-1] + cell[i] + cell[i+1]) / 3; residual += new.
	f.SetBlock(cellBody)
	f.OpI(isa.OpShlI, rCur, rI, 3)
	f.Add(rCur, rCur, rBase)
	f.Load(rPrev, rCur, -8)
	f.Load(rNext, rCur, 8)
	f.Load(rSum, rCur, 0)
	f.Add(rPrev, rPrev, rNext)
	f.Add(rPrev, rPrev, rSum)
	f.MovI(rNext, 3)
	f.Op3(isa.OpDiv, rPrev, rPrev, rNext)
	f.Store(rCur, 0, rPrev)
	f.Add(rRes, rRes, rPrev)
	f.AddI(rI, rI, 1)
	f.Br(cellHdr)

	// Synchronized reduction of this sweep's residual.
	f.SetBlock(reduce)
	f.Lock(rShare, lockOff)
	f.Load(rTmp, rShare, statOff)
	f.Add(rTmp, rTmp, rRes)
	f.Store(rShare, statOff, rTmp)
	f.Unlock(rShare, lockOff)
	f.AddI(rSweep, rSweep, 1)
	f.Br(sweepHdr)

	// Final partition checksum.
	f.SetBlock(sumPre)
	f.MovI(rI, 0)
	f.MovI(rSum, 0)
	f.Br(sumHdr)
	f.SetBlock(sumHdr)
	f.BrIf(rI, isa.CondGE, rN, exit, sumBody)
	f.SetBlock(sumBody)
	f.OpI(isa.OpShlI, rCur, rI, 3)
	f.Add(rCur, rCur, rBase)
	f.Load(rTmp, rCur, 0)
	f.Add(rSum, rSum, rTmp)
	f.Op3(isa.OpXor, rSum, rSum, rI)
	f.AddI(rI, rI, 1)
	f.Br(sumHdr)

	f.SetBlock(exit)
	f.Emit(rSum)
	f.Halt()
}

func buildStencil() *capri.Program {
	bd := capri.NewBuilder("stencil")
	var workers []*capri.FuncBuilder
	for t := 0; t < threads; t++ {
		f := bd.Func(fmt.Sprintf("worker%d", t))
		buildWorker(f, t)
		workers = append(workers, f)
	}
	bd.SetThreadEntries(workers...)
	return bd.Program()
}

func main() {
	p := buildStencil()
	res, err := capri.Compile(p, capri.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	cfg := capri.DefaultConfig()

	golden, err := capri.NewMachine(res.Program, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := golden.Run(); err != nil {
		log.Fatal(err)
	}
	goldenSums := make([]uint64, threads)
	for t := 0; t < threads; t++ {
		goldenSums[t] = golden.Output(t)[0]
	}
	total := golden.Instret()
	fmt.Printf("stencil: %d threads x %d cells x %d sweeps, %d instructions\n",
		threads, cells, sweeps, total)
	fmt.Printf("golden partition checksums: %x\n", goldenSums)

	for _, frac := range []uint64{15, 40, 65, 85} {
		crashAt := total * frac / 100
		m, _ := capri.NewMachine(res.Program, cfg)
		if err := m.RunUntil(crashAt); err != nil {
			log.Fatal(err)
		}
		if m.Done() {
			break
		}
		img, err := m.Crash()
		if err != nil {
			log.Fatal(err)
		}
		r, rep, err := capri.Recover(img)
		if err != nil {
			log.Fatal(err)
		}
		if rep.ConflictingUndo != 0 {
			log.Fatalf("cross-core undo conflict: %d (program should be DRF)", rep.ConflictingUndo)
		}
		if err := r.Run(); err != nil {
			log.Fatal(err)
		}
		for t := 0; t < threads; t++ {
			if r.Output(t)[0] != goldenSums[t] {
				log.Fatalf("crash at %d%%: thread %d checksum %#x, want %#x",
					frac, t, r.Output(t)[0], goldenSums[t])
			}
		}
		fmt.Printf("crash at %2d%% (%8d instrs): all %d threads recovered, checksums match\n",
			frac, crashAt, threads)
	}
	fmt.Println("multi-threaded crash consistency holds at every tested point")
}
