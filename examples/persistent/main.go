// persistent: whole-system persistence across process lifetimes. The
// program's "NVM and battery-backed proxy buffers" live in a state file;
// each invocation of this example simulates a machine losing power partway
// through a long computation, and the next invocation recovers from the
// file and continues — until the job completes. No run ever repeats work
// that already committed.
//
//	go run ./examples/persistent            # run until done (self-driving)
//	go run ./examples/persistent -once      # one power cycle, then exit
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"capri"
	"capri/internal/isa"
)

const totalIters = 3000

// buildJob emits a long accumulation over a table — the "job" that must
// survive arbitrarily many power cycles.
func buildJob() *capri.Program {
	bd := capri.NewBuilder("job")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	const (
		rI    = isa.Reg(8)
		rN    = isa.Reg(9)
		rBase = isa.Reg(10)
		rAcc  = isa.Reg(11)
		rOff  = isa.Reg(12)
	)

	f.SetBlock(entry)
	f.MovI(isa.SP, int64(capri.StackBase(0)))
	f.MovI(rI, 0)
	f.MovI(rN, totalIters)
	f.MovI(rBase, int64(capri.HeapBase))
	f.MovI(rAcc, 0)
	f.Br(header)

	f.SetBlock(header)
	f.BrIf(rI, isa.CondGE, rN, exit, body)

	f.SetBlock(body)
	f.MulI(rOff, rI, 8)
	f.OpI(isa.OpAndI, rOff, rOff, (1<<16)-8)
	f.Add(rOff, rOff, rBase)
	f.Mul(rAcc, rI, rI)
	f.OpI(isa.OpAddI, rAcc, rAcc, 7)
	f.Store(rOff, 0, rAcc)
	f.AddI(rI, rI, 1)
	f.Br(header)

	f.SetBlock(exit)
	f.Emit(rI)
	f.Halt()
	bd.SetThreadEntries(f)
	return bd.Program()
}

func main() {
	once := flag.Bool("once", false, "simulate a single power cycle and exit")
	flag.Parse()

	statePath := filepath.Join(os.TempDir(), "capri-persistent-demo.img")
	// Power budget per cycle: the machine dies every ~4000 instructions.
	const budget = 4000

	cycle := 0
	for {
		cycle++
		var m *capri.Machine
		if img, err := capri.LoadImage(statePath); err == nil {
			r, rep, err := capri.Recover(img)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("cycle %d: recovered from %s (%d regions redone, %d slices)\n",
				cycle, statePath, rep.RegionsRedone, rep.SlicesExecuted)
			m = r
		} else if !os.IsNotExist(err) {
			log.Fatal(err)
		} else {
			res, err := capri.Compile(buildJob(), capri.DefaultOptions())
			if err != nil {
				log.Fatal(err)
			}
			cfg := capri.DefaultConfig()
			cfg.Cores = 1
			m, err = capri.NewMachine(res.Program, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("cycle %d: fresh start (%d iterations of work ahead)\n", cycle, totalIters)
		}

		already := m.Instret()
		if err := m.RunUntil(already + budget); err != nil {
			log.Fatal(err)
		}
		if m.Done() {
			fmt.Printf("cycle %d: job finished — completed %v iterations, %d cycles total\n",
				cycle, m.Output(0), m.Cycles())
			os.Remove(statePath)
			return
		}
		img, err := m.Crash()
		if err != nil {
			log.Fatal(err)
		}
		if err := capri.SaveImage(statePath, img); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cycle %d: power lost after %d instructions; state persisted\n",
			cycle, m.Instret())
		if *once {
			fmt.Printf("rerun to continue from %s\n", statePath)
			return
		}
	}
}
