// Quickstart: build a tiny program, compile it with the Capri compiler, run
// it on the simulated whole-system-persistent machine, crash it mid-flight,
// recover, and finish — all through the public capri API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"capri"
	"capri/internal/isa"
)

func main() {
	// A program that fills a table with squares and emits a checksum. Note
	// there is nothing persistence-related in it: Capri makes it
	// failure-atomic without source changes (the paper's core promise).
	bd := capri.NewBuilder("squares")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	const (
		rI    = isa.Reg(8)
		rN    = isa.Reg(9)
		rBase = isa.Reg(10)
		rSq   = isa.Reg(11)
		rSum  = isa.Reg(12)
		rOff  = isa.Reg(13)
	)

	f.SetBlock(entry)
	f.MovI(isa.SP, int64(capri.StackBase(0)))
	f.MovI(rI, 0)
	f.MovI(rN, 500)
	f.MovI(rBase, int64(capri.HeapBase))
	f.MovI(rSum, 0)
	f.Br(header)

	f.SetBlock(header)
	f.BrIf(rI, isa.CondGE, rN, exit, body)

	f.SetBlock(body)
	f.Mul(rSq, rI, rI)
	f.OpI(isa.OpShlI, rOff, rI, 3)
	f.Add(rOff, rOff, rBase)
	f.Store(rOff, 0, rSq)
	f.Add(rSum, rSum, rSq)
	f.AddI(rI, rI, 1)
	f.Br(header)

	f.SetBlock(exit)
	f.Emit(rSum)
	f.Halt()
	bd.SetThreadEntries(f)
	p := bd.Program()

	// Compile: region formation + checkpointing stores + all optimizations.
	res, err := capri.Compile(p, capri.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d regions, %d checkpoint stores (%d pruned), %d loops unrolled\n",
		res.Stats.Regions, res.Stats.CkptsInserted, res.Stats.CkptsPruned, res.Stats.LoopsUnrolled)

	cfg := capri.DefaultConfig()
	cfg.Cores = 1

	// Golden run: no crash.
	golden, err := capri.NewMachine(res.Program, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := golden.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: checksum %d in %d cycles\n", golden.Output(0)[0], golden.Cycles())

	// Crash run: power fails after 1500 instructions.
	m, _ := capri.NewMachine(res.Program, cfg)
	if err := m.RunUntil(1500); err != nil {
		log.Fatal(err)
	}
	img, err := m.Crash()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power failed after %d instructions; proxy buffers hold %d entries\n",
		m.Instret(), len(img.Streams[0]))

	// Recovery: redo committed regions, undo the interrupted one, reload the
	// register checkpoint array, resume at the last boundary.
	r, rep, err := capri.Recover(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d regions redone, %d entries undone, %d recovery slices\n",
		rep.RegionsRedone, rep.EntriesUndone, rep.SlicesExecuted)
	if err := r.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed run: checksum %d\n", r.Output(0)[0])

	if r.Output(0)[0] == golden.Output(0)[0] {
		fmt.Println("crash-consistent: recovered result matches the golden run")
	} else {
		log.Fatal("MISMATCH: recovery failed")
	}
}
