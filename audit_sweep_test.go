package capri

// The audited crash sweep: the acceptance gate behind `make audit`. Every
// generated program of the differential sweep's 104-seed corpus is crashed at
// spread points, recovered, and resumed with the online Fig. 7 auditor
// attached end-to-end (run → crash → recovery replay → resumption); any
// violated provenance invariant fails with the offending per-line event
// chain. The 21 paper benchmarks additionally run to completion under the
// auditor. Mutation coverage — that seeded protocol corruptions DO trip the
// auditor — lives in internal/audit's mutation tests.

import (
	"fmt"
	"testing"

	"capri/internal/audit"
	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/progen"
	"capri/internal/recovery"
	"capri/internal/workload"
)

// TestAuditProgenCrashSweep sweeps the 104-program progen corpus (same
// shapes and seeds as TestDifferentialProgenCrashSweep) under the auditor.
func TestAuditProgenCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("audited progen sweep is not short")
	}
	const seeds = 104 // 4 shapes x 26 seeds
	shapes := []progen.Config{
		{Funcs: 3, MaxDepth: 3, MaxStmts: 5, MaxLoopTrip: 6, Threads: 1},
		{Funcs: 2, MaxDepth: 2, MaxStmts: 4, MaxLoopTrip: 4, Threads: 2},
		{Funcs: 4, MaxDepth: 3, MaxStmts: 6, MaxLoopTrip: 5, Threads: 1},
		{Funcs: 2, MaxDepth: 2, MaxStmts: 4, MaxLoopTrip: 4, Threads: 2, Barriers: true},
	}
	var events uint64
	points := 0
	for s := 0; s < seeds; s++ {
		shape := shapes[s%len(shapes)]
		name := fmt.Sprintf("seed%d_t%d", s, shape.Threads)
		src := progen.Generate(uint64(s)*0x9e3779b9+1, shape)
		opts := compile.OptionsForLevel(compile.LevelLICM, 64)
		cfg := diffConfig(shape.Threads, 64, false)
		res, err := recovery.ValidateProgramAudited(src, opts, cfg, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		events += res.EventsAudited
		points += res.Points
	}
	if points == 0 || events == 0 {
		t.Fatalf("sweep audited nothing (%d points, %d events)", points, events)
	}
	t.Logf("audited %d crash points, %d provenance events", points, events)
}

// TestAuditBenchmarks runs every paper benchmark stand-in to completion with
// the flight recorder and auditor attached: zero violations, and the event
// stream must cover the full store lifecycle.
func TestAuditBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("audited benchmark sweep is not short")
	}
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			src := b.Build(benchScale)
			res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, 256))
			if err != nil {
				t.Fatal(err)
			}
			m, err := machine.New(res.Program, diffConfig(b.Threads, 256, false))
			if err != nil {
				t.Fatal(err)
			}
			rec := audit.NewFlightRecorder(audit.DefaultRecorderCap)
			aud := audit.NewAuditor(m.AuditOptions())
			aud.AttachRecorder(rec)
			m.SetTap(audit.Tee(rec, aud))
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if err := aud.Err(); err != nil {
				t.Fatalf("benchmark flagged: %v", err)
			}
			counts := rec.KindCounts()
			for _, k := range []audit.Kind{audit.EvStore, audit.EvCommit, audit.EvDrain} {
				if counts[k] == 0 {
					t.Errorf("no %s events observed", k)
				}
			}
		})
	}
}
