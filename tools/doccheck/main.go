// Command doccheck enforces godoc coverage: every exported package-level
// identifier (function, method, type, const, var) in the packages named on
// the command line must carry a doc comment. It is the portable core of
// `make lint` — no revive, no staticcheck, just go/ast — so the check runs
// anywhere the Go toolchain does.
//
// Usage:
//
//	go run ./tools/doccheck internal/sweep internal/resultstore ...
//
// A grouped declaration (`const (...)`, `var (...)`) is satisfied by a doc
// comment on the group or on the individual specs. Test files are skipped:
// their audience is the test log, not godoc.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir>...")
		os.Exit(2)
	}
	missing := 0
	for _, dir := range os.Args[1:] {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		missing += len(m)
		for _, id := range m {
			fmt.Printf("%s\n", id)
		}
	}
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) without doc comments\n", missing)
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d package(s) fully documented\n", len(os.Args[1:]))
}

// exportedRecv reports whether the declaration is godoc-visible: a plain
// function, or a method on an exported receiver type. Methods on unexported
// types (interface plumbing like a private Sink implementation) never show
// in godoc and need no doc comment.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true // unrecognized shape: err on the side of requiring docs
		}
	}
}

// checkDir parses every non-test .go file in dir and returns a
// "file:line: identifier" entry per undocumented exported declaration.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
						what := "function"
						if d.Recv != nil {
							what = "method"
						}
						report(d.Pos(), what, d.Name.Name)
					}
				case *ast.GenDecl:
					groupDoc := d.Doc != nil
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && !groupDoc && s.Doc == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							// A doc comment on the group covers every spec;
							// otherwise each exported spec needs its own.
							if groupDoc || s.Doc != nil || s.Comment != nil {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									report(n.Pos(), "value", n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}
