module capri

go 1.22
