// Package capri is a from-scratch reproduction of "Capri: Compiler and
// Architecture Support for Whole-System Persistence" (HPDC 2022): a compiler
// that partitions programs into failure-atomic regions bounded by a store
// threshold, and a simulated architecture whose non-volatile proxy buffers
// make every region's stores persist all-or-nothing in NVM — so any program,
// unmodified, can resume from a power failure at its last region boundary.
//
// The package is a facade over the internal toolchain:
//
//	prog    := capri.NewProgram(...)        // build IR via prog.Builder
//	res, _  := capri.Compile(prog, capri.DefaultOptions())
//	m, _    := capri.NewMachine(res.Program, capri.DefaultConfig())
//	_       = m.Run()                       // runs to completion
//
// Crash consistency end to end:
//
//	m.RunUntil(n)                           // power fails after n instructions
//	img, _ := m.Crash()                     // what battery-backed HW preserves
//	r, rep, _ := capri.Recover(img)         // §5.4 recovery protocol
//	_ = r.Run()                             // resumes at the last boundary
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every figure.
package capri

import (
	"io"

	"capri/internal/compile"
	"capri/internal/image"
	"capri/internal/machine"
	"capri/internal/prog"
)

// Re-exported core types. The aliases keep one import path for downstream
// users while the implementation stays in focused internal packages.
type (
	// Program is an IR program (functions of basic blocks). Construct one
	// with NewBuilder.
	Program = prog.Program
	// Builder incrementally constructs a Program.
	Builder = prog.Builder
	// FuncBuilder emits one function block by block.
	FuncBuilder = prog.FuncBuilder
	// Options selects the Capri compiler's threshold and optimizations.
	Options = compile.Options
	// Level is a cumulative optimization level (region → +ckpt → +unrolling
	// → +pruning → +licm), as plotted in the paper's Figure 9.
	Level = compile.Level
	// CompileResult is a compiled program plus compiler statistics.
	CompileResult = compile.Result
	// Config describes the simulated machine (paper Table 1).
	Config = machine.Config
	// Machine is the simulated whole system.
	Machine = machine.Machine
	// CrashImage is the persistent state surviving a power failure.
	CrashImage = machine.CrashImage
	// RecoveryReport describes what recovery did.
	RecoveryReport = machine.RecoveryReport
	// Stats are the machine's runtime counters.
	Stats = machine.Stats
)

// Cumulative optimization levels (Figure 9 legend).
const (
	LevelRegion = compile.LevelRegion
	LevelCkpt   = compile.LevelCkpt
	LevelUnroll = compile.LevelUnroll
	LevelPrune  = compile.LevelPrune
	LevelLICM   = compile.LevelLICM
)

// HeapBase is where compiled workloads place heap data (see machine package
// memory map).
const HeapBase = machine.HeapBase

// StackBase returns the initial stack pointer for a hardware thread.
func StackBase(thread int) uint64 { return machine.StackBase(thread) }

// NewBuilder returns a Builder for a fresh program.
func NewBuilder(name string) *Builder { return prog.NewBuilder(name) }

// DefaultOptions returns the paper's default compiler configuration
// (threshold 256, all optimizations on).
func DefaultOptions() Options { return compile.DefaultOptions() }

// OptionsForLevel returns the compiler options matching a cumulative
// optimization level at the given store threshold.
func OptionsForLevel(l Level, threshold int) Options {
	return compile.OptionsForLevel(l, threshold)
}

// Compile runs the Capri compiler pipeline (region formation, checkpointing
// stores, speculative unrolling, pruning, LICM) over a copy of p.
func Compile(p *Program, opts Options) (*CompileResult, error) {
	return compile.Compile(p, opts)
}

// DefaultConfig returns the paper's Table 1 machine configuration.
func DefaultConfig() Config { return machine.DefaultConfig() }

// NewMachine builds a simulated machine for a compiled program.
func NewMachine(p *Program, cfg Config) (*Machine, error) {
	return machine.New(p, cfg)
}

// Recover rebuilds a runnable machine from a crash image using the paper's
// §5.4 recovery protocol (redo committed regions, undo the interrupted one,
// reload the register checkpoint array, resume at the last boundary).
func Recover(img *CrashImage) (*Machine, *RecoveryReport, error) {
	return machine.Recover(img)
}

// OutputDevice receives committed program output exactly once, in commit
// order — the machine's answer to the paper's open I/O problem (§3.3):
// external effects are released only when their region commits durably.
type OutputDevice = machine.OutputDevice

// RecoverWithDevices is Recover with output devices attached before the
// protocol replays committed-but-undrained regions, preserving exactly-once
// delivery across the crash.
func RecoverWithDevices(img *CrashImage, devices ...OutputDevice) (*Machine, *RecoveryReport, error) {
	return machine.RecoverAttached(img, devices...)
}

// WriteImage serializes a crash image (versioned gzip-JSON, embedding the
// compiled program) so whole-system persistence can span process lifetimes:
// what the battery-backed hardware preserves becomes a file.
func WriteImage(w io.Writer, img *CrashImage) error { return image.Write(w, img) }

// ReadImage deserializes a crash image written by WriteImage.
func ReadImage(r io.Reader) (*CrashImage, error) { return image.Read(r) }

// SaveImage writes a crash image to a file atomically.
func SaveImage(path string, img *CrashImage) error { return image.Save(path, img) }

// LoadImage reads a crash image from a file.
func LoadImage(path string) (*CrashImage, error) { return image.LoadFile(path) }
