package capri

// Differential tests proving the paged memory store (internal/mem's flat
// page-directory backing) is cycle-for-cycle and image-identical to the
// map-backed reference store the seed used. The reference implementation is
// kept selectable via machine.Config.RefStore, so both runs execute the
// identical machine code — any divergence in cycle counts, memory images,
// recovery behavior or committed output is a real store bug, not noise.

import (
	"fmt"
	"reflect"
	"testing"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/prog"
	"capri/internal/progen"
	"capri/internal/workload"
)

// diffConfig mirrors the figures harness configuration (shrunken caches) so
// the differential runs cover the same hierarchy behavior the figures exercise.
func diffConfig(threads, threshold int, refStore bool) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Capri = true
	cfg.Threshold = threshold
	cfg.RefStore = refStore
	if threads > cfg.Cores {
		cfg.Cores = threads
	}
	cfg.L2Size = 2 << 20
	cfg.DRAMSize = 16 << 20
	return cfg
}

// machineImage is everything a differential comparison must find identical.
type machineImage struct {
	Cycles  uint64
	Instret uint64
	Mem     map[uint64]uint64
	NVM     map[uint64]uint64
	Outputs [][]uint64
}

func imageOf(m *machine.Machine, threads int) machineImage {
	img := machineImage{
		Cycles:  m.Cycles(),
		Instret: m.Instret(),
		Mem:     m.MemSnapshot(),
		NVM:     m.NVMSnapshot(),
	}
	for t := 0; t < threads; t++ {
		img.Outputs = append(img.Outputs, m.Output(t))
	}
	return img
}

func requireIdentical(t *testing.T, what string, paged, ref machineImage) {
	t.Helper()
	if paged.Cycles != ref.Cycles {
		t.Errorf("%s: cycles diverge: paged %d, ref %d", what, paged.Cycles, ref.Cycles)
	}
	if paged.Instret != ref.Instret {
		t.Errorf("%s: instret diverge: paged %d, ref %d", what, paged.Instret, ref.Instret)
	}
	if !reflect.DeepEqual(paged.Mem, ref.Mem) {
		t.Errorf("%s: architectural memory images diverge (%d vs %d words)", what, len(paged.Mem), len(ref.Mem))
	}
	if !reflect.DeepEqual(paged.NVM, ref.NVM) {
		t.Errorf("%s: NVM images diverge (%d vs %d words)", what, len(paged.NVM), len(ref.NVM))
	}
	if !reflect.DeepEqual(paged.Outputs, ref.Outputs) {
		t.Errorf("%s: committed outputs diverge", what)
	}
}

// runPair executes the same program on the paged and reference stores and
// returns both final images.
func runPair(t *testing.T, what string, p *prog.Program, threads, threshold int) (machineImage, machineImage) {
	t.Helper()
	var imgs [2]machineImage
	for i, ref := range []bool{false, true} {
		m, err := machine.New(p, diffConfig(threads, threshold, ref))
		if err != nil {
			t.Fatalf("%s (ref=%v): %v", what, ref, err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("%s (ref=%v): %v", what, ref, err)
		}
		imgs[i] = imageOf(m, threads)
	}
	return imgs[0], imgs[1]
}

// TestDifferentialBenchmarks runs every paper benchmark (all 21 stand-ins) to
// completion on both stores and requires byte-identical outcomes: same cycle
// count, same architectural and NVM images, same committed output.
func TestDifferentialBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("differential benchmark sweep is not short")
	}
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			src := b.Build(benchScale)
			res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, 256))
			if err != nil {
				t.Fatal(err)
			}
			paged, ref := runPair(t, b.Name, res.Program, b.Threads, 256)
			requireIdentical(t, b.Name, paged, ref)
		})
	}
}

// crashRecoverImage crashes the program at the given retired-instruction
// count, recovers, resumes to completion, and returns the final image. ok is
// false when the program finished before the crash point.
func crashRecoverImage(t *testing.T, what string, p *prog.Program, threads, threshold int, refStore bool, crashAt uint64) (machineImage, bool) {
	t.Helper()
	m, err := machine.New(p, diffConfig(threads, threshold, refStore))
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if err := m.RunUntil(crashAt); err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if m.Done() {
		return machineImage{}, false
	}
	img, err := m.Crash()
	if err != nil {
		t.Fatalf("%s: crash: %v", what, err)
	}
	r, _, err := machine.Recover(img)
	if err != nil {
		t.Fatalf("%s: recover: %v", what, err)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("%s: resume: %v", what, err)
	}
	return imageOf(r, threads), true
}

// TestDifferentialProgenCrashSweep fuzzes >=100 generated programs (mixed
// single- and multi-threaded, including SPMD barrier programs), runs each to
// completion on both stores, and sweeps crash points through each program on
// both stores — recovery must land on identical final images everywhere. This
// is the property-based half of the store-equivalence proof: progen programs
// hit address and control-flow shapes the curated benchmarks do not.
func TestDifferentialProgenCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("progen differential sweep is not short")
	}
	const seeds = 104 // 4 shapes x 26 seeds
	shapes := []progen.Config{
		{Funcs: 3, MaxDepth: 3, MaxStmts: 5, MaxLoopTrip: 6, Threads: 1},
		{Funcs: 2, MaxDepth: 2, MaxStmts: 4, MaxLoopTrip: 4, Threads: 2},
		{Funcs: 4, MaxDepth: 3, MaxStmts: 6, MaxLoopTrip: 5, Threads: 1},
		{Funcs: 2, MaxDepth: 2, MaxStmts: 4, MaxLoopTrip: 4, Threads: 2, Barriers: true},
	}
	for s := 0; s < seeds; s++ {
		shape := shapes[s%len(shapes)]
		name := fmt.Sprintf("seed%d_t%d", s, shape.Threads)
		src := progen.Generate(uint64(s)*0x9e3779b9+1, shape)
		res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, 64))
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		p := res.Program
		paged, ref := runPair(t, name, p, shape.Threads, 64)
		requireIdentical(t, name+" golden", paged, ref)
		if t.Failed() {
			t.Fatalf("%s: stopping after golden divergence", name)
		}

		// Crash sweep: 5 points through the golden instruction count.
		total := paged.Instret
		if total < 2 {
			continue
		}
		step := total/5 + 1
		for crashAt := step / 2; crashAt < total; crashAt += step {
			what := fmt.Sprintf("%s crash@%d", name, crashAt)
			pg, ok1 := crashRecoverImage(t, what, p, shape.Threads, 64, false, crashAt)
			rf, ok2 := crashRecoverImage(t, what, p, shape.Threads, 64, true, crashAt)
			if ok1 != ok2 {
				t.Fatalf("%s: crash reached on one store only (paged %v, ref %v)", what, ok1, ok2)
			}
			if !ok1 {
				continue
			}
			requireIdentical(t, what, pg, rf)
			// Recovered runs must also match the golden run's functional
			// outcome (cycles differ after a crash; the images must not).
			if !reflect.DeepEqual(pg.Outputs, paged.Outputs) {
				t.Errorf("%s: recovered output diverges from golden", what)
			}
			if !reflect.DeepEqual(pg.Mem, paged.Mem) {
				t.Errorf("%s: recovered memory diverges from golden", what)
			}
			if t.Failed() {
				t.Fatalf("%s: stopping after first divergence", what)
			}
		}
	}
}
