package capri

// Resume-accounting differential test: run() keeps the global retired-
// instruction counter (m.retired) across entries instead of re-summing
// per-core instret, and rebuilds its scheduler state (run queue, quantum
// horizons) per entry. Segmenting an execution with RunUntil checkpoints and
// finishing with Run must therefore land on exactly the same machine as one
// uninterrupted Run — same images, same cycle ledger, same retirement — or
// the resume path is re-deriving state it should have kept (or keeping state
// it should have re-derived).

import (
	"reflect"
	"testing"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/workload"
)

func TestResumeAccountingSegments(t *testing.T) {
	for _, name := range []string{"water-spatial", "fft"} {
		t.Run(name, func(t *testing.T) {
			bm, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := compile.Compile(bm.Build(benchScale), compile.OptionsForLevel(compile.LevelLICM, 256))
			if err != nil {
				t.Fatal(err)
			}
			cfg := diffConfig(bm.Threads, 256, false)
			cfg.Dispatch = machine.DispatchThreaded

			golden, err := machine.New(res.Program, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := golden.Run(); err != nil {
				t.Fatal(err)
			}
			gImg := imageOf(golden, bm.Threads)
			total := golden.Instret()
			if total < 10 {
				t.Fatalf("workload too small to segment: %d instret", total)
			}

			// Same program, executed as three segments: two instruction-count
			// checkpoints (which run on the strict crash-exact schedule and
			// tear down the scheduler state between entries) and a final Run
			// to completion.
			seg, err := machine.New(res.Program, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, at := range []uint64{total / 3, 2 * total / 3} {
				if err := seg.RunUntil(at); err != nil {
					t.Fatal(err)
				}
				if got := seg.Instret(); got < at {
					t.Fatalf("RunUntil(%d) stopped early at %d retired", at, got)
				}
			}
			if err := seg.Run(); err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, name+" (segmented)", imageOf(seg, bm.Threads), gImg)
			if a, b := comparableStats(seg.Stats()), comparableStats(golden.Stats()); !reflect.DeepEqual(a, b) {
				t.Errorf("%s: segmented stats diverge beyond Steps/decode/scheduler counters:\n  segmented %+v\n  golden    %+v", name, a, b)
			}
		})
	}
}
