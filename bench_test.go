package capri

// Benchmarks regenerating the paper's tables and figures, one testing.B
// target per artifact:
//
//	go test -bench=. -benchmem
//
// Each benchmark runs the corresponding sweep once per iteration and reports
// the headline metric as custom benchmark outputs (ns/op reflects harness
// cost, the figures themselves are the reported metrics). For the full
// printed tables use `go run ./cmd/capribench -all`.

import (
	"fmt"
	"testing"

	"capri/internal/compile"
	"capri/internal/figures"
	"capri/internal/isa"
	"capri/internal/machine"
	"capri/internal/workload"
)

// benchScale keeps benchmark wall-clock reasonable while preserving the
// workloads' steady-state behaviour.
const benchScale = 1

// BenchmarkTable1Config renders the simulator configuration (paper Table 1).
func BenchmarkTable1Config(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = machine.DefaultConfig().Table1()
	}
	if len(s) == 0 {
		b.Fatal("empty Table 1")
	}
}

// BenchmarkFig8Thresholds regenerates Figure 8: normalized execution cycles
// across store thresholds for all 21 benchmarks. Reported metrics are the
// overall geometric means at the swept thresholds.
func BenchmarkFig8Thresholds(b *testing.B) {
	h := figures.NewHarness(benchScale)
	ths := []int{32, 64, 128, 256, 512, 1024}
	var tbl interface {
		Value(string, string) (float64, bool)
	}
	for i := 0; i < b.N; i++ {
		t, err := h.Fig8(ths)
		if err != nil {
			b.Fatal(err)
		}
		tbl = t
	}
	for _, th := range ths {
		if v, ok := tbl.Value("overall_gmean", fmt.Sprint(th)); ok {
			b.ReportMetric(v, fmt.Sprintf("norm_th%d", th))
		}
	}
}

// BenchmarkFig9CompilerOpts regenerates Figure 9: normalized cycles under
// cumulative compiler optimizations at threshold 256. Reported metrics are
// the overall geomeans per level.
func BenchmarkFig9CompilerOpts(b *testing.B) {
	h := figures.NewHarness(benchScale)
	var tbl interface {
		Value(string, string) (float64, bool)
	}
	for i := 0; i < b.N; i++ {
		t, err := h.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		tbl = t
	}
	for _, l := range compile.Levels {
		if v, ok := tbl.Value("overall_gmean", l.String()); ok {
			b.ReportMetric(v, "norm_"+metricName(l.String()))
		}
	}
}

// BenchmarkFig10RegionLength regenerates Figure 10: average instructions per
// dynamic region, per optimization level.
func BenchmarkFig10RegionLength(b *testing.B) {
	h := figures.NewHarness(benchScale)
	var tbl interface {
		Value(string, string) (float64, bool)
	}
	for i := 0; i < b.N; i++ {
		t, err := h.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		tbl = t
	}
	for _, l := range compile.Levels {
		if v, ok := tbl.Value("overall_gmean", l.String()); ok {
			b.ReportMetric(v, "insts_"+metricName(l.String()))
		}
	}
}

// BenchmarkFig11RegionStores regenerates Figure 11: average stores
// (checkpoints included) per dynamic region, per optimization level.
func BenchmarkFig11RegionStores(b *testing.B) {
	h := figures.NewHarness(benchScale)
	var tbl interface {
		Value(string, string) (float64, bool)
	}
	for i := 0; i < b.N; i++ {
		t, err := h.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		tbl = t
	}
	for _, l := range compile.Levels {
		if v, ok := tbl.Value("overall_gmean", l.String()); ok {
			b.ReportMetric(v, "stores_"+metricName(l.String()))
		}
	}
}

// BenchmarkHeadline regenerates the §6.2 headline per-suite overheads
// (paper: SPEC 0%, STAMP 12.4%, Splash-3 9.1%, overall 5.1%).
func BenchmarkHeadline(b *testing.B) {
	h := figures.NewHarness(benchScale)
	var hd figures.Headline
	for i := 0; i < b.N; i++ {
		var err error
		hd, err = h.Headline()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*hd.SPEC, "pct_spec")
	b.ReportMetric(100*hd.STAMP, "pct_stamp")
	b.ReportMetric(100*hd.Splash, "pct_splash")
	b.ReportMetric(100*hd.Overall, "pct_overall")
}

// BenchmarkCompileSuite measures compiler throughput over the whole suite —
// an implementation benchmark, not a paper figure, useful for tracking the
// pass pipeline's cost.
func BenchmarkCompileSuite(b *testing.B) {
	progs := make([]*Program, 0, 19)
	for _, w := range workload.All() {
		progs = append(progs, w.Build(benchScale))
	}
	opts := compile.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			if _, err := compile.Compile(p, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (instructions
// per second) on one store-dense benchmark.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := workload.ByName("labyrinth")
	if err != nil {
		b.Fatal(err)
	}
	src := w.Build(benchScale)
	res, err := compile.Compile(src, compile.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.L2Size = 2 << 20
	cfg.DRAMSize = 16 << 20
	var instret uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := machine.New(res.Program, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		instret = m.Instret()
	}
	b.ReportMetric(float64(instret)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkSimulatorThroughputMT measures multi-core simulation speed on one
// lock-dense Splash kernel, with the conflict-aware quantum extension on
// (ext) and off (lockstep) — the simulator-performance pair behind the
// fig8-mt4 perf figures.
func BenchmarkSimulatorThroughputMT(b *testing.B) {
	w, err := workload.ByName("water-nsquared")
	if err != nil {
		b.Fatal(err)
	}
	src := w.Build(benchScale)
	res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, 256))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		noExt bool
	}{{"ext", false}, {"lockstep", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := machine.DefaultConfig()
			cfg.NoQuantumExt = mode.noExt
			var instret uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := machine.New(res.Program, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Run(); err != nil {
					b.Fatal(err)
				}
				instret = m.Instret()
			}
			b.ReportMetric(float64(instret)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
		})
	}
}

// BenchmarkRecovery measures the crash-image harvest plus recovery-protocol
// latency at the default threshold.
func BenchmarkRecovery(b *testing.B) {
	w, err := workload.ByName("genome")
	if err != nil {
		b.Fatal(err)
	}
	src := w.Build(benchScale)
	res, err := compile.Compile(src, compile.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.L2Size = 2 << 20
	cfg.DRAMSize = 16 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := machine.New(res.Program, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.RunUntil(50_000); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		img, err := m.Crash()
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := machine.Recover(img); err != nil {
			b.Fatal(err)
		}
	}
}

func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '+' {
			continue
		}
		out = append(out, r)
	}
	return string(out)
}

// BenchmarkAblation quantifies the design choices DESIGN.md calls out: the
// writeback valid-bit scan (§5.3.2), boundary elision and entry merging
// (§5.2.1). The micro-workload is built to engage all three mechanisms: hot
// words rewritten every iteration (merge + scan material), a cold streaming
// sweep large enough to evict through a small L2 (writeback traffic), and a
// store-free inner loop (elision material). Reported metrics are cycles and
// NVM write operations relative to the full design.
func BenchmarkAblation(b *testing.B) {
	b.Run("merge+elide", func(b *testing.B) { ablationRun(b, true) })
	b.Run("scan", func(b *testing.B) { ablationRun(b, false) })
}

func ablationRun(b *testing.B, multiRewrite bool) {
	src := ablationProgram(multiRewrite)
	res, err := compile.Compile(src, compile.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	base := machine.DefaultConfig()
	base.Cores = 1
	// Stress configuration (cf. TestWritebackRaceFig7): tiny caches make
	// dirty writebacks race the proxy path, and a slow path keeps entries in
	// the buffers long enough for merging and scans to matter.
	base.L1Size = 512
	base.L1Ways = 1
	base.L2Size = 4 << 10
	base.L2Ways = 1
	base.DRAMSize = 16 << 20
	base.ProxyLatency = 400
	base.ProxyInterval = 32

	noScan := base
	noScan.NoScanInvalidate = true
	noElide := base
	noElide.NoElision = true
	noMerge := base
	noMerge.NoFrontMerge = true
	noMerge.NoBackMerge = true

	run := func(cfg machine.Config) machine.Stats {
		m, err := machine.New(res.Program, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		return m.Stats()
	}

	var std, sScan, sElide, sMerge machine.Stats
	for i := 0; i < b.N; i++ {
		std = run(base)
		sScan = run(noScan)
		sElide = run(noElide)
		sMerge = run(noMerge)
	}
	// Extra NVM write operations each ablation costs versus the full design,
	// plus the mechanism activity of the full design itself.
	b.ReportMetric(float64(int64(sScan.NVMWrites)-int64(std.NVMWrites)), "xnvmw_noScan")
	b.ReportMetric(float64(int64(sElide.NVMWrites)-int64(std.NVMWrites)), "xnvmw_noElide")
	b.ReportMetric(float64(int64(sMerge.NVMWrites)-int64(std.NVMWrites)), "xnvmw_noMerge")
	b.ReportMetric(float64(int64(sScan.Cycles)-int64(std.Cycles)), "xcyc_noScan")
	b.ReportMetric(float64(int64(sMerge.Cycles)-int64(std.Cycles)), "xcyc_noMerge")
	b.ReportMetric(float64(std.ScanHits+std.WindowHits), "scanhits_std")
	b.ReportMetric(float64(std.FrontMerges), "merges_std")
	b.ReportMetric(float64(std.ElidedBds), "elided_std")
}

// ablationProgram builds the hot/cold/store-free micro used by the ablation
// benchmarks. multiRewrite adds same-word rewrites within one iteration
// (entry-merging material); without it, single rewrites per iteration leave
// a window for dirty writebacks to race buffered entries (valid-bit scan
// material).
func ablationProgram(multiRewrite bool) *Program {
	bd := NewBuilder("ablation")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	innerHdr := f.Block()
	innerBody := f.Block()
	latch := f.Block()
	exit := f.Block()

	const (
		rI    = isa.Reg(8)
		rN    = isa.Reg(9)
		rHot  = isa.Reg(10)
		rCold = isa.Reg(11)
		rV    = isa.Reg(12)
		rOff  = isa.Reg(13)
		rJ    = isa.Reg(14)
		rJN   = isa.Reg(15)
		rAcc  = isa.Reg(16)
	)

	f.SetBlock(entry)
	f.MovI(isa.SP, int64(StackBase(0)))
	f.MovI(rI, 0)
	f.MovI(rN, 4000)
	f.MovI(rHot, int64(HeapBase))
	f.MovI(rCold, int64(HeapBase)+1<<20)
	f.MovI(rV, 1)
	f.MovI(rAcc, 0)
	f.Br(header)

	f.SetBlock(header)
	f.BrIf(rI, isa.CondGE, rN, exit, body)

	f.SetBlock(body)
	// Hot rewrites: the same words stored repeatedly within one iteration,
	// so entries are still buffered when the rewrite arrives (merge + scan).
	f.Add(rV, rV, rI)
	f.Store(rHot, 0, rV)
	f.Store(rHot, 8, rI)
	f.Store(rHot, 16, rV)
	if multiRewrite {
		f.AddI(rV, rV, 3)
		f.Store(rHot, 0, rV)
		f.Store(rHot, 8, rV)
		f.AddI(rV, rV, 5)
		f.Store(rHot, 0, rV)
	}
	// Cold streaming sweep over 4 MB: evicts through the small L2.
	f.MulI(rOff, rI, 64)
	f.OpI(isa.OpAndI, rOff, rOff, (1<<22)-1)
	f.Add(rOff, rOff, rCold)
	f.Store(rOff, 0, rV)
	// Store-free inner loop (elision material).
	f.MovI(rJ, 0)
	f.MovI(rJN, 4)
	f.Br(innerHdr)

	f.SetBlock(innerHdr)
	f.BrIf(rJ, isa.CondGE, rJN, latch, innerBody)
	f.SetBlock(innerBody)
	f.Op3(isa.OpXor, rAcc, rAcc, rV)
	f.AddI(rJ, rJ, 1)
	f.Br(innerHdr)

	f.SetBlock(latch)
	f.AddI(rI, rI, 1)
	f.Br(header)

	f.SetBlock(exit)
	f.Emit(rAcc)
	f.Halt()
	bd.SetThreadEntries(f)
	return bd.Program()
}

// BenchmarkInlining quantifies the region-lengthening inlining extension
// (the paper's §6.3 future work) on the call-bound benchmarks: normalized
// cycles and average region length with and without inlining.
func BenchmarkInlining(b *testing.B) {
	for _, name := range []string{"531.deepsjeng_r", "vacation"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w, err := workload.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			src := w.Build(benchScale)
			cfgB := machine.DefaultConfig()
			cfgB.Capri = false
			cfgB.L2Size = 2 << 20
			cfgB.DRAMSize = 16 << 20
			mb, err := machine.New(src, cfgB)
			if err != nil {
				b.Fatal(err)
			}
			if err := mb.Run(); err != nil {
				b.Fatal(err)
			}
			base := mb.Cycles()

			run := func(inline bool) machine.Stats {
				opts := compile.DefaultOptions()
				opts.Inline = inline
				res, err := compile.Compile(src, opts)
				if err != nil {
					b.Fatal(err)
				}
				cfg := cfgB
				cfg.Capri = true
				cfg.Threshold = opts.Threshold
				m, err := machine.New(res.Program, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Run(); err != nil {
					b.Fatal(err)
				}
				return m.Stats()
			}

			var off, on machine.Stats
			for i := 0; i < b.N; i++ {
				off = run(false)
				on = run(true)
			}
			b.ReportMetric(float64(off.Cycles)/float64(base), "norm_noInline")
			b.ReportMetric(float64(on.Cycles)/float64(base), "norm_inline")
			b.ReportMetric(off.AvgRegionInsts, "rgInsts_noInline")
			b.ReportMetric(on.AvgRegionInsts, "rgInsts_inline")
		})
	}
}
