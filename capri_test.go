package capri

import (
	"bytes"
	"reflect"
	"testing"

	"capri/internal/isa"
)

// buildDemo builds a small program through the public facade: a loop that
// accumulates into memory and emits the final sum.
func buildDemo(n int64) *Program {
	bd := NewBuilder("demo")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	f.SetBlock(entry)
	f.MovI(isa.SP, int64(StackBase(0)))
	f.MovI(8, 0)
	f.MovI(9, n)
	f.MovI(10, int64(HeapBase))
	f.MovI(11, 0)
	f.Br(header)
	f.SetBlock(header)
	f.BrIf(8, isa.CondGE, 9, exit, body)
	f.SetBlock(body)
	f.Add(11, 11, 8)
	f.Store(10, 0, 11)
	f.AddI(8, 8, 1)
	f.Br(header)
	f.SetBlock(exit)
	f.Emit(11)
	f.Halt()
	bd.SetThreadEntries(f)
	return bd.Program()
}

func TestPublicAPICompileRun(t *testing.T) {
	p := buildDemo(100)
	res, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Regions == 0 || res.Stats.CkptsInserted == 0 {
		t.Errorf("compile stats empty: %+v", res.Stats)
	}
	cfg := DefaultConfig()
	cfg.Cores = 1
	m, err := NewMachine(res.Program, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := uint64(100 * 99 / 2)
	if out := m.Output(0); len(out) != 1 || out[0] != want {
		t.Errorf("output = %v, want [%d]", out, want)
	}
}

func TestPublicAPICrashRecover(t *testing.T) {
	p := buildDemo(200)
	res, err := Compile(p, OptionsForLevel(LevelLICM, 32))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cores = 1
	cfg.Threshold = 32

	golden, err := NewMachine(res.Program, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Run(); err != nil {
		t.Fatal(err)
	}

	m, _ := NewMachine(res.Program, cfg)
	if err := m.RunUntil(700); err != nil {
		t.Fatal(err)
	}
	if m.Done() {
		t.Skip("program finished before crash point")
	}
	img, err := m.Crash()
	if err != nil {
		t.Fatal(err)
	}
	r, rep, err := Recover(img)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoresResumed != 1 {
		t.Errorf("resumed %d cores", rep.CoresResumed)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Output(0), golden.Output(0)) {
		t.Errorf("recovered output %v, golden %v", r.Output(0), golden.Output(0))
	}
}

func TestOptionLevels(t *testing.T) {
	o := OptionsForLevel(LevelRegion, 64)
	if o.InsertCheckpoints {
		t.Error("LevelRegion must not checkpoint")
	}
	o = OptionsForLevel(LevelLICM, 64)
	if !(o.InsertCheckpoints && o.Unroll && o.Prune && o.LICM) {
		t.Errorf("LevelLICM = %+v", o)
	}
}

// collector implements OutputDevice for the facade test.
type collector struct{ vals []uint64 }

func (c *collector) Output(core int, v uint64) { c.vals = append(c.vals, v) }

func TestPublicAPIImageAndDevices(t *testing.T) {
	p := buildDemo(150)
	res, err := Compile(p, OptionsForLevel(LevelLICM, 32))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cores = 1
	cfg.Threshold = 32

	golden, _ := NewMachine(res.Program, cfg)
	if err := golden.Run(); err != nil {
		t.Fatal(err)
	}
	want := golden.Output(0)

	m, _ := NewMachine(res.Program, cfg)
	dev := &collector{}
	m.AttachOutputDevice(dev)
	if err := m.RunUntil(400); err != nil {
		t.Fatal(err)
	}
	if m.Done() {
		t.Skip("finished before crash")
	}
	img, err := m.Crash()
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip the image through the serialization API.
	path := t.TempDir() + "/img"
	if err := SaveImage(path, img); err != nil {
		t.Fatal(err)
	}
	img2, err := LoadImage(path)
	if err != nil {
		t.Fatal(err)
	}

	r, rep, err := RecoverWithDevices(img2, dev)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoresResumed != 1 {
		t.Errorf("report: %+v", rep)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if len(r.Output(0)) != len(want) || r.Output(0)[0] != want[0] {
		t.Errorf("output = %v, want %v", r.Output(0), want)
	}
	// Device: exactly-once across the serialized crash.
	if len(dev.vals) != len(want) || dev.vals[0] != want[0] {
		t.Errorf("device = %v, want %v", dev.vals, want)
	}
}

func TestPublicAPIWriteReadImage(t *testing.T) {
	p := buildDemo(100)
	res, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cores = 1
	m, _ := NewMachine(res.Program, cfg)
	if err := m.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	img, err := m.Crash()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteImage(&buf, img); err != nil {
		t.Fatal(err)
	}
	img2, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img2.Seq != img.Seq {
		t.Error("image seq lost in round trip")
	}
}

func TestFacadeConstants(t *testing.T) {
	if StackBase(0) == StackBase(1) {
		t.Error("thread stacks overlap")
	}
	if HeapBase == 0 {
		t.Error("heap base zero")
	}
	o := DefaultOptions()
	if o.Threshold != 256 || !o.InsertCheckpoints {
		t.Errorf("default options = %+v", o)
	}
}
