// Package proxy implements Capri's decoupled proxy buffer architecture
// (paper §5.2): the non-volatile front-end proxy buffer beside the L1 data
// cache, the dedicated per-core proxy data path, and the per-core back-end
// proxy buffers in the integrated memory controller. Together they realize
// the two-phase atomic store with undo+redo logging:
//
//   - Phase 1: every regular store allocates (or merges into) a front-end
//     entry holding the home address plus undo and redo images; the entry
//     travels the proxy path to the back-end. A region-boundary entry acts as
//     the commit marker and delimiter.
//   - Phase 2: once the back-end holds a region's boundary entry, it drains
//     the region's redo images to NVM, in region order.
//
// Register-checkpointing stores never allocate proxy entries; their values
// are staged in the dedicated register-file storage beside the front-end and
// travel with the boundary entry (§5.2.1 optimizations). Boundary entries for
// store-free regions are elided, likewise per §5.2.1.
//
// Both buffers are battery-backed: at a power failure their contents (plus
// entries in flight on the path, which the front-end logically retains until
// delivery) are exactly what the recovery protocol reads.
package proxy

import (
	"fmt"

	"capri/internal/isa"
)

// EntryKind distinguishes data entries from region-boundary markers.
type EntryKind uint8

// Entry kinds.
const (
	KindData EntryKind = iota
	KindBoundary
)

// Entry is one proxy buffer entry (paper Figure 5). Data entries carry the
// word address with undo and redo values; boundary entries carry the commit
// metadata: the PC checkpoint (function and block of the *next* region), the
// stack pointer, and the register checkpoints staged during the region.
type Entry struct {
	Kind EntryKind

	// Data entry fields. Seq tracks the newest store merged into the entry
	// (the redo's version); FirstSeq tracks the oldest (the version right
	// after the undo image). Recovery must roll back whenever NVM holds any
	// version >= FirstSeq — a dirty writeback may have persisted an
	// intermediate store of the region, not just the final one.
	Addr     uint64
	Undo     uint64
	Redo     uint64
	Seq      uint64
	FirstSeq uint64
	Valid    bool // redo valid-bit (§5.3); meaningful in the back-end

	// Boundary entry fields. (PCFunc, PCBlk, PCIdx) is the PC checkpoint —
	// the exact resume point of the region that begins at this boundary.
	Region uint64 // region sequence number (per core)
	PCFunc int32
	PCBlk  int32
	PCIdx  int32
	SP     uint64
	Ckpts  []RegCkpt
	Emits  []uint64 // program output staged during the committed region
	Halt   bool     // final marker of a halted thread
	// Sync is the synchronization-operation descriptor of the region this
	// boundary commits (zero Op: none). It persists into the core's recovery
	// record when the boundary completes phase 2.
	Sync SyncRec
}

// RegCkpt is one staged register checkpoint travelling with a boundary entry.
type RegCkpt struct {
	Reg isa.Reg
	Val uint64
}

// SyncRec is the per-core synchronization-operation descriptor travelling
// with a boundary entry (detectable recovery semantics, after Ben-David et
// al.'s detectability contract): the opcode, address, old and new memory
// values, and the store sequence number of the synchronization operation
// that committed the region. Because a sync op commits atomically with its
// own region, the descriptor's post-crash state is provably complete-or-
// absent: either the boundary drained and the recovery record holds the
// descriptor with its write persisted at Seq, or neither survives. Op zero
// means "no descriptor".
type SyncRec struct {
	Op   uint8
	Addr uint64
	Old  uint64
	New  uint64
	Seq  uint64
}

// FrontEnd is the front-end proxy buffer. Capacity is in entries (Table 1:
// 32 entries, ~4 KB). Entries drain toward the back-end at the proxy path
// rate; the core stalls only when the buffer is full (§5.2.1).
type FrontEnd struct {
	Capacity int
	// NoMerge disables same-region address merging (ablation).
	NoMerge bool
	// NoElide disables boundary elision for store-free regions (ablation).
	NoElide bool
	// FIFO backed by a ring-ish slice: entries[head:] are live,
	// entries[head] is oldest. Pop advances head; push compacts the live
	// window to the front when the backing array is exhausted, so the
	// buffer reaches a steady state with zero allocations.
	entries []Entry
	head    int

	// Register-file checkpoint staging for the current (uncommitted) region.
	staged []RegCkpt

	// stagedSync is the synchronization descriptor staged for the current
	// region (zero Op: none). Like staged register checkpoints, it lives in
	// the dedicated storage beside the front-end and travels with the
	// boundary entry.
	stagedSync SyncRec

	// Bounded freelists for boundary-entry slice backings. AddBoundary is the
	// simulator's hottest allocation site (one Ckpts and/or Emits slice per
	// committed region); the machine returns the backings via Recycle once
	// phase 2 has folded the boundary into the recovery record.
	ckptPool [][]RegCkpt
	emitPool [][]uint64

	// Stats.
	Allocs    uint64
	Merges    uint64
	Boundary  uint64
	ElidedBds uint64
	Stalls    uint64 // allocation attempts that found the buffer full
}

// NewFrontEnd returns a front-end buffer with the given entry capacity.
func NewFrontEnd(capacity int) *FrontEnd {
	if capacity <= 0 {
		panic(fmt.Sprintf("proxy: front-end capacity %d", capacity))
	}
	return &FrontEnd{Capacity: capacity, entries: make([]Entry, 0, capacity)}
}

// Full reports whether a new entry cannot be allocated.
func (f *FrontEnd) Full() bool { return f.Len() >= f.Capacity }

// Len returns the number of buffered entries.
func (f *FrontEnd) Len() int { return len(f.entries) - f.head }

// push appends an entry, compacting the live window first if the backing
// array has no room at the tail but dead space at the head.
func (f *FrontEnd) push(e Entry) {
	if len(f.entries) == cap(f.entries) && f.head > 0 {
		n := copy(f.entries, f.entries[f.head:])
		clearEntries(f.entries[n:])
		f.entries = f.entries[:n]
		f.head = 0
	}
	f.entries = append(f.entries, e)
}

// clearEntries drops dead entries' Ckpts/Emits slices so they are not
// retained past their lifetime (stale scalar fields are never read).
func clearEntries(dead []Entry) {
	for i := range dead {
		dead[i].Ckpts, dead[i].Emits = nil, nil
	}
}

// AddStore records a regular store: undo/redo images for addr. Within the
// current region, an entry with the same address is merged (redo and seq
// updated; undo keeps the oldest image). Returns false if the buffer is full
// — the caller must drain and retry (core stall).
func (f *FrontEnd) AddStore(addr, undo, redo, seq uint64) bool {
	// Merge search only within the current region: stop at the most recent
	// boundary entry (§5.2.1: "does not merge proxy entries even if two
	// entries have the same address when they belong to different regions").
	for i := len(f.entries) - 1; i >= f.head && !f.NoMerge; i-- {
		e := &f.entries[i]
		if e.Kind == KindBoundary {
			break
		}
		if e.Addr == addr {
			e.Redo = redo
			e.Seq = seq
			f.Merges++
			return true
		}
	}
	if f.Full() {
		f.Stalls++
		return false
	}
	f.push(Entry{
		Kind: KindData, Addr: addr, Undo: undo, Redo: redo,
		Seq: seq, FirstSeq: seq, Valid: true,
	})
	f.Allocs++
	return true
}

// StageCkpt records a register checkpoint for the current region in the
// dedicated register-file storage. Later stages of the same register within
// one region overwrite earlier ones.
func (f *FrontEnd) StageCkpt(r isa.Reg, val uint64) {
	for i := range f.staged {
		if f.staged[i].Reg == r {
			f.staged[i].Val = val
			return
		}
	}
	f.staged = append(f.staged, RegCkpt{Reg: r, Val: val})
}

// StagedLen returns the number of staged register checkpoints.
func (f *FrontEnd) StagedLen() int { return len(f.staged) }

// StageSync records the synchronization-operation descriptor of the current
// region. A region holds at most one sync op (every sync op is a mandatory
// region boundary), so a second stage before the boundary is a protocol
// error the machine never commits.
func (f *FrontEnd) StageSync(s SyncRec) { f.stagedSync = s }

// AddBoundary commits the current region: it appends a boundary entry
// carrying the staged register checkpoints, the staged output emits, and the
// next region's PC/SP. Store-free regions with no staged checkpoints and no
// emits may elide the entry (elided true), saving proxy-path traffic, unless
// force is set (halt markers are never elided). Returns ok=false on a full
// buffer.
//
// hadStores reports whether the region allocated any data entries.
func (f *FrontEnd) AddBoundary(region uint64, pcFunc, pcBlk, pcIdx int32, sp uint64, emits []uint64, hadStores, force, halt bool) (ok, elided bool) {
	if !hadStores && len(f.staged) == 0 && len(emits) == 0 && f.stagedSync.Op == 0 && !force && !f.NoElide {
		f.ElidedBds++
		return true, true
	}
	if f.Full() {
		f.Stalls++
		return false, false
	}
	e := Entry{
		Kind: KindBoundary, Region: region,
		PCFunc: pcFunc, PCBlk: pcBlk, PCIdx: pcIdx, SP: sp, Halt: halt,
		Sync: f.stagedSync,
	}
	f.stagedSync = SyncRec{}
	if len(emits) > 0 {
		if n := len(f.emitPool); n > 0 {
			e.Emits = append(f.emitPool[n-1][:0], emits...)
			f.emitPool = f.emitPool[:n-1]
		} else {
			e.Emits = append(e.Emits, emits...)
		}
	}
	if len(f.staged) > 0 {
		if n := len(f.ckptPool); n > 0 {
			e.Ckpts = append(f.ckptPool[n-1][:0], f.staged...)
			f.ckptPool = f.ckptPool[:n-1]
		} else {
			e.Ckpts = append(e.Ckpts, f.staged...)
		}
		f.staged = f.staged[:0]
	}
	f.push(e)
	f.Boundary++
	return true, false
}

// Recycle returns a consumed boundary entry's slice backings to the pool
// AddBoundary draws from. The caller must guarantee no live Entry copy still
// references them — the machine calls this only after phase 2 has folded the
// boundary into the recovery record and every buffer slot holding a copy has
// been cleared. The pools are bounded; excess backings fall to the GC.
func (f *FrontEnd) Recycle(ckpts []RegCkpt, emits []uint64) {
	if cap(ckpts) > 0 && len(f.ckptPool) < 64 {
		f.ckptPool = append(f.ckptPool, ckpts[:0])
	}
	if cap(emits) > 0 && len(f.emitPool) < 64 {
		f.emitPool = append(f.emitPool, emits[:0])
	}
}

// DiscardStaged drops staged checkpoints (power failure hits before the
// region commits — the staging storage is logically part of the uncommitted
// region). The staged values are non-volatile but recovery ignores them, so
// the machine clears them when rebuilding.
func (f *FrontEnd) DiscardStaged() {
	f.staged = f.staged[:0]
	f.stagedSync = SyncRec{}
}

// Peek returns the oldest buffered entry without removing it. The pointer is
// valid until the next mutation; callers must not retain it. Peeking an empty
// buffer panics — check Len first.
func (f *FrontEnd) Peek() *Entry { return &f.entries[f.head] }

// Pop removes and returns the oldest entry for transmission on the proxy
// path.
func (f *FrontEnd) Pop() (Entry, bool) {
	if f.head >= len(f.entries) {
		return Entry{}, false
	}
	e := f.entries[f.head]
	f.DropHead()
	return e, true
}

// DropHead removes the oldest entry after its contents have been copied out —
// the zero-copy counterpart of Pop (the machine's drain loop peeks the head,
// sends it straight into a path packet, then drops it). Dropping an empty
// buffer panics — check Len first.
func (f *FrontEnd) DropHead() {
	// drop Ckpts/Emits references; stale scalars in dead slots are never read
	f.entries[f.head].Ckpts, f.entries[f.head].Emits = nil, nil
	f.head++
	if f.head == len(f.entries) {
		f.entries = f.entries[:0]
		f.head = 0
	}
}

// Entries returns the buffered entries oldest-first (recovery reads them
// after a crash).
func (f *FrontEnd) Entries() []Entry { return f.entries[f.head:] }

// Staged returns the currently staged register checkpoints (inspection).
func (f *FrontEnd) Staged() []RegCkpt { return f.staged }
