package proxy

// Path models the dedicated, uncacheable proxy data path connecting one
// core's front-end proxy to its back-end buffer in the memory controller
// (paper §3.3). It is a fixed-latency, fixed-bandwidth FIFO pipe: one entry
// departs per `Interval` cycles and arrives `Latency` cycles later. Packets
// in flight are logically retained by the front-end for crash purposes
// (delivery is acknowledged), so the path itself holds no recoverable state.
//
// The memory controller's monitoring window (§5.3.2) lives here: a dirty
// writeback arriving at the controller registers its address and sequence;
// any entry for the same address arriving within the worst-case path latency
// whose store sequence is not newer has its redo valid-bit unset on arrival.
type Path struct {
	Latency  uint64 // cycles from departure to arrival
	Interval uint64 // cycles between departures (bandwidth)

	nextDepart uint64 // earliest cycle the next entry may depart

	// In-flight FIFO with a head index: departures append at the tail,
	// deliveries advance head (arrival times are monotonic, so the
	// deliverable packets are always a prefix). This keeps Deliver from
	// recopying every still-flying packet on each call — the machine
	// services the path once per instruction, so that copy was the single
	// hottest operation in the whole simulator.
	inflight []packet
	head     int
	outBuf   []Entry // reusable Deliver return backing

	// Monitoring window: address -> (expiry cycle, writeback seq).
	window map[uint64]windowEntry

	// Probe, when non-nil, observes every delivered entry with its true
	// wire-arrival cycle and the monitoring window's verdict (hit = the
	// window unset the redo valid-bit on this delivery). Observability only;
	// it must not mutate the entry. DrainAll does not probe: a crash harvest
	// is not an arrival.
	Probe func(e *Entry, arrives uint64, hit bool)

	// Stats.
	Sent       uint64
	Delivered  uint64
	WindowHits uint64
	WindowAdds uint64
}

type packet struct {
	e       Entry
	arrives uint64
}

type windowEntry struct {
	expiry uint64
	seq    uint64
}

// NewPath builds a proxy path with the given latency and per-entry interval.
func NewPath(latency, interval uint64) *Path {
	if interval == 0 {
		interval = 1
	}
	return &Path{Latency: latency, Interval: interval, window: map[uint64]windowEntry{}}
}

// Send departs an entry at the given cycle (or the earliest bandwidth slot
// after it) and returns the departure cycle actually used.
func (p *Path) Send(e Entry, now uint64) uint64 { return p.SendFrom(&e, now) }

// SendFrom is Send without the by-value argument copy: the entry is copied
// exactly once, straight into the in-flight packet (Entry is large, and the
// drain loop runs once per proxy entry the whole simulation moves).
func (p *Path) SendFrom(e *Entry, now uint64) uint64 {
	depart := now
	if p.nextDepart > depart {
		depart = p.nextDepart
	}
	p.nextDepart = depart + p.Interval
	if len(p.inflight) == cap(p.inflight) && p.head > 0 {
		n := copy(p.inflight, p.inflight[p.head:])
		for i := n; i < len(p.inflight); i++ {
			// Only the slice fields need clearing (reference retention);
			// stale scalars in dead slots are never read.
			p.inflight[i].e.Ckpts = nil
			p.inflight[i].e.Emits = nil
		}
		p.inflight = p.inflight[:n]
		p.head = 0
	}
	p.inflight = append(p.inflight, packet{e: *e, arrives: depart + p.Latency})
	p.Sent++
	return depart
}

// InFlight returns the number of entries on the wire.
func (p *Path) InFlight() int { return len(p.inflight) - p.head }

// HeadArrival returns the wire-arrival cycle of the oldest in-flight packet.
// ok is false when nothing is in flight. Deliver cannot pop anything before
// this cycle — the machine's service gate is built on it.
func (p *Path) HeadArrival() (uint64, bool) {
	if p.head >= len(p.inflight) {
		return 0, false
	}
	return p.inflight[p.head].arrives, true
}

// WindowLen returns the number of live monitoring-window entries (expired
// entries that have not been pruned yet count — pruning is opportunistic).
// Observability only; the occupancy histogram samples it at boundaries.
func (p *Path) WindowLen() int { return len(p.window) }

// Backlog reports the earliest cycle at which the path could accept a new
// entry — the machine uses it to model front-end drain pacing.
func (p *Path) Backlog() uint64 { return p.nextDepart }

// DeliverEach pops every entry that has arrived by `now`, applying the
// monitoring window to unset stale redo valid-bits, and hands each to fn by
// pointer into the packet storage — valid only for the duration of the call;
// fn must copy whatever outlives it. This is the zero-copy arrival path: the
// machine's service loop consumes entries straight out of the wire buffer.
func (p *Path) DeliverEach(now uint64, fn func(e *Entry, hit bool)) {
	for p.head < len(p.inflight) {
		pk := &p.inflight[p.head]
		if pk.arrives > now {
			break
		}
		e := &pk.e
		hit := false
		if e.Kind == KindData && len(p.window) > 0 {
			if w, ok := p.window[e.Addr]; ok && pk.arrives <= w.expiry && e.Seq <= w.seq {
				e.Valid = false
				p.WindowHits++
				hit = true
			}
		}
		if p.Probe != nil {
			p.Probe(e, pk.arrives, hit)
		}
		p.Delivered++
		fn(e, hit)
		e.Ckpts, e.Emits = nil, nil
		p.head++
	}
	if p.head == len(p.inflight) {
		p.inflight = p.inflight[:0]
		p.head = 0
	}
}

// Deliver pops every entry that has arrived by `now`, applying the
// monitoring window to unset stale redo valid-bits. The returned slice
// aliases a per-path scratch reused by the next Deliver call.
func (p *Path) Deliver(now uint64) []Entry {
	out := p.outBuf[:0]
	p.DeliverEach(now, func(e *Entry, hit bool) { out = append(out, *e) })
	p.outBuf = out
	return out
}

// NoteWriteback opens (or refreshes) the monitoring window for addr after a
// dirty writeback with sequence seq arrives at the controller at cycle now.
func (p *Path) NoteWriteback(addr uint64, seq uint64, now uint64) {
	w, ok := p.window[addr]
	if !ok || w.seq < seq || w.expiry < now+p.Latency {
		p.window[addr] = windowEntry{expiry: now + p.Latency, seq: seq}
		p.WindowAdds++
	}
	// Opportunistically prune expired windows to bound memory.
	if len(p.window) > 4096 {
		for a, we := range p.window {
			if we.expiry < now {
				delete(p.window, a)
			}
		}
	}
}

// DrainAll immediately delivers everything in flight (used at crash time:
// in-flight packets are logically part of the front-end's non-volatile
// contents, so recovery sees them in order).
func (p *Path) DrainAll() []Entry {
	out := make([]Entry, 0, p.InFlight())
	for i := p.head; i < len(p.inflight); i++ {
		out = append(out, p.inflight[i].e)
	}
	p.inflight = p.inflight[:0]
	p.head = 0
	return out
}
