package proxy

import (
	"testing"
)

func TestFrontEndAllocAndMerge(t *testing.T) {
	f := NewFrontEnd(8)
	if !f.AddStore(0x100, 0, 1, 1) {
		t.Fatal("alloc failed")
	}
	// Same address, same region: merged, redo/seq updated, undo kept.
	if !f.AddStore(0x100, 1, 2, 2) {
		t.Fatal("merge failed")
	}
	if f.Len() != 1 {
		t.Fatalf("len = %d, want 1 (merged)", f.Len())
	}
	e := f.Entries()[0]
	if e.Undo != 0 || e.Redo != 2 || e.Seq != 2 {
		t.Errorf("merged entry = %+v", e)
	}
	if f.Merges != 1 || f.Allocs != 1 {
		t.Errorf("merges=%d allocs=%d", f.Merges, f.Allocs)
	}
}

func TestFrontEndNoMergeAcrossRegions(t *testing.T) {
	f := NewFrontEnd(8)
	f.AddStore(0x100, 0, 1, 1)
	if ok, elided := f.AddBoundary(1, 0, 0, 0, 0, nil, true, false, false); !ok || elided {
		t.Fatal("boundary rejected or elided")
	}
	f.AddStore(0x100, 1, 2, 2)
	if f.Len() != 3 {
		t.Fatalf("len = %d, want 3 (no cross-region merge)", f.Len())
	}
}

func TestFrontEndFullStalls(t *testing.T) {
	f := NewFrontEnd(2)
	f.AddStore(0x100, 0, 1, 1)
	f.AddStore(0x140, 0, 1, 2)
	if f.AddStore(0x180, 0, 1, 3) {
		t.Error("allocation succeeded on a full buffer")
	}
	if f.Stalls != 1 {
		t.Errorf("stalls = %d", f.Stalls)
	}
	// Merging into an existing entry still works when full.
	if !f.AddStore(0x100, 9, 9, 4) {
		t.Error("merge rejected on full buffer")
	}
}

func TestBoundaryElision(t *testing.T) {
	f := NewFrontEnd(8)
	ok, elided := f.AddBoundary(1, 0, 0, 0, 0, nil, false, false, false)
	if !ok || !elided {
		t.Error("store-free, ckpt-free region boundary should be elided")
	}
	if f.ElidedBds != 1 || f.Len() != 0 {
		t.Errorf("elided=%d len=%d", f.ElidedBds, f.Len())
	}
	// With staged checkpoints, the boundary must be emitted.
	f.StageCkpt(3, 42)
	ok, elided = f.AddBoundary(2, 0, 0, 0, 0, nil, false, false, false)
	if !ok || elided {
		t.Error("boundary with staged ckpts must not be elided")
	}
	if f.Len() != 1 || len(f.Entries()[0].Ckpts) != 1 {
		t.Errorf("boundary entry = %+v", f.Entries())
	}
	// Forced boundaries (halt / thread start) are never elided.
	ok, elided = f.AddBoundary(3, 0, 0, 0, 0, nil, false, true, true)
	if !ok || elided {
		t.Error("forced boundary elided")
	}
	if !f.Entries()[1].Halt {
		t.Error("halt flag lost")
	}
}

func TestStagedCkptOverwrite(t *testing.T) {
	f := NewFrontEnd(8)
	f.StageCkpt(5, 1)
	f.StageCkpt(5, 2)
	f.StageCkpt(6, 3)
	if f.StagedLen() != 2 {
		t.Fatalf("staged = %d, want 2", f.StagedLen())
	}
	f.AddBoundary(1, 0, 0, 0, 0, nil, false, false, false)
	cks := f.Entries()[0].Ckpts
	if len(cks) != 2 || cks[0].Reg != 5 || cks[0].Val != 2 {
		t.Errorf("ckpts = %+v", cks)
	}
	if f.StagedLen() != 0 {
		t.Error("staging not cleared after boundary")
	}
}

func TestFrontEndFIFOPop(t *testing.T) {
	f := NewFrontEnd(8)
	f.AddStore(0x100, 0, 1, 1)
	f.AddStore(0x140, 0, 2, 2)
	e, ok := f.Pop()
	if !ok || e.Addr != 0x100 {
		t.Errorf("pop = %+v", e)
	}
	e, _ = f.Pop()
	if e.Addr != 0x140 {
		t.Errorf("pop2 = %+v", e)
	}
	if _, ok := f.Pop(); ok {
		t.Error("pop on empty succeeded")
	}
}

func TestBackEndRegionPop(t *testing.T) {
	b := NewBackEnd(16)
	b.Accept(Entry{Kind: KindData, Addr: 0x100, Redo: 1, Seq: 1, Valid: true})
	b.Accept(Entry{Kind: KindData, Addr: 0x140, Redo: 2, Seq: 2, Valid: true})
	if b.HasRegion() {
		t.Error("region complete without boundary")
	}
	b.Accept(Entry{Kind: KindBoundary, Region: 1})
	b.Accept(Entry{Kind: KindData, Addr: 0x180, Redo: 3, Seq: 3, Valid: true})
	if !b.HasRegion() {
		t.Fatal("region not detected")
	}
	r, ok := b.PopRegion()
	if !ok || len(r.Data) != 2 || r.Boundary.Region != 1 {
		t.Fatalf("region = %+v", r)
	}
	if b.Len() != 1 {
		t.Errorf("leftover entries = %d, want 1", b.Len())
	}
	if _, ok := b.PopRegion(); ok {
		t.Error("second region popped without boundary")
	}
}

func TestBackEndScanInvalidate(t *testing.T) {
	b := NewBackEnd(16)
	b.Accept(Entry{Kind: KindData, Addr: 0x100, Seq: 5, Valid: true})
	b.Accept(Entry{Kind: KindBoundary, Region: 1})
	b.Accept(Entry{Kind: KindData, Addr: 0x100, Seq: 9, Valid: true})

	// Writeback with seq 6: invalidates the region-1 entry (seq 5) but not
	// the newer one (seq 9) — the cross-core-safe refinement.
	n := b.ScanInvalidate(0x100, 6)
	if n != 1 {
		t.Fatalf("invalidated %d entries, want 1", n)
	}
	es := b.Entries()
	if es[0].Valid || !es[2].Valid {
		t.Errorf("valid bits wrong: %v %v", es[0].Valid, es[2].Valid)
	}
}

func TestBackEndOverflowDetected(t *testing.T) {
	b := NewBackEnd(2)
	b.Accept(Entry{Kind: KindData, Addr: 1, Valid: true})
	b.Accept(Entry{Kind: KindData, Addr: 2, Valid: true})
	if b.Accept(Entry{Kind: KindData, Addr: 3, Valid: true}) {
		t.Error("overflow accepted")
	}
	if b.Overflow != 1 {
		t.Errorf("overflow count = %d", b.Overflow)
	}
	// Boundary entries always fit.
	if !b.Accept(Entry{Kind: KindBoundary}) {
		t.Error("boundary rejected")
	}
}

func TestPathLatencyAndBandwidth(t *testing.T) {
	p := NewPath(40, 8)
	d0 := p.Send(Entry{Kind: KindData, Addr: 1, Valid: true}, 100)
	d1 := p.Send(Entry{Kind: KindData, Addr: 2, Valid: true}, 100)
	if d0 != 100 || d1 != 108 {
		t.Errorf("departures = %d,%d", d0, d1)
	}
	if got := p.Deliver(139); len(got) != 0 {
		t.Errorf("early delivery: %v", got)
	}
	if got := p.Deliver(140); len(got) != 1 || got[0].Addr != 1 {
		t.Errorf("delivery@140 = %v", got)
	}
	if got := p.Deliver(148); len(got) != 1 || got[0].Addr != 2 {
		t.Errorf("delivery@148 = %v", got)
	}
}

func TestPathMonitoringWindow(t *testing.T) {
	p := NewPath(40, 1)
	// Writeback for addr 0x100 seq 10 arrives at cycle 50: window open until 90.
	p.NoteWriteback(0x100, 10, 50)

	p.Send(Entry{Kind: KindData, Addr: 0x100, Seq: 5, Valid: true}, 20) // arrives 60
	p.Send(Entry{Kind: KindData, Addr: 0x100, Seq: 20, Valid: true}, 21)
	p.Send(Entry{Kind: KindData, Addr: 0x200, Seq: 5, Valid: true}, 22)

	got := p.Deliver(100)
	if len(got) != 3 {
		t.Fatalf("delivered %d", len(got))
	}
	if got[0].Valid {
		t.Error("stale entry within window kept valid")
	}
	if !got[1].Valid {
		t.Error("newer entry invalidated by window")
	}
	if !got[2].Valid {
		t.Error("unrelated address invalidated")
	}
	if p.WindowHits != 1 {
		t.Errorf("window hits = %d", p.WindowHits)
	}
}

func TestPathWindowExpiry(t *testing.T) {
	p := NewPath(10, 1)
	p.NoteWriteback(0x100, 10, 0) // window closes at 10
	p.Send(Entry{Kind: KindData, Addr: 0x100, Seq: 5, Valid: true}, 50)
	got := p.Deliver(100)
	if !got[0].Valid {
		t.Error("entry arriving after window expiry invalidated")
	}
}

// TestPathWindowBoundary pins the monitoring window's closed boundaries: an
// entry arriving at *exactly* the expiry cycle is still covered, and a store
// sequence *equal* to the writeback's is still stale — only strictly later
// arrivals or strictly newer stores escape. The online auditor mirrors these
// comparisons exactly (audit: window-missed/spurious-invalidation), so a
// drift here would show up as false violations.
func TestPathWindowBoundary(t *testing.T) {
	const latency = 10
	cases := []struct {
		name      string
		sendAt    uint64 // departure == sendAt (first send, no backlog); arrival = sendAt+latency
		seq       uint64
		wantValid bool
	}{
		// Window opened at cycle 0 with seq 10: covers arrivals <= 10.
		{"stale seq, arrival exactly at expiry", 0, 5, false},
		{"stale seq, arrival one past expiry", 1, 5, true},
		{"equal seq, arrival at expiry", 0, 10, false},
		{"newer seq, arrival at expiry", 0, 11, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPath(latency, 1)
			p.NoteWriteback(0x100, 10, 0) // expiry = 0 + latency
			p.Send(Entry{Kind: KindData, Addr: 0x100, Seq: tc.seq, Valid: true}, tc.sendAt)
			got := p.Deliver(tc.sendAt + latency)
			if len(got) != 1 {
				t.Fatalf("delivered %d entries", len(got))
			}
			if got[0].Valid != tc.wantValid {
				t.Errorf("Valid = %v, want %v", got[0].Valid, tc.wantValid)
			}
			if wantHits := uint64(0); !tc.wantValid {
				wantHits = 1
				if p.WindowHits != wantHits {
					t.Errorf("WindowHits = %d, want %d", p.WindowHits, wantHits)
				}
			} else if p.WindowHits != 0 {
				t.Errorf("WindowHits = %d, want 0", p.WindowHits)
			}
		})
	}
}

// TestPathWindowSurvivesDrainAll covers the crash-harvest interaction: a
// DrainAll neither applies the window (harvested entries keep their
// valid-bits — recovery judges them against NVM sequence numbers instead)
// nor closes it — entries sent on the reused path still arrive into the
// same open window. DrainAll must also not fire the observability probe: a
// crash harvest is not a wire arrival.
func TestPathWindowSurvivesDrainAll(t *testing.T) {
	const latency = 10
	p := NewPath(latency, 1)
	probes := 0
	p.Probe = func(*Entry, uint64, bool) { probes++ }

	p.NoteWriteback(0x100, 10, 5) // expiry = 15
	p.Send(Entry{Kind: KindData, Addr: 0x100, Seq: 5, Valid: true}, 0)
	harvested := p.DrainAll()
	if len(harvested) != 1 || !harvested[0].Valid {
		t.Fatalf("crash harvest = %+v, want 1 valid entry (window not applied)", harvested)
	}
	if probes != 0 {
		t.Errorf("DrainAll fired the probe %d times", probes)
	}
	if p.WindowLen() != 1 {
		t.Fatalf("window emptied by DrainAll (len=%d)", p.WindowLen())
	}

	// Reuse the drained path: departs at 3 (bandwidth slot 1 passed), arrives
	// 13 <= 15 — the surviving window must still invalidate it.
	p.Send(Entry{Kind: KindData, Addr: 0x100, Seq: 6, Valid: true}, 3)
	got := p.Deliver(20)
	if len(got) != 1 || got[0].Valid {
		t.Errorf("post-drain delivery = %+v, want 1 stale-invalidated entry", got)
	}
	if probes != 1 {
		t.Errorf("Deliver fired the probe %d times, want 1", probes)
	}
}

// TestPathWindowRefresh pins NoteWriteback's refresh rule (the auditor
// mirrors it): a later writeback re-arms the window whenever it extends the
// expiry — even with an *older* sequence, which then narrows seq coverage to
// stores at or below it.
func TestPathWindowRefresh(t *testing.T) {
	const latency = 10
	p := NewPath(latency, 1)
	p.NoteWriteback(0x100, 10, 0) // expiry 10, seq 10
	p.NoteWriteback(0x100, 3, 20) // refresh: expiry 30, seq 3
	if p.WindowAdds != 2 {
		t.Fatalf("WindowAdds = %d, want 2 (refresh counted)", p.WindowAdds)
	}
	p.Send(Entry{Kind: KindData, Addr: 0x100, Seq: 3, Valid: true}, 15) // arrives 25 <= 30
	p.Send(Entry{Kind: KindData, Addr: 0x100, Seq: 5, Valid: true}, 16) // arrives 26, seq 5 > 3
	got := p.Deliver(40)
	if len(got) != 2 {
		t.Fatalf("delivered %d entries", len(got))
	}
	if got[0].Valid {
		t.Error("seq<=window entry inside refreshed window kept valid")
	}
	if !got[1].Valid {
		t.Error("seq>window entry invalidated after older-seq refresh")
	}
}

func TestPathDrainAll(t *testing.T) {
	p := NewPath(40, 8)
	p.Send(Entry{Kind: KindData, Addr: 1}, 0)
	p.Send(Entry{Kind: KindBoundary, Region: 7}, 0)
	got := p.DrainAll()
	if len(got) != 2 || got[1].Region != 7 {
		t.Errorf("drain = %+v", got)
	}
	if p.InFlight() != 0 {
		t.Error("packets left after drain")
	}
}

func TestFrontEndMergeKeepsFirstSeq(t *testing.T) {
	f := NewFrontEnd(8)
	f.AddStore(0x100, 0, 1, 10)
	f.AddStore(0x100, 1, 2, 20) // merged
	e := f.Entries()[0]
	if e.FirstSeq != 10 || e.Seq != 20 {
		t.Errorf("merged entry FirstSeq=%d Seq=%d, want 10/20", e.FirstSeq, e.Seq)
	}
	if e.Undo != 0 {
		t.Errorf("merged undo = %d, want the oldest image 0", e.Undo)
	}
}

func TestBackEndMergeKeepsFirstSeq(t *testing.T) {
	b := NewBackEnd(8)
	b.Accept(Entry{Kind: KindData, Addr: 0x100, Undo: 0, Redo: 1, Seq: 10, FirstSeq: 10, Valid: true})
	b.Accept(Entry{Kind: KindData, Addr: 0x100, Undo: 1, Redo: 2, Seq: 20, FirstSeq: 20, Valid: true})
	es := b.Entries()
	if len(es) != 1 {
		t.Fatalf("entries = %d, want 1 (merged)", len(es))
	}
	if es[0].FirstSeq != 10 || es[0].Seq != 20 || es[0].Redo != 2 || es[0].Undo != 0 {
		t.Errorf("merged = %+v", es[0])
	}
	if b.Merges != 1 {
		t.Errorf("merges = %d", b.Merges)
	}
}

func TestBackEndMergeRevalidates(t *testing.T) {
	// A writeback invalidated the buffered entry; a newer store to the same
	// address within the region must re-validate it (the redo is new data).
	b := NewBackEnd(8)
	b.Accept(Entry{Kind: KindData, Addr: 0x100, Redo: 1, Seq: 10, FirstSeq: 10, Valid: true})
	b.ScanInvalidate(0x100, 15)
	if b.Entries()[0].Valid {
		t.Fatal("scan did not invalidate")
	}
	b.Accept(Entry{Kind: KindData, Addr: 0x100, Redo: 2, Seq: 20, FirstSeq: 20, Valid: true})
	if !b.Entries()[0].Valid {
		t.Error("merge did not re-validate the entry for the newer store")
	}
}

func TestNoMergeFlags(t *testing.T) {
	f := NewFrontEnd(8)
	f.NoMerge = true
	f.AddStore(0x100, 0, 1, 1)
	f.AddStore(0x100, 1, 2, 2)
	if f.Len() != 2 || f.Merges != 0 {
		t.Errorf("NoMerge front-end merged anyway: len=%d merges=%d", f.Len(), f.Merges)
	}

	b := NewBackEnd(8)
	b.NoMerge = true
	b.Accept(Entry{Kind: KindData, Addr: 0x100, Seq: 1, FirstSeq: 1, Valid: true})
	b.Accept(Entry{Kind: KindData, Addr: 0x100, Seq: 2, FirstSeq: 2, Valid: true})
	if b.Len() != 2 || b.Merges != 0 {
		t.Errorf("NoMerge back-end merged anyway: len=%d merges=%d", b.Len(), b.Merges)
	}
}

func TestNoElideFlag(t *testing.T) {
	f := NewFrontEnd(8)
	f.NoElide = true
	ok, elided := f.AddBoundary(1, 0, 0, 0, 0, nil, false, false, false)
	if !ok || elided {
		t.Error("NoElide still elided a store-free boundary")
	}
	if f.Len() != 1 {
		t.Errorf("len = %d", f.Len())
	}
}
