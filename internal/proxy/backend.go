package proxy

import "fmt"

// BackEnd is one core's back-end proxy buffer inside the integrated memory
// controller (paper §5.2.2). Its capacity equals the compiler's store
// threshold, guaranteeing a whole region always fits — the architectural half
// of the compiler/architecture interplay. It holds entries of one or more
// regions; it drains a region's redo data to NVM only after that region's
// boundary entry arrives, in region order, skipping entries whose redo
// valid-bit has been unset by a matching dirty cache writeback (§5.3).
type BackEnd struct {
	Capacity int
	// NoMerge disables same-region address merging (ablation).
	NoMerge bool
	entries []Entry // FIFO across regions; boundary entries delimit
	ndata   int     // data entries among entries (space accounting)
	scratch []Entry // reusable Data backing for PopRegion

	// Stats.
	Received       uint64
	Merges         uint64
	RedoWrites     uint64
	SkippedInvalid uint64
	Scans          uint64
	ScanHits       uint64
	Overflow       uint64 // accepts rejected for lack of space (must be 0)
}

// NewBackEnd returns a back-end buffer with the given entry capacity (==
// compiler threshold).
func NewBackEnd(capacity int) *BackEnd {
	if capacity <= 0 {
		panic(fmt.Sprintf("proxy: back-end capacity %d", capacity))
	}
	return &BackEnd{Capacity: capacity}
}

// SpaceFor reports whether a data entry can be accepted. Boundary entries are
// always accepted (they are the delimiter that lets the buffer drain; the
// capacity invariant of the compiler guarantees region data fits).
func (b *BackEnd) SpaceFor(e Entry) bool {
	if e.Kind == KindBoundary {
		return true
	}
	return b.ndata < b.Capacity
}

// Len returns the number of buffered entries (data + boundary).
func (b *BackEnd) Len() int { return len(b.entries) }

// Accept appends an entry arriving from the proxy path, merging data entries
// with a matching address within the open (not yet delimited) region — the
// same-region merge rule of §5.2.1 applied at the buffer that actually holds
// whole regions. A merge refreshes the redo value, sequence, and valid bit
// while keeping the oldest undo image. Returns false — and counts an
// overflow, which the machine treats as a fatal invariant violation — if a
// data entry does not fit.
func (b *BackEnd) Accept(e Entry) bool { return b.AcceptFrom(&e) }

// AcceptFrom is Accept without the by-value argument copy; the entry is
// copied exactly once, into the buffer (see Path.DeliverEach — the arrival
// loop hands out pointers into the wire buffer).
func (b *BackEnd) AcceptFrom(e *Entry) bool {
	if e.Kind == KindData && !b.NoMerge {
		for i := len(b.entries) - 1; i >= 0; i-- {
			x := &b.entries[i]
			if x.Kind == KindBoundary {
				break
			}
			if x.Addr == e.Addr {
				x.Redo = e.Redo
				if e.Seq > x.Seq {
					x.Seq = e.Seq
				}
				if e.FirstSeq < x.FirstSeq {
					x.FirstSeq = e.FirstSeq
				}
				x.Valid = e.Valid
				b.Received++
				b.Merges++
				return true
			}
		}
	}
	if !b.SpaceFor(*e) {
		b.Overflow++
		return false
	}
	b.Received++
	b.entries = append(b.entries, *e)
	if e.Kind == KindData {
		b.ndata++
	}
	return true
}

// ScanInvalidate implements the writeback scan of §5.3.2: unset the redo
// valid-bit of every buffered data entry matching addr whose merged store
// sequence is not newer than the writeback's. (The sequence comparison is the
// cross-core-safe refinement of the paper's unconditional unset; see
// DESIGN.md.)
func (b *BackEnd) ScanInvalidate(addr uint64, wbSeq uint64) int {
	b.Scans++
	n := 0
	for i := range b.entries {
		e := &b.entries[i]
		if e.Kind == KindData && e.Addr == addr && e.Valid && e.Seq <= wbSeq {
			e.Valid = false
			b.ScanHits++
			n++
		}
	}
	return n
}

// CommittedRegion describes one region ready for (or found during recovery
// in) phase-2 processing.
type CommittedRegion struct {
	Data     []Entry
	Boundary Entry
}

// PopRegion removes and returns the oldest complete region (data entries up
// to and including a boundary entry), if one is present. This is the unit of
// the second phase of the atomic store. The returned Data slice aliases a
// per-buffer scratch that is reused by the next PopRegion call — phase 2
// consumes it immediately, so no allocation is needed per region.
func (b *BackEnd) PopRegion() (CommittedRegion, bool) {
	for i := range b.entries {
		if b.entries[i].Kind == KindBoundary {
			b.scratch = append(b.scratch[:0], b.entries[:i]...)
			r := CommittedRegion{
				Data:     b.scratch,
				Boundary: b.entries[i],
			}
			n := copy(b.entries, b.entries[i+1:])
			dead := b.entries[n:]
			for j := range dead {
				// drop Ckpts/Emits references; stale scalars are never read
				dead[j].Ckpts, dead[j].Emits = nil, nil
			}
			b.entries = b.entries[:n]
			b.ndata -= i
			return r, true
		}
	}
	return CommittedRegion{}, false
}

// OldestRegion returns (without removing) the oldest complete region's data
// entries and boundary. The data slice aliases the buffer — read-only use
// only. It is how the fault model identifies the drain in flight: the
// region a booked-but-incomplete phase-2 drain is writing.
func (b *BackEnd) OldestRegion() (data []Entry, boundary *Entry, ok bool) {
	for i := range b.entries {
		if b.entries[i].Kind == KindBoundary {
			return b.entries[:i], &b.entries[i], true
		}
	}
	return nil, nil, false
}

// HasRegion reports whether a complete region is buffered.
func (b *BackEnd) HasRegion() bool {
	for i := range b.entries {
		if b.entries[i].Kind == KindBoundary {
			return true
		}
	}
	return false
}

// Entries returns the buffered entries oldest-first (recovery reads them
// after a crash).
func (b *BackEnd) Entries() []Entry { return b.entries }
