package proxy

import "testing"

// BenchmarkProxyDrain drives the full two-phase pipeline at steady state —
// front-end allocation, path transmission, back-end acceptance, and phase-2
// region pops — the way the machine's per-instruction service loop does. The
// steady state must be allocation-free: front-end and path recycle their
// rings, and PopRegion reuses its scratch.
func BenchmarkProxyDrain(b *testing.B) {
	f := NewFrontEnd(32)
	p := NewPath(40, 8)
	be := NewBackEnd(256)
	b.ReportAllocs()
	b.ResetTimer()
	now := uint64(0)
	seq := uint64(0)
	for i := 0; i < b.N; i++ {
		// One small region: four stores (two merging) and a boundary.
		for s := 0; s < 4; s++ {
			seq++
			f.AddStore(uint64(0x1000+(s&1)*8), 0, seq, seq)
		}
		f.AddBoundary(uint64(i), 0, 0, 0, 0x8000, nil, true, false, false)
		// Drain front -> path -> back at the path's bandwidth.
		for f.Len() > 0 {
			e, _ := f.Pop()
			now = p.Send(e, now) + 1
		}
		for _, e := range p.Deliver(now + p.Latency) {
			if !be.Accept(e) {
				b.Fatal("back-end overflow")
			}
		}
		for be.HasRegion() {
			if _, ok := be.PopRegion(); !ok {
				break
			}
		}
	}
}

// BenchmarkPathServiceIdle measures the per-instruction cost of servicing an
// empty path — the common case between stores, which the machine pays on
// every executed instruction.
func BenchmarkPathServiceIdle(b *testing.B) {
	p := NewPath(40, 8)
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n += len(p.Deliver(uint64(i)))
	}
	if n != 0 {
		b.Fatal("idle path delivered entries")
	}
}
