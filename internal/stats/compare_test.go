package stats

import (
	"math"
	"testing"
)

func TestMedianAndMAD(t *testing.T) {
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v, want 0", got)
	}
	if got := Median([]float64{3}); got != 3 {
		t.Errorf("Median([3]) = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd median = %v, want 3", got)
	}
	// Median must not reorder the caller's slice.
	xs := []float64{9, 1, 5}
	Median(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Errorf("Median mutated its input: %v", xs)
	}
	if got := MAD([]float64{7}); got != 0 {
		t.Errorf("MAD of single sample = %v, want 0", got)
	}
	// Median 5, deviations {4,1,0,1,4} → MAD 1.
	if got := MAD([]float64{1, 4, 5, 6, 9}); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
}

func TestMannWhitneyExactSmall(t *testing.T) {
	// n=m=3, complete separation: U=0, exact two-sided p = 2/C(6,3) = 0.1.
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	p := MannWhitneyUP(x, y)
	if math.Abs(p-0.1) > 1e-12 {
		t.Errorf("exact p = %v, want 0.1", p)
	}
	// Symmetric in argument order.
	if q := MannWhitneyUP(y, x); math.Abs(q-p) > 1e-12 {
		t.Errorf("p not symmetric: %v vs %v", p, q)
	}
}

func TestMannWhitneySeparationSignificant(t *testing.T) {
	// n=m=5 with complete separation: exact p = 2/C(10,5) ≈ 0.0079 < 0.05.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 11, 12, 13, 14}
	p := MannWhitneyUP(x, y)
	want := 2.0 / 252.0
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("exact p = %v, want %v", p, want)
	}
}

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	// All values tied → normal path with zero variance → p = 1.
	x := []float64{5, 5, 5, 5}
	y := []float64{5, 5, 5, 5}
	if p := MannWhitneyUP(x, y); p != 1 {
		t.Errorf("identical samples: p = %v, want 1", p)
	}
	if p := MannWhitneyUP(nil, y); p != 1 {
		t.Errorf("empty side: p = %v, want 1", p)
	}
}

func TestMannWhitneyInterleavedNotSignificant(t *testing.T) {
	// Perfectly interleaved samples should be far from significant.
	x := []float64{1, 3, 5, 7, 9}
	y := []float64{2, 4, 6, 8, 10}
	if p := MannWhitneyUP(x, y); p < 0.5 {
		t.Errorf("interleaved samples: p = %v, want >= 0.5", p)
	}
}

func TestMannWhitneyNormalApproxWithTies(t *testing.T) {
	// Ties force the normal path; separation should still be highly
	// significant.
	x := []float64{1, 1, 2, 2, 3, 3, 4, 4, 5, 5}
	y := []float64{10, 10, 11, 11, 12, 12, 13, 13, 14, 14}
	p := MannWhitneyUP(x, y)
	if p >= 0.01 {
		t.Errorf("tied separated samples: p = %v, want < 0.01", p)
	}
	if p <= 0 {
		t.Errorf("p must be positive, got %v", p)
	}
}

func TestCompareRates(t *testing.T) {
	old := []float64{100, 101, 99, 100, 102}
	slow := []float64{80, 81, 79, 80, 82}
	c := CompareRates(old, slow)
	if !c.Significant {
		t.Errorf("20%% slowdown across 5 clean samples should be significant: %+v", c)
	}
	if c.Delta >= 0 {
		t.Errorf("slowdown must have negative delta: %v", c.Delta)
	}
	if c.Fallback {
		t.Errorf("5 samples per side must not fall back")
	}

	same := CompareRates(old, []float64{101, 100, 99, 102, 100})
	if same.Significant {
		t.Errorf("same-distribution samples flagged significant: %+v", same)
	}

	fb := CompareRates([]float64{100}, slow)
	if !fb.Fallback || fb.Significant {
		t.Errorf("single old sample must fall back: %+v", fb)
	}
	if fb.OldMedian != 100 || fb.Delta >= 0 {
		t.Errorf("fallback still reports medians/delta: %+v", fb)
	}
}
