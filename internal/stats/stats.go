// Package stats provides the small numeric and formatting helpers the
// benchmark harness uses to render the paper's tables and figures (geometric
// means and fixed-width row/column tables), plus Hist, the zero-allocation
// power-of-two-bucket histogram behind the simulator's occupancy and latency
// metrics (DESIGN.md §4c).
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of xs (0 for empty input). Non-positive
// entries are skipped — they indicate a failed run and should not poison the
// aggregate.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Table is a simple column-aligned table with a leading row-label column.
type Table struct {
	Title    string
	ColNames []string
	rows     []row
}

type row struct {
	label string
	vals  []float64
	rule  bool // draw a separator before this row
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, ColNames: cols}
}

// AddRow appends a data row.
func (t *Table) AddRow(label string, vals ...float64) {
	t.rows = append(t.rows, row{label: label, vals: vals})
}

// AddRule appends a horizontal separator before the next row.
func (t *Table) AddRule() {
	t.rows = append(t.rows, row{rule: true})
}

// Rows returns the number of data rows.
func (t *Table) Rows() int {
	n := 0
	for _, r := range t.rows {
		if !r.rule {
			n++
		}
	}
	return n
}

// Value returns the cell at (label, col name), and whether it exists.
func (t *Table) Value(label, col string) (float64, bool) {
	ci := -1
	for i, c := range t.ColNames {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, r := range t.rows {
		if !r.rule && r.label == label && ci < len(r.vals) {
			return r.vals[ci], true
		}
	}
	return 0, false
}

// Column collects one named column's values over all data rows whose label
// passes keep (nil keeps everything).
func (t *Table) Column(col string, keep func(label string) bool) []float64 {
	ci := -1
	for i, c := range t.ColNames {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		return nil
	}
	var out []float64
	for _, r := range t.rows {
		if r.rule || ci >= len(r.vals) {
			continue
		}
		if keep == nil || keep(r.label) {
			out = append(out, r.vals[ci])
		}
	}
	return out
}

// String renders the table.
func (t *Table) String() string {
	label := 18
	for _, r := range t.rows {
		if len(r.label) > label {
			label = len(r.label)
		}
	}
	colW := 9
	for _, c := range t.ColNames {
		if len(c)+2 > colW {
			colW = len(c) + 2
		}
	}

	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	fmt.Fprintf(&sb, "%-*s", label, "")
	for _, c := range t.ColNames {
		fmt.Fprintf(&sb, "%*s", colW, c)
	}
	sb.WriteByte('\n')
	width := label + colW*len(t.ColNames)
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		if r.rule {
			sb.WriteString(strings.Repeat("-", width))
			sb.WriteByte('\n')
			continue
		}
		fmt.Fprintf(&sb, "%-*s", label, r.label)
		for _, v := range r.vals {
			fmt.Fprintf(&sb, "%*.3f", colW, v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
