package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistBasics(t *testing.T) {
	var h Hist
	if got := h.String(); got != "n=0" {
		t.Fatalf("empty String() = %q", got)
	}
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatalf("empty hist percentile/mean not zero")
	}
	for _, v := range []uint64{0, 1, 2, 3, 4, 100} {
		h.Record(v)
	}
	if h.Count != 6 || h.Sum != 110 || h.Min != 0 || h.Max != 100 {
		t.Fatalf("count/sum/min/max = %d/%d/%d/%d", h.Count, h.Sum, h.Min, h.Max)
	}
	if h.Buckets[0] != 1 { // the zero
		t.Fatalf("bucket 0 = %d, want 1", h.Buckets[0])
	}
	if h.Buckets[1] != 1 || h.Buckets[2] != 2 || h.Buckets[3] != 1 || h.Buckets[7] != 1 {
		t.Fatalf("buckets = %v", h.Buckets[:8])
	}
}

func TestHistPercentileBounds(t *testing.T) {
	// The percentile is an upper bound: for every p, the true p-th rank value
	// must be <= Percentile(p), and the result stays within [Min, Max].
	rng := rand.New(rand.NewSource(7))
	var h Hist
	vals := make([]uint64, 0, 500)
	for i := 0; i < 500; i++ {
		v := uint64(rng.Intn(1 << uint(rng.Intn(16))))
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{0, 10, 50, 90, 99, 100} {
		got := h.Percentile(p)
		exact := vals[int(p/100*float64(len(vals)-1))]
		if got < exact {
			t.Errorf("Percentile(%v) = %d < exact rank value %d", p, got, exact)
		}
		if got < h.Min || got > h.Max {
			t.Errorf("Percentile(%v) = %d outside [%d,%d]", p, got, h.Min, h.Max)
		}
	}
	if h.Percentile(100) != h.Max {
		t.Errorf("Percentile(100) = %d, want Max %d", h.Percentile(100), h.Max)
	}
}

func TestHistPercentileEmpty(t *testing.T) {
	// Every quantile of an empty histogram is 0, including the q=0/q=1
	// boundaries and out-of-range inputs.
	var h Hist
	for _, p := range []float64{-5, 0, 50, 99.9, 100, 250} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("empty Percentile(%v) = %d, want 0", p, got)
		}
	}
}

func TestHistPercentileSingleSample(t *testing.T) {
	// With one sample, every quantile is that sample — the clamp to
	// [Min, Max] must collapse the bucket bound to the exact value.
	for _, v := range []uint64{0, 1, 7, 1 << 40} {
		var h Hist
		h.Record(v)
		for _, p := range []float64{0, 25, 50, 99, 99.9, 100} {
			if got := h.Percentile(p); got != v {
				t.Errorf("single-sample(%d) Percentile(%v) = %d, want %d", v, p, got, v)
			}
		}
	}
}

func TestHistPercentileBoundaries(t *testing.T) {
	// q=0 must land in the lowest occupied bucket (clamped up to Min) and
	// q=100 must return exactly Max; out-of-range p clamps to [0, 100].
	var h Hist
	for _, v := range []uint64{5, 6, 7, 900, 1000} {
		h.Record(v)
	}
	if got := h.Percentile(0); got != 7 {
		// rank 0 falls in bucket 3 ([4,7]), whose top is below Max and
		// above Min, so the documented upper bound is 7.
		t.Errorf("Percentile(0) = %d, want bucket top 7", got)
	}
	if got := h.Percentile(100); got != 1000 {
		t.Errorf("Percentile(100) = %d, want Max 1000", got)
	}
	if h.Percentile(-3) != h.Percentile(0) {
		t.Errorf("negative p must clamp to 0")
	}
	if h.Percentile(1000) != h.Percentile(100) {
		t.Errorf("p>100 must clamp to 100")
	}
}

func TestHistPercentileAfterMerge(t *testing.T) {
	// Quantiles of a merged histogram must equal quantiles of a histogram
	// that recorded the union directly — Merge preserves the quantile
	// contract, not just the counts.
	var lo, hi, all Hist
	for v := uint64(1); v <= 100; v++ {
		all.Record(v)
		if v <= 50 {
			lo.Record(v)
		} else {
			hi.Record(v)
		}
	}
	merged := lo
	merged.Merge(&hi)
	for _, p := range []float64{0, 50, 90, 99, 99.9, 100} {
		if got, want := merged.Percentile(p), all.Percentile(p); got != want {
			t.Errorf("merged Percentile(%v) = %d, want %d", p, got, want)
		}
	}
	// Merge must also preserve the exact Min/Max clamp inputs.
	if merged.Min != 1 || merged.Max != 100 {
		t.Errorf("merged Min/Max = %d/%d, want 1/100", merged.Min, merged.Max)
	}
}

func TestHistMerge(t *testing.T) {
	// Merging two histograms must equal recording the union of samples.
	rng := rand.New(rand.NewSource(11))
	var a, b, all Hist
	for i := 0; i < 300; i++ {
		v := uint64(rng.Intn(1 << 20))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	merged := a // Hist is a value type: plain copy
	merged.Merge(&b)
	if merged != all {
		t.Fatalf("merge mismatch:\n merged=%+v\n want  =%+v", merged, all)
	}
	// Merging an empty histogram is a no-op, in both directions.
	var empty Hist
	merged.Merge(&empty)
	if merged != all {
		t.Fatalf("merging empty changed the histogram")
	}
	empty.Merge(&all)
	if empty != all {
		t.Fatalf("merge into empty = %+v, want %+v", empty, all)
	}
}

func TestHistBars(t *testing.T) {
	var h Hist
	if got := h.Bars(10); got != "  (no samples)\n" {
		t.Fatalf("empty Bars = %q", got)
	}
	for i := 0; i < 100; i++ {
		h.Record(4)
	}
	h.Record(1000)
	out := h.Bars(20)
	if out == "" {
		t.Fatal("Bars produced no output")
	}
	// Two occupied buckets -> two lines.
	lines := 0
	for _, ch := range out {
		if ch == '\n' {
			lines++
		}
	}
	if lines != 2 {
		t.Fatalf("Bars rendered %d lines, want 2:\n%s", lines, out)
	}
}
