package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistBasics(t *testing.T) {
	var h Hist
	if got := h.String(); got != "n=0" {
		t.Fatalf("empty String() = %q", got)
	}
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatalf("empty hist percentile/mean not zero")
	}
	for _, v := range []uint64{0, 1, 2, 3, 4, 100} {
		h.Record(v)
	}
	if h.Count != 6 || h.Sum != 110 || h.Min != 0 || h.Max != 100 {
		t.Fatalf("count/sum/min/max = %d/%d/%d/%d", h.Count, h.Sum, h.Min, h.Max)
	}
	if h.Buckets[0] != 1 { // the zero
		t.Fatalf("bucket 0 = %d, want 1", h.Buckets[0])
	}
	if h.Buckets[1] != 1 || h.Buckets[2] != 2 || h.Buckets[3] != 1 || h.Buckets[7] != 1 {
		t.Fatalf("buckets = %v", h.Buckets[:8])
	}
}

func TestHistPercentileBounds(t *testing.T) {
	// The percentile is an upper bound: for every p, the true p-th rank value
	// must be <= Percentile(p), and the result stays within [Min, Max].
	rng := rand.New(rand.NewSource(7))
	var h Hist
	vals := make([]uint64, 0, 500)
	for i := 0; i < 500; i++ {
		v := uint64(rng.Intn(1 << uint(rng.Intn(16))))
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{0, 10, 50, 90, 99, 100} {
		got := h.Percentile(p)
		exact := vals[int(p/100*float64(len(vals)-1))]
		if got < exact {
			t.Errorf("Percentile(%v) = %d < exact rank value %d", p, got, exact)
		}
		if got < h.Min || got > h.Max {
			t.Errorf("Percentile(%v) = %d outside [%d,%d]", p, got, h.Min, h.Max)
		}
	}
	if h.Percentile(100) != h.Max {
		t.Errorf("Percentile(100) = %d, want Max %d", h.Percentile(100), h.Max)
	}
}

func TestHistMerge(t *testing.T) {
	// Merging two histograms must equal recording the union of samples.
	rng := rand.New(rand.NewSource(11))
	var a, b, all Hist
	for i := 0; i < 300; i++ {
		v := uint64(rng.Intn(1 << 20))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	merged := a // Hist is a value type: plain copy
	merged.Merge(&b)
	if merged != all {
		t.Fatalf("merge mismatch:\n merged=%+v\n want  =%+v", merged, all)
	}
	// Merging an empty histogram is a no-op, in both directions.
	var empty Hist
	merged.Merge(&empty)
	if merged != all {
		t.Fatalf("merging empty changed the histogram")
	}
	empty.Merge(&all)
	if empty != all {
		t.Fatalf("merge into empty = %+v, want %+v", empty, all)
	}
}

func TestHistBars(t *testing.T) {
	var h Hist
	if got := h.Bars(10); got != "  (no samples)\n" {
		t.Fatalf("empty Bars = %q", got)
	}
	for i := 0; i < 100; i++ {
		h.Record(4)
	}
	h.Record(1000)
	out := h.Bars(20)
	if out == "" {
		t.Fatal("Bars produced no output")
	}
	// Two occupied buckets -> two lines.
	lines := 0
	for _, ch := range out {
		if ch == '\n' {
			lines++
		}
	}
	if lines != 2 {
		t.Fatalf("Bars rendered %d lines, want 2:\n%s", lines, out)
	}
}
