package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{4}, 4},
		{[]float64{2, 8}, 4},
		{[]float64{1, 1, 1}, 1},
		{nil, 0},
		{[]float64{0, -3}, 0},
		{[]float64{0, 9}, 9}, // non-positive skipped
	}
	for _, tc := range cases {
		if got := Geomean(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Geomean(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestGeomeanProperties(t *testing.T) {
	// Geomean of positive values lies between min and max, and is
	// scale-equivariant: Geomean(k*x) = k*Geomean(x).
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a%999) + 1, float64(b%999) + 1, float64(c%999) + 1}
		g := Geomean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if g < lo-1e-9 || g > hi+1e-9 {
			return false
		}
		scaled := Geomean([]float64{3 * xs[0], 3 * xs[1], 3 * xs[2]})
		return math.Abs(scaled-3*g) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func buildTable() *Table {
	t := NewTable("demo", "a", "b")
	t.AddRow("x", 1.5, 0.5)
	t.AddRow("y", 3.0, 2.0)
	t.AddRule()
	t.AddRow("gmean", 2.12, 1.0)
	return t
}

func TestTableAccessors(t *testing.T) {
	tbl := buildTable()
	if tbl.Rows() != 3 {
		t.Errorf("rows = %d", tbl.Rows())
	}
	if v, ok := tbl.Value("y", "b"); !ok || v != 2.0 {
		t.Errorf("Value(y,b) = %v,%v", v, ok)
	}
	if _, ok := tbl.Value("zzz", "a"); ok {
		t.Error("missing row found")
	}
	col := tbl.Column("a", nil)
	if len(col) != 3 || col[0] != 1.5 || col[2] != 2.12 {
		t.Errorf("Column(a) = %v", col)
	}
	filtered := tbl.Column("a", func(l string) bool { return l != "gmean" })
	if len(filtered) != 2 {
		t.Errorf("filtered column = %v", filtered)
	}
}

func TestTableString(t *testing.T) {
	s := buildTable().String()
	for _, want := range []string{"demo", "x", "y", "gmean", "3.000", "-----"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func TestChartRendering(t *testing.T) {
	tbl := buildTable()
	c := tbl.Chart("a", 1.0, 40)
	lines := strings.Split(strings.TrimSpace(c), "\n")
	// Header + 2 rows + rule + gmean.
	if len(lines) != 5 {
		t.Fatalf("chart lines = %d:\n%s", len(lines), c)
	}
	// The y row (3.0 = max) must have more # than the x row (1.5).
	xHashes := strings.Count(lines[1], "#")
	yHashes := strings.Count(lines[2], "#")
	if yHashes <= xHashes {
		t.Errorf("bar lengths not ordered: x=%d y=%d\n%s", xHashes, yHashes, c)
	}
	// Baseline tick appears (as + inside bars crossing it).
	if !strings.Contains(c, "+") {
		t.Errorf("baseline tick missing:\n%s", c)
	}
	// Values printed at line ends.
	if !strings.Contains(lines[2], "3.000") {
		t.Errorf("value missing:\n%s", c)
	}
}

func TestChartWithoutBaseline(t *testing.T) {
	tbl := NewTable("t", "v")
	tbl.AddRow("only", 5)
	c := tbl.Chart("v", 0, 20)
	if strings.Contains(c, "+") || strings.Contains(c, "|") {
		t.Errorf("unexpected baseline marks:\n%s", c)
	}
	if !strings.Contains(c, "#") {
		t.Errorf("no bar drawn:\n%s", c)
	}
}

func TestChartUnknownColumn(t *testing.T) {
	tbl := buildTable()
	c := tbl.Chart("nope", 1, 20)
	if strings.Contains(c, "#") {
		t.Errorf("bars for unknown column:\n%s", c)
	}
}

func TestChartClampsTinyWidth(t *testing.T) {
	tbl := buildTable()
	c := tbl.Chart("a", 1.0, 1) // clamped to 10
	if !strings.Contains(c, "#") {
		t.Errorf("no bars at clamped width:\n%s", c)
	}
}
