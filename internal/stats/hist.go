package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Hist is a zero-allocation histogram over uint64 samples with power-of-two
// buckets: bucket i counts values whose bit length is i, i.e. bucket 0 holds
// zeros and bucket i (i>0) holds [2^(i-1), 2^i). Recording is two adds and
// two indexed stores, so the simulator can sample occupancies and latencies
// on live paths without heap traffic. The value type embeds its whole state;
// aggregating across cores or runs is Merge.
type Hist struct {
	Count   uint64
	Sum     uint64
	Min     uint64 // meaningful when Count > 0
	Max     uint64
	Buckets [65]uint64
}

// Record adds one sample.
func (h *Hist) Record(v uint64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(v)]++
}

// Merge folds another histogram into h.
func (h *Hist) Merge(o *Hist) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Percentile returns an upper bound for the p-th percentile (p in [0,100]):
// the top of the power-of-two bucket containing that rank, clamped to the
// exact observed Min/Max. Resolution is the bucket width (a factor of two),
// which is what occupancy/latency distributions need — orders of magnitude,
// not exact ranks.
func (h *Hist) Percentile(p float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(p / 100 * float64(h.Count-1))
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if seen > rank {
			var hi uint64
			if i == 0 {
				hi = 0
			} else {
				hi = 1<<uint(i) - 1
			}
			if hi > h.Max {
				hi = h.Max
			}
			if hi < h.Min {
				hi = h.Min
			}
			return hi
		}
	}
	return h.Max
}

// String renders a one-line summary: count, mean, p50/p90/p99 and max.
func (h *Hist) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p90=%d p99=%d max=%d",
		h.Count, h.Mean(), h.Percentile(50), h.Percentile(90), h.Percentile(99), h.Max)
}

// Bars renders the occupied buckets as a small ASCII bar chart (one line per
// non-empty bucket, width-scaled to the fullest bucket), for `caprisim
// -metrics` output.
func (h *Hist) Bars(width int) string {
	if h.Count == 0 {
		return "  (no samples)\n"
	}
	if width <= 0 {
		width = 40
	}
	var peak uint64
	for _, n := range h.Buckets {
		if n > peak {
			peak = n
		}
	}
	var sb strings.Builder
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		var lo, hi uint64
		if i > 0 {
			lo = 1 << uint(i-1)
			hi = 1<<uint(i) - 1
		}
		bar := int(n * uint64(width) / peak)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&sb, "  [%12d-%12d] %-*s %d\n", lo, hi, width, strings.Repeat("#", bar), n)
	}
	return sb.String()
}
