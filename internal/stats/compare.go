package stats

import (
	"math"
	"sort"
)

// Variance-aware sample comparison for the multi-sample perf methodology
// (DESIGN.md §4j): `capribench -perf -samples N` records every sample, and
// `capristat` judges old-vs-new with the Mann-Whitney U test — the same
// rank test benchstat uses — instead of a point comparison of two single
// runs. Everything here is pure stdlib math.

// Median returns the sample median (0 for an empty slice). The input is
// not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation from the median — the robust
// spread estimate reported next to each figure's median rate. 0 for
// fewer than two samples.
func MAD(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return Median(dev)
}

// MannWhitneyUP returns the two-sided p-value of the Mann-Whitney U test
// for samples x and y: the probability, under the null hypothesis that
// both come from the same distribution, of a rank split at least as
// extreme as observed. Small sample counts without ties use the exact
// distribution (dynamic programming over f(n,m,u) = f(n-1,m,u-m) +
// f(n,m-1,u)); larger counts or tied values fall back to the normal
// approximation with tie correction and continuity correction. Returns 1
// when either sample is empty (no evidence of anything).
func MannWhitneyUP(x, y []float64) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return 1
	}
	// Rank the pooled samples, averaging ranks across ties.
	pool := make([]float64, 0, n+m)
	pool = append(pool, x...)
	pool = append(pool, y...)
	idx := make([]int, n+m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pool[idx[a]] < pool[idx[b]] })
	ranks := make([]float64, n+m)
	ties := false
	var tieTerm float64 // Σ (t³ − t) over tie groups, for the variance correction
	for i := 0; i < n+m; {
		j := i
		for j+1 < n+m && pool[idx[j+1]] == pool[idx[i]] {
			j++
		}
		r := float64(i+j)/2 + 1 // average rank of the tie group (1-based)
		for k := i; k <= j; k++ {
			ranks[idx[k]] = r
		}
		if j > i {
			ties = true
			t := float64(j - i + 1)
			tieTerm += t*t*t - t
		}
		i = j + 1
	}
	var rx float64
	for i := 0; i < n; i++ {
		rx += ranks[i]
	}
	u1 := rx - float64(n*(n+1))/2
	u2 := float64(n*m) - u1
	u := math.Min(u1, u2)
	if !ties && n <= exactLimit && m <= exactLimit {
		return exactMannWhitneyP(n, m, u)
	}
	// Normal approximation with tie-corrected variance and continuity
	// correction.
	N := float64(n + m)
	mu := float64(n*m) / 2
	sigma2 := float64(n*m) / 12 * (N + 1 - tieTerm/(N*(N-1)))
	if sigma2 <= 0 {
		return 1 // all values identical
	}
	z := (math.Abs(u-mu) - 0.5) / math.Sqrt(sigma2)
	if z < 0 {
		z = 0
	}
	return math.Erfc(z / math.Sqrt2)
}

// exactLimit bounds the per-side sample count for the exact U
// distribution; beyond it the normal approximation is already excellent
// and the DP table cost grows as n·m·(n·m).
const exactLimit = 25

// exactMannWhitneyP returns the exact two-sided p-value
// P(U ≤ u) + P(U ≥ nm−u) under the null, via the standard recurrence on
// the number of rank arrangements with statistic u.
func exactMannWhitneyP(n, m int, u float64) float64 {
	uMax := n * m
	uInt := int(u) // u is integral when there are no ties
	// f[i][j] over u: count of arrangements of i x's and j y's with
	// U statistic exactly u. Rolling over i to bound memory.
	prev := make([][]float64, m+1)
	cur := make([][]float64, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = make([]float64, uMax+1)
		cur[j] = make([]float64, uMax+1)
		prev[j][0] = 1 // zero x's: only U=0
	}
	for i := 1; i <= n; i++ {
		for j := 0; j <= m; j++ {
			row := cur[j]
			for k := range row {
				row[k] = 0
			}
			for k := 0; k <= i*j && k <= uMax; k++ {
				// last element is an x (U unchanged from f(i-1, j, k-j))
				if k >= j {
					row[k] += prev[j][k-j]
				}
				// last element is a y
				if j > 0 {
					row[k] += cur[j-1][k]
				}
			}
		}
		prev, cur = cur, prev
	}
	dist := prev[m]
	var total, tail float64
	for k := 0; k <= n*m; k++ {
		total += dist[k]
		if k <= uInt || k >= uMax-uInt {
			tail += dist[k]
		}
	}
	if total == 0 {
		return 1
	}
	p := tail / total
	if p > 1 {
		p = 1
	}
	return p
}

// Comparison is the verdict of CompareRates for one figure: the summary
// statistics of both sample sets and the significance decision.
type Comparison struct {
	// OldMedian and NewMedian are the sample medians; OldMAD and NewMAD
	// their median absolute deviations.
	OldMedian, NewMedian float64
	OldMAD, NewMAD       float64
	// Delta is the relative change of the new median vs the old
	// ((new−old)/old), negative for a slowdown.
	Delta float64
	// P is the Mann-Whitney two-sided p-value, or 1 when either side
	// has too few samples for the test (see Fallback).
	P float64
	// Significant reports P < alpha with at least minSamples per side.
	Significant bool
	// Fallback reports that one side had fewer than minSamples samples,
	// so the caller should fall back to a point comparison.
	Fallback bool
}

// CompareAlpha is the significance level capristat gates at.
const CompareAlpha = 0.05

// compareMinSamples is the fewest per-side samples the rank test is
// asked to judge; below it even a perfect rank split cannot reach
// CompareAlpha, so CompareRates reports Fallback instead.
const compareMinSamples = 4

// CompareRates compares two sets of rate samples (higher is better) and
// returns the variance-aware verdict: medians, MADs, relative delta, and
// whether the difference is statistically significant at CompareAlpha.
func CompareRates(old, new []float64) Comparison {
	c := Comparison{
		OldMedian: Median(old), NewMedian: Median(new),
		OldMAD: MAD(old), NewMAD: MAD(new),
		P: 1,
	}
	if c.OldMedian != 0 {
		c.Delta = (c.NewMedian - c.OldMedian) / c.OldMedian
	}
	if len(old) < compareMinSamples || len(new) < compareMinSamples {
		c.Fallback = true
		return c
	}
	c.P = MannWhitneyUP(old, new)
	c.Significant = c.P < CompareAlpha
	return c
}
