package stats

import (
	"fmt"
	"strings"
)

// Chart renders a table column as a horizontal ASCII bar chart — the
// terminal-friendly analogue of the paper's bar figures. Values are scaled
// to the column maximum; baseline marks a reference value (1.0 for
// normalized-cycles figures) drawn as a tick on each bar.
func (t *Table) Chart(col string, baseline float64, width int) string {
	if width < 10 {
		width = 10
	}
	type row struct {
		label string
		val   float64
		rule  bool
	}
	var rows []row
	maxVal := baseline
	for _, r := range t.rows {
		if r.rule {
			rows = append(rows, row{rule: true})
			continue
		}
		v, ok := t.Value(r.label, col)
		if !ok {
			continue
		}
		rows = append(rows, row{label: r.label, val: v})
		if v > maxVal {
			maxVal = v
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}

	labelW := 16
	for _, r := range rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}

	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s — column %s\n", t.Title, col)
	}
	tick := -1
	if baseline > 0 {
		tick = int(baseline / maxVal * float64(width))
		if tick >= width {
			tick = width - 1
		}
	}
	for _, r := range rows {
		if r.rule {
			sb.WriteString(strings.Repeat("-", labelW+width+12))
			sb.WriteByte('\n')
			continue
		}
		n := int(r.val / maxVal * float64(width))
		if n > width {
			n = width
		}
		bar := make([]byte, width)
		for i := range bar {
			switch {
			case i < n:
				bar[i] = '#'
			case i == tick:
				bar[i] = '|'
			default:
				bar[i] = ' '
			}
		}
		if tick >= 0 && tick < n {
			bar[tick] = '+' // bar crosses the baseline
		}
		fmt.Fprintf(&sb, "%-*s %s %8.3f\n", labelW, r.label, string(bar), r.val)
	}
	return sb.String()
}
