// Package asm provides a textual assembly format for Capri IR programs: a
// parser (Parse) and a formatter (Format) that round-trip through
// prog.Program. The format exists so programs can be written, inspected and
// committed as plain text instead of Go builder calls:
//
//	; comments run to end of line
//	func main          ; first block is the entry
//	b0:
//	    movi sp, #524288
//	    movi r1, #100
//	    br b1
//	b1:
//	    brif r0 ge r1 -> b3 else b2
//	b2:
//	    store [r2+0], r0
//	    addi r0, r0, #1
//	    br b1
//	b3:
//	    emit r0
//	    halt
//	thread main        ; one line per hardware thread
//
// Calls are written `call <funcname>`; return-site tokens are assigned by
// the parser. Compiler-inserted opcodes (rgn.boundary, ckpt) parse too, so
// compiled programs can be dumped and re-loaded.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"capri/internal/isa"
	"capri/internal/prog"
)

// Parse assembles the source text into a verified program.
func Parse(name, src string) (*prog.Program, error) {
	p := &parser{name: name}
	if err := p.run(src); err != nil {
		return nil, err
	}
	return p.finish()
}

// MustParse is Parse for tests and examples.
func MustParse(name, src string) *prog.Program {
	p, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type pendingCall struct {
	fn     *prog.Func
	block  int
	index  int
	callee string
	line   int
}

type parser struct {
	name    string
	p       *prog.Program
	cur     *prog.Func
	curBlk  *prog.Block
	blocks  map[string]int // label -> block id in current function
	fixups  []blockFixup   // branch targets to resolve per function
	calls   []pendingCall
	threads []string
	line    int
}

type blockFixup struct {
	fn    *prog.Func
	block int
	index int
	label string // target label
	which int    // 0 = Target, 1 = Else
	line  int
}

func (ps *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("asm:%d: %s", ps.line, fmt.Sprintf(format, args...))
}

func (ps *parser) run(src string) error {
	ps.p = prog.New(ps.name)
	for i, raw := range strings.Split(src, "\n") {
		ps.line = i + 1
		line := raw
		if j := strings.IndexByte(line, ';'); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := ps.statement(line); err != nil {
			return err
		}
	}
	return nil
}

func (ps *parser) statement(line string) error {
	switch {
	case strings.HasPrefix(line, "func "):
		return ps.startFunc(strings.TrimSpace(line[5:]))
	case strings.HasPrefix(line, "thread "):
		ps.threads = append(ps.threads, strings.TrimSpace(line[7:]))
		return nil
	case strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t"):
		return ps.startBlock(strings.TrimSuffix(line, ":"))
	default:
		return ps.instruction(line)
	}
}

func (ps *parser) startFunc(name string) error {
	if name == "" {
		return ps.errf("func needs a name")
	}
	if err := ps.endFunc(); err != nil {
		return err
	}
	if ps.p.FuncByName(name) != nil {
		return ps.errf("duplicate function %q", name)
	}
	ps.cur = ps.p.AddFunc(prog.NewFunc(name))
	ps.blocks = map[string]int{}
	ps.curBlk = nil
	return nil
}

// endFunc resolves the current function's branch labels.
func (ps *parser) endFunc() error {
	if ps.cur == nil {
		return nil
	}
	for _, fx := range ps.fixups {
		if fx.fn != ps.cur {
			continue
		}
		id, ok := ps.blocks[fx.label]
		if !ok {
			return fmt.Errorf("asm:%d: unknown block label %q", fx.line, fx.label)
		}
		in := &fx.fn.Blocks[fx.block].Insts[fx.index]
		if fx.which == 0 {
			in.Target = int32(id)
		} else {
			in.Else = int32(id)
		}
	}
	kept := ps.fixups[:0]
	for _, fx := range ps.fixups {
		if fx.fn != ps.cur {
			kept = append(kept, fx)
		}
	}
	ps.fixups = kept
	return nil
}

func (ps *parser) startBlock(label string) error {
	if ps.cur == nil {
		return ps.errf("block %q outside a function", label)
	}
	if _, dup := ps.blocks[label]; dup {
		return ps.errf("duplicate block label %q", label)
	}
	b := ps.cur.NewBlock()
	ps.blocks[label] = b.ID
	ps.curBlk = b
	return nil
}

// fields splits an operand list on commas, trimming whitespace.
func fields(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (ps *parser) instruction(line string) error {
	if ps.curBlk == nil {
		return ps.errf("instruction outside a block: %q", line)
	}
	op := line
	rest := ""
	if j := strings.IndexAny(line, " \t"); j >= 0 {
		op, rest = line[:j], strings.TrimSpace(line[j+1:])
	}

	emit := func(in isa.Inst) {
		ps.curBlk.Insts = append(ps.curBlk.Insts, in)
	}

	switch op {
	case "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "min", "max":
		a := fields(rest)
		if len(a) != 3 {
			return ps.errf("%s wants rd, ra, rb", op)
		}
		rd, e1 := parseReg(a[0])
		ra, e2 := parseReg(a[1])
		rb, e3 := parseReg(a[2])
		if err := first(e1, e2, e3); err != nil {
			return ps.errf("%v", err)
		}
		emit(isa.Inst{Op: aluOps[op], Rd: rd, Ra: ra, Rb: rb})
	case "addi", "muli", "andi", "shli", "shri":
		a := fields(rest)
		if len(a) != 3 {
			return ps.errf("%s wants rd, ra, #imm", op)
		}
		rd, e1 := parseReg(a[0])
		ra, e2 := parseReg(a[1])
		imm, e3 := parseImm(a[2])
		if err := first(e1, e2, e3); err != nil {
			return ps.errf("%v", err)
		}
		emit(isa.Inst{Op: aluImmOps[op], Rd: rd, Ra: ra, Imm: imm})
	case "movi":
		a := fields(rest)
		if len(a) != 2 {
			return ps.errf("movi wants rd, #imm")
		}
		rd, e1 := parseReg(a[0])
		imm, e2 := parseImm(a[1])
		if err := first(e1, e2); err != nil {
			return ps.errf("%v", err)
		}
		emit(isa.Inst{Op: isa.OpMovI, Rd: rd, Imm: imm})
	case "mov":
		a := fields(rest)
		if len(a) != 2 {
			return ps.errf("mov wants rd, ra")
		}
		rd, e1 := parseReg(a[0])
		ra, e2 := parseReg(a[1])
		if err := first(e1, e2); err != nil {
			return ps.errf("%v", err)
		}
		emit(isa.Inst{Op: isa.OpMov, Rd: rd, Ra: ra})
	case "sel":
		// sel rd, ra ? rb : rc
		a := strings.FieldsFunc(rest, func(r rune) bool {
			return r == ',' || r == '?' || r == ':'
		})
		if len(a) != 4 {
			return ps.errf("sel wants rd, ra ? rb : rc")
		}
		rd, e1 := parseReg(strings.TrimSpace(a[0]))
		ra, e2 := parseReg(strings.TrimSpace(a[1]))
		rb, e3 := parseReg(strings.TrimSpace(a[2]))
		rc, e4 := parseReg(strings.TrimSpace(a[3]))
		if err := first(e1, e2, e3, e4); err != nil {
			return ps.errf("%v", err)
		}
		emit(isa.Inst{Op: isa.OpSel, Rd: rd, Ra: ra, Rb: rb, Rc: rc})
	case "load":
		// load rd, [ra+off]
		a := fields(rest)
		if len(a) != 2 {
			return ps.errf("load wants rd, [ra+off]")
		}
		rd, e1 := parseReg(a[0])
		ra, off, e2 := parseMem(a[1])
		if err := first(e1, e2); err != nil {
			return ps.errf("%v", err)
		}
		emit(isa.Inst{Op: isa.OpLoad, Rd: rd, Ra: ra, Imm: off})
	case "store":
		// store [ra+off], rb
		a := fields(rest)
		if len(a) != 2 {
			return ps.errf("store wants [ra+off], rb")
		}
		ra, off, e1 := parseMem(a[0])
		rb, e2 := parseReg(a[1])
		if err := first(e1, e2); err != nil {
			return ps.errf("%v", err)
		}
		emit(isa.Inst{Op: isa.OpStore, Ra: ra, Imm: off, Rb: rb})
	case "br":
		ps.fixups = append(ps.fixups, blockFixup{
			fn: ps.cur, block: ps.curBlk.ID, index: len(ps.curBlk.Insts),
			label: rest, which: 0, line: ps.line,
		})
		emit(isa.Inst{Op: isa.OpBr})
	case "brif":
		// brif ra cond rb -> then else other
		w := strings.Fields(rest)
		if len(w) != 7 || w[3] != "->" || w[5] != "else" {
			return ps.errf("brif wants: ra cond rb -> label else label")
		}
		ra, e1 := parseReg(w[0])
		cond, e2 := parseCond(w[1])
		rb, e3 := parseReg(w[2])
		if err := first(e1, e2, e3); err != nil {
			return ps.errf("%v", err)
		}
		idx := len(ps.curBlk.Insts)
		ps.fixups = append(ps.fixups,
			blockFixup{fn: ps.cur, block: ps.curBlk.ID, index: idx, label: w[4], which: 0, line: ps.line},
			blockFixup{fn: ps.cur, block: ps.curBlk.ID, index: idx, label: w[6], which: 1, line: ps.line},
		)
		emit(isa.Inst{Op: isa.OpBrIf, Cond: cond, Ra: ra, Rb: rb})
	case "call":
		if rest == "" {
			return ps.errf("call wants a function name")
		}
		ps.calls = append(ps.calls, pendingCall{
			fn: ps.cur, block: ps.curBlk.ID, index: len(ps.curBlk.Insts),
			callee: rest, line: ps.line,
		})
		emit(isa.Inst{Op: isa.OpCall})
	case "ret":
		emit(isa.Inst{Op: isa.OpRet})
	case "halt":
		emit(isa.Inst{Op: isa.OpHalt})
	case "fence":
		emit(isa.Inst{Op: isa.OpFence})
	case "amoadd":
		// amoadd rd, [ra+off], rb
		a := fields(rest)
		if len(a) != 3 {
			return ps.errf("amoadd wants rd, [ra+off], rb")
		}
		rd, e1 := parseReg(a[0])
		ra, off, e2 := parseMem(a[1])
		rb, e3 := parseReg(a[2])
		if err := first(e1, e2, e3); err != nil {
			return ps.errf("%v", err)
		}
		emit(isa.Inst{Op: isa.OpAtomicAdd, Rd: rd, Ra: ra, Imm: off, Rb: rb})
	case "amocas":
		// amocas rd, [ra+off], rb, rc
		a := fields(rest)
		if len(a) != 4 {
			return ps.errf("amocas wants rd, [ra+off], rb, rc")
		}
		rd, e1 := parseReg(a[0])
		ra, off, e2 := parseMem(a[1])
		rb, e3 := parseReg(a[2])
		rc, e4 := parseReg(a[3])
		if err := first(e1, e2, e3, e4); err != nil {
			return ps.errf("%v", err)
		}
		emit(isa.Inst{Op: isa.OpAtomicCAS, Rd: rd, Ra: ra, Imm: off, Rb: rb, Rc: rc})
	case "lock", "unlock":
		ra, off, err := parseMem(rest)
		if err != nil {
			return ps.errf("%s wants [ra+off]: %v", op, err)
		}
		o := isa.OpLock
		if op == "unlock" {
			o = isa.OpUnlock
		}
		emit(isa.Inst{Op: o, Ra: ra, Imm: off})
	case "barrier":
		emit(isa.Inst{Op: isa.OpBarrier})
	case "emit":
		ra, err := parseReg(rest)
		if err != nil {
			return ps.errf("%v", err)
		}
		emit(isa.Inst{Op: isa.OpEmit, Ra: ra})
	case "rgn.boundary":
		emit(isa.Inst{Op: isa.OpBoundary})
		ps.curBlk.BoundaryAt = true
	case "ckpt":
		ra, err := parseReg(rest)
		if err != nil {
			return ps.errf("%v", err)
		}
		emit(isa.Inst{Op: isa.OpCkpt, Ra: ra})
	default:
		return ps.errf("unknown mnemonic %q", op)
	}
	return nil
}

// finish resolves calls and threads, then verifies.
func (ps *parser) finish() (*prog.Program, error) {
	if err := ps.endFunc(); err != nil {
		return nil, err
	}
	for _, c := range ps.calls {
		callee := ps.p.FuncByName(c.callee)
		if callee == nil {
			return nil, fmt.Errorf("asm:%d: call to unknown function %q", c.line, c.callee)
		}
		tok := ps.p.AddRetSite(prog.RetSite{Func: c.fn.ID, Block: c.block, Index: c.index + 1})
		in := &c.fn.Blocks[c.block].Insts[c.index]
		in.Callee = int32(callee.ID)
		in.Imm = tok
	}
	for _, name := range ps.threads {
		f := ps.p.FuncByName(name)
		if f == nil {
			return nil, fmt.Errorf("asm: thread references unknown function %q", name)
		}
		ps.p.ThreadEntries = append(ps.p.ThreadEntries, f.ID)
	}
	if err := ps.p.Verify(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return ps.p, nil
}

var aluOps = map[string]isa.Op{
	"add": isa.OpAdd, "sub": isa.OpSub, "mul": isa.OpMul, "div": isa.OpDiv,
	"rem": isa.OpRem, "and": isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor,
	"shl": isa.OpShl, "shr": isa.OpShr, "min": isa.OpMin, "max": isa.OpMax,
}

var aluImmOps = map[string]isa.Op{
	"addi": isa.OpAddI, "muli": isa.OpMulI, "andi": isa.OpAndI,
	"shli": isa.OpShlI, "shri": isa.OpShrI,
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.TrimSpace(s)
	if s == "sp" {
		return isa.SP, nil
	}
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= int(isa.NumRegs) {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "#") {
		return 0, fmt.Errorf("immediate must start with #: %q", s)
	}
	v, err := strconv.ParseInt(s[1:], 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMem parses "[rN+off]" or "[rN-off]" or "[rN]".
func parseMem(s string) (isa.Reg, int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("memory operand must be [reg+off]: %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner[1:], "+-")
	if sep < 0 {
		r, err := parseReg(inner)
		return r, 0, err
	}
	sep++ // offset of the sign within inner
	r, err := parseReg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	off, err := strconv.ParseInt(inner[sep:], 0, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	return r, off, nil
}

func parseCond(s string) (isa.Cond, error) {
	switch s {
	case "eq":
		return isa.CondEQ, nil
	case "ne":
		return isa.CondNE, nil
	case "lt":
		return isa.CondLT, nil
	case "le":
		return isa.CondLE, nil
	case "gt":
		return isa.CondGT, nil
	case "ge":
		return isa.CondGE, nil
	}
	return 0, fmt.Errorf("bad condition %q", s)
}

func first(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
