package asm

import (
	"strings"
	"testing"

	"capri/internal/compile"
	"capri/internal/isa"
	"capri/internal/machine"
	"capri/internal/prog"
	"capri/internal/progen"
	"capri/internal/workload"
)

const sumSrc = `
; sum 0..99 into memory, emit the total
func main
b0:
    movi sp, #524288
    movi r0, #0
    movi r1, #100
    movi r2, #1048576
    movi r3, #0
    br b1
b1:
    brif r0 ge r1 -> b3 else b2
b2:
    add r3, r3, r0
    store [r2+0], r3
    addi r0, r0, #1
    br b1
b3:
    emit r3
    halt
thread main
`

func TestParseAndRun(t *testing.T) {
	p, err := Parse("sum", sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Capri = false
	cfg.Cores = 1
	m, err := machine.New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out := m.Output(0); len(out) != 1 || out[0] != 4950 {
		t.Errorf("output = %v, want [4950]", out)
	}
}

func TestParsedProgramCompilesAndRecovers(t *testing.T) {
	p := MustParse("sum", sumSrc)
	res, err := compile.Compile(p, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, _ := machine.New(res.Program, cfg)
	if err := m.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	img, err := m.Crash()
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := machine.Recover(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if out := r.Output(0); len(out) != 1 || out[0] != 4950 {
		t.Errorf("recovered output = %v, want [4950]", out)
	}
}

const callSrc = `
func leaf
b0:
    addi r0, r0, #5
    ret
func main
b0:
    movi sp, #524288
    movi r0, #10
    call leaf
    emit r0
    halt
thread main
`

func TestParseCalls(t *testing.T) {
	p := MustParse("calls", callSrc)
	if len(p.RetSites) != 1 {
		t.Fatalf("ret sites = %d", len(p.RetSites))
	}
	cfg := machine.DefaultConfig()
	cfg.Capri = false
	cfg.Cores = 1
	m, _ := machine.New(p, cfg)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out := m.Output(0); len(out) != 1 || out[0] != 15 {
		t.Errorf("output = %v, want [15]", out)
	}
}

func TestParseSyncAndMemOps(t *testing.T) {
	src := `
func main
b0:
    movi sp, #524288
    movi r1, #1048576
    movi r2, #3
    lock [r1+0]
    amoadd r3, [r1+8], r2
    amocas r4, [r1+16], r3, r2
    unlock [r1+0]
    fence
    load r5, [r1+8]
    sel r6, r5 ? r2 : r3
    emit r5
    halt
thread main
`
	p := MustParse("sync", src)
	cfg := machine.DefaultConfig()
	cfg.Capri = false
	cfg.Cores = 1
	m, _ := machine.New(p, cfg)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out := m.Output(0); len(out) != 1 || out[0] != 3 {
		t.Errorf("output = %v, want [3]", out)
	}
}

func TestParseNegativeOffsets(t *testing.T) {
	src := `
func main
b0:
    movi sp, #524288
    movi r1, #1048640
    movi r2, #7
    store [r1-8], r2
    load r3, [r1-8]
    emit r3
    halt
thread main
`
	p := MustParse("neg", src)
	cfg := machine.DefaultConfig()
	cfg.Capri = false
	cfg.Cores = 1
	m, _ := machine.New(p, cfg)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out := m.Output(0); out[0] != 7 {
		t.Errorf("output = %v, want [7]", out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"b0:\n halt\n", "outside a function"},
		{"func f\nb0:\n bogus r1\n", "unknown mnemonic"},
		{"func f\nb0:\n movi r99, #1\n halt\n", "bad register"},
		{"func f\nb0:\n movi r1, 5\n halt\n", "immediate"},
		{"func f\nb0:\n br nowhere\n", "unknown block label"},
		{"func f\nb0:\n call ghost\n halt\nthread f\n", "unknown function"},
		{"func f\nb0:\n halt\nthread ghost\n", "unknown function"},
		{"func f\nfunc f\n", "duplicate function"},
		{"func f\nb0:\n halt\nb0:\n halt\n", "duplicate block"},
		{"func f\nb0:\n movi r1, #1\n", "missing terminator"},
		{"func f\nb0:\n brif r0 xx r1 -> b0 else b0\n", "bad condition"},
	}
	for _, tc := range cases {
		_, err := Parse("t", tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) error = %v, want contains %q", tc.src, err, tc.want)
		}
	}
}

func TestFormatRoundTripStable(t *testing.T) {
	p := MustParse("sum", sumSrc)
	text1 := Format(p)
	p2, err := Parse("sum", text1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text1)
	}
	text2 := Format(p2)
	if text1 != text2 {
		t.Errorf("format not stable:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestFormatRoundTripGeneratedPrograms(t *testing.T) {
	// Random structured programs (with calls and multiple same-named
	// functions) must survive a format/parse/format round trip.
	gcfg := progen.DefaultConfig()
	gcfg.Threads = 2
	for seed := uint64(0); seed < 10; seed++ {
		p := progen.Generate(seed*13+1, gcfg)
		text1 := Format(p)
		p2, err := Parse(p.Name, text1)
		if err != nil {
			t.Fatalf("seed %d reparse: %v", seed, err)
		}
		if Format(p2) != text1 {
			t.Fatalf("seed %d: round trip not stable", seed)
		}
		// And the reparsed program must behave identically.
		cfg := machine.DefaultConfig()
		cfg.Capri = false
		cfg.L2Size = 256 << 10
		cfg.DRAMSize = 1 << 20
		m1, _ := machine.New(p, cfg)
		m2, _ := machine.New(p2, cfg)
		if err := m1.Run(); err != nil {
			t.Fatal(err)
		}
		if err := m2.Run(); err != nil {
			t.Fatal(err)
		}
		for th := 0; th < p.NumThreads(); th++ {
			o1, o2 := m1.Output(th), m2.Output(th)
			if len(o1) != len(o2) {
				t.Fatalf("seed %d: output length differs", seed)
			}
			for i := range o1 {
				if o1[i] != o2[i] {
					t.Fatalf("seed %d: thread %d output differs", seed, th)
				}
			}
		}
	}
}

func TestFormatCompiledProgram(t *testing.T) {
	// Compiled programs (with boundaries and ckpts) format and reparse.
	p := MustParse("sum", sumSrc)
	res, err := compile.Compile(p, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text := Format(res.Program)
	if !strings.Contains(text, "rgn.boundary") || !strings.Contains(text, "ckpt r") {
		t.Fatalf("compiled dump missing boundary/ckpt:\n%s", text)
	}
	p2, err := Parse("compiled", text)
	if err != nil {
		t.Fatalf("reparse compiled: %v", err)
	}
	// Boundary flags survive.
	found := false
	for _, f := range p2.Funcs {
		for _, b := range f.Blocks {
			if b.BoundaryAt {
				found = true
			}
		}
	}
	if !found {
		t.Error("BoundaryAt flags lost in round trip")
	}
}

func TestParseRegisterAliases(t *testing.T) {
	if r, err := parseReg("sp"); err != nil || r != isa.SP {
		t.Errorf("sp parsed as %v, %v", r, err)
	}
	if r, err := parseReg("r31"); err != nil || r != isa.SP {
		t.Errorf("r31 parsed as %v, %v", r, err)
	}
	if _, err := parseReg("r32"); err == nil {
		t.Error("r32 accepted")
	}
	if _, err := parseReg("x1"); err == nil {
		t.Error("x1 accepted")
	}
}

func TestParseHexImmediates(t *testing.T) {
	src := "func f\nb0:\n movi r1, #0x10\n emit r1\n halt\nthread f\n"
	p := MustParse("hex", src)
	if p.Funcs[0].Blocks[0].Insts[0].Imm != 16 {
		t.Errorf("hex immediate = %d", p.Funcs[0].Blocks[0].Insts[0].Imm)
	}
}

func TestWorkloadThroughAssembler(t *testing.T) {
	// A real benchmark stand-in formatted to text, reparsed, compiled and
	// executed must match the original's outputs — the assembler is a
	// faithful serialization of everything the toolchain needs.
	w, err := workload.ByName("ssca2")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(1)
	text := Format(p)
	p2, err := Parse(p.Name, text)
	if err != nil {
		t.Fatal(err)
	}

	run := func(src *prog.Program) []uint64 {
		res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, 64))
		if err != nil {
			t.Fatal(err)
		}
		cfg := machine.DefaultConfig()
		cfg.Threshold = 64
		cfg.L2Size = 512 << 10
		cfg.DRAMSize = 4 << 20
		m, err := machine.New(res.Program, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Output(0)
	}
	a, b := run(p), run(p2)
	if len(a) != len(b) {
		t.Fatalf("output lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output[%d]: %d vs %d", i, a[i], b[i])
		}
	}
}
