package asm

import (
	"fmt"
	"strings"

	"capri/internal/isa"
	"capri/internal/prog"
)

// Format renders a program in the textual assembly syntax accepted by Parse.
// Block labels are bN per function; call operands use function names. The
// round trip Parse(Format(p)) yields a structurally identical program
// (recovery slices, which have no textual form, are the one exception and
// are emitted as comments).
func Format(p *prog.Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; program %s\n", p.Name)
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "func %s\n", funcName(p, f.ID))
		for _, b := range f.Blocks {
			fmt.Fprintf(&sb, "b%d:\n", b.ID)
			for reg, slice := range b.RecoverySlices {
				fmt.Fprintf(&sb, "    ; recovery slice for %s (%d insts)\n", reg, len(slice))
			}
			for i := range b.Insts {
				fmt.Fprintf(&sb, "    %s\n", formatInst(p, &b.Insts[i]))
			}
		}
	}
	for t := 0; t < p.NumThreads(); t++ {
		fmt.Fprintf(&sb, "thread %s\n", funcName(p, p.EntryFunc(t)))
	}
	return sb.String()
}

// funcName returns a unique textual name for a function (its declared name,
// disambiguated by ID when several functions share one).
func funcName(p *prog.Program, id int) string {
	name := p.Funcs[id].Name
	for _, f := range p.Funcs {
		if f.Name == name && f.ID != id {
			return fmt.Sprintf("%s#%d", name, id)
		}
	}
	return name
}

func formatInst(p *prog.Program, in *isa.Inst) string {
	switch in.Op {
	case isa.OpBr:
		return fmt.Sprintf("br b%d", in.Target)
	case isa.OpBrIf:
		return fmt.Sprintf("brif %s %s %s -> b%d else b%d", in.Ra, in.Cond, in.Rb, in.Target, in.Else)
	case isa.OpCall:
		return fmt.Sprintf("call %s", funcName(p, int(in.Callee)))
	default:
		return in.String()
	}
}
