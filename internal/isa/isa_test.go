package isa

import (
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	if got := Reg(0).String(); got != "r0" {
		t.Errorf("Reg(0) = %q, want r0", got)
	}
	if got := SP.String(); got != "sp" {
		t.Errorf("SP = %q, want sp", got)
	}
	if !Reg(31).Valid() {
		t.Error("Reg(31) should be valid")
	}
	if Reg(32).Valid() {
		t.Error("Reg(32) should be invalid")
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpAdd:       "add",
		OpStore:     "store",
		OpBoundary:  "rgn.boundary",
		OpCkpt:      "ckpt",
		OpAtomicCAS: "amocas",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", uint8(op), got, want)
		}
		if !op.Valid() {
			t.Errorf("%s should be valid", want)
		}
	}
	if OpInvalid.Valid() {
		t.Error("OpInvalid should not be valid")
	}
	if opMax.Valid() {
		t.Error("opMax should not be valid")
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b uint64
		want bool
	}{
		{CondEQ, 5, 5, true},
		{CondEQ, 5, 6, false},
		{CondNE, 5, 6, true},
		{CondLT, 3, 4, true},
		{CondLT, 4, 3, false},
		// Signed comparison: ^uint64(0) is -1.
		{CondLT, ^uint64(0), 0, true},
		{CondGT, 0, ^uint64(0), true},
		{CondLE, 4, 4, true},
		{CondGE, 4, 4, true},
		{CondGE, 3, 4, false},
	}
	for _, tc := range cases {
		if got := tc.c.Eval(tc.a, tc.b); got != tc.want {
			t.Errorf("%s.Eval(%d,%d) = %v, want %v", tc.c, int64(tc.a), int64(tc.b), got, tc.want)
		}
	}
}

func TestCondNegateIsInvolution(t *testing.T) {
	for c := CondEQ; c <= CondGE; c++ {
		if c.Negate().Negate() != c {
			t.Errorf("Negate(Negate(%s)) != %s", c, c)
		}
	}
}

func TestCondNegateFlipsTruth(t *testing.T) {
	f := func(c8 uint8, a, b int64) bool {
		c := Cond(c8 % 6)
		return c.Eval(uint64(a), uint64(b)) != c.Negate().Eval(uint64(a), uint64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsStoreClassification(t *testing.T) {
	store := Inst{Op: OpStore}
	ckpt := Inst{Op: OpCkpt}
	amo := Inst{Op: OpAtomicAdd}
	load := Inst{Op: OpLoad}

	if !store.IsStore() || !ckpt.IsStore() || !amo.IsStore() {
		t.Error("store/ckpt/amo must all count against the region threshold")
	}
	if load.IsStore() {
		t.Error("load is not a store")
	}
	if !store.IsRegularStore() || !amo.IsRegularStore() {
		t.Error("store/amo are regular stores")
	}
	if ckpt.IsRegularStore() {
		t.Error("checkpoint stores bypass the front-end proxy (paper §5.2.1)")
	}
}

func TestMandatoryBoundaries(t *testing.T) {
	for _, op := range []Op{OpFence, OpAtomicAdd, OpAtomicCAS, OpLock, OpUnlock, OpBarrier} {
		in := Inst{Op: op}
		if !in.IsMandatoryBoundary() {
			t.Errorf("%s must be a mandatory region boundary", op)
		}
	}
	for _, op := range []Op{OpStore, OpLoad, OpAdd, OpBr} {
		in := Inst{Op: op}
		if in.IsMandatoryBoundary() {
			t.Errorf("%s must not be a mandatory boundary", op)
		}
	}
}

func TestDefUses(t *testing.T) {
	add := Inst{Op: OpAdd, Rd: 1, Ra: 2, Rb: 3}
	if d, ok := add.Def(); !ok || d != 1 {
		t.Errorf("add def = %v,%v", d, ok)
	}
	uses := add.Uses(nil)
	if len(uses) != 2 || uses[0] != 2 || uses[1] != 3 {
		t.Errorf("add uses = %v", uses)
	}

	st := Inst{Op: OpStore, Ra: 4, Rb: 5}
	if _, ok := st.Def(); ok {
		t.Error("store defines no register")
	}
	uses = st.Uses(nil)
	if len(uses) != 2 {
		t.Errorf("store uses = %v", uses)
	}

	call := Inst{Op: OpCall}
	uses = call.Uses(nil)
	if len(uses) != 1 || uses[0] != SP {
		t.Errorf("call must use SP, got %v", uses)
	}

	sel := Inst{Op: OpSel, Rd: 0, Ra: 1, Rb: 2, Rc: 3}
	if got := len(sel.Uses(nil)); got != 3 {
		t.Errorf("sel uses %d regs, want 3", got)
	}
}

func TestReexecutable(t *testing.T) {
	if !(&Inst{Op: OpAdd}).IsReexecutable() {
		t.Error("add is re-executable")
	}
	if !(&Inst{Op: OpMovI}).IsReexecutable() {
		t.Error("movi is re-executable")
	}
	for _, op := range []Op{OpLoad, OpStore, OpAtomicAdd, OpCall, OpEmit} {
		if (&Inst{Op: op}).IsReexecutable() {
			t.Errorf("%s must not be considered re-executable", op)
		}
	}
}

func TestTerminators(t *testing.T) {
	for _, op := range []Op{OpBr, OpBrIf, OpRet, OpHalt} {
		if !(&Inst{Op: op}).IsTerminator() {
			t.Errorf("%s is a terminator", op)
		}
	}
	if (&Inst{Op: OpCall}).IsTerminator() {
		t.Error("call is not a terminator (control falls through on return)")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, Rd: 1, Ra: 2, Rb: 3}, "add r1, r2, r3"},
		{Inst{Op: OpMovI, Rd: 4, Imm: 7}, "movi r4, #7"},
		{Inst{Op: OpLoad, Rd: 1, Ra: 2, Imm: 16}, "load r1, [r2+16]"},
		{Inst{Op: OpStore, Ra: 2, Imm: 8, Rb: 3}, "store [r2+8], r3"},
		{Inst{Op: OpBr, Target: 5}, "br b5"},
		{Inst{Op: OpCkpt, Ra: 9}, "ckpt r9"},
		{Inst{Op: OpBoundary}, "rgn.boundary"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestInstStringCoversAllOpcodes(t *testing.T) {
	// Every defined opcode must disassemble to something meaningful (no
	// raw "op(N)" fallbacks for valid opcodes).
	for op := OpInvalid + 1; op < opMax; op++ {
		in := Inst{Op: op, Rd: 1, Ra: 2, Rb: 3, Rc: 4, Imm: 8, Target: 1, Else: 2}
		s := in.String()
		if s == "" {
			t.Errorf("%v disassembles to empty string", uint8(op))
		}
		if len(s) >= 3 && s[:3] == "op(" {
			t.Errorf("opcode %v has no mnemonic: %q", uint8(op), s)
		}
	}
}

func TestInstStringSpecificForms(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAddI, Rd: 1, Ra: 2, Imm: -4}, "addi r1, r2, #-4"},
		{Inst{Op: OpMov, Rd: 1, Ra: 2}, "mov r1, r2"},
		{Inst{Op: OpSel, Rd: 1, Ra: 2, Rb: 3, Rc: 4}, "sel r1, r2 ? r3 : r4"},
		{Inst{Op: OpBrIf, Cond: CondLT, Ra: 1, Rb: 2, Target: 3, Else: 4}, "brif r1 lt r2 -> b3 else b4"},
		{Inst{Op: OpCall, Callee: 2, Imm: 5}, "call f2 (tok 5)"},
		{Inst{Op: OpAtomicAdd, Rd: 1, Ra: 2, Imm: 8, Rb: 3}, "amoadd r1, [r2+8], r3"},
		{Inst{Op: OpAtomicCAS, Rd: 1, Ra: 2, Imm: 0, Rb: 3, Rc: 4}, "amocas r1, [r2+0], r3, r4"},
		{Inst{Op: OpLock, Ra: 1, Imm: 16}, "lock [r1+16]"},
		{Inst{Op: OpUnlock, Ra: 1, Imm: 0}, "unlock [r1+0]"},
		{Inst{Op: OpEmit, Ra: 7}, "emit r7"},
		{Inst{Op: OpRet}, "ret"},
		{Inst{Op: OpHalt}, "halt"},
		{Inst{Op: OpFence}, "fence"},
		{Inst{Op: OpBarrier}, "barrier"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestUsesAllOpcodesConsistent(t *testing.T) {
	// Uses/Def must never return invalid registers for any opcode.
	for op := OpInvalid + 1; op < opMax; op++ {
		in := Inst{Op: op, Rd: 1, Ra: 2, Rb: 3, Rc: 4}
		for _, r := range in.Uses(nil) {
			if !r.Valid() {
				t.Errorf("%s uses invalid register %d", op, r)
			}
		}
		if d, ok := in.Def(); ok && !d.Valid() {
			t.Errorf("%s defines invalid register %d", op, d)
		}
	}
}
