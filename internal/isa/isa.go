// Package isa defines the register-machine instruction set used throughout
// the Capri reproduction. The ISA is a small RISC-like, word-oriented machine
// modeled loosely after ARMv8 (the paper's target): 32 architectural
// registers, 64-bit words, load/store architecture, explicit fences and
// atomics. It exists so the compiler half of Capri (region formation,
// checkpointing stores, speculative loop unrolling, checkpoint pruning, LICM)
// can operate on realistic control-flow graphs, and so the architecture half
// (proxy buffers, two-phase atomic stores, crash recovery) can observe every
// store the program executes.
package isa

import "fmt"

// Reg names an architectural register. The machine has NumRegs general
// registers r0..r30 plus SP (r31), which the call-lowering convention uses as
// the in-memory stack pointer. Register checkpoints are indexed by Reg into a
// fixed NVM array (paper §4.2: "r0 is mapped into the index zero").
type Reg uint8

// NumRegs is the number of architectural registers. It is statically fixed in
// the ISA, which is what makes the paper's global checkpoint array feasible.
const NumRegs = 32

// SP is the stack-pointer register used by the call lowering convention.
const SP Reg = 31

// Conventional argument/return registers (callee receives args in A0..A5 and
// returns results in A0..A1). These are conventions of our workload
// generators, not constraints of the ISA.
const (
	A0 Reg = iota
	A1
	A2
	A3
	A4
	A5
)

// String renders a register in the conventional rN / sp form.
func (r Reg) String() string {
	if r == SP {
		return "sp"
	}
	return fmt.Sprintf("r%d", r)
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Op is an instruction opcode.
type Op uint8

// Opcodes. The set is deliberately small but covers everything the Capri
// compiler cares about: ALU ops (re-executable, hence prunable checkpoints),
// loads and stores (the region criterion counts stores), control flow
// (region boundaries live at block granularity), calls/returns (mandatory
// boundaries), fences and atomics (mandatory boundaries for multi-threaded
// correctness), and the two instructions the Capri compiler itself inserts:
// region boundaries and checkpoint stores.
const (
	OpInvalid Op = iota

	// ALU register-register: Rd = Ra <op> Rb.
	OpAdd
	OpSub
	OpMul
	OpDiv // divide-by-zero yields 0, like ARM UDIV
	OpRem // remainder; modulo-by-zero yields 0
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpMin
	OpMax

	// ALU register-immediate: Rd = Ra <op> Imm.
	OpAddI
	OpMulI
	OpAndI
	OpShlI
	OpShrI

	// Data movement.
	OpMovI // Rd = Imm
	OpMov  // Rd = Ra
	OpSel  // Rd = (Ra != 0) ? Rb : Rc  (conditional select, re-executable)

	// Memory. Effective address is Ra + Imm (bytes, word aligned).
	OpLoad  // Rd = mem[Ra+Imm]
	OpStore // mem[Ra+Imm] = Rb

	// Control flow. Branches terminate basic blocks.
	OpBr   // unconditional branch to Target
	OpBrIf // branch to Target if "Ra <cond> Rb", else fall to Else
	OpCall // call function Callee (return linkage via in-memory stack)
	OpRet  // return via in-memory stack
	OpHalt // stop this hardware thread

	// Synchronization. All of these are mandatory region boundaries.
	OpFence     // full memory fence
	OpAtomicAdd // Rd = fetch-and-add(mem[Ra+Imm], Rb)
	OpAtomicCAS // Rd = old; if old == Rb then mem[Ra+Imm] = Rc (old in Rd)
	OpLock      // acquire spin-lock word at Ra+Imm
	OpUnlock    // release spin-lock word at Ra+Imm
	OpBarrier   // global barrier across all running threads

	// Output. Appends Ra to the program's output tape. Output is part of the
	// golden-state comparison in crash tests.
	OpEmit

	// Compiler-inserted instructions.
	OpBoundary // region boundary (paper §3.2); also checkpoints the PC
	OpCkpt     // checkpoint store of register Ra to its NVM checkpoint slot

	opMax
)

var opNames = [...]string{
	OpInvalid:   "invalid",
	OpAdd:       "add",
	OpSub:       "sub",
	OpMul:       "mul",
	OpDiv:       "div",
	OpRem:       "rem",
	OpAnd:       "and",
	OpOr:        "or",
	OpXor:       "xor",
	OpShl:       "shl",
	OpShr:       "shr",
	OpMin:       "min",
	OpMax:       "max",
	OpAddI:      "addi",
	OpMulI:      "muli",
	OpAndI:      "andi",
	OpShlI:      "shli",
	OpShrI:      "shri",
	OpMovI:      "movi",
	OpMov:       "mov",
	OpSel:       "sel",
	OpLoad:      "load",
	OpStore:     "store",
	OpBr:        "br",
	OpBrIf:      "brif",
	OpCall:      "call",
	OpRet:       "ret",
	OpHalt:      "halt",
	OpFence:     "fence",
	OpAtomicAdd: "amoadd",
	OpAtomicCAS: "amocas",
	OpLock:      "lock",
	OpUnlock:    "unlock",
	OpBarrier:   "barrier",
	OpEmit:      "emit",
	OpBoundary:  "rgn.boundary",
	OpCkpt:      "ckpt",
}

// String returns the mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op > OpInvalid && op < opMax }

// Cond is a comparison condition for OpBrIf.
type Cond uint8

// Conditions compare Ra against Rb (unsigned-as-signed int64 semantics).
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
)

var condNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

// String returns the condition mnemonic.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Eval applies the condition to two values using signed semantics.
func (c Cond) Eval(a, b uint64) bool {
	sa, sb := int64(a), int64(b)
	switch c {
	case CondEQ:
		return sa == sb
	case CondNE:
		return sa != sb
	case CondLT:
		return sa < sb
	case CondLE:
		return sa <= sb
	case CondGT:
		return sa > sb
	case CondGE:
		return sa >= sb
	}
	return false
}

// Negate returns the condition with the opposite truth value. Speculative
// loop unrolling uses it when re-materializing loop-exit tests.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	case CondGE:
		return CondLT
	}
	return c
}

// Inst is one instruction. A compact fixed-shape struct keeps the
// interpreter's hot loop cache-friendly.
//
// Field usage by opcode family:
//
//	ALU rrr:   Rd = Ra op Rb            (OpSel additionally reads Rc)
//	ALU rri:   Rd = Ra op Imm
//	MovI:      Rd = Imm
//	Load:      Rd = mem[Ra+Imm]
//	Store:     mem[Ra+Imm] = Rb
//	Br:        Target
//	BrIf:      if Ra Cond Rb -> Target else Else
//	Call:      Callee (function index), Imm = return-site token
//	AtomicAdd: Rd = old(mem[Ra+Imm]); mem += Rb
//	AtomicCAS: Rd = old; if old == Rb, mem[Ra+Imm] = Rc
//	Ckpt:      Ra = register being checkpointed
type Inst struct {
	Op     Op
	Cond   Cond
	Rd     Reg
	Ra     Reg
	Rb     Reg
	Rc     Reg
	Imm    int64
	Target int32 // block index within function
	Else   int32 // fall-through block for BrIf
	Callee int32 // function index for Call
}

// IsStore reports whether the instruction is counted against the region store
// threshold. Per paper §3.2 the threshold counts "both regular and
// checkpointing stores"; atomics also write memory.
func (in *Inst) IsStore() bool {
	switch in.Op {
	case OpStore, OpCkpt, OpAtomicAdd, OpAtomicCAS:
		return true
	}
	return false
}

// IsRegularStore reports whether the instruction writes program memory
// through the front-end proxy path (checkpoint stores use the dedicated
// register-file storage instead; paper §5.2.1 optimizations).
func (in *Inst) IsRegularStore() bool {
	switch in.Op {
	case OpStore, OpAtomicAdd, OpAtomicCAS:
		return true
	}
	return false
}

// IsMandatoryBoundary reports whether the Capri compiler must place a region
// boundary at this instruction (paper §4.1: fences and atomic operations).
func (in *Inst) IsMandatoryBoundary() bool {
	switch in.Op {
	case OpFence, OpAtomicAdd, OpAtomicCAS, OpLock, OpUnlock, OpBarrier:
		return true
	}
	return false
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Inst) IsTerminator() bool {
	switch in.Op {
	case OpBr, OpBrIf, OpRet, OpHalt:
		return true
	}
	return false
}

// Def returns the register defined by the instruction and whether it defines
// one at all.
func (in *Inst) Def() (Reg, bool) {
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpMin, OpMax, OpAddI, OpMulI, OpAndI, OpShlI, OpShrI, OpMovI, OpMov,
		OpSel, OpLoad, OpAtomicAdd, OpAtomicCAS:
		return in.Rd, true
	}
	return 0, false
}

// Uses appends the registers read by the instruction to dst and returns it.
// Call/Ret implicitly use SP (the call lowering pushes/pops the return token
// through memory).
func (in *Inst) Uses(dst []Reg) []Reg {
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMin, OpMax:
		dst = append(dst, in.Ra, in.Rb)
	case OpAddI, OpMulI, OpAndI, OpShlI, OpShrI, OpMov:
		dst = append(dst, in.Ra)
	case OpMovI:
	case OpSel:
		dst = append(dst, in.Ra, in.Rb, in.Rc)
	case OpLoad:
		dst = append(dst, in.Ra)
	case OpStore:
		dst = append(dst, in.Ra, in.Rb)
	case OpBrIf:
		dst = append(dst, in.Ra, in.Rb)
	case OpCall, OpRet:
		dst = append(dst, SP)
	case OpAtomicAdd:
		dst = append(dst, in.Ra, in.Rb)
	case OpAtomicCAS:
		dst = append(dst, in.Ra, in.Rb, in.Rc)
	case OpLock, OpUnlock:
		dst = append(dst, in.Ra)
	case OpEmit:
		dst = append(dst, in.Ra)
	case OpCkpt:
		dst = append(dst, in.Ra)
	}
	return dst
}

// IsReexecutable reports whether the instruction can be safely re-executed at
// recovery time from checkpointed operand values, i.e. it is a pure function
// of its register operands. Checkpoint pruning (paper §4.4.1) may only prune
// a checkpoint whose backward slice consists of such instructions.
func (in *Inst) IsReexecutable() bool {
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpMin, OpMax, OpAddI, OpMulI, OpAndI, OpShlI, OpShrI, OpMovI, OpMov, OpSel:
		return true
	}
	return false
}

// String disassembles the instruction.
func (in *Inst) String() string {
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMin, OpMax:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Ra, in.Rb)
	case OpAddI, OpMulI, OpAndI, OpShlI, OpShrI:
		return fmt.Sprintf("%s %s, %s, #%d", in.Op, in.Rd, in.Ra, in.Imm)
	case OpMovI:
		return fmt.Sprintf("movi %s, #%d", in.Rd, in.Imm)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", in.Rd, in.Ra)
	case OpSel:
		return fmt.Sprintf("sel %s, %s ? %s : %s", in.Rd, in.Ra, in.Rb, in.Rc)
	case OpLoad:
		return fmt.Sprintf("load %s, [%s+%d]", in.Rd, in.Ra, in.Imm)
	case OpStore:
		return fmt.Sprintf("store [%s+%d], %s", in.Ra, in.Imm, in.Rb)
	case OpBr:
		return fmt.Sprintf("br b%d", in.Target)
	case OpBrIf:
		return fmt.Sprintf("brif %s %s %s -> b%d else b%d", in.Ra, in.Cond, in.Rb, in.Target, in.Else)
	case OpCall:
		return fmt.Sprintf("call f%d (tok %d)", in.Callee, in.Imm)
	case OpAtomicAdd:
		return fmt.Sprintf("amoadd %s, [%s+%d], %s", in.Rd, in.Ra, in.Imm, in.Rb)
	case OpAtomicCAS:
		return fmt.Sprintf("amocas %s, [%s+%d], %s, %s", in.Rd, in.Ra, in.Imm, in.Rb, in.Rc)
	case OpLock:
		return fmt.Sprintf("lock [%s+%d]", in.Ra, in.Imm)
	case OpUnlock:
		return fmt.Sprintf("unlock [%s+%d]", in.Ra, in.Imm)
	case OpEmit:
		return fmt.Sprintf("emit %s", in.Ra)
	case OpCkpt:
		return fmt.Sprintf("ckpt %s", in.Ra)
	default:
		return in.Op.String()
	}
}
