// Package sweep is the parallel sweep orchestrator (DESIGN.md §4h): it
// shards independent simulation configurations — (benchmark × level ×
// threshold) grid cells for the figures, fault plans for the crash
// campaigns — across a bounded fleet of workers, and derives the
// content-addressed keys under which the internal/resultstore package
// persists each configuration's deterministic result.
//
// The orchestrator adds no semantics of its own: every unit is an
// independent deterministic simulation, so the only contract worth having
// is that the parallel sweep is indistinguishable from the sequential one.
// Run guarantees it structurally (units never share mutable state; results
// land in per-unit slots; the reported error is the lowest-indexed one, not
// the first to lose a race), and `capribench -sweepcheck` asserts it
// end-to-end: fig8/fig9 tables from a `-jobs N` sweep are byte-identical to
// the sequential run's.
package sweep

import (
	"crypto/sha256"
	"encoding/json"
	"runtime"
	"sync"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/progen"
	"capri/internal/resultstore"
	"capri/internal/telemetry"
	"capri/internal/workload"
)

// Run fans units 0..n-1 across a bounded worker fleet and waits for all of
// them. jobs bounds concurrency (jobs <= 1 runs strictly sequentially in
// index order; 0 means GOMAXPROCS); each worker executes one unit at a
// time, so a runner that builds a machine.Machine per unit holds at most
// one live machine per worker. Every unit runs even when another fails —
// units are independent simulations, and partial sweeps would make the
// result store's contents schedule-dependent. The returned error is the
// failing unit with the lowest index, which keeps the outcome deterministic
// under any worker interleaving.
func Run(jobs, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	// Unit progress is published unconditionally into the live telemetry
	// snapshot — three atomic adds per unit against units that each run a
	// whole simulation, so there is no disarmed fast path to maintain.
	telemetry.Sweeps.UnitsPlanned.Add(uint64(n))
	run := func(i int) error {
		telemetry.Sweeps.InFlight.Add(1)
		err := fn(i)
		telemetry.Sweeps.InFlight.Add(-1)
		telemetry.Sweeps.UnitsDone.Add(1)
		if err != nil {
			telemetry.Sweeps.Failures.Add(1)
		}
		return err
	}
	errs := make([]error, n)
	if jobs == 1 {
		for i := 0; i < n; i++ {
			errs[i] = run(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = run(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Unit is one cell of a figure sweep: a benchmark compiled at a cumulative
// optimization level and store threshold.
type Unit struct {
	Bench     workload.Benchmark
	Level     compile.Level
	Threshold int
}

// Grid enumerates the (benchmark × level × threshold) sweep units
// benchmark-major, the same order the sequential figure loops visit them.
func Grid(benches []workload.Benchmark, levels []compile.Level, thresholds []int) []Unit {
	out := make([]Unit, 0, len(benches)*len(levels)*len(thresholds))
	for _, b := range benches {
		for _, l := range levels {
			for _, th := range thresholds {
				out = append(out, Unit{Bench: b, Level: l, Threshold: th})
			}
		}
	}
	return out
}

// RunUnits is Run over a unit grid.
func RunUnits(jobs int, units []Unit, fn func(Unit) error) error {
	return Run(jobs, len(units), func(i int) error { return fn(units[i]) })
}

// saltVersion is a manual escape hatch folded into ToolchainSalt: bump it
// when simulator or compiler semantics change in a way the canary programs
// cannot observe, so stale store entries from older binaries stop matching.
const saltVersion = "capri-toolchain-salt/v1"

// canaryShape is the program shape ToolchainSalt compiles and simulates: a
// small two-threaded progen program, enough to exercise the compiler
// pipeline, the MT scheduler, the proxy path, and drain timing.
var canaryShape = progen.Config{Funcs: 2, MaxDepth: 2, MaxStmts: 4, MaxLoopTrip: 4, Threads: 2}

var (
	saltOnce sync.Once
	saltVal  []byte
)

// ToolchainSalt fingerprints the toolchain's observable semantics and is
// folded into every result-store key. Stored results are only valid while
// the compiler and simulator still produce them, but neither is an input to
// the result itself — so the salt compiles a canary program at two
// optimization levels (hashing the compiled fingerprints: any compiler
// change invalidates the store) and runs it on a deliberately tiny machine
// geometry (hashing the deterministic machine.Stats: any timing or
// semantic change to the simulator invalidates the store). Computed once
// per process, in a few milliseconds.
func ToolchainSalt() []byte {
	saltOnce.Do(func() {
		h := sha256.New()
		h.Write([]byte(saltVersion))
		src := progen.Generate(0xCA9B1, canaryShape)
		cfg := machine.DefaultConfig()
		cfg.Threshold = 64
		cfg.Cores = 2
		cfg.L1Size, cfg.L1Ways = 256, 1
		cfg.L2Size, cfg.L2Ways = 512, 1
		cfg.DRAMSize = 1 << 14
		for _, level := range []compile.Level{compile.LevelRegion, compile.LevelLICM} {
			res, err := compile.Compile(src, compile.OptionsForLevel(level, 64))
			if err != nil {
				h.Write([]byte(err.Error()))
				continue
			}
			fp := res.Program.Fingerprint()
			h.Write(fp[:])
			if level != compile.LevelLICM {
				continue
			}
			m, err := machine.New(res.Program, cfg)
			if err != nil {
				h.Write([]byte(err.Error()))
				continue
			}
			if err := m.Run(); err != nil {
				h.Write([]byte(err.Error()))
				continue
			}
			h.Write(mustJSON(m.Stats()))
		}
		saltVal = h.Sum(nil)
	})
	return append([]byte(nil), saltVal...)
}

// mustJSON marshals a value that cannot fail (plain exported structs).
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// SimKey is the result-store key of one Capri simulation: the source
// program's fingerprint × the canonicalized compile options × the full
// machine configuration, salted by ToolchainSalt. Everything that can
// change the deterministic result is in the key; everything that cannot
// (wall-clock, parallelism, store layout) is not.
func SimKey(fingerprint [sha256.Size]byte, opts compile.Options, cfg machine.Config) resultstore.Key {
	return resultstore.KeyOf("capri/sim-result",
		ToolchainSalt(), fingerprint[:], mustJSON(opts.Canonical()), mustJSON(cfg))
}

// BaselineKey is the result-store key of one volatile baseline simulation
// (no compilation: the source program runs as-is on a Capri-disabled
// machine).
func BaselineKey(fingerprint [sha256.Size]byte, cfg machine.Config) resultstore.Key {
	return resultstore.KeyOf("capri/sim-baseline",
		ToolchainSalt(), fingerprint[:], mustJSON(cfg))
}
