package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/resultstore"
	"capri/internal/workload"
)

func TestRunVisitsEveryUnit(t *testing.T) {
	for _, jobs := range []int{0, 1, 3, 7, 64} {
		const n = 37
		var hits [n]int32
		err := Run(jobs, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("jobs=%d: unit %d ran %d times", jobs, i, h)
			}
		}
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	wantErr := errors.New("unit 5 failed")
	var ran int32
	err := Run(4, 20, func(i int) error {
		atomic.AddInt32(&ran, 1)
		switch i {
		case 5:
			return wantErr
		case 11:
			return errors.New("unit 11 failed")
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("err = %v, want the lowest-indexed failure", err)
	}
	// Failures never cancel the sweep: every unit still runs.
	if ran != 20 {
		t.Fatalf("ran %d of 20 units", ran)
	}
}

func TestRunZeroUnits(t *testing.T) {
	if err := Run(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestGridOrder(t *testing.T) {
	benches := workload.All()[:2]
	levels := []compile.Level{compile.LevelRegion, compile.LevelLICM}
	ths := []int{64, 256}
	units := Grid(benches, levels, ths)
	if len(units) != 8 {
		t.Fatalf("len = %d", len(units))
	}
	// Benchmark-major, then level, then threshold — the sequential loop order.
	u := units[1]
	if u.Bench.Name != benches[0].Name || u.Level != compile.LevelRegion || u.Threshold != 256 {
		t.Fatalf("units[1] = {%s %v %d}", u.Bench.Name, u.Level, u.Threshold)
	}
	if units[4].Bench.Name != benches[1].Name {
		t.Fatalf("units[4] = %+v", units[4])
	}
}

func TestToolchainSaltStable(t *testing.T) {
	a := ToolchainSalt()
	b := ToolchainSalt()
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatalf("salt unstable: %x vs %x", a, b)
	}
}

func TestKeysDistinguishInputs(t *testing.T) {
	var fp1, fp2 [32]byte
	fp2[0] = 1
	opts := compile.DefaultOptions()
	opts2 := opts
	opts2.Threshold = 64
	cfg := machine.DefaultConfig()
	cfg2 := cfg
	cfg2.Cores = 2

	base := SimKey(fp1, opts, cfg)
	if SimKey(fp2, opts, cfg) == base {
		t.Fatal("fingerprint not in key")
	}
	if SimKey(fp1, opts2, cfg) == base {
		t.Fatal("options not in key")
	}
	if SimKey(fp1, opts, cfg2) == base {
		t.Fatal("machine config not in key")
	}
	if BaselineKey(fp1, cfg) == base {
		t.Fatal("baseline and sim domains collide")
	}
	if SimKey(fp1, opts, cfg) != base {
		t.Fatal("SimKey not deterministic")
	}
}

// TestVerifyAfterDoesNotChangeKey: VerifyAfter is diagnostics, not output;
// canonicalization must erase it so verified and unverified runs share
// stored results.
func TestVerifyAfterDoesNotChangeKey(t *testing.T) {
	var fp [32]byte
	opts := compile.DefaultOptions()
	verif := opts
	verif.VerifyAfter = compile.VerifyAfterAll
	cfg := machine.DefaultConfig()
	if SimKey(fp, opts, cfg) != SimKey(fp, verif, cfg) {
		t.Fatal("VerifyAfter leaked into the result key")
	}
}

// TestOrchestratorSharedStoreRace drives the real orchestrator shape — many
// workers computing units and publishing into one shared store, with
// duplicate keys across workers — under the race detector.
func TestOrchestratorSharedStoreRace(t *testing.T) {
	dir := t.TempDir()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.CompactThreshold = 2

	const n = 64
	var sims int64
	err = Run(8, n, func(i int) error {
		// Units collide on keys (i%16) like overlapping sweep cells do.
		key := resultstore.KeyOf("race-test", []byte(fmt.Sprintf("cell-%d", i%16)))
		if _, ok := store.Get(key); ok {
			return nil
		}
		atomic.AddInt64(&sims, 1)
		store.Put(key, []byte(fmt.Sprintf("result-%d", i%16)))
		if i%8 == 0 {
			return store.Flush()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Entries != 16 {
		t.Fatalf("entries = %d, want 16: %+v", st.Entries, st)
	}
	if sims < 16 || sims > n {
		t.Fatalf("implausible sim count %d", sims)
	}
}
