package analysis

import (
	"testing"
	"testing/quick"

	"capri/internal/isa"
	"capri/internal/prog"
)

// diamond builds:
//
//	b0 -> b1, b2; b1 -> b3; b2 -> b3; b3: ret
func diamond(t *testing.T) *prog.Func {
	t.Helper()
	bd := prog.NewBuilder("d")
	f := bd.Func("main")
	b0 := f.Block()
	b1 := f.Block()
	b2 := f.Block()
	b3 := f.Block()

	f.SetBlock(b0)
	f.MovI(1, 1)
	f.MovI(2, 2)
	f.BrIf(1, isa.CondLT, 2, b1, b2)
	f.SetBlock(b1)
	f.Mov(3, 1)
	f.Br(b3)
	f.SetBlock(b2)
	f.Add(3, 1, 2)
	f.Br(b3)
	f.SetBlock(b3)
	f.Emit(3)
	f.Halt()
	bd.Program()
	return f.Raw()
}

// loopFunc builds a simple counted loop:
//
//	b0(entry) -> b1(header); b1 -> b2(body) | b3(exit); b2 -> b1
func loopFunc(t *testing.T) *prog.Func {
	t.Helper()
	bd := prog.NewBuilder("l")
	f := bd.Func("main")
	b0 := f.Block()
	b1 := f.Block()
	b2 := f.Block()
	b3 := f.Block()

	f.SetBlock(b0)
	f.MovI(0, 0)
	f.MovI(1, 100)
	f.Br(b1)
	f.SetBlock(b1)
	f.BrIf(0, isa.CondGE, 1, b3, b2)
	f.SetBlock(b2)
	f.AddI(0, 0, 1)
	f.Br(b1)
	f.SetBlock(b3)
	f.Halt()
	bd.Program()
	return f.Raw()
}

func TestCFGEdges(t *testing.T) {
	f := diamond(t)
	c := BuildCFG(f)
	if got := c.Succ[0]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("succ(b0) = %v", got)
	}
	if got := c.Pred[3]; len(got) != 2 {
		t.Errorf("pred(b3) = %v", got)
	}
	if len(c.RPO) != 4 || c.RPO[0] != 0 {
		t.Errorf("RPO = %v", c.RPO)
	}
	if c.RPO[len(c.RPO)-1] != 3 {
		t.Errorf("RPO should end at the join, got %v", c.RPO)
	}
}

func TestRPOUnreachable(t *testing.T) {
	f := diamond(t)
	// Add an unreachable block.
	b := f.NewBlock()
	b.Insts = append(b.Insts, isa.Inst{Op: isa.OpHalt})
	c := BuildCFG(f)
	if c.Reachable(b.ID) {
		t.Error("orphan block should be unreachable")
	}
	if len(c.RPO) != 4 {
		t.Errorf("RPO = %v, want 4 reachable blocks", c.RPO)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f := diamond(t)
	c := BuildCFG(f)
	idom := c.Dominators()
	if idom[0] != 0 {
		t.Errorf("idom(entry) = %d", idom[0])
	}
	if idom[1] != 0 || idom[2] != 0 {
		t.Errorf("idom(b1)=%d idom(b2)=%d, want 0,0", idom[1], idom[2])
	}
	if idom[3] != 0 {
		t.Errorf("idom(join) = %d, want 0 (branches don't dominate the join)", idom[3])
	}
	if !Dominates(idom, 0, 0, 3) {
		t.Error("entry must dominate join")
	}
	if Dominates(idom, 0, 1, 3) {
		t.Error("b1 must not dominate join")
	}
}

func TestLoopsDetection(t *testing.T) {
	f := loopFunc(t)
	c := BuildCFG(f)
	loops := c.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 {
		t.Errorf("header = b%d, want b1", l.Header)
	}
	if len(l.Latches) != 1 || l.Latches[0] != 2 {
		t.Errorf("latches = %v, want [2]", l.Latches)
	}
	if !l.Blocks[1] || !l.Blocks[2] || l.Blocks[0] || l.Blocks[3] {
		t.Errorf("body = %v", l.Blocks)
	}
	if len(l.Exits) != 1 || l.Exits[0] != (LoopExit{From: 1, To: 3}) {
		t.Errorf("exits = %v", l.Exits)
	}
	if l.Parent != -1 {
		t.Errorf("parent = %d, want -1", l.Parent)
	}
}

func TestNestedLoops(t *testing.T) {
	bd := prog.NewBuilder("n")
	f := bd.Func("main")
	entry := f.Block()  // b0
	oHdr := f.Block()   // b1 outer header
	iHdr := f.Block()   // b2 inner header
	iBody := f.Block()  // b3 inner body (latch of inner)
	oLatch := f.Block() // b4 outer latch
	exit := f.Block()   // b5

	f.SetBlock(entry)
	f.MovI(0, 0)
	f.MovI(1, 10)
	f.Br(oHdr)
	f.SetBlock(oHdr)
	f.BrIf(0, isa.CondGE, 1, exit, iHdr)
	f.SetBlock(iHdr)
	f.BrIf(2, isa.CondGE, 1, oLatch, iBody)
	f.SetBlock(iBody)
	f.AddI(2, 2, 1)
	f.Br(iHdr)
	f.SetBlock(oLatch)
	f.AddI(0, 0, 1)
	f.MovI(2, 0)
	f.Br(oHdr)
	f.SetBlock(exit)
	f.Halt()
	bd.Program()

	c := BuildCFG(f.Raw())
	loops := c.Loops()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	// Outermost-first ordering.
	outer, inner := loops[0], loops[1]
	if outer.Header != 1 || inner.Header != 2 {
		t.Fatalf("headers = b%d,b%d, want b1,b2", outer.Header, inner.Header)
	}
	if inner.Parent != 0 {
		t.Errorf("inner.Parent = %d, want 0", inner.Parent)
	}
	if outer.Parent != -1 {
		t.Errorf("outer.Parent = %d, want -1", outer.Parent)
	}
	if !outer.Blocks[2] || !outer.Blocks[3] || !outer.Blocks[4] {
		t.Errorf("outer body missing inner blocks: %v", outer.Blocks)
	}
	if inner.Blocks[4] {
		t.Errorf("inner body must not contain outer latch: %v", inner.Blocks)
	}
	hs := c.LoopHeaders()
	if !hs[1] || !hs[2] || hs[0] || hs[5] {
		t.Errorf("headers = %v", hs)
	}
}

func TestRegSetBasics(t *testing.T) {
	var s RegSet
	s.Add(3)
	s.Add(31)
	if !s.Has(3) || !s.Has(31) || s.Has(4) {
		t.Errorf("set membership broken: %b", s)
	}
	if s.Count() != 2 {
		t.Errorf("count = %d", s.Count())
	}
	s.Remove(3)
	if s.Has(3) || s.Count() != 1 {
		t.Errorf("remove broken: %b", s)
	}
	regs := s.Regs()
	if len(regs) != 1 || regs[0] != 31 {
		t.Errorf("regs = %v", regs)
	}
}

func TestRegSetProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		sa, sb := RegSet(a), RegSet(b)
		u := sa.Union(sb)
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if u.Has(r) != (sa.Has(r) || sb.Has(r)) {
				return false
			}
		}
		return u.Count() == len(u.Regs())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLivenessLoop(t *testing.T) {
	f := loopFunc(t)
	c := BuildCFG(f)
	lv := ComputeLiveness(c)

	// r0 (induction) and r1 (bound) are live into the header.
	if !lv.LiveIn[1].Has(0) || !lv.LiveIn[1].Has(1) {
		t.Errorf("header live-in = %v", lv.LiveIn[1].Regs())
	}
	// Body defines r0 and it is live-out (used next iteration).
	if !lv.LiveOut[2].Has(0) {
		t.Errorf("body live-out = %v", lv.LiveOut[2].Regs())
	}
	// Entry has no live-ins beyond nothing (r0,r1 defined there).
	if lv.LiveIn[0].Has(0) || lv.LiveIn[0].Has(1) {
		t.Errorf("entry live-in = %v", lv.LiveIn[0].Regs())
	}
}

func TestLivenessDiamond(t *testing.T) {
	f := diamond(t)
	c := BuildCFG(f)
	lv := ComputeLiveness(c)
	// r3 is live into the join (emitted there).
	if !lv.LiveIn[3].Has(3) {
		t.Errorf("join live-in = %v", lv.LiveIn[3].Regs())
	}
	// r1 is live into b1 (copied) and b2 (added).
	if !lv.LiveIn[1].Has(1) || !lv.LiveIn[2].Has(1) {
		t.Error("r1 must be live into both branch arms")
	}
	// r2 is live into b2 only.
	if lv.LiveIn[1].Has(2) {
		t.Error("r2 must not be live into b1")
	}
}

func TestLivenessRetIsAllLive(t *testing.T) {
	bd := prog.NewBuilder("r")
	f := bd.Func("leaf")
	f.Block()
	f.MovI(0, 1)
	f.Ret()
	bd.Program()
	c := BuildCFG(f.Raw())
	lv := ComputeLiveness(c)
	// Conservative contract: everything live at Ret except what the block
	// itself defines... LiveOut includes all regs.
	if lv.LiveOut[0].Count() != int(isa.NumRegs) {
		t.Errorf("ret live-out count = %d, want %d", lv.LiveOut[0].Count(), isa.NumRegs)
	}
}

func TestLiveAt(t *testing.T) {
	f := diamond(t)
	c := BuildCFG(f)
	lv := ComputeLiveness(c)
	// In b2 ("add r3, r1, r2; br"), before the add r1 and r2 are live and r3
	// is not.
	live := lv.LiveAt(c.F, 2, 0)
	if !live.Has(1) || !live.Has(2) {
		t.Errorf("live before add = %v", live.Regs())
	}
	if live.Has(3) {
		t.Errorf("r3 must not be live before its def: %v", live.Regs())
	}
	// After the add (before the br), r3 is live, r1/r2 are dead.
	live = lv.LiveAt(c.F, 2, 1)
	if !live.Has(3) || live.Has(1) || live.Has(2) {
		t.Errorf("live after add = %v", live.Regs())
	}
}

func TestLivenessFixpointProperty(t *testing.T) {
	// Dataflow equations must hold at fixpoint for every reachable block:
	// LiveIn = Use ∪ (LiveOut − Def); LiveOut = ∪ succ LiveIn (plus all-regs
	// at Ret blocks).
	for _, mk := range []func(*testing.T) *prog.Func{diamond, loopFunc} {
		f := mk(t)
		c := BuildCFG(f)
		lv := ComputeLiveness(c)
		for _, b := range c.RPO {
			wantIn := lv.Use[b] | (lv.LiveOut[b] &^ lv.Def[b])
			if lv.LiveIn[b] != wantIn {
				t.Errorf("block b%d: LiveIn equation violated", b)
			}
			var wantOut RegSet
			if tm, ok := f.Blocks[b].Terminator(); ok && tm.Op == isa.OpRet {
				wantOut = RegSet(1<<isa.NumRegs - 1)
			}
			for _, s := range c.Succ[b] {
				wantOut = wantOut.Union(lv.LiveIn[s])
			}
			if lv.LiveOut[b] != wantOut {
				t.Errorf("block b%d: LiveOut equation violated", b)
			}
		}
	}
}
