// Package analysis provides the control-flow and dataflow analyses the Capri
// compiler is built on: reverse postorder, dominators, natural-loop
// detection, per-block liveness, and backward slices for checkpoint pruning.
// All analyses operate on a single function at a time.
package analysis

import (
	"capri/internal/prog"
)

// CFG caches successor and predecessor edges for a function.
type CFG struct {
	F     *prog.Func
	Succ  [][]int
	Pred  [][]int
	RPO   []int // reverse postorder of reachable blocks, entry first
	InRPO []int // block ID -> position in RPO, -1 if unreachable
}

// BuildCFG computes edges and reverse postorder for f.
func BuildCFG(f *prog.Func) *CFG {
	n := len(f.Blocks)
	c := &CFG{
		F:     f,
		Succ:  make([][]int, n),
		Pred:  make([][]int, n),
		InRPO: make([]int, n),
	}
	for _, b := range f.Blocks {
		c.Succ[b.ID] = b.Succs(nil)
		for _, s := range c.Succ[b.ID] {
			c.Pred[s] = append(c.Pred[s], b.ID)
		}
	}
	// Iterative postorder DFS from the entry.
	visited := make([]bool, n)
	type frame struct {
		b    int
		next int
	}
	var post []int
	stack := []frame{{f.Entry, 0}}
	visited[f.Entry] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(c.Succ[fr.b]) {
			s := c.Succ[fr.b][fr.next]
			fr.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, fr.b)
		stack = stack[:len(stack)-1]
	}
	c.RPO = make([]int, len(post))
	for i := range post {
		c.RPO[i] = post[len(post)-1-i]
	}
	for i := range c.InRPO {
		c.InRPO[i] = -1
	}
	for i, b := range c.RPO {
		c.InRPO[b] = i
	}
	return c
}

// Reachable reports whether block b is reachable from the entry.
func (c *CFG) Reachable(b int) bool { return c.InRPO[b] >= 0 }

// Dominators computes the immediate-dominator tree using the classic
// Cooper-Harvey-Kennedy iterative algorithm. idom[entry] == entry;
// unreachable blocks get -1.
func (c *CFG) Dominators() []int {
	n := len(c.F.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	entry := c.F.Entry
	idom[entry] = entry

	intersect := func(a, b int) int {
		for a != b {
			for c.InRPO[a] > c.InRPO[b] {
				a = idom[a]
			}
			for c.InRPO[b] > c.InRPO[a] {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range c.RPO {
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range c.Pred[b] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b given an idom tree.
func Dominates(idom []int, entry, a, b int) bool {
	for {
		if b == a {
			return true
		}
		if b == entry || idom[b] == -1 {
			return false
		}
		b = idom[b]
	}
}

// Loop describes one natural loop.
type Loop struct {
	Header int
	// Latches are the blocks with back edges to the header.
	Latches []int
	// Blocks is the loop body including the header, as a set.
	Blocks map[int]bool
	// Exits are (from, to) edges leaving the loop.
	Exits []LoopExit
	// Parent is the index of the innermost enclosing loop, or -1.
	Parent int
}

// LoopExit is an edge that leaves a loop.
type LoopExit struct {
	From int // block inside the loop
	To   int // block outside the loop
}

// Loops finds all natural loops (back edges to a dominator). Loops with the
// same header are merged, matching LLVM's notion of a loop. The returned
// slice is ordered outermost-first for nesting purposes; Parent links record
// the nesting.
func (c *CFG) Loops() []Loop {
	idom := c.Dominators()
	entry := c.F.Entry
	byHeader := map[int]*Loop{}

	for _, b := range c.RPO {
		for _, s := range c.Succ[b] {
			if !c.Reachable(s) || !Dominates(idom, entry, s, b) {
				continue
			}
			// b -> s is a back edge; s is the header.
			l, ok := byHeader[s]
			if !ok {
				l = &Loop{Header: s, Blocks: map[int]bool{s: true}, Parent: -1}
				byHeader[s] = l
			}
			l.Latches = append(l.Latches, b)
			// Collect the loop body: reverse reachability from the latch to
			// the header.
			work := []int{b}
			for len(work) > 0 {
				x := work[len(work)-1]
				work = work[:len(work)-1]
				if l.Blocks[x] {
					continue
				}
				l.Blocks[x] = true
				for _, p := range c.Pred[x] {
					if c.Reachable(p) {
						work = append(work, p)
					}
				}
			}
		}
	}

	loops := make([]Loop, 0, len(byHeader))
	for _, l := range byHeader {
		for b := range l.Blocks {
			for _, s := range c.Succ[b] {
				if !l.Blocks[s] {
					l.Exits = append(l.Exits, LoopExit{From: b, To: s})
				}
			}
		}
		loops = append(loops, *l)
	}
	// Sort outermost-first (larger body first, header ID tiebreak) for a
	// deterministic order.
	for i := 0; i < len(loops); i++ {
		for j := i + 1; j < len(loops); j++ {
			li, lj := &loops[i], &loops[j]
			if len(lj.Blocks) > len(li.Blocks) ||
				(len(lj.Blocks) == len(li.Blocks) && lj.Header < li.Header) {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	// Parent links: innermost enclosing loop = smallest strictly-containing.
	for i := range loops {
		best, bestSize := -1, 1<<30
		for j := range loops {
			if i == j {
				continue
			}
			if len(loops[j].Blocks) <= len(loops[i].Blocks) {
				continue
			}
			if loops[j].Blocks[loops[i].Header] && len(loops[j].Blocks) < bestSize {
				best, bestSize = j, len(loops[j].Blocks)
			}
		}
		loops[i].Parent = best
	}
	return loops
}

// LoopHeaders returns the set of loop-header block IDs.
func (c *CFG) LoopHeaders() map[int]bool {
	hs := map[int]bool{}
	for _, l := range c.Loops() {
		hs[l.Header] = true
	}
	return hs
}
