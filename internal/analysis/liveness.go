package analysis

import (
	"capri/internal/isa"
	"capri/internal/prog"
)

// RegSet is a bit set over the 32 architectural registers.
type RegSet uint32

// Add inserts r into the set.
func (s *RegSet) Add(r isa.Reg) { *s |= 1 << r }

// Remove deletes r from the set.
func (s *RegSet) Remove(r isa.Reg) { *s &^= 1 << r }

// Has reports whether r is in the set.
func (s RegSet) Has(r isa.Reg) bool { return s&(1<<r) != 0 }

// Union returns s ∪ t.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Intersect returns s ∩ t.
func (s RegSet) Intersect(t RegSet) RegSet { return s & t }

// AllRegs is the set of every architectural register.
const AllRegs = RegSet(1<<isa.NumRegs - 1)

// Count returns the set's cardinality.
func (s RegSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// Regs returns the members in ascending order.
func (s RegSet) Regs() []isa.Reg {
	var out []isa.Reg
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// Liveness holds per-block live-in/live-out register sets.
type Liveness struct {
	LiveIn  []RegSet
	LiveOut []RegSet
	// Use and Def are the classic per-block gen/kill sets: Use[b] holds
	// registers read before any write in b, Def[b] registers written in b.
	Use []RegSet
	Def []RegSet
	// callUse, when set, extends an OpCall's register uses with the callee's
	// transitive may-read set, making the analysis call-aware.
	callUse func(callee int32) RegSet
}

// instUses collects an instruction's register uses, extending calls with the
// callee summary when the analysis is call-aware.
func (lv *Liveness) instUses(in *isa.Inst, dst []isa.Reg) []isa.Reg {
	dst = in.Uses(dst)
	if in.Op == isa.OpCall && lv.callUse != nil {
		for _, r := range lv.callUse(in.Callee).Regs() {
			dst = append(dst, r)
		}
	}
	return dst
}

// ComputeLiveness runs the standard backward dataflow over the function.
//
// Two conservative choices keep whole-system recovery sound:
//   - OpRet treats every register as potentially live in the caller's
//     continuation (the analysis is intra-procedural), so live-out at a Ret is
//     the function's "callee-saved everything" contract.
//   - OpCall is treated as using SP and defining nothing; registers live
//     across the call stay live (the callee may read args and the caller's
//     continuation may read anything preserved).
func ComputeLiveness(c *CFG) *Liveness { return ComputeLivenessWithRet(c, nil, AllRegs) }

// ComputeLivenessCallAware is ComputeLiveness with calls additionally using
// callUse(callee) — typically the callee's transitive may-read register
// summary. Passes that reason about where a value can still be consumed
// (checkpoint pruning, checkpoint LICM) must use this form: with plain
// intraprocedural liveness, a register consumed only inside a callee looks
// dead before the call, which is exactly the blind spot that would let an
// unsound transformation through.
func ComputeLivenessCallAware(c *CFG, callUse func(callee int32) RegSet) *Liveness {
	return ComputeLivenessWithRet(c, callUse, AllRegs)
}

// ComputeLivenessWithRet generalizes the live-at-return seed: retLive is the
// set treated as live-out at every OpRet instead of the conservative AllRegs.
// The semantic region verifier passes the function's interprocedural
// return-need summary here, so "live at a boundary" means "actually read on
// some path after the boundary" — in this function, in a callee (via
// callUse), or in a caller's continuation (via retLive) — rather than "not
// provably dead before an all-registers return".
func ComputeLivenessWithRet(c *CFG, callUse func(callee int32) RegSet, retLive RegSet) *Liveness {
	n := len(c.F.Blocks)
	lv := &Liveness{
		LiveIn:  make([]RegSet, n),
		LiveOut: make([]RegSet, n),
		Use:     make([]RegSet, n),
		Def:     make([]RegSet, n),
		callUse: callUse,
	}

	var uses []isa.Reg
	for _, b := range c.F.Blocks {
		var use, def RegSet
		for i := range b.Insts {
			in := &b.Insts[i]
			uses = lv.instUses(in, uses[:0])
			for _, r := range uses {
				if !def.Has(r) {
					use.Add(r)
				}
			}
			if d, ok := in.Def(); ok {
				def.Add(d)
			}
		}
		lv.Use[b.ID] = use
		lv.Def[b.ID] = def
	}

	changed := true
	for changed {
		changed = false
		// Iterate blocks in reverse RPO for fast convergence.
		for i := len(c.RPO) - 1; i >= 0; i-- {
			b := c.RPO[i]
			var out RegSet
			blk := c.F.Blocks[b]
			if t, ok := blk.Terminator(); ok && t.Op == isa.OpRet {
				out = retLive
			}
			for _, s := range c.Succ[b] {
				out = out.Union(lv.LiveIn[s])
			}
			in := lv.Use[b] | (out &^ lv.Def[b])
			if in != lv.LiveIn[b] || out != lv.LiveOut[b] {
				lv.LiveIn[b] = in
				lv.LiveOut[b] = out
				changed = true
			}
		}
	}
	return lv
}

// LiveAt returns the set of registers live immediately before instruction
// index idx of block b (idx == len(insts) means live-out of the block).
func (lv *Liveness) LiveAt(f *prog.Func, b, idx int) RegSet {
	live := lv.LiveOut[b]
	insts := f.Blocks[b].Insts
	var uses []isa.Reg
	for i := len(insts) - 1; i >= idx; i-- {
		in := &insts[i]
		if d, ok := in.Def(); ok {
			live.Remove(d)
		}
		uses = lv.instUses(in, uses[:0])
		for _, r := range uses {
			live.Add(r)
		}
	}
	return live
}
