package recovery

import (
	"reflect"
	"testing"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/workload"
)

// TestDoubleRecoveryConverges pins the idempotence half of the §5.4
// restartability argument, independent of the fault-injection engine: for
// every paper benchmark, recovering a crash image and immediately losing
// power again — before the resumed machine retires a single instruction —
// must recover to the byte-identical NVM image. The first recovery already
// folded every committed region into NVM and rolled back the interrupted
// one; the second starts from that consistent image with empty buffers and
// must change nothing. Both recovered machines must also still resume to the
// golden outcome.
func TestDoubleRecoveryConverges(t *testing.T) {
	benches := workload.All()
	if testing.Short() {
		benches = benches[:4]
	}
	for _, b := range benches {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			src := b.Build(1)
			const threshold = 64
			res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, threshold))
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig()
			cfg.Threshold = threshold
			if n := src.NumThreads(); n > cfg.Cores {
				cfg.Cores = n
			}
			g, err := RunGolden(res.Program, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, frac := range []uint64{3, 2} {
				crashAt := g.Instret / frac
				m, err := machine.New(res.Program, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.RunUntil(crashAt); err != nil {
					t.Fatal(err)
				}
				if m.Done() {
					continue
				}
				img, err := m.Crash()
				if err != nil {
					t.Fatal(err)
				}

				r1, _, err := machine.Recover(img)
				if err != nil {
					t.Fatalf("crash@%d: first recovery: %v", crashAt, err)
				}
				nvm1 := r1.NVMEntries()

				// Power fails again before the resumed run's first instruction.
				img2, err := r1.Crash()
				if err != nil {
					t.Fatal(err)
				}
				r2, rep2, err := machine.Recover(img2)
				if err != nil {
					t.Fatalf("crash@%d: second recovery: %v", crashAt, err)
				}
				if rep2.EntriesUndone != 0 || rep2.UndoneApplied != 0 {
					t.Fatalf("crash@%d: second recovery rolled back %d entries (%d applied) from a consistent image",
						crashAt, rep2.EntriesUndone, rep2.UndoneApplied)
				}
				nvm2 := r2.NVMEntries()
				if !reflect.DeepEqual(nvm1, nvm2) {
					t.Fatalf("crash@%d: double recovery diverged: %d vs %d NVM words (first mismatch hidden in bulk)",
						crashAt, len(nvm1), len(nvm2))
				}

				// Convergence without correctness would be vacuous: the twice-
				// recovered machine still finishes with the golden outcome.
				if err := r2.Run(); err != nil {
					t.Fatalf("crash@%d: resume after double recovery: %v", crashAt, err)
				}
				for th := range g.Outputs {
					if !reflect.DeepEqual(r2.Output(th), g.Outputs[th]) {
						t.Fatalf("crash@%d: thread %d output %v, golden %v",
							crashAt, th, r2.Output(th), g.Outputs[th])
					}
				}
			}
		})
	}
}
