package recovery

import (
	"testing"

	"capri/internal/compile"
	"capri/internal/progen"
)

// TestSoakFuzz is the long-running variant of the property tests: many
// random programs across thread counts, thresholds and optimization levels.
// Skipped with -short; the full `go test ./...` run exercises it so the
// recorded test output documents the campaign.
func TestSoakFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("soak campaign")
	}
	type cfgCase struct {
		threads   int
		threshold int
		level     compile.Level
	}
	cases := []cfgCase{
		{1, 8, compile.LevelCkpt},
		{1, 32, compile.LevelUnroll},
		{1, 256, compile.LevelLICM},
		{2, 16, compile.LevelLICM},
		{2, 64, compile.LevelPrune},
		{4, 32, compile.LevelLICM},
	}
	const perCase = 15
	ran := 0
	for ci, cc := range cases {
		gcfg := progen.DefaultConfig()
		gcfg.Threads = cc.threads
		for i := 0; i < perCase; i++ {
			seed := uint64(ci*1_000_003 + i*7919 + 101)
			p := progen.Generate(seed, gcfg)
			mcfg := testConfig()
			mcfg.Cores = cc.threads
			mcfg.Threshold = cc.threshold
			opts := compile.OptionsForLevel(cc.level, cc.threshold)
			if _, err := ValidateProgram(p, opts, mcfg, 8); err != nil {
				t.Errorf("case %d seed %d (threads=%d th=%d level=%s): %v",
					ci, seed, cc.threads, cc.threshold, cc.level, err)
			}
			ran++
		}
	}
	t.Logf("soak: %d random programs crash-swept", ran)
}
