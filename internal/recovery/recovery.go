// Package recovery provides the crash-consistency validation harness around
// the machine's §5.4 recovery protocol: golden-state capture, crash-point
// sweeps, and the whole-system recovery invariants of DESIGN.md expressed as
// checkable predicates. The protocol itself lives in the machine package
// (machine.Recover); this package is how the repository *proves* it.
package recovery

import (
	"fmt"
	"reflect"

	"capri/internal/audit"
	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/prog"
)

// Golden captures the reference outcome of a crash-free run.
type Golden struct {
	Outputs [][]uint64
	Mem     map[uint64]uint64
	Instret uint64
	Cycles  uint64
}

// RunGolden executes the compiled program to completion and captures its
// final state.
func RunGolden(p *prog.Program, cfg machine.Config) (*Golden, error) {
	m, err := machine.New(p, cfg)
	if err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return nil, err
	}
	g := &Golden{
		Mem:     m.MemSnapshot(),
		Instret: m.Instret(),
		Cycles:  m.Cycles(),
	}
	for t := 0; t < p.NumThreads(); t++ {
		g.Outputs = append(g.Outputs, m.Output(t))
	}
	return g, nil
}

// SweepResult aggregates a crash-injection sweep.
type SweepResult struct {
	Points         int // crash points injected
	RegionsRedone  int
	EntriesUndone  int
	UndoneApplied  int
	SlicesExecuted int
	EventsAudited  uint64 // provenance events checked (audited sweeps only)
}

// Sweep crashes fresh runs of the program at `points` evenly spaced
// instruction counts, recovers each, resumes, and verifies the recovered
// outcome against the golden state. The first violated invariant is
// returned as an error naming the crash point.
func Sweep(p *prog.Program, cfg machine.Config, g *Golden, points int) (*SweepResult, error) {
	return sweep(p, cfg, g, points, false)
}

// SweepAudited is Sweep with the online Fig. 7 auditor attached to every
// crashed run: a fresh auditor observes each run from its first store through
// crash, recovery replay, and resumed execution, and any invariant violation
// fails the sweep with the offending per-line event chain.
func SweepAudited(p *prog.Program, cfg machine.Config, g *Golden, points int) (*SweepResult, error) {
	return sweep(p, cfg, g, points, true)
}

func sweep(p *prog.Program, cfg machine.Config, g *Golden, points int, audited bool) (*SweepResult, error) {
	res := &SweepResult{}
	if points < 1 {
		points = 1
	}
	step := g.Instret / uint64(points)
	if step == 0 {
		step = 1
	}
	for crashAt := step; crashAt < g.Instret; crashAt += step {
		rep, aud, err := crashOnce(p, cfg, g, crashAt, audited)
		if err != nil {
			return res, err
		}
		if rep == nil {
			continue // program finished before the crash point
		}
		res.Points++
		res.RegionsRedone += rep.RegionsRedone
		res.EntriesUndone += rep.EntriesUndone
		res.UndoneApplied += rep.UndoneApplied
		res.SlicesExecuted += rep.SlicesExecuted
		if aud != nil {
			res.EventsAudited += aud.EventsAudited()
		}
	}
	return res, nil
}

// CrashOnce crashes one run at the given instruction count, recovers,
// resumes, and checks every recovery invariant. A nil report (with nil
// error) means the program finished before the crash point.
func CrashOnce(p *prog.Program, cfg machine.Config, g *Golden, crashAt uint64) (*machine.RecoveryReport, error) {
	rep, _, err := crashOnce(p, cfg, g, crashAt, false)
	return rep, err
}

// CrashOnceAudited is CrashOnce under the online auditor; the returned
// auditor exposes the event count and any violations (also folded into err).
func CrashOnceAudited(p *prog.Program, cfg machine.Config, g *Golden, crashAt uint64) (*machine.RecoveryReport, *audit.Auditor, error) {
	return crashOnce(p, cfg, g, crashAt, true)
}

func crashOnce(p *prog.Program, cfg machine.Config, g *Golden, crashAt uint64, audited bool) (*machine.RecoveryReport, *audit.Auditor, error) {
	m, err := machine.New(p, cfg)
	if err != nil {
		return nil, nil, err
	}
	var (
		aud *audit.Auditor
		tap audit.Sink
	)
	if audited && cfg.Capri {
		// A bounded flight recorder rides along so a violation carries its
		// per-line event chain without retaining the whole run.
		rec := audit.NewFlightRecorder(audit.DefaultRecorderCap)
		aud = audit.NewAuditor(m.AuditOptions())
		aud.AttachRecorder(rec)
		tap = audit.Tee(rec, aud)
		m.SetTap(tap)
	}
	if err := m.RunUntil(crashAt); err != nil {
		return nil, aud, fmt.Errorf("crash@%d: run: %w", crashAt, err)
	}
	if m.Done() {
		return nil, aud, nil
	}
	img, err := m.Crash()
	if err != nil {
		return nil, aud, fmt.Errorf("crash@%d: image: %w", crashAt, err)
	}
	var r *machine.Machine
	var rep *machine.RecoveryReport
	if tap != nil {
		// The auditor stays attached across the crash: it watches the
		// recovery replay itself and the resumed execution.
		r, rep, err = machine.RecoverInstrumented(img, nil, tap)
	} else {
		r, rep, err = machine.Recover(img)
	}
	if err != nil {
		return nil, aud, fmt.Errorf("crash@%d: recover: %w", crashAt, err)
	}
	// Invariant 7 (DESIGN.md): DRF programs never produce conflicting
	// cross-core undo entries.
	if rep.ConflictingUndo != 0 {
		return rep, aud, fmt.Errorf("crash@%d: %d conflicting cross-core undo entries", crashAt, rep.ConflictingUndo)
	}
	if err := r.Run(); err != nil {
		return rep, aud, fmt.Errorf("crash@%d: resume: %w", crashAt, err)
	}
	// Fig. 7 invariants: the online auditor must have seen a legal event
	// stream through crash, replay, and resumption.
	if aud != nil {
		if err := aud.Err(); err != nil {
			return rep, aud, fmt.Errorf("crash@%d: audit: %w", crashAt, err)
		}
	}
	// Invariant 2: end-to-end resumption equals the golden run.
	for t := range g.Outputs {
		if !reflect.DeepEqual(r.Output(t), g.Outputs[t]) {
			return rep, aud, fmt.Errorf("crash@%d: thread %d output %v, golden %v",
				crashAt, t, r.Output(t), g.Outputs[t])
		}
	}
	for a, v := range g.Mem {
		if got := r.MemSnapshot()[a]; got != v {
			return rep, aud, fmt.Errorf("crash@%d: mem[%#x] = %d, golden %d", crashAt, a, got, v)
		}
	}
	return rep, aud, nil
}

// ValidateProgram compiles a source program at the given options, runs the
// golden execution, and sweeps crash points — the one-call form used by the
// property-based tests and the capricrash command.
func ValidateProgram(src *prog.Program, opts compile.Options, cfg machine.Config, points int) (*SweepResult, error) {
	return validateProgram(src, opts, cfg, points, false)
}

// ValidateProgramAudited is ValidateProgram with every crashed run observed
// by the online Fig. 7 auditor (see SweepAudited).
func ValidateProgramAudited(src *prog.Program, opts compile.Options, cfg machine.Config, points int) (*SweepResult, error) {
	return validateProgram(src, opts, cfg, points, true)
}

func validateProgram(src *prog.Program, opts compile.Options, cfg machine.Config, points int, audited bool) (*SweepResult, error) {
	res, err := compile.Compile(src, opts)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	if cfg.Capri {
		cfg.Threshold = opts.Threshold
	}
	g, err := RunGolden(res.Program, cfg)
	if err != nil {
		return nil, fmt.Errorf("golden: %w", err)
	}
	return sweep(res.Program, cfg, g, points, audited)
}
