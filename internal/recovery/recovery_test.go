package recovery

import (
	"testing"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/progen"
)

// testConfig is a compact machine for crash sweeps.
func testConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	cfg.L2Size = 256 << 10
	cfg.DRAMSize = 1 << 20
	cfg.MaxSteps = 200_000_000
	return cfg
}

func TestGeneratedProgramsTerminate(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		if err := p.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := testConfig()
		cfg.Capri = false
		m, err := machine.New(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(m.Output(0)) == 0 {
			t.Fatalf("seed %d: no output", seed)
		}
	}
}

func TestGeneratedProgramsDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.Capri = false
	for seed := uint64(100); seed < 110; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		g1, err := RunGolden(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g2, err := RunGolden(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if g1.Instret != g2.Instret {
			t.Fatalf("seed %d: nondeterministic instret", seed)
		}
		for t2 := range g1.Outputs {
			for i := range g1.Outputs[t2] {
				if g1.Outputs[t2][i] != g2.Outputs[t2][i] {
					t.Fatalf("seed %d: nondeterministic output", seed)
				}
			}
		}
	}
}

// TestPropertyCrashRecoverySingleThread is the repository's strongest
// single-thread property test: random structured programs, random compiler
// settings, crash sweeps validated against the golden state — every crashed
// run observed by the online Fig. 7 auditor.
func TestPropertyCrashRecoverySingleThread(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	thresholds := []int{8, 32, 256}
	levels := []compile.Level{compile.LevelCkpt, compile.LevelUnroll, compile.LevelLICM}
	audited := uint64(0)
	for seed := 0; seed < seeds; seed++ {
		p := progen.Generate(uint64(seed)*7919+13, progen.DefaultConfig())
		th := thresholds[seed%len(thresholds)]
		lv := levels[seed%len(levels)]
		opts := compile.OptionsForLevel(lv, th)
		cfg := testConfig()
		cfg.Threshold = th
		res, err := ValidateProgramAudited(p, opts, cfg, 12)
		if err != nil {
			t.Errorf("seed %d (th=%d level=%s): %v", seed, th, lv, err)
			continue
		}
		audited += res.EventsAudited
	}
	if audited == 0 {
		t.Error("auditor observed no events across the whole property sweep")
	}
}

// TestPropertyCrashRecoveryMultiThread extends the property to 2-thread DRF
// programs with a lock-protected shared counter, under the auditor.
func TestPropertyCrashRecoveryMultiThread(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	gcfg := progen.DefaultConfig()
	gcfg.Threads = 2
	for seed := 0; seed < seeds; seed++ {
		p := progen.Generate(uint64(seed)*104729+7, gcfg)
		th := []int{16, 64}[seed%2]
		opts := compile.OptionsForLevel(compile.LevelLICM, th)
		cfg := testConfig()
		cfg.Threshold = th
		if _, err := ValidateProgramAudited(p, opts, cfg, 10); err != nil {
			t.Errorf("seed %d (th=%d): %v", seed, th, err)
		}
	}
}

func TestSweepReportsActivity(t *testing.T) {
	p := progen.Generate(42, progen.DefaultConfig())
	opts := compile.DefaultOptions()
	opts.Threshold = 16
	cfg := testConfig()
	cfg.Threshold = 16
	res, err := ValidateProgram(p, opts, cfg, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points == 0 {
		t.Error("sweep injected no crashes")
	}
	if res.RegionsRedone == 0 {
		t.Error("no regions were ever replayed from the proxy buffers")
	}
}

func TestCrashOnceNilWhenFinished(t *testing.T) {
	p := progen.Generate(1, progen.DefaultConfig())
	res, err := compile.Compile(p, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	g, err := RunGolden(res.Program, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CrashOnce(res.Program, cfg, g, g.Instret+1000)
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Error("crash beyond program end should report nil")
	}
}

func TestValidateRejectsBadCompile(t *testing.T) {
	p := progen.Generate(3, progen.DefaultConfig())
	if _, err := ValidateProgram(p, compile.Options{Threshold: -1}, testConfig(), 3); err == nil {
		t.Error("negative threshold accepted")
	}
}

// TestInlinedProgramsRecover extends the property tests to the inlining
// extension: generated programs compiled with inlining enabled must behave
// and recover exactly like their golden runs.
func TestInlinedProgramsRecover(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	gcfg := progen.DefaultConfig()
	gcfg.Threads = 2
	for seed := 0; seed < seeds; seed++ {
		p := progen.Generate(uint64(seed)*6151+17, gcfg)
		opts := compile.OptionsForLevel(compile.LevelLICM, 32)
		opts.Inline = true
		cfg := testConfig()
		cfg.Threshold = 32
		if _, err := ValidateProgram(p, opts, cfg, 8); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestInlineMatchesNonInlineOutputs compiles the same generated programs
// with and without inlining and compares final outputs of full runs.
func TestInlineMatchesNonInlineOutputs(t *testing.T) {
	gcfg := progen.DefaultConfig()
	gcfg.Threads = 1
	for seed := uint64(0); seed < 8; seed++ {
		p := progen.Generate(seed*211+9, gcfg)
		run := func(inline bool) []uint64 {
			opts := compile.DefaultOptions()
			opts.Inline = inline
			res, err := compile.Compile(p, opts)
			if err != nil {
				t.Fatal(err)
			}
			m, err := machine.New(res.Program, testConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			return m.Output(0)
		}
		a, b := run(false), run(true)
		if len(a) != len(b) {
			t.Fatalf("seed %d: output lengths differ", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: output[%d] differs: %d vs %d", seed, i, a[i], b[i])
			}
		}
	}
}

// TestPropertyCrashRecoveryBarriers fuzzes SPMD programs whose workers
// synchronize through sense-reversing barriers in persistent memory —
// crashes land inside barrier episodes and recovery must release everyone.
func TestPropertyCrashRecoveryBarriers(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	gcfg := progen.DefaultConfig()
	gcfg.Threads = 3
	gcfg.Barriers = true
	for seed := 0; seed < seeds; seed++ {
		p := progen.Generate(uint64(seed)*48611+29, gcfg)
		opts := compile.OptionsForLevel(compile.LevelLICM, 32)
		cfg := testConfig()
		cfg.Cores = 3
		cfg.Threshold = 32
		if _, err := ValidateProgramAudited(p, opts, cfg, 10); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestCrashOnceAuditedReportsEvents pins the audited single-crash API: the
// returned auditor must have observed a non-trivial event stream and hold no
// violations for an unmutated run.
func TestCrashOnceAuditedReportsEvents(t *testing.T) {
	p := progen.Generate(42, progen.DefaultConfig())
	opts := compile.DefaultOptions()
	opts.Threshold = 16
	res, err := compile.Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Threshold = 16
	g, err := RunGolden(res.Program, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, aud, err := CrashOnceAudited(res.Program, cfg, g, g.Instret/2)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("crash point not reached")
	}
	if aud == nil || aud.EventsAudited() == 0 {
		t.Fatal("auditor observed no events")
	}
	if aud.ViolationCount() != 0 {
		t.Fatalf("unmutated run flagged: %v", aud.Err())
	}
}
