package compile

import (
	"strings"
	"testing"

	"capri/internal/isa"
	"capri/internal/prog"
	"capri/internal/workload"
)

// TestVerifierMatrix runs the semantic verifier after every pass for every
// workload benchmark at every optimization level across small, default and
// large thresholds. This is the acceptance gate for the whole pipeline: the
// verifier must be green everywhere without weakening any check.
func TestVerifierMatrix(t *testing.T) {
	thresholds := []int{64, 256, 1024}
	for _, b := range workload.All() {
		p := b.Build(1)
		for _, l := range Levels {
			for _, th := range thresholds {
				opts := OptionsForLevel(l, th)
				opts.VerifyAfter = VerifyAfterAll
				if _, err := Compile(p, opts); err != nil {
					t.Errorf("%s %s@%d: %v", b.Name, l, th, err)
				}
			}
		}
	}
}

// compiledBench compiles one benchmark at the default configuration and
// returns the output program plus the contract it was compiled under.
func compiledBench(t *testing.T, name string) (*prog.Program, Contract) {
	t.Helper()
	b, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	res, err := Compile(b.Build(1), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Program, FinalContract(opts)
}

func TestMutationDroppedBoundaryRejected(t *testing.T) {
	p, c := compiledBench(t, "radix")
	// Drop the first non-entry boundary (flag and marker instruction) and the
	// verifier must name the function and block. Non-entry, because entry
	// boundaries are also checked structurally.
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if !b.BoundaryAt || b.ID == f.Entry {
				continue
			}
			b.BoundaryAt = false
			if len(b.Insts) > 0 && b.Insts[0].Op == isa.OpBoundary {
				b.Insts = b.Insts[1:]
			}
			err := Check(p, c)
			if err == nil {
				t.Fatalf("verifier accepted func %s with boundary b%d dropped", f.Name, b.ID)
			}
			if !strings.Contains(err.Error(), f.Name) {
				t.Errorf("diagnostic does not name the function: %v", err)
			}
			t.Logf("diagnostic: %v", err)
			return
		}
	}
	t.Fatal("no non-entry boundary found to drop")
}

func TestMutationDeletedCheckpointRejected(t *testing.T) {
	p, c := compiledBench(t, "radix")
	if err := Check(p, c); err != nil {
		t.Fatalf("pristine program rejected: %v", err)
	}
	// Not every checkpoint is load-bearing under the verifier's tighter
	// liveness (insertion is deliberately more conservative), but deleting
	// checkpoints one at a time must trip the verifier on at least one.
	caught := 0
	total := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Insts); i++ {
				if b.Insts[i].Op != isa.OpCkpt {
					continue
				}
				total++
				save := b.Insts
				mut := append(append([]isa.Inst{}, b.Insts[:i]...), b.Insts[i+1:]...)
				b.Insts = mut
				if err := Check(p, c); err != nil {
					caught++
					if !strings.Contains(err.Error(), "func ") || !strings.Contains(err.Error(), "b") {
						t.Errorf("diagnostic lacks func/block context: %v", err)
					}
					if caught == 1 {
						t.Logf("diagnostic: %v", err)
					}
				}
				b.Insts = save
			}
		}
	}
	if total == 0 {
		t.Fatal("compiled benchmark has no checkpoints")
	}
	if caught == 0 {
		t.Fatalf("deleting any of %d checkpoints went undetected", total)
	}
	t.Logf("%d of %d checkpoint deletions caught", caught, total)
}

func TestMutationOversizedRegionRejected(t *testing.T) {
	p, c := compiledBench(t, "radix")
	// Shrink the contract threshold below what the program was compiled for:
	// some region must now overflow, and the diagnostic names it.
	c.Threshold = 1
	err := Check(p, c)
	if err == nil {
		t.Fatal("threshold-1 contract accepted a threshold-256 program")
	}
	if !strings.Contains(err.Error(), "threshold") || !strings.Contains(err.Error(), "func ") {
		t.Errorf("diagnostic lacks threshold/function context: %v", err)
	}
	t.Logf("diagnostic: %v", err)
}

// sliceBench finds a compiled benchmark carrying at least one recovery slice
// (pruning material exists by construction in the suite).
func sliceBench(t *testing.T) (*prog.Program, Contract, *prog.Block, isa.Reg) {
	t.Helper()
	for _, b := range workload.All() {
		opts := DefaultOptions()
		res, err := Compile(b.Build(1), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range res.Program.Funcs {
			for _, blk := range f.Blocks {
				for r := range blk.RecoverySlices {
					return res.Program, FinalContract(opts), blk, r
				}
			}
		}
	}
	t.Skip("no benchmark produces recovery slices at the default configuration")
	return nil, Contract{}, nil, 0
}

func TestMutationCorruptedSliceRejected(t *testing.T) {
	p, c, blk, r := sliceBench(t)
	slice := blk.RecoverySlices[r]

	// A slice that no longer ends by defining its register.
	bad := append([]isa.Inst{}, slice...)
	bad[len(bad)-1].Rd = bad[len(bad)-1].Rd + 1
	blk.RecoverySlices[r] = bad
	if err := Check(p, c); err == nil {
		t.Error("slice with wrong final def accepted")
	} else {
		t.Logf("diagnostic: %v", err)
	}

	// An empty slice.
	blk.RecoverySlices[r] = nil
	if err := Check(p, c); err == nil {
		t.Error("empty recovery slice accepted")
	}

	// A non-re-executable instruction inside the slice.
	withLoad := append([]isa.Inst{{Op: isa.OpLoad, Rd: slice[len(slice)-1].Rd, Ra: 0}}, slice...)
	blk.RecoverySlices[r] = withLoad
	if err := Check(p, c); err == nil {
		t.Error("slice containing a load accepted")
	}
	blk.RecoverySlices[r] = slice

	// Slices may only live on boundary blocks.
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.BoundaryAt || b == blk {
				continue
			}
			b.RecoverySlices = map[isa.Reg][]isa.Inst{r: slice}
			if err := Check(p, c); err == nil {
				t.Error("recovery slice on non-boundary block accepted")
			}
			b.RecoverySlices = nil
			return
		}
	}
}

func TestMutationMisplacedBoundaryInstRejected(t *testing.T) {
	p, c := compiledBench(t, "radix")
	// An OpBoundary in a non-boundary block violates the materialized
	// contract.
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.BoundaryAt || len(b.Insts) == 0 {
				continue
			}
			b.Insts = append([]isa.Inst{{Op: isa.OpBoundary}}, b.Insts...)
			err := Check(p, c)
			if err == nil {
				t.Fatal("stray OpBoundary accepted")
			}
			t.Logf("diagnostic: %v", err)
			return
		}
	}
}

func TestVerifyAfterSelectors(t *testing.T) {
	b, _ := workload.ByName("radix")
	p := b.Build(1)

	for _, va := range append([]string{"", VerifyAfterAll}, AllPassNames...) {
		opts := DefaultOptions()
		opts.VerifyAfter = va
		switch err := validateVerifyAfter(opts); {
		case va == PassInline:
			// Inlining is off in the default pipeline: selecting it must be
			// rejected as not-in-this-pipeline, not silently ignored.
			if err == nil || !strings.Contains(err.Error(), "not in this pipeline") {
				t.Errorf("VerifyAfter=%q: want not-in-pipeline error, got %v", va, err)
			}
		case err != nil:
			t.Errorf("VerifyAfter=%q rejected: %v", va, err)
		default:
			if _, err := Compile(p, opts); err != nil {
				t.Errorf("compile with VerifyAfter=%q: %v", va, err)
			}
		}
	}

	opts := DefaultOptions()
	opts.VerifyAfter = "nonsense"
	if _, err := Compile(p, opts); err == nil || !strings.Contains(err.Error(), "unknown pass") {
		t.Errorf("unknown VerifyAfter selector: got %v", err)
	}
}

func TestPassStatsPopulated(t *testing.T) {
	b, _ := workload.ByName("radix")
	res := MustCompile(b.Build(1), DefaultOptions())
	want := PassNames(DefaultOptions())
	if len(res.Stats.Passes) != len(want) {
		t.Fatalf("got %d pass stats, want %d (%v)", len(res.Stats.Passes), len(want), want)
	}
	for i, ps := range res.Stats.Passes {
		if ps.Name != want[i] {
			t.Errorf("pass %d: got %q, want %q", i, ps.Name, want[i])
		}
		if ps.Runs == 0 {
			t.Errorf("pass %q never ran", ps.Name)
		}
	}
	// The fixpoint group passes may run multiple rounds; the straight passes
	// exactly once.
	for _, ps := range res.Stats.Passes {
		switch ps.Name {
		case PassRegions, PassCkpt:
		default:
			if ps.Runs != 1 {
				t.Errorf("straight pass %q ran %d times", ps.Name, ps.Runs)
			}
		}
	}
}

func TestCheckZeroContractOnRawProgram(t *testing.T) {
	// The zero contract (structure + canonical form) accepts a canonicalized
	// but uncompiled program and rejects a structurally broken one.
	b, _ := workload.ByName("radix")
	p := b.Build(1)
	canonicalize(p)
	if err := Check(p, Contract{}); err != nil {
		t.Fatalf("canonical raw program rejected: %v", err)
	}
}
