package compile

import (
	"capri/internal/isa"
	"capri/internal/prog"
)

// removeDeadFuncs drops functions unreachable from the thread entries via
// the call graph — inlining routinely orphans its callees — and remaps
// function IDs in calls, return sites and thread entries. Returns the number
// of functions removed.
func removeDeadFuncs(p *prog.Program) int {
	reachable := map[int]bool{}
	var work []int
	for t := 0; t < p.NumThreads(); t++ {
		e := p.EntryFunc(t)
		if !reachable[e] {
			reachable[e] = true
			work = append(work, e)
		}
	}
	for len(work) > 0 {
		fi := work[len(work)-1]
		work = work[:len(work)-1]
		for _, b := range p.Funcs[fi].Blocks {
			for i := range b.Insts {
				if b.Insts[i].Op == isa.OpCall {
					c := int(b.Insts[i].Callee)
					if !reachable[c] {
						reachable[c] = true
						work = append(work, c)
					}
				}
			}
		}
	}

	if len(reachable) == len(p.Funcs) {
		return 0
	}

	// Compact: old ID -> new ID.
	remap := make([]int, len(p.Funcs))
	var kept []*prog.Func
	for _, f := range p.Funcs {
		if reachable[f.ID] {
			remap[f.ID] = len(kept)
			f.ID = len(kept)
			kept = append(kept, f)
		} else {
			remap[f.ID] = -1
		}
	}
	removed := len(p.Funcs) - len(kept)
	p.Funcs = kept

	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insts {
				if b.Insts[i].Op == isa.OpCall {
					b.Insts[i].Callee = int32(remap[b.Insts[i].Callee])
				}
			}
		}
	}
	for i := range p.RetSites {
		if nf := remap[p.RetSites[i].Func]; nf >= 0 {
			p.RetSites[i].Func = nf
		} else {
			// Return sites inside removed functions are never referenced
			// (their call instructions are gone); point them at function 0's
			// entry so the table stays index-valid for Verify.
			p.RetSites[i] = prog.RetSite{Func: 0, Block: p.Funcs[0].Entry, Index: 0}
		}
	}
	for i := range p.ThreadEntries {
		p.ThreadEntries[i] = remap[p.ThreadEntries[i]]
	}
	return removed
}
