package compile

import (
	"encoding/json"

	"capri/internal/prog"
	"capri/internal/resultstore"
)

// Persist is the optional on-disk tier behind the in-memory compile cache.
// *resultstore.Store satisfies it directly. The cache trusts a hit's payload
// because the key already binds everything that determines the output — the
// source program fingerprint, the canonicalized options, and the caller's
// toolchain salt — and the store verifies content checksums on every read,
// so a decoded payload can only be the bytes a previous compile of the same
// inputs wrote.
type Persist interface {
	// Get returns the payload stored under k, if any.
	Get(k resultstore.Key) ([]byte, bool)
	// Put records a payload under k; it may buffer until the store flushes.
	Put(k resultstore.Key, v []byte)
}

// SetPersist attaches a persistent tier behind the in-memory cache. salt is
// folded into every persistent key and must fingerprint the compiler's
// observable semantics (the sweep package's ToolchainSalt); without it, a
// compiler change would happily replay programs compiled by older binaries.
// Must be called before the first Compile; the tier sits behind the same
// per-entry singleflight, so concurrent misses on one key do one disk probe
// and at most one real compilation.
func (c *Cache) SetPersist(p Persist, salt []byte) {
	c.mu.Lock()
	c.persist = p
	c.salt = append([]byte(nil), salt...)
	c.mu.Unlock()
}

// storedCompile is the persistent tier's payload: the compiled program and
// its statistics. Pass wall times are measurement, not result — they are
// zeroed so stored batches stay byte-deterministic.
type storedCompile struct {
	Program *prog.Program `json:"program"`
	Stats   Stats         `json:"stats"`
}

// StripTimings returns the stats with per-pass wall times zeroed — the form
// every content-addressed store uses, since timings are measurement noise,
// not compilation output.
func (s Stats) StripTimings() Stats {
	s.Passes = append([]PassStat(nil), s.Passes...)
	for i := range s.Passes {
		s.Passes[i].WallNS = 0
		s.Passes[i].VerifyNS = 0
	}
	return s
}

// persistKey derives the on-disk key for a cache key.
func (c *Cache) persistKey(k cacheKey) resultstore.Key {
	optsJSON, err := json.Marshal(k.opts)
	if err != nil {
		panic(err) // Options is a plain struct; cannot fail
	}
	return resultstore.KeyOf("capri/compile", c.salt, k.prog[:], optsJSON)
}

// encodeStored renders a successful compile for the persistent tier.
func encodeStored(res *Result) ([]byte, error) {
	return json.Marshal(storedCompile{Program: res.Program, Stats: res.Stats.StripTimings()})
}

// decodeStored parses a persistent-tier payload back into a Result. A
// payload that does not decode to a program is reported as absent — the
// caller falls back to compiling.
func decodeStored(raw []byte, opts Options) (*Result, bool) {
	var sc storedCompile
	if err := json.Unmarshal(raw, &sc); err != nil || sc.Program == nil {
		return nil, false
	}
	return &Result{Program: sc.Program, Options: opts, Stats: sc.Stats}, true
}
