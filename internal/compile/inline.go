package compile

import (
	"capri/internal/isa"
	"capri/internal/prog"
)

// Function inlining — the region-lengthening direction the paper's §6.3
// leaves as future work ("devise a new algorithm to formulate regions with
// having more instructions"). Function entries and return sites are
// mandatory region boundaries, so call-dense code is stuck with short
// regions no matter the threshold; inlining small leaf callees removes both
// boundaries at once and lets region formation run through the former call.
//
// Disabled by default (Options.Inline) so the figure pipeline matches the
// paper's pass set; BenchmarkInlining quantifies the win on the call-bound
// benchmarks.
//
// A call site is inlined when the callee:
//   - contains no calls itself (leaf), so no token fix-ups cascade;
//   - has at most InlineMaxInsts instructions;
//   - does not need the in-memory return linkage for anything else (always
//     true for our lowering: OpRet is the only consumer).
//
// The transformation replaces `call G` with a branch to a copy of G's blocks
// whose Rets branch to the original return site. The caller's push/pop pair
// disappears with the call, keeping SP balanced.

// defaultInlineMax bounds inlined callee size when Options.InlineMaxInsts
// is zero.
const defaultInlineMax = 48

// inlineStats reports what the pass did.
type inlineStats struct {
	CallsInlined int
}

// inlineCalls inlines eligible call sites in every function of p. The
// program must already be canonical (calls are last-before-terminator and
// return sites begin blocks).
func inlineCalls(p *prog.Program, maxInsts int) inlineStats {
	if maxInsts <= 0 {
		maxInsts = defaultInlineMax
	}
	var st inlineStats
	for _, f := range p.Funcs {
		// Repeat until no eligible site remains (an inlined body cannot add
		// calls — only leaves are inlined — so this terminates).
		for {
			if !inlineOneCall(p, f, maxInsts) {
				break
			}
			st.CallsInlined++
		}
	}
	return st
}

// eligibleCallee reports whether g can be inlined.
func eligibleCallee(g *prog.Func, maxInsts int) bool {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Insts)
		for i := range b.Insts {
			if b.Insts[i].Op == isa.OpCall {
				return false // leaves only
			}
		}
	}
	return n <= maxInsts
}

// inlineOneCall finds and inlines one eligible call site in f. Reports
// whether it did.
func inlineOneCall(p *prog.Program, f *prog.Func, maxInsts int) bool {
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Op != isa.OpCall {
				continue
			}
			callee := p.Funcs[in.Callee]
			if callee == f || !eligibleCallee(callee, maxInsts) {
				continue
			}
			performInline(p, f, b, i, callee)
			return true
		}
	}
	return false
}

// performInline splices a copy of callee into f at the call site (block b,
// index i). Canonical form guarantees the call is the last non-terminator
// and the return site starts another block.
func performInline(p *prog.Program, f *prog.Func, b *prog.Block, i int, callee *prog.Func) {
	rs := p.RetSites[b.Insts[i].Imm]

	// Copy the callee's blocks into f, remapping internal branch targets.
	copyOf := make(map[int]int, len(callee.Blocks))
	for _, cb := range callee.Blocks {
		copyOf[cb.ID] = f.NewBlock().ID
	}
	for _, cb := range callee.Blocks {
		dst := f.Blocks[copyOf[cb.ID]]
		dst.Insts = append(dst.Insts, cb.Insts...)
		for j := range dst.Insts {
			cin := &dst.Insts[j]
			switch cin.Op {
			case isa.OpBr:
				cin.Target = int32(copyOf[int(cin.Target)])
			case isa.OpBrIf:
				cin.Target = int32(copyOf[int(cin.Target)])
				cin.Else = int32(copyOf[int(cin.Else)])
			case isa.OpRet:
				// Return becomes a jump to the original return site.
				*cin = isa.Inst{Op: isa.OpBr, Target: int32(rs.Block)}
			}
		}
	}

	// Replace the call with a branch into the copied entry, dropping any
	// trailing instructions of b (canonically just the Br to the return
	// site, which the copied Rets now perform).
	b.Insts = append(b.Insts[:i:i], isa.Inst{Op: isa.OpBr, Target: int32(copyOf[callee.Entry])})
}
