package compile

import (
	"reflect"
	"testing"

	"capri/internal/resultstore"
	"capri/internal/workload"
)

func TestPersistentTierRoundTrip(t *testing.T) {
	b, err := workload.ByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	p := b.Build(1)
	salt := []byte("test-salt-v1")

	dir := t.TempDir()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCache()
	c1.SetPersist(store, salt)
	r1, err := c1.Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s := c1.Stats(); s.Misses != 1 || s.DiskHits != 0 {
		t.Fatalf("cold stats: %+v", s)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process (new in-memory cache, reopened store) must replay the
	// compilation from disk without running the compiler.
	store2, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	c2 := NewCache()
	c2.SetPersist(store2, salt)
	r2, err := c2.Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s := c2.Stats(); s.DiskHits != 1 || s.Misses != 0 {
		t.Fatalf("warm stats: %+v", s)
	}
	if r1.Program.Fingerprint() != r2.Program.Fingerprint() {
		t.Fatal("replayed program differs from compiled program")
	}
	if !reflect.DeepEqual(r1.Stats.StripTimings(), r2.Stats) {
		t.Fatalf("replayed stats differ:\n%+v\n%+v", r1.Stats.StripTimings(), r2.Stats)
	}

	// A different toolchain salt must not see the old entries.
	c3 := NewCache()
	c3.SetPersist(store2, []byte("test-salt-v2"))
	if _, err := c3.Compile(p, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if s := c3.Stats(); s.DiskHits != 0 || s.Misses != 1 {
		t.Fatalf("salted stats: %+v", s)
	}
}

func TestPersistentTierGarbagePayloadFallsBack(t *testing.T) {
	b, err := workload.ByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	p := b.Build(1)
	salt := []byte("s")
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Poison the exact key the cache will probe.
	c := NewCache()
	c.SetPersist(store, salt)
	store.Put(c.persistKey(cacheKey{prog: p.Fingerprint(), opts: DefaultOptions().canonical()}), []byte("not json"))

	if _, err := c.Compile(p, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// Undecodable payload is a miss: the compiler ran.
	if s := c.Stats(); s.DiskHits != 0 || s.Misses != 1 {
		t.Fatalf("stats: %+v", s)
	}
}
