package compile

import (
	"fmt"

	"capri/internal/analysis"
	"capri/internal/isa"
	"capri/internal/prog"
)

// Stats reports what the compiler did and the static region shape of the
// output — the raw material for the paper's Figures 10 and 11.
type Stats struct {
	// Regions is the number of static regions formed (boundary blocks).
	Regions int
	// CkptsInserted counts checkpoint stores inserted by §4.2.
	CkptsInserted int
	// CkptsPruned counts checkpoints removed by optimal pruning (§4.4.1).
	CkptsPruned int
	// CkptsHoisted counts def+checkpoint pairs LICM moved out of loops
	// (§4.4.2).
	CkptsHoisted int
	// LoopsUnrolled / UnrollCopies report speculative unrolling activity
	// (§4.3).
	LoopsUnrolled int
	UnrollCopies  int
	// CallsInlined counts call sites removed by the inlining extension.
	CallsInlined int
	// Static program shape after compilation.
	Static prog.StaticStats
}

// Result is a compiled program plus its statistics.
type Result struct {
	Program *prog.Program
	Options Options
	Stats   Stats
}

// Compile runs the Capri pass pipeline over a copy of p:
//
//	canonicalize → speculative unrolling → region formation →
//	checkpoint insertion → checkpoint pruning → checkpoint LICM →
//	boundary materialization → verification
//
// The input program is not modified. Compile returns an error if the
// resulting regions could violate the store threshold (which would overflow
// the back-end proxy buffer) or the program fails structural verification.
func Compile(p *prog.Program, opts Options) (*Result, error) {
	if opts.Threshold <= 0 {
		return nil, fmt.Errorf("compile: threshold must be positive, got %d", opts.Threshold)
	}
	if opts.MaxUnroll <= 0 {
		// Automatic cap: larger proxy buffers admit longer regions.
		opts.MaxUnroll = opts.Threshold / 40
		if opts.MaxUnroll < 2 {
			opts.MaxUnroll = 2
		}
		if opts.MaxUnroll > 16 {
			opts.MaxUnroll = 16
		}
	}
	out := p.Clone()
	res := &Result{Program: out, Options: opts}

	canonicalize(out)
	if err := out.Verify(); err != nil {
		return nil, fmt.Errorf("compile: after canonicalize: %w", err)
	}

	if opts.Inline && !opts.NaiveRegions {
		is := inlineCalls(out, opts.InlineMaxInsts)
		res.Stats.CallsInlined = is.CallsInlined
		removeDeadFuncs(out)
		if err := out.Verify(); err != nil {
			return nil, fmt.Errorf("compile: after inline: %w", err)
		}
	}

	if opts.Unroll && !opts.NaiveRegions {
		us := unrollLoops(out, opts)
		res.Stats.LoopsUnrolled = us.LoopsUnrolled
		res.Stats.UnrollCopies = us.CopiesMade
		if err := out.Verify(); err != nil {
			return nil, fmt.Errorf("compile: after unroll: %w", err)
		}
	}

	// Region formation + checkpoint insertion, iterated: checkpoints are
	// stores, so inserting them can overflow a region sized with estimates
	// only. Re-running boundary placement with the real instruction mix
	// converges quickly (estimates only ever shrink toward reality).
	const maxRounds = 4
	for round := 0; ; round++ {
		for _, f := range out.Funcs {
			cfg := analysis.BuildCFG(f)
			lv := analysis.ComputeLiveness(cfg)
			est := ckptEstimate(cfg, lv)
			if round > 0 {
				// Real checkpoints are in the instruction stream now; no
				// estimate needed.
				est = nil
			}
			placeBoundaries(out, f, opts, est)
		}
		if opts.InsertCheckpoints {
			stripCheckpoints(out)
			cc := newCkptContext(out)
			total := 0
			for fi := range out.Funcs {
				total += insertCheckpoints(out, fi, cc)
			}
			res.Stats.CkptsInserted = total
		}
		violated := false
		for _, f := range out.Funcs {
			if err := verifyThreshold(f, opts.Threshold); err != nil {
				violated = true
				break
			}
		}
		if !violated {
			break
		}
		if round == maxRounds-1 {
			for _, f := range out.Funcs {
				if err := verifyThreshold(f, opts.Threshold); err != nil {
					return nil, fmt.Errorf("compile: %w (after %d rounds)", err, maxRounds)
				}
			}
		}
	}

	if (opts.Prune || opts.LICM) && opts.InsertCheckpoints {
		// Both passes reason about where a value may still be consumed, so
		// their liveness must see through calls via the may-read summaries.
		cc := newCkptContext(out)
		callUse := func(callee int32) analysis.RegSet { return cc.mayRead[callee] }
		if opts.Prune {
			for _, f := range out.Funcs {
				res.Stats.CkptsPruned += pruneCheckpoints(f, callUse)
			}
		}
		if opts.LICM {
			for _, f := range out.Funcs {
				res.Stats.CkptsHoisted += licmCheckpoints(f, callUse)
			}
		}
	}

	for _, f := range out.Funcs {
		materializeBoundaries(f)
	}
	if err := out.Verify(); err != nil {
		return nil, fmt.Errorf("compile: after materialize: %w", err)
	}
	// Final hard check of the threshold invariant with boundaries in place.
	for _, f := range out.Funcs {
		if err := verifyThreshold(f, opts.Threshold); err != nil {
			return nil, fmt.Errorf("compile: final check: %w", err)
		}
	}

	res.Stats.Static = out.Stats()
	res.Stats.Regions = res.Stats.Static.Boundaries
	return res, nil
}

// MustCompile is Compile for tests and examples where failure is a bug.
func MustCompile(p *prog.Program, opts Options) *Result {
	r, err := Compile(p, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// stripCheckpoints removes all OpCkpt instructions and recovery slices (used
// between region-formation rounds so checkpoints are not double-inserted).
func stripCheckpoints(p *prog.Program) {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			kept := b.Insts[:0]
			for i := range b.Insts {
				if b.Insts[i].Op != isa.OpCkpt {
					kept = append(kept, b.Insts[i])
				}
			}
			b.Insts = kept
			b.RecoverySlices = nil
		}
	}
}
