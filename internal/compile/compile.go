package compile

import (
	"fmt"

	"capri/internal/isa"
	"capri/internal/prog"
)

// Stats reports what the compiler did and the static region shape of the
// output — the raw material for the paper's Figures 10 and 11.
type Stats struct {
	// Regions is the number of static regions formed (boundary blocks).
	Regions int
	// CkptsInserted counts checkpoint stores inserted by §4.2.
	CkptsInserted int
	// CkptsPruned counts checkpoints removed by optimal pruning (§4.4.1).
	CkptsPruned int
	// CkptsHoisted counts def+checkpoint pairs LICM moved out of loops
	// (§4.4.2).
	CkptsHoisted int
	// LoopsUnrolled / UnrollCopies report speculative unrolling activity
	// (§4.3).
	LoopsUnrolled int
	UnrollCopies  int
	// CallsInlined counts call sites removed by the inlining extension.
	CallsInlined int
	// Static program shape after compilation.
	Static prog.StaticStats
	// Passes holds per-pass run counts, action counts and wall times in
	// pipeline order (see PassStat); the source of capricc -stats-json.
	Passes []PassStat
}

// Result is a compiled program plus its statistics.
type Result struct {
	Program *prog.Program
	Options Options
	Stats   Stats
}

// autoMaxUnroll is the automatic MaxUnroll cap for a threshold:
// max(2, min(16, threshold/40)). Larger proxy buffers admit longer regions,
// so the cap scales with the threshold; the divisor 40 makes the default
// threshold 256 admit 6x unrolling while 1024 saturates the cap.
func autoMaxUnroll(threshold int) int {
	k := threshold / 40
	if k < 2 {
		k = 2
	}
	if k > 16 {
		k = 16
	}
	return k
}

// Compile runs the Capri pass pipeline over a copy of p:
//
//	canonicalize → inline → speculative unrolling → region formation ⇄
//	checkpoint insertion → checkpoint pruning → checkpoint LICM →
//	boundary materialization
//
// The input program is not modified. The pass manager verifies structure
// after every pass and checks the full semantic region contract (threshold,
// boundary coverage, checkpoint coverage, recovery-slice well-formedness; see
// Check) on the final program; Options.VerifyAfter additionally runs the
// semantic verifier after intermediate passes. Compile returns an error if
// any check fails.
func Compile(p *prog.Program, opts Options) (*Result, error) {
	return CompileWithHooks(p, opts, Hooks{})
}

// CompileWithHooks is Compile with pass-manager observation hooks attached
// (e.g. capricc -dump-after). Hooks never affect the compiled output.
func CompileWithHooks(p *prog.Program, opts Options, hooks Hooks) (*Result, error) {
	if opts.Threshold <= 0 {
		return nil, fmt.Errorf("compile: threshold must be positive, got %d", opts.Threshold)
	}
	if err := validateVerifyAfter(opts); err != nil {
		return nil, err
	}
	if opts.MaxUnroll <= 0 {
		opts.MaxUnroll = autoMaxUnroll(opts.Threshold)
	}
	out := p.Clone()
	res := &Result{Program: out, Options: opts}
	if err := newPipeline(opts).run(out, hooks, &res.Stats); err != nil {
		return nil, err
	}
	res.Stats.Static = out.Stats()
	res.Stats.Regions = res.Stats.Static.Boundaries
	return res, nil
}

// validateVerifyAfter rejects a VerifyAfter selector that names no pass of
// this pipeline — a silently ignored selector would report "verified" work
// that never ran.
func validateVerifyAfter(opts Options) error {
	va := opts.VerifyAfter
	if va == "" || va == VerifyAfterAll {
		return nil
	}
	for _, n := range PassNames(opts) {
		if n == va {
			return nil
		}
	}
	for _, n := range AllPassNames {
		if n == va {
			return fmt.Errorf("compile: -verify-after=%s: pass not in this pipeline (level/options disable it)", va)
		}
	}
	return fmt.Errorf("compile: unknown pass %q in VerifyAfter (have %v)", va, AllPassNames)
}

// MustCompile is Compile for tests and examples where failure is a bug.
func MustCompile(p *prog.Program, opts Options) *Result {
	r, err := Compile(p, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// stripCheckpoints removes all OpCkpt instructions and recovery slices (used
// between region-formation rounds so checkpoints are not double-inserted).
func stripCheckpoints(p *prog.Program) {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			kept := b.Insts[:0]
			for i := range b.Insts {
				if b.Insts[i].Op != isa.OpCkpt {
					kept = append(kept, b.Insts[i])
				}
			}
			b.Insts = kept
			b.RecoverySlices = nil
		}
	}
}
