// Package compile implements the Capri compiler (paper §4): region formation
// bounded by a store-count threshold, register-checkpointing store insertion,
// speculative loop unrolling, optimal checkpoint pruning, and LICM-style
// checkpoint motion. The input is an ordinary program; the output is an
// equivalent program whose blocks carry region-boundary markers, OpBoundary /
// OpCkpt instructions, and recovery slices — everything the Capri
// architecture needs to make execution failure-atomic at region granularity.
package compile

// Options selects the store threshold and which optimizations run. The
// zero value is not useful; start from DefaultOptions.
type Options struct {
	// Threshold is the maximum number of store-class instructions (regular
	// stores, atomics and checkpoint stores) allowed on any path through a
	// region. It also sizes the back-end proxy buffer (paper §5.2.2).
	Threshold int

	// InsertCheckpoints enables register-checkpointing stores (§4.2). With it
	// disabled the output has region boundaries only — the paper's "region"
	// configuration in Figures 9–11, which is not failure-atomic but isolates
	// the cost of boundary instructions.
	InsertCheckpoints bool

	// Unroll enables speculative loop unrolling (§4.3).
	Unroll bool

	// MaxUnroll caps the unroll factor. The paper's Figure 2 uses 3; larger
	// factors blow up code size and hurt the I-side, so production settings
	// stay small. Zero means automatic: scale with the threshold as
	// max(2, min(16, threshold/40)) — see autoMaxUnroll — so bigger proxy
	// buffers admit longer regions.
	MaxUnroll int

	// Prune enables optimal checkpoint pruning (§4.4.1).
	Prune bool

	// LICM enables moving loop-invariant defs and their checkpoints out of
	// loops (§4.4.2).
	LICM bool

	// NaiveRegions makes every basic block its own region — the strawman
	// whole-system-persistence baseline ("a naive approach may slow down the
	// benchmark up to 2X", §1.4). Threshold still applies to oversized
	// blocks.
	NaiveRegions bool

	// Inline enables small-leaf-function inlining, the region-lengthening
	// extension beyond the paper's pass set (its §6.3 future work): call and
	// return-site boundaries disappear with the call. Off by default so the
	// figure pipeline matches the paper.
	Inline bool
	// InlineMaxInsts bounds inlined callee size (0 = default 48).
	InlineMaxInsts int

	// VerifyAfter selects extra semantic verification points: "" (final
	// program only — always checked), a pass name from AllPassNames, or
	// VerifyAfterAll to check after every pass. Verification never changes
	// the compiled output, so the compile cache ignores this field.
	VerifyAfter string
}

// VerifyAfterAll is the Options.VerifyAfter value that runs the semantic
// verifier after every pass.
const VerifyAfterAll = "all"

// canonical returns opts with output-irrelevant and defaulted fields
// normalized, so Options values that compile to the same program compare
// equal — the options half of the compile-cache key. Threshold must already
// be validated positive.
func (o Options) canonical() Options {
	o.VerifyAfter = ""
	if o.NaiveRegions {
		// Naive mode disables the region-lengthening passes entirely.
		o.Inline = false
		o.Unroll = false
	}
	if !o.InsertCheckpoints {
		// No checkpoints: nothing to prune or hoist.
		o.Prune = false
		o.LICM = false
	}
	if o.Unroll {
		if o.MaxUnroll <= 0 {
			o.MaxUnroll = autoMaxUnroll(o.Threshold)
		}
	} else {
		o.MaxUnroll = 0
	}
	if o.Inline {
		if o.InlineMaxInsts <= 0 {
			o.InlineMaxInsts = defaultInlineMax
		}
	} else {
		o.InlineMaxInsts = 0
	}
	return o
}

// Canonical is the exported form of canonical, for callers that key
// content-addressed stores by options — the sweep fleet's result store and
// the persistent compile tier both hash Canonical()'s JSON encoding, so two
// option values that compile to the same program share one key. Threshold
// must already be validated positive.
func (o Options) Canonical() Options { return o.canonical() }

// DefaultThreshold is the paper's default region store threshold.
const DefaultThreshold = 256

// DefaultOptions returns the paper's default configuration: threshold 256
// with every compiler optimization enabled.
func DefaultOptions() Options {
	return Options{
		Threshold:         DefaultThreshold,
		InsertCheckpoints: true,
		Unroll:            true,
		MaxUnroll:         0, // automatic
		Prune:             true,
		LICM:              true,
	}
}

// Level names a cumulative optimization level matching the paper's Figure 9
// legend: each level adds one technique on top of the previous.
type Level int

// Cumulative levels, in the order the paper plots them.
const (
	// LevelRegion places region boundaries only (blue bars).
	LevelRegion Level = iota
	// LevelCkpt adds register-checkpointing stores (yellow bars) — the first
	// failure-atomic configuration.
	LevelCkpt
	// LevelUnroll adds speculative loop unrolling.
	LevelUnroll
	// LevelPrune adds optimal checkpoint pruning.
	LevelPrune
	// LevelLICM adds checkpoint motion out of loops (purple bars; all
	// optimizations enabled).
	LevelLICM
)

// Levels lists all cumulative levels in plotting order.
var Levels = []Level{LevelRegion, LevelCkpt, LevelUnroll, LevelPrune, LevelLICM}

// String returns the figure-legend name of the level.
func (l Level) String() string {
	switch l {
	case LevelRegion:
		return "region"
	case LevelCkpt:
		return "+ckpt"
	case LevelUnroll:
		return "+unrolling"
	case LevelPrune:
		return "+pruning"
	case LevelLICM:
		return "+licm"
	}
	return "level?"
}

// OptionsForLevel returns Options matching a cumulative level at the given
// threshold.
func OptionsForLevel(l Level, threshold int) Options {
	o := Options{Threshold: threshold}
	if l >= LevelCkpt {
		o.InsertCheckpoints = true
	}
	if l >= LevelUnroll {
		o.Unroll = true
	}
	if l >= LevelPrune {
		o.Prune = true
	}
	if l >= LevelLICM {
		o.LICM = true
	}
	return o
}
