package compile

import (
	"sync"
	"testing"

	"capri/internal/workload"
)

func TestCacheHitMissCounters(t *testing.T) {
	b, err := workload.ByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	p := b.Build(1)
	c := NewCache()

	r1, err := c.Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("second identical compile did not return the cached *Result")
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats after hit: %+v", s)
	}

	// A different threshold is a different key.
	opts := DefaultOptions()
	opts.Threshold = 64
	if _, err := c.Compile(p, opts); err != nil {
		t.Fatal(err)
	}
	// A structurally different program is a different key.
	if _, err := c.Compile(b.Build(2), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 3 || s.Entries != 3 {
		t.Errorf("stats after distinct keys: %+v", s)
	}
}

func TestCacheCanonicalOptionsShareEntries(t *testing.T) {
	b, err := workload.ByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	p := b.Build(1)
	c := NewCache()

	// MaxUnroll 0 (automatic) and the explicit automatic value compile to the
	// same program, so they must share one cache entry; likewise VerifyAfter
	// never changes output.
	o1 := DefaultOptions()
	o2 := DefaultOptions()
	o2.MaxUnroll = autoMaxUnroll(o2.Threshold)
	o3 := DefaultOptions()
	o3.VerifyAfter = VerifyAfterAll
	for _, o := range []Options{o1, o2, o3} {
		if _, err := c.Compile(p, o); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 2 {
		t.Errorf("canonicalized options did not share an entry: %+v", s)
	}
}

func TestCacheSingleflight(t *testing.T) {
	b, err := workload.ByName("vacation")
	if err != nil {
		t.Fatal(err)
	}
	p := b.Build(1)
	c := NewCache()

	const n = 32
	var wg sync.WaitGroup
	results := make([]*Result, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.Compile(p, DefaultOptions())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}()
	}
	wg.Wait()
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("%d racing compiles produced %d misses, want 1", n, s.Misses)
	}
	if s.Hits != n-1 {
		t.Errorf("hits = %d, want %d", s.Hits, n-1)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different *Result", i)
		}
	}
}

func TestCacheInvalidOptionsNotCached(t *testing.T) {
	b, err := workload.ByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	p := b.Build(1)
	c := NewCache()
	if _, err := c.Compile(p, Options{Threshold: 0}); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if s := c.Stats(); s.Entries != 0 || s.Misses != 0 {
		t.Errorf("invalid options polluted the cache: %+v", s)
	}
}

// TestCacheMetamorphic is the metamorphic acceptance check: for every
// workload benchmark, the result a cache hit returns is byte-identical
// (content-hash equal) to an independent fresh compilation, and every level
// pipeline is deterministic across two independent runs.
func TestCacheMetamorphic(t *testing.T) {
	c := NewCache()
	for _, b := range workload.All() {
		p := b.Build(1)
		for _, l := range Levels {
			opts := OptionsForLevel(l, DefaultThreshold)

			first, err := c.Compile(p, opts)
			if err != nil {
				t.Fatalf("%s %s: %v", b.Name, l, err)
			}
			cached, err := c.Compile(b.Build(1), opts)
			if err != nil {
				t.Fatalf("%s %s: %v", b.Name, l, err)
			}
			if first != cached {
				t.Errorf("%s %s: identical rebuild missed the cache", b.Name, l)
			}

			fresh, err := Compile(b.Build(1), opts)
			if err != nil {
				t.Fatalf("%s %s: %v", b.Name, l, err)
			}
			if fresh.Program.Fingerprint() != cached.Program.Fingerprint() {
				t.Errorf("%s %s: cached output differs from a fresh compile", b.Name, l)
			}

			again, err := Compile(b.Build(1), opts)
			if err != nil {
				t.Fatalf("%s %s: %v", b.Name, l, err)
			}
			if fresh.Program.Fingerprint() != again.Program.Fingerprint() {
				t.Errorf("%s %s: pipeline is nondeterministic across runs", b.Name, l)
			}
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	b, err := workload.ByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := b.Build(1), b.Build(1)
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Fatal("identical builds fingerprint differently")
	}
	p2.Funcs[0].Blocks[0].Insts[0].Imm++
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Fatal("immediate change not reflected in fingerprint")
	}
}
