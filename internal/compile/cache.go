package compile

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"capri/internal/prog"
	"capri/internal/telemetry"
)

// Cache is a concurrency-safe, content-addressed compile cache. The key is
// the program's Fingerprint (a sha256 over every instruction field) crossed
// with the canonicalized Options, so two callers compiling structurally
// identical programs under output-equivalent options share one compilation.
// Compile never mutates its input and machines never mutate programs, so the
// cached *Result — including its Program — is shared, not copied.
//
// Concurrent misses on the same key are single-flighted through a per-entry
// sync.Once: exactly one goroutine compiles, the rest block on the same
// entry and count as hits.
type Cache struct {
	mu       sync.Mutex
	entries  map[cacheKey]*cacheEntry
	persist  Persist // optional on-disk tier (see SetPersist)
	salt     []byte
	hits     atomic.Int64
	misses   atomic.Int64
	diskHits atomic.Int64
}

type cacheKey struct {
	prog [sha256.Size]byte
	opts Options // canonicalized; comparable by construction
}

type cacheEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// NewCache returns an empty compile cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// CacheStats reports cache traffic. Hits + DiskHits + Misses equals the
// number of Compile calls served; Entries counts distinct (program, options)
// keys, including failed compilations (errors are cached too — recompiling
// an invalid input cannot succeed). DiskHits counts keys satisfied from the
// persistent tier (SetPersist) instead of being compiled.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	DiskHits int64 `json:"disk_hits"`
	Misses   int64 `json:"misses"`
	Entries  int   `json:"entries"`
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{Hits: c.hits.Load(), DiskHits: c.diskHits.Load(), Misses: c.misses.Load(), Entries: n}
}

// Compile returns the cached result for (p, opts), compiling on first use.
// The returned Result is shared across callers and must not be mutated.
func (c *Cache) Compile(p *prog.Program, opts Options) (*Result, error) {
	if opts.Threshold <= 0 || validateVerifyAfter(opts) != nil {
		// Don't cache-key invalid options; let Compile produce the error.
		return Compile(p, opts)
	}
	key := cacheKey{prog: p.Fingerprint(), opts: opts.canonical()}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	persist := c.persist
	c.mu.Unlock()
	won := false
	e.once.Do(func() {
		won = true
		if persist != nil {
			pk := c.persistKey(key)
			if raw, ok := persist.Get(pk); ok {
				if res, ok := decodeStored(raw, opts); ok {
					c.diskHits.Add(1)
					telemetry.Caches.CompileDiskHits.Add(1)
					e.res = res
					return
				}
			}
			c.misses.Add(1)
			telemetry.Caches.CompileMisses.Add(1)
			e.res, e.err = Compile(p, opts)
			if e.err == nil {
				if raw, err := encodeStored(e.res); err == nil {
					persist.Put(pk, raw)
				}
			}
			return
		}
		c.misses.Add(1)
		telemetry.Caches.CompileMisses.Add(1)
		e.res, e.err = Compile(p, opts)
	})
	if !won {
		c.hits.Add(1)
		telemetry.Caches.CompileHits.Add(1)
	}
	return e.res, e.err
}
