package compile

import (
	"capri/internal/analysis"
	"capri/internal/isa"
	"capri/internal/prog"
)

// Speculative loop unrolling (paper §4.3).
//
// Traditional unrolling needs the trip count; speculative unrolling does not:
// it duplicates the loop *body and its exit condition* k times, so each
// duplicated iteration can still leave the loop early. Only the original
// header remains a loop header — and thus a mandatory region boundary — so a
// region now covers up to k iterations, cutting boundary instructions and
// per-iteration checkpoint stores by ~k.
//
// We unroll innermost loops whose store weight per iteration is small
// relative to the threshold, choosing k ≈ threshold / weight capped at
// MaxUnroll, mirroring the paper's goal of filling regions up to the store
// budget.

// unrollStats reports what the pass did.
type unrollStats struct {
	LoopsUnrolled int
	CopiesMade    int
}

// unrollLoops applies speculative unrolling to every innermost loop of every
// function, once per loop. Returns statistics.
func unrollLoops(p *prog.Program, opts Options) unrollStats {
	var st unrollStats
	for _, f := range p.Funcs {
		// Each transformation shifts the CFG, so re-analyze between loops;
		// headers already processed are remembered (block IDs are stable —
		// unrolling only appends blocks) so each original loop is unrolled
		// exactly once.
		processed := map[int]bool{}
		for {
			cfg := analysis.BuildCFG(f)
			loops := cfg.Loops()
			done := true
			for i := range loops {
				l := &loops[i]
				if processed[l.Header] || !innermost(loops, i) || len(l.Latches) != 1 {
					continue
				}
				processed[l.Header] = true
				k := unrollFactor(f, l, opts)
				if k <= 1 {
					continue
				}
				if unrollLoop(p, f, cfg, l, k) {
					st.LoopsUnrolled++
					st.CopiesMade += k - 1
					done = false
					break // CFG changed; rebuild
				}
			}
			if done {
				break
			}
		}
	}
	return st
}

// innermost reports whether loops[i] has no other loop nested inside it.
func innermost(loops []analysis.Loop, i int) bool {
	for j := range loops {
		if loops[j].Parent == i {
			return false
		}
	}
	return true
}

// loopStoreWeight estimates the store-class weight of one iteration: the
// worst-case path store count through the loop body plus an estimate of one
// checkpoint per live-out def (matching ckptEstimate's shape).
func loopStoreWeight(f *prog.Func, l *analysis.Loop) int {
	w := 0
	defs := map[isa.Reg]bool{}
	for id := range l.Blocks {
		b := f.Blocks[id]
		w += b.StoreCount()
		for i := range b.Insts {
			if d, ok := b.Insts[i].Def(); ok {
				defs[d] = true
			}
		}
	}
	return w + len(defs)
}

// unrollFactor picks the duplication count for loop l.
func unrollFactor(f *prog.Func, l *analysis.Loop, opts Options) int {
	// Refuse loops containing calls or syncs: calls re-enter boundary
	// territory anyway and sync blocks are mandatory boundaries, so
	// unrolling buys nothing.
	for id := range l.Blocks {
		b := f.Blocks[id]
		for i := range b.Insts {
			if b.Insts[i].Op == isa.OpCall || b.Insts[i].IsMandatoryBoundary() {
				return 1
			}
		}
	}
	w := loopStoreWeight(f, l)
	if w <= 0 {
		w = 1
	}
	k := opts.Threshold / (2 * w) // headroom: fill ~half the budget
	if k > opts.MaxUnroll {
		k = opts.MaxUnroll
	}
	if k < 1 {
		k = 1
	}
	// Bound code growth for large bodies.
	if sz := loopInstCount(f, l); sz*k > 4096 {
		k = 4096 / sz
		if k < 1 {
			k = 1
		}
	}
	return k
}

func loopInstCount(f *prog.Func, l *analysis.Loop) int {
	n := 0
	for id := range l.Blocks {
		n += len(f.Blocks[id].Insts)
	}
	return n
}

// unrollLoop duplicates the loop body (header included) k-1 times. The
// original latch's back edge is redirected to the first copy's header; each
// copy's latch feeds the next copy's header; the last copy's latch keeps the
// back edge to the original header, closing the loop. Exit edges in every
// copy keep their original out-of-loop targets — the "duplicate the exit
// condition" trick of Figure 2(c), which is what makes the unrolling safe
// without knowing the trip count.
func unrollLoop(p *prog.Program, f *prog.Func, cfg *analysis.CFG, l *analysis.Loop, k int) bool {
	if k <= 1 {
		return false
	}
	latch := l.Latches[0]

	// Stable iteration order over the body.
	var body []int
	for _, id := range cfg.RPO {
		if l.Blocks[id] {
			body = append(body, id)
		}
	}

	// redirect rewrites edges of blockID that point at `from` to point at
	// `to`.
	redirect := func(blockID, from, to int) {
		t, ok := f.Blocks[blockID].Terminator()
		if !ok {
			return
		}
		switch t.Op {
		case isa.OpBr:
			if int(t.Target) == from {
				t.Target = int32(to)
			}
		case isa.OpBrIf:
			if int(t.Target) == from {
				t.Target = int32(to)
			}
			if int(t.Else) == from {
				t.Else = int32(to)
			}
		}
	}

	// Snapshot the pristine body before any edges are rewritten: later copies
	// must not inherit redirects applied to earlier ones.
	snapshot := map[int][]isa.Inst{}
	for _, id := range body {
		snapshot[id] = append([]isa.Inst(nil), f.Blocks[id].Insts...)
	}

	prevLatch := latch // latch whose back edge should enter the next copy
	for c := 1; c < k; c++ {
		copyOf := map[int]int{}
		for _, id := range body {
			copyOf[id] = f.NewBlock().ID
		}
		for _, id := range body {
			dst := f.Blocks[copyOf[id]]
			dst.Insts = append(dst.Insts, snapshot[id]...)
			if t, ok := dst.Terminator(); ok {
				retarget := func(tgt *int32) {
					old := int(*tgt)
					if id == latch && old == l.Header {
						// Keep the copied latch's back edge pointing at the
						// original header; it either stays (last copy) or is
						// redirected to the next copy below.
						return
					}
					if nt, ok := copyOf[old]; ok {
						*tgt = int32(nt)
					}
				}
				switch t.Op {
				case isa.OpBr:
					retarget(&t.Target)
				case isa.OpBrIf:
					retarget(&t.Target)
					retarget(&t.Else)
				}
			}
			// Duplicated calls need fresh return-site tokens pointing into
			// the copy (defensive: unrollFactor currently rejects loops with
			// calls).
			for i := range dst.Insts {
				in := &dst.Insts[i]
				if in.Op == isa.OpCall {
					in.Imm = p.AddRetSite(prog.RetSite{Func: f.ID, Block: dst.ID, Index: i + 1})
				}
			}
		}
		// The previous latch now continues into this copy's header.
		redirect(prevLatch, l.Header, copyOf[l.Header])
		prevLatch = copyOf[latch]
	}
	// prevLatch (the last copy's latch) still targets l.Header: loop closed.
	return true
}
