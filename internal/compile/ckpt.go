package compile

import (
	"capri/internal/analysis"
	"capri/internal/isa"
	"capri/internal/prog"
)

// Checkpoint insertion (paper §4.2).
//
// Soundness contract with the architecture and recovery protocol: at the
// moment any region boundary β commits, the NVM checkpoint array slot of
// every register that will be *read* after β before being written again must
// hold that register's current value. Recovery reloads all slots, re-runs the
// boundary block's recovery slices (see prune.go), and resumes at β; only
// registers satisfying the contract are ever consulted, so stale slots of
// dead registers are harmless.
//
// The pass runs a backward "need" dataflow per function:
//
//	needOut(b) = ∪ needIn(s) over CFG successors s
//	           ∪ retNeed(f)        if b ends in Ret
//	walk b backward from needOut: a def of r with r ∈ need receives a
//	checkpoint immediately after it (the paper's "last instruction that
//	updates the register") and removes r from need; a call site adds
//	callNeed(callee, site); finally
//	needIn(b) = need ∪ (LiveIn(b) if b is a boundary)
//
// where retNeed(f) is the union over f's call sites of the registers live
// after the call (an interprocedural summary computed to fixpoint), and
// callNeed = LiveOut(after the call) ∪ mayRead(callee) with mayRead the
// transitive may-read register summary of the callee. Thread entry functions
// have retNeed = ∅ (nothing runs after Halt).
type ckptContext struct {
	p    *prog.Program
	cfgs []*analysis.CFG
	live []*analysis.Liveness
	// mayRead[f] = registers possibly read by f or its transitive callees.
	mayRead []analysis.RegSet
	// retNeed[f] = registers that must have fresh slots when f returns.
	retNeed []analysis.RegSet
	// liveAfterCall[f][block] for blocks ending in a call: registers live at
	// the call's return site.
	callees [][]int
}

func newCkptContext(p *prog.Program) *ckptContext {
	cc := &ckptContext{p: p}
	cc.cfgs = make([]*analysis.CFG, len(p.Funcs))
	cc.live = make([]*analysis.Liveness, len(p.Funcs))
	for i, f := range p.Funcs {
		cc.cfgs[i] = analysis.BuildCFG(f)
		cc.live[i] = analysis.ComputeLiveness(cc.cfgs[i])
	}
	cc.computeMayRead()
	cc.computeRetNeed()
	return cc
}

// computeMayRead computes the transitive may-read register summary per
// function (fixpoint over the call graph; handles recursion).
func (cc *ckptContext) computeMayRead() {
	p := cc.p
	cc.mayRead = make([]analysis.RegSet, len(p.Funcs))
	direct := make([]analysis.RegSet, len(p.Funcs))
	calls := make([][]int, len(p.Funcs))
	var uses []isa.Reg
	for i, f := range p.Funcs {
		var s analysis.RegSet
		for _, b := range f.Blocks {
			for j := range b.Insts {
				in := &b.Insts[j]
				uses = in.Uses(uses[:0])
				for _, r := range uses {
					s.Add(r)
				}
				if in.Op == isa.OpCall {
					calls[i] = append(calls[i], int(in.Callee))
				}
			}
		}
		direct[i] = s
		cc.mayRead[i] = s
	}
	for changed := true; changed; {
		changed = false
		for i := range p.Funcs {
			s := cc.mayRead[i]
			for _, c := range calls[i] {
				s = s.Union(cc.mayRead[c])
			}
			if s != cc.mayRead[i] {
				cc.mayRead[i] = s
				changed = true
			}
		}
	}
}

// computeRetNeed computes, for every function, the union over its call sites
// of registers live at the return site — what callers will read after the
// callee returns. Unreferenced functions (thread entries) get the empty set.
func (cc *ckptContext) computeRetNeed() {
	p := cc.p
	cc.retNeed = make([]analysis.RegSet, len(p.Funcs))
	for changed := true; changed; {
		changed = false
		for fi, f := range p.Funcs {
			for _, b := range f.Blocks {
				for j := range b.Insts {
					in := &b.Insts[j]
					if in.Op != isa.OpCall {
						continue
					}
					// Registers live after the call in this caller: the
					// return site's live-in, plus whatever this caller
					// itself must keep fresh for its own return.
					rs := p.RetSites[in.Imm]
					after := cc.live[fi].LiveAt(f, rs.Block, rs.Index)
					after = after.Union(cc.retNeed[fi])
					callee := int(in.Callee)
					if u := cc.retNeed[callee].Union(after); u != cc.retNeed[callee] {
						cc.retNeed[callee] = u
						changed = true
					}
				}
			}
		}
	}
}

// callNeed returns the registers that must have fresh checkpoint slots at a
// call to callee from the given return site: everything the callee (or its
// callees) may read, plus everything live after the call.
func (cc *ckptContext) callNeed(callerFunc int, callee int, site prog.RetSite) analysis.RegSet {
	f := cc.p.Funcs[callerFunc]
	after := cc.live[callerFunc].LiveAt(f, site.Block, site.Index)
	need := cc.mayRead[callee].Union(after).Union(cc.retNeed[callerFunc])
	// SP is saved/restored through the in-memory call protocol itself; its
	// checkpoint is maintained like any other register, so no exclusion.
	return need
}

// insertCheckpoints runs the need analysis over f and inserts OpCkpt
// instructions. Returns the number of checkpoint stores inserted.
func insertCheckpoints(p *prog.Program, fi int, cc *ckptContext) int {
	f := p.Funcs[fi]
	cfg := cc.cfgs[fi]
	lv := cc.live[fi]

	needIn := make([]analysis.RegSet, len(f.Blocks))
	needOut := make([]analysis.RegSet, len(f.Blocks))

	transfer := func(b *prog.Block, out analysis.RegSet) analysis.RegSet {
		need := out
		for i := len(b.Insts) - 1; i >= 0; i-- {
			in := &b.Insts[i]
			if in.Op == isa.OpCall {
				need = need.Union(cc.callNeed(fi, int(in.Callee), p.RetSites[in.Imm]))
			}
			if d, ok := in.Def(); ok {
				need.Remove(d)
			}
		}
		if b.BoundaryAt {
			need = need.Union(lv.LiveIn[b.ID])
		}
		return need
	}

	for changed := true; changed; {
		changed = false
		for i := len(cfg.RPO) - 1; i >= 0; i-- {
			id := cfg.RPO[i]
			b := f.Blocks[id]
			var out analysis.RegSet
			if t, ok := b.Terminator(); ok && t.Op == isa.OpRet {
				out = cc.retNeed[fi]
			}
			for _, s := range cfg.Succ[id] {
				out = out.Union(needIn[s])
			}
			in := transfer(b, out)
			if in != needIn[id] || out != needOut[id] {
				needIn[id], needOut[id] = in, out
				changed = true
			}
		}
	}

	// Placement: walk each block backward with the converged needOut,
	// splicing a checkpoint immediately after each last-def of a needed
	// register.
	inserted := 0
	for _, id := range cfg.RPO {
		b := f.Blocks[id]
		need := needOut[id]
		var ckptAfter []int // instruction indexes to receive a ckpt after
		var ckptReg []isa.Reg
		for i := len(b.Insts) - 1; i >= 0; i-- {
			in := &b.Insts[i]
			if in.Op == isa.OpCall {
				need = need.Union(cc.callNeed(fi, int(in.Callee), p.RetSites[in.Imm]))
			}
			if d, ok := in.Def(); ok && need.Has(d) {
				ckptAfter = append(ckptAfter, i)
				ckptReg = append(ckptReg, d)
				need.Remove(d)
			}
		}
		if len(ckptAfter) == 0 {
			continue
		}
		// Indexes were collected in descending order; splice back-to-front
		// so earlier indexes stay valid.
		for k := 0; k < len(ckptAfter); k++ {
			i, r := ckptAfter[k], ckptReg[k]
			b.Insts = append(b.Insts, isa.Inst{})
			copy(b.Insts[i+2:], b.Insts[i+1:])
			b.Insts[i+1] = isa.Inst{Op: isa.OpCkpt, Ra: r}
			inserted++
		}
	}
	return inserted
}

// ckptEstimate returns a per-block estimate of checkpoint stores for region
// formation, before real checkpoints exist: the number of registers the block
// defines that are live out of it. This over-approximates the final count the
// same way the paper's per-initial-region estimate does.
func ckptEstimate(cfg *analysis.CFG, lv *analysis.Liveness) func(*prog.Block) int {
	return func(b *prog.Block) int {
		if b.ID >= len(lv.Def) {
			// Blocks created by splitting after the analysis ran: fall back
			// to a direct def count.
			seen := map[isa.Reg]bool{}
			for i := range b.Insts {
				if d, ok := b.Insts[i].Def(); ok {
					seen[d] = true
				}
			}
			return len(seen)
		}
		return (lv.Def[b.ID] & lv.LiveOut[b.ID]).Count()
	}
}
