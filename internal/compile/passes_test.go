package compile

import (
	"strings"
	"testing"

	"capri/internal/analysis"
	"capri/internal/isa"
	"capri/internal/prog"
)

// --- canonicalization ---

func TestCanonicalizeIsolatesSync(t *testing.T) {
	bd := prog.NewBuilder("c")
	f := bd.Func("main")
	f.Block()
	f.MovI(0, 1)
	f.Fence()
	f.MovI(1, 2)
	f.AtomicAdd(2, 0, 0, 1)
	f.MovI(3, 3)
	f.Halt()
	p := bd.Program()

	canonicalize(p)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, b := range p.Funcs[0].Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.IsMandatoryBoundary() {
				if i != 0 {
					t.Errorf("sync %s not at block start (idx %d)", in, i)
				}
				if len(b.Insts) != 2 || !b.Insts[1].IsTerminator() {
					t.Errorf("sync %s not alone in its block: %d insts", in, len(b.Insts))
				}
			}
		}
	}
}

func TestCanonicalizeRetSitesAtBlockStart(t *testing.T) {
	bd := prog.NewBuilder("c")
	leaf := bd.Func("leaf")
	leaf.Block()
	leaf.MovI(0, 1)
	leaf.Ret()
	main := bd.Func("main")
	main.Block()
	main.MovI(isa.SP, 1<<19)
	main.Call(leaf)
	main.MovI(1, 2)
	main.Call(leaf)
	main.Emit(1)
	main.Halt()
	p := bd.Program()

	canonicalize(p)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, rs := range p.RetSites {
		if rs.Index != 0 {
			t.Errorf("ret site %+v not at a block start", rs)
		}
	}
}

func TestSplitBlockRedirectsTokens(t *testing.T) {
	bd := prog.NewBuilder("s")
	leaf := bd.Func("leaf")
	leaf.Block()
	leaf.Ret()
	main := bd.Func("main")
	main.Block()
	main.MovI(isa.SP, 1<<19)
	main.Call(leaf) // token points at index 2
	main.MovI(1, 7)
	main.Halt()
	p := bd.Program()
	f := p.Funcs[1]

	splitBlock(p, f, f.Blocks[0], 2)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	rs := p.RetSites[0]
	if rs.Block != 1 || rs.Index != 0 {
		t.Errorf("token not redirected: %+v", rs)
	}
}

// --- region helpers ---

func TestMandatoryBoundarySet(t *testing.T) {
	p := storeLoop(2)
	canonicalize(p)
	f := p.Funcs[0]
	cfg := analysis.BuildCFG(f)
	mand := mandatoryBoundaries(p, f, cfg.LoopHeaders())
	if !mand[f.Entry] {
		t.Error("entry not mandatory")
	}
	hdrs := cfg.LoopHeaders()
	for h := range hdrs {
		if !mand[h] {
			t.Errorf("loop header b%d not mandatory", h)
		}
	}
}

func TestVerifyThresholdRejectsOverflow(t *testing.T) {
	bd := prog.NewBuilder("v")
	f := bd.Func("main")
	f.Block()
	f.MovI(0, 1<<16)
	for i := 0; i < 10; i++ {
		f.Store(0, int64(8*i), 0)
	}
	f.Halt()
	p := bd.Program()
	fn := p.Funcs[0]
	fn.Blocks[0].BoundaryAt = true

	if err := verifyThreshold(fn, 4); err == nil {
		t.Error("threshold 4 accepted for a 10-store region")
	}
	if err := verifyThreshold(fn, 10); err != nil {
		t.Errorf("threshold 10 rejected: %v", err)
	}
}

func TestTinyThresholds(t *testing.T) {
	// Threshold 1 is infeasible for checkpointed programs: a region with a
	// store whose live-out register needs a checkpoint already holds two
	// store-class instructions. The compiler must fail cleanly, not panic
	// or emit an overflowing program.
	opts := DefaultOptions()
	opts.Threshold = 1
	if _, err := Compile(storeLoop(1), opts); err == nil {
		t.Error("threshold 1 accepted for a checkpointed loop")
	}
	// Threshold 2 is the practical minimum and must work.
	opts.Threshold = 2
	res, err := Compile(storeLoop(1), opts)
	if err != nil {
		t.Fatalf("threshold 2: %v", err)
	}
	if got := maxRegionStores(t, res.Program); got > 2 {
		t.Errorf("region stores = %d at threshold 2", got)
	}
}

func TestCompileDeterministic(t *testing.T) {
	p := storeLoop(3)
	a := MustCompile(p, DefaultOptions()).Program.String()
	b := MustCompile(p, DefaultOptions()).Program.String()
	if a != b {
		t.Error("Compile is not deterministic")
	}
}

// --- prune internals ---

func TestOtherDefReaches(t *testing.T) {
	// b0: def r1 (idx 1); b1 (boundary): loop header; b2: redef r1, back to b1.
	bd := prog.NewBuilder("odr")
	f := bd.Func("main")
	b0 := f.Block()
	b1 := f.Block()
	b2 := f.Block()
	b3 := f.Block()
	f.SetBlock(b0)
	f.MovI(0, 10)
	f.MovI(1, 5)
	f.Br(b1)
	f.SetBlock(b1)
	f.BrIf(1, isa.CondGE, 0, b3, b2)
	f.SetBlock(b2)
	f.AddI(1, 1, 1) // other def of r1
	f.Br(b1)
	f.SetBlock(b3)
	f.Halt()
	bd.Program()

	fn := f.Raw()
	cfg := analysis.BuildCFG(fn)
	// The def at (b0, idx1) vs boundary b1: the redef in b2 reaches b1 via
	// the back edge.
	if !otherDefReaches(fn, cfg, 0, 1, 1, []int{1}) {
		t.Error("loop redef not detected as reaching the header boundary")
	}
	// Register r0 has no other defs: nothing reaches.
	if otherDefReaches(fn, cfg, 0, 0, 0, []int{1}) {
		t.Error("phantom def detected for r0")
	}
}

func TestSliceConsistentRejectsVersionConflict(t *testing.T) {
	// a=1; b=a+5; a=2; d=a+b — the canonical conflict from the doc comment.
	b := &prog.Block{Insts: []isa.Inst{
		{Op: isa.OpMovI, Rd: 1, Imm: 1},        // 0: a=1
		{Op: isa.OpAddI, Rd: 2, Ra: 1, Imm: 5}, // 1: b=a+5
		{Op: isa.OpMovI, Rd: 1, Imm: 2},        // 2: a=2
		{Op: isa.OpAdd, Rd: 3, Ra: 1, Rb: 2},   // 3: d=a+b
	}}
	// Slice candidate: indexes {0,1,2,3} includes two defs of r1.
	var leaves analysis.RegSet
	if sliceConsistent(b, 3, leaves, []int{0, 1, 2, 3}) {
		t.Error("version conflict accepted")
	}
	// An outside def of an involved register *within* [lo, di] must be
	// rejected: slice {0, 3} with leaf r2, where index 1 defines r2 but is
	// not part of the slice.
	var leavesB analysis.RegSet
	leavesB.Add(2)
	if sliceConsistent(b, 3, leavesB, []int{0, 3}) {
		t.Error("outside def of involved register accepted")
	}
	// Straight-line consistent case: d=a+b where slice={3} and both leaves
	// checkpointed (no defs in (3,3)).
	var leaves2 analysis.RegSet
	leaves2.Add(1)
	leaves2.Add(2)
	if !sliceConsistent(b, 3, leaves2, []int{3}) {
		t.Error("clean single-def slice rejected")
	}
}

func TestHasFreshCkptBefore(t *testing.T) {
	b := &prog.Block{Insts: []isa.Inst{
		{Op: isa.OpMovI, Rd: 1, Imm: 1},      // 0
		{Op: isa.OpCkpt, Ra: 1},              // 1
		{Op: isa.OpMovI, Rd: 2, Imm: 2},      // 2
		{Op: isa.OpMovI, Rd: 1, Imm: 3},      // 3: redef r1
		{Op: isa.OpAdd, Rd: 4, Ra: 1, Rb: 2}, // 4
	}}
	if !hasFreshCkptBefore(b, 3, 1) {
		t.Error("fresh ckpt before the redef not found")
	}
	if hasFreshCkptBefore(b, 4, 1) {
		t.Error("stale ckpt (redef in between) accepted")
	}
	if hasFreshCkptBefore(b, 4, 2) {
		t.Error("never-checkpointed register accepted")
	}
}

func TestSliceLeafsOn(t *testing.T) {
	b := &prog.Block{RecoverySlices: map[isa.Reg][]isa.Inst{
		5: {
			{Op: isa.OpAdd, Rd: 5, Ra: 1, Rb: 2}, // leaves r1, r2
		},
		6: {
			{Op: isa.OpMovI, Rd: 7, Imm: 3},      // defines r7 first...
			{Op: isa.OpAdd, Rd: 6, Ra: 7, Rb: 3}, // ...then uses it: r7 not a leaf
		},
	}}
	if !sliceLeafsOn(b, 1) || !sliceLeafsOn(b, 2) || !sliceLeafsOn(b, 3) {
		t.Error("true leaves not detected")
	}
	if sliceLeafsOn(b, 7) {
		t.Error("slice-internal register misreported as leaf")
	}
	if sliceLeafsOn(b, 9) {
		t.Error("unrelated register reported as leaf")
	}
}

// --- option edge cases ---

func TestNaiveWithPruneStillSound(t *testing.T) {
	opts := Options{Threshold: 64, InsertCheckpoints: true, NaiveRegions: true, Prune: true, LICM: true, MaxUnroll: 1}
	res, err := Compile(storeLoop(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Regions == 0 {
		t.Error("no regions in naive mode")
	}
}

func TestCompileErrorMentionsStage(t *testing.T) {
	_, err := Compile(storeLoop(1), Options{Threshold: 0})
	if err == nil || !strings.Contains(err.Error(), "threshold") {
		t.Errorf("err = %v", err)
	}
}
