package compile

import (
	"capri/internal/analysis"
	"capri/internal/isa"
	"capri/internal/prog"
)

// Optimal checkpoint pruning (paper §4.4.1, after Penny).
//
// A checkpoint of register r can be removed when r's value is reconstructible
// at recovery time from other checkpointed values: the defining instruction
// is re-executable (pure over registers) and each operand's checkpoint slot
// is guaranteed to still hold the operand's value at the def, at every
// boundary the pruned checkpoint would have served. The pruned checkpoint is
// replaced by a recovery slice attached to each served boundary block; the
// recovery protocol executes the slice after reloading the register file
// (paper Figure 3's "recovery block").
//
// Our reconstructibility check is deliberately conservative (see DESIGN.md):
//
//  1. the def of r immediately precedes the checkpoint, is re-executable,
//     and may chain through up to sliceDepth earlier re-executable defs in
//     the same block;
//  2. every leaf operand s has a dominating checkpoint earlier in the same
//     block with no intervening redefinition of s;
//  3. from the def to every served boundary (forward walk bounded by
//     pruneWalkLimit blocks), neither r nor any slice register is redefined
//     or re-checkpointed, so the slot values the slice reads at recovery are
//     exactly the values the slice needs.
const (
	sliceDepth     = 3
	pruneWalkLimit = 1024
)

// pruneCheckpoints removes reconstructible checkpoints in f and attaches
// recovery slices to the boundary blocks they served. callUse supplies the
// transitive may-read summary per callee, making the liveness the walk uses
// call-aware (a value consumed only by a callee must keep the walk alive up
// to the call, where instPreserves then aborts conservatively). Returns the
// number of checkpoints pruned.
func pruneCheckpoints(f *prog.Func, callUse func(int32) analysis.RegSet) int {
	cfg := analysis.BuildCFG(f)
	lv := analysis.ComputeLivenessCallAware(cfg, callUse)
	idom := cfg.Dominators()
	pruned := 0

	for _, id := range cfg.RPO {
		b := f.Blocks[id]
		for i := 0; i < len(b.Insts); i++ {
			in := b.Insts[i]
			if in.Op != isa.OpCkpt {
				continue
			}
			r := in.Ra
			if i == 0 {
				continue
			}
			def := b.Insts[i-1]
			if d, ok := def.Def(); !ok || d != r || !def.IsReexecutable() {
				continue
			}
			slice, leaves, idxs, ok := buildSlice(b, i-1, sliceDepth)
			if !ok || !sliceConsistent(b, i-1, leaves, idxs) {
				continue
			}
			boundaries, regsOK := servedBoundaries(f, cfg, lv, id, i, r, leaves)
			if !regsOK || len(boundaries) == 0 {
				continue
			}
			// The slice must be the unique reaching definition of r at every
			// served boundary: if any *other* def of r (e.g. a redefinition
			// in a loop body) can reach a served boundary, executing the
			// slice at recovery would overwrite the newer checkpointed
			// value. (The forward walk above ends at redefs, so it cannot
			// see paths that flow through them back to the boundary.)
			if otherDefReaches(f, cfg, id, i-1, r, boundaries) {
				continue
			}
			// A slice at boundary β is only correct if every path into β
			// runs through this def (otherwise recovery would overwrite an r
			// produced elsewhere), so the defining block must dominate every
			// served boundary; and no boundary may already carry a slice for
			// r from a different def.
			valid := true
			for _, bb := range boundaries {
				if !analysis.Dominates(idom, f.Entry, id, bb) {
					valid = false
					break
				}
				if _, exists := f.Blocks[bb].RecoverySlices[r]; exists {
					valid = false
					break
				}
				// An earlier slice at this boundary may read r's checkpoint
				// slot as a leaf; deleting r's checkpoint would leave that
				// slice a stale slot, so the prune must not proceed.
				if sliceLeafsOn(f.Blocks[bb], r) {
					valid = false
					break
				}
			}
			if !valid {
				continue
			}
			// Commit the prune: delete the ckpt, attach slices.
			b.Insts = append(b.Insts[:i:i], b.Insts[i+1:]...)
			for _, bb := range boundaries {
				blk := f.Blocks[bb]
				if blk.RecoverySlices == nil {
					blk.RecoverySlices = map[isa.Reg][]isa.Inst{}
				}
				blk.RecoverySlices[r] = append([]isa.Inst(nil), slice...)
			}
			pruned++
			i-- // re-examine the instruction now at index i
		}
	}
	return pruned
}

// buildSlice builds the recovery slice ending at the def at index di of block
// b: the def itself, preceded (recursively, up to depth) by re-executable
// defs of its operands when those operands are not directly checkpointed.
// Returns the slice in execution order, the set of leaf registers whose
// checkpoint slots the slice reads, the original instruction indexes of the
// slice members (ascending), and whether construction succeeded.
//
// The caller must additionally run sliceConsistent: the recursion validates
// each operand locally, but a flattened slice is only executable over a
// single register file when every involved register has exactly one version
// across the whole range (see the version-conflict example there).
func buildSlice(b *prog.Block, di int, depth int) ([]isa.Inst, analysis.RegSet, []int, bool) {
	def := b.Insts[di]
	var leaves analysis.RegSet
	var slice []isa.Inst
	var idxs []int

	var operands []isa.Reg
	operands = def.Uses(operands)
	for _, s := range operands {
		// Case 1: s checkpointed earlier in this block with no intervening
		// redefinition — slot[s] holds the right value; s is a leaf.
		if hasFreshCkptBefore(b, di, s) {
			leaves.Add(s)
			continue
		}
		// Case 2: recurse into s's defining instruction if it is the nearest
		// def, re-executable and within depth.
		if depth == 0 {
			return nil, 0, nil, false
		}
		sdi, ok := nearestDefBefore(b, di, s)
		if !ok || !b.Insts[sdi].IsReexecutable() {
			return nil, 0, nil, false
		}
		sub, subLeaves, subIdxs, ok := buildSlice(b, sdi, depth-1)
		if !ok {
			return nil, 0, nil, false
		}
		slice = append(slice, sub...)
		idxs = append(idxs, subIdxs...)
		leaves = leaves.Union(subLeaves)
	}
	slice = append(slice, def)
	idxs = append(idxs, di)
	return slice, leaves, idxs, true
}

// sliceConsistent verifies the single-version property that makes a
// flattened slice executable over one register file seeded from checkpoint
// slots. Consider:
//
//	a = 1; b = a + 5; a = 2; d = a + b; ckpt d
//
// A naive slice for d would contain both defs of a, and replaying it
// computes d from the wrong a. The sound condition: within
// [min(slice idx), di], the only definitions of any involved register
// (slice leaves and slice defs) are the slice instructions themselves, and
// each slice instruction defines a distinct register. Leaf freshness before
// the range is already guaranteed by hasFreshCkptBefore at each consumer,
// and freshness after di by servedBoundaries' protected-set walk.
func sliceConsistent(b *prog.Block, di int, leaves analysis.RegSet, idxs []int) bool {
	inSlice := map[int]bool{}
	lo := di
	for _, j := range idxs {
		if inSlice[j] {
			// The same instruction pulled in via two operands is fine, but
			// it would be appended twice; reject to keep slices minimal and
			// replay-safe.
			return false
		}
		inSlice[j] = true
		if j < lo {
			lo = j
		}
	}
	involved := leaves
	seenDef := map[isa.Reg]bool{}
	for j := range inSlice {
		d, ok := b.Insts[j].Def()
		if !ok {
			return false
		}
		if seenDef[d] || leaves.Has(d) {
			return false // two versions of one register in the slice
		}
		seenDef[d] = true
		involved.Add(d)
	}
	for j := lo; j <= di; j++ {
		if inSlice[j] {
			continue
		}
		if d, ok := b.Insts[j].Def(); ok && involved.Has(d) {
			return false // an outside def would change an involved version
		}
	}
	return true
}

// hasFreshCkptBefore reports whether register s has an OpCkpt earlier in b
// (before index di) with no redefinition of s between the checkpoint and di.
func hasFreshCkptBefore(b *prog.Block, di int, s isa.Reg) bool {
	for j := di - 1; j >= 0; j-- {
		in := &b.Insts[j]
		if in.Op == isa.OpCkpt && in.Ra == s {
			return true
		}
		if d, ok := in.Def(); ok && d == s {
			return false
		}
	}
	return false
}

// nearestDefBefore finds the closest instruction before di defining s, with
// no other def in between (by construction of the backward scan).
func nearestDefBefore(b *prog.Block, di int, s isa.Reg) (int, bool) {
	for j := di - 1; j >= 0; j-- {
		if d, ok := b.Insts[j].Def(); ok && d == s {
			return j, true
		}
	}
	return 0, false
}

// servedBoundaries walks forward from the checkpoint position (block id,
// instruction index ci) collecting every boundary block at which r is live-in
// and therefore relies on this checkpoint. The walk stops along a path once r
// is redefined or dead. It fails (regsOK=false) if, anywhere in the walked
// range, r or any slice leaf register is redefined or re-checkpointed — which
// would make the recovery slice read stale or future slot values — or if the
// walk exceeds pruneWalkLimit blocks.
func servedBoundaries(f *prog.Func, cfg *analysis.CFG, lv *analysis.Liveness,
	id, ci int, r isa.Reg, leaves analysis.RegSet) ([]int, bool) {

	protect := leaves
	protect.Add(r)

	// Check the remainder of the defining block first. If the block returns
	// while r's value is current, the value escapes to an unknown caller
	// whose boundaries this intraprocedural walk cannot serve — abort (this
	// is why the need analysis checkpointed it in the first place).
	defBlk := f.Blocks[id]
	for j := ci + 1; j < len(defBlk.Insts); j++ {
		if !instPreserves(&defBlk.Insts[j], protect) {
			return nil, false
		}
	}
	if t, ok := defBlk.Terminator(); ok && t.Op == isa.OpRet {
		return nil, false
	}

	var served []int
	visited := map[int]bool{}
	work := f.Blocks[id].Succs(nil)
	steps := 0
	for len(work) > 0 {
		x := work[len(work)-1]
		work = work[:len(work)-1]
		if visited[x] {
			continue
		}
		visited[x] = true
		if steps++; steps > pruneWalkLimit {
			return nil, false
		}
		blk := f.Blocks[x]
		if blk.BoundaryAt {
			if lv.LiveIn[x].Has(r) {
				served = append(served, x)
			} else {
				// r dead at this boundary: nothing to restore; stop path.
				continue
			}
		} else if !lv.LiveIn[x].Has(r) {
			continue
		}
		// Scan the block: if r is redefined, the path ends (a later def has
		// its own checkpoint); any violation of the protected set fails.
		ended := false
		for j := range blk.Insts {
			in := &blk.Insts[j]
			if d, ok := in.Def(); ok && d == r {
				ended = true
				break
			}
			if !instPreserves(in, protect) {
				return nil, false
			}
		}
		if ended {
			continue
		}
		// A live value reaching Ret escapes into the caller: its boundaries
		// are outside this walk, so the prune would leave them a stale slot.
		if t, ok := blk.Terminator(); ok && t.Op == isa.OpRet {
			return nil, false
		}
		work = append(work, blk.Succs(nil)...)
	}
	return served, true
}

// otherDefReaches reports whether any definition of r other than the one at
// (defBlock, defIdx) has a control-flow path to one of the given boundary
// blocks. Reachability is over successor edges from the defining block
// (paths within the block after the def fall through to its successors);
// kills along the way are ignored — over-approximating keeps the check
// sound.
func otherDefReaches(f *prog.Func, cfg *analysis.CFG, defBlock, defIdx int, r isa.Reg, boundaries []int) bool {
	isBoundary := map[int]bool{}
	for _, b := range boundaries {
		isBoundary[b] = true
	}
	reaches := func(from int) bool {
		visited := map[int]bool{}
		work := append([]int(nil), cfg.Succ[from]...)
		for len(work) > 0 {
			x := work[len(work)-1]
			work = work[:len(work)-1]
			if visited[x] {
				continue
			}
			visited[x] = true
			if isBoundary[x] {
				return true
			}
			work = append(work, cfg.Succ[x]...)
		}
		return false
	}
	for _, blk := range f.Blocks {
		for j := range blk.Insts {
			if blk.ID == defBlock && j == defIdx {
				continue
			}
			if d, ok := blk.Insts[j].Def(); ok && d == r {
				if reaches(blk.ID) {
					return true
				}
			}
		}
	}
	return false
}

// sliceLeafsOn reports whether any recovery slice already attached to the
// block reads register r from its checkpoint slot (i.e. r is a leaf of the
// slice: used before any slice instruction defines it).
func sliceLeafsOn(b *prog.Block, r isa.Reg) bool {
	for _, slice := range b.RecoverySlices {
		var defined analysis.RegSet
		var uses []isa.Reg
		for i := range slice {
			uses = slice[i].Uses(uses[:0])
			for _, u := range uses {
				if u == r && !defined.Has(r) {
					return true
				}
			}
			if d, ok := slice[i].Def(); ok {
				defined.Add(d)
			}
		}
	}
	return false
}

// instPreserves reports whether the instruction neither redefines nor
// re-checkpoints any protected register. Calls fail conservatively (the
// callee may do either).
func instPreserves(in *isa.Inst, protect analysis.RegSet) bool {
	if in.Op == isa.OpCall {
		return false
	}
	if in.Op == isa.OpCkpt && protect.Has(in.Ra) {
		return false
	}
	if d, ok := in.Def(); ok && protect.Has(d) {
		return false
	}
	return true
}
