package compile

import (
	"fmt"

	"capri/internal/analysis"
	"capri/internal/isa"
	"capri/internal/prog"
)

// The semantic region verifier: an independent checker for the Capri
// contract the compiled program must uphold for whole-system persistence to
// be sound (DESIGN.md invariants 3–5), not just structural well-formedness.
// It is runnable after any pass (capricc -verify-after), and the pass manager
// always runs it on the final program.
//
// The interesting part is checkpoint coverage. Instead of trusting the
// insertion pass's own dataflow, the verifier runs the *forward* dual: a
// register's checkpoint slot is "stale" once the register is redefined and
// "fresh" again at its next OpCkpt. At every region boundary, every register
// that some path after the boundary actually reads before writing must be
// fresh — or reconstructible by that boundary's recovery slice from fresh
// leaves. The analysis is interprocedural: calls inject the callee's
// stale-at-return summary (computed to fixpoint over the call graph), and a
// function's own returns must leave nothing stale that any caller
// continuation reads (the retNeed summary). Function entries seed with the
// empty stale set: callers checkpoint everything a callee may read before
// the call, which the caller-side checks enforce.
//
// "Actually reads" is deliberately tighter than plain liveness: plain
// liveness treats every register as live at a Ret (the callee-saves-nothing
// contract), which is the right conservatism for *inserting* checkpoints but
// would flag scratch registers a callee clobbers and nobody reads. The
// verifier therefore uses ComputeLivenessWithRet with the function's retNeed
// summary at returns and callee may-read summaries at calls.

// Contract describes which parts of the Capri compilation contract a program
// is expected to satisfy at a given point in the pipeline. The zero value
// checks structure and canonical form only.
type Contract struct {
	// Threshold is the region store budget, checked when Boundaries is set.
	Threshold int
	// Boundaries requires region coverage: every mandatory boundary block
	// (function entry, loop headers, sync blocks and their successors,
	// return sites) is flagged, and no path through a region exceeds
	// Threshold store-class instructions (checkpoint stores included).
	Boundaries bool
	// Checkpoints requires checkpoint coverage of live-outs at every
	// boundary and return, plus recovery-slice well-formedness.
	Checkpoints bool
	// Materialized requires an OpBoundary instruction at index 0 of every
	// boundary block and nowhere else.
	Materialized bool
}

// FinalContract is the contract the pipeline's output must satisfy under
// opts — what Compile always enforces before returning.
func FinalContract(opts Options) Contract { return contractFor(phaseFinal, opts) }

// Check runs the semantic region verifier over p against the contract.
// Diagnostics name the offending function and block.
func Check(p *prog.Program, c Contract) error {
	if err := p.Verify(); err != nil {
		return fmt.Errorf("verify: structure: %w", err)
	}
	if err := checkCanonical(p); err != nil {
		return err
	}
	if c.Materialized {
		if err := checkMaterialized(p); err != nil {
			return err
		}
	}
	if c.Boundaries {
		if err := checkBoundaryCoverage(p); err != nil {
			return err
		}
		if err := checkThreshold(p, c.Threshold); err != nil {
			return fmt.Errorf("verify: %w", err)
		}
	}
	if c.Checkpoints {
		if err := checkSlices(p); err != nil {
			return err
		}
		if err := checkCheckpointCoverage(p); err != nil {
			return err
		}
	}
	return nil
}

// checkCanonical verifies canonical form: every synchronization instruction
// sits alone in its block (after an optional materialized boundary) and every
// return site is at a block start.
func checkCanonical(p *prog.Program) error {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			base := 0
			if len(b.Insts) > 0 && b.Insts[0].Op == isa.OpBoundary {
				base = 1
			}
			for i := base; i < len(b.Insts); i++ {
				in := &b.Insts[i]
				if !in.IsMandatoryBoundary() || in.IsTerminator() {
					continue
				}
				if i != base {
					return fmt.Errorf("verify: func %s: b%d: sync %s at index %d, not at block start", f.Name, b.ID, in, i)
				}
				// After the sync only its checkpoint stores (of the value the
				// sync defines) and the terminator may follow.
				for j := i + 1; j < len(b.Insts); j++ {
					if b.Insts[j].Op == isa.OpCkpt || b.Insts[j].IsTerminator() {
						continue
					}
					return fmt.Errorf("verify: func %s: b%d: sync %s not alone in its block", f.Name, b.ID, in)
				}
			}
		}
	}
	for _, rs := range p.RetSites {
		if rs.Index != 0 {
			return fmt.Errorf("verify: func %s: return site b%d:%d not at a block start",
				p.Funcs[rs.Func].Name, rs.Block, rs.Index)
		}
	}
	return nil
}

// checkMaterialized verifies that OpBoundary instructions exactly mirror the
// BoundaryAt flags: index 0 of every boundary block, nowhere else.
func checkMaterialized(p *prog.Program) error {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.BoundaryAt && (len(b.Insts) == 0 || b.Insts[0].Op != isa.OpBoundary) {
				return fmt.Errorf("verify: func %s: boundary block b%d does not start with an OpBoundary instruction", f.Name, b.ID)
			}
			for i := range b.Insts {
				if b.Insts[i].Op != isa.OpBoundary {
					continue
				}
				if i != 0 {
					return fmt.Errorf("verify: func %s: b%d: OpBoundary mid-block at index %d", f.Name, b.ID, i)
				}
				if !b.BoundaryAt {
					return fmt.Errorf("verify: func %s: b%d: OpBoundary in a non-boundary block", f.Name, b.ID)
				}
			}
		}
	}
	return nil
}

// checkBoundaryCoverage verifies that every mandatory region entry carries a
// boundary: function entries, loop headers, sync blocks and their
// successors, and return-site blocks (paper §4.1).
func checkBoundaryCoverage(p *prog.Program) error {
	for _, f := range p.Funcs {
		cfg := analysis.BuildCFG(f)
		for id := range mandatoryBoundaries(p, f, cfg.LoopHeaders()) {
			if !f.Blocks[id].BoundaryAt {
				return fmt.Errorf("verify: func %s: b%d must carry a region boundary (mandatory region entry)", f.Name, id)
			}
		}
	}
	return nil
}

// checkSlices verifies recovery-slice well-formedness: slices live only on
// boundary blocks, contain only re-executable instructions, and end by
// defining exactly the register they reconstruct.
func checkSlices(p *prog.Program) error {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if len(b.RecoverySlices) == 0 {
				continue
			}
			if !b.BoundaryAt {
				return fmt.Errorf("verify: func %s: b%d: recovery slices on a non-boundary block", f.Name, b.ID)
			}
			for r, slice := range b.RecoverySlices {
				if len(slice) == 0 {
					return fmt.Errorf("verify: func %s: b%d: empty recovery slice for r%d", f.Name, b.ID, r)
				}
				for i := range slice {
					if !slice[i].IsReexecutable() {
						return fmt.Errorf("verify: func %s: b%d: recovery slice for r%d contains non-re-executable %s",
							f.Name, b.ID, r, &slice[i])
					}
				}
				if d, ok := slice[len(slice)-1].Def(); !ok || d != r {
					return fmt.Errorf("verify: func %s: b%d: recovery slice for r%d does not end by defining r%d",
						f.Name, b.ID, r, r)
				}
			}
		}
	}
	return nil
}

// sliceLeaves returns the registers a recovery slice reads from checkpoint
// slots: used before any slice instruction defines them.
func sliceLeaves(slice []isa.Inst) analysis.RegSet {
	var defined, leaves analysis.RegSet
	var uses []isa.Reg
	for i := range slice {
		uses = slice[i].Uses(uses[:0])
		for _, u := range uses {
			if !defined.Has(u) {
				leaves.Add(u)
			}
		}
		if d, ok := slice[i].Def(); ok {
			defined.Add(d)
		}
	}
	return leaves
}

// staleSets holds the converged forward stale-slot dataflow.
type staleSets struct {
	in  [][]analysis.RegSet // stale at block entry, [func][block]
	out [][]analysis.RegSet // stale at block exit
	ret []analysis.RegSet   // stale at return, per function (callee summary)
}

// staleTransfer pushes a stale set through one block: defs make a register
// stale, checkpoints make it fresh, calls inject the callee's stale-at-return
// summary.
func staleTransfer(b *prog.Block, s analysis.RegSet, ret []analysis.RegSet) analysis.RegSet {
	for i := range b.Insts {
		in := &b.Insts[i]
		switch {
		case in.Op == isa.OpCkpt:
			s.Remove(in.Ra)
		case in.Op == isa.OpCall:
			s = s.Union(ret[in.Callee])
		default:
			if d, ok := in.Def(); ok {
				s.Add(d)
			}
		}
	}
	return s
}

// staleAnalysis runs the interprocedural stale-slot dataflow to fixpoint.
// Entry seed is the empty set: thread entries start with registers and
// checkpoint slots both zeroed, and non-entry functions rely on their
// callers having checkpointed everything the callee may read (which the
// caller-side boundary checks enforce).
func staleAnalysis(p *prog.Program, cc *ckptContext) *staleSets {
	st := &staleSets{
		in:  make([][]analysis.RegSet, len(p.Funcs)),
		out: make([][]analysis.RegSet, len(p.Funcs)),
		ret: make([]analysis.RegSet, len(p.Funcs)),
	}
	for fi, f := range p.Funcs {
		st.in[fi] = make([]analysis.RegSet, len(f.Blocks))
		st.out[fi] = make([]analysis.RegSet, len(f.Blocks))
	}
	for changed := true; changed; {
		changed = false
		for fi, f := range p.Funcs {
			cfg := cc.cfgs[fi]
			for _, id := range cfg.RPO {
				var in analysis.RegSet
				for _, pr := range cfg.Pred[id] {
					in = in.Union(st.out[fi][pr])
				}
				out := staleTransfer(f.Blocks[id], in, st.ret)
				if in != st.in[fi][id] || out != st.out[fi][id] {
					st.in[fi][id], st.out[fi][id] = in, out
					changed = true
				}
			}
			sr := st.ret[fi]
			for _, b := range f.Blocks {
				if t, ok := b.Terminator(); ok && t.Op == isa.OpRet {
					sr = sr.Union(st.out[fi][b.ID])
				}
			}
			if sr != st.ret[fi] {
				st.ret[fi] = sr
				changed = true
			}
		}
	}
	return st
}

// verifierLiveness computes the verifier's read-before-write liveness for
// every function, together with the matching return-need summary vRet
// (registers some caller continuation actually reads after the callee
// returns). The insertion pass's summaries are deliberately looser in ways
// that would make them wrong here: mayRead is flow-insensitive (it includes
// registers a callee reads only *after* defining them itself), and retNeed
// inherits plain liveness's all-registers-live-at-Ret conservatism from
// callers of callers.
//
// Context sensitivity matters: a call site must use the callee's pure
// read-before-write entry summary (entryRead, computed with nothing live at
// returns), NOT its live-at-entry set under vRet — the latter smuggles a
// live-through component from *other* call sites into every site. Reads in
// this caller's own continuation instead flow past the call naturally in the
// caller's backward dataflow, since calls fall through mid-block and define
// nothing. Both summaries are monotone from empty seeds, so the mutual
// fixpoint converges.
func verifierLiveness(p *prog.Program, cc *ckptContext) ([]*analysis.Liveness, []analysis.RegSet) {
	entryRead := make([]analysis.RegSet, len(p.Funcs))
	vRet := make([]analysis.RegSet, len(p.Funcs))
	lv := make([]*analysis.Liveness, len(p.Funcs))
	callUse := func(callee int32) analysis.RegSet { return entryRead[callee] }
	for changed := true; changed; {
		changed = false
		for fi, f := range p.Funcs {
			if e := analysis.ComputeLivenessWithRet(cc.cfgs[fi], callUse, 0).LiveIn[f.Entry]; e != entryRead[fi] {
				entryRead[fi] = e
				changed = true
			}
		}
		for fi := range p.Funcs {
			lv[fi] = analysis.ComputeLivenessWithRet(cc.cfgs[fi], callUse, vRet[fi])
		}
		for fi, f := range p.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Insts {
					in := &b.Insts[i]
					if in.Op != isa.OpCall {
						continue
					}
					rs := p.RetSites[in.Imm]
					after := lv[fi].LiveAt(f, rs.Block, rs.Index)
					callee := int(in.Callee)
					if u := vRet[callee].Union(after); u != vRet[callee] {
						vRet[callee] = u
						changed = true
					}
				}
			}
		}
	}
	return lv, vRet
}

// checkCheckpointCoverage verifies the core §4.2 contract: at every region
// boundary, every register actually read on some path after the boundary
// before being rewritten is either fresh in its checkpoint slot or
// reconstructible by the boundary's recovery slice from fresh leaves; and no
// function returns with a stale slot its callers' continuations read.
func checkCheckpointCoverage(p *prog.Program) error {
	cc := newCkptContext(p)
	st := staleAnalysis(p, cc)
	lv, vRet := verifierLiveness(p, cc)
	for fi, f := range p.Funcs {
		vlv := lv[fi]
		for _, b := range f.Blocks {
			if b.BoundaryAt {
				stale := st.in[fi][b.ID]
				for _, r := range stale.Intersect(vlv.LiveIn[b.ID]).Regs() {
					slice, ok := b.RecoverySlices[r]
					if !ok {
						return fmt.Errorf("verify: func %s: boundary b%d: live register r%d may hold a stale checkpoint slot (no covering checkpoint or recovery slice)",
							f.Name, b.ID, r)
					}
					if bad := sliceLeaves(slice).Intersect(stale); bad != 0 {
						return fmt.Errorf("verify: func %s: boundary b%d: recovery slice for r%d reads stale leaf slots %v",
							f.Name, b.ID, r, bad.Regs())
					}
				}
			}
			if t, ok := b.Terminator(); ok && t.Op == isa.OpRet {
				if bad := st.out[fi][b.ID].Intersect(vRet[fi]); bad != 0 {
					return fmt.Errorf("verify: func %s: b%d: returns with stale slots %v that a caller continuation reads",
						f.Name, b.ID, bad.Regs())
				}
			}
		}
	}
	return nil
}
