package compile

import (
	"capri/internal/isa"
	"capri/internal/prog"
)

// canonicalize rewrites each function so that region boundaries can always be
// expressed as block starts:
//
//   - every synchronization instruction (fence, atomic, lock, unlock,
//     barrier) sits in a block of its own — a mandatory boundary precedes it
//     and another follows it (paper §4.1);
//   - every call is the last non-terminator instruction of its block, so the
//     return site begins a block (function entry/exit boundaries, §3.3).
//
// Splitting renumbers return sites, so the program's RetSites table is
// rewritten in place.
func canonicalize(p *prog.Program) {
	for _, f := range p.Funcs {
		canonFunc(p, f)
	}
}

// canonFunc repeatedly splits blocks of f until canonical.
func canonFunc(p *prog.Program, f *prog.Func) {
	for {
		again := false
		for _, b := range f.Blocks {
			if cut, ok := splitPoint(b); ok {
				splitBlock(p, f, b, cut)
				again = true
				break // block slice changed; rescan
			}
		}
		if again {
			continue
		}
		// Return sites must sit at block starts so the function-exit
		// boundary executes when the callee returns.
		for i := range p.RetSites {
			rs := p.RetSites[i]
			if rs.Func == f.ID && rs.Index > 0 {
				splitBlock(p, f, f.Blocks[rs.Block], rs.Index)
				again = true
				break
			}
		}
		if !again {
			return
		}
	}
}

// splitPoint finds the first index at which block b must be split so that
// sync instructions sit in blocks of their own.
func splitPoint(b *prog.Block) (int, bool) {
	for i := range b.Insts {
		in := &b.Insts[i]
		if in.IsTerminator() {
			continue
		}
		if in.IsMandatoryBoundary() {
			if i > 0 {
				return i, true // sync must start its block
			}
			if !b.Insts[i+1].IsTerminator() {
				return i + 1, true // sync must be alone before the terminator
			}
		}
	}
	return 0, false
}

// splitBlock splits b at instruction index cut: b keeps [0,cut) plus a new
// Br to a fresh block holding [cut,len). Return-site tokens pointing into the
// moved suffix are redirected.
func splitBlock(p *prog.Program, f *prog.Func, b *prog.Block, cut int) {
	nb := f.NewBlock()
	nb.Insts = append(nb.Insts, b.Insts[cut:]...)
	b.Insts = append(b.Insts[:cut:cut], isa.Inst{Op: isa.OpBr, Target: int32(nb.ID)})

	for i := range p.RetSites {
		rs := &p.RetSites[i]
		if rs.Func == f.ID && rs.Block == b.ID && rs.Index >= cut {
			rs.Block = nb.ID
			rs.Index -= cut
		}
	}
}

// mandatoryBoundaries returns the set of block IDs that must carry a region
// boundary in f (paper §4.1): the entry block, loop headers, blocks starting
// with a sync instruction, blocks immediately after a sync, and return-site
// blocks. The program must already be canonical.
func mandatoryBoundaries(p *prog.Program, f *prog.Func, loopHeaders map[int]bool) map[int]bool {
	bs := map[int]bool{f.Entry: true}
	for h := range loopHeaders {
		bs[h] = true
	}
	for _, b := range f.Blocks {
		if len(b.Insts) == 0 {
			continue
		}
		if b.Insts[0].IsMandatoryBoundary() {
			bs[b.ID] = true
			// The block after the sync starts the next region.
			for _, s := range b.Succs(nil) {
				bs[s] = true
			}
		}
	}
	for _, rs := range p.RetSites {
		if rs.Func == f.ID {
			// Canonical programs have return sites at block starts.
			bs[rs.Block] = true
		}
	}
	return bs
}
