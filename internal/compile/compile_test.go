package compile

import (
	"testing"

	"capri/internal/analysis"
	"capri/internal/isa"
	"capri/internal/prog"
)

// storeLoop builds a program whose single loop performs `stores` store
// instructions per iteration over `iters` iterations.
func storeLoop(stores int) *prog.Program {
	bd := prog.NewBuilder("storeloop")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	f.SetBlock(entry)
	f.MovI(0, 0)     // i
	f.MovI(1, 1000)  // bound
	f.MovI(2, 1<<16) // base address
	f.MovI(3, 7)     // value
	f.Br(header)

	f.SetBlock(header)
	f.BrIf(0, isa.CondGE, 1, exit, body)

	f.SetBlock(body)
	for s := 0; s < stores; s++ {
		f.Store(2, int64(8*s), 3)
	}
	f.AddI(0, 0, 1)
	f.Br(header)

	f.SetBlock(exit)
	f.Emit(0)
	f.Halt()
	return bd.Program()
}

func TestCompileBasic(t *testing.T) {
	p := storeLoop(4)
	res, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if res.Stats.Regions == 0 {
		t.Error("no regions formed")
	}
	if res.Stats.Static.Ckpts == 0 {
		t.Error("no checkpoints inserted")
	}
	// The input must be untouched.
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.BoundaryAt {
				t.Fatal("Compile mutated its input")
			}
			for i := range b.Insts {
				if b.Insts[i].Op == isa.OpBoundary || b.Insts[i].Op == isa.OpCkpt {
					t.Fatal("Compile mutated input instructions")
				}
			}
		}
	}
}

func TestCompileRejectsBadThreshold(t *testing.T) {
	if _, err := Compile(storeLoop(1), Options{Threshold: 0}); err == nil {
		t.Error("Compile should reject threshold 0")
	}
	if _, err := Compile(storeLoop(1), Options{Threshold: -5}); err == nil {
		t.Error("Compile should reject negative threshold")
	}
}

// maxRegionStores computes the verified worst-case store count per region
// over all functions.
func maxRegionStores(t *testing.T, p *prog.Program) int {
	t.Helper()
	max := 0
	for _, f := range p.Funcs {
		for _, r := range regionsOf(f) {
			if r.MaxStores > max {
				max = r.MaxStores
			}
		}
	}
	return max
}

func TestThresholdInvariantHolds(t *testing.T) {
	for _, th := range []int{8, 32, 256} {
		for _, stores := range []int{1, 3, 10, 40} {
			opts := DefaultOptions()
			opts.Threshold = th
			res, err := Compile(storeLoop(stores), opts)
			if err != nil {
				t.Fatalf("th=%d stores=%d: %v", th, stores, err)
			}
			if got := maxRegionStores(t, res.Program); got > th {
				t.Errorf("th=%d stores=%d: worst-case region stores = %d", th, stores, got)
			}
		}
	}
}

func TestOversizedBlockIsSplit(t *testing.T) {
	// A single block with 100 stores and threshold 16 must be split.
	bd := prog.NewBuilder("big")
	f := bd.Func("main")
	f.Block()
	f.MovI(0, 1<<16)
	f.MovI(1, 5)
	for i := 0; i < 100; i++ {
		f.Store(0, int64(8*i), 1)
	}
	f.Halt()
	p := bd.Program()

	opts := DefaultOptions()
	opts.Threshold = 16
	res, err := Compile(p, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := maxRegionStores(t, res.Program); got > 16 {
		t.Errorf("worst-case region stores = %d, want <= 16", got)
	}
	if len(res.Program.Funcs[0].Blocks) < 2 {
		t.Error("oversized block was not split")
	}
}

func TestLoopHeaderIsBoundary(t *testing.T) {
	opts := DefaultOptions()
	opts.Unroll = false // keep the original loop shape
	res := MustCompile(storeLoop(2), opts)
	f := res.Program.Funcs[0]
	cfg := analysis.BuildCFG(f)
	found := false
	for h := range cfg.LoopHeaders() {
		if !f.Blocks[h].BoundaryAt {
			t.Errorf("loop header b%d lacks a boundary", h)
		}
		found = true
	}
	if !found {
		t.Fatal("no loop header detected")
	}
}

func TestBoundaryInstructionMaterialized(t *testing.T) {
	res := MustCompile(storeLoop(2), DefaultOptions())
	for _, f := range res.Program.Funcs {
		for _, b := range f.Blocks {
			if b.BoundaryAt && b.Insts[0].Op != isa.OpBoundary {
				t.Errorf("f%d b%d: boundary block does not start with OpBoundary", f.ID, b.ID)
			}
			for i := 1; i < len(b.Insts); i++ {
				if b.Insts[i].Op == isa.OpBoundary {
					t.Errorf("f%d b%d: OpBoundary mid-block at %d", f.ID, b.ID, i)
				}
			}
		}
	}
}

func TestUnrollLengthensRegions(t *testing.T) {
	base := OptionsForLevel(LevelCkpt, 256)
	unrolled := OptionsForLevel(LevelUnroll, 256)

	r1 := MustCompile(storeLoop(2), base)
	r2 := MustCompile(storeLoop(2), unrolled)

	if r2.Stats.LoopsUnrolled == 0 {
		t.Fatal("speculative unrolling did not fire")
	}
	// Unrolling must grow the code and keep it verifiable.
	if r2.Stats.Static.Insts <= r1.Stats.Static.Insts {
		t.Errorf("unrolled insts = %d, want > %d", r2.Stats.Static.Insts, r1.Stats.Static.Insts)
	}
	// Region store budget still respected.
	if got := maxRegionStores(t, r2.Program); got > 256 {
		t.Errorf("unrolled worst-case stores = %d", got)
	}
}

func TestUnrollPreservesSemantics(t *testing.T) {
	// Structural check: the unrolled loop must still contain exactly one
	// back edge to the original header and each body copy must keep an exit
	// edge (the "speculative" part).
	p := storeLoop(2)
	res := MustCompile(p, OptionsForLevel(LevelUnroll, 256))
	f := res.Program.Funcs[0]
	cfg := analysis.BuildCFG(f)
	loops := cfg.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops after unroll = %d, want 1", len(loops))
	}
	l := loops[0]
	if len(l.Latches) != 1 {
		t.Errorf("latches = %v, want exactly 1", l.Latches)
	}
	// Multiple exits: one per duplicated exit condition.
	if len(l.Exits) < 2 {
		t.Errorf("exits = %d, want >= 2 (duplicated exit conditions)", len(l.Exits))
	}
}

func TestNaiveRegionsEveryBlock(t *testing.T) {
	opts := Options{Threshold: 256, InsertCheckpoints: true, NaiveRegions: true, MaxUnroll: 1}
	res := MustCompile(storeLoop(2), opts)
	for _, f := range res.Program.Funcs {
		for _, b := range f.Blocks {
			if !b.BoundaryAt {
				t.Errorf("naive mode: f%d b%d not a boundary", f.ID, b.ID)
			}
		}
	}
}

func TestLevelOptions(t *testing.T) {
	if o := OptionsForLevel(LevelRegion, 64); o.InsertCheckpoints || o.Unroll || o.Prune || o.LICM {
		t.Errorf("LevelRegion options = %+v", o)
	}
	if o := OptionsForLevel(LevelLICM, 64); !(o.InsertCheckpoints && o.Unroll && o.Prune && o.LICM) {
		t.Errorf("LevelLICM options = %+v", o)
	}
	if o := OptionsForLevel(LevelUnroll, 64); !o.Unroll || o.Prune {
		t.Errorf("LevelUnroll options = %+v", o)
	}
	names := []string{"region", "+ckpt", "+unrolling", "+pruning", "+licm"}
	for i, l := range Levels {
		if l.String() != names[i] {
			t.Errorf("level %d = %q, want %q", i, l, names[i])
		}
	}
}

// callProgram builds main -> leaf with live values across the call.
func callProgram() *prog.Program {
	bd := prog.NewBuilder("calls")
	leaf := bd.Func("leaf")
	leaf.Block()
	leaf.AddI(isa.A0, isa.A0, 5)
	leaf.Ret()

	main := bd.Func("main")
	main.Block()
	main.MovI(isa.SP, 1<<20)
	main.MovI(isa.A0, 10)
	main.MovI(10, 77) // live across the call
	main.Call(leaf)
	main.Add(11, isa.A0, 10)
	main.Emit(11)
	main.Halt()
	bd.SetThreadEntries(main)
	return bd.Program()
}

func TestCallBoundaries(t *testing.T) {
	res := MustCompile(callProgram(), DefaultOptions())
	p := res.Program
	// Callee entry is a boundary.
	leaf := p.FuncByName("leaf")
	if !leaf.Blocks[leaf.Entry].BoundaryAt {
		t.Error("callee entry must be a region boundary")
	}
	// Return sites are at block starts and boundaries.
	for _, rs := range p.RetSites {
		if rs.Index != 0 {
			t.Errorf("return site %+v not at block start", rs)
		}
		if !p.Funcs[rs.Func].Blocks[rs.Block].BoundaryAt {
			t.Errorf("return-site block %+v not a boundary", rs)
		}
	}
}

func TestCallCheckpointsLiveAcross(t *testing.T) {
	res := MustCompile(callProgram(), DefaultOptions())
	main := res.Program.FuncByName("main")
	// r10 is live across the call: it must be checkpointed before the call.
	foundCkpt := false
	for _, b := range main.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Op == isa.OpCkpt && b.Insts[i].Ra == 10 {
				foundCkpt = true
			}
			if b.Insts[i].Op == isa.OpCall && !foundCkpt {
				t.Error("r10 not checkpointed before the call")
			}
		}
	}
	if !foundCkpt {
		t.Error("no checkpoint for r10 anywhere")
	}
}

func TestSyncBlocksAreIsolatedBoundaries(t *testing.T) {
	bd := prog.NewBuilder("sync")
	f := bd.Func("main")
	f.Block()
	f.MovI(0, 1<<16)
	f.MovI(1, 1)
	f.Store(0, 0, 1)
	f.Fence()
	f.Store(0, 8, 1)
	f.AtomicAdd(2, 0, 16, 1)
	f.Store(0, 24, 1)
	f.Halt()
	p := bd.Program()

	res := MustCompile(p, DefaultOptions())
	f2 := res.Program.Funcs[0]
	for _, b := range f2.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.IsMandatoryBoundary() {
				if !b.BoundaryAt {
					t.Errorf("b%d: sync %s in non-boundary block", b.ID, in)
				}
				// Sync must be alone: boundary + sync + terminator.
				nonTrivial := 0
				for j := range b.Insts {
					switch b.Insts[j].Op {
					case isa.OpBoundary, isa.OpBr, isa.OpBrIf, isa.OpHalt, isa.OpRet:
					default:
						nonTrivial++
					}
				}
				if nonTrivial != 1 {
					t.Errorf("b%d: sync block has %d payload instructions", b.ID, nonTrivial)
				}
			}
		}
	}
}

func TestPruneRemovesReconstructible(t *testing.T) {
	// Build the paper's Figure 3 essence in straight line:
	//   r1 = 3 (ckpt), r3 = 4 (ckpt), r2 = r1+r3 (ckpt -> prunable),
	//   boundary (loop header), use r1,r2,r3.
	bd := prog.NewBuilder("prune")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	f.SetBlock(entry)
	f.MovI(1, 3)
	f.MovI(3, 4)
	f.Add(2, 1, 3)
	f.MovI(0, 0)
	f.MovI(4, 50)
	f.MovI(5, 1<<16)
	f.Br(header)

	f.SetBlock(header)
	f.BrIf(0, isa.CondGE, 4, exit, body)

	f.SetBlock(body)
	f.Store(5, 0, 1)
	f.Store(5, 8, 2)
	f.Store(5, 16, 3)
	f.AddI(0, 0, 1)
	f.Br(header)

	f.SetBlock(exit)
	f.Emit(2)
	f.Halt()
	p := bd.Program()

	noPrune := MustCompile(p, OptionsForLevel(LevelUnroll, 256))
	withPrune := MustCompile(p, OptionsForLevel(LevelPrune, 256))

	if withPrune.Stats.CkptsPruned == 0 {
		t.Fatal("pruning did not fire")
	}
	if withPrune.Stats.Static.Ckpts >= noPrune.Stats.Static.Ckpts {
		t.Errorf("ckpts with prune = %d, want < %d",
			withPrune.Stats.Static.Ckpts, noPrune.Stats.Static.Ckpts)
	}
	// A recovery slice must exist on some boundary block.
	slices := 0
	for _, fn := range withPrune.Program.Funcs {
		for _, b := range fn.Blocks {
			if len(b.RecoverySlices) > 0 {
				if !b.BoundaryAt {
					t.Errorf("recovery slice on non-boundary block b%d", b.ID)
				}
				slices += len(b.RecoverySlices)
			}
		}
	}
	if slices == 0 {
		t.Error("no recovery slices attached")
	}
}

func TestLICMHoistsInvariantPair(t *testing.T) {
	// Loop containing a call (an in-loop boundary) and a loop-invariant
	// computation r8 = r6*r7 that the need analysis will checkpoint inside
	// the loop. r8 is consumed only inside the loop, after the def.
	bd := prog.NewBuilder("licm")
	leaf := bd.Func("leaf")
	leaf.Block()
	leaf.AddI(isa.A0, isa.A0, 1)
	leaf.Ret()

	main := bd.Func("main")
	entry := main.Block()
	header := main.Block()
	body := main.Block()
	exit := main.Block()

	main.SetBlock(entry)
	main.MovI(isa.SP, 1<<20)
	main.MovI(0, 0)
	main.MovI(1, 20)
	main.MovI(6, 6)
	main.MovI(7, 7)
	main.MovI(9, 1<<16)
	main.Br(header)

	main.SetBlock(header)
	main.BrIf(0, isa.CondGE, 1, exit, body)

	main.SetBlock(body)
	main.Mul(8, 6, 7) // loop-invariant def
	main.Call(leaf)
	main.Store(9, 0, 8) // r8 used after an in-loop boundary
	main.AddI(0, 0, 1)
	main.Br(header)

	main.SetBlock(exit)
	main.Emit(0)
	main.Halt()
	bd.SetThreadEntries(main)
	p := bd.Program()

	opts := OptionsForLevel(LevelLICM, 256)
	opts.Unroll = false // keep the loop shape simple for the assertion
	res := MustCompile(p, opts)
	if res.Stats.CkptsHoisted == 0 {
		t.Fatal("LICM did not hoist anything")
	}
	// The multiply must now be outside the loop.
	f := res.Program.FuncByName("main")
	cfg := analysis.BuildCFG(f)
	loops := cfg.Loops()
	for _, l := range loops {
		for id := range l.Blocks {
			for i := range f.Blocks[id].Insts {
				in := &f.Blocks[id].Insts[i]
				if in.Op == isa.OpMul && in.Rd == 8 {
					t.Error("invariant multiply still inside the loop")
				}
			}
		}
	}
}

func TestCheckpointLevelsMonotonicNVMWrites(t *testing.T) {
	// More aggressive levels must never increase static checkpoint count.
	p := storeLoop(2)
	prev := -1
	for _, l := range []Level{LevelCkpt, LevelUnroll, LevelPrune, LevelLICM} {
		res := MustCompile(p, OptionsForLevel(l, 256))
		c := res.Stats.Static.Ckpts
		if prev >= 0 && l >= LevelPrune && c > prev {
			t.Errorf("level %s has %d ckpts > previous %d", l, c, prev)
		}
		prev = c
	}
}

func TestRegionsOfCoversAllBlocks(t *testing.T) {
	res := MustCompile(storeLoop(3), DefaultOptions())
	for _, f := range res.Program.Funcs {
		cfg := analysis.BuildCFG(f)
		covered := map[int]bool{}
		for _, r := range regionsOf(f) {
			for b := range r.Blocks {
				covered[b] = true
			}
		}
		for _, id := range cfg.RPO {
			if !covered[id] {
				t.Errorf("f%d b%d not in any region", f.ID, id)
			}
		}
	}
}

func TestAutoMaxUnrollFormula(t *testing.T) {
	// Pin the automatic unroll cap to its documented formula
	// max(2, min(16, threshold/40)): thresholds below 80 floor at 2, the
	// default 256 admits 6x, and 640+ saturates the cap of 16.
	cases := map[int]int{8: 2, 40: 2, 64: 2, 80: 2, 128: 3, 256: 6, 512: 12, 640: 16, 1024: 16}
	for th, want := range cases {
		if got := autoMaxUnroll(th); got != want {
			t.Errorf("autoMaxUnroll(%d) = %d, want %d", th, got, want)
		}
	}

	// MaxUnroll 0 must compile exactly like the explicit automatic value.
	p := storeLoop(3)
	auto := MustCompile(p, DefaultOptions())
	explicit := DefaultOptions()
	explicit.MaxUnroll = autoMaxUnroll(explicit.Threshold)
	if auto.Program.Fingerprint() != MustCompile(p, explicit).Program.Fingerprint() {
		t.Error("MaxUnroll=0 compiles differently from the explicit automatic cap")
	}
}
