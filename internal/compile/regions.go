package compile

import (
	"fmt"

	"capri/internal/analysis"
	"capri/internal/isa"
	"capri/internal/prog"
)

// placeBoundaries decides which blocks of f begin a region. Mandatory
// boundaries (function entry, loop headers, sync blocks and their successors,
// return sites) are fixed; optional boundaries are added only where needed so
// that no path through a region executes more than opts.Threshold store-class
// instructions. ckptEst supplies a per-block estimate of checkpoint stores to
// be inserted later (paper §4.1 breaks the region/checkpoint circular
// dependence the same way: estimate per initial region, then combine).
//
// Oversized single blocks (more stores than the threshold on their own) are
// split first so a boundary can land mid-sequence.
//
// The traversal works because every cycle in the CFG passes through a loop
// header, which is a mandatory boundary: the store-count recurrence below
// only flows along forward edges of the resulting DAG.
func placeBoundaries(p *prog.Program, f *prog.Func, opts Options, ckptEst func(b *prog.Block) int) {
	// Split any block whose own store weight exceeds the threshold.
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if cut, ok := oversizedCut(b, opts.Threshold, ckptEst); ok {
				splitBlock(p, f, b, cut)
				changed = true
				break
			}
		}
	}

	cfg := analysis.BuildCFG(f)
	mand := mandatoryBoundaries(p, f, cfg.LoopHeaders())
	for _, b := range f.Blocks {
		b.BoundaryAt = mand[b.ID]
		if opts.NaiveRegions {
			b.BoundaryAt = true
		}
	}
	if opts.NaiveRegions {
		return
	}

	// weight[b]: worst-case store count from the enclosing region's start to
	// the end of b. Computed in RPO; a block becomes a boundary when carrying
	// the incoming maximum through it would overflow the threshold.
	weight := make([]int, len(f.Blocks))
	for _, id := range cfg.RPO {
		b := f.Blocks[id]
		own := blockWeight(b, ckptEst)
		maxIn := 0
		for _, pr := range cfg.Pred[id] {
			// Back edges always target loop headers, which are boundaries;
			// their weight contribution is irrelevant because boundary
			// blocks reset below. Forward edges from unprocessed blocks
			// cannot occur in RPO for a DAG-with-headers.
			if w := weight[pr]; w > maxIn {
				maxIn = w
			}
		}
		if !b.BoundaryAt && maxIn+own > opts.Threshold {
			b.BoundaryAt = true
		}
		if b.BoundaryAt {
			weight[id] = own
		} else {
			weight[id] = maxIn + own
		}
	}
}

// blockWeight is the store weight of one block: its store-class instructions
// plus the estimated checkpoints it will receive.
func blockWeight(b *prog.Block, ckptEst func(*prog.Block) int) int {
	w := b.StoreCount()
	if ckptEst != nil {
		w += ckptEst(b)
	}
	return w
}

// oversizedCut returns an instruction index at which to split a block whose
// own weight exceeds the threshold, keeping at most threshold/2 stores in the
// prefix so later checkpoint insertion has headroom.
func oversizedCut(b *prog.Block, threshold int, ckptEst func(*prog.Block) int) (int, bool) {
	if blockWeight(b, ckptEst) <= threshold {
		return 0, false
	}
	budget := threshold / 2
	if budget < 1 {
		budget = 1
	}
	stores := 0
	for i := range b.Insts {
		if b.Insts[i].IsTerminator() {
			break
		}
		if b.Insts[i].IsStore() {
			stores++
			if stores > budget && i+1 < len(b.Insts) && !b.Insts[i+1].IsTerminator() {
				return i + 1, true
			}
		}
	}
	return 0, false
}

// Region is one compiler-formed region: a boundary block plus every block
// reachable from it without crossing another boundary.
type Region struct {
	// Head is the boundary block that starts the region.
	Head int
	// Blocks is the region's block set (includes Head).
	Blocks map[int]bool
	// MaxStores is the worst-case store-class count along any path through
	// the region, counting actual instructions (checkpoints included).
	MaxStores int
}

// regionsOf groups the function's blocks into regions given final boundary
// flags. A non-boundary block reachable from multiple boundaries belongs to
// every such region (regions may overlap across join points; the worst-case
// store accounting covers all of them).
func regionsOf(f *prog.Func) []Region {
	cfg := analysis.BuildCFG(f)
	var regions []Region
	for _, id := range cfg.RPO {
		if !f.Blocks[id].BoundaryAt {
			continue
		}
		r := Region{Head: id, Blocks: map[int]bool{id: true}}
		// Forward walk without crossing other boundaries.
		work := []int{id}
		for len(work) > 0 {
			x := work[len(work)-1]
			work = work[:len(work)-1]
			for _, s := range cfg.Succ[x] {
				if f.Blocks[s].BoundaryAt || r.Blocks[s] {
					continue
				}
				r.Blocks[s] = true
				work = append(work, s)
			}
		}
		regions = append(regions, r)
	}
	// Worst-case store DP inside each region (regions are DAGs: any cycle
	// would re-enter a boundary).
	for i := range regions {
		r := &regions[i]
		memo := map[int]int{}
		var walk func(b int) int
		walk = func(b int) int {
			if v, ok := memo[b]; ok {
				return v
			}
			memo[b] = 0 // cycle guard; regions are acyclic so unused
			best := 0
			for _, s := range cfg.Succ[b] {
				if r.Blocks[s] && s != r.Head {
					if w := walk(s); w > best {
						best = w
					}
				}
			}
			v := f.Blocks[b].StoreCount() + best
			memo[b] = v
			return v
		}
		r.MaxStores = walk(r.Head)
	}
	return regions
}

// verifyThreshold checks invariant 3 of DESIGN.md: no region's worst-case
// store count exceeds the threshold. Returns the offending region if any.
func verifyThreshold(f *prog.Func, threshold int) error {
	for _, r := range regionsOf(f) {
		if r.MaxStores > threshold {
			return fmt.Errorf("func %s: region at b%d has worst-case %d stores > threshold %d",
				f.Name, r.Head, r.MaxStores, threshold)
		}
	}
	return nil
}

// materializeBoundaries inserts an explicit OpBoundary instruction at the
// start of every boundary block so the architecture sees the region
// delimiters in the instruction stream (paper §3.2: "region boundary
// instructions").
func materializeBoundaries(f *prog.Func) {
	for _, b := range f.Blocks {
		if !b.BoundaryAt {
			continue
		}
		if len(b.Insts) > 0 && b.Insts[0].Op == isa.OpBoundary {
			continue
		}
		b.Insts = append([]isa.Inst{{Op: isa.OpBoundary}}, b.Insts...)
	}
	// Return sites are at index 0 of their blocks after canonicalization, so
	// prepending the boundary leaves them pointing at the boundary itself —
	// exactly right: the boundary must execute when the callee returns.
}
