package compile

import (
	"testing"

	"capri/internal/isa"
	"capri/internal/prog"
)

// callLoop builds main calling a small leaf inside a loop — the shape whose
// regions are call-bound.
func callLoop(iters int64, leafSize int) *prog.Program {
	bd := prog.NewBuilder("callloop")
	leaf := bd.Func("leaf")
	leaf.Block()
	for i := 0; i < leafSize; i++ {
		leaf.AddI(isa.A0, isa.A0, int64(i+1))
	}
	leaf.Ret()

	main := bd.Func("main")
	entry := main.Block()
	header := main.Block()
	body := main.Block()
	exit := main.Block()

	main.SetBlock(entry)
	main.MovI(isa.SP, 1<<19)
	main.MovI(8, 0)
	main.MovI(9, iters)
	main.MovI(10, 1<<20)
	main.MovI(isa.A0, 0)
	main.Br(header)
	main.SetBlock(header)
	main.BrIf(8, isa.CondGE, 9, exit, body)
	main.SetBlock(body)
	main.Call(leaf)
	main.Store(10, 0, isa.A0)
	main.AddI(8, 8, 1)
	main.Br(header)
	main.SetBlock(exit)
	main.Emit(isa.A0)
	main.Halt()
	bd.SetThreadEntries(main)
	return bd.Program()
}

func TestInlineRemovesCalls(t *testing.T) {
	opts := DefaultOptions()
	opts.Inline = true
	res, err := Compile(callLoop(20, 6), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CallsInlined == 0 {
		t.Fatal("no calls inlined")
	}
	// The main function must contain no calls afterwards.
	main := res.Program.FuncByName("main")
	for _, b := range main.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Op == isa.OpCall {
				t.Fatal("call survived inlining")
			}
		}
	}
}

func TestInlinePreservesSemantics(t *testing.T) {
	// Compare static outputs via the region-free level so only the inliner
	// differs... easiest faithful check: compile both ways and let the
	// machine tests compare (done in the machine package); here assert the
	// structural invariants hold and the program verifies at every level.
	src := callLoop(10, 4)
	for _, inline := range []bool{false, true} {
		for _, l := range Levels {
			opts := OptionsForLevel(l, 64)
			opts.Inline = inline
			if _, err := Compile(src, opts); err != nil {
				t.Errorf("inline=%v level=%s: %v", inline, l, err)
			}
		}
	}
}

func TestInlineLengthensRegions(t *testing.T) {
	src := callLoop(50, 8)
	base := MustCompile(src, DefaultOptions())
	opts := DefaultOptions()
	opts.Inline = true
	inl := MustCompile(src, opts)

	// Boundary count must drop: entry/return-site boundaries disappear.
	if inl.Stats.Regions >= base.Stats.Regions {
		t.Errorf("regions: base %d, inlined %d — inlining did not reduce boundaries",
			base.Stats.Regions, inl.Stats.Regions)
	}
}

func TestInlineSkipsBigAndRecursive(t *testing.T) {
	// A callee above the size bound stays out-of-line.
	opts := DefaultOptions()
	opts.Inline = true
	opts.InlineMaxInsts = 4
	res := MustCompile(callLoop(5, 20), opts)
	if res.Stats.CallsInlined != 0 {
		t.Error("oversized callee inlined")
	}

	// A self-recursive function must never be inlined into itself.
	bd := prog.NewBuilder("rec")
	rec := bd.Func("rec")
	b0 := rec.Block()
	b1 := rec.Block()
	b2 := rec.Block()
	rec.SetBlock(b0)
	rec.BrIf(isa.A0, isa.CondLE, isa.A1, b2, b1)
	rec.SetBlock(b1)
	rec.AddI(isa.A0, isa.A0, -1)
	rec.Call(rec)
	rec.Ret()
	rec.SetBlock(b2)
	rec.Ret()

	main := bd.Func("main")
	main.Block()
	main.MovI(isa.SP, 1<<19)
	main.MovI(isa.A0, 3)
	main.MovI(isa.A1, 0)
	main.Call(rec)
	main.Emit(isa.A0)
	main.Halt()
	bd.SetThreadEntries(main)

	opts = DefaultOptions()
	opts.Inline = true
	res, err := Compile(bd.Program(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// rec calls itself, so it is not a leaf: nothing to inline anywhere
	// (main's call to rec also blocked since rec isn't a leaf).
	if res.Stats.CallsInlined != 0 {
		t.Errorf("recursive callee inlined %d times", res.Stats.CallsInlined)
	}
}

func TestInlineCalleeWithBranches(t *testing.T) {
	// Multi-block callees (diamonds) inline correctly.
	bd := prog.NewBuilder("diamond")
	leaf := bd.Func("leaf")
	l0 := leaf.Block()
	l1 := leaf.Block()
	l2 := leaf.Block()
	l3 := leaf.Block()
	leaf.SetBlock(l0)
	leaf.BrIf(isa.A0, isa.CondLT, isa.A1, l1, l2)
	leaf.SetBlock(l1)
	leaf.AddI(isa.A0, isa.A0, 100)
	leaf.Br(l3)
	leaf.SetBlock(l2)
	leaf.AddI(isa.A0, isa.A0, 200)
	leaf.Br(l3)
	leaf.SetBlock(l3)
	leaf.Ret()

	main := bd.Func("main")
	main.Block()
	main.MovI(isa.SP, 1<<19)
	main.MovI(isa.A0, 1)
	main.MovI(isa.A1, 5)
	main.Call(leaf) // takes the then arm: +100
	main.MovI(isa.A1, 0)
	main.Call(leaf) // takes the else arm: +200
	main.Emit(isa.A0)
	main.Halt()
	bd.SetThreadEntries(main)

	opts := DefaultOptions()
	opts.Inline = true
	res, err := Compile(bd.Program(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CallsInlined != 2 {
		t.Errorf("inlined %d calls, want 2", res.Stats.CallsInlined)
	}
}
