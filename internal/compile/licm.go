package compile

import (
	"capri/internal/analysis"
	"capri/internal/isa"
	"capri/internal/prog"
)

// Checkpoint motion out of loops (paper §4.4.2).
//
// A checkpoint store may be moved anywhere between its register's defining
// instruction and the next region boundary. When both the def and its
// checkpoint sit inside a loop but the computed value is loop-invariant, the
// pair re-executes every iteration, re-writing the same checkpoint slot — the
// repeated-checkpoint problem of paper Figure 4. We hoist the (re-executable,
// loop-invariant) def together with its checkpoint into the loop preheader.
//
// Hoisting to the preheader, rather than the paper's loop exit, keeps the
// checkpoint-freshness invariant for crashes *inside* the loop: the slot is
// written before the first header boundary ever commits (see DESIGN.md).
//
// Conditions for hoisting a (def, ckpt) pair of register r out of loop L:
//   - def is re-executable and every operand has no definition inside L;
//   - def is the only definition of r anywhere in L;
//   - the loop has a unique preheader (single edge into the header from
//     outside);
//   - r is not live into the header (no in-loop use of r's pre-loop value,
//     so executing the def earlier is invisible);
//   - r is not live at any loop exit target (a zero-trip loop would
//     otherwise expose the speculated value after the loop);
//   - speculating the def is safe because re-executable instructions are
//     pure (no memory access, no traps in our ISA: div/rem by zero yield 0).
//
// These pairs arise when a loop body contains non-header boundaries (calls,
// atomics) whose recovery needs a loop-invariant value: the checkpoint-need
// analysis places the checkpoint next to the def inside the loop, and this
// pass lifts the pair out.
func licmCheckpoints(f *prog.Func, callUse func(int32) analysis.RegSet) int {
	moved := 0
	for {
		cfg := analysis.BuildCFG(f)
		loops := cfg.Loops()
		did := false
		for li := range loops {
			l := &loops[li]
			pre, ok := preheader(f, cfg, l)
			if !ok {
				continue
			}
			lv := analysis.ComputeLivenessCallAware(cfg, callUse)
			if tryHoist(f, lv, l, pre) {
				moved++
				did = true
				break // CFG metadata stale after mutation; rebuild
			}
		}
		if !did {
			return moved
		}
	}
}

// preheader returns the unique out-of-loop predecessor of the loop header,
// if there is exactly one.
func preheader(f *prog.Func, cfg *analysis.CFG, l *analysis.Loop) (int, bool) {
	pre, n := -1, 0
	for _, p := range cfg.Pred[l.Header] {
		if !l.Blocks[p] {
			pre = p
			n++
		}
	}
	return pre, n == 1
}

// tryHoist finds one hoistable (def, ckpt) pair in loop l and moves it to the
// end of the preheader (before its terminator). Reports whether it moved one.
func tryHoist(f *prog.Func, lv *analysis.Liveness, l *analysis.Loop, pre int) bool {
	defsInLoop := map[isa.Reg]int{}
	for id := range l.Blocks {
		b := f.Blocks[id]
		for i := range b.Insts {
			if d, ok := b.Insts[i].Def(); ok {
				defsInLoop[d]++
			}
		}
	}

	for id := range l.Blocks {
		b := f.Blocks[id]
		for i := 0; i+1 < len(b.Insts); i++ {
			def := b.Insts[i]
			ck := b.Insts[i+1]
			if ck.Op != isa.OpCkpt {
				continue
			}
			d, ok := def.Def()
			if !ok || d != ck.Ra || !def.IsReexecutable() {
				continue
			}
			if defsInLoop[d] != 1 {
				continue
			}
			// No in-loop use of the pre-loop value, and no post-loop use
			// that a zero-trip execution would corrupt.
			if lv.LiveIn[l.Header].Has(d) {
				continue
			}
			exitsSafe := true
			for _, e := range l.Exits {
				if lv.LiveIn[e.To].Has(d) {
					exitsSafe = false
					break
				}
			}
			if !exitsSafe {
				continue
			}
			invariant := true
			var uses []isa.Reg
			for _, s := range def.Uses(uses) {
				if defsInLoop[s] > 0 {
					invariant = false
					break
				}
			}
			if !invariant {
				continue
			}
			// Hoist: remove both instructions from the loop, append them to
			// the preheader before its terminator.
			b.Insts = append(b.Insts[:i:i], b.Insts[i+2:]...)
			pb := f.Blocks[pre]
			term := len(pb.Insts) - 1
			rest := append([]isa.Inst{def, ck}, pb.Insts[term:]...)
			pb.Insts = append(pb.Insts[:term:term], rest...)
			return true
		}
	}
	return false
}
