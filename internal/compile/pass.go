package compile

import (
	"fmt"
	"time"

	"capri/internal/analysis"
	"capri/internal/prog"
)

// The pass manager. Compile no longer hardcodes the pipeline: newPipeline
// builds a pass list from Options, and pipeline.run executes it with uniform
// bookkeeping — per-pass wall time and action counts into Stats.Passes,
// structural verification after every pass, and the semantic region verifier
// (verify.go) after any pass selected by Options.VerifyAfter. Region
// formation and checkpoint insertion form a fixpoint group: checkpoints are
// stores, so inserting them can overflow a region sized with estimates only,
// and the group re-runs (bounded by maxRounds) until the threshold invariant
// holds.

// Pass names, as accepted by Options.VerifyAfter and capricc's -verify-after
// / -dump-after flags.
const (
	PassCanonicalize = "canonicalize"
	PassInline       = "inline"
	PassUnroll       = "unroll"
	PassRegions      = "regions"
	PassCkpt         = "ckpt"
	PassPrune        = "prune"
	PassLICM         = "licm"
	PassMaterialize  = "materialize"
)

// AllPassNames lists every pass the compiler knows, in pipeline order.
var AllPassNames = []string{
	PassCanonicalize, PassInline, PassUnroll, PassRegions,
	PassCkpt, PassPrune, PassLICM, PassMaterialize,
}

// PassStat reports one pass's activity within a compile.
type PassStat struct {
	// Name is the pass name (see AllPassNames).
	Name string
	// Runs counts executions: 1 for straight-line passes, up to maxRounds for
	// the regions/ckpt fixpoint group.
	Runs int
	// Changed is the pass's action count summed over runs: boundaries placed,
	// checkpoints inserted, checkpoints pruned, pairs hoisted, loops
	// unrolled, calls inlined, blocks split, boundaries materialized.
	Changed int
	// WallNS is total wall time across runs, in nanoseconds.
	WallNS int64
	// VerifyNS is the time spent verifying this pass's output (structural
	// check plus the semantic verifier when selected), in nanoseconds.
	VerifyNS int64
}

// Hooks observes the pass manager as it runs. Hooks are deliberately not part
// of Options: Options stays comparable (it is half of the compile-cache key),
// and observation must never change what the pipeline produces.
type Hooks struct {
	// AfterPass fires after every execution of a pass, with the program in
	// its post-pass state. Passes in the fixpoint group fire once per round.
	// The program is the live working copy — observe, do not mutate.
	AfterPass func(pass string, p *prog.Program)
}

// verifyPhase says how much of the Capri contract (verify.Contract) a pass's
// output is expected to satisfy.
type verifyPhase int

const (
	// phaseFront: canonical form only — regions are not formed yet.
	phaseFront verifyPhase = iota
	// phaseRegions: boundary coverage, the threshold invariant, and (when
	// checkpoints are enabled) checkpoint coverage.
	phaseRegions
	// phaseFinal: phaseRegions plus materialized OpBoundary instructions.
	phaseFinal
)

// contractFor maps a pass's phase to the semantic contract its output must
// satisfy under the given options.
func contractFor(ph verifyPhase, opts Options) Contract {
	c := Contract{Threshold: opts.Threshold}
	switch ph {
	case phaseRegions:
		c.Boundaries = true
		c.Checkpoints = opts.InsertCheckpoints
	case phaseFinal:
		c.Boundaries = true
		c.Checkpoints = opts.InsertCheckpoints
		c.Materialized = true
	}
	return c
}

// passCtx carries the mutable compile state through the pipeline.
type passCtx struct {
	p     *prog.Program
	opts  Options
	stats *Stats
	// round is the current iteration of the fixpoint group (0-based); the
	// regions pass uses checkpoint estimates on round 0 only.
	round int
	// cc is the shared interprocedural summary context for prune and licm.
	// Built lazily on first use after checkpoints are final; both passes must
	// see the same may-read summaries (the historical single-context
	// behavior), so it is not invalidated between them.
	cc *ckptContext
}

// ckptCtx returns the lazily built shared ckptContext.
func (pc *passCtx) ckptCtx() *ckptContext {
	if pc.cc == nil {
		pc.cc = newCkptContext(pc.p)
	}
	return pc.cc
}

// pass is one named pipeline stage: run mutates pc.p and returns its action
// count; phase selects the semantic contract checked after it.
type pass struct {
	name  string
	phase verifyPhase
	run   func(pc *passCtx) (changed int, err error)
}

// stage groups passes; a fixpoint stage re-runs its passes until the
// threshold invariant holds (bounded by maxRounds).
type stage struct {
	fixpoint bool
	passes   []pass
}

// maxRounds bounds the regions/ckpt fixpoint: estimates only ever shrink
// toward reality, so convergence is fast; four rounds has always sufficed.
const maxRounds = 4

// pipeline is the compiled-from-Options pass list.
type pipeline struct {
	opts   Options
	stages []stage
}

// newPipeline builds the pass list for opts. The structure mirrors the
// paper's §4 ordering: canonicalize → inline → unroll → (regions ⇄ ckpt) →
// prune → licm → materialize, with option-disabled passes omitted entirely.
func newPipeline(opts Options) *pipeline {
	pl := &pipeline{opts: opts}
	add := func(fixpoint bool, ps ...pass) {
		pl.stages = append(pl.stages, stage{fixpoint: fixpoint, passes: ps})
	}

	add(false, pass{PassCanonicalize, phaseFront, func(pc *passCtx) (int, error) {
		before := blockCount(pc.p)
		canonicalize(pc.p)
		return blockCount(pc.p) - before, nil
	}})
	if opts.Inline && !opts.NaiveRegions {
		add(false, pass{PassInline, phaseFront, func(pc *passCtx) (int, error) {
			is := inlineCalls(pc.p, pc.opts.InlineMaxInsts)
			pc.stats.CallsInlined = is.CallsInlined
			removeDeadFuncs(pc.p)
			return is.CallsInlined, nil
		}})
	}
	if opts.Unroll && !opts.NaiveRegions {
		add(false, pass{PassUnroll, phaseFront, func(pc *passCtx) (int, error) {
			us := unrollLoops(pc.p, pc.opts)
			pc.stats.LoopsUnrolled = us.LoopsUnrolled
			pc.stats.UnrollCopies = us.CopiesMade
			return us.LoopsUnrolled, nil
		}})
	}

	group := []pass{{PassRegions, phaseRegions, func(pc *passCtx) (int, error) {
		for _, f := range pc.p.Funcs {
			cfg := analysis.BuildCFG(f)
			lv := analysis.ComputeLiveness(cfg)
			est := ckptEstimate(cfg, lv)
			if pc.round > 0 {
				// Real checkpoints are in the instruction stream now; no
				// estimate needed.
				est = nil
			}
			placeBoundaries(pc.p, f, pc.opts, est)
		}
		return boundaryCount(pc.p), nil
	}}}
	if opts.InsertCheckpoints {
		group = append(group, pass{PassCkpt, phaseRegions, func(pc *passCtx) (int, error) {
			stripCheckpoints(pc.p)
			cc := newCkptContext(pc.p)
			total := 0
			for fi := range pc.p.Funcs {
				total += insertCheckpoints(pc.p, fi, cc)
			}
			pc.stats.CkptsInserted = total
			return total, nil
		}})
	}
	add(true, group...)

	if opts.Prune && opts.InsertCheckpoints {
		add(false, pass{PassPrune, phaseRegions, func(pc *passCtx) (int, error) {
			cc := pc.ckptCtx()
			callUse := func(callee int32) analysis.RegSet { return cc.mayRead[callee] }
			n := 0
			for _, f := range pc.p.Funcs {
				n += pruneCheckpoints(f, callUse)
			}
			pc.stats.CkptsPruned = n
			return n, nil
		}})
	}
	if opts.LICM && opts.InsertCheckpoints {
		add(false, pass{PassLICM, phaseRegions, func(pc *passCtx) (int, error) {
			cc := pc.ckptCtx()
			callUse := func(callee int32) analysis.RegSet { return cc.mayRead[callee] }
			n := 0
			for _, f := range pc.p.Funcs {
				n += licmCheckpoints(f, callUse)
			}
			pc.stats.CkptsHoisted = n
			return n, nil
		}})
	}
	add(false, pass{PassMaterialize, phaseFinal, func(pc *passCtx) (int, error) {
		for _, f := range pc.p.Funcs {
			materializeBoundaries(f)
		}
		return boundaryCount(pc.p), nil
	}})
	return pl
}

// names returns the pipeline's pass names in execution order.
func (pl *pipeline) names() []string {
	var out []string
	for _, sg := range pl.stages {
		for _, ps := range sg.passes {
			out = append(out, ps.name)
		}
	}
	return out
}

// PassNames returns the names of the passes Compile would run for opts, in
// order. Useful for validating -verify-after/-dump-after style selectors.
func PassNames(opts Options) []string { return newPipeline(opts).names() }

// run executes the pipeline over p (mutating it), recording per-pass stats
// into st. Verification between passes is uniform: the structural check runs
// after every pass; the semantic verifier runs after the passes selected by
// opts.VerifyAfter, and always after materialize — the pipeline's output
// contract is not optional. For the fixpoint group the semantic check is
// deferred to convergence (mid-round states may legitimately overflow the
// threshold; that is why the group iterates).
func (pl *pipeline) run(p *prog.Program, hooks Hooks, st *Stats) error {
	pc := &passCtx{p: p, opts: pl.opts, stats: st}
	idx := map[string]int{}
	record := func(name string) *PassStat {
		i, ok := idx[name]
		if !ok {
			i = len(st.Passes)
			idx[name] = i
			st.Passes = append(st.Passes, PassStat{Name: name})
		}
		return &st.Passes[i]
	}

	for _, sg := range pl.stages {
		if !sg.fixpoint {
			for _, ps := range sg.passes {
				if err := pl.runOne(pc, ps, hooks, record, true); err != nil {
					return err
				}
			}
			continue
		}
		for pc.round = 0; ; pc.round++ {
			for _, ps := range sg.passes {
				if err := pl.runOne(pc, ps, hooks, record, false); err != nil {
					return err
				}
			}
			if err := checkThreshold(p, pl.opts.Threshold); err == nil {
				break
			} else if pc.round == maxRounds-1 {
				return fmt.Errorf("compile: %w (after %d rounds)", err, maxRounds)
			}
		}
		// Converged: now the group's semantic post-conditions must hold.
		for _, ps := range sg.passes {
			if err := pl.verifyAfter(pc, ps, record); err != nil {
				return err
			}
		}
	}
	return nil
}

// runOne executes a single pass: time it, record stats, structurally verify,
// fire hooks, and (when semantic is set) run the selected semantic checks.
func (pl *pipeline) runOne(pc *passCtx, ps pass, hooks Hooks, record func(string) *PassStat, semantic bool) error {
	stat := record(ps.name)
	start := time.Now()
	changed, err := ps.run(pc)
	stat.Runs++
	stat.Changed += changed
	stat.WallNS += time.Since(start).Nanoseconds()
	if err != nil {
		return fmt.Errorf("compile: %s: %w", ps.name, err)
	}

	vstart := time.Now()
	if err := pc.p.Verify(); err != nil {
		stat.VerifyNS += time.Since(vstart).Nanoseconds()
		return fmt.Errorf("compile: after %s: %w", ps.name, err)
	}
	stat.VerifyNS += time.Since(vstart).Nanoseconds()

	if hooks.AfterPass != nil {
		hooks.AfterPass(ps.name, pc.p)
	}
	if semantic {
		return pl.verifyAfter(pc, ps, record)
	}
	return nil
}

// verifyAfter runs the semantic region verifier after ps when selected by
// Options.VerifyAfter ("all" or the pass name) or when ps closes the pipeline
// (phaseFinal: the output contract always holds or Compile fails).
func (pl *pipeline) verifyAfter(pc *passCtx, ps pass, record func(string) *PassStat) error {
	va := pl.opts.VerifyAfter
	if !(va == VerifyAfterAll || va == ps.name || ps.phase == phaseFinal) {
		return nil
	}
	stat := record(ps.name)
	start := time.Now()
	err := Check(pc.p, contractFor(ps.phase, pl.opts))
	stat.VerifyNS += time.Since(start).Nanoseconds()
	if err != nil {
		return fmt.Errorf("compile: after %s: %w", ps.name, err)
	}
	return nil
}

// checkThreshold runs the threshold invariant over every function.
func checkThreshold(p *prog.Program, threshold int) error {
	for _, f := range p.Funcs {
		if err := verifyThreshold(f, threshold); err != nil {
			return err
		}
	}
	return nil
}

// blockCount counts basic blocks across the program.
func blockCount(p *prog.Program) int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Blocks)
	}
	return n
}

// boundaryCount counts boundary blocks across the program.
func boundaryCount(p *prog.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.BoundaryAt {
				n++
			}
		}
	}
	return n
}
