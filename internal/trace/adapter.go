package trace

// MachineTracer adapts a Recorder to the machine package's Tracer interface
// (satisfied structurally, so this package stays independent of machine).
type MachineTracer struct {
	R *Recorder
}

// TraceCommit records a region commit.
func (t MachineTracer) TraceCommit(core int, cycle, region uint64) {
	t.R.Record(Event{Kind: KindRegionCommit, Core: core, Cycle: cycle, Region: region})
}

// TraceDrain records a phase-2 drain completion with its payload: the
// address range [addrLo, addrHi] spanned by the valid redo entries written
// and their count (all zero for a data-free marker drain).
func (t MachineTracer) TraceDrain(core int, cycle, region uint64, addrLo, addrHi uint64, entries int) {
	t.R.Record(Event{
		Kind: KindPhase2Drain, Core: core, Cycle: cycle, Region: region,
		Addr: addrLo, Addr2: addrHi, Count: entries,
	})
}

// TraceWriteback records a dirty line reaching the memory controller.
func (t MachineTracer) TraceWriteback(core int, cycle, addr uint64) {
	t.R.Record(Event{Kind: KindWriteback, Core: core, Cycle: cycle, Addr: addr})
}

// TraceStall records a front-end proxy stall.
func (t MachineTracer) TraceStall(core int, cycle uint64) {
	t.R.Record(Event{Kind: KindFrontStall, Core: core, Cycle: cycle})
}

// TraceCrash records a power-failure injection.
func (t MachineTracer) TraceCrash(cycle uint64) {
	t.R.Record(Event{Kind: KindCrash, Cycle: cycle})
}

// TraceRecovery records a completed recovery.
func (t MachineTracer) TraceRecovery(cores int) {
	t.R.Record(Event{Kind: KindRecovery, Core: cores, Note: "cores"})
}
