// Package trace records persistence-relevant events from a machine run: it
// is the observability layer for debugging region formation and the
// two-phase store pipeline, and the data source for the event-level tests
// that assert ordering invariants (per-core region commits are monotone,
// drains follow commits, and so on — see CheckRegionOrder, which is also
// crash-aware: traces spanning a power failure and recovery check the
// re-commit rules of elided boundaries).
//
// Recorded traces export two ways: WriteTo renders grep-friendly text lines,
// and WriteChrome renders the Chrome trace-event JSON consumed by Perfetto
// and chrome://tracing (`caprisim -trace-out trace.json`), with region
// commit→drain lifetimes as per-core async spans.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	KindRegionCommit Kind = iota // a boundary committed (marker entered the NV front-end)
	KindPhase2Drain              // a region's redo data finished draining to NVM
	KindWriteback                // a dirty line reached the memory controller
	KindFrontStall               // the core stalled on a full front-end proxy
	KindCrash                    // power failure injected
	KindRecovery                 // recovery protocol completed
)

var kindNames = [...]string{
	KindRegionCommit: "commit",
	KindPhase2Drain:  "drain",
	KindWriteback:    "writeback",
	KindFrontStall:   "stall",
	KindCrash:        "crash",
	KindRecovery:     "recovery",
}

// String returns the event-kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded occurrence.
type Event struct {
	Kind   Kind
	Core   int
	Cycle  uint64
	Region uint64 // for commit/drain events
	Addr   uint64 // for writeback events; drain events: lowest drained address
	Addr2  uint64 // for drain events: highest drained address
	Count  int    // for drain events: valid redo entries written
	Note   string
}

// String renders the event in a grep-friendly line format.
func (e Event) String() string {
	switch e.Kind {
	case KindRegionCommit:
		return fmt.Sprintf("%-9s core=%d cycle=%d region=%d", e.Kind, e.Core, e.Cycle, e.Region)
	case KindPhase2Drain:
		s := fmt.Sprintf("%-9s core=%d cycle=%d region=%d entries=%d", e.Kind, e.Core, e.Cycle, e.Region, e.Count)
		if e.Count > 0 {
			s += fmt.Sprintf(" lo=%#x hi=%#x", e.Addr, e.Addr2)
		}
		return s
	case KindWriteback:
		return fmt.Sprintf("%-9s core=%d cycle=%d addr=%#x", e.Kind, e.Core, e.Cycle, e.Addr)
	default:
		s := fmt.Sprintf("%-9s core=%d cycle=%d", e.Kind, e.Core, e.Cycle)
		if e.Note != "" {
			s += " " + e.Note
		}
		return s
	}
}

// Recorder accumulates events. It is safe for use from a single machine
// (the machine is single-goroutine) but guards against accidental
// concurrent use anyway.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	limit  int
}

// NewRecorder returns a Recorder capped at limit events (0 = unlimited).
// When the cap is hit, further events are dropped and counted.
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Record appends an event, subject to the cap.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.limit > 0 && len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, e)
}

// Events returns a copy of the recorded events in order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Filter returns the events of one kind, in order.
func (r *Recorder) Filter(k Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// WriteTo dumps the trace as text lines.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, e := range r.Events() {
		m, err := fmt.Fprintln(w, e.String())
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Summary returns per-kind counts as a one-line string.
func (r *Recorder) Summary() string {
	counts := map[Kind]int{}
	for _, e := range r.Events() {
		counts[e.Kind]++
	}
	var parts []string
	for k := KindRegionCommit; k <= KindRecovery; k++ {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
		}
	}
	if len(parts) == 0 {
		return "(empty trace)"
	}
	return strings.Join(parts, " ")
}

// CheckRegionOrder verifies the in-order-persistence invariant over the
// trace: for each core, commit events carry strictly increasing region
// sequence numbers, and every drain's region was committed earlier in the
// trace. The check is crash-aware: a KindCrash event resets each core's
// commit watermark to its last drained region, because commits above the
// drain watermark may not have left a durable marker (elided store-free
// boundaries never do), so after recovery those region numbers legitimately
// commit again — while drained regions are durable and must never recommit.
// Returns a descriptive error on the first violation.
func CheckRegionOrder(events []Event) error {
	lastCommit := map[int]uint64{}
	committed := map[int]map[uint64]bool{}
	lastDrain := map[int]uint64{}
	for i, e := range events {
		switch e.Kind {
		case KindCrash:
			for core := range lastCommit {
				if d, ok := lastDrain[core]; ok {
					lastCommit[core] = d
				} else {
					delete(lastCommit, core)
				}
			}
		case KindRegionCommit:
			if prev, ok := lastCommit[e.Core]; ok && e.Region <= prev {
				return fmt.Errorf("event %d: core %d commit region %d after %d", i, e.Core, e.Region, prev)
			}
			lastCommit[e.Core] = e.Region
			if committed[e.Core] == nil {
				committed[e.Core] = map[uint64]bool{}
			}
			committed[e.Core][e.Region] = true
		case KindPhase2Drain:
			if !committed[e.Core][e.Region] {
				return fmt.Errorf("event %d: core %d drained region %d before its commit", i, e.Core, e.Region)
			}
			if prev, ok := lastDrain[e.Core]; ok && e.Region <= prev {
				return fmt.Errorf("event %d: core %d drain region %d after %d (out of region order)", i, e.Core, e.Region, prev)
			}
			lastDrain[e.Core] = e.Region
		}
	}
	return nil
}
