package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/progen"
)

// TestWriteChromeGolden locks the exporter's byte-level output for a trace
// that exercises every event kind. The format is consumed by external tools
// (Perfetto, chrome://tracing), so accidental drift matters.
func TestWriteChromeGolden(t *testing.T) {
	events := []Event{
		{Kind: KindRegionCommit, Core: 0, Cycle: 10, Region: 1},
		{Kind: KindWriteback, Core: 1, Cycle: 15, Addr: 0x1040},
		{Kind: KindFrontStall, Core: 0, Cycle: 18},
		{Kind: KindPhase2Drain, Core: 0, Cycle: 30, Region: 1, Addr: 0x1040, Addr2: 0x1080, Count: 3},
		{Kind: KindRegionCommit, Core: 0, Cycle: 35, Region: 2},
		{Kind: KindPhase2Drain, Core: 0, Cycle: 38, Region: 2}, // data-free marker
		{Kind: KindCrash, Cycle: 40},
		{Kind: KindRecovery, Core: 2},
	}
	const want = `{"displayTimeUnit":"ms","traceEvents":[
{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"core 0"}},
{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":1,"args":{"name":"core 1"}},
{"name":"region","cat":"region","ph":"b","ts":10,"pid":0,"tid":0,"id":"c0-r1","args":{"region":1}},
{"name":"writeback","cat":"mem","ph":"i","ts":15,"pid":0,"tid":1,"s":"t","args":{"addr":"0x1040"}},
{"name":"front-stall","cat":"proxy","ph":"i","ts":18,"pid":0,"tid":0,"s":"t"},
{"name":"region","cat":"region","ph":"e","ts":30,"pid":0,"tid":0,"id":"c0-r1","args":{"addr":"0x1040","addr2":"0x1080","entries":3}},
{"name":"region","cat":"region","ph":"b","ts":35,"pid":0,"tid":0,"id":"c0-r2","args":{"region":2}},
{"name":"region","cat":"region","ph":"e","ts":38,"pid":0,"tid":0,"id":"c0-r2"},
{"name":"crash","cat":"power","ph":"i","ts":40,"pid":0,"tid":0,"s":"g"},
{"name":"recovery","cat":"power","ph":"i","ts":0,"pid":0,"tid":0,"s":"g","args":{"cores":2}}
]}
`
	var sb strings.Builder
	if err := WriteChrome(&sb, events); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("chrome output drifted:\n got: %s\nwant: %s", sb.String(), want)
	}
}

// TestWriteChromeMachineRun exports a real machine run and checks the result
// is well-formed: valid JSON, every async begin ("b") paired or still open,
// and every end ("e") preceded by its begin.
func TestWriteChromeMachineRun(t *testing.T) {
	gcfg := progen.DefaultConfig()
	gcfg.Threads = 2
	p := progen.Generate(13, gcfg)
	res, err := compile.Compile(p, compile.OptionsForLevel(compile.LevelLICM, 16))
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	cfg.Threshold = 16
	cfg.L2Size = 256 << 10
	cfg.DRAMSize = 1 << 20
	m, err := machine.New(res.Program, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(0)
	m.SetTracer(MachineTracer{R: rec})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := rec.WriteChromeTo(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    uint64 `json:"ts"`
			TID   int    `json:"tid"`
			ID    string `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	open := map[string]bool{}
	begins, ends := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "b":
			if open[e.ID] {
				t.Errorf("span %s begun twice", e.ID)
			}
			open[e.ID] = true
			begins++
		case "e":
			if !open[e.ID] {
				t.Errorf("span %s ended without begin", e.ID)
			}
			delete(open, e.ID)
			ends++
		}
	}
	if begins == 0 || ends == 0 {
		t.Errorf("no region spans exported (b=%d e=%d)", begins, ends)
	}
	// The still-open spans are exactly the elided boundaries (committed,
	// never drained).
	if got, want := len(open), int(m.Stats().ElidedBds); got != want {
		t.Errorf("%d unclosed spans, want %d (elided boundaries)", got, want)
	}
}
