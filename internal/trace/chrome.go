package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: renders a recorded trace in the Trace Event
// Format consumed by Perfetto (https://ui.perfetto.dev) and chrome://tracing.
// Cycles map directly onto the format's microsecond timestamps, so one
// "microsecond" on the timeline is one simulated cycle.
//
// The mapping:
//
//   - Each core becomes a named thread ("core N") of process 0.
//   - A region's persistence lifetime — boundary commit to phase-2 drain
//     completion — becomes an async span ("b"/"e" pair, category "region"),
//     so in-flight regions stack visually per core.
//   - Writebacks and front-end stalls become thread-scoped instant events.
//   - Crash and recovery become global instant events.
//
// Output is deterministic for a given event slice: one JSON object per line,
// fields in fixed order, map-free.

// chromeEvent is one entry of the traceEvents array. Field order here is the
// serialization order (encoding/json respects struct order), which keeps
// golden tests byte-stable.
type chromeEvent struct {
	Name  string      `json:"name"`
	Cat   string      `json:"cat,omitempty"`
	Phase string      `json:"ph"`
	TS    uint64      `json:"ts"`
	PID   int         `json:"pid"`
	TID   int         `json:"tid"`
	ID    string      `json:"id,omitempty"`
	Scope string      `json:"s,omitempty"`
	Args  *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries the per-event payload (a struct, not a map, for stable
// key order).
type chromeArgs struct {
	Name    string `json:"name,omitempty"`    // thread_name metadata
	Region  uint64 `json:"region,omitempty"`  // commit/drain spans
	Addr    string `json:"addr,omitempty"`    // writebacks; drain range low
	Addr2   string `json:"addr2,omitempty"`   // drain range high
	Entries int    `json:"entries,omitempty"` // drain: valid redo entries written
	Cores   int    `json:"cores,omitempty"`   // recovery
}

// WriteChrome writes events as a Chrome trace-event JSON document. The
// timeline unit is one simulated cycle per microsecond. Load the file in
// Perfetto or chrome://tracing.
func WriteChrome(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		_, err = fmt.Fprintf(w, "%s%s", sep, b)
		return err
	}

	// Thread-name metadata for every core that appears, in first-appearance
	// order (deterministic: the event slice is deterministic).
	seen := map[int]bool{}
	for _, e := range events {
		if e.Kind == KindCrash || e.Kind == KindRecovery || seen[e.Core] {
			continue
		}
		seen[e.Core] = true
		if err := emit(chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   0,
			TID:   e.Core,
			Args:  &chromeArgs{Name: fmt.Sprintf("core %d", e.Core)},
		}); err != nil {
			return err
		}
	}

	for _, e := range events {
		var ce chromeEvent
		switch e.Kind {
		case KindRegionCommit:
			ce = chromeEvent{
				Name: "region", Cat: "region", Phase: "b",
				TS: e.Cycle, TID: e.Core,
				ID:   fmt.Sprintf("c%d-r%d", e.Core, e.Region),
				Args: &chromeArgs{Region: e.Region},
			}
		case KindPhase2Drain:
			ce = chromeEvent{
				Name: "region", Cat: "region", Phase: "e",
				TS: e.Cycle, TID: e.Core,
				ID: fmt.Sprintf("c%d-r%d", e.Core, e.Region),
			}
			if e.Count > 0 {
				ce.Args = &chromeArgs{
					Addr:    fmt.Sprintf("%#x", e.Addr),
					Addr2:   fmt.Sprintf("%#x", e.Addr2),
					Entries: e.Count,
				}
			}
		case KindWriteback:
			ce = chromeEvent{
				Name: "writeback", Cat: "mem", Phase: "i",
				TS: e.Cycle, TID: e.Core, Scope: "t",
				Args: &chromeArgs{Addr: fmt.Sprintf("%#x", e.Addr)},
			}
		case KindFrontStall:
			ce = chromeEvent{
				Name: "front-stall", Cat: "proxy", Phase: "i",
				TS: e.Cycle, TID: e.Core, Scope: "t",
			}
		case KindCrash:
			ce = chromeEvent{
				Name: "crash", Cat: "power", Phase: "i",
				TS: e.Cycle, Scope: "g",
			}
		case KindRecovery:
			// The recovery event's Core field carries the recovered core
			// count (see MachineTracer.TraceRecovery).
			ce = chromeEvent{
				Name: "recovery", Cat: "power", Phase: "i",
				TS: e.Cycle, Scope: "g",
				Args: &chromeArgs{Cores: e.Core},
			}
		default:
			continue
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// WriteChromeTo renders the recorder's events with WriteChrome.
func (r *Recorder) WriteChromeTo(w io.Writer) error {
	return WriteChrome(w, r.Events())
}
