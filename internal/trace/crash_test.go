package trace

import (
	"testing"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/progen"
)

// TestCheckRegionOrderCrashSemantics pins the crash-awareness rules: after a
// crash, region numbers above the drain watermark may commit again (elided
// boundaries never left a durable marker), but drained regions are durable
// and must never recommit.
func TestCheckRegionOrderCrashSemantics(t *testing.T) {
	recommitUndrained := []Event{
		{Kind: KindRegionCommit, Core: 0, Region: 1},
		{Kind: KindPhase2Drain, Core: 0, Region: 1},
		{Kind: KindRegionCommit, Core: 0, Region: 2}, // elided: no drain
		{Kind: KindRegionCommit, Core: 0, Region: 3},
		{Kind: KindCrash},
		{Kind: KindRegionCommit, Core: 0, Region: 2}, // legitimate re-commit
		{Kind: KindRegionCommit, Core: 0, Region: 3},
		{Kind: KindPhase2Drain, Core: 0, Region: 3},
	}
	if err := CheckRegionOrder(recommitUndrained); err != nil {
		t.Errorf("re-commit of undrained regions after crash rejected: %v", err)
	}

	recommitDrained := []Event{
		{Kind: KindRegionCommit, Core: 0, Region: 1},
		{Kind: KindPhase2Drain, Core: 0, Region: 1},
		{Kind: KindCrash},
		{Kind: KindRegionCommit, Core: 0, Region: 1}, // durable region re-commits: bug
	}
	if err := CheckRegionOrder(recommitDrained); err == nil {
		t.Error("re-commit of a drained region after crash accepted")
	}

	// A core that never drained resets to a clean slate.
	neverDrained := []Event{
		{Kind: KindRegionCommit, Core: 0, Region: 1},
		{Kind: KindRegionCommit, Core: 0, Region: 2},
		{Kind: KindCrash},
		{Kind: KindRegionCommit, Core: 0, Region: 1},
	}
	if err := CheckRegionOrder(neverDrained); err != nil {
		t.Errorf("clean-slate re-commit rejected: %v", err)
	}
}

// TestRegionOrderUnderCrashInjection crashes real generated workloads at
// varying points, recovers into the same recorder, runs to completion, and
// checks the in-order-persistence invariant across the whole combined trace
// (commit monotonicity, drain-after-commit, and the crash-reset rules).
func TestRegionOrderUnderCrashInjection(t *testing.T) {
	gcfg := progen.DefaultConfig()
	gcfg.Threads = 2
	for seed := uint64(0); seed < 4; seed++ {
		p := progen.Generate(seed*17+5, gcfg)
		res, err := compile.Compile(p, compile.OptionsForLevel(compile.LevelLICM, 16))
		if err != nil {
			t.Fatal(err)
		}
		cfg := machine.DefaultConfig()
		cfg.Cores = 2
		cfg.Threshold = 16
		cfg.L2Size = 256 << 10
		cfg.DRAMSize = 1 << 20

		// Full-run instruction count calibrates the crash points.
		ref, err := machine.New(res.Program, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Run(); err != nil {
			t.Fatal(err)
		}
		total := ref.Instret()

		for _, frac := range []uint64{4, 2} {
			crashAt := total / frac
			if crashAt == 0 {
				continue
			}
			m, err := machine.New(res.Program, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rec := NewRecorder(0)
			tr := MachineTracer{R: rec}
			m.SetTracer(tr)
			if err := m.RunUntil(crashAt); err != nil {
				t.Fatal(err)
			}
			img, err := m.Crash() // emits the crash event
			if err != nil {
				t.Fatal(err)
			}
			r, _, err := machine.RecoverTraced(img, tr) // emits the recovery event
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Run(); err != nil {
				t.Fatal(err)
			}
			if len(rec.Filter(KindCrash)) != 1 || len(rec.Filter(KindRecovery)) != 1 {
				t.Fatalf("seed %d crash@%d: trace missing crash/recovery edges: %s",
					seed, crashAt, rec.Summary())
			}
			if err := CheckRegionOrder(rec.Events()); err != nil {
				t.Errorf("seed %d crash@%d: %v", seed, crashAt, err)
			}
		}
	}
}
