package trace

import (
	"strings"
	"testing"

	"capri/internal/audit"
	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/progen"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{Kind: KindRegionCommit, Core: 1, Cycle: 10, Region: 1})
	r.Record(Event{Kind: KindWriteback, Core: 0, Cycle: 20, Addr: 0x100})
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if got := r.Filter(KindWriteback); len(got) != 1 || got[0].Addr != 0x100 {
		t.Errorf("filter = %v", got)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"commit", "writeback", "addr=0x100"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("dump missing %q:\n%s", want, sb.String())
		}
	}
	if !strings.Contains(r.Summary(), "commit=1") {
		t.Errorf("summary = %q", r.Summary())
	}
}

func TestRecorderCap(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindFrontStall, Cycle: uint64(i)})
	}
	if r.Len() != 3 {
		t.Errorf("cap not enforced: %d", r.Len())
	}
}

func TestEmptySummary(t *testing.T) {
	if s := NewRecorder(0).Summary(); s != "(empty trace)" {
		t.Errorf("summary = %q", s)
	}
}

func TestCheckRegionOrderDetectsViolations(t *testing.T) {
	good := []Event{
		{Kind: KindRegionCommit, Core: 0, Region: 1},
		{Kind: KindRegionCommit, Core: 0, Region: 2},
		{Kind: KindPhase2Drain, Core: 0, Region: 1},
		{Kind: KindPhase2Drain, Core: 0, Region: 2},
		{Kind: KindRegionCommit, Core: 1, Region: 1},
	}
	if err := CheckRegionOrder(good); err != nil {
		t.Errorf("good trace rejected: %v", err)
	}

	nonMonotone := []Event{
		{Kind: KindRegionCommit, Core: 0, Region: 2},
		{Kind: KindRegionCommit, Core: 0, Region: 1},
	}
	if err := CheckRegionOrder(nonMonotone); err == nil {
		t.Error("non-monotone commits accepted")
	}

	drainFirst := []Event{
		{Kind: KindPhase2Drain, Core: 0, Region: 1},
	}
	if err := CheckRegionOrder(drainFirst); err == nil {
		t.Error("drain before commit accepted")
	}

	drainOutOfOrder := []Event{
		{Kind: KindRegionCommit, Core: 0, Region: 1},
		{Kind: KindRegionCommit, Core: 0, Region: 2},
		{Kind: KindPhase2Drain, Core: 0, Region: 2},
		{Kind: KindPhase2Drain, Core: 0, Region: 1},
	}
	if err := CheckRegionOrder(drainOutOfOrder); err == nil {
		t.Error("out-of-region-order drains accepted")
	}
}

// TestMachineTraceOrdering runs real workloads with the tracer attached and
// asserts the in-order region persistence invariant (DESIGN.md invariant 6)
// over the actual event stream.
func TestMachineTraceOrdering(t *testing.T) {
	gcfg := progen.DefaultConfig()
	gcfg.Threads = 2
	for seed := uint64(0); seed < 6; seed++ {
		p := progen.Generate(seed*11+2, gcfg)
		res, err := compile.Compile(p, compile.OptionsForLevel(compile.LevelLICM, 16))
		if err != nil {
			t.Fatal(err)
		}
		cfg := machine.DefaultConfig()
		cfg.Cores = 2
		cfg.Threshold = 16
		cfg.L2Size = 256 << 10
		cfg.DRAMSize = 1 << 20
		m, err := machine.New(res.Program, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := NewRecorder(0)
		m.SetTracer(MachineTracer{R: rec})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if rec.Len() == 0 {
			t.Fatal("no events recorded")
		}
		if err := CheckRegionOrder(rec.Events()); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		// Every non-elided committed region must eventually drain (quiesce
		// guarantees it). Elided boundaries commit without emitting a marker,
		// so they never drain: commits == drains + elided, machine-wide.
		commits := len(rec.Filter(KindRegionCommit))
		drains := len(rec.Filter(KindPhase2Drain))
		elided := int(m.Stats().ElidedBds)
		if commits != drains+elided {
			t.Errorf("seed %d: %d commits, %d drains, %d elided (want commits == drains+elided)",
				seed, commits, drains, elided)
		}
	}
}

// TestDrainPayloadMatchesTap runs a real workload with both the tracer and
// the provenance tap attached and asserts they report the *same* drain
// payload: every TraceDrain's (core, region, addrLo, addrHi, entries) must
// equal the corresponding EvDrain event — Perfetto spans and the auditor see
// one truth.
func TestDrainPayloadMatchesTap(t *testing.T) {
	gcfg := progen.DefaultConfig()
	gcfg.Threads = 2
	p := progen.Generate(2, gcfg)
	res, err := compile.Compile(p, compile.OptionsForLevel(compile.LevelLICM, 16))
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	cfg.Threshold = 16
	cfg.L2Size = 256 << 10
	cfg.DRAMSize = 1 << 20
	m, err := machine.New(res.Program, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(0)
	m.SetTracer(MachineTracer{R: rec})
	fr := audit.NewFlightRecorder(0)
	m.SetTap(fr)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	drains := rec.Filter(KindPhase2Drain)
	var taps []audit.Event
	for _, e := range fr.Events() {
		if e.Kind == audit.EvDrain {
			taps = append(taps, e)
		}
	}
	if len(drains) == 0 {
		t.Fatal("no drains recorded")
	}
	if len(drains) != len(taps) {
		t.Fatalf("tracer saw %d drains, tap saw %d", len(drains), len(taps))
	}
	withData := 0
	for i, d := range drains {
		a := taps[i]
		if d.Core != int(a.Core) || d.Region != a.Region ||
			d.Addr != a.Val || d.Addr2 != a.Val2 || d.Count != int(a.Count) {
			t.Fatalf("drain %d payload diverged: trace=%+v tap=%+v", i, d, a)
		}
		if d.Count > 0 {
			withData++
			if d.Addr > d.Addr2 {
				t.Fatalf("drain %d range inverted: lo=%#x hi=%#x", i, d.Addr, d.Addr2)
			}
			line := d.String()
			if !strings.Contains(line, "entries=") || !strings.Contains(line, "lo=") {
				t.Fatalf("drain text line lacks payload: %q", line)
			}
		}
	}
	if withData == 0 {
		t.Fatal("every drain was data-free — payload untested")
	}
}

func TestKindString(t *testing.T) {
	if KindRegionCommit.String() != "commit" || KindRecovery.String() != "recovery" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind not rendered")
	}
}
