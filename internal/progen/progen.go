// Package progen generates random, structured, always-terminating programs
// for property-based testing of the whole Capri stack: the compiler must
// form threshold-respecting regions over arbitrary reducible control flow,
// and crash recovery must restore every one of them. Programs use bounded
// counted loops, nested if/else diamonds, acyclic call graphs, stores into a
// bounded heap window, and output emits, so a golden run is deterministic
// and any divergence after crash+recovery is a real bug.
package progen

import (
	"capri/internal/isa"
	"capri/internal/machine"
	"capri/internal/prog"
)

// Config bounds the generated program.
type Config struct {
	// Funcs is the number of functions (>=1); function 0 is the entry and
	// calls may only target higher-numbered functions (acyclic).
	Funcs int
	// MaxDepth bounds nesting of control-flow constructs.
	MaxDepth int
	// MaxStmts bounds statements per sequence.
	MaxStmts int
	// MaxLoopTrip bounds loop trip counts.
	MaxLoopTrip int
	// Threads: 1 for single-threaded; 2+ builds independent workers plus a
	// lock-protected shared counter (DRF by construction).
	Threads int
	// Barriers (requires Threads >= 2) switches to SPMD generation: every
	// worker is built from an identical PRNG stream (only its stack and heap
	// window differ), and top-level statements may emit sense-reversing
	// barrier episodes. Identical structure guarantees balanced arrivals, so
	// the programs stay deadlock-free by construction while crash recovery
	// gets exercised across barrier synchronization.
	Barriers bool
}

// DefaultConfig returns generation bounds that exercise the compiler without
// exploding program size.
func DefaultConfig() Config {
	return Config{Funcs: 3, MaxDepth: 3, MaxStmts: 5, MaxLoopTrip: 6, Threads: 1}
}

// splitmix64 PRNG, self-contained for reproducibility.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Register pools. Loop counters come from a reserved range so nested loops
// never clobber each other; data registers are everything else below SP.
const (
	dataRegLo = isa.Reg(0)
	dataRegHi = isa.Reg(19) // inclusive
	ctrRegLo  = isa.Reg(20)
	ctrRegHi  = isa.Reg(27) // inclusive: 8 nesting levels
	baseReg   = isa.Reg(28) // heap window base
	lockReg   = isa.Reg(29) // shared lock base (multithreaded)
	scratch   = isa.Reg(30)
)

type gen struct {
	r      *rng
	cfg    Config
	bd     *prog.Builder
	funcs  []*prog.FuncBuilder
	thread int
}

// Generate builds a random program from the seed.
func Generate(seed uint64, cfg Config) *prog.Program {
	if cfg.Funcs < 1 {
		cfg.Funcs = 1
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	g := &gen{r: &rng{s: seed}, cfg: cfg, bd: prog.NewBuilder("progen")}

	// Callee functions first (indices 1..Funcs-1 in creation order; entry
	// workers come last so calls always target already-built functions).
	var callees []*prog.FuncBuilder
	for i := cfg.Funcs - 1; i >= 1; i-- {
		f := g.bd.Func("fn")
		g.funcs = append([]*prog.FuncBuilder{f}, g.funcs...)
		g.emitFuncBody(f, callees, false, 0)
		callees = append(callees, f)
	}

	var workers []*prog.FuncBuilder
	spmdState := g.r.s
	for t := 0; t < cfg.Threads; t++ {
		if cfg.Barriers && cfg.Threads > 1 {
			// SPMD: every worker consumes the identical random stream.
			g.r.s = spmdState
		}
		g.thread = t
		w := g.bd.Func("worker")
		g.emitFuncBody(w, callees, true, t)
		workers = append(workers, w)
	}
	g.bd.SetThreadEntries(workers...)
	return g.bd.Program()
}

// emitFuncBody fills one function: prologue, a random statement sequence,
// then epilogue (Emit+Halt for workers, Ret for callees).
func (g *gen) emitFuncBody(f *prog.FuncBuilder, callees []*prog.FuncBuilder, worker bool, tid int) {
	f.Block()
	st := &state{g: g, f: f, callees: callees, worker: worker}
	if worker {
		f.MovI(isa.SP, int64(machine.StackBase(tid)))
		f.MovI(baseReg, int64(machine.HeapBase)+int64(tid)<<16)
		f.MovI(lockReg, int64(machine.HeapBase)+1<<20)
	}
	// Initialize a few data registers so sources are always defined; callees
	// conservatively reinitialize their own working set (the ISA has no
	// callee-saved convention in generated code).
	for r := dataRegLo; r <= dataRegHi; r++ {
		f.MovI(r, int64(g.r.intn(1000)))
	}
	// Callees inherit the caller's heap window through baseReg untouched, so
	// all memory traffic stays inside the owning thread's window no matter
	// how deep the call chain goes.

	st.seq(0, g.cfg.MaxStmts)

	if worker {
		// Emit a digest of the data registers so golden comparisons see
		// register state, then halt.
		for r := dataRegLo; r <= dataRegLo+4; r++ {
			f.Emit(r)
		}
		f.Halt()
	} else {
		f.Ret()
	}
}

// state tracks per-function generation state.
type state struct {
	g       *gen
	f       *prog.FuncBuilder
	callees []*prog.FuncBuilder
	worker  bool
	loopLvl int
}

func (s *state) rnd(n int) int { return s.g.r.intn(n) }

func (s *state) dataReg() isa.Reg {
	return dataRegLo + isa.Reg(s.rnd(int(dataRegHi-dataRegLo)+1))
}

// seq emits up to n random statements at the given nesting depth.
func (s *state) seq(depth, n int) {
	count := 1 + s.rnd(n)
	for i := 0; i < count; i++ {
		s.stmt(depth)
	}
}

func (s *state) stmt(depth int) {
	roll := s.rnd(100)
	switch {
	case roll < 45 || depth >= s.g.cfg.MaxDepth:
		s.straight()
	case roll < 65:
		s.ifElse(depth)
	case roll < 85:
		s.loop(depth)
	case roll < 92 && len(s.callees) > 0:
		s.call()
	case roll < 96 && s.worker && s.g.cfg.Threads > 1:
		s.locked()
	case s.worker && s.g.cfg.Barriers && s.g.cfg.Threads > 1 && depth == 0:
		// Top level only: control flow never guards a barrier, so arrival
		// counts stay balanced across the SPMD workers.
		s.barrier()
	default:
		s.straight()
	}
}

// straight emits 1-6 random ALU/memory operations.
func (s *state) straight() {
	n := 1 + s.rnd(6)
	for i := 0; i < n; i++ {
		a, b, d := s.dataReg(), s.dataReg(), s.dataReg()
		switch s.rnd(8) {
		case 0:
			s.f.Add(d, a, b)
		case 1:
			s.f.Op3(isa.OpSub, d, a, b)
		case 2:
			s.f.MulI(d, a, int64(1+s.rnd(7)))
		case 3:
			s.f.Op3(isa.OpXor, d, a, b)
		case 4:
			s.f.MovI(d, int64(s.rnd(1<<12)))
		case 5: // load from the heap window
			off := s.windowOff(a)
			s.f.Load(d, scratch, off)
		case 6: // store into the heap window
			off := s.windowOff(a)
			s.f.Store(scratch, off, b)
		case 7:
			s.f.Sel(d, a, b, d)
		}
	}
}

// windowOff computes scratch = base + 8*(a mod 512) and returns a small
// extra offset, keeping all memory traffic inside the thread's window.
func (s *state) windowOff(a isa.Reg) int64 {
	s.f.OpI(isa.OpAndI, scratch, a, 511)
	s.f.OpI(isa.OpShlI, scratch, scratch, 3)
	s.f.Add(scratch, scratch, baseReg)
	return int64(8 * s.rnd(4))
}

// ifElse emits a diamond with random arms.
func (s *state) ifElse(depth int) {
	a, b := s.dataReg(), s.dataReg()
	cond := isa.Cond(s.rnd(6))

	cur := s.f.Cur()
	thenB := s.f.Block()
	elseB := s.f.Block()
	join := s.f.Block()

	s.f.SetBlock(cur)
	s.f.BrIf(a, cond, b, thenB, elseB)

	s.f.SetBlock(thenB)
	s.seq(depth+1, s.g.cfg.MaxStmts/2+1)
	s.f.Br(join)

	s.f.SetBlock(elseB)
	s.seq(depth+1, s.g.cfg.MaxStmts/2+1)
	s.f.Br(join)

	s.f.SetBlock(join)
}

// loop emits a bounded counted loop using dedicated counter and bound
// registers per nesting level — both outside the data-register pool, so no
// statement in the body can clobber them and every loop provably terminates
// after its chosen trip count.
func (s *state) loop(depth int) {
	if s.loopLvl >= 4 {
		s.straight()
		return
	}
	ctr := ctrRegLo + isa.Reg(s.loopLvl)     // r20..r23
	bound := ctrRegLo + isa.Reg(4+s.loopLvl) // r24..r27
	s.loopLvl++
	trip := 1 + s.rnd(s.g.cfg.MaxLoopTrip)

	cur := s.f.Cur()
	header := s.f.Block()
	body := s.f.Block()
	exit := s.f.Block()

	s.f.SetBlock(cur)
	s.f.MovI(ctr, 0)
	s.f.MovI(bound, int64(trip))
	s.f.Br(header)

	s.f.SetBlock(header)
	s.f.BrIf(ctr, isa.CondGE, bound, exit, body)

	s.f.SetBlock(body)
	s.seq(depth+1, s.g.cfg.MaxStmts/2+1)
	s.f.AddI(ctr, ctr, 1)
	s.f.Br(header)

	s.f.SetBlock(exit)
	s.loopLvl--
}

// call invokes a random callee (callees only call strictly later functions,
// so the call graph is acyclic and execution terminates).
func (s *state) call() {
	callee := s.callees[s.rnd(len(s.callees))]
	s.f.Mov(isa.A0, s.dataReg())
	s.f.Call(callee)
}

// locked emits a lock-protected read-modify-write on the shared counter
// (threads otherwise touch disjoint windows, so programs stay DRF).
func (s *state) locked() {
	s.f.Lock(lockReg, 0)
	s.f.Load(scratch, lockReg, 8)
	s.f.AddI(scratch, scratch, 1)
	s.f.Store(lockReg, 8, scratch)
	s.f.Unlock(lockReg, 0)
}

// barrier emits a sense-reversing barrier episode over persistent state at
// lockReg+64 ([count, generation]) — the same construction as the workload
// package's emitBarrier, kept recoverable by building it from atomics and
// loads only. Clobbers r0-r2 of the data pool (SPMD keeps that identical
// across workers, and barrier residue never guards another barrier because
// barriers are emitted at depth 0 only).
func (s *state) barrier() {
	f := s.f
	n := int64(s.g.cfg.Threads)
	const (
		rOld = dataRegLo + 0
		rGen = dataRegLo + 1
		rN1  = dataRegLo + 2
	)
	pre := f.Cur()
	last := f.Block()
	spin := f.Block()
	spinB := f.Block()
	exit := f.Block()

	f.SetBlock(pre)
	f.Load(rGen, lockReg, 72)
	f.MovI(rOld, 1)
	f.AtomicAdd(rOld, lockReg, 64, rOld)
	f.MovI(rN1, n-1)
	f.BrIf(rOld, isa.CondEQ, rN1, last, spin)

	f.SetBlock(last)
	f.MovI(rOld, 0)
	f.Store(lockReg, 64, rOld)
	f.MovI(rOld, 1)
	f.AtomicAdd(rOld, lockReg, 72, rOld)
	f.Br(exit)

	f.SetBlock(spin)
	f.Load(rOld, lockReg, 72)
	f.BrIf(rOld, isa.CondNE, rGen, exit, spinB)
	f.SetBlock(spinB)
	f.Br(spin)

	f.SetBlock(exit)
	// Kill the episode's residue: the values left in the scratch registers
	// depend on arrival order, which crash recovery may legitimately change
	// (a recovered schedule is a different valid interleaving of the same
	// program). Fixed re-initialization keeps generated programs
	// crash-deterministic, which is what lets the harness compare outputs
	// against a golden run exactly.
	f.MovI(rOld, 1)
	f.MovI(rGen, 2)
	f.MovI(rN1, 3)
}
