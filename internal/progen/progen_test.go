package progen

import (
	"testing"

	"capri/internal/compile"
	"capri/internal/isa"
	"capri/internal/machine"
)

func TestGenerateVerifies(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		p := Generate(seed, DefaultConfig())
		if err := p.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		a := Generate(seed, DefaultConfig())
		b := Generate(seed, DefaultConfig())
		if a.String() != b.String() {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
	if Generate(1, DefaultConfig()).String() == Generate(2, DefaultConfig()).String() {
		t.Error("distinct seeds produced identical programs")
	}
}

func TestGenerateRespectsThreads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threads = 3
	p := Generate(7, cfg)
	if p.NumThreads() != 3 {
		t.Errorf("threads = %d, want 3", p.NumThreads())
	}
	cfg.Threads = 0 // clamped to 1
	if Generate(7, cfg).NumThreads() != 1 {
		t.Error("zero threads not clamped to 1")
	}
}

func TestGeneratedLoopsAreBounded(t *testing.T) {
	// Structural check: every generated loop's counter and bound registers
	// must be outside the data-register pool (the termination argument).
	for seed := uint64(0); seed < 20; seed++ {
		p := Generate(seed, DefaultConfig())
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Insts {
					in := &b.Insts[i]
					if in.Op != isa.OpBrIf {
						continue
					}
					// Backward branches (loop tests) compare ctr vs bound:
					// ensure any BrIf whose operands include a counter reg
					// uses a bound reg from the protected pool.
					aCtr := in.Ra >= ctrRegLo && in.Ra < ctrRegLo+4
					if aCtr && !(in.Rb >= ctrRegLo+4 && in.Rb <= ctrRegHi) {
						t.Fatalf("seed %d: loop test %s compares counter against unprotected register", seed, in)
					}
				}
			}
		}
	}
}

func TestGeneratedProgramsCompileAcrossSettings(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		p := Generate(seed*31+5, DefaultConfig())
		for _, th := range []int{8, 64, 512} {
			for _, l := range []compile.Level{compile.LevelRegion, compile.LevelCkpt, compile.LevelLICM} {
				if _, err := compile.Compile(p, compile.OptionsForLevel(l, th)); err != nil {
					t.Errorf("seed %d th=%d level=%s: %v", seed, th, l, err)
				}
			}
		}
	}
}

func TestGeneratedMemoryStaysInWindows(t *testing.T) {
	// Run a few generated programs and verify every touched heap word falls
	// inside a thread window or the shared lock area — the DRF guarantee the
	// multi-threaded property tests rely on.
	cfg := DefaultConfig()
	cfg.Threads = 2
	mcfg := machine.DefaultConfig()
	mcfg.Capri = false
	mcfg.L2Size = 256 << 10
	mcfg.DRAMSize = 1 << 20
	for seed := uint64(0); seed < 8; seed++ {
		p := Generate(seed*97+3, cfg)
		m, err := machine.New(p, mcfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for addr := range m.MemSnapshot() {
			inWin0 := addr >= machine.HeapBase && addr < machine.HeapBase+(512*8+32)
			inWin1 := addr >= machine.HeapBase+1<<16 && addr < machine.HeapBase+1<<16+(512*8+32)
			shared := addr >= machine.HeapBase+1<<20 && addr < machine.HeapBase+1<<20+64
			stack := addr < machine.HeapBase // call tokens
			if !(inWin0 || inWin1 || shared || stack) {
				t.Errorf("seed %d: stray address %#x", seed, addr)
			}
		}
	}
}

func TestSPMDWorkersIdenticalStructure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threads = 3
	cfg.Barriers = true
	p := Generate(99, cfg)
	// The worker functions must have identical block/instruction shapes
	// (only stack/window constants differ), which is what guarantees
	// balanced barrier arrivals.
	var workers []int
	for _, f := range p.Funcs {
		if f.Name == "worker" {
			workers = append(workers, f.ID)
		}
	}
	if len(workers) != 3 {
		t.Fatalf("workers = %d", len(workers))
	}
	ref := p.Funcs[workers[0]]
	for _, wi := range workers[1:] {
		w := p.Funcs[wi]
		if len(w.Blocks) != len(ref.Blocks) {
			t.Fatalf("worker block counts differ: %d vs %d", len(w.Blocks), len(ref.Blocks))
		}
		for bi := range w.Blocks {
			if len(w.Blocks[bi].Insts) != len(ref.Blocks[bi].Insts) {
				t.Fatalf("worker b%d inst counts differ", bi)
			}
			for ii := range w.Blocks[bi].Insts {
				a, b := ref.Blocks[bi].Insts[ii], w.Blocks[bi].Insts[ii]
				if a.Op != b.Op {
					t.Fatalf("worker b%d i%d opcode differs: %s vs %s", bi, ii, a.Op, b.Op)
				}
			}
		}
	}
}

func TestSPMDBarrierProgramsTerminate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threads = 2
	cfg.Barriers = true
	mcfg := machine.DefaultConfig()
	mcfg.Capri = false
	mcfg.L2Size = 256 << 10
	mcfg.DRAMSize = 1 << 20
	mcfg.MaxSteps = 100_000_000
	for seed := uint64(0); seed < 12; seed++ {
		p := Generate(seed*409+3, cfg)
		m, err := machine.New(p, mcfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("seed %d (deadlock?): %v", seed, err)
		}
	}
}
