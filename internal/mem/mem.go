// Package mem models the memory devices of the Capri machine: the
// byte-addressable NVM main memory (with read/write queues and a
// write-pending queue in the persistent domain) and the hardware-managed
// direct-mapped off-chip DRAM cache in front of it — the "memory mode"
// arrangement of Table 1.
//
// Functional state is tracked at 8-byte word granularity. Every persisted
// word carries the global sequence number of the store that produced it; the
// sequence guard generalizes the paper's redo valid-bit across cores and is
// what makes recovery application order-insensitive (see DESIGN.md).
//
// Both NVM and the architectural memory are backed by a sparse page
// directory of fixed-size flat arrays: word addresses index a page table
// slice directly (no hashing), so the simulator's per-access cost is two
// array indexings instead of a Go map lookup. Addresses beyond the direct
// window (pathological spread) fall back to a page map. A map-backed
// reference implementation is retained behind NewNVMRef/NewMemRef for the
// differential tests that prove the paged store is cycle- and
// image-identical (see machine's RefStore config and TestPagedVsRefStore*).
package mem

import "sort"

// WordSize is the machine word size in bytes.
const WordSize = 8

// LineSize is the cache line size in bytes (Table 1: 64 B blocks).
const LineSize = 64

// LineAddr returns the line-aligned address containing addr.
func LineAddr(addr uint64) uint64 { return addr &^ (LineSize - 1) }

// WordAddr returns the word-aligned address containing addr.
func WordAddr(addr uint64) uint64 { return addr &^ (WordSize - 1) }

// Paged-backing geometry. A page holds 2^pageWordShift words (32 KB of
// address space); the direct page directory covers directPages pages
// (1 GB of address space) before falling back to the far-page map.
const (
	wordShift     = 3 // log2(WordSize)
	pageWordShift = 12
	pageWords     = 1 << pageWordShift
	pageWordMask  = pageWords - 1
	directPages   = 1 << 15
)

// Word is a persisted word value plus the global store sequence number of its
// writer.
type Word struct {
	Val uint64
	Seq uint64
}

// nvmPage is one flat page of persisted words plus a presence bitmap (a word
// is "persisted" once written, even if its value is zero — Len, Entries and
// Snapshot must distinguish written zeros from never-written words exactly
// like the map-backed reference does).
type nvmPage struct {
	words [pageWords]Word
	used  [pageWords / 64]uint64
}

func (p *nvmPage) isUsed(off uint64) bool { return p.used[off>>6]&(1<<(off&63)) != 0 }

// NVM is the non-volatile main memory: the only device whose contents survive
// power failure (alongside the battery-backed proxy buffers). It holds the
// persisted program image and the register checkpoint storage.
type NVM struct {
	pages []*nvmPage          // direct page directory, indexed by page number
	far   map[uint64]*nvmPage // pages beyond the direct window
	count int                 // persisted words

	ref map[uint64]Word // non-nil: map-backed reference implementation

	// writeFree is the write-pending queue's availability cycle: the device
	// timing the memory controller sees when it pushes a 64B line write. The
	// queue drains one line per device write latency, so its depth at any
	// instant is the backlog divided by that latency.
	writeFree uint64

	// Stats
	Writes     uint64 // 64B-equivalent write operations accepted
	WordWrites uint64 // word-granularity writes
	Reads      uint64
	StaleSkips uint64 // writes rejected by the sequence guard
}

// NewNVM returns an empty NVM image with the paged backing.
func NewNVM() *NVM {
	return &NVM{}
}

// NewNVMRef returns an empty NVM image backed by the map-based reference
// implementation. It is semantically identical to the paged store and exists
// only so differential tests (and `capribench -perf`'s speedup measurement)
// can run the whole machine against the seed's data structure.
func NewNVMRef() *NVM {
	return &NVM{ref: make(map[uint64]Word)}
}

// IsRef reports whether this image uses the map-backed reference store.
func (n *NVM) IsRef() bool { return n.ref != nil }

// BookLineWrite reserves one 64B line write in the write-pending queue at
// cycle now, where writeCost is the device's per-line write latency, and
// returns the queue depth (in pending line writes, including this one) right
// after booking. The returned depth feeds the WPQ-depth histogram; timing
// callers only need the booking side effect.
func (n *NVM) BookLineWrite(now, writeCost uint64) uint64 {
	if n.writeFree < now {
		n.writeFree = now
	}
	n.writeFree += writeCost
	if writeCost == 0 {
		return 1
	}
	return (n.writeFree - now + writeCost - 1) / writeCost
}

// PendingLineWrites reports the write-pending queue's current depth at
// cycle now without booking anything: the number of 64B line writes still
// queued ahead of the device, given the per-line write latency. Read-only
// — the telemetry sampler's WPQ-depth gauge is built on it.
func (n *NVM) PendingLineWrites(now, writeCost uint64) uint64 {
	if writeCost == 0 || n.writeFree <= now {
		return 0
	}
	return (n.writeFree - now + writeCost - 1) / writeCost
}

// page returns the page containing word index wi, or nil if absent.
func (n *NVM) page(wi uint64) *nvmPage {
	pi := wi >> pageWordShift
	if pi < uint64(len(n.pages)) {
		return n.pages[pi]
	}
	if n.far != nil {
		return n.far[pi]
	}
	return nil
}

// writablePage returns (allocating if needed) the page containing wi.
func (n *NVM) writablePage(wi uint64) *nvmPage {
	pi := wi >> pageWordShift
	if pi < uint64(len(n.pages)) {
		if p := n.pages[pi]; p != nil {
			return p
		}
	}
	return n.writablePageSlow(pi)
}

func (n *NVM) writablePageSlow(pi uint64) *nvmPage {
	if pi < directPages {
		if pi >= uint64(len(n.pages)) {
			grown := make([]*nvmPage, pi+1)
			copy(grown, n.pages)
			n.pages = grown
		}
		p := &nvmPage{}
		n.pages[pi] = p
		return p
	}
	if n.far == nil {
		n.far = make(map[uint64]*nvmPage)
	}
	if p := n.far[pi]; p != nil {
		return p
	}
	p := &nvmPage{}
	n.far[pi] = p
	return p
}

// Read returns the persisted value of the word at addr (zero if never
// written) along with its writer sequence.
func (n *NVM) Read(addr uint64) Word {
	n.Reads++
	return n.Peek(addr)
}

// Peek is Read without statistics, for verification code.
func (n *NVM) Peek(addr uint64) Word {
	wi := WordAddr(addr) >> wordShift
	pi := wi >> pageWordShift
	if pi < uint64(len(n.pages)) {
		if p := n.pages[pi]; p != nil {
			return p.words[wi&pageWordMask]
		}
		return Word{}
	}
	return n.peekSlow(wi)
}

func (n *NVM) peekSlow(wi uint64) Word {
	if n.ref != nil {
		return n.ref[wi<<wordShift]
	}
	if p := n.page(wi); p != nil {
		return p.words[wi&pageWordMask]
	}
	return Word{}
}

// Write persists val at addr if seq is newer than the current writer
// sequence. It reports whether the write was applied. This guard is the
// formal core of stale-read prevention: a redo drain or cache writeback
// carrying older data than what NVM already holds is dropped.
func (n *NVM) Write(addr uint64, val uint64, seq uint64) bool {
	a := WordAddr(addr)
	if n.ref != nil {
		cur, ok := n.ref[a]
		if ok && cur.Seq >= seq {
			n.StaleSkips++
			return false
		}
		n.ref[a] = Word{Val: val, Seq: seq}
		n.WordWrites++
		return true
	}
	wi := a >> wordShift
	p := n.writablePage(wi)
	off := wi & pageWordMask
	bw, bb := off>>6, uint64(1)<<(off&63)
	if p.used[bw]&bb != 0 {
		if p.words[off].Seq >= seq {
			n.StaleSkips++
			return false
		}
	} else {
		p.used[bw] |= bb
		n.count++
	}
	p.words[off] = Word{Val: val, Seq: seq}
	n.WordWrites++
	return true
}

// Restore force-writes a word during crash recovery (undo application),
// bypassing the sequence guard. newSeq becomes the word's writer sequence.
func (n *NVM) Restore(addr uint64, val uint64, newSeq uint64) {
	a := WordAddr(addr)
	if n.ref != nil {
		n.ref[a] = Word{Val: val, Seq: newSeq}
		return
	}
	wi := a >> wordShift
	p := n.writablePage(wi)
	off := wi & pageWordMask
	bw, bb := off>>6, uint64(1)<<(off&63)
	if p.used[bw]&bb == 0 {
		p.used[bw] |= bb
		n.count++
	}
	p.words[off] = Word{Val: val, Seq: newSeq}
}

// WordEntry is one persisted word in exportable form.
type WordEntry struct {
	Addr uint64
	Val  uint64
	Seq  uint64
}

// Entries exports the persisted words sorted by ascending address, so
// crash-image serialization is deterministic: two serializations of the same
// machine state are byte-identical (recovery scans and golden comparisons
// must not depend on Go map iteration order).
func (n *NVM) Entries() []WordEntry {
	out := make([]WordEntry, 0, n.Len())
	if n.ref != nil {
		for a, w := range n.ref {
			out = append(out, WordEntry{Addr: a, Val: w.Val, Seq: w.Seq})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
		return out
	}
	appendPage := func(pi uint64, p *nvmPage) {
		base := pi << (pageWordShift + wordShift)
		for off := uint64(0); off < pageWords; off++ {
			if p.isUsed(off) {
				w := p.words[off]
				out = append(out, WordEntry{Addr: base + off<<wordShift, Val: w.Val, Seq: w.Seq})
			}
		}
	}
	for pi, p := range n.pages {
		if p != nil {
			appendPage(uint64(pi), p)
		}
	}
	if len(n.far) > 0 {
		fis := make([]uint64, 0, len(n.far))
		for pi := range n.far {
			fis = append(fis, pi)
		}
		sort.Slice(fis, func(i, j int) bool { return fis[i] < fis[j] })
		for _, pi := range fis {
			appendPage(pi, n.far[pi])
		}
	}
	return out
}

// NVMFromEntries rebuilds an NVM image from exported entries.
func NVMFromEntries(entries []WordEntry) *NVM {
	n := NewNVM()
	for _, e := range entries {
		n.Restore(e.Addr, e.Val, e.Seq)
	}
	return n
}

// forEach visits every persisted word.
func (n *NVM) forEach(visit func(addr uint64, w Word)) {
	if n.ref != nil {
		for a, w := range n.ref {
			visit(a, w)
		}
		return
	}
	visitPage := func(pi uint64, p *nvmPage) {
		base := pi << (pageWordShift + wordShift)
		for off := uint64(0); off < pageWords; off++ {
			if p.isUsed(off) {
				visit(base+off<<wordShift, p.words[off])
			}
		}
	}
	for pi, p := range n.pages {
		if p != nil {
			visitPage(uint64(pi), p)
		}
	}
	for pi, p := range n.far {
		visitPage(pi, p)
	}
}

// Snapshot copies the persisted word values (used by tests and the
// golden-state comparisons).
func (n *NVM) Snapshot() map[uint64]uint64 {
	out := make(map[uint64]uint64, n.Len())
	n.forEach(func(addr uint64, w Word) { out[addr] = w.Val })
	return out
}

// Len returns the number of persisted words.
func (n *NVM) Len() int {
	if n.ref != nil {
		return len(n.ref)
	}
	return n.count
}

// Clone deep-copies the NVM image (crash injection snapshots). The clone
// keeps the original's backing kind.
func (n *NVM) Clone() *NVM {
	c := &NVM{count: n.count}
	if n.ref != nil {
		c.ref = make(map[uint64]Word, len(n.ref))
		for a, w := range n.ref {
			c.ref[a] = w
		}
	} else {
		c.pages = make([]*nvmPage, len(n.pages))
		for i, p := range n.pages {
			if p != nil {
				cp := *p
				c.pages[i] = &cp
			}
		}
		if len(n.far) > 0 {
			c.far = make(map[uint64]*nvmPage, len(n.far))
			for pi, p := range n.far {
				cp := *p
				c.far[pi] = &cp
			}
		}
	}
	c.writeFree = n.writeFree
	c.Writes, c.WordWrites, c.Reads, c.StaleSkips = n.Writes, n.WordWrites, n.Reads, n.StaleSkips
	return c
}

// memPage is one flat page of architectural words plus a presence bitmap.
type memPage struct {
	vals [pageWords]uint64
	used [pageWords / 64]uint64
}

func (p *memPage) isUsed(off uint64) bool { return p.used[off>>6]&(1<<(off&63)) != 0 }

// Mem is the architectural (volatile) memory image: the values loads actually
// observe during execution, maintained at word granularity. It vanishes at a
// power failure; recovery rebuilds it from NVM. The backing mirrors NVM's:
// paged flat arrays by default, a reference map via NewMemRef.
type Mem struct {
	pages []*memPage
	far   map[uint64]*memPage
	count int

	ref map[uint64]uint64 // non-nil: map-backed reference implementation
}

// NewMem returns an empty architectural memory with the paged backing.
func NewMem() *Mem {
	return &Mem{}
}

// NewMemRef returns an empty architectural memory backed by the map-based
// reference implementation (differential testing only).
func NewMemRef() *Mem {
	return &Mem{ref: make(map[uint64]uint64)}
}

// IsRef reports whether this memory uses the map-backed reference store.
func (m *Mem) IsRef() bool { return m.ref != nil }

// FromSnapshot builds architectural memory from a persisted image (used when
// resuming after recovery).
func FromSnapshot(s map[uint64]uint64) *Mem {
	m := NewMem()
	for a, v := range s {
		m.Store(a, v)
	}
	return m
}

// MemFromNVM builds the architectural memory image a recovery produces: every
// persisted word's value, with the same backing kind as the NVM image. This
// is the allocation-lean page-copy path recovery uses instead of going
// through a map snapshot.
func MemFromNVM(n *NVM) *Mem {
	if n.ref != nil {
		m := NewMemRef()
		for a, w := range n.ref {
			m.ref[a] = w.Val
		}
		return m
	}
	m := &Mem{count: n.count, pages: make([]*memPage, len(n.pages))}
	copyPage := func(p *nvmPage) *memPage {
		mp := &memPage{used: p.used}
		for off := 0; off < pageWords; off++ {
			mp.vals[off] = p.words[off].Val
		}
		return mp
	}
	for i, p := range n.pages {
		if p != nil {
			m.pages[i] = copyPage(p)
		}
	}
	if len(n.far) > 0 {
		m.far = make(map[uint64]*memPage, len(n.far))
		for pi, p := range n.far {
			m.far[pi] = copyPage(p)
		}
	}
	return m
}

func (m *Mem) writablePage(wi uint64) *memPage {
	pi := wi >> pageWordShift
	if pi < uint64(len(m.pages)) {
		if p := m.pages[pi]; p != nil {
			return p
		}
	}
	return m.writablePageSlow(pi)
}

func (m *Mem) writablePageSlow(pi uint64) *memPage {
	if pi < directPages {
		if pi >= uint64(len(m.pages)) {
			grown := make([]*memPage, pi+1)
			copy(grown, m.pages)
			m.pages = grown
		}
		p := &memPage{}
		m.pages[pi] = p
		return p
	}
	if m.far == nil {
		m.far = make(map[uint64]*memPage)
	}
	if p := m.far[pi]; p != nil {
		return p
	}
	p := &memPage{}
	m.far[pi] = p
	return p
}

// Load returns the word at addr.
func (m *Mem) Load(addr uint64) uint64 {
	wi := WordAddr(addr) >> wordShift
	pi := wi >> pageWordShift
	if pi < uint64(len(m.pages)) {
		if p := m.pages[pi]; p != nil {
			return p.vals[wi&pageWordMask]
		}
		return 0
	}
	return m.loadSlow(wi)
}

func (m *Mem) loadSlow(wi uint64) uint64 {
	if m.ref != nil {
		return m.ref[wi<<wordShift]
	}
	if m.far != nil {
		if p := m.far[wi>>pageWordShift]; p != nil {
			return p.vals[wi&pageWordMask]
		}
	}
	return 0
}

// Store writes the word at addr and returns the previous value (the undo
// image the front-end proxy captures).
func (m *Mem) Store(addr uint64, val uint64) (old uint64) {
	a := WordAddr(addr)
	if m.ref != nil {
		old = m.ref[a]
		m.ref[a] = val
		return old
	}
	wi := a >> wordShift
	p := m.writablePage(wi)
	off := wi & pageWordMask
	old = p.vals[off]
	bw, bb := off>>6, uint64(1)<<(off&63)
	if p.used[bw]&bb == 0 {
		p.used[bw] |= bb
		m.count++
	}
	p.vals[off] = val
	return old
}

// Snapshot copies the current word map.
func (m *Mem) Snapshot() map[uint64]uint64 {
	out := make(map[uint64]uint64, m.Len())
	if m.ref != nil {
		for a, v := range m.ref {
			out[a] = v
		}
		return out
	}
	visitPage := func(pi uint64, p *memPage) {
		base := pi << (pageWordShift + wordShift)
		for off := uint64(0); off < pageWords; off++ {
			if p.isUsed(off) {
				out[base+off<<wordShift] = p.vals[off]
			}
		}
	}
	for pi, p := range m.pages {
		if p != nil {
			visitPage(uint64(pi), p)
		}
	}
	for pi, p := range m.far {
		visitPage(pi, p)
	}
	return out
}

// Len returns the number of populated words.
func (m *Mem) Len() int {
	if m.ref != nil {
		return len(m.ref)
	}
	return m.count
}
