// Package mem models the memory devices of the Capri machine: the
// byte-addressable NVM main memory (with read/write queues and a
// write-pending queue in the persistent domain) and the hardware-managed
// direct-mapped off-chip DRAM cache in front of it — the "memory mode"
// arrangement of Table 1.
//
// Functional state is tracked at 8-byte word granularity. Every persisted
// word carries the global sequence number of the store that produced it; the
// sequence guard generalizes the paper's redo valid-bit across cores and is
// what makes recovery application order-insensitive (see DESIGN.md).
package mem

// WordSize is the machine word size in bytes.
const WordSize = 8

// LineSize is the cache line size in bytes (Table 1: 64 B blocks).
const LineSize = 64

// LineAddr returns the line-aligned address containing addr.
func LineAddr(addr uint64) uint64 { return addr &^ (LineSize - 1) }

// WordAddr returns the word-aligned address containing addr.
func WordAddr(addr uint64) uint64 { return addr &^ (WordSize - 1) }

// Word is a persisted word value plus the global store sequence number of its
// writer.
type Word struct {
	Val uint64
	Seq uint64
}

// NVM is the non-volatile main memory: the only device whose contents survive
// power failure (alongside the battery-backed proxy buffers). It holds the
// persisted program image and the register checkpoint storage.
type NVM struct {
	words map[uint64]Word

	// Stats
	Writes     uint64 // 64B-equivalent write operations accepted
	WordWrites uint64 // word-granularity writes
	Reads      uint64
	StaleSkips uint64 // writes rejected by the sequence guard
}

// NewNVM returns an empty NVM image.
func NewNVM() *NVM {
	return &NVM{words: make(map[uint64]Word)}
}

// Read returns the persisted value of the word at addr (zero if never
// written) along with its writer sequence.
func (n *NVM) Read(addr uint64) Word {
	n.Reads++
	return n.words[WordAddr(addr)]
}

// Peek is Read without statistics, for verification code.
func (n *NVM) Peek(addr uint64) Word { return n.words[WordAddr(addr)] }

// Write persists val at addr if seq is newer than the current writer
// sequence. It reports whether the write was applied. This guard is the
// formal core of stale-read prevention: a redo drain or cache writeback
// carrying older data than what NVM already holds is dropped.
func (n *NVM) Write(addr uint64, val uint64, seq uint64) bool {
	a := WordAddr(addr)
	cur, ok := n.words[a]
	if ok && cur.Seq >= seq {
		n.StaleSkips++
		return false
	}
	n.words[a] = Word{Val: val, Seq: seq}
	n.WordWrites++
	return true
}

// Restore force-writes a word during crash recovery (undo application),
// bypassing the sequence guard. newSeq becomes the word's writer sequence.
func (n *NVM) Restore(addr uint64, val uint64, newSeq uint64) {
	n.words[WordAddr(addr)] = Word{Val: val, Seq: newSeq}
}

// WordEntry is one persisted word in exportable form.
type WordEntry struct {
	Addr uint64
	Val  uint64
	Seq  uint64
}

// Entries exports the persisted words (order unspecified) for serialization.
func (n *NVM) Entries() []WordEntry {
	out := make([]WordEntry, 0, len(n.words))
	for a, w := range n.words {
		out = append(out, WordEntry{Addr: a, Val: w.Val, Seq: w.Seq})
	}
	return out
}

// NVMFromEntries rebuilds an NVM image from exported entries.
func NVMFromEntries(entries []WordEntry) *NVM {
	n := NewNVM()
	for _, e := range entries {
		n.words[e.Addr] = Word{Val: e.Val, Seq: e.Seq}
	}
	return n
}

// Snapshot copies the persisted word map (used by tests and the golden-state
// comparisons).
func (n *NVM) Snapshot() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(n.words))
	for a, w := range n.words {
		out[a] = w.Val
	}
	return out
}

// Len returns the number of persisted words.
func (n *NVM) Len() int { return len(n.words) }

// Clone deep-copies the NVM image (crash injection snapshots).
func (n *NVM) Clone() *NVM {
	c := NewNVM()
	for a, w := range n.words {
		c.words[a] = w
	}
	c.Writes, c.WordWrites, c.Reads, c.StaleSkips = n.Writes, n.WordWrites, n.Reads, n.StaleSkips
	return c
}

// Mem is the architectural (volatile) memory image: the values loads actually
// observe during execution, maintained at word granularity. It vanishes at a
// power failure; recovery rebuilds it from NVM.
type Mem struct {
	words map[uint64]uint64
}

// NewMem returns an empty architectural memory.
func NewMem() *Mem {
	return &Mem{words: make(map[uint64]uint64)}
}

// FromSnapshot builds architectural memory from a persisted image (used when
// resuming after recovery).
func FromSnapshot(s map[uint64]uint64) *Mem {
	m := NewMem()
	for a, v := range s {
		m.words[a] = v
	}
	return m
}

// Load returns the word at addr.
func (m *Mem) Load(addr uint64) uint64 { return m.words[WordAddr(addr)] }

// Store writes the word at addr and returns the previous value (the undo
// image the front-end proxy captures).
func (m *Mem) Store(addr uint64, val uint64) (old uint64) {
	a := WordAddr(addr)
	old = m.words[a]
	m.words[a] = val
	return old
}

// Snapshot copies the current word map.
func (m *Mem) Snapshot() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m.words))
	for a, v := range m.words {
		out[a] = v
	}
	return out
}

// Len returns the number of populated words.
func (m *Mem) Len() int { return len(m.words) }
