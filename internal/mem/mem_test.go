package mem

import (
	"testing"
	"testing/quick"
)

func TestAddressHelpers(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Errorf("LineAddr(0x1234) = %#x", LineAddr(0x1234))
	}
	if WordAddr(0x1237) != 0x1230 {
		t.Errorf("WordAddr(0x1237) = %#x", WordAddr(0x1237))
	}
	f := func(a uint64) bool {
		return LineAddr(a)%LineSize == 0 && WordAddr(a)%WordSize == 0 &&
			LineAddr(a) <= a && WordAddr(a) <= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNVMSeqGuard(t *testing.T) {
	n := NewNVM()
	if !n.Write(0x100, 7, 10) {
		t.Fatal("first write rejected")
	}
	if n.Write(0x100, 9, 5) {
		t.Error("stale write (seq 5 < 10) accepted")
	}
	if got := n.Peek(0x100); got.Val != 7 || got.Seq != 10 {
		t.Errorf("word = %+v", got)
	}
	if !n.Write(0x100, 9, 11) {
		t.Error("newer write rejected")
	}
	if n.StaleSkips != 1 {
		t.Errorf("stale skips = %d", n.StaleSkips)
	}
}

func TestNVMEqualSeqRejected(t *testing.T) {
	n := NewNVM()
	n.Write(0x40, 1, 5)
	if n.Write(0x40, 2, 5) {
		t.Error("equal-seq write must be rejected (idempotent redo replay)")
	}
}

func TestNVMRestoreBypassesGuard(t *testing.T) {
	n := NewNVM()
	n.Write(0x40, 42, 100)
	n.Restore(0x40, 7, 99)
	if got := n.Peek(0x40); got.Val != 7 || got.Seq != 99 {
		t.Errorf("after restore: %+v", got)
	}
}

func TestNVMCloneIndependent(t *testing.T) {
	n := NewNVM()
	n.Write(0x40, 1, 1)
	c := n.Clone()
	c.Write(0x48, 2, 2)
	n.Write(0x50, 3, 3)
	if c.Peek(0x50).Seq != 0 {
		t.Error("clone sees original's later write")
	}
	if n.Peek(0x48).Seq != 0 {
		t.Error("original sees clone's write")
	}
	if c.Peek(0x40).Val != 1 {
		t.Error("clone missing copied word")
	}
}

func TestNVMWordAlignment(t *testing.T) {
	n := NewNVM()
	n.Write(0x101, 5, 1) // unaligned: lands in word 0x100
	if n.Peek(0x100).Val != 5 {
		t.Error("unaligned write not coalesced to word address")
	}
}

func TestMemStoreReturnsUndo(t *testing.T) {
	m := NewMem()
	if old := m.Store(0x20, 11); old != 0 {
		t.Errorf("first store undo = %d, want 0", old)
	}
	if old := m.Store(0x20, 22); old != 11 {
		t.Errorf("second store undo = %d, want 11", old)
	}
	if m.Load(0x20) != 22 {
		t.Errorf("load = %d", m.Load(0x20))
	}
}

func TestMemSnapshotRoundTrip(t *testing.T) {
	m := NewMem()
	m.Store(0x10, 1)
	m.Store(0x18, 2)
	s := m.Snapshot()
	m2 := FromSnapshot(s)
	if m2.Load(0x10) != 1 || m2.Load(0x18) != 2 {
		t.Error("snapshot round trip lost data")
	}
	// Mutating the copy must not affect the original.
	m2.Store(0x10, 99)
	if m.Load(0x10) != 1 {
		t.Error("FromSnapshot aliases the source")
	}
}

func TestDRAMCacheDirectMapped(t *testing.T) {
	d := NewDRAMCache(2 * LineSize) // two sets
	if d.Access(0) {
		t.Error("cold access hit")
	}
	if !d.Access(8) {
		t.Error("same-line access missed")
	}
	// 2*LineSize maps to set 0: conflict evicts line 0.
	if d.Access(2 * LineSize) {
		t.Error("conflicting line hit")
	}
	if d.Access(0) {
		t.Error("evicted line still hit")
	}
	if d.Hits != 1 || d.Misses != 3 {
		t.Errorf("hits=%d misses=%d", d.Hits, d.Misses)
	}
}

func TestDRAMCacheReset(t *testing.T) {
	d := NewDRAMCache(4 * LineSize)
	d.Access(0)
	d.Reset()
	if d.Access(0) {
		t.Error("hit after reset")
	}
}

func TestDRAMCacheFill(t *testing.T) {
	d := NewDRAMCache(4 * LineSize)
	d.Fill(128)
	if !d.Access(128) {
		t.Error("filled line missed")
	}
}

func TestNVMEntriesRoundTrip(t *testing.T) {
	n := NewNVM()
	n.Write(0x100, 7, 3)
	n.Write(0x108, 8, 4)
	n.Write(0x200, 9, 5)
	es := n.Entries()
	if len(es) != 3 {
		t.Fatalf("entries = %d", len(es))
	}
	n2 := NVMFromEntries(es)
	if n2.Len() != 3 {
		t.Fatalf("rebuilt len = %d", n2.Len())
	}
	for _, e := range es {
		w := n2.Peek(e.Addr)
		if w.Val != e.Val || w.Seq != e.Seq {
			t.Errorf("rebuilt[%#x] = %+v, want %+v", e.Addr, w, e)
		}
	}
	// Sequence guard semantics preserved.
	if n2.Write(0x100, 1, 2) {
		t.Error("stale write accepted after rebuild")
	}
}

func TestMemLen(t *testing.T) {
	m := NewMem()
	if m.Len() != 0 {
		t.Error("fresh mem not empty")
	}
	m.Store(8, 1)
	m.Store(8, 2) // same word
	m.Store(16, 3)
	if m.Len() != 2 {
		t.Errorf("len = %d, want 2", m.Len())
	}
}
