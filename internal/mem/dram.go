package mem

// DRAMCache is the hardware-managed, direct-mapped off-chip DRAM cache that
// fronts NVM in the memory-mode arrangement (Table 1: 8 GB DDR4, 64 B blocks,
// direct-mapped). It is a *timing* structure: it decides whether a memory
// access pays DRAM or NVM latency. It is volatile — its contents do not
// participate in recovery — and, per DESIGN.md, dirty writebacks arriving at
// the memory controller propagate to the NVM write queue rather than
// lingering dirty here, so the cache only ever holds clean lines.
type DRAMCache struct {
	// Tag storage is chunked and allocated lazily: a multi-MB direct-mapped
	// cache would otherwise be zeroed wholesale at machine construction, and
	// figure sweeps construct one machine per configuration point. A set
	// holds the line tag, or 0 when empty (tag = lineAddr | 1).
	chunks [][]uint64
	nsets  uint64
	mask   uint64 // nsets-1 when the set count is a power of two, else 0

	Hits   uint64
	Misses uint64
}

// dramChunkBits sizes a tag chunk (2^13 sets = 64 KB of tags).
const dramChunkBits = 13

// NewDRAMCache builds a direct-mapped cache of the given capacity in bytes.
func NewDRAMCache(capacity uint64) *DRAMCache {
	n := capacity / LineSize
	if n == 0 {
		n = 1
	}
	nchunks := (n + (1 << dramChunkBits) - 1) >> dramChunkBits
	d := &DRAMCache{chunks: make([][]uint64, nchunks), nsets: n}
	if n&(n-1) == 0 {
		d.mask = n - 1
	}
	return d
}

// idx maps a line address to its set. Every realistic capacity yields a
// power-of-two set count, indexed with a mask; the modulo path exists only
// for odd capacities and is bit-identical to the mask for power-of-two ones.
func (d *DRAMCache) idx(line uint64) uint64 {
	s := line / LineSize
	if d.mask != 0 || d.nsets == 1 {
		return s & d.mask
	}
	return s % d.nsets
}

// set returns a pointer to the tag slot for a set index, materializing its
// chunk on first touch.
func (d *DRAMCache) set(idx uint64) *uint64 {
	ch := d.chunks[idx>>dramChunkBits]
	if ch == nil {
		ch = make([]uint64, 1<<dramChunkBits)
		d.chunks[idx>>dramChunkBits] = ch
	}
	return &ch[idx&(1<<dramChunkBits-1)]
}

// Access looks up the line containing addr, filling it on miss. It reports
// whether the access hit.
func (d *DRAMCache) Access(addr uint64) bool {
	line := LineAddr(addr)
	s := d.set(d.idx(line))
	tag := line | 1
	if *s == tag {
		d.Hits++
		return true
	}
	*s = tag
	d.Misses++
	return false
}

// Fill installs the line containing addr without counting a hit or miss
// (used when writebacks pass through the controller).
func (d *DRAMCache) Fill(addr uint64) {
	line := LineAddr(addr)
	*d.set(d.idx(line)) = line | 1
}

// Reset drops all lines (power failure).
func (d *DRAMCache) Reset() {
	for i := range d.chunks {
		d.chunks[i] = nil
	}
}
