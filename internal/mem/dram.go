package mem

// DRAMCache is the hardware-managed, direct-mapped off-chip DRAM cache that
// fronts NVM in the memory-mode arrangement (Table 1: 8 GB DDR4, 64 B blocks,
// direct-mapped). It is a *timing* structure: it decides whether a memory
// access pays DRAM or NVM latency. It is volatile — its contents do not
// participate in recovery — and, per DESIGN.md, dirty writebacks arriving at
// the memory controller propagate to the NVM write queue rather than
// lingering dirty here, so the cache only ever holds clean lines.
type DRAMCache struct {
	sets []uint64 // tag per set; 0 means empty (tag = lineAddr | 1)

	Hits   uint64
	Misses uint64
}

// NewDRAMCache builds a direct-mapped cache of the given capacity in bytes.
func NewDRAMCache(capacity uint64) *DRAMCache {
	n := capacity / LineSize
	if n == 0 {
		n = 1
	}
	return &DRAMCache{sets: make([]uint64, n)}
}

// Access looks up the line containing addr, filling it on miss. It reports
// whether the access hit.
func (d *DRAMCache) Access(addr uint64) bool {
	line := LineAddr(addr)
	idx := (line / LineSize) % uint64(len(d.sets))
	tag := line | 1
	if d.sets[idx] == tag {
		d.Hits++
		return true
	}
	d.sets[idx] = tag
	d.Misses++
	return false
}

// Fill installs the line containing addr without counting a hit or miss
// (used when writebacks pass through the controller).
func (d *DRAMCache) Fill(addr uint64) {
	line := LineAddr(addr)
	idx := (line / LineSize) % uint64(len(d.sets))
	d.sets[idx] = line | 1
}

// Reset drops all lines (power failure).
func (d *DRAMCache) Reset() {
	for i := range d.sets {
		d.sets[i] = 0
	}
}
