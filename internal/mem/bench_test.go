package mem

import "testing"

// Raw store micro-benchmarks: the per-access cost of the paged flat-array
// backing versus the map-backed reference implementation, over the access
// patterns the simulator actually generates (sequential heap sweeps and
// strided line-granular writebacks). Run with:
//
//	go test -bench 'Mem|NVM' -benchmem ./internal/mem
//
// The paged/ref pairs are this PR's perf-regression anchors: the paged side
// must stay allocation-free per access and several times faster than ref.

// benchSpan covers 2 MB of heap — the figure workloads' footprint scale,
// touched densely the way their kernels sweep arrays.
const benchSpan = uint64(2 << 20)

func benchAddrs() []uint64 {
	addrs := make([]uint64, 4096)
	for i := range addrs {
		// 17-word stride: line-crossing, page-dense, cache-hostile.
		addrs[i] = (uint64(i) * 17 * WordSize) % benchSpan
	}
	return addrs
}

func benchMemLoad(b *testing.B, m *Mem) {
	addrs := benchAddrs()
	for _, a := range addrs {
		m.Store(a, a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Load(addrs[i&(len(addrs)-1)])
	}
	benchSink = sink
}

func benchMemStore(b *testing.B, m *Mem) {
	addrs := benchAddrs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Store(addrs[i&(len(addrs)-1)], uint64(i))
	}
}

func benchNVMWrite(b *testing.B, n *NVM) {
	addrs := benchAddrs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Monotonic seq: every write passes the guard, as phase-2 drains do.
		n.Write(addrs[i&(len(addrs)-1)], uint64(i), uint64(i)+1)
	}
}

var benchSink uint64

func BenchmarkMemLoadPaged(b *testing.B) { benchMemLoad(b, NewMem()) }
func BenchmarkMemLoadRef(b *testing.B)   { benchMemLoad(b, NewMemRef()) }

func BenchmarkMemStorePaged(b *testing.B) { benchMemStore(b, NewMem()) }
func BenchmarkMemStoreRef(b *testing.B)   { benchMemStore(b, NewMemRef()) }

func BenchmarkNVMWritePaged(b *testing.B) { benchNVMWrite(b, NewNVM()) }
func BenchmarkNVMWriteRef(b *testing.B)   { benchNVMWrite(b, NewNVMRef()) }

// BenchmarkNVMWriteStale measures the guard's rejection path (writebacks
// racing drained entries): all writes carry a stale sequence and must be
// skipped without mutating the page.
func BenchmarkNVMWriteStale(b *testing.B) {
	n := NewNVM()
	addrs := benchAddrs()
	for _, a := range addrs {
		n.Write(a, a, ^uint64(0))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Write(addrs[i&(len(addrs)-1)], uint64(i), 1)
	}
}
