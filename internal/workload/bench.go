package workload

import (
	"fmt"
	"sort"

	"capri/internal/prog"
)

// Suite identifies which benchmark suite a workload stands in for.
type Suite string

// Suites of the paper's evaluation.
const (
	SuiteSPEC   Suite = "cpu2017"
	SuiteSTAMP  Suite = "stamp"
	SuiteSplash Suite = "splash3"
)

// Benchmark describes one synthetic stand-in workload.
type Benchmark struct {
	Name    string
	Suite   Suite
	Threads int
	// ShortLoops marks benchmarks the paper calls out as dominated by short
	// loops (508.namd, ssca2, volrend, water-*): speculative unrolling gives
	// them outsized wins.
	ShortLoops bool
	// Build constructs the program at the given scale (1 = default figure
	// scale; tests use smaller).
	Build func(scale int) *prog.Program
	// Check, when non-nil, validates a final memory image against the
	// workload's own conservation invariants. Contention workloads set it:
	// their per-thread outputs are interleaving-dependent (a fetch-and-add's
	// old value depends on who got there first), so crash/recovery runs
	// cannot be compared output-for-output against a golden run — the
	// invariants hold under every legal interleaving instead.
	Check func(scale int, snap map[uint64]uint64) error
}

var registry []Benchmark

func register(b Benchmark) { registry = append(registry, b) }

// All returns every benchmark in plotting order: SPEC, STAMP, Splash-3 —
// matching the x-axes of Figures 8–11. (Registration happens in per-file
// init functions whose order follows file names, so All sorts by suite
// explicitly, keeping registration order within each suite.)
func All() []Benchmark {
	out := make([]Benchmark, len(registry))
	copy(out, registry)
	rank := map[Suite]int{SuiteSPEC: 0, SuiteSTAMP: 1, SuiteSplash: 2}
	sort.SliceStable(out, func(i, j int) bool {
		return rank[out[i].Suite] < rank[out[j].Suite]
	})
	return out
}

// BySuite filters All by suite, preserving order.
func BySuite(s Suite) []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if b.Suite == s {
			out = append(out, b)
		}
	}
	return out
}

// ByName returns the named benchmark, searching the paper stand-ins first
// and then the microbenchmarks.
func ByName(name string) (Benchmark, error) {
	if b, ok := byNameAll(name); ok {
		return b, nil
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q (see `capricc -list`)", name)
}

// Names lists all benchmark names in plotting order.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}
