package workload

import (
	"capri/internal/isa"
	"capri/internal/machine"
	"capri/internal/prog"
)

// STAMP stand-ins. The paper compiles STAMP as sequential programs (§6.1) and
// reports the highest overhead suite (12.4% geomean at threshold 256): these
// workloads are store-dense transactional kernels over shared data
// structures, so checkpoint and proxy traffic matter.

func init() {
	register(Benchmark{Name: "genome", Suite: SuiteSTAMP, Threads: 1, Build: buildGenome})
	register(Benchmark{Name: "intruder", Suite: SuiteSTAMP, Threads: 1, Build: buildIntruder})
	register(Benchmark{Name: "labyrinth", Suite: SuiteSTAMP, Threads: 1, Build: buildLabyrinth})
	register(Benchmark{Name: "ssca2", Suite: SuiteSTAMP, Threads: 1, ShortLoops: true, Build: buildSSCA2})
	register(Benchmark{Name: "vacation", Suite: SuiteSTAMP, Threads: 1, Build: buildVacation})
}

// buildGenome: gene sequencing — hash-table segment insertion (random
// single-store updates) followed by sequential overlap matching.
func buildGenome(scale int) *prog.Program {
	return singleMain("genome", func(f *prog.FuncBuilder, r *rng) {
		// Phase 1: hash inserts (random stores, store-dense).
		loopKernel(f, kernelSpec{
			iters: int64(scale) * 5000, bodyStores: 2, bodyALU: 4, bodyLoads: 2,
			stride: 8, span: 1 << 18, random: true, liveRegs: 8,
		}, heapAt(8), r)
		// Phase 2: sequential matching (load-heavy, sparse stores).
		loopKernel(f, kernelSpec{
			iters: int64(scale) * 4000, bodyStores: 1, bodyALU: 8, bodyLoads: 4,
			stride: 8, span: 1 << 17, liveRegs: 5,
		}, heapAt(9), r)
	})
}

// buildIntruder: network-intrusion detection — packet queue manipulation:
// short bursts of pointer updates (dense stores) per packet with branchy
// decoding between bursts.
func buildIntruder(scale int) *prog.Program {
	return singleMain("intruder", func(f *prog.FuncBuilder, r *rng) {
		for k := 0; k < 3; k++ {
			loopKernel(f, kernelSpec{
				iters: int64(scale) * 2600, bodyStores: 3, bodyALU: 5, bodyLoads: 3,
				stride: 40, span: 1 << 16, random: k == 1, liveRegs: 8,
			}, heapAt(10+k%2), r)
		}
	})
}

// buildLabyrinth: maze routing — grid relaxation sweeps writing path costs:
// the densest store pattern in STAMP, over a large grid.
func buildLabyrinth(scale int) *prog.Program {
	return singleMain("labyrinth", func(f *prog.FuncBuilder, r *rng) {
		for k := 0; k < 2; k++ {
			loopKernel(f, kernelSpec{
				iters: int64(scale) * 4500, bodyStores: 4, bodyALU: 4, bodyLoads: 2,
				stride: 32, span: 1 << 20, liveRegs: 8,
			}, heapAt(12), r)
		}
	})
}

// buildSSCA2: scale-free graph kernels — the paper's short-loop STAMP
// benchmark: tiny adjacency-update loops (1–2 stores) dominate, making
// speculative unrolling decisive.
func buildSSCA2(scale int) *prog.Program {
	return singleMain("ssca2", func(f *prog.FuncBuilder, r *rng) {
		for k := 0; k < 8; k++ {
			loopKernel(f, kernelSpec{
				iters: int64(scale) * 1800, bodyStores: 1, bodyALU: 3, bodyLoads: 1,
				stride: 8, span: 1 << 16, random: k%2 == 0, liveRegs: 2,
			}, heapAt(13), r)
		}
	})
}

// buildVacation: travel-reservation system — red-black-tree-like lookups
// (call-heavy) with clustered reservation updates.
func buildVacation(scale int) *prog.Program {
	bd := prog.NewBuilder("vacation")

	lookup := bd.Func("lookup") // tree walk: loads + one update store
	lEntry := lookup.Block()
	lHdr := lookup.Block()
	lBody := lookup.Block()
	lExit := lookup.Block()
	lookup.SetBlock(lEntry)
	lookup.MovI(isa.Reg(20), 0)
	lookup.MovI(isa.Reg(21), 10) // tree depth
	lookup.MovI(isa.Reg(22), int64(heapAt(14)))
	lookup.Br(lHdr)
	lookup.SetBlock(lHdr)
	lookup.BrIf(isa.Reg(20), isa.CondGE, isa.Reg(21), lExit, lBody)
	lookup.SetBlock(lBody)
	lookup.MulI(isa.A0, isa.A0, 6364136223846793005)
	lookup.OpI(isa.OpShrI, rTmp, isa.A0, 33)
	lookup.OpI(isa.OpAndI, rTmp, rTmp, (1<<15)-1)
	lookup.OpI(isa.OpShlI, rTmp, rTmp, 3)
	lookup.Add(rTmp, rTmp, isa.Reg(22))
	lookup.Load(rTmp2, rTmp, 0)
	lookup.Add(isa.A0, isa.A0, rTmp2)
	lookup.AddI(isa.Reg(20), isa.Reg(20), 1)
	lookup.Br(lHdr)
	lookup.SetBlock(lExit)
	lookup.Store(rTmp, 0, isa.A0) // reservation update at the found node
	lookup.Ret()

	main := bd.Func("main")
	mEntry := main.Block()
	mHdr := main.Block()
	mBody := main.Block()
	mExit := main.Block()
	const (
		rRate      = isa.Reg(23) // loop-invariant pricing rate (LICM material)
		rBasePrice = isa.Reg(24)
	)
	main.SetBlock(mEntry)
	main.MovI(isa.SP, int64(machine.StackBase(0)))
	main.MovI(rAcc, 0)
	main.MovI(rI, 0)
	main.MovI(rN, int64(scale)*1500)
	main.MovI(isa.A0, 99991)
	main.MovI(rBasePrice, 137)
	main.Br(mHdr)
	main.SetBlock(mHdr)
	main.BrIf(rI, isa.CondGE, rN, mExit, mBody)
	main.SetBlock(mBody)
	// Loop-invariant pricing computation, live across the call: the compiler
	// checkpoints it before the call every iteration until checkpoint LICM
	// hoists the (def, ckpt) pair to the preheader (paper §4.4.2).
	main.MulI(rRate, rBasePrice, 3)
	main.Call(lookup)
	main.Add(rAcc, rAcc, isa.A0)
	// Reservation record: a burst of stores (one priced by the rate).
	main.MovI(rTmp, int64(heapAt(15)))
	main.MulI(rTmp2, rI, 32)
	main.OpI(isa.OpAndI, rTmp2, rTmp2, (1<<16)-8)
	main.Add(rTmp, rTmp, rTmp2)
	main.Store(rTmp, 0, rAcc)
	main.Store(rTmp, 8, rI)
	main.Store(rTmp, 16, isa.A0)
	main.Store(rTmp, 24, rRate)
	main.AddI(rI, rI, 1)
	main.Br(mHdr)
	main.SetBlock(mExit)
	main.Emit(rAcc)
	main.Halt()
	bd.SetThreadEntries(main)
	return bd.Program()
}
