package workload

import (
	"capri/internal/isa"
	"capri/internal/machine"
	"capri/internal/prog"
)

// SPEC CPU2017 stand-ins (single-threaded; the paper reports ~0% geomean
// overhead at threshold 256). These programs are store-sparse relative to
// STAMP/Splash and carry longer basic blocks, so region formation has room
// and checkpoint traffic stays small.

func init() {
	register(Benchmark{
		Name: "505.mcf_r", Suite: SuiteSPEC, Threads: 1,
		Build: buildMCF,
	})
	register(Benchmark{
		Name: "531.deepsjeng_r", Suite: SuiteSPEC, Threads: 1,
		Build: buildDeepsjeng,
	})
	register(Benchmark{
		Name: "541.leela_r", Suite: SuiteSPEC, Threads: 1,
		Build: buildLeela,
	})
	register(Benchmark{
		Name: "508.namd_r", Suite: SuiteSPEC, Threads: 1, ShortLoops: true,
		Build: buildNamd,
	})
	register(Benchmark{
		Name: "519.lbm_r", Suite: SuiteSPEC, Threads: 1,
		Build: buildLBM,
	})
}

// singleMain wraps a body emitter into a single-threaded program ending in
// Emit(rAcc); Halt.
func singleMain(name string, body func(f *prog.FuncBuilder, r *rng)) *prog.Program {
	bd := prog.NewBuilder(name)
	f := bd.Func("main")
	f.Block()
	f.MovI(isa.SP, int64(machine.StackBase(0)))
	f.MovI(rAcc, 0)
	body(f, newRNG(hash64(name)))
	f.Emit(rAcc)
	f.Halt()
	bd.SetThreadEntries(f)
	return bd.Program()
}

func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// buildMCF: minimum-cost-flow is dominated by pointer chasing over network
// arcs with sparse updates — long-latency loads, very few stores.
func buildMCF(scale int) *prog.Program {
	return singleMain("505.mcf_r", func(f *prog.FuncBuilder, r *rng) {
		chaseKernel(f, int64(scale)*30000, 4096, heapAt(0), 16)
		loopKernel(f, kernelSpec{
			iters: int64(scale) * 2000, bodyStores: 1, bodyALU: 14, bodyLoads: 3,
			stride: 64, span: 1 << 18, random: true, liveRegs: 2,
		}, heapAt(1), r)
	})
}

// buildDeepsjeng: game-tree search — deep call chains, moderate stores to
// hash tables, branchy evaluation.
func buildDeepsjeng(scale int) *prog.Program {
	bd := prog.NewBuilder("531.deepsjeng_r")

	eval := bd.Func("eval") // leaf evaluation: ALU-heavy, one TT store
	eval.Block()
	eval.MulI(rTmp, isa.A0, 2654435761)
	eval.OpI(isa.OpShrI, rTmp, rTmp, 16)
	eval.OpI(isa.OpAndI, rTmp, rTmp, (1<<14)-1)
	eval.OpI(isa.OpShlI, rTmp, rTmp, 3)
	eval.MovI(rTmp2, int64(heapAt(2)))
	eval.Add(rTmp, rTmp, rTmp2)
	for i := 0; i < 90; i++ {
		eval.OpI(isa.OpAddI, isa.A0, isa.A0, int64(3*i+1))
		eval.Op3(isa.OpXor, isa.A0, isa.A0, rTmp)
		if i%8 == 7 {
			eval.Load(rTmp2, rTmp, int64(8*(i%4)))
			eval.Add(isa.A0, isa.A0, rTmp2)
		}
	}
	eval.Store(rTmp, 0, isa.A0) // transposition-table update
	eval.Store(rTmp, 8, rTmp)   // depth/age tag
	eval.Ret()

	search := bd.Func("search") // calls eval in a short loop
	sEntry := search.Block()
	sHdr := search.Block()
	sBody := search.Block()
	sExit := search.Block()
	search.SetBlock(sEntry)
	search.MovI(isa.Reg(20), 0)
	search.MovI(isa.Reg(21), 8) // branching factor
	search.Br(sHdr)
	search.SetBlock(sHdr)
	search.BrIf(isa.Reg(20), isa.CondGE, isa.Reg(21), sExit, sBody)
	search.SetBlock(sBody)
	search.Add(isa.A0, isa.A0, isa.Reg(20))
	search.Call(eval)
	search.AddI(isa.Reg(20), isa.Reg(20), 1)
	search.Br(sHdr)
	search.SetBlock(sExit)
	search.Ret()

	main := bd.Func("main")
	mEntry := main.Block()
	mHdr := main.Block()
	mBody := main.Block()
	mExit := main.Block()
	main.SetBlock(mEntry)
	main.MovI(isa.SP, int64(machine.StackBase(0)))
	main.MovI(rAcc, 0)
	main.MovI(rI, 0)
	main.MovI(rN, int64(scale)*420)
	main.MovI(isa.A0, 7)
	main.Br(mHdr)
	main.SetBlock(mHdr)
	main.BrIf(rI, isa.CondGE, rN, mExit, mBody)
	main.SetBlock(mBody)
	main.Call(search)
	main.Add(rAcc, rAcc, isa.A0)
	main.AddI(rI, rI, 1)
	main.Br(mHdr)
	main.SetBlock(mExit)
	main.Emit(rAcc)
	main.Halt()
	bd.SetThreadEntries(main)
	return bd.Program()
}

// buildLeela: Monte-Carlo tree search — similar to deepsjeng but with a
// larger ALU-to-store ratio and random playout writes.
func buildLeela(scale int) *prog.Program {
	return singleMain("541.leela_r", func(f *prog.FuncBuilder, r *rng) {
		loopKernel(f, kernelSpec{
			iters: int64(scale) * 6000, bodyStores: 2, bodyALU: 38, bodyLoads: 4,
			stride: 128, span: 1 << 19, random: true, liveRegs: 3,
		}, heapAt(3), r)
		loopKernel(f, kernelSpec{
			iters: int64(scale) * 3000, bodyStores: 1, bodyALU: 28, bodyLoads: 2,
			stride: 8, span: 1 << 15, liveRegs: 2,
		}, heapAt(4), r)
	})
}

// buildNamd: molecular dynamics — the paper's canonical short-loop SPEC
// benchmark: tiny force-accumulation inner loops with a handful of stores,
// repeated over particle pairs. Speculative unrolling lengthens these
// regions dramatically.
func buildNamd(scale int) *prog.Program {
	return singleMain("508.namd_r", func(f *prog.FuncBuilder, r *rng) {
		// Many invocations of a very short loop (2 stores, small body).
		for k := 0; k < 6; k++ {
			loopKernel(f, kernelSpec{
				iters: int64(scale) * 2500, bodyStores: 2, bodyALU: 4, bodyLoads: 2,
				stride: 16, span: 1 << 14, liveRegs: 3, invariant: k%2 == 0,
			}, heapAt(5+k%2), r)
		}
	})
}

// buildLBM: lattice-Boltzmann — streaming stencil sweeps: dense sequential
// stores with modest computation, large working set.
func buildLBM(scale int) *prog.Program {
	return singleMain("519.lbm_r", func(f *prog.FuncBuilder, r *rng) {
		for k := 0; k < 2; k++ {
			loopKernel(f, kernelSpec{
				iters: int64(scale) * 6000, bodyStores: 3, bodyALU: 12, bodyLoads: 3,
				stride: 24, span: 1 << 21, liveRegs: 2,
			}, heapAt(7), r)
		}
	})
}
