package workload

import (
	"reflect"
	"testing"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/prog"
)

func TestContentionRegistry(t *testing.T) {
	cs := Contention()
	if len(cs) != 9 {
		t.Fatalf("contention registry = %d benchmarks, want 9", len(cs))
	}
	wantCores := map[string]int{
		"mt-counter-c2": 2, "mt-counter-c4": 4, "mt-counter-c8": 8,
		"mt-queue-c2": 2, "mt-queue-c4": 4, "mt-queue-c8": 8,
		"mt-lockrec-c2": 2, "mt-lockrec-c4": 4, "mt-lockrec-c8": 8,
	}
	for _, b := range cs {
		if wantCores[b.Name] != b.Threads {
			t.Errorf("%s: threads = %d, want %d", b.Name, b.Threads, wantCores[b.Name])
		}
		delete(wantCores, b.Name)
	}
	for name := range wantCores {
		t.Errorf("missing contention benchmark %s", name)
	}
	// Contention workloads must not leak into the paper figure set.
	for _, b := range All() {
		if b.Suite == SuiteContention {
			t.Errorf("contention %s leaked into All()", b.Name)
		}
	}
	// But ByName finds them (fault plans reference them by name).
	if _, err := ByName("mt-queue-c4"); err != nil {
		t.Error(err)
	}
}

func TestContentionBuildAndVerify(t *testing.T) {
	for _, b := range Contention() {
		p := b.Build(1)
		if err := p.Verify(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if p.NumThreads() != b.Threads {
			t.Errorf("%s: program threads = %d, registry says %d", b.Name, p.NumThreads(), b.Threads)
		}
		if _, err := compile.Compile(p, compile.DefaultOptions()); err != nil {
			t.Errorf("%s: compile: %v", b.Name, err)
		}
	}
}

// checkContentionInvariants asserts the workloads' own conservation laws on
// a final memory image. Unlike the partition-parallel Splash stand-ins, the
// contention workloads' per-thread outputs are interleaving-dependent (a
// fetch-and-add's old value depends on who got there first), so baseline and
// Capri runs cannot be compared output-for-output; the invariants below hold
// under every legal interleaving.
func checkContentionInvariants(t *testing.T, name string, scale int, snap map[uint64]uint64) {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if b.Check == nil {
		t.Fatalf("%s registers no invariant checker", name)
	}
	if err := b.Check(scale, snap); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

// TestContentionInvariants runs every contention workload on the baseline
// machine and on the Capri-compiled machine and checks the conservation
// invariants on both final images, plus per-machine output determinism
// (two identical runs must produce identical output tapes).
func TestContentionInvariants(t *testing.T) {
	for _, b := range Contention() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			src := b.Build(1)
			cfgB := machine.DefaultConfig()
			cfgB.Capri = false
			cfgB.L2Size = 512 << 10
			cfgB.DRAMSize = 4 << 20
			run := func(p *machine.Machine) *machine.Machine {
				if err := p.Run(); err != nil {
					t.Fatal(err)
				}
				return p
			}
			newM := func(cfg machine.Config, pg *prog.Program) *machine.Machine {
				m, err := machine.New(pg, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			m1 := run(newM(cfgB, src))
			m2 := run(newM(cfgB, src))
			checkContentionInvariants(t, b.Name, 1, m1.MemSnapshot())

			opts := compile.DefaultOptions()
			res, err := compile.Compile(src, opts)
			if err != nil {
				t.Fatal(err)
			}
			cfgC := cfgB
			cfgC.Capri = true
			cfgC.Threshold = opts.Threshold
			mc1 := run(newM(cfgC, res.Program))
			mc2 := run(newM(cfgC, res.Program))
			checkContentionInvariants(t, b.Name, 1, mc1.MemSnapshot())

			for th := 0; th < src.NumThreads(); th++ {
				if len(m1.Output(th)) == 0 {
					t.Fatalf("thread %d produced no output", th)
				}
				if !reflect.DeepEqual(m1.Output(th), m2.Output(th)) {
					t.Fatalf("baseline thread %d output nondeterministic", th)
				}
				if !reflect.DeepEqual(mc1.Output(th), mc2.Output(th)) {
					t.Fatalf("capri thread %d output nondeterministic", th)
				}
			}
		})
	}
}
