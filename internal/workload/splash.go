package workload

import (
	"capri/internal/isa"
	"capri/internal/machine"
	"capri/internal/prog"
)

// Splash-3 stand-ins: multi-threaded scientific kernels (paper: 9.1% geomean
// overhead at threshold 256). Each thread works on a disjoint partition;
// shared reductions go through a spin lock or atomics, which the compiler
// turns into mandatory region boundaries — the multi-threaded correctness
// lever of §4.1.

const splashThreads = 4

func init() {
	register(Benchmark{Name: "barnes", Suite: SuiteSplash, Threads: splashThreads,
		Build: splashBuilder("barnes", kernelSpec{bodyStores: 2, bodyALU: 14, bodyLoads: 4, stride: 48, span: 1 << 17, random: true, liveRegs: 4}, 2600, 24)})
	register(Benchmark{Name: "fmm", Suite: SuiteSplash, Threads: splashThreads,
		Build: splashBuilder("fmm", kernelSpec{bodyStores: 2, bodyALU: 18, bodyLoads: 3, stride: 32, span: 1 << 16, liveRegs: 5}, 2400, 32)})
	register(Benchmark{Name: "ocean", Suite: SuiteSplash, Threads: splashThreads,
		Build: splashBuilder("ocean", kernelSpec{bodyStores: 3, bodyALU: 10, bodyLoads: 4, stride: 24, span: 1 << 19, liveRegs: 3}, 2800, 40)})
	register(Benchmark{Name: "radiosity", Suite: SuiteSplash, Threads: splashThreads,
		Build: splashBuilder("radiosity", kernelSpec{bodyStores: 2, bodyALU: 12, bodyLoads: 3, stride: 40, span: 1 << 17, random: true, liveRegs: 4}, 2400, 16)})
	register(Benchmark{Name: "raytrace", Suite: SuiteSplash, Threads: splashThreads,
		Build: splashBuilder("raytrace", kernelSpec{bodyStores: 1, bodyALU: 20, bodyLoads: 4, stride: 8, span: 1 << 18, random: true, liveRegs: 5}, 2600, 8)})
	register(Benchmark{Name: "volrend", Suite: SuiteSplash, Threads: splashThreads, ShortLoops: true,
		Build: splashBuilder("volrend", kernelSpec{bodyStores: 1, bodyALU: 4, bodyLoads: 2, stride: 8, span: 1 << 15, liveRegs: 2}, 6000, 8)})
	register(Benchmark{Name: "water-nsquared", Suite: SuiteSplash, Threads: splashThreads, ShortLoops: true,
		Build: splashBuilder("water-nsquared", kernelSpec{bodyStores: 2, bodyALU: 5, bodyLoads: 2, stride: 16, span: 1 << 14, liveRegs: 3}, 4200, 8)})
	register(Benchmark{Name: "water-spatial", Suite: SuiteSplash, Threads: splashThreads, ShortLoops: true,
		Build: splashBuilder("water-spatial", kernelSpec{bodyStores: 2, bodyALU: 6, bodyLoads: 2, stride: 16, span: 1 << 15, liveRegs: 3}, 3800, 8)})
	register(Benchmark{Name: "radix", Suite: SuiteSplash, Threads: splashThreads,
		Build: splashBuilder("radix", kernelSpec{bodyStores: 2, bodyALU: 6, bodyLoads: 2, stride: 8, span: 1 << 18, random: true, liveRegs: 2}, 3400, 48)})
	// Compute-dense members: long store-free arithmetic runs between writes
	// (butterfly / elimination inner loops), the shape where cores' pending
	// windows stay provably independent for tens of cycles at a stretch — the
	// conflict-aware scheduler's best case, mirroring the real suite's
	// FFT/LU kernels where flops dominate memory traffic.
	register(Benchmark{Name: "fft", Suite: SuiteSplash, Threads: splashThreads,
		Build: splashBuilder("fft", kernelSpec{bodyStores: 1, bodyALU: 96, bodyLoads: 2, stride: 16, span: 1 << 16, liveRegs: 4}, 800, 8)})
	register(Benchmark{Name: "lu", Suite: SuiteSplash, Threads: splashThreads,
		Build: splashBuilder("lu", kernelSpec{bodyStores: 1, bodyALU: 72, bodyLoads: 2, stride: 8, span: 1 << 15, liveRegs: 6}, 1000, 16)})
}

// splashBuilder returns a Build function: each of splashThreads workers runs
// the kernel over a private partition, taking a shared lock every lockEvery
// outer chunks to fold its partial accumulator into a global sum (the
// synchronized reduction that makes the workload DRF).
func splashBuilder(name string, spec kernelSpec, itersPerThread int64, lockEvery int) func(scale int) *prog.Program {
	return func(scale int) *prog.Program {
		bd := prog.NewBuilder(name)
		r := newRNG(hash64(name))
		var workers []*prog.FuncBuilder
		const chunks = 8

		for t := 0; t < splashThreads; t++ {
			f := bd.Func(name + "-worker")
			f.Block()
			f.MovI(isa.SP, int64(machine.StackBase(t)))
			f.MovI(rAcc, 0)
			f.MovI(rLock, int64(heapAt(20)))

			s := spec
			s.iters = int64(scale) * itersPerThread / chunks
			base := heapAt(21 + t) // disjoint per-thread partitions
			for ch := 0; ch < chunks; ch++ {
				loopKernel(f, s, base, r)
				if lockEvery > 0 && ch%max(1, lockEvery/chunks+1) == 0 {
					// Synchronized reduction into the shared sum.
					f.Lock(rLock, 0)
					f.Load(rTmp, rLock, 8)
					f.Add(rTmp, rTmp, rAcc)
					f.Store(rLock, 8, rTmp)
					f.Unlock(rLock, 0)
				}
			}
			// Final atomic fold.
			f.AtomicAdd(rTmp, rLock, 16, rAcc)
			f.Emit(rAcc)
			f.Halt()
			workers = append(workers, f)
		}
		bd.SetThreadEntries(workers...)
		return bd.Program()
	}
}
