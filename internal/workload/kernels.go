package workload

import (
	"capri/internal/isa"
	"capri/internal/machine"
	"capri/internal/prog"
)

// Register conventions shared by the kernel emitters. Loop state lives in
// high registers so argument registers stay free for calls.
const (
	rI    = isa.Reg(8)  // induction variable
	rN    = isa.Reg(9)  // trip count
	rBase = isa.Reg(10) // data base pointer
	rVal  = isa.Reg(11) // working value
	rAcc  = isa.Reg(12) // accumulator
	rTmp  = isa.Reg(13)
	rTmp2 = isa.Reg(14)
	rMask = isa.Reg(15) // address mask for pseudo-random access
	rPtr  = isa.Reg(16) // pointer-chase cursor
	rLock = isa.Reg(17) // lock base
	rScr  = isa.Reg(18) // scratch start; kernels may use rScr..rScr+7
)

// kernelSpec shapes one loop nest emitted by loopKernel.
type kernelSpec struct {
	// iters is the dynamic trip count (unknown to the compiler: the bound is
	// loaded from memory so every loop is a speculative-unrolling candidate).
	iters int64
	// bodyStores is the number of store instructions per iteration.
	bodyStores int
	// bodyALU is the number of extra ALU instructions per iteration (between
	// stores): higher values lower store density.
	bodyALU int
	// bodyLoads adds load instructions per iteration.
	bodyLoads int
	// stride is the byte stride between iterations' store addresses.
	stride int64
	// span is the working-set size in bytes the addresses wrap over.
	span int64
	// random makes the access pattern pseudo-random within span.
	random bool
	// liveRegs adds this many extra registers carried live around the loop
	// and *updated* each iteration (checkpoint pressure at every region
	// boundary, like the paper's per-iteration live-out sets).
	liveRegs int
	// invariant adds a loop-invariant multiply whose value is stored (LICM
	// material).
	invariant bool
}

// loopKernel emits one loop into f reading its trip count from mem[bound]
// (so the compiler cannot know it) and writing within [base, base+span).
// It returns leaving the current block at the loop exit, so kernels can be
// chained. seed varies the generated constants.
func loopKernel(f *prog.FuncBuilder, spec kernelSpec, base uint64, r *rng) {
	pre := f.Cur()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	f.SetBlock(pre)
	f.MovI(rI, 0)
	f.MovI(rN, spec.iters)
	f.MovI(rBase, int64(base))
	f.MovI(rVal, r.i64(1, 1<<20))
	if spec.span > 0 {
		f.MovI(rMask, spec.span/8-1) // word-count mask (span must be pow2*8)
	}
	// Extra live registers: defined before the loop, consumed after it.
	for k := 0; k < spec.liveRegs && k < 8; k++ {
		f.MovI(rScr+isa.Reg(k), r.i64(1, 999))
	}
	f.Br(header)

	f.SetBlock(header)
	f.BrIf(rI, isa.CondGE, rN, exit, body)

	f.SetBlock(body)
	if spec.invariant {
		// Loop-invariant computation stored each iteration (LICM material
		// for both the value's checkpoint and — in a smarter compiler — the
		// multiply itself).
		f.MulI(rTmp2, rVal, 7)
		f.Store(rBase, int64(spec.span)+64, rTmp2)
	}
	alusPerStore := 0
	if spec.bodyStores > 0 {
		alusPerStore = spec.bodyALU / max(1, spec.bodyStores)
	}
	loads := spec.bodyLoads
	for s := 0; s < spec.bodyStores; s++ {
		// Address computation.
		if spec.random {
			// addr = base + 8 * ((i*2654435761 + s*k) & mask)
			f.MulI(rTmp, rI, 2654435761)
			f.AddI(rTmp, rTmp, r.i64(0, 1<<16))
			f.Op3(isa.OpAnd, rTmp, rTmp, rMask)
			f.OpI(isa.OpShlI, rTmp, rTmp, 3)
			f.Add(rTmp, rTmp, rBase)
		} else {
			// addr = base + (i*stride + s*8) mod span
			f.MulI(rTmp, rI, spec.stride)
			if spec.span > 0 {
				f.OpI(isa.OpShrI, rTmp2, rTmp, 3)
				f.Op3(isa.OpAnd, rTmp2, rTmp2, rMask)
				f.OpI(isa.OpShlI, rTmp, rTmp2, 3)
			}
			f.Add(rTmp, rTmp, rBase)
		}
		if loads > 0 {
			f.Load(rTmp2, rTmp, 0)
			f.Add(rAcc, rAcc, rTmp2)
			loads--
		}
		f.Add(rVal, rVal, rI)
		f.Store(rTmp, int64(8*s), rVal)
		for a := 0; a < alusPerStore; a++ {
			f.OpI(isa.OpAddI, rAcc, rAcc, 3)
		}
	}
	for ; loads > 0; loads-- {
		f.Load(rTmp2, rBase, int64(8*loads))
		f.Add(rAcc, rAcc, rTmp2)
	}
	// Remaining ALU filler.
	rest := spec.bodyALU - alusPerStore*spec.bodyStores
	for a := 0; a < rest; a++ {
		f.Op3(isa.OpXor, rAcc, rAcc, rVal)
	}
	// Update the carried registers so each region must checkpoint them.
	for k := 0; k < spec.liveRegs && k < 8; k++ {
		f.Add(rScr+isa.Reg(k), rScr+isa.Reg(k), rI)
	}
	f.AddI(rI, rI, 1)
	f.Br(header)

	f.SetBlock(exit)
	// Consume the extra live registers so they stay live across the loop.
	for k := 0; k < spec.liveRegs && k < 8; k++ {
		f.Add(rAcc, rAcc, rScr+isa.Reg(k))
	}
}

// chaseKernel emits a pointer-chase over a ring of nodes laid out at base
// (node = [next, payload]): one load-dependent step per iteration plus a
// store every storeEvery iterations — the mcf-like memory-bound,
// store-sparse pattern. storeEvery must be a power of two.
func chaseKernel(f *prog.FuncBuilder, iters, nodes int64, base uint64, storeEvery int64) {
	pre := f.Cur()
	init := f.Block()
	initBody := f.Block()
	chasePre := f.Block()
	header := f.Block()
	step := f.Block()
	storeBlk := f.Block()
	latch := f.Block()
	exit := f.Block()

	// Build the ring: node k at base + 16k points to (k*7+1) mod nodes.
	f.SetBlock(pre)
	f.MovI(rI, 0)
	f.MovI(rN, nodes)
	f.MovI(rBase, int64(base))
	f.Br(init)
	f.SetBlock(init)
	f.BrIf(rI, isa.CondGE, rN, chasePre, initBody)
	f.SetBlock(initBody)
	f.MulI(rTmp, rI, 7)
	f.AddI(rTmp, rTmp, 1)
	f.Op3(isa.OpRem, rTmp, rTmp, rN)
	f.OpI(isa.OpShlI, rTmp, rTmp, 4)
	f.Add(rTmp, rTmp, rBase) // next pointer value
	f.MulI(rTmp2, rI, 16)
	f.Add(rTmp2, rTmp2, rBase)
	f.Store(rTmp2, 0, rTmp) // node.next
	f.Store(rTmp2, 8, rI)   // node.payload
	f.AddI(rI, rI, 1)
	f.Br(init)

	// Chase.
	f.SetBlock(chasePre)
	f.MovI(rI, 0)
	f.MovI(rN, iters)
	f.Mov(rPtr, rBase)
	f.MovI(rMask, storeEvery-1)
	f.MovI(rTmp2, 0)
	f.Br(header)

	f.SetBlock(header)
	f.BrIf(rI, isa.CondGE, rN, exit, step)

	f.SetBlock(step)
	f.Load(rTmp, rPtr, 8) // payload
	f.Add(rAcc, rAcc, rTmp)
	f.Load(rPtr, rPtr, 0) // next
	// Arc evaluation: reduced-cost arithmetic between chase steps.
	for a := 0; a < 26; a++ {
		f.OpI(isa.OpAddI, rVal, rVal, int64(2*a+1))
		f.Op3(isa.OpXor, rAcc, rAcc, rVal)
	}
	f.Op3(isa.OpAnd, rTmp, rI, rMask)
	f.BrIf(rTmp, isa.CondEQ, rTmp2, storeBlk, latch)

	f.SetBlock(storeBlk)
	f.Store(rPtr, 8, rAcc) // update payload occasionally
	f.Br(latch)

	f.SetBlock(latch)
	f.AddI(rI, rI, 1)
	f.Br(header)

	f.SetBlock(exit)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// heapAt returns a heap address with the given megabyte offset.
func heapAt(mb int) uint64 { return machine.HeapBase + uint64(mb)<<20 }

// emitBarrier emits a sense-reversing barrier built from recoverable
// primitives (fetch-and-add plus a spin on a generation word), the way real
// Splash-3 codes synchronize. The machine's OpBarrier is deliberately not
// used: barrier state must live in persistent memory so recovery rebuilds it
// (see exec.go's OpBarrier comment). Layout at base: [count, generation].
//
// Registers rTmp/rTmp2/rScr+7 are clobbered.
func emitBarrier(f *prog.FuncBuilder, base uint64, nthreads int64) {
	const rGen = rScr + 7 // holds the generation observed at entry

	pre := f.Cur()
	last := f.Block()
	spinHdr := f.Block()
	spinChk := f.Block()
	exit := f.Block()

	f.SetBlock(pre)
	f.MovI(rTmp2, int64(base))
	f.Load(rGen, rTmp2, 8) // current generation
	f.MovI(rTmp, 1)
	f.AtomicAdd(rTmp, rTmp2, 0, rTmp) // old count -> rTmp
	f.MovI(rScr+6, nthreads-1)
	f.BrIf(rTmp, isa.CondEQ, rScr+6, last, spinHdr)

	// Last arriver: reset the count, bump the generation.
	f.SetBlock(last)
	f.MovI(rTmp, 0)
	f.Store(rTmp2, 0, rTmp)
	f.MovI(rTmp, 1)
	f.AtomicAdd(rTmp, rTmp2, 8, rTmp)
	f.Br(exit)

	// Waiters: spin until the generation changes.
	f.SetBlock(spinHdr)
	f.Load(rTmp, rTmp2, 8)
	f.BrIf(rTmp, isa.CondNE, rGen, exit, spinChk)
	f.SetBlock(spinChk)
	f.Br(spinHdr)

	f.SetBlock(exit)
}
