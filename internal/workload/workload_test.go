package workload

import (
	"testing"

	"capri/internal/compile"
	"capri/internal/machine"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Fatalf("registry has %d benchmarks, want 21", len(all))
	}
	if len(BySuite(SuiteSPEC)) != 5 {
		t.Errorf("SPEC count = %d", len(BySuite(SuiteSPEC)))
	}
	if len(BySuite(SuiteSTAMP)) != 5 {
		t.Errorf("STAMP count = %d", len(BySuite(SuiteSTAMP)))
	}
	if len(BySuite(SuiteSplash)) != 11 {
		t.Errorf("Splash count = %d", len(BySuite(SuiteSplash)))
	}
	// Plotting order: SPEC first, then STAMP, then Splash.
	order := map[Suite]int{SuiteSPEC: 0, SuiteSTAMP: 1, SuiteSplash: 2}
	prev := -1
	for _, b := range all {
		if order[b.Suite] < prev {
			t.Errorf("benchmark %s out of suite order", b.Name)
		}
		prev = order[b.Suite]
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("ssca2")
	if err != nil || b.Name != "ssca2" || !b.ShortLoops {
		t.Errorf("ByName(ssca2) = %+v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if len(Names()) != 21 {
		t.Errorf("Names() = %d", len(Names()))
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	c := newRNG(43)
	if newRNG(42).next() == c.next() {
		t.Error("different seeds produced identical first values")
	}
	r := newRNG(7)
	for i := 0; i < 100; i++ {
		if v := r.intn(10); v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
		if v := r.i64(5, 9); v < 5 || v >= 9 {
			t.Fatalf("i64 out of range: %d", v)
		}
	}
}

func TestAllBenchmarksBuildAndVerify(t *testing.T) {
	for _, b := range All() {
		p := b.Build(1)
		if err := p.Verify(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if p.NumThreads() != b.Threads {
			t.Errorf("%s: program threads = %d, registry says %d", b.Name, p.NumThreads(), b.Threads)
		}
	}
}

func TestAllBenchmarksCompile(t *testing.T) {
	for _, b := range All() {
		p := b.Build(1)
		for _, th := range []int{32, 256} {
			opts := compile.DefaultOptions()
			opts.Threshold = th
			if _, err := compile.Compile(p, opts); err != nil {
				t.Errorf("%s @%d: %v", b.Name, th, err)
			}
		}
	}
}

// TestAllBenchmarksRunDeterministically runs every benchmark (small scale)
// on the baseline machine twice and checks identical outputs, then runs the
// Capri-compiled version and checks functional equivalence with baseline.
func TestAllBenchmarksRunDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite execution")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			src := b.Build(1)
			cfgB := machine.DefaultConfig()
			cfgB.Capri = false
			cfgB.L2Size = 512 << 10
			cfgB.DRAMSize = 4 << 20
			run := func() *machine.Machine {
				m, err := machine.New(src, cfgB)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Run(); err != nil {
					t.Fatal(err)
				}
				return m
			}
			m1, m2 := run(), run()
			for th := 0; th < src.NumThreads(); th++ {
				o1, o2 := m1.Output(th), m2.Output(th)
				if len(o1) == 0 {
					t.Fatalf("thread %d produced no output", th)
				}
				for i := range o1 {
					if o1[i] != o2[i] {
						t.Fatalf("thread %d nondeterministic output", th)
					}
				}
			}

			// Capri functional equivalence.
			opts := compile.DefaultOptions()
			res, err := compile.Compile(src, opts)
			if err != nil {
				t.Fatal(err)
			}
			cfgC := cfgB
			cfgC.Capri = true
			cfgC.Threshold = opts.Threshold
			mc, err := machine.New(res.Program, cfgC)
			if err != nil {
				t.Fatal(err)
			}
			if err := mc.Run(); err != nil {
				t.Fatal(err)
			}
			for th := 0; th < src.NumThreads(); th++ {
				o1, oc := m1.Output(th), mc.Output(th)
				if len(o1) != len(oc) {
					t.Fatalf("thread %d output len: baseline %d capri %d", th, len(o1), len(oc))
				}
				for i := range o1 {
					if o1[i] != oc[i] {
						t.Fatalf("thread %d output[%d]: baseline %d capri %d", th, i, o1[i], oc[i])
					}
				}
			}
		})
	}
}

func TestMicroRegistrySeparate(t *testing.T) {
	ms := Micros()
	if len(ms) < 4 {
		t.Fatalf("micros = %d", len(ms))
	}
	// Micros must not leak into the figure set.
	for _, b := range All() {
		if b.Suite == SuiteMicro {
			t.Errorf("micro %s leaked into All()", b.Name)
		}
	}
	// But ByName finds them.
	if _, err := ByName("seqwrite"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("storm"); err != nil {
		t.Error(err)
	}
}

func TestMicrosBuildAndRun(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Capri = false
	cfg.L2Size = 512 << 10
	cfg.DRAMSize = 4 << 20
	for _, b := range Micros() {
		p := b.Build(1)
		if err := p.Verify(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		m, err := machine.New(p, cfg)
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if err := m.Run(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestMicrosCompile(t *testing.T) {
	for _, b := range Micros() {
		if _, err := compile.Compile(b.Build(1), compile.DefaultOptions()); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}
