package workload

import (
	"capri/internal/prog"
)

// Micro-workloads: single-behaviour kernels for studying one mechanism at a
// time (caprisim -bench seqwrite, etc.). They are registered separately from
// the 21 paper stand-ins so the figure tables remain exactly the paper's
// benchmark set.

// SuiteMicro labels the microbenchmarks.
const SuiteMicro Suite = "micro"

var micros []Benchmark

func registerMicro(b Benchmark) { micros = append(micros, b) }

// Micros returns the microbenchmark set.
func Micros() []Benchmark {
	out := make([]Benchmark, len(micros))
	copy(out, micros)
	return out
}

func init() {
	registerMicro(Benchmark{Name: "seqwrite", Suite: SuiteMicro, Threads: 1,
		Build: func(scale int) *prog.Program {
			return singleMain("seqwrite", func(f *prog.FuncBuilder, r *rng) {
				loopKernel(f, kernelSpec{
					iters: int64(scale) * 20000, bodyStores: 1, bodyALU: 1,
					stride: 8, span: 1 << 20, liveRegs: 0,
				}, heapAt(30), r)
			})
		}})
	registerMicro(Benchmark{Name: "randwrite", Suite: SuiteMicro, Threads: 1,
		Build: func(scale int) *prog.Program {
			return singleMain("randwrite", func(f *prog.FuncBuilder, r *rng) {
				loopKernel(f, kernelSpec{
					iters: int64(scale) * 20000, bodyStores: 1, bodyALU: 1,
					span: 1 << 20, random: true, liveRegs: 0,
				}, heapAt(31), r)
			})
		}})
	registerMicro(Benchmark{Name: "hotrmw", Suite: SuiteMicro, Threads: 1,
		Build: func(scale int) *prog.Program {
			return singleMain("hotrmw", func(f *prog.FuncBuilder, r *rng) {
				// Read-modify-write of a single hot line: maximal merging.
				loopKernel(f, kernelSpec{
					iters: int64(scale) * 20000, bodyStores: 2, bodyALU: 2, bodyLoads: 1,
					stride: 0, span: 64, liveRegs: 0,
				}, heapAt(32), r)
			})
		}})
	registerMicro(Benchmark{Name: "chase", Suite: SuiteMicro, Threads: 1,
		Build: func(scale int) *prog.Program {
			return singleMain("chase", func(f *prog.FuncBuilder, r *rng) {
				chaseKernel(f, int64(scale)*20000, 8192, heapAt(33), 32)
			})
		}})
	registerMicro(Benchmark{Name: "storm", Suite: SuiteMicro, Threads: 4,
		Build: func(scale int) *prog.Program {
			// Four threads hammering disjoint windows: the proxy-bandwidth
			// stress case.
			return splashBuilder("storm", kernelSpec{
				bodyStores: 4, bodyALU: 2, bodyLoads: 0,
				stride: 8, span: 1 << 18, liveRegs: 1,
			}, 5000, 0)(scale)
		}})
}

// ByName returns the named benchmark from either registry.
// (Shadows nothing: the original ByName is extended here.)
func byNameAll(name string) (Benchmark, bool) {
	for _, b := range registry {
		if b.Name == name {
			return b, true
		}
	}
	for _, b := range micros {
		if b.Name == name {
			return b, true
		}
	}
	for _, b := range contention {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
