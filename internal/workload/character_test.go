package workload

import (
	"testing"

	"capri/internal/analysis"
	"capri/internal/compile"
	"capri/internal/isa"
	"capri/internal/machine"
)

// runBaseline executes a benchmark on the volatile machine and returns its
// stats (the workload's intrinsic character, before Capri).
func runBaseline(t *testing.T, b Benchmark) machine.Stats {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Capri = false
	cfg.L2Size = 2 << 20
	cfg.DRAMSize = 16 << 20
	m, err := machine.New(b.Build(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m.Stats()
}

// storeDensity returns stores per retired instruction.
func storeDensity(s machine.Stats) float64 {
	return float64(s.Stores) / float64(s.Instret)
}

func TestSuiteStoreDensityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload execution")
	}
	// The calibration premise: STAMP stand-ins are more store-dense than
	// SPEC stand-ins on (geometric) average — that is what makes STAMP the
	// highest-overhead suite.
	avg := func(suite Suite) float64 {
		var sum float64
		bs := BySuite(suite)
		for _, b := range bs {
			sum += storeDensity(runBaseline(t, b))
		}
		return sum / float64(len(bs))
	}
	spec := avg(SuiteSPEC)
	stamp := avg(SuiteSTAMP)
	if stamp <= spec {
		t.Errorf("STAMP density %.3f not above SPEC %.3f", stamp, spec)
	}
}

func TestShortLoopFlagsMatchStructure(t *testing.T) {
	// Benchmarks flagged ShortLoops must actually contain short loops: the
	// smallest loop body (in instructions) among their loops should be small.
	for _, b := range All() {
		p := b.Build(1)
		minBody := 1 << 30
		for _, f := range p.Funcs {
			cfg := analysis.BuildCFG(f)
			for _, l := range cfg.Loops() {
				n := 0
				for id := range l.Blocks {
					n += len(f.Blocks[id].Insts)
				}
				if n < minBody {
					minBody = n
				}
			}
		}
		if b.ShortLoops && minBody > 40 {
			t.Errorf("%s flagged ShortLoops but smallest loop is %d insts", b.Name, minBody)
		}
	}
}

func TestMultithreadedSuitesUseLocks(t *testing.T) {
	// Splash-3 stand-ins must contain sync instructions (the region-boundary
	// lever for multi-threaded correctness, §4.1).
	for _, b := range BySuite(SuiteSplash) {
		p := b.Build(1)
		syncs := 0
		for _, f := range p.Funcs {
			for _, blk := range f.Blocks {
				for i := range blk.Insts {
					if blk.Insts[i].IsMandatoryBoundary() {
						syncs++
					}
				}
			}
		}
		if syncs == 0 {
			t.Errorf("%s has no sync instructions", b.Name)
		}
	}
	// SPEC stand-ins are single-threaded and lock-free.
	for _, b := range BySuite(SuiteSPEC) {
		p := b.Build(1)
		for _, f := range p.Funcs {
			for _, blk := range f.Blocks {
				for i := range blk.Insts {
					op := blk.Insts[i].Op
					if op == isa.OpLock || op == isa.OpBarrier {
						t.Errorf("%s (single-threaded) uses %s", b.Name, op)
					}
				}
			}
		}
	}
}

func TestScaleGrowsWork(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload execution")
	}
	b, _ := ByName("ssca2")
	cfg := machine.DefaultConfig()
	cfg.Capri = false
	cfg.L2Size = 2 << 20
	cfg.DRAMSize = 16 << 20
	run := func(scale int) uint64 {
		m, err := machine.New(b.Build(scale), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Instret()
	}
	n1, n2 := run(1), run(2)
	if n2 < n1*3/2 {
		t.Errorf("scale 2 ran %d instructions vs %d at scale 1 — scaling broken", n2, n1)
	}
}

func TestCallHeavyBenchmarksHaveCalls(t *testing.T) {
	for _, name := range []string{"531.deepsjeng_r", "vacation"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := b.Build(1)
		calls := 0
		for _, f := range p.Funcs {
			for _, blk := range f.Blocks {
				for i := range blk.Insts {
					if blk.Insts[i].Op == isa.OpCall {
						calls++
					}
				}
			}
		}
		if calls == 0 {
			t.Errorf("%s is supposed to be call-heavy but has no calls", name)
		}
	}
}

func TestUnrollFiresOnShortLoopBenchmarks(t *testing.T) {
	// ShortLoops benchmarks must give speculative unrolling material.
	for _, b := range All() {
		if !b.ShortLoops {
			continue
		}
		res, err := compile.Compile(b.Build(1), compile.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.LoopsUnrolled == 0 {
			t.Errorf("%s: no loops unrolled despite ShortLoops flag", b.Name)
		}
	}
}

func TestLICMMaterialExists(t *testing.T) {
	// At least one benchmark must exercise the LICM pass (namd carries
	// loop-invariant computations by construction).
	total := 0
	for _, b := range All() {
		res, err := compile.Compile(b.Build(1), compile.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		total += res.Stats.CkptsHoisted
	}
	if total == 0 {
		t.Error("no benchmark exercises checkpoint LICM")
	}
}
