package workload

import (
	"fmt"

	"capri/internal/isa"
	"capri/internal/machine"
	"capri/internal/prog"
)

// Contention workloads: multi-threaded kernels that deliberately collide on
// shared persistent state, so fences and atomics form *cross-core* region
// boundaries (the paper's §4.1 multi-core correctness lever, ROADMAP item 3).
// Three families, each at 2/4/8-core geometries with a contention-skew knob:
//
//   - mt-counter-cN: a fetch-and-add counter array packed into a single 64-byte
//     NVM line (atomic-vs-atomic persist order on one line), plus a private
//     store journal fenced every few iterations (fence-vs-remote-store order).
//   - mt-queue-cN: an MPMC persistent queue. Producers claim ring slots with a
//     ticket fetch-and-add, write the payload with a plain store, and publish
//     with an atomic ready increment — the recoverable publication idiom: the
//     payload commits atomically with its ready flag, so a consumer can never
//     observe (and persist) a value whose producing region could still be
//     rolled back. Consumers claim slots with a head-ticket fetch-and-add and
//     spin on the committed ready word.
//   - mt-lockrec-cN: lock-protected multi-word record updates maintaining the
//     invariant f3 == f1 + f2. The three stores sit between Lock and Unlock,
//     so the unlock commits them atomically — recovery can never expose a
//     half-updated record.
//
// All shared communication goes through sync operations (atomics, locks),
// which the machine commits atomically with their own region (see
// exec.go doSyncStore): a cross-core reader only ever observes committed —
// hence durable — values, the detectability contract of Ben-David et al.

// SuiteContention labels the cross-core contention workloads. They are
// registered separately from the 21 paper stand-ins so the figure tables
// remain exactly the paper's benchmark set.
const SuiteContention Suite = "contention"

var contention []Benchmark

func registerContention(b Benchmark) { contention = append(contention, b) }

// Contention returns the cross-core contention workload set.
func Contention() []Benchmark {
	out := make([]Benchmark, len(contention))
	copy(out, contention)
	return out
}

// contentionSpec shapes one contention workload instance.
type contentionSpec struct {
	// cores is the number of contending hardware threads.
	cores int
	// skew is the number of AND-folds applied to the hashed slot index:
	// each fold ANDs in another uniform bit extract, biasing the choice
	// toward low-numbered slots (skew 0 is uniform; higher is hotter).
	skew int
}

// contentionGeometries are the benchmark geometries the families register:
// core count plus a skew that grows with the geometry, so wider machines
// also contend harder per slot.
var contentionGeometries = []contentionSpec{
	{cores: 2, skew: 0},
	{cores: 4, skew: 1},
	{cores: 8, skew: 2},
}

// Shared memory layout (per program; programs never coexist):
//
//	heapAt(39)   start/phase barrier [count, generation]
//	heapAt(40)   family-specific shared state (counter line / tickets / records)
//	heapAt(41)   family-specific shared state (total / ring base)
//	heapAt(42)   global result accumulator
//	heapAt(43+t) per-thread private journal partitions
const (
	ctnBarrierMB = 39
	ctnSharedMB  = 40
	ctnShared2MB = 41
	ctnTotalMB   = 42
	ctnPrivMB    = 43
)

// Per-thread operation counts at scale 1 (the invariants below conserve
// them across every legal interleaving).
const (
	ctnCounterIters = 192
	ctnQueueItems   = 48
	ctnLockIters    = 128
)

func init() {
	for _, g := range contentionGeometries {
		g := g
		registerContention(Benchmark{
			Name: ctnName("mt-counter", g.cores), Suite: SuiteContention, Threads: g.cores,
			Build: func(scale int) *prog.Program { return buildMTCounter(g, scale) },
			Check: checkMTCounter(g.cores),
		})
		registerContention(Benchmark{
			Name: ctnName("mt-queue", g.cores), Suite: SuiteContention, Threads: g.cores,
			Build: func(scale int) *prog.Program { return buildMTQueue(g, scale) },
			Check: checkMTQueue(g.cores),
		})
		registerContention(Benchmark{
			Name: ctnName("mt-lockrec", g.cores), Suite: SuiteContention, Threads: g.cores,
			Build: func(scale int) *prog.Program { return buildMTLockRec(g, scale) },
			Check: checkMTLockRec(g.cores),
		})
	}
}

// checkMTCounter: the eight slots of the shared counter line must sum to the
// total number of fetch-and-adds issued, whichever slots the skewed hash hit.
func checkMTCounter(cores int) func(int, map[uint64]uint64) error {
	return func(scale int, snap map[uint64]uint64) error {
		var sum uint64
		for s := uint64(0); s < 8; s++ {
			sum += snap[heapAt(ctnSharedMB)+8*s]
		}
		if want := uint64(cores) * ctnCounterIters * uint64(scale); sum != want {
			return fmt.Errorf("counter line sums to %d, want %d", sum, want)
		}
		return nil
	}
}

// checkMTQueue: both tickets reach exactly the item count (everything
// enqueued was dequeued), and the consumed total equals the sum published
// into the ring — whoever produced or consumed each slot.
func checkMTQueue(cores int) func(int, map[uint64]uint64) error {
	return func(scale int, snap map[uint64]uint64) error {
		items := uint64(cores) * ctnQueueItems * uint64(scale)
		if got := snap[heapAt(ctnSharedMB)]; got != items {
			return fmt.Errorf("tail ticket = %d, want %d", got, items)
		}
		if got := snap[heapAt(ctnSharedMB)+8]; got != items {
			return fmt.Errorf("head ticket = %d, want %d", got, items)
		}
		var published uint64
		for s := uint64(0); s < items; s++ {
			published += snap[heapAt(ctnShared2MB)+16*s]
		}
		if got := snap[heapAt(ctnTotalMB)]; got != published {
			return fmt.Errorf("consumed total %d, published total %d", got, published)
		}
		return nil
	}
}

// checkMTLockRec: every record satisfies f3 == f1 + f2 (no half-updated
// record ever became durable) and the f1 fields count every lock-protected
// update exactly once.
func checkMTLockRec(cores int) func(int, map[uint64]uint64) error {
	return func(scale int, snap map[uint64]uint64) error {
		var updates uint64
		for rec := uint64(0); rec < 4; rec++ {
			base := heapAt(ctnSharedMB) + 64*rec
			f1, f2, f3 := snap[base+8], snap[base+16], snap[base+24]
			if f1+f2 != f3 {
				return fmt.Errorf("record %d broken: f1=%d f2=%d f3=%d", rec, f1, f2, f3)
			}
			updates += f1
		}
		if want := uint64(cores) * ctnLockIters * uint64(scale); updates != want {
			return fmt.Errorf("%d updates recorded, want %d", updates, want)
		}
		return nil
	}
}

func ctnName(family string, cores int) string {
	return fmt.Sprintf("%s-c%d", family, cores)
}

// emitSkewedIndex computes a contention-skewed index in [0, 2^bits) into rd
// from the induction variable rI and a per-thread constant: a multiplicative
// hash extract, AND-folded skew times with further extracts. Branch-free, so
// every thread's region shape is identical regardless of the slot it hits.
// Clobbers rd and rScr+0.
func emitSkewedIndex(f *prog.FuncBuilder, rd isa.Reg, thread, skew, bits int) {
	f.MulI(rd, rI, 2654435761)
	f.AddI(rd, rd, int64(thread)*7919+17)
	mask := int64(1)<<bits - 1
	f.OpI(isa.OpShrI, rScr+0, rd, 8)
	f.AndI(rScr+0, rScr+0, mask)
	for k := 0; k < skew; k++ {
		f.OpI(isa.OpShrI, rd, rd, int64(16+8*k))
		f.AndI(rd, rd, mask)
		f.Op3(isa.OpAnd, rScr+0, rScr+0, rd)
	}
	f.Mov(rd, rScr+0)
}

// buildMTCounter: every thread hammers a fetch-and-add counter array whose
// eight slots share one 64-byte line, journals the observed old values into a
// private partition, and fences every fourth iteration — so atomic persist
// order on the hot line and fence-vs-remote-store order are both exercised
// continuously across cores.
func buildMTCounter(g contentionSpec, scale int) *prog.Program {
	bd := prog.NewBuilder(ctnName("mt-counter", g.cores))
	iters := int64(scale) * ctnCounterIters
	var workers []*prog.FuncBuilder
	for t := 0; t < g.cores; t++ {
		f := bd.Func("counter-worker")
		f.Block()
		f.MovI(isa.SP, int64(machine.StackBase(t)))
		f.MovI(rAcc, 0)
		emitBarrier(f, heapAt(ctnBarrierMB), int64(g.cores))

		f.MovI(rI, 0)
		f.MovI(rN, iters)
		f.MovI(rBase, int64(heapAt(ctnSharedMB))) // 8 counters, one 64B line
		f.MovI(rPtr, int64(heapAt(ctnPrivMB+t)))  // private journal
		f.MovI(rVal, 1)                           // FAA increment
		f.MovI(rMask, 255)                        // journal wraps over 256 words
		f.MovI(rScr+5, 0)                         // zero for branch compares

		pre := f.Cur()
		header := f.Block()
		body := f.Block()
		fence := f.Block()
		latch := f.Block()
		exit := f.Block()
		f.SetBlock(pre)
		f.Br(header)

		f.SetBlock(header)
		f.BrIf(rI, isa.CondGE, rN, exit, body)

		f.SetBlock(body)
		emitSkewedIndex(f, rTmp2, t, g.skew, 3) // slot in [0,8)
		f.OpI(isa.OpShlI, rTmp2, rTmp2, 3)
		f.Add(rTmp2, rTmp2, rBase)
		f.AtomicAdd(rTmp, rTmp2, 0, rVal) // old value -> rTmp
		f.Add(rAcc, rAcc, rTmp)
		// Journal the observation into the private partition.
		f.Op3(isa.OpAnd, rScr+1, rI, rMask)
		f.OpI(isa.OpShlI, rScr+1, rScr+1, 3)
		f.Add(rScr+1, rScr+1, rPtr)
		f.Store(rScr+1, 0, rTmp)
		// Fence every fourth iteration: the journal stores must be durable
		// before the next atomic's region can commit past them.
		f.AndI(rScr+1, rI, 3)
		f.BrIf(rScr+1, isa.CondEQ, rScr+5, fence, latch)

		f.SetBlock(fence)
		f.Fence()
		f.Br(latch)

		f.SetBlock(latch)
		f.AddI(rI, rI, 1)
		f.Br(header)

		f.SetBlock(exit)
		f.MovI(rTmp2, int64(heapAt(ctnTotalMB)))
		f.AtomicAdd(rTmp, rTmp2, 0, rAcc)
		f.Emit(rAcc)
		f.Halt()
		workers = append(workers, f)
	}
	bd.SetThreadEntries(workers...)
	return bd.Program()
}

// buildMTQueue: a multi-producer multi-consumer persistent queue. Every
// thread enqueues its items (ticket FAA on the tail, plain payload store,
// atomic ready publication), crosses the phase barrier, then dequeues the
// same number of items (ticket FAA on the head, spin on the committed ready
// word, payload load). The ring never wraps: capacity equals the total item
// count, so a slot is written exactly once and the recovery argument stays
// local to one slot.
func buildMTQueue(g contentionSpec, scale int) *prog.Program {
	bd := prog.NewBuilder(ctnName("mt-queue", g.cores))
	items := int64(scale) * ctnQueueItems
	var workers []*prog.FuncBuilder
	for t := 0; t < g.cores; t++ {
		f := bd.Func("queue-worker")
		f.Block()
		f.MovI(isa.SP, int64(machine.StackBase(t)))
		f.MovI(rAcc, 0)
		emitBarrier(f, heapAt(ctnBarrierMB), int64(g.cores))

		f.MovI(rI, 0)
		f.MovI(rN, items)
		f.MovI(rBase, int64(heapAt(ctnSharedMB))) // tickets: [tail, head]
		f.MovI(rPtr, int64(heapAt(ctnShared2MB))) // ring of 16B slots [val, ready]
		f.MovI(rVal, 1)
		f.MovI(rScr+5, 0)

		pre := f.Cur()
		eHdr := f.Block()
		eBody := f.Block()
		eLatch := f.Block()
		mid := f.Block()
		dHdr := f.Block()
		dBody := f.Block()
		spin := f.Block()
		spinChk := f.Block()
		take := f.Block()
		dLatch := f.Block()
		exit := f.Block()
		f.SetBlock(pre)
		f.Br(eHdr)

		// Enqueue phase.
		f.SetBlock(eHdr)
		f.BrIf(rI, isa.CondGE, rN, mid, eBody)

		f.SetBlock(eBody)
		f.AtomicAdd(rTmp, rBase, 0, rVal) // claim slot = old tail
		f.OpI(isa.OpShlI, rTmp2, rTmp, 4)
		f.Add(rTmp2, rTmp2, rPtr) // slot address
		f.MulI(rScr+1, rTmp, 7)
		f.AddI(rScr+1, rScr+1, 13)
		f.Store(rTmp2, 0, rScr+1)           // payload (plain store, region open)
		f.AtomicAdd(rScr+2, rTmp2, 8, rVal) // publish: commits payload + flag
		f.Br(eLatch)

		f.SetBlock(eLatch)
		f.AddI(rI, rI, 1)
		f.Br(eHdr)

		// Phase barrier: all slots published before any consumer runs.
		f.SetBlock(mid)
		emitBarrier(f, heapAt(ctnBarrierMB), int64(g.cores))
		f.MovI(rI, 0)
		f.Br(dHdr)

		// Dequeue phase.
		f.SetBlock(dHdr)
		f.BrIf(rI, isa.CondGE, rN, exit, dBody)

		f.SetBlock(dBody)
		f.AtomicAdd(rTmp, rBase, 8, rVal) // claim slot = old head
		f.OpI(isa.OpShlI, rTmp2, rTmp, 4)
		f.Add(rTmp2, rTmp2, rPtr)
		f.Br(spin)

		f.SetBlock(spin)
		f.Load(rScr+1, rTmp2, 8) // ready flag (atomically published)
		f.BrIf(rScr+1, isa.CondEQ, rScr+5, spinChk, take)
		f.SetBlock(spinChk)
		f.Br(spin)

		f.SetBlock(take)
		f.Load(rScr+1, rTmp2, 0)
		f.Add(rAcc, rAcc, rScr+1)
		f.Br(dLatch)

		f.SetBlock(dLatch)
		f.AddI(rI, rI, 1)
		f.Br(dHdr)

		f.SetBlock(exit)
		f.MovI(rTmp2, int64(heapAt(ctnTotalMB)))
		f.AtomicAdd(rTmp, rTmp2, 0, rAcc)
		f.Emit(rAcc)
		f.Halt()
		workers = append(workers, f)
	}
	bd.SetThreadEntries(workers...)
	return bd.Program()
}

// buildMTLockRec: lock-protected multi-word record updates. Each thread picks
// a (skewed) record, takes its lock, bumps f1 and f2, rewrites f3 = f1 + f2,
// and releases — the release commits the three stores atomically, so the
// invariant holds at every region boundary and therefore in every recovered
// image. A fenced private journal rides along every fourth iteration.
func buildMTLockRec(g contentionSpec, scale int) *prog.Program {
	bd := prog.NewBuilder(ctnName("mt-lockrec", g.cores))
	iters := int64(scale) * ctnLockIters
	var workers []*prog.FuncBuilder
	for t := 0; t < g.cores; t++ {
		f := bd.Func("lockrec-worker")
		f.Block()
		f.MovI(isa.SP, int64(machine.StackBase(t)))
		f.MovI(rAcc, 0)
		emitBarrier(f, heapAt(ctnBarrierMB), int64(g.cores))

		f.MovI(rI, 0)
		f.MovI(rN, iters)
		f.MovI(rBase, int64(heapAt(ctnSharedMB))) // 4 records x 64B: [lock,f1,f2,f3]
		f.MovI(rPtr, int64(heapAt(ctnPrivMB+t)))
		f.MovI(rMask, 255)
		f.MovI(rScr+5, 0)

		pre := f.Cur()
		header := f.Block()
		body := f.Block()
		fence := f.Block()
		latch := f.Block()
		exit := f.Block()
		f.SetBlock(pre)
		f.Br(header)

		f.SetBlock(header)
		f.BrIf(rI, isa.CondGE, rN, exit, body)

		f.SetBlock(body)
		emitSkewedIndex(f, rTmp2, t, g.skew, 2) // record in [0,4)
		f.OpI(isa.OpShlI, rTmp2, rTmp2, 6)
		f.Add(rTmp2, rTmp2, rBase)
		f.Lock(rTmp2, 0)
		f.Load(rTmp, rTmp2, 8)    // f1
		f.Load(rScr+1, rTmp2, 16) // f2
		f.AddI(rTmp, rTmp, 1)
		f.AddI(rScr+1, rScr+1, 2)
		f.Store(rTmp2, 8, rTmp)
		f.Store(rTmp2, 16, rScr+1)
		f.Add(rScr+2, rTmp, rScr+1)
		f.Store(rTmp2, 24, rScr+2) // f3 = f1 + f2, atomically with the release
		f.Unlock(rTmp2, 0)
		f.Add(rAcc, rAcc, rScr+2)
		// Fenced private journal every fourth iteration.
		f.Op3(isa.OpAnd, rScr+1, rI, rMask)
		f.OpI(isa.OpShlI, rScr+1, rScr+1, 3)
		f.Add(rScr+1, rScr+1, rPtr)
		f.Store(rScr+1, 0, rScr+2)
		f.AndI(rScr+1, rI, 3)
		f.BrIf(rScr+1, isa.CondEQ, rScr+5, fence, latch)

		f.SetBlock(fence)
		f.Fence()
		f.Br(latch)

		f.SetBlock(latch)
		f.AddI(rI, rI, 1)
		f.Br(header)

		f.SetBlock(exit)
		f.MovI(rTmp2, int64(heapAt(ctnTotalMB)))
		f.AtomicAdd(rTmp, rTmp2, 0, rAcc)
		f.Emit(rAcc)
		f.Halt()
		workers = append(workers, f)
	}
	bd.SetThreadEntries(workers...)
	return bd.Program()
}
