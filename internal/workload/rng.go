// Package workload synthesizes the benchmark programs of the paper's
// evaluation (§6.1): five SPEC CPU2017 benchmarks, five STAMP benchmarks
// (compiled as sequential programs, as in the paper), and nine Splash-3
// multi-threaded kernels. The real suites cannot run on our register-machine
// IR, so each generator reproduces the characteristics that drive Capri's
// figures — store density, loop-body length, live-register pressure, working
// set, sharing pattern, call frequency — calibrated so the per-benchmark
// ordering and crossovers of Figures 8–11 reproduce (see DESIGN.md's
// substitution table).
package workload

// rng is a splitmix64 deterministic generator: workload construction must be
// reproducible across runs and platforms, so math/rand is avoided.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a deterministic value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// i64 returns a small positive pseudo-random constant.
func (r *rng) i64(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + int64(r.next()%uint64(hi-lo))
}
