package workload

import (
	"reflect"
	"testing"

	"capri/internal/compile"
	"capri/internal/isa"
	"capri/internal/machine"
	"capri/internal/prog"
)

// barrierProgram builds nthreads workers that alternate private phases with
// barrier episodes: phase k writes f(k, tid) into the worker's slot, then
// all threads synchronize, then each reads its *neighbour's* slot — a value
// only the barrier makes safe to read. The emitted digest is sensitive to
// any barrier or recovery bug.
func barrierProgram(nthreads int, phases int64) *prog.Program {
	bd := prog.NewBuilder("barrier")
	barrierBase := heapAt(40)
	slotsBase := heapAt(40) + 64

	var workers []*prog.FuncBuilder
	for tid := 0; tid < nthreads; tid++ {
		f := bd.Func("w")
		entry := f.Block()
		phaseHdr := f.Block()
		phaseBody := f.Block()
		exit := f.Block()

		const (
			rPhase = isa.Reg(0)
			rNPh   = isa.Reg(1)
			rSlots = isa.Reg(2)
			rMine  = isa.Reg(3) // my slot address
			rNext  = isa.Reg(4) // neighbour slot address
			rVal   = isa.Reg(5)
			rAcc   = isa.Reg(6)
		)

		f.SetBlock(entry)
		f.MovI(isa.SP, int64(machine.StackBase(tid)))
		f.MovI(rPhase, 0)
		f.MovI(rNPh, phases)
		f.MovI(rSlots, int64(slotsBase))
		f.AddI(rMine, rSlots, int64(8*tid))
		f.AddI(rNext, rSlots, int64(8*((tid+1)%nthreads)))
		f.MovI(rAcc, 0)
		f.Br(phaseHdr)

		f.SetBlock(phaseHdr)
		f.BrIf(rPhase, isa.CondGE, rNPh, exit, phaseBody)

		f.SetBlock(phaseBody)
		// Publish f(phase, tid) = phase*31 + tid into my slot.
		f.MulI(rVal, rPhase, 31)
		f.AddI(rVal, rVal, int64(tid))
		f.Store(rMine, 0, rVal)
		emitBarrier(f, barrierBase, int64(nthreads))
		// Read the neighbour's published value; only valid post-barrier.
		f.Load(rVal, rNext, 0)
		f.Add(rAcc, rAcc, rVal)
		emitBarrier(f, barrierBase, int64(nthreads))
		f.AddI(rPhase, rPhase, 1)
		f.Br(phaseHdr)

		f.SetBlock(exit)
		f.Emit(rAcc)
		f.Halt()
		workers = append(workers, f)
	}
	bd.SetThreadEntries(workers...)
	return bd.Program()
}

func barrierConfig(threads, threshold int) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Cores = threads
	cfg.Threshold = threshold
	cfg.L2Size = 256 << 10
	cfg.DRAMSize = 1 << 20
	cfg.MaxSteps = 100_000_000
	return cfg
}

func TestBarrierBaselineCorrect(t *testing.T) {
	const threads, phases = 3, 8
	p := barrierProgram(threads, phases)
	cfg := barrierConfig(threads, 32)
	cfg.Capri = false
	m, err := machine.New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Each thread accumulates sum over phases of (phase*31 + neighbour).
	for tid := 0; tid < threads; tid++ {
		want := uint64(0)
		for k := int64(0); k < phases; k++ {
			want += uint64(k*31 + int64((tid+1)%threads))
		}
		if got := m.Output(tid)[0]; got != want {
			t.Errorf("thread %d acc = %d, want %d", tid, got, want)
		}
	}
}

func TestBarrierCrashRecoverySweep(t *testing.T) {
	// The hard multi-threaded recovery case: crashes land inside barrier
	// episodes (between the arrival fetch-and-add and the release), and the
	// barrier state itself lives in persistent memory. Recovery must land
	// every thread on a consistent region boundary and the barrier must
	// still release everyone.
	const threads, phases = 3, 6
	p := barrierProgram(threads, phases)
	res, err := compile.Compile(p, compile.OptionsForLevel(compile.LevelLICM, 16))
	if err != nil {
		t.Fatal(err)
	}
	cfg := barrierConfig(threads, 16)

	mg, err := machine.New(res.Program, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Run(); err != nil {
		t.Fatal(err)
	}
	var golden [][]uint64
	for tid := 0; tid < threads; tid++ {
		golden = append(golden, mg.Output(tid))
	}
	total := mg.Instret()

	points := 40
	if testing.Short() {
		points = 10
	}
	step := total/uint64(points) + 1
	for crashAt := step; crashAt < total; crashAt += step {
		m, _ := machine.New(res.Program, cfg)
		if err := m.RunUntil(crashAt); err != nil {
			t.Fatal(err)
		}
		if m.Done() {
			break
		}
		img, err := m.Crash()
		if err != nil {
			t.Fatal(err)
		}
		r, rep, err := machine.Recover(img)
		if err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
		if rep.ConflictingUndo != 0 {
			t.Errorf("crash@%d: %d conflicting undos", crashAt, rep.ConflictingUndo)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("crash@%d resume (deadlock?): %v", crashAt, err)
		}
		for tid := 0; tid < threads; tid++ {
			if !reflect.DeepEqual(r.Output(tid), golden[tid]) {
				t.Errorf("crash@%d thread %d: %v, want %v",
					crashAt, tid, r.Output(tid), golden[tid])
			}
		}
	}
}
