package machine

import (
	"errors"
	"reflect"
	"testing"

	"capri/internal/mem"
	"capri/internal/proxy"
)

// imageSnapshot is the observable content of a CrashImage, deep-copied so a
// later mutation of either the image or the machine it came from is visible.
type imageSnapshot struct {
	NVM     []mem.WordEntry
	Records []CoreRecord
	Streams [][]proxy.Entry
	Outputs [][]uint64
	Seq     uint64
}

func snapshotImage(img *CrashImage) imageSnapshot {
	s := imageSnapshot{
		NVM: img.NVM.Entries(),
		Seq: img.Seq,
	}
	s.Records = append(s.Records, img.Records...)
	for _, stream := range img.Streams {
		cp := append([]proxy.Entry(nil), stream...)
		for i := range cp {
			if len(cp[i].Ckpts) > 0 {
				cp[i].Ckpts = append([]proxy.RegCkpt(nil), cp[i].Ckpts...)
			}
			if len(cp[i].Emits) > 0 {
				cp[i].Emits = append([]uint64(nil), cp[i].Emits...)
			}
		}
		s.Streams = append(s.Streams, cp)
	}
	for _, out := range img.Outputs {
		s.Outputs = append(s.Outputs, append([]uint64(nil), out...))
	}
	return s
}

// TestCrashImageUnshared pins the harvest deep-copy contract: a CrashImage is
// fully unshared from the live machine, so mutating the machine after Crash()
// — including running it further, which reuses the proxy buffers' backing
// arrays that harvested Ckpts/Emits slices used to alias — never changes the
// image, and the image still recovers to the golden outcome afterwards.
func TestCrashImageUnshared(t *testing.T) {
	cfg := testConfig(8)
	p := compileFor(t, sumProgram(3000), 8)

	golden, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Run(); err != nil {
		t.Fatal(err)
	}

	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntil(golden.Instret() / 2); err != nil {
		t.Fatal(err)
	}
	img, err := m.Crash()
	if err != nil {
		t.Fatal(err)
	}
	inFlight := 0
	ckpts := 0
	for _, stream := range img.Streams {
		inFlight += len(stream)
		for _, e := range stream {
			ckpts += len(e.Ckpts)
		}
	}
	if inFlight == 0 || ckpts == 0 {
		t.Fatalf("crash point harvested %d entries / %d checkpoints — aliasing not exercised", inFlight, ckpts)
	}
	before := snapshotImage(img)

	// Mutate the live machine every way the simulator can: keep executing
	// (the crash harvest consumed the proxy path, so the run may stall or
	// err — only the image's stability matters here), then scribble directly
	// on the persistent structures the image was harvested from.
	_ = m.Run()
	for _, e := range before.NVM {
		m.nvm.Restore(e.Addr, e.Val^0xdeadbeef, e.Seq+100)
	}
	for _, c := range m.cores {
		c.output = append(c.output, 0xbad)
	}
	for i := range m.records {
		m.records[i].Region += 7
	}
	m.seq += 1000

	if after := snapshotImage(img); !reflect.DeepEqual(before, after) {
		t.Fatal("CrashImage changed when the live machine was mutated after Crash()")
	}

	r, _, err := Recover(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := r.Output(0), golden.Output(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered output %v, golden %v", got, want)
	}
}

// TestDrainRetrySucceedsWithinBudget pins the transient-NVM-write-error path:
// a drain that fails a bounded number of times completes after backoff, the
// run's outcome is unchanged, the retries appear in Stats and the DrainRetries
// histogram, and every retry-stall cycle lands in the CauseDrainRetry ledger
// bucket — with the ledger still summing exactly to the cycle count.
func TestDrainRetrySucceedsWithinBudget(t *testing.T) {
	cfg := testConfig(8)
	p := compileFor(t, sumProgram(500), 8)

	clean, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Run(); err != nil {
		t.Fatal(err)
	}

	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mt := m.EnableMetrics()
	m.ArmFaults(FaultConfig{
		DrainError: func(core int, region uint64, attempt int) bool { return attempt < 2 },
	})
	if err := m.Run(); err != nil {
		t.Fatalf("bounded transient errors must not fail the run: %v", err)
	}
	if got, want := m.Output(0), clean.Output(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("output %v under retries, want %v", got, want)
	}

	s := m.Stats()
	if s.DrainRetries == 0 {
		t.Fatal("no drain retries recorded")
	}
	if s.DrainExhausted != 0 {
		t.Fatalf("%d drains exhausted under a 2-failure hook (budget %d)", s.DrainExhausted, DefaultRetryMax)
	}
	if mt.DrainRetries.Count == 0 || mt.DrainRetries.Max < 2 {
		t.Fatalf("DrainRetries histogram = %+v, want samples with max >= 2", mt.DrainRetries)
	}
	checkLedger(t, m)
	var sum uint64
	for _, n := range s.CycleBy {
		sum += n
	}
	if sum != s.Cycles {
		t.Fatalf("ledger sums to %d, Cycles = %d", sum, s.Cycles)
	}
	if s.CycleBy[CauseDrainRetry] == 0 {
		t.Fatal("no cycles attributed to drain-retry stalls")
	}
	if m.Cycles() <= clean.Cycles() {
		t.Fatalf("retried run took %d cycles, clean run %d — backoff cost vanished", m.Cycles(), clean.Cycles())
	}
}

// TestDrainRetryExhaustionDegrades pins the degradation contract: a drain
// whose write errors persist past the retry budget makes Run return a
// structured *DrainExhaustedError (a hard stall, not a panic and not silent
// data loss), the exhaustion is counted, the ledger still balances — and the
// machine can then be crashed and recovered, completing the program, because
// the stuck region's entries are still in the battery-backed buffers.
func TestDrainRetryExhaustionDegrades(t *testing.T) {
	cfg := testConfig(8)
	p := compileFor(t, sumProgram(500), 8)

	golden, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Run(); err != nil {
		t.Fatal(err)
	}

	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.ArmFaults(FaultConfig{
		DrainError: func(core int, region uint64, attempt int) bool { return true },
	})
	runErr := m.Run()
	if runErr == nil {
		t.Fatal("always-failing NVM writes completed the run")
	}
	var dex *DrainExhaustedError
	if !errors.As(runErr, &dex) {
		t.Fatalf("run failed with %T (%v), want *DrainExhaustedError", runErr, runErr)
	}
	if dex.Attempts != DefaultRetryMax+1 {
		t.Fatalf("exhausted after %d attempts, want retry budget %d + 1", dex.Attempts, DefaultRetryMax)
	}
	s := m.Stats()
	if s.DrainExhausted == 0 {
		t.Fatal("exhaustion not counted in Stats")
	}
	if s.DrainRetries < uint64(DefaultRetryMax) {
		t.Fatalf("only %d retries recorded before exhaustion (budget %d)", s.DrainRetries, DefaultRetryMax)
	}
	checkLedger(t, m)

	img, err := m.Crash()
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := Recover(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := r.Output(0), golden.Output(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-exhaustion recovery output %v, golden %v", got, want)
	}
}

// TestTearWritebackOwnershipGuard pins tearWriteback's word-level semantics
// against a hand-built journal: a torn word reverts to its pre-writeback NVM
// image only while NVM still holds exactly the journaled write; a word a
// later write owns is untouchable (same-address WPQ ordering means the
// journaled write fully left the queue before the later one entered).
func TestTearWritebackOwnershipGuard(t *testing.T) {
	cfg := testConfig(8)
	m, err := New(compileFor(t, sumProgram(10), 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.ArmFaults(FaultConfig{})

	line := uint64(HeapBase)
	m.nvm.Restore(line, 2, 5)    // NVM holds the journaled write: tearable
	m.nvm.Restore(line+8, 70, 9) // a later write owns this word: not tearable
	m.flt.noteLineWrite(line, 0, 6, []tornWord{
		{addr: line, old: mem.Word{Val: 1, Seq: 1}, new: mem.Word{Val: 2, Seq: 5}},
		{addr: line + 8, old: mem.Word{Val: 3, Seq: 2}, new: mem.Word{Val: 4, Seq: 6}},
	})

	img, err := m.CrashTorn([]Tear{{Kind: TearWriteback, Pick: 0, Keep: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := img.NVM.Peek(line); got != (mem.Word{Val: 1, Seq: 1}) {
		t.Errorf("tearable word = %+v, want reverted {1 1}", got)
	}
	if got := img.NVM.Peek(line + 8); got != (mem.Word{Val: 70, Seq: 9}) {
		t.Errorf("owned word = %+v, want untouched {70 9}", got)
	}
}

// TestTearWritebackKeepPrefix: Keep persists the first Keep applied words of
// the journaled line (writes drain in order — a torn line loses a suffix).
func TestTearWritebackKeepPrefix(t *testing.T) {
	cfg := testConfig(8)
	m, err := New(compileFor(t, sumProgram(10), 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.ArmFaults(FaultConfig{})

	line := uint64(HeapBase + 128)
	m.nvm.Restore(line, 10, 5)
	m.nvm.Restore(line+8, 20, 6)
	m.flt.noteLineWrite(line, 0, 6, []tornWord{
		{addr: line, old: mem.Word{Val: 0, Seq: 0}, new: mem.Word{Val: 10, Seq: 5}},
		{addr: line + 8, old: mem.Word{Val: 0, Seq: 0}, new: mem.Word{Val: 20, Seq: 6}},
	})

	img, err := m.CrashTorn([]Tear{{Kind: TearWriteback, Pick: 0, Keep: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := img.NVM.Peek(line); got != (mem.Word{Val: 10, Seq: 5}) {
		t.Errorf("kept word = %+v, want persisted {10 5}", got)
	}
	if got := img.NVM.Peek(line + 8); got != (mem.Word{Val: 0, Seq: 0}) {
		t.Errorf("torn word = %+v, want reverted {0 0}", got)
	}
}

// TestTearConfirmDurable pins faultState.confirm: once a later write to the
// word enters the queue (or an elided drain write verifies it), the journaled
// write is durable and a tear must leave it alone — even though NVM still
// holds exactly the journaled value.
func TestTearConfirmDurable(t *testing.T) {
	cfg := testConfig(8)
	m, err := New(compileFor(t, sumProgram(10), 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.ArmFaults(FaultConfig{})

	line := uint64(HeapBase + 256)
	m.nvm.Restore(line, 42, 5)
	m.flt.noteLineWrite(line, 0, 5, []tornWord{
		{addr: line, old: mem.Word{Val: 7, Seq: 1}, new: mem.Word{Val: 42, Seq: 5}},
	})
	m.flt.confirm(line)

	img, err := m.CrashTorn([]Tear{{Kind: TearWriteback, Pick: 0, Keep: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := img.NVM.Peek(line); got != (mem.Word{Val: 42, Seq: 5}) {
		t.Errorf("confirmed word = %+v, want durable {42 5}", got)
	}
}

// TestCrashTornVacuousTears: tears referencing writes that are not in flight
// (journal index past the end, no booked drain) are exact no-ops — the torn
// image is identical to a plain crash image at the same point.
func TestCrashTornVacuousTears(t *testing.T) {
	cfg := testConfig(8)
	p := compileFor(t, sumProgram(800), 8)

	run := func(tears []Tear) imageSnapshot {
		m, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.ArmFaults(FaultConfig{})
		if err := m.RunUntil(1000); err != nil {
			t.Fatal(err)
		}
		img, err := m.CrashTorn(tears)
		if err != nil {
			t.Fatal(err)
		}
		return snapshotImage(img)
	}

	plain := run(nil)
	torn := run([]Tear{
		{Kind: TearWriteback, Pick: DefaultJournalDepth + 5, Keep: 0},
		{Kind: TearDrain, Pick: 0, Keep: 0},
	})
	if !reflect.DeepEqual(plain, torn) {
		t.Fatal("vacuous tears changed the crash image")
	}
}

// TestCrashTornBaselineRejected: the baseline machine has no persistent image
// to tear.
func TestCrashTornBaselineRejected(t *testing.T) {
	cfg := testConfig(8)
	cfg.Capri = false
	m, err := New(sumProgram(10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CrashTorn(nil); err == nil {
		t.Fatal("baseline CrashTorn succeeded")
	}
}

// TestTearDrainIdempotentReplay: pre-applying a prefix of a booked phase-2
// drain at the crash (the WPQ had begun the drain when power failed) changes
// the crash image but never the recovered outcome — recovery re-replays the
// region's entries from the battery-backed buffers and the sequence guard
// makes the overlap idempotent.
func TestTearDrainIdempotentReplay(t *testing.T) {
	cfg := testConfig(4)
	p := compileFor(t, stridedStoreProgram(4000), 4)

	golden, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Run(); err != nil {
		t.Fatal(err)
	}

	crashAt := func(at uint64, tears []Tear) *CrashImage {
		m, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.ArmFaults(FaultConfig{})
		if err := m.RunUntil(at); err != nil {
			t.Fatal(err)
		}
		img, err := m.CrashTorn(tears)
		if err != nil {
			t.Fatal(err)
		}
		return img
	}

	// Find a crash point where a drain is actually in flight: the torn image
	// must differ from the plain one, or the tear was vacuous everywhere.
	tornOnce := false
	for _, frac := range []uint64{8, 4, 3, 2} {
		at := golden.Instret() / frac
		tears := []Tear{{Kind: TearDrain, Pick: 0, Keep: 4}}
		plain := crashAt(at, nil)
		torn := crashAt(at, tears)
		if !reflect.DeepEqual(plain.NVM.Entries(), torn.NVM.Entries()) {
			tornOnce = true
		}
		r, _, err := Recover(torn)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		if got, want := r.MemSnapshot(), golden.MemSnapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("crash@%d: torn-drain recovery diverged from golden memory", at)
		}
	}
	if !tornOnce {
		t.Fatal("no crash point had a drain in flight — the tear was never exercised")
	}
}
