package machine

import (
	"reflect"
	"testing"

	"capri/internal/compile"
	"capri/internal/isa"
	"capri/internal/prog"
)

// testConfig is a small, fast configuration for unit tests.
func testConfig(threshold int) Config {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.Threshold = threshold
	cfg.L2Size = 256 << 10
	cfg.DRAMSize = 1 << 20
	cfg.MaxSteps = 50_000_000
	return cfg
}

// sumProgram computes sum(0..n-1), storing a running total to memory each
// iteration and emitting the final sum.
func sumProgram(n int64) *prog.Program {
	bd := prog.NewBuilder("sum")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	f.SetBlock(entry)
	f.MovI(0, 0) // i
	f.MovI(1, n)
	f.MovI(2, 0)               // sum
	f.MovI(3, int64(HeapBase)) // base
	f.Br(header)

	f.SetBlock(header)
	f.BrIf(0, isa.CondGE, 1, exit, body)

	f.SetBlock(body)
	f.Add(2, 2, 0)
	f.Store(3, 0, 2) // running total
	f.Store(3, 8, 0) // last i
	f.AddI(0, 0, 1)
	f.Br(header)

	f.SetBlock(exit)
	f.Emit(2)
	f.Halt()
	return bd.Program()
}

func compileFor(t *testing.T, p *prog.Program, threshold int) *prog.Program {
	t.Helper()
	opts := compile.DefaultOptions()
	opts.Threshold = threshold
	res, err := compile.Compile(p, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res.Program
}

func TestBaselineExecutesCorrectly(t *testing.T) {
	p := sumProgram(100)
	cfg := testConfig(64)
	cfg.Capri = false
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := uint64(100 * 99 / 2)
	if out := m.Output(0); len(out) != 1 || out[0] != want {
		t.Errorf("output = %v, want [%d]", out, want)
	}
	if got := m.MemSnapshot()[HeapBase]; got != want {
		t.Errorf("mem[heap] = %d, want %d", got, want)
	}
}

func TestCapriMatchesBaselineFunctionally(t *testing.T) {
	src := sumProgram(200)

	cfgB := testConfig(64)
	cfgB.Capri = false
	mb, _ := New(src, cfgB)
	if err := mb.Run(); err != nil {
		t.Fatal(err)
	}

	cp := compileFor(t, src, 64)
	mc, err := New(cp, testConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mb.Output(0), mc.Output(0)) {
		t.Errorf("outputs differ: baseline %v capri %v", mb.Output(0), mc.Output(0))
	}
	// Architectural heap state must agree (ignore the capri stack/ckpt areas:
	// the sum program keeps data at HeapBase).
	for _, a := range []uint64{HeapBase, HeapBase + 8} {
		if mb.MemSnapshot()[a] != mc.MemSnapshot()[a] {
			t.Errorf("mem[%#x]: baseline %d capri %d", a, mb.MemSnapshot()[a], mc.MemSnapshot()[a])
		}
	}
}

func TestCapriNVMConvergesToMemory(t *testing.T) {
	// After quiesce, every architectural word must be persisted in NVM with
	// the same value (whole-system persistence at completion).
	cp := compileFor(t, sumProgram(150), 32)
	m, _ := New(cp, testConfig(32))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	memImg := m.MemSnapshot()
	nvmImg := m.NVMSnapshot()
	for a, v := range memImg {
		if nvmImg[a] != v {
			t.Errorf("nvm[%#x] = %d, mem = %d", a, nvmImg[a], v)
		}
	}
}

func TestCapriOverheadIsBounded(t *testing.T) {
	src := sumProgram(500)
	cfgB := testConfig(256)
	cfgB.Capri = false
	mb, _ := New(src, cfgB)
	if err := mb.Run(); err != nil {
		t.Fatal(err)
	}
	cp := compileFor(t, src, 256)
	mc, _ := New(cp, testConfig(256))
	if err := mc.Run(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(mc.Cycles()) / float64(mb.Cycles())
	if ratio < 0.9 || ratio > 3.0 {
		t.Errorf("capri/baseline cycle ratio = %.2f, outside sanity band", ratio)
	}
}

func TestThresholdBacksPressure(t *testing.T) {
	// Smaller thresholds must not be faster than larger ones (more
	// boundaries, more checkpoints).
	src := sumProgram(2000)
	var prev uint64
	for i, th := range []int{256, 32, 8} {
		cp := compileFor(t, src, th)
		cfg := testConfig(th)
		m, _ := New(cp, cfg)
		if err := m.Run(); err != nil {
			t.Fatalf("th=%d: %v", th, err)
		}
		cy := m.Cycles()
		if i > 0 && cy < prev {
			t.Errorf("threshold %d is faster (%d) than larger threshold (%d)", th, cy, prev)
		}
		prev = cy
	}
}

func TestRunUntilCrashAndImage(t *testing.T) {
	cp := compileFor(t, sumProgram(300), 32)
	m, _ := New(cp, testConfig(32))
	if err := m.RunUntil(500); err != nil {
		t.Fatal(err)
	}
	if m.Done() {
		t.Fatal("program finished before crash point")
	}
	img, err := m.Crash()
	if err != nil {
		t.Fatal(err)
	}
	// One hardware thread -> one stream and one record.
	if img.NVM == nil || len(img.Streams) != 1 || len(img.Records) != 1 {
		t.Fatalf("image shape: streams=%d records=%d", len(img.Streams), len(img.Records))
	}
	if len(img.Streams[0]) == 0 {
		t.Error("crash image has no buffered proxy entries mid-run")
	}
}

func TestCrashRecoveryResumesToGolden(t *testing.T) {
	src := sumProgram(300)
	cp := compileFor(t, src, 32)

	// Golden run.
	mg, _ := New(cp, testConfig(32))
	if err := mg.Run(); err != nil {
		t.Fatal(err)
	}
	goldenOut := mg.Output(0)
	goldenMem := mg.MemSnapshot()

	for _, crashAt := range []uint64{1, 17, 100, 333, 1000, 2500} {
		m, _ := New(cp, testConfig(32))
		if err := m.RunUntil(crashAt); err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
		if m.Done() {
			continue // program finished before the crash point
		}
		img, err := m.Crash()
		if err != nil {
			t.Fatal(err)
		}
		r, rep, err := Recover(img)
		if err != nil {
			t.Fatalf("crash@%d recover: %v", crashAt, err)
		}
		if rep.ConflictingUndo != 0 {
			t.Errorf("crash@%d: conflicting undo entries: %d", crashAt, rep.ConflictingUndo)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("crash@%d resume: %v", crashAt, err)
		}
		if !reflect.DeepEqual(r.Output(0), goldenOut) {
			t.Errorf("crash@%d: output %v, want %v", crashAt, r.Output(0), goldenOut)
		}
		got := r.MemSnapshot()
		for _, a := range []uint64{HeapBase, HeapBase + 8} {
			if got[a] != goldenMem[a] {
				t.Errorf("crash@%d: mem[%#x] = %d, want %d", crashAt, a, got[a], goldenMem[a])
			}
		}
	}
}

func TestCrashSweepEveryEarlyPoint(t *testing.T) {
	// Exhaustive sweep over the first few hundred instruction boundaries:
	// the strongest single-thread recovery property.
	src := sumProgram(60)
	cp := compileFor(t, src, 16)

	mg, _ := New(cp, testConfig(16))
	if err := mg.Run(); err != nil {
		t.Fatal(err)
	}
	goldenOut := mg.Output(0)
	total := mg.Instret()

	step := total/97 + 1
	for crashAt := uint64(1); crashAt < total; crashAt += step {
		m, _ := New(cp, testConfig(16))
		if err := m.RunUntil(crashAt); err != nil {
			t.Fatal(err)
		}
		if m.Done() {
			break
		}
		img, _ := m.Crash()
		r, _, err := Recover(img)
		if err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("crash@%d resume: %v", crashAt, err)
		}
		if !reflect.DeepEqual(r.Output(0), goldenOut) {
			t.Fatalf("crash@%d: output %v, want %v", crashAt, r.Output(0), goldenOut)
		}
	}
}

func TestDoubleCrashRecovery(t *testing.T) {
	// Crash, recover, crash again mid-resume, recover again.
	src := sumProgram(200)
	cp := compileFor(t, src, 16)

	mg, _ := New(cp, testConfig(16))
	if err := mg.Run(); err != nil {
		t.Fatal(err)
	}
	golden := mg.Output(0)

	m, _ := New(cp, testConfig(16))
	if err := m.RunUntil(400); err != nil {
		t.Fatal(err)
	}
	img, _ := m.Crash()
	r1, _, err := Recover(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.RunUntil(300); err != nil {
		t.Fatal(err)
	}
	if !r1.Done() {
		img2, _ := r1.Crash()
		r2, _, err := Recover(img2)
		if err != nil {
			t.Fatal(err)
		}
		if err := r2.Run(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r2.Output(0), golden) {
			t.Errorf("double-crash output = %v, want %v", r2.Output(0), golden)
		}
	}
}

// callSum uses a helper function so the call/return machinery (in-memory
// stack, token table, SP) is exercised across crashes.
func callSum(n int64) *prog.Program {
	bd := prog.NewBuilder("callsum")

	addf := bd.Func("addf") // A0 += A1; memory trace at heap+16
	addf.Block()
	addf.Add(isa.A0, isa.A0, isa.A1)
	addf.MovI(20, int64(HeapBase))
	addf.Store(20, 16, isa.A0)
	addf.Ret()

	main := bd.Func("main")
	entry := main.Block()
	header := main.Block()
	body := main.Block()
	exit := main.Block()

	// Register plan: r8 = i, r9 = n, A0/A1 = call arguments. (A0 and A1 are
	// r0 and r1, so the loop state must live elsewhere.)
	main.SetBlock(entry)
	main.MovI(isa.SP, int64(StackBase(0)))
	main.MovI(8, 0) // i
	main.MovI(9, n)
	main.MovI(isa.A0, 0) // accumulator lives in A0 across calls
	main.Br(header)

	main.SetBlock(header)
	main.BrIf(8, isa.CondGE, 9, exit, body)

	main.SetBlock(body)
	main.Mov(isa.A1, 8)
	main.Call(addf)
	main.AddI(8, 8, 1)
	main.Br(header)

	main.SetBlock(exit)
	main.Emit(isa.A0)
	main.Halt()
	bd.SetThreadEntries(main)
	return bd.Program()
}

func TestCallCrashRecovery(t *testing.T) {
	src := callSum(40)
	cp := compileFor(t, src, 16)

	mg, _ := New(cp, testConfig(16))
	if err := mg.Run(); err != nil {
		t.Fatal(err)
	}
	golden := mg.Output(0)
	want := uint64(40 * 39 / 2)
	if len(golden) != 1 || golden[0] != want {
		t.Fatalf("golden output = %v, want [%d]", golden, want)
	}
	total := mg.Instret()

	step := total/61 + 1
	for crashAt := uint64(1); crashAt < total; crashAt += step {
		m, _ := New(cp, testConfig(16))
		if err := m.RunUntil(crashAt); err != nil {
			t.Fatal(err)
		}
		if m.Done() {
			break
		}
		img, _ := m.Crash()
		r, _, err := Recover(img)
		if err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("crash@%d resume: %v", crashAt, err)
		}
		if !reflect.DeepEqual(r.Output(0), golden) {
			t.Fatalf("crash@%d: output %v, want %v", crashAt, r.Output(0), golden)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	s := DefaultConfig().Table1()
	for _, want := range []string{"L1 D-Cache", "Proxy path", "Back-end proxy"} {
		if !contains(s, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 0
	if cfg.Validate() == nil {
		t.Error("0 cores accepted")
	}
	cfg = DefaultConfig()
	cfg.Threshold = 0
	if cfg.Validate() == nil {
		t.Error("0 threshold accepted with Capri on")
	}
	cfg.Capri = false
	if cfg.Validate() != nil {
		t.Error("baseline config with 0 threshold rejected")
	}
	cfg = DefaultConfig()
	cfg.LoadOverlap = 0
	if cfg.Validate() == nil {
		t.Error("0 load overlap accepted")
	}
}

func TestStatsPopulated(t *testing.T) {
	cp := compileFor(t, sumProgram(100), 32)
	m, _ := New(cp, testConfig(32))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Instret == 0 || s.Cycles == 0 || s.Stores == 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.Boundaries == 0 || s.Regions == 0 {
		t.Errorf("no regions tracked: %+v", s)
	}
	if s.AvgRegionInsts <= 0 || s.AvgRegionStores <= 0 {
		t.Errorf("region shape stats missing: %+v", s)
	}
	if s.NVMWrites == 0 {
		t.Error("no NVM writes recorded")
	}
}

func TestBackEndNeverOverflows(t *testing.T) {
	// A store-dense program at a small threshold: the compiler/architecture
	// contract must keep the back-end within capacity (invariant 3).
	bd := prog.NewBuilder("dense")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	f.SetBlock(entry)
	f.MovI(0, 0)
	f.MovI(1, 50)
	f.MovI(2, int64(HeapBase))
	f.Br(header)
	f.SetBlock(header)
	f.BrIf(0, isa.CondGE, 1, exit, body)
	f.SetBlock(body)
	for i := 0; i < 30; i++ {
		f.Store(2, int64(8*i), 0)
	}
	f.AddI(0, 0, 1)
	f.Br(header)
	f.SetBlock(exit)
	f.Halt()

	cp := compileFor(t, bd.Program(), 8)
	m, _ := New(cp, testConfig(8))
	if err := m.Run(); err != nil {
		t.Fatalf("back-end overflow or other fatal: %v", err)
	}
}
