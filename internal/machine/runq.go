package machine

// runq is the scheduler's event-ordered run queue: a binary min-heap of
// runnable cores keyed by (cycle, coreID). The run loop pops the reference
// schedule's pick in O(log cores), reads the strict quantum budget off the
// new minimum (one peek replaces the old per-dispatch linear scan's two-bound
// bookkeeping), and re-enqueues the core at its next scheduling event — the
// quantum end, its service horizon, or not at all once it halts.
//
// The ordering invariant is exactly the reference per-instruction schedule:
// the minimum-cycle runnable core runs, ties to the lowest core ID. The heap
// is rebuilt on every run() entry (cores may have been resumed or recovered
// between segments) and is never consulted on paths that exit the loop, so a
// crash or fatal return can leave it stale.
type runq struct {
	heap []*core
	ops  uint64 // lifetime pushes + pops (Stats.SchedQueueOps)
}

// coreLess orders the heap by (cycle, coreID) — the reference schedule's
// pick order.
func coreLess(a, b *core) bool {
	return a.cycle < b.cycle || (a.cycle == b.cycle && a.id < b.id)
}

// reset rebuilds the queue from the machine's runnable cores.
func (q *runq) reset(cores []*core) {
	q.heap = q.heap[:0]
	for _, c := range cores {
		if !c.halted {
			q.push(c)
		}
	}
}

// push enqueues core c at its current cycle.
func (q *runq) push(c *core) {
	q.ops++
	q.heap = append(q.heap, c)
	i := len(q.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !coreLess(q.heap[i], q.heap[p]) {
			break
		}
		q.heap[i], q.heap[p] = q.heap[p], q.heap[i]
		i = p
	}
}

// pop removes and returns the scheduler's pick (nil when empty).
func (q *runq) pop() *core {
	n := len(q.heap)
	if n == 0 {
		return nil
	}
	q.ops++
	top := q.heap[0]
	last := q.heap[n-1]
	q.heap[n-1] = nil
	q.heap = q.heap[:n-1]
	if n > 1 {
		q.heap[0] = last
		q.siftDown(0)
	}
	return top
}

func (q *runq) siftDown(i int) {
	n := len(q.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && coreLess(q.heap[r], q.heap[l]) {
			small = r
		}
		if !coreLess(q.heap[small], q.heap[i]) {
			return
		}
		q.heap[i], q.heap[small] = q.heap[small], q.heap[i]
		i = small
	}
}

// pushpop re-enqueues c and removes the new minimum in one pass. When c is
// still the minimum (a core running ahead of the field, or the last core
// standing), the heap is untouched; otherwise the root swaps out and c sinks
// from the top — half the work of a pop following a push, and the loop's
// steady state in tight cycle lockstep.
func (q *runq) pushpop(c *core) *core {
	q.ops += 2
	if len(q.heap) == 0 || coreLess(c, q.heap[0]) {
		return c
	}
	top := q.heap[0]
	q.heap[0] = c
	q.siftDown(0)
	return top
}

// peek returns the queue minimum without removing it (nil when empty).
func (q *runq) peek() *core {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}
