package machine

// lineTable is an epoch-stamped open-addressing set of 64B line addresses —
// the drain scheduler's distinct-line dedup scratch (scheduleDrain,
// memsys.go). It replaces the old linear-scan-plus-map-spill scheme with one
// structure that is O(1) per probe at every region size and allocates
// nothing in steady state: clearing is an epoch bump, and the slot array is
// reused across every region of a run, growing (rarely) to the largest
// region ever scheduled.
type lineTable struct {
	slots []lineSlot
	shift uint   // 64 - log2(len(slots)), for Fibonacci hashing
	epoch uint32 // current membership generation
	n     int    // entries inserted this epoch
}

type lineSlot struct {
	line  uint64
	epoch uint32
}

// reset begins a new membership epoch without touching the slots.
func (t *lineTable) reset() {
	t.n = 0
	t.epoch++
	if t.epoch == 0 {
		// Epoch counter wrapped: stale stamps from 4G resets ago could alias
		// the new epoch, so clear the slots for real this once.
		for i := range t.slots {
			t.slots[i] = lineSlot{}
		}
		t.epoch = 1
	}
	if len(t.slots) == 0 {
		t.slots = make([]lineSlot, 128)
		t.shift = 64 - 7
	}
}

// add inserts line, reporting whether it was absent this epoch.
func (t *lineTable) add(line uint64) bool {
	if 2*(t.n+1) > len(t.slots) {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	i := (line * 0x9e3779b97f4a7c15) >> t.shift
	for {
		s := &t.slots[i]
		if s.epoch != t.epoch {
			s.line, s.epoch = line, t.epoch
			t.n++
			return true
		}
		if s.line == line {
			return false
		}
		i = (i + 1) & mask
	}
}

// grow doubles the slot array, reinserting the current epoch's entries.
func (t *lineTable) grow() {
	old := t.slots
	epoch := t.epoch
	t.slots = make([]lineSlot, 2*len(old))
	t.shift--
	mask := uint64(len(t.slots) - 1)
	for _, s := range old {
		if s.epoch != epoch {
			continue
		}
		i := (s.line * 0x9e3779b97f4a7c15) >> t.shift
		for t.slots[i].epoch == epoch {
			i = (i + 1) & mask
		}
		t.slots[i] = s
	}
}
