package machine

import (
	"reflect"
	"testing"
)

// TestRegionInstsStallInvariant pins the retired-instruction accounting fix:
// a front-end stall makes the core retry the same store, and the retry must
// not be double-counted into the region body. A 2-entry front end stalls
// constantly; a 32-entry one barely at all — yet the dynamic region shape
// (Figures 10/11) must be identical.
func TestRegionInstsStallInvariant(t *testing.T) {
	cp := compileFor(t, sumProgram(400), 16)

	big, err := New(cp, testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := big.Run(); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(16)
	cfg.FrontEndEntries = 2
	small, err := New(cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.Run(); err != nil {
		t.Fatal(err)
	}

	sb, ss := big.Stats(), small.Stats()
	if ss.FrontStalls <= sb.FrontStalls {
		t.Fatalf("stalls %d (2-entry) vs %d (32-entry): test is not exercising the stall path", ss.FrontStalls, sb.FrontStalls)
	}
	if sb.Instret != ss.Instret {
		t.Errorf("Instret %d vs %d: stall retries leaked into retirement", sb.Instret, ss.Instret)
	}
	if sb.Regions != ss.Regions {
		t.Errorf("Regions %d vs %d", sb.Regions, ss.Regions)
	}
	if sb.AvgRegionInsts != ss.AvgRegionInsts {
		t.Errorf("AvgRegionInsts %v vs %v: retried instructions double-counted in the region body", sb.AvgRegionInsts, ss.AvgRegionInsts)
	}
	if sb.AvgRegionStores != ss.AvgRegionStores {
		t.Errorf("AvgRegionStores %v vs %v", sb.AvgRegionStores, ss.AvgRegionStores)
	}
}

// TestRegionInstsDispatchInvariant: the threaded core batches retirement per
// decoded run; the per-region body counters must still match the switch core
// exactly (including the boundary instruction itself staying out of the
// region body).
func TestRegionInstsDispatchInvariant(t *testing.T) {
	cp := compileFor(t, sumProgram(400), 16)
	var stats [2]Stats
	for i, mode := range []DispatchMode{DispatchThreaded, DispatchSwitch} {
		cfg := testConfig(16)
		cfg.Dispatch = mode
		m, err := New(cp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		stats[i] = m.Stats()
	}
	th, sw := stats[0], stats[1]
	if th.Instret != sw.Instret || th.Regions != sw.Regions ||
		th.AvgRegionInsts != sw.AvgRegionInsts || th.AvgRegionStores != sw.AvgRegionStores {
		t.Errorf("threaded region shape diverges from switch:\n  threaded: instret %d regions %d insts %v stores %v\n  switch:   instret %d regions %d insts %v stores %v",
			th.Instret, th.Regions, th.AvgRegionInsts, th.AvgRegionStores,
			sw.Instret, sw.Regions, sw.AvgRegionInsts, sw.AvgRegionStores)
	}
	if th.Cycles != sw.Cycles {
		t.Errorf("cycles diverge: threaded %d switch %d", th.Cycles, sw.Cycles)
	}
	if !reflect.DeepEqual(th.CycleBy, sw.CycleBy) {
		t.Errorf("cycle ledger diverges:\n  threaded %+v\n  switch   %+v", th.CycleBy, sw.CycleBy)
	}
}

// TestCrashRecoveryCounterCoherence: region accounting must survive a crash.
// The open (uncommitted) region's body counter restarts from zero on the
// recovered machine, replay must not pre-charge it, and the committed-region
// totals across the crash must cover the uninterrupted run's.
func TestCrashRecoveryCounterCoherence(t *testing.T) {
	cp := compileFor(t, sumProgram(300), 16)

	golden, err := New(cp, testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Run(); err != nil {
		t.Fatal(err)
	}

	m, err := New(cp, testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntil(777); err != nil {
		t.Fatal(err)
	}
	// At the crash point, per-core accounting must be internally coherent:
	// the open region's body plus the closed regions' bodies never exceed
	// what the core actually retired.
	for _, c := range m.cores {
		if c.sumInsts+c.curInsts > c.instret {
			t.Errorf("core %d: region bodies %d+%d exceed instret %d", c.id, c.sumInsts, c.curInsts, c.instret)
		}
	}
	img, err := m.Crash()
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := Recover(img)
	if err != nil {
		t.Fatal(err)
	}
	// Recovery replays checkpoint slices but retires no instructions: the
	// open region restarts with an empty body.
	for _, c := range r.cores {
		if c.curInsts != 0 || c.sumInsts != 0 || c.instret != 0 {
			t.Errorf("core %d: recovery pre-charged counters curInsts=%d sumInsts=%d instret=%d", c.id, c.curInsts, c.sumInsts, c.instret)
		}
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Output(0), golden.Output(0)) {
		t.Errorf("recovered output %v, want %v", r.Output(0), golden.Output(0))
	}
	// The interrupted region re-executes after recovery, so the combined
	// committed-region count can only meet or exceed the uninterrupted run.
	if got := m.Stats().Regions + r.Stats().Regions; got < golden.Stats().Regions {
		t.Errorf("committed regions lost across crash: %d pre + %d post < %d uninterrupted",
			m.Stats().Regions, r.Stats().Regions, golden.Stats().Regions)
	}
}
