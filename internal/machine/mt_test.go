package machine

import (
	"reflect"
	"testing"

	"capri/internal/compile"
	"capri/internal/isa"
	"capri/internal/prog"
)

// mtCounterProgram builds a two-thread program where both threads add to a
// shared counter under a spin lock, and each thread also fills a private
// array. Data-race-free by construction: the shared word is only touched in
// the critical section.
func mtCounterProgram(iters int64) *prog.Program {
	bd := prog.NewBuilder("mtcounter")

	worker := func(name string, tid int64) *prog.FuncBuilder {
		f := bd.Func(name)
		entry := f.Block()
		header := f.Block()
		body := f.Block()
		exit := f.Block()

		const (
			rI    = isa.Reg(8)
			rN    = isa.Reg(9)
			rLock = isa.Reg(10)
			rCnt  = isa.Reg(11)
			rPriv = isa.Reg(12)
			rTmp  = isa.Reg(13)
			rOne  = isa.Reg(14)
		)

		f.SetBlock(entry)
		f.MovI(isa.SP, int64(StackBase(int(tid))))
		f.MovI(rI, 0)
		f.MovI(rN, iters)
		f.MovI(rLock, int64(HeapBase))              // lock word
		f.MovI(rCnt, int64(HeapBase)+8)             // shared counter
		f.MovI(rPriv, int64(HeapBase)+4096*(tid+1)) // private array
		f.MovI(rOne, 1)
		f.Br(header)

		f.SetBlock(header)
		f.BrIf(rI, isa.CondGE, rN, exit, body)

		f.SetBlock(body)
		f.Lock(rLock, 0)
		f.Load(rTmp, rCnt, 0)
		f.Add(rTmp, rTmp, rOne)
		f.Store(rCnt, 0, rTmp)
		f.Unlock(rLock, 0)
		// Private work outside the lock.
		f.MulI(rTmp, rI, 3)
		f.Store(rPriv, 0, rTmp)
		f.AddI(rPriv, rPriv, 8)
		f.AddI(rI, rI, 1)
		f.Br(header)

		f.SetBlock(exit)
		f.Load(rTmp, rCnt, 0)
		f.Emit(rI) // own iteration count: deterministic per thread
		f.Halt()
		return f
	}

	t0 := worker("worker0", 0)
	t1 := worker("worker1", 1)
	bd.SetThreadEntries(t0, t1)
	return bd.Program()
}

func compileMT(t *testing.T, p *prog.Program, threshold int) *prog.Program {
	t.Helper()
	opts := compile.DefaultOptions()
	opts.Threshold = threshold
	res, err := compile.Compile(p, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res.Program
}

func TestMTBaselineCounter(t *testing.T) {
	p := mtCounterProgram(50)
	cfg := testConfig(64)
	cfg.Capri = false
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.MemSnapshot()[HeapBase+8]; got != 100 {
		t.Errorf("shared counter = %d, want 100", got)
	}
	if got := m.MemSnapshot()[HeapBase]; got != 0 {
		t.Errorf("lock word = %d, want 0 (released)", got)
	}
}

func TestMTCapriCounter(t *testing.T) {
	cp := compileMT(t, mtCounterProgram(50), 32)
	m, err := New(cp, testConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.MemSnapshot()[HeapBase+8]; got != 100 {
		t.Errorf("shared counter = %d, want 100", got)
	}
	// NVM converged.
	if got := m.NVMSnapshot()[HeapBase+8]; got != 100 {
		t.Errorf("NVM counter = %d, want 100", got)
	}
}

func TestMTCrashRecoverySweep(t *testing.T) {
	// The flagship multi-threaded property: crash both threads anywhere,
	// recover, resume — the shared counter and private arrays must match the
	// golden run, with no conflicting cross-core undo.
	src := mtCounterProgram(30)
	cp := compileMT(t, src, 16)

	mg, err := New(cp, testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Run(); err != nil {
		t.Fatal(err)
	}
	goldenCounter := mg.MemSnapshot()[HeapBase+8]
	goldenOut0 := mg.Output(0)
	goldenOut1 := mg.Output(1)
	goldenPriv := map[uint64]uint64{}
	for i := uint64(0); i < 30; i++ {
		a1 := HeapBase + 4096 + i*8
		a2 := HeapBase + 8192 + i*8
		goldenPriv[a1] = mg.MemSnapshot()[a1]
		goldenPriv[a2] = mg.MemSnapshot()[a2]
	}
	total := mg.Instret()

	step := total/53 + 1
	for crashAt := uint64(1); crashAt < total; crashAt += step {
		m, _ := New(cp, testConfig(16))
		if err := m.RunUntil(crashAt); err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
		if m.Done() {
			break
		}
		img, err := m.Crash()
		if err != nil {
			t.Fatal(err)
		}
		r, rep, err := Recover(img)
		if err != nil {
			t.Fatalf("crash@%d recover: %v", crashAt, err)
		}
		if rep.ConflictingUndo != 0 {
			t.Errorf("crash@%d: %d conflicting cross-core undos (DRF program!)",
				crashAt, rep.ConflictingUndo)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("crash@%d resume: %v", crashAt, err)
		}
		if got := r.MemSnapshot()[HeapBase+8]; got != goldenCounter {
			t.Errorf("crash@%d: counter = %d, want %d", crashAt, got, goldenCounter)
		}
		if !reflect.DeepEqual(r.Output(0), goldenOut0) || !reflect.DeepEqual(r.Output(1), goldenOut1) {
			t.Errorf("crash@%d: outputs %v/%v, want %v/%v",
				crashAt, r.Output(0), r.Output(1), goldenOut0, goldenOut1)
		}
		for a, v := range goldenPriv {
			if got := r.MemSnapshot()[a]; got != v {
				t.Errorf("crash@%d: mem[%#x] = %d, want %d", crashAt, a, got, v)
			}
		}
	}
}

func TestMTAtomicAddProgram(t *testing.T) {
	// Lock-free shared accumulation through fetch-and-add, crashed and
	// recovered: atomics commit atomically with their region, so the counter
	// can never double-count.
	bd := prog.NewBuilder("amo")
	worker := func(name string, tid int64) *prog.FuncBuilder {
		f := bd.Func(name)
		entry := f.Block()
		header := f.Block()
		body := f.Block()
		exit := f.Block()

		f.SetBlock(entry)
		f.MovI(isa.SP, int64(StackBase(int(tid))))
		f.MovI(8, 0)
		f.MovI(9, 25)
		f.MovI(10, int64(HeapBase)+64)
		f.MovI(11, 1)
		f.Br(header)
		f.SetBlock(header)
		f.BrIf(8, isa.CondGE, 9, exit, body)
		f.SetBlock(body)
		f.AtomicAdd(12, 10, 0, 11)
		f.AddI(8, 8, 1)
		f.Br(header)
		f.SetBlock(exit)
		f.Emit(8)
		f.Halt()
		return f
	}
	bd.SetThreadEntries(worker("w0", 0), worker("w1", 1))
	cp := compileMT(t, bd.Program(), 16)

	mg, _ := New(cp, testConfig(16))
	if err := mg.Run(); err != nil {
		t.Fatal(err)
	}
	if got := mg.MemSnapshot()[HeapBase+64]; got != 50 {
		t.Fatalf("golden counter = %d, want 50", got)
	}
	total := mg.Instret()

	step := total/37 + 1
	for crashAt := uint64(1); crashAt < total; crashAt += step {
		m, _ := New(cp, testConfig(16))
		if err := m.RunUntil(crashAt); err != nil {
			t.Fatal(err)
		}
		if m.Done() {
			break
		}
		img, _ := m.Crash()
		r, rep, err := Recover(img)
		if err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
		if rep.ConflictingUndo != 0 {
			t.Errorf("crash@%d: conflicting undos", crashAt)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("crash@%d resume: %v", crashAt, err)
		}
		if got := r.MemSnapshot()[HeapBase+64]; got != 50 {
			t.Errorf("crash@%d: counter = %d, want 50 (no double counting)", crashAt, got)
		}
	}
}

func TestMTLockMutualExclusion(t *testing.T) {
	// With the lock protocol, the interleaved increments must never lose an
	// update even under heavy contention (single increment per critical
	// section, many iterations).
	cp := compileMT(t, mtCounterProgram(200), 64)
	m, _ := New(cp, testConfig(64))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.MemSnapshot()[HeapBase+8]; got != 400 {
		t.Errorf("counter = %d, want 400", got)
	}
}
