// Package machine assembles the whole Capri system (paper Figure 1): N
// out-of-order-approximated cores with private L1 data caches and front-end
// proxy buffers, a shared L2, per-core proxy paths into back-end proxy
// buffers at the integrated memory controller, a direct-mapped DRAM cache,
// and NVM main memory. It executes compiled programs functionally (so crash
// recovery can be validated end to end) while accounting cycles with an
// execution-driven timing model (so the paper's figures can be regenerated).
//
// Power failure can be injected at any instruction boundary; the machine then
// yields a CrashImage containing exactly the state the paper's failure model
// preserves: NVM plus the battery-backed proxy buffers. The recovery package
// turns a CrashImage back into a runnable machine.
package machine

import "fmt"

// DispatchMode selects the execution core. Both cores are cycle-for-cycle
// and event-for-event identical — the dispatch differential suite proves it —
// so the mode only changes simulator speed, never simulated behavior.
type DispatchMode int

// Dispatch modes.
const (
	// DispatchThreaded (the zero value, hence the default) runs the
	// pre-decoded threaded-code core: each basic block is translated once
	// into a slice of specialized op thunks with fused superinstructions
	// (see decode.go).
	DispatchThreaded DispatchMode = iota
	// DispatchSwitch runs the reference per-instruction switch core
	// (exec.go). It is kept as the semantic baseline the threaded core is
	// differentially tested against, and as the single-step engine the
	// threaded core itself uses near crash points and interior resume
	// points.
	DispatchSwitch
)

// String names the dispatch mode for reports (BENCH_sim.json).
func (d DispatchMode) String() string {
	switch d {
	case DispatchThreaded:
		return "threaded"
	case DispatchSwitch:
		return "switch"
	}
	return fmt.Sprintf("dispatch(%d)", int(d))
}

// Config describes the simulated hardware. Cycle quantities assume the 2 GHz
// clock of Table 1 (1 ns = 2 cycles).
type Config struct {
	// Cores is the number of hardware threads (Table 1: 8-way OoO, 8 cores).
	Cores int

	// Dispatch selects the execution core (simulator-speed knob only; the
	// zero value is the threaded-code core). It is json-omitted at the
	// default so crash images round-trip unchanged.
	Dispatch DispatchMode `json:",omitempty"`

	// Capri enables the proxy-buffer persistence machinery. With it false
	// the machine is the volatile baseline all results are normalized to.
	Capri bool

	// Threshold is the compiler store threshold; it sizes the back-end proxy
	// buffer (capacity == threshold entries, §5.2.2).
	Threshold int

	// FrontEndEntries sizes the front-end proxy buffer (Table 1: 32).
	FrontEndEntries int

	// Cache geometry.
	L1Size   uint64 // bytes (Table 1: 32 KB)
	L1Ways   int    // 8
	L2Size   uint64 // bytes (16 MB shared)
	L2Ways   int    // 16
	DRAMSize uint64 // DRAM cache bytes (8 GB; scaled down in tests)

	// Latencies in cycles.
	L1Hit    uint64 // 2 ns = 4
	L2Hit    uint64 // 20 ns = 40
	DRAMHit  uint64 // ~50 ns = 100
	NVMRead  uint64 // 150 ns = 300
	NVMWrite uint64 // per-64B write-queue occupancy (bandwidth, not latency)
	// NVMEntryWrite is the write-queue occupancy of one phase-2 redo drain
	// (a word-granularity proxy entry, much smaller than a 64B writeback).
	NVMEntryWrite uint64

	// Proxy path (Table 1: 20 ns latency).
	ProxyLatency  uint64 // 40 cycles
	ProxyInterval uint64 // cycles between entry departures (bandwidth)

	// LoadOverlap divides post-L1 load stall cycles, standing in for the
	// memory-level parallelism an 8-way OoO core extracts.
	LoadOverlap uint64

	// LockRetry is the back-off in cycles between spin-lock attempts.
	LockRetry uint64

	// MaxSteps bounds total scheduler steps (deadlock/runaway guard).
	MaxSteps uint64

	// RefStore backs the architectural memory and NVM with the map-based
	// reference implementation instead of the paged flat-array store. It is
	// for differential testing and perf-baseline measurement only: simulation
	// semantics are identical, only simulator speed differs.
	RefStore bool `json:",omitempty"`

	// NoQuantumExt disables the interleaving-safe quantum extension of the
	// threaded core's multi-core scheduler (quantum.go, DESIGN §4i): with it
	// true, lockstep cores single-step on the strict per-instruction reference
	// schedule. Simulator-speed knob only — the extension leaves every
	// simulated observable identical (differentially tested).
	NoQuantumExt bool `json:",omitempty"`

	// Ablation switches (design-choice studies; all false in the paper's
	// configuration). Correctness is preserved under every combination —
	// the NVM sequence guard is the formal backstop — only performance and
	// NVM write traffic change.
	//
	// NoScanInvalidate disables the back-end writeback scan and the proxy
	// path's monitoring window (§5.3.2): phase 2 then re-writes data that
	// dirty writebacks already persisted.
	NoScanInvalidate bool
	// NoElision emits boundary entries even for store-free regions
	// (disables the §5.2.1 traffic optimization).
	NoElision bool
	// NoFrontMerge disables same-region merging in the front-end proxy.
	NoFrontMerge bool
	// NoBackMerge disables same-region merging in the back-end proxy.
	NoBackMerge bool
}

// DefaultConfig returns the paper's Table 1 configuration (DRAM cache scaled
// to 64 MB — the simulated working sets are scaled down equivalently).
func DefaultConfig() Config {
	return Config{
		Cores:           8,
		Capri:           true,
		Threshold:       256,
		FrontEndEntries: 32,
		L1Size:          32 << 10,
		L1Ways:          8,
		L2Size:          16 << 20,
		L2Ways:          16,
		DRAMSize:        64 << 20,
		L1Hit:           4,
		L2Hit:           40,
		DRAMHit:         100,
		NVMRead:         300,
		NVMWrite:        32, // ≈ 4 GB/s of 64B writes at 2 GHz
		NVMEntryWrite:   16, // redo line drain through the per-bank WPQ
		ProxyLatency:    40,
		ProxyInterval:   8,
		LoadOverlap:     4,
		LockRetry:       50,
		MaxSteps:        2_000_000_000,
	}
}

// Validate checks the configuration for usability.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("machine: cores = %d", c.Cores)
	}
	if c.Capri {
		if c.Threshold <= 0 {
			return fmt.Errorf("machine: threshold = %d", c.Threshold)
		}
		if c.FrontEndEntries <= 0 {
			return fmt.Errorf("machine: front-end entries = %d", c.FrontEndEntries)
		}
	}
	if c.L1Size == 0 || c.L2Size == 0 || c.L1Ways <= 0 || c.L2Ways <= 0 {
		return fmt.Errorf("machine: bad cache geometry")
	}
	if c.LoadOverlap == 0 {
		return fmt.Errorf("machine: LoadOverlap must be >= 1")
	}
	if c.Dispatch != DispatchThreaded && c.Dispatch != DispatchSwitch {
		return fmt.Errorf("machine: unknown dispatch mode %d", int(c.Dispatch))
	}
	return nil
}

// Table1 renders the configuration in the shape of the paper's Table 1.
func (c Config) Table1() string {
	return fmt.Sprintf(`Simulator configuration (paper Table 1)
Processor          %d cores, 8-way-OoO-approximated, 2 GHz
L1 D-Cache         %d KB, %d-way, private, %d-cycle hit
L2 Cache           %d MB, %d-way, shared, %d-cycle hit
DRAM cache         %d MB, direct-mapped, 64 B blocks, %d-cycle hit
NVM                read %d cycles, write-queue occupancy %d cycles/64B
Proxy path         %d-cycle latency, 1 entry / %d cycles
Front-end proxy    %d entries
Back-end proxy     %d entries per core (== store threshold)
`,
		c.Cores,
		c.L1Size>>10, c.L1Ways, c.L1Hit,
		c.L2Size>>20, c.L2Ways, c.L2Hit,
		c.DRAMSize>>20, c.DRAMHit,
		c.NVMRead, c.NVMWrite,
		c.ProxyLatency, c.ProxyInterval,
		c.FrontEndEntries,
		c.Threshold)
}
