package machine

import (
	"capri/internal/audit"
	"capri/internal/isa"
	"capri/internal/mem"
	"capri/internal/prog"
	"capri/internal/proxy"
)

// Fixed per-opcode issue costs in cycles (beyond memory stalls).
const (
	costALU    = 1
	costMul    = 3
	costDiv    = 12
	costBranch = 1
	costStore  = 1
)

// step executes one instruction on core c, advancing its cycle count and PC.
// Spin-lock retries consume cycles without retiring an instruction.
func (m *Machine) step(c *core) {
	if c.blkFn != c.fn || c.blkId != c.blk {
		c.blkInsts = m.prog.Funcs[c.fn].Blocks[c.blk].Insts
		c.blkFn, c.blkId = c.fn, c.blk
		// The decoded-block cache is keyed by the same (blkFn, blkId) guard;
		// it must never survive a block switch it did not see.
		c.dblk = nil
	}
	if c.idx >= len(c.blkInsts) {
		m.fatalf("core %d: PC f%d b%d idx %d beyond block", c.id, c.fn, c.blk, c.idx)
		return
	}
	in := &c.blkInsts[c.idx]
	// Provisionally count the instruction into the open region's body. Every
	// path below that does NOT retire the instruction (front-end stalls, lock
	// spins) backs this out, and boundary instructions are excluded outright:
	// RegionInsts/sumInsts measure the region's retired body, not dispatch
	// attempts or the delimiter itself.
	if in.Op != isa.OpBoundary {
		c.curInsts++
	}

	advance := true
	switch in.Op {
	case isa.OpAdd:
		c.regs[in.Rd] = c.regs[in.Ra] + c.regs[in.Rb]
		c.tick(CauseExec, costALU)
	case isa.OpSub:
		c.regs[in.Rd] = c.regs[in.Ra] - c.regs[in.Rb]
		c.tick(CauseExec, costALU)
	case isa.OpMul:
		c.regs[in.Rd] = c.regs[in.Ra] * c.regs[in.Rb]
		c.tick(CauseExec, costMul)
	case isa.OpDiv:
		if d := c.regs[in.Rb]; d == 0 {
			c.regs[in.Rd] = 0
		} else {
			c.regs[in.Rd] = uint64(int64(c.regs[in.Ra]) / int64(d))
		}
		c.tick(CauseExec, costDiv)
	case isa.OpRem:
		if d := c.regs[in.Rb]; d == 0 {
			c.regs[in.Rd] = 0
		} else {
			c.regs[in.Rd] = uint64(int64(c.regs[in.Ra]) % int64(d))
		}
		c.tick(CauseExec, costDiv)
	case isa.OpAnd:
		c.regs[in.Rd] = c.regs[in.Ra] & c.regs[in.Rb]
		c.tick(CauseExec, costALU)
	case isa.OpOr:
		c.regs[in.Rd] = c.regs[in.Ra] | c.regs[in.Rb]
		c.tick(CauseExec, costALU)
	case isa.OpXor:
		c.regs[in.Rd] = c.regs[in.Ra] ^ c.regs[in.Rb]
		c.tick(CauseExec, costALU)
	case isa.OpShl:
		c.regs[in.Rd] = c.regs[in.Ra] << (c.regs[in.Rb] & 63)
		c.tick(CauseExec, costALU)
	case isa.OpShr:
		c.regs[in.Rd] = c.regs[in.Ra] >> (c.regs[in.Rb] & 63)
		c.tick(CauseExec, costALU)
	case isa.OpMin:
		if int64(c.regs[in.Ra]) < int64(c.regs[in.Rb]) {
			c.regs[in.Rd] = c.regs[in.Ra]
		} else {
			c.regs[in.Rd] = c.regs[in.Rb]
		}
		c.tick(CauseExec, costALU)
	case isa.OpMax:
		if int64(c.regs[in.Ra]) > int64(c.regs[in.Rb]) {
			c.regs[in.Rd] = c.regs[in.Ra]
		} else {
			c.regs[in.Rd] = c.regs[in.Rb]
		}
		c.tick(CauseExec, costALU)
	case isa.OpAddI:
		c.regs[in.Rd] = c.regs[in.Ra] + uint64(in.Imm)
		c.tick(CauseExec, costALU)
	case isa.OpMulI:
		c.regs[in.Rd] = c.regs[in.Ra] * uint64(in.Imm)
		c.tick(CauseExec, costMul)
	case isa.OpAndI:
		c.regs[in.Rd] = c.regs[in.Ra] & uint64(in.Imm)
		c.tick(CauseExec, costALU)
	case isa.OpShlI:
		c.regs[in.Rd] = c.regs[in.Ra] << (uint64(in.Imm) & 63)
		c.tick(CauseExec, costALU)
	case isa.OpShrI:
		c.regs[in.Rd] = c.regs[in.Ra] >> (uint64(in.Imm) & 63)
		c.tick(CauseExec, costALU)
	case isa.OpMovI:
		c.regs[in.Rd] = uint64(in.Imm)
		c.tick(CauseExec, costALU)
	case isa.OpMov:
		c.regs[in.Rd] = c.regs[in.Ra]
		c.tick(CauseExec, costALU)
	case isa.OpSel:
		if c.regs[in.Ra] != 0 {
			c.regs[in.Rd] = c.regs[in.Rb]
		} else {
			c.regs[in.Rd] = c.regs[in.Rc]
		}
		c.tick(CauseExec, costALU)

	case isa.OpLoad:
		addr := c.regs[in.Ra] + uint64(in.Imm)
		c.regs[in.Rd] = m.mem.Load(addr)
		m.chargeLoad(c, addr)

	case isa.OpStore:
		addr := c.regs[in.Ra] + uint64(in.Imm)
		if !m.doStore(c, addr, c.regs[in.Rb]) {
			c.curInsts--
			return // stalled on the front-end proxy; retry
		}
		c.dynStores++
		c.curStores++

	case isa.OpBr:
		c.tick(CauseExec, costBranch)
		c.blk, c.idx = int(in.Target), 0
		c.instret++
		return
	case isa.OpBrIf:
		c.tick(CauseExec, costBranch)
		if in.Cond.Eval(c.regs[in.Ra], c.regs[in.Rb]) {
			c.blk = int(in.Target)
		} else {
			c.blk = int(in.Else)
		}
		c.idx = 0
		c.instret++
		return

	case isa.OpCall:
		// Push the return token through the persisted stack, then jump.
		c.regs[isa.SP] -= mem.WordSize
		if !m.doStore(c, c.regs[isa.SP], uint64(in.Imm)) {
			c.regs[isa.SP] += mem.WordSize // undo; retry whole instruction
			c.curInsts--
			return
		}
		c.dynStores++
		c.curStores++
		c.tick(CauseExec, costBranch)
		callee := m.prog.Funcs[in.Callee]
		c.fn, c.blk, c.idx = int(in.Callee), callee.Entry, 0
		c.instret++
		return
	case isa.OpRet:
		tok := m.mem.Load(c.regs[isa.SP])
		m.chargeLoad(c, c.regs[isa.SP])
		c.regs[isa.SP] += mem.WordSize
		if tok >= uint64(len(m.prog.RetSites)) {
			m.fatalf("core %d: corrupt return token %d", c.id, tok)
			return
		}
		rs := m.prog.RetSites[tok]
		c.fn, c.blk, c.idx = rs.Func, rs.Block, rs.Index
		c.instret++
		return
	case isa.OpHalt:
		if !m.commitRegion(c, int32(c.fn), int32(c.blk), int32(c.idx), true, true) {
			c.curInsts--
			return // front-end full; retry
		}
		c.halted = true
		m.haltedCores++
		c.instret++
		c.endRegionStats()
		return

	case isa.OpFence:
		// Ordering is implicit in this in-order-retire functional model; a
		// fence is a region boundary (compiler) plus a pipeline bubble.
		c.tick(CauseFence, 4)

	case isa.OpAtomicAdd:
		addr := c.regs[in.Ra] + uint64(in.Imm)
		old := m.mem.Load(addr)
		if !m.doSyncStore(c, in, addr, old+c.regs[in.Rb], in.Rd, old) {
			c.curInsts--
			return
		}
	case isa.OpAtomicCAS:
		addr := c.regs[in.Ra] + uint64(in.Imm)
		old := m.mem.Load(addr)
		if old == c.regs[in.Rb] {
			if !m.doSyncStore(c, in, addr, c.regs[in.Rc], in.Rd, old) {
				c.curInsts--
				return
			}
		} else {
			c.regs[in.Rd] = old
			c.tick(CauseSync, m.cfg.L1Hit+costALU)
		}
	case isa.OpLock:
		addr := c.regs[in.Ra] + uint64(in.Imm)
		if m.mem.Load(addr) != 0 {
			// Spin: consume back-off cycles, do not retire.
			c.stall(CauseLockSpin, c.cycle+m.cfg.LockRetry)
			c.curInsts--
			return
		}
		if !m.doSyncStore(c, in, addr, 1, 0, 0) {
			c.curInsts--
			return
		}
	case isa.OpUnlock:
		addr := c.regs[in.Ra] + uint64(in.Imm)
		if !m.doSyncStore(c, in, addr, 0, 0, 0) {
			c.curInsts--
			return
		}
	case isa.OpBarrier:
		// Reserved: multi-threaded workloads build barriers from atomics so
		// they are recoverable; a bare OpBarrier acts as a fence.
		c.tick(CauseFence, 4)

	case isa.OpEmit:
		c.stagedEmits = append(c.stagedEmits, c.regs[in.Ra])
		c.tick(CauseExec, costALU)

	case isa.OpBoundary:
		// Commit the region that just ended; the new region resumes after
		// this instruction. Boundaries serialize the store buffer into the
		// front-end proxy, costing a couple of pipeline slots.
		if !m.commitRegion(c, int32(c.fn), int32(c.blk), int32(c.idx+1), false, false) {
			return // front-end full; retry
		}
		c.dynBounds++
		c.endRegionStats()
		c.tick(CauseBoundary, 2*costALU)

	case isa.OpCkpt:
		if m.cfg.Capri {
			c.front.StageCkpt(in.Ra, c.regs[in.Ra])
		}
		c.dynCkpts++
		c.curStores++
		c.tick(CauseCkpt, 2*costStore) // register read + staging-storage port

	default:
		m.fatalf("core %d: cannot execute %s", c.id, in)
		return
	}

	if advance {
		c.idx++
		c.instret++
	}
}

// doStore performs a regular store: architectural update, proxy entry
// (undo+redo), cache timing. Returns false if the front-end proxy is full —
// the caller must leave the PC unchanged so the instruction retries after
// the drain catches up.
func (m *Machine) doStore(c *core, addr uint64, val uint64) bool {
	addr = mem.WordAddr(addr)
	if m.cfg.Capri {
		m.service(c)
		undo := m.mem.Load(addr)
		m.seq++
		mergesBefore := c.front.Merges
		if !c.front.AddStore(addr, undo, val, m.seq) {
			// Stall until the next path departure slot frees an entry.
			stall := c.path.Backlog() + m.cfg.ProxyInterval
			if stall <= c.cycle {
				stall = c.cycle + m.cfg.ProxyInterval
			}
			c.stall(m.frontStallCause(c), stall)
			m.seq-- // the store did not happen
			if m.tracer != nil {
				m.tracer.TraceStall(c.id, c.cycle)
			}
			if m.tap != nil {
				m.tap.Tap(audit.Event{Kind: audit.EvStall, Core: int32(c.id), Cycle: c.cycle})
			}
			return false
		}
		c.regionStores = true
		// New front entry: it cannot depart before the next departure slot,
		// so folding that slot into the horizon keeps it exact.
		if b := c.path.Backlog(); b < c.svcAt {
			c.svcAt = b
		}
		if m.tap != nil {
			m.tapStore(c, addr, val, undo, c.front.Merges > mergesBefore)
		}
		m.mem.Store(addr, val)
		c.tick(CauseStore, m.storeAccess(c, addr, m.seq)+costStore)
		return true
	}
	m.seq++
	m.mem.Store(addr, val)
	c.tick(CauseStore, m.storeAccess(c, addr, m.seq)+costStore)
	return true
}

// doSyncStore executes the memory write of a synchronization instruction
// (atomic add/CAS, lock, unlock) and commits it atomically with its own
// region: the data entry and the commit marker enter the non-volatile
// front-end as one indivisible step, so a crash can never observe the sync's
// effect without its commit (see DESIGN.md on cross-core recovery).
//
// rd receives old when the instruction defines a register (atomics); the
// defined value is staged as a checkpoint inside the same commit so recovery
// resuming right after the sync sees it.
func (m *Machine) doSyncStore(c *core, in *isa.Inst, addr, newVal uint64, rd isa.Reg, old uint64) bool {
	addr = mem.WordAddr(addr)
	_ = rd // the defining register is recovered via in.Def()
	if !m.cfg.Capri {
		m.seq++
		m.mem.Store(addr, newVal)
		if d, ok := in.Def(); ok {
			c.regs[d] = old
		}
		c.tick(CauseSync, m.storeAccess(c, addr, m.seq)+costDiv)
		return true
	}
	m.service(c)
	// Need space for the data entry and the marker.
	if c.front.Len()+2 > c.front.Capacity {
		stall := c.path.Backlog() + 2*m.cfg.ProxyInterval
		if stall <= c.cycle {
			stall = c.cycle + 2*m.cfg.ProxyInterval
		}
		c.stall(m.frontStallCause(c), stall)
		return false
	}
	undo := m.mem.Load(addr)
	m.seq++
	mergesBefore := c.front.Merges
	if !c.front.AddStore(addr, undo, newVal, m.seq) {
		m.seq--
		return false
	}
	c.regionStores = true
	if b := c.path.Backlog(); b < c.svcAt {
		c.svcAt = b // new front entry: fold in the next departure slot
	}
	if m.tap != nil {
		m.tapStore(c, addr, newVal, undo, c.front.Merges > mergesBefore)
	}
	m.mem.Store(addr, newVal)
	c.tick(CauseSync, m.storeAccess(c, addr, m.seq)+costDiv)
	c.dynStores++
	c.curStores++

	if d, ok := in.Def(); ok {
		c.regs[d] = old
		c.front.StageCkpt(d, old)
	}
	// Stage the detectability descriptor: it travels with the boundary entry
	// and lands in the core's recovery record when the boundary drains, so a
	// recovered image always proves the sync either complete (descriptor
	// present, write persisted at Seq) or absent (neither survives).
	c.front.StageSync(proxy.SyncRec{
		Op: uint8(in.Op), Addr: addr, Old: old, New: newVal, Seq: m.seq,
	})
	if m.tap != nil {
		// The sync's persist-order event, emitted before its commit marker:
		// the cross-core audit rules require the very next commit on this
		// core to seal this region (audit package, sync-unordered-commit).
		m.tap.Tap(audit.Event{
			Kind: audit.EvSync, Core: int32(c.id), Cycle: c.cycle,
			Addr: addr, Seq: m.seq, Region: c.regionSeq + 1, Val: newVal, Val2: old,
		})
	}
	if Mutations.SyncNoCommit {
		// Seeded protocol corruption (fault_test mutation campaigns): the sync
		// write stays in the open region instead of committing atomically with
		// its own marker — the dropped-fence-ordering bug the auditor's
		// sync-unordered-commit rule must catch.
		return true
	}
	// Atomic commit: the marker follows the data entry indivisibly; resume
	// point is the instruction after the sync.
	if !m.commitRegion(c, int32(c.fn), int32(c.blk), int32(c.idx+1), true, false) {
		m.fatalf("core %d: sync commit failed with reserved space", c.id)
		return false
	}
	c.endRegionStats()
	return true
}

// commitRegion emits the boundary (commit marker) for the region that just
// ended. Returns false when the front-end is full and the caller must retry.
func (m *Machine) commitRegion(c *core, fn, blk, idx int32, force, halt bool) bool {
	if !m.cfg.Capri {
		c.stagedEmits = commitEmitsDirect(c, c.stagedEmits)
		return true
	}
	m.service(c)
	c.regionSeq++
	ok, elided := c.front.AddBoundary(c.regionSeq, fn, blk, idx, c.regs[isa.SP],
		c.stagedEmits, c.regionStores, force || len(c.stagedEmits) > 0, halt)
	if !ok {
		c.regionSeq--
		stall := c.path.Backlog() + m.cfg.ProxyInterval
		if stall <= c.cycle {
			stall = c.cycle + m.cfg.ProxyInterval
		}
		c.stall(m.frontStallCause(c), stall)
		return false
	}
	c.stagedEmits = c.stagedEmits[:0]
	c.regionStores = false
	if b := c.path.Backlog(); b < c.svcAt {
		c.svcAt = b // new (or elided) boundary: fold in the next departure slot
	}
	if m.metrics != nil {
		m.sampleBoundary(c, elided)
	}
	if BoundaryHook != nil {
		BoundaryHook(c.id, c.regionSeq, c.regs, fn, blk, idx)
	}
	if m.tracer != nil {
		m.tracer.TraceCommit(c.id, c.cycle, c.regionSeq)
	}
	if m.tap != nil {
		ev := audit.Event{Kind: audit.EvCommit, Core: int32(c.id), Cycle: c.cycle, Region: c.regionSeq}
		if elided {
			ev.Flags |= audit.FlagElided
		}
		if halt {
			ev.Flags |= audit.FlagHalt
		}
		m.tap.Tap(ev)
	}
	return true
}

// tapStore emits the EvStore provenance event for a store that just entered
// the front-end. The store belongs to the still-open region c.regionSeq+1.
func (m *Machine) tapStore(c *core, addr, redo, undo uint64, merged bool) {
	ev := audit.Event{
		Kind: audit.EvStore, Core: int32(c.id), Cycle: c.cycle,
		Addr: addr, Seq: m.seq, Region: c.regionSeq + 1, Val: redo, Val2: undo,
	}
	if merged {
		ev.Flags |= audit.FlagMerged
	}
	m.tap.Tap(ev)
}

// commitEmitsDirect moves staged emits straight to the output tape (baseline
// machine without persistence).
func commitEmitsDirect(c *core, emits []uint64) []uint64 {
	c.output = append(c.output, emits...)
	return emits[:0]
}

// endRegionStats closes the current dynamic region for Figures 10/11.
func (c *core) endRegionStats() {
	if c.curInsts == 0 && c.curStores == 0 {
		return
	}
	c.sumInsts += c.curInsts
	c.sumStores += c.curStores
	c.regionsEnded++
	c.curInsts = 0
	c.curStores = 0
}

// resumeAt positions a recovered core (used by the recovery package). The
// new PC may live in a different program generation than whatever the block
// caches hold, so both the block-inst cache and the pre-decoded thunk cache
// are invalidated here — stale decoded code must never execute after state is
// reinstalled.
func (c *core) resumeAt(rec CoreRecord) {
	c.regs = rec.Regs
	c.fn, c.blk, c.idx = int(rec.Fn), int(rec.Blk), int(rec.Idx)
	c.regionSeq = rec.Region
	c.halted = rec.Halted
	c.svcAt = 0 // recovered proxy state: recompute the horizon from scratch
	c.invalidateBlockCache()
}

// invalidateBlockCache drops the per-core current-block caches: the raw
// instruction slice the switch core reads and the decoded thunk run the
// threaded core dispatches. Both refresh lazily from m.prog on next dispatch.
func (c *core) invalidateBlockCache() {
	c.blkFn, c.blkId = -1, -1
	c.blkInsts = nil
	c.dblk = nil
}

// invalidateDecode drops every decoded-code cache in the machine: the shared
// per-program thunk cache and each core's current-block caches. Called when
// the loaded program is replaced; resumeAt covers the per-core half on
// recovery.
func (m *Machine) invalidateDecode() {
	m.dec = nil
	for _, c := range m.cores {
		c.invalidateBlockCache()
	}
}

// execSlice evaluates a recovery slice over a register file (paper §4.4.1's
// recovery block). Only re-executable instructions may appear.
func execSlice(regs *[isa.NumRegs]uint64, slice []isa.Inst) {
	for i := range slice {
		execOne(regs, &slice[i])
	}
}

// execOne evaluates one re-executable (register-local) instruction. It is the
// shared functional core of recovery-slice evaluation and the threaded
// dispatcher's fused ALU runs; non-re-executable opcodes are ignored.
func execOne(regs *[isa.NumRegs]uint64, in *isa.Inst) {
	switch in.Op {
	case isa.OpAdd:
		regs[in.Rd] = regs[in.Ra] + regs[in.Rb]
	case isa.OpSub:
		regs[in.Rd] = regs[in.Ra] - regs[in.Rb]
	case isa.OpMul:
		regs[in.Rd] = regs[in.Ra] * regs[in.Rb]
	case isa.OpDiv:
		if d := regs[in.Rb]; d == 0 {
			regs[in.Rd] = 0
		} else {
			regs[in.Rd] = uint64(int64(regs[in.Ra]) / int64(d))
		}
	case isa.OpRem:
		if d := regs[in.Rb]; d == 0 {
			regs[in.Rd] = 0
		} else {
			regs[in.Rd] = uint64(int64(regs[in.Ra]) % int64(d))
		}
	case isa.OpAnd:
		regs[in.Rd] = regs[in.Ra] & regs[in.Rb]
	case isa.OpOr:
		regs[in.Rd] = regs[in.Ra] | regs[in.Rb]
	case isa.OpXor:
		regs[in.Rd] = regs[in.Ra] ^ regs[in.Rb]
	case isa.OpShl:
		regs[in.Rd] = regs[in.Ra] << (regs[in.Rb] & 63)
	case isa.OpShr:
		regs[in.Rd] = regs[in.Ra] >> (regs[in.Rb] & 63)
	case isa.OpMin:
		if int64(regs[in.Ra]) < int64(regs[in.Rb]) {
			regs[in.Rd] = regs[in.Ra]
		} else {
			regs[in.Rd] = regs[in.Rb]
		}
	case isa.OpMax:
		if int64(regs[in.Ra]) > int64(regs[in.Rb]) {
			regs[in.Rd] = regs[in.Ra]
		} else {
			regs[in.Rd] = regs[in.Rb]
		}
	case isa.OpAddI:
		regs[in.Rd] = regs[in.Ra] + uint64(in.Imm)
	case isa.OpMulI:
		regs[in.Rd] = regs[in.Ra] * uint64(in.Imm)
	case isa.OpAndI:
		regs[in.Rd] = regs[in.Ra] & uint64(in.Imm)
	case isa.OpShlI:
		regs[in.Rd] = regs[in.Ra] << (uint64(in.Imm) & 63)
	case isa.OpShrI:
		regs[in.Rd] = regs[in.Ra] >> (uint64(in.Imm) & 63)
	case isa.OpMovI:
		regs[in.Rd] = uint64(in.Imm)
	case isa.OpMov:
		regs[in.Rd] = regs[in.Ra]
	case isa.OpSel:
		if regs[in.Ra] != 0 {
			regs[in.Rd] = regs[in.Rb]
		} else {
			regs[in.Rd] = regs[in.Rc]
		}
	}
}

// aluCost returns the fixed issue cost of a re-executable instruction.
func aluCost(op isa.Op) uint64 {
	switch op {
	case isa.OpMul, isa.OpMulI:
		return costMul
	case isa.OpDiv, isa.OpRem:
		return costDiv
	}
	return costALU
}

// blockOf is a small helper for recovery.
func (m *Machine) blockOf(fn, blk int32) *prog.Block {
	return m.prog.Funcs[fn].Blocks[blk]
}
