package machine

import (
	"math/rand"
	"testing"
)

// TestLineTableDedup checks the epoch-stamped scratch set against a plain map
// across epochs, growth, and the epoch-wrap slow path.
func TestLineTableDedup(t *testing.T) {
	var lt lineTable
	rng := rand.New(rand.NewSource(7))
	for epoch := 0; epoch < 50; epoch++ {
		lt.reset()
		ref := make(map[uint64]bool)
		// Region sizes sweep past the initial 128-slot table (load factor
		// 1/2) so growth reinsertes mid-epoch at least once.
		n := 8 + epoch*4
		for i := 0; i < n; i++ {
			line := uint64(rng.Intn(n)) * 64
			want := !ref[line]
			ref[line] = true
			if got := lt.add(line); got != want {
				t.Fatalf("epoch %d: add(%#x) = %v, want %v", epoch, line, got, want)
			}
		}
		if lt.n != len(ref) {
			t.Fatalf("epoch %d: n = %d, want %d distinct", epoch, lt.n, len(ref))
		}
	}
	// Epoch counter wrap: stale stamps must not alias the fresh epoch.
	lt.epoch = ^uint32(0) - 1
	lt.reset() // -> ^uint32(0)
	if !lt.add(64) || lt.add(64) {
		t.Fatal("pre-wrap epoch: dedup broken")
	}
	lt.reset() // wraps; slow path clears slots
	if lt.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", lt.epoch)
	}
	if !lt.add(64) {
		t.Fatal("post-wrap epoch: line from 4G epochs ago still counted as present")
	}
}

// TestScheduleDrainScratchZeroAlloc pins the steady-state allocation contract:
// once the table has grown to the largest region it has seen, a full
// reset+dedup pass over more distinct lines than the old linear-scan scheme
// handled (48) allocates nothing.
func TestScheduleDrainScratchZeroAlloc(t *testing.T) {
	var lt lineTable
	const lines = 200 // > 48, and past one growth of the 128-slot table
	// Warm: grow to capacity for this region size.
	lt.reset()
	for i := 0; i < lines; i++ {
		lt.add(uint64(i) * 64)
	}
	allocs := testing.AllocsPerRun(100, func() {
		lt.reset()
		for i := 0; i < lines; i++ {
			lt.add(uint64(i) * 64)
			lt.add(uint64(i) * 64) // duplicate probe, the common drain case
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state drain dedup allocates: %v allocs/run, want 0", allocs)
	}
}

// BenchmarkScheduleDrain measures the drain scheduler's dedup scratch at a
// threshold-256 region shape: 256 word entries, two words per 64B line, so
// half the probes are duplicate hits. ReportAllocs pins the zero-alloc drain.
func BenchmarkScheduleDrain(b *testing.B) {
	var lt lineTable
	addrs := make([]uint64, 256)
	for i := range addrs {
		addrs[i] = uint64(i/2) * 64 // two entries per line
	}
	// One pass outside the timer grows the table to its steady-state size.
	lt.reset()
	for _, a := range addrs {
		lt.add(a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lt.reset()
		writes := 0
		for _, a := range addrs {
			if lt.add(a) {
				writes++
			}
		}
		if writes != 128 {
			b.Fatalf("distinct lines = %d, want 128", writes)
		}
	}
}
