package machine

import (
	"fmt"

	"capri/internal/audit"
	"capri/internal/mem"
)

// This file is the machine half of the hardware fault model (DESIGN.md §4f):
// torn NVM line writes at power failure, transient NVM write errors during
// phase-2 drains (bounded retry-with-backoff), and the hooks the fault
// package's campaign engine drives. Everything here is inert until
// ArmFaults is called — the unarmed hot path pays one nil check at the two
// cold(ish) points that consult the fault state (controller writeback and
// drain completion), and nothing per instruction.

// DefaultJournalDepth is the in-flight line-write window modeled as tearable
// at a power failure: the newest N dirty-line writebacks are considered
// potentially incomplete (still crossing the WPQ) when power fails.
const DefaultJournalDepth = 16

// DefaultRetryMax is the drain-retry budget before the machine degrades to a
// hard stall with a structured DrainExhaustedError.
const DefaultRetryMax = 8

// FaultConfig arms the machine's fault model.
type FaultConfig struct {
	// JournalDepth is how many recent dirty-line writebacks stay tearable
	// (<= 0: DefaultJournalDepth).
	JournalDepth int
	// DrainError, when non-nil, is consulted once per phase-2 drain
	// completion attempt: returning true models a transient NVM write error —
	// the drain is re-booked after an exponential backoff. core/region
	// identify the drain; attempt counts prior failures of the same drain.
	DrainError func(core int, region uint64, attempt int) bool
	// RetryMax bounds consecutive failures of one drain before the machine
	// stops with a DrainExhaustedError (<= 0: DefaultRetryMax).
	RetryMax int
	// RetryBackoff is the base backoff in cycles, doubled per failed attempt
	// (<= 0: the config's NVMWrite latency).
	RetryBackoff uint64
}

// faultState is the armed fault model: the tearable-writeback journal plus
// the drain-error hook parameters.
type faultState struct {
	journalDepth int
	journal      []tearableLine // ring, oldest first once full
	journalNext  int
	journalLen   int
	drainError   func(core int, region uint64, attempt int) bool
	retryMax     int
	retryBackoff uint64
}

// tearableLine is one journaled dirty-line writeback: the guard-passed word
// writes it performed, with enough provenance to revert a suffix soundly.
type tearableLine struct {
	line  uint64
	cycle uint64
	seq   uint64
	words []tornWord
}

// tornWord is one applied word write of a journaled line: the NVM word it
// replaced (old) and the word it installed (new).
type tornWord struct {
	addr uint64
	old  mem.Word
	new  mem.Word
}

// ArmFaults installs the fault model. Passing the zero FaultConfig arms the
// torn-write journal with defaults and no drain errors.
func (m *Machine) ArmFaults(fc FaultConfig) {
	fs := &faultState{
		journalDepth: fc.JournalDepth,
		drainError:   fc.DrainError,
		retryMax:     fc.RetryMax,
		retryBackoff: fc.RetryBackoff,
	}
	if fs.journalDepth <= 0 {
		fs.journalDepth = DefaultJournalDepth
	}
	if fs.retryMax <= 0 {
		fs.retryMax = DefaultRetryMax
	}
	if fs.retryBackoff == 0 {
		fs.retryBackoff = m.cfg.NVMWrite
	}
	fs.journal = make([]tearableLine, fs.journalDepth)
	m.flt = fs
}

// noteLineWrite journals one dirty-line writeback's applied word writes.
func (fs *faultState) noteLineWrite(line, cycle, seq uint64, words []tornWord) {
	slot := &fs.journal[fs.journalNext]
	slot.line, slot.cycle, slot.seq = line, cycle, seq
	slot.words = append(slot.words[:0], words...)
	fs.journalNext = (fs.journalNext + 1) % fs.journalDepth
	if fs.journalLen < fs.journalDepth {
		fs.journalLen++
	}
}

// confirm marks one NVM word durable: a later write to the word entered the
// write queue — or the drain engine verified NVM against the sequence guard
// and elided its write — and same-address writes complete in order, so any
// journaled earlier write of the word must have fully left the WPQ. It can
// no longer tear. (Without this, a value- and seq-identical elided drain
// write would leave the ownership guard blind and a tear could destroy
// committed data recovery cannot rebuild.)
func (fs *faultState) confirm(addr uint64) {
	for i := range fs.journal {
		lw := &fs.journal[i]
		if len(lw.words) == 0 || addr < lw.line || addr >= lw.line+64 {
			continue
		}
		kept := lw.words[:0]
		for _, w := range lw.words {
			if w.addr != addr {
				kept = append(kept, w)
			}
		}
		lw.words = kept
	}
}

// pick returns the idx-th newest journaled line write (0 = newest).
func (fs *faultState) pick(idx int) *tearableLine {
	if idx < 0 || idx >= fs.journalLen {
		return nil
	}
	i := fs.journalNext - 1 - idx
	for i < 0 {
		i += fs.journalDepth
	}
	return &fs.journal[i]
}

// TearKind selects which in-flight write a Tear interrupts.
type TearKind uint8

// Tear kinds.
const (
	// TearWriteback tears a recent dirty-line writeback: of the line's
	// guard-passed word writes (ascending address order), only the first
	// Keep persist; the rest revert to the pre-writeback NVM words. A word
	// is reverted only while NVM still holds exactly the journaled write —
	// a later write owns the word and cannot be torn retroactively.
	TearWriteback TearKind = iota
	// TearDrain tears the oldest booked-but-incomplete phase-2 drain of
	// core Pick: the first Keep valid redo entries are pre-applied to NVM
	// (seq-guarded) as if the WPQ had begun the drain when power failed.
	// The region's entries remain in the battery-backed back-end, so
	// recovery re-replays them — idempotently, under the sequence guard.
	TearDrain
)

// Tear is one torn-write specification applied at CrashTorn.
type Tear struct {
	Kind TearKind
	Pick int // TearWriteback: journal index, 0 = newest; TearDrain: core
	Keep int // prefix that persisted (words / valid entries)
}

// Mutations are test-only protocol corruptions for the fault campaign's
// mutation tests (the BoundaryHook precedent): each disables one step the
// recovery argument depends on, and the campaign must produce a minimal
// failing fault plan against it. All false in production.
var Mutations struct {
	// SkipUndo drops recovery's phase B entirely (uncommitted stores are
	// never rolled back).
	SkipUndo bool
	// SkipMarkerCheck replays the uncommitted tail of each crash stream as
	// if a commit marker had been present (the §5.4 marker check is gone).
	SkipMarkerCheck bool
	// DropTornPrefix makes every tear revert the whole journaled line —
	// ignoring the persisted prefix and the later-write ownership guard —
	// so a torn writeback can destroy committed data recovery cannot
	// rebuild.
	DropTornPrefix bool
	// SyncNoCommit drops the commit that a synchronizing store (atomic,
	// lock, unlock) must seal its region with: the sync op's write stays in
	// an open region, so a crash can roll it back after another core
	// observed it — the cross-core detectability contract is gone.
	SyncNoCommit bool
	// DrainNoGuard makes phase-2 drain writes bypass the NVM sequence
	// guard: a slow core's stale drain can clobber a newer committed value,
	// breaking the per-line version chain across cores.
	DrainNoGuard bool
	// ReplayNoGuard makes recovery's phase A redo writes bypass the NVM
	// sequence guard, so replaying crash streams in a different core order
	// yields different NVM images — recovery no longer commutes.
	ReplayNoGuard bool
}

// DrainExhaustedError is the structured report of a drain whose transient
// write errors exhausted the retry budget: the machine performs a hard stall
// (run returns this error) instead of guessing at forward progress.
type DrainExhaustedError struct {
	Core     int
	Region   uint64
	Attempts int
}

// Error formats the exhausted drain's core, region and attempt count.
func (e *DrainExhaustedError) Error() string {
	return fmt.Sprintf("machine: core %d: phase-2 drain of region %d exhausted %d write attempts (NVM write error persists)",
		e.Core, e.Region, e.Attempts)
}

// retryDrain consults the armed DrainError hook for core c's oldest booked
// drain. It returns true when the write goes through (the drain may retire
// now). On a transient error the drain is re-booked after an exponential
// backoff and false is returned; when the retry budget is exhausted the
// machine performs a hard stall with a structured DrainExhaustedError.
func (m *Machine) retryDrain(c *core, now uint64) bool {
	var region uint64
	if _, boundary, ok := c.back.OldestRegion(); ok {
		region = boundary.Region
	}
	if !m.flt.drainError(c.id, region, c.drainAttempts) {
		return true
	}
	c.drainAttempts++
	c.drainRetries++
	if c.drainAttempts > m.flt.retryMax {
		c.drainExhausted++
		if m.metrics != nil {
			m.metrics.DrainRetries.Record(uint64(c.drainAttempts))
		}
		if m.fatal == nil {
			m.fatal = &DrainExhaustedError{Core: c.id, Region: region, Attempts: c.drainAttempts}
		}
		return false
	}
	shift := c.drainAttempts - 1
	if shift > 16 {
		shift = 16
	}
	done := now + m.flt.retryBackoff<<shift
	c.drainDone[0] = done
	// Later drains share the bank and cannot finish before the head retry.
	for i := 1; i < len(c.drainDone); i++ {
		if c.drainDone[i] < done {
			c.drainDone[i] = done
		}
	}
	if c.drainFree < done {
		c.drainFree = done
	}
	return false
}

// CrashTorn is Crash with torn in-flight writes: each Tear reverts or
// pre-applies the suffix/prefix of one in-flight 64B line write before the
// persistent image is harvested, modeling the faulty-PM reality that power
// failure preserves only a prefix of a line write's 8-byte words. Tears
// referencing writes that are not in flight are no-ops (the campaign treats
// them as vacuous). Requires ArmFaults for TearWriteback (the journal);
// TearDrain needs only a booked drain.
func (m *Machine) CrashTorn(tears []Tear) (*CrashImage, error) {
	if !m.cfg.Capri {
		return nil, fmt.Errorf("machine: baseline (volatile) machine has no crash image")
	}
	if m.tracer != nil {
		m.tracer.TraceCrash(m.Cycles())
	}
	if m.tap != nil {
		m.tap.Tap(audit.Event{Kind: audit.EvCrash, Cycle: m.Cycles()})
	}
	for _, t := range tears {
		switch t.Kind {
		case TearWriteback:
			m.tearWriteback(t)
		case TearDrain:
			m.tearDrain(t)
		}
	}
	return m.harvest(), nil
}

// tearWriteback reverts the un-persisted suffix of a journaled line write.
func (m *Machine) tearWriteback(t Tear) {
	if m.flt == nil {
		return
	}
	lw := m.flt.pick(t.Pick)
	if lw == nil {
		return
	}
	keep := t.Keep
	if Mutations.DropTornPrefix {
		keep = 0
	}
	for i, w := range lw.words {
		if i < keep {
			continue
		}
		cur := m.nvm.Peek(w.addr)
		if !Mutations.DropTornPrefix && cur != w.new {
			// A later write (drain, newer writeback) owns this word; the
			// journaled write already fully left the WPQ for it. Not
			// tearable.
			continue
		}
		m.nvm.Restore(w.addr, w.old.Val, w.old.Seq)
		if m.tap != nil {
			m.tap.Tap(audit.Event{
				Kind: audit.EvTornWriteback, Core: -1, Cycle: m.Cycles(),
				Addr: w.addr, Seq: w.old.Seq, Val: w.old.Val, Val2: w.new.Val,
				Flags: audit.FlagApplied,
			})
		}
	}
}

// tearDrain pre-applies a prefix of the oldest booked-but-incomplete drain
// of the chosen core.
func (m *Machine) tearDrain(t Tear) {
	if len(m.cores) == 0 {
		return
	}
	c := m.cores[((t.Pick%len(m.cores))+len(m.cores))%len(m.cores)]
	if len(c.drainDone) == 0 {
		return // no drain in flight
	}
	data, boundary, ok := c.back.OldestRegion()
	if !ok {
		return
	}
	applied := 0
	for i := range data {
		if applied >= t.Keep {
			break
		}
		e := &data[i]
		if !e.Valid {
			continue
		}
		ok := m.nvm.Write(e.Addr, e.Redo, e.Seq)
		applied++
		if m.tap != nil {
			ev := audit.Event{
				Kind: audit.EvTornDrainWrite, Core: int32(c.id), Cycle: m.Cycles(),
				Addr: e.Addr, Seq: e.Seq, Region: boundary.Region, Val: e.Redo,
			}
			if ok {
				ev.Flags |= audit.FlagApplied
			}
			m.tap.Tap(ev)
		}
	}
}
