package machine

import (
	"fmt"

	"capri/internal/audit"
	"capri/internal/cache"
	"capri/internal/isa"
	"capri/internal/mem"
	"capri/internal/proxy"
)

// chargeLoad walks the hierarchy for a load by core c and charges the stall
// to the core, attributed to the level that served the access. Post-L1
// latency is divided by LoadOverlap to stand in for OoO memory-level
// parallelism.
func (m *Machine) chargeLoad(c *core, addr uint64) {
	hit, wb := c.l1.Access(addr, false, 0, c.id)
	if wb != nil {
		m.l1Writeback(c, wb)
	}
	if hit {
		c.tick(CauseLoadL1, m.cfg.L1Hit)
		return
	}
	l2hit, l2wb := m.l2.Access(addr, false, 0, c.id)
	if l2wb != nil {
		m.controllerWriteback(c.cycle, l2wb)
	}
	if l2hit {
		c.tick(CauseLoadL2, m.cfg.L1Hit+m.cfg.L2Hit/m.cfg.LoadOverlap)
		return
	}
	if m.dram.Access(addr) {
		c.tick(CauseLoadDRAM, m.cfg.L1Hit+m.cfg.DRAMHit/m.cfg.LoadOverlap)
		return
	}
	c.tick(CauseLoadNVM, m.cfg.L1Hit+m.cfg.NVMRead/m.cfg.LoadOverlap)
	if m.tap != nil {
		wa := mem.WordAddr(addr)
		w := m.nvm.Peek(wa)
		m.tap.Tap(audit.Event{
			Kind: audit.EvNVMRead, Core: int32(c.id), Cycle: c.cycle,
			Addr: wa, Seq: w.Seq, Val: w.Val, Val2: m.mem.Load(wa),
		})
	}
}

// frontStallCause classifies a front-end-proxy-full stall by its root cause:
// the buffer cannot drain either because the back-end (plus in-flight
// packets) has no room for its oldest data entry — back-pressure, further
// split into waiting-on-the-WPQ when a phase-2 drain is already booked — or
// because the proxy path has no departure slot (plain front-full).
func (m *Machine) frontStallCause(c *core) CycleCause {
	if c.front.Len() > 0 && c.front.Peek().Kind == proxy.KindData &&
		c.back.Len()+c.path.InFlight() >= m.cfg.Threshold {
		if len(c.drainDone) > 0 {
			if c.drainAttempts > 0 {
				return CauseDrainRetry
			}
			return CauseNVMQueue
		}
		return CauseBackPressure
	}
	return CauseFrontFull
}

// sampleBoundary records the occupancy histograms at a committed region
// boundary (metrics enabled only — this is the observability layer's main
// sampling point; boundaries are frequent enough to characterize the
// distributions and rare enough to keep the overhead negligible).
func (m *Machine) sampleBoundary(c *core, elided bool) {
	mt := m.metrics
	mt.FrontOcc.Record(uint64(c.front.Len()))
	mt.BackOcc.Record(uint64(c.back.Len()))
	mt.PathInFlight.Record(uint64(c.path.InFlight()))
	mt.WindowLive.Record(uint64(c.path.WindowLen()))
	mt.L1Dirty.Record(uint64(c.l1.DirtyLines()))
	mt.RegionInsts.Record(c.curInsts)
	mt.RegionStores.Record(c.curStores)
	if !elided {
		// Pair this boundary with its eventual phase-2 completion (FIFO per
		// core), for the commit-latency histogram.
		c.commitCycles = append(c.commitCycles, c.cycle)
	}
}

// storeAccess updates the timing caches for a store by core c with global
// sequence seq and returns the (small) cost charged to the core: stores
// retire through the store buffer and only the proxy machinery can stall
// them.
func (m *Machine) storeAccess(c *core, addr uint64, seq uint64) uint64 {
	// Invalidate other cores' copies (write-invalidate coherence). Their
	// dirty data flows down like a writeback.
	for _, o := range m.cores {
		if o != c {
			if wb := o.l1.Invalidate(addr); wb != nil {
				m.l1Writeback(o, wb)
			}
		}
	}
	_, wb := c.l1.Access(addr, true, seq, c.id)
	if wb != nil {
		m.l1Writeback(c, wb)
	}
	return 1
}

// l1Writeback sends an evicted dirty L1 line into the shared L2.
func (m *Machine) l1Writeback(c *core, wb *cache.Writeback) {
	// Install in L2 as dirty; L2 victim (if dirty) goes to the controller.
	for _, w := range wb.Words {
		_, l2wb := m.l2.Access(w, true, wb.Seq, wb.Core)
		if l2wb != nil {
			m.controllerWriteback(c.cycle, l2wb)
		}
	}
}

// controllerWriteback handles a dirty line arriving at the integrated memory
// controller: it propagates to NVM through the write queue (seq-guarded),
// fills the DRAM cache, scans every back-end proxy buffer to unset matching
// redo valid-bits (§5.3.2), and opens the proxy-path monitoring windows.
// The values written are the architectural values of the dirty words — the
// newest stores the line absorbed, which is exactly what wb.Seq tags.
func (m *Machine) controllerWriteback(now uint64, wb *cache.Writeback) {
	if m.tracer != nil {
		m.tracer.TraceWriteback(wb.Core, now, wb.Line)
	}
	m.dram.Fill(wb.Line)
	depth := m.nvm.BookLineWrite(now, m.cfg.NVMWrite)
	if m.metrics != nil {
		m.metrics.WPQDepth.Record(depth)
	}
	m.nvm.Writes++
	if m.tap != nil {
		m.tap.Tap(audit.Event{
			Kind: audit.EvWriteback, Core: int32(wb.Core), Cycle: now,
			Addr: wb.Line, Seq: wb.Seq,
		})
	}
	var torn []tornWord // applied word writes, journaled when faults are armed
	for _, w := range wb.Words {
		val := m.mem.Load(w)
		var old mem.Word
		if m.flt != nil {
			old = m.nvm.Peek(w)
		}
		applied := m.nvm.Write(w, val, wb.Seq)
		if m.flt != nil {
			// This write supersedes any journaled earlier write of the word
			// (same-address WPQ ordering), whether the guard applied it or not.
			m.flt.confirm(w)
			if applied {
				torn = append(torn, tornWord{addr: w, old: old, new: mem.Word{Val: val, Seq: wb.Seq}})
			}
		}
		if m.tap != nil {
			ev := audit.Event{
				Kind: audit.EvWritebackWord, Core: int32(wb.Core), Cycle: now,
				Addr: w, Seq: wb.Seq, Val: val,
			}
			if applied {
				ev.Flags |= audit.FlagApplied
			}
			m.tap.Tap(ev)
		}
		if m.cfg.Capri && !m.cfg.NoScanInvalidate {
			for _, c := range m.cores {
				// The §5.3.2 scan elides redo writes because NVM "already
				// holds" the writeback's data — an ADR assumption. Under the
				// armed fault model this writeback is still in the tearable
				// WPQ window, so the elision is unsound (a torn writeback
				// would orphan committed data whose redo entry it
				// invalidated); the seq guard makes the un-elided redo
				// writes idempotent.
				if m.flt == nil {
					c.back.ScanInvalidate(w, wb.Seq)
				}
				c.path.NoteWriteback(w, wb.Seq, now)
			}
		}
	}
	if m.flt != nil && len(torn) > 0 {
		m.flt.noteLineWrite(wb.Line, now, wb.Seq, torn)
	}
}

// service advances core c's background persistence machinery to its current
// cycle: deliver proxy-path packets into the back-end, retire finished
// phase-2 drains, and move front-end entries onto the path while space
// remains downstream.
func (m *Machine) service(c *core) {
	if !m.cfg.Capri {
		return
	}
	now := c.cycle

	// Retire finished phase-2 drains. Pop by copy-down so the slice's
	// backing array is reused instead of leaking capacity off the front.
	for len(c.drainDone) > 0 && c.drainDone[0] <= now {
		if m.flt != nil && m.flt.drainError != nil && !m.retryDrain(c, now) {
			break // transient write error: re-booked with backoff, or fatal
		}
		if c.drainAttempts > 0 {
			if m.metrics != nil {
				m.metrics.DrainRetries.Record(uint64(c.drainAttempts))
			}
			c.drainAttempts = 0
		}
		n := copy(c.drainDone, c.drainDone[1:])
		c.drainDone = c.drainDone[:n]
		region, ok := c.back.PopRegion()
		if !ok {
			m.fatalf("core %d: drain scheduled but no region buffered", c.id)
			return
		}
		m.applyPhase2(c, region)
	}

	// Deliver arrived packets into the back-end (zero-copy: the callback gets
	// a pointer into the wire buffer, and AcceptFrom copies it exactly once,
	// into the back-end ring).
	c.path.DeliverEach(now, func(e *proxy.Entry, hit bool) {
		if e.Kind == proxy.KindData {
			c.inflightData--
		}
		if !c.back.AcceptFrom(e) {
			m.fatalf("core %d: back-end proxy overflow (threshold %d)", c.id, m.cfg.Threshold)
			return
		}
		if e.Kind == proxy.KindBoundary {
			m.scheduleDrain(c, now)
		}
	})
	if m.fatal != nil {
		return
	}

	// Drain the front-end while the path has bandwidth and the back-end
	// (plus in-flight packets) has room.
	m.drainFront(c)
}

// recomputeSvc refreshes core c's service event horizon after service ran:
// the earliest cycle at which any service phase could act again. A front-end
// blocked purely on back-end space can only unblock at a drain retirement,
// which the drainDone term already covers.
func (m *Machine) recomputeSvc(c *core) {
	next := ^uint64(0)
	if len(c.drainDone) > 0 {
		next = c.drainDone[0]
	}
	if a, ok := c.path.HeadArrival(); ok && a < next {
		next = a
	}
	if c.front.Len() > 0 {
		if c.front.Peek().Kind == proxy.KindData &&
			c.back.Len()+c.path.InFlight() >= m.cfg.Threshold {
			// Back-pressure: nothing departs until a drain retires.
		} else if d := c.path.Backlog(); d < next {
			next = d
		}
	}
	c.svcAt = next
}

// drainFront moves entries from the front-end onto the proxy path. It is the
// last phase of service (and of quiesce's pump), so it also refreshes the
// service event horizon on every exit path.
func (m *Machine) drainFront(c *core) {
	defer m.recomputeSvc(c)
	now := c.cycle
	for c.front.Len() > 0 {
		if c.path.Backlog() > now {
			return // no departure slot yet
		}
		e := c.front.Peek()
		if e.Kind == proxy.KindData {
			// Reserve back-end space including packets already in flight.
			if c.back.Len()+c.path.InFlight() >= m.cfg.Threshold {
				return
			}
			c.inflightData++
		}
		depart := c.path.SendFrom(e, now)
		if m.tap != nil {
			ev := audit.Event{Kind: audit.EvLaunch, Core: int32(c.id), Cycle: now, Val: depart}
			if e.Kind == proxy.KindBoundary {
				ev.Flags |= audit.FlagBoundary
				ev.Region = e.Region
			} else {
				ev.Addr, ev.Seq = e.Addr, e.Seq
			}
			m.tap.Tap(ev)
		}
		c.front.DropHead()
	}
}

// scheduleDrain books NVM write-queue time for the newest complete region in
// c's back-end and records its completion cycle. Phase-2 traffic drains
// through the core's own bank of the write-pending queue (per-core back-end
// buffers feed per-bank channels), and the WPQ coalesces word entries into
// 64B lines, so the occupancy charged is per distinct line touched by the
// region's valid entries.
func (m *Machine) scheduleDrain(c *core, now uint64) {
	entries := c.back.Entries()
	// Number of boundaries already scheduled:
	scheduled := len(c.drainDone)
	seen := 0
	writes := uint64(0)
	// Count distinct lines with the core's epoch-stamped scratch table
	// (scratch.go): O(1) per entry at every region size, no allocation in
	// steady state.
	c.lines.reset()
	for i := range entries {
		e := &entries[i]
		if e.Kind == proxy.KindBoundary {
			seen++
			if seen == scheduled+1 {
				// This region's boundary: account its marker (checkpoints +
				// PC record) as one queue occupancy plus one per 8 ckpts.
				writes += 1 + uint64(len(e.Ckpts))/8
				break
			}
			continue
		}
		if seen == scheduled && e.Valid && c.lines.add(mem.LineAddr(e.Addr)) {
			writes++
		}
	}
	start := c.drainFree
	if start < now {
		start = now
	}
	if m.metrics != nil && m.cfg.NVMEntryWrite > 0 {
		// Depth of this core's phase-2 WPQ bank in pending entry-writes,
		// including the region just booked.
		m.metrics.DrainQueue.Record((start-now+m.cfg.NVMEntryWrite-1)/m.cfg.NVMEntryWrite + writes)
	}
	finish := start + writes*m.cfg.NVMEntryWrite
	c.drainFree = finish
	c.drainDone = append(c.drainDone, finish)
}

// applyPhase2 performs the functional half of the second phase: valid redo
// data moves to NVM, the recovery record absorbs the boundary's checkpoint
// payload, and staged emits become durable output.
func (m *Machine) applyPhase2(c *core, region proxy.CommittedRegion) {
	if m.tracer != nil || m.tap != nil {
		var lo, hi uint64
		entries := 0
		for i := range region.Data {
			if e := &region.Data[i]; e.Valid {
				if entries == 0 || e.Addr < lo {
					lo = e.Addr
				}
				if e.Addr > hi {
					hi = e.Addr
				}
				entries++
			}
		}
		if m.tracer != nil {
			m.tracer.TraceDrain(c.id, c.cycle, region.Boundary.Region, lo, hi, entries)
		}
		if m.tap != nil {
			m.tap.Tap(audit.Event{
				Kind: audit.EvDrain, Core: int32(c.id), Cycle: c.cycle,
				Region: region.Boundary.Region, Val: lo, Val2: hi, Count: uint32(entries),
			})
		}
	}
	if m.metrics != nil && len(c.commitCycles) > 0 {
		// Oldest queued boundary commit pairs with this drain (FIFO per core).
		m.metrics.CommitLat.Record(c.cycle - c.commitCycles[0])
		n := copy(c.commitCycles, c.commitCycles[1:])
		c.commitCycles = c.commitCycles[:n]
	}
	for i := range region.Data {
		e := &region.Data[i]
		if !e.Valid {
			c.back.SkippedInvalid++
			continue
		}
		var applied bool
		if Mutations.DrainNoGuard {
			// Mutation: bypass the sequence guard, letting a slow core's
			// stale drain clobber a newer committed value.
			m.nvm.Restore(e.Addr, e.Redo, e.Seq)
			applied = true
		} else {
			applied = m.nvm.Write(e.Addr, e.Redo, e.Seq)
		}
		m.nvm.Writes++
		if m.flt != nil {
			// Applied or elided, this drain write orders any journaled earlier
			// write of the word ahead of it — no longer tearable.
			m.flt.confirm(e.Addr)
		}
		if m.tap != nil {
			ev := audit.Event{
				Kind: audit.EvDrainWrite, Core: int32(c.id), Cycle: c.cycle,
				Addr: e.Addr, Seq: e.Seq, Region: region.Boundary.Region, Val: e.Redo,
			}
			if applied {
				ev.Flags |= audit.FlagApplied
			}
			m.tap.Tap(ev)
		}
	}
	m.applyMarker(c.id, &region.Boundary)
	// The boundary's slice backings are dead now: every buffer slot that held
	// a copy of this entry was cleared as it moved through (front ring, wire
	// packet, back ring), and applyMarker copied the payload out. Return them
	// to the front-end's allocation pool. (Recovery's marker replay in
	// crash.go does NOT recycle — harvested entries may alias crash images.)
	c.front.Recycle(region.Boundary.Ckpts, region.Boundary.Emits)
}

// applyMarker folds a committed boundary entry into core t's NVM recovery
// record and durable output.
func (m *Machine) applyMarker(t int, e *proxy.Entry) {
	rec := &m.records[t]
	if e.Region <= rec.Region {
		// The record already absorbed this marker: a recovery interrupted by
		// a nested crash replays markers a previous pass applied. Folding is
		// idempotent for the register/PC payload but NOT for the emits —
		// exactly-once output delivery requires skipping the whole fold.
		// (Region numbers are per-core, start at 1, and strictly increase,
		// so this guard never fires during normal phase-2 operation.)
		return
	}
	for _, ck := range e.Ckpts {
		rec.Regs[ck.Reg] = ck.Val
	}
	rec.Regs[isa.SP] = e.SP
	rec.Fn, rec.Blk, rec.Idx = e.PCFunc, e.PCBlk, e.PCIdx
	rec.Region = e.Region
	if e.Sync.Op != 0 {
		// The boundary sealed a synchronizing store: its operation descriptor
		// becomes part of the durable recovery record (detectability — the op
		// is now provably complete; before this fold it was provably absent).
		rec.Sync = e.Sync
	}
	if e.Halt {
		rec.Halted = true
	}
	if len(e.Emits) > 0 {
		m.cores[t].output = append(m.cores[t].output, e.Emits...)
		for _, d := range m.devices {
			for _, v := range e.Emits {
				d.Output(t, v)
			}
		}
	}
}

func (m *Machine) fatalf(format string, args ...interface{}) {
	if m.fatal == nil {
		m.fatal = fmt.Errorf(format, args...)
	}
}
