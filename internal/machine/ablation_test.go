package machine

import (
	"reflect"
	"testing"
)

// ablationConfigs enumerates the design-choice switches of DESIGN.md.
func ablationConfigs(base Config) map[string]Config {
	noScan := base
	noScan.NoScanInvalidate = true
	noElide := base
	noElide.NoElision = true
	noMerge := base
	noMerge.NoFrontMerge = true
	noMerge.NoBackMerge = true
	all := base
	all.NoScanInvalidate = true
	all.NoElision = true
	all.NoFrontMerge = true
	all.NoBackMerge = true
	return map[string]Config{
		"baseline": base,
		"noScan":   noScan,
		"noElide":  noElide,
		"noMerge":  noMerge,
		"allOff":   all,
	}
}

// TestAblationsPreserveCorrectness: every ablation combination must produce
// the same functional result and recover from crashes identically — only
// performance and NVM traffic may change. The sequence guard is the formal
// backstop that makes the scan/window optimizations safe to remove.
func TestAblationsPreserveCorrectness(t *testing.T) {
	src := sumProgram(200)
	cp := compileFor(t, src, 16)
	base := testConfig(16)

	// Golden from the standard configuration.
	mg, _ := New(cp, base)
	if err := mg.Run(); err != nil {
		t.Fatal(err)
	}
	goldenOut := mg.Output(0)
	total := mg.Instret()

	for name, cfg := range ablationConfigs(base) {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			m, err := New(cp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(m.Output(0), goldenOut) {
				t.Fatalf("output %v, want %v", m.Output(0), goldenOut)
			}
			// Crash sweep under the ablation.
			step := total/19 + 1
			for crashAt := uint64(1); crashAt < total; crashAt += step {
				mc, _ := New(cp, cfg)
				if err := mc.RunUntil(crashAt); err != nil {
					t.Fatal(err)
				}
				if mc.Done() {
					break
				}
				img, err := mc.Crash()
				if err != nil {
					t.Fatal(err)
				}
				r, _, err := Recover(img)
				if err != nil {
					t.Fatalf("crash@%d: %v", crashAt, err)
				}
				if err := r.Run(); err != nil {
					t.Fatalf("crash@%d resume: %v", crashAt, err)
				}
				if !reflect.DeepEqual(r.Output(0), goldenOut) {
					t.Fatalf("crash@%d: output %v, want %v", crashAt, r.Output(0), goldenOut)
				}
			}
		})
	}
}

// TestAblationEffectsVisible checks that each switch actually changes the
// machinery it targets (otherwise the ablation benches measure nothing).
func TestAblationEffectsVisible(t *testing.T) {
	src := sumProgram(400)
	cp := compileFor(t, src, 16)
	base := testConfig(16)

	run := func(cfg Config) Stats {
		m, err := New(cp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Stats()
	}

	std := run(base)

	noMerge := base
	noMerge.NoFrontMerge = true
	noMerge.NoBackMerge = true
	sm := run(noMerge)
	if sm.FrontMerges != 0 {
		t.Errorf("noMerge still merged %d entries", sm.FrontMerges)
	}
	if std.FrontMerges == 0 {
		t.Error("baseline never merged (workload too cold for the ablation)")
	}
	if sm.NVMWrites <= std.NVMWrites {
		t.Errorf("disabling merges should raise NVM writes: %d -> %d", std.NVMWrites, sm.NVMWrites)
	}

	noElide := base
	noElide.NoElision = true
	se := run(noElide)
	if se.ElidedBds != 0 {
		t.Errorf("noElide still elided %d boundaries", se.ElidedBds)
	}
	if se.BoundaryEntries <= std.BoundaryEntries {
		t.Errorf("disabling elision should raise boundary entries: %d -> %d",
			std.BoundaryEntries, se.BoundaryEntries)
	}

	noScan := base
	noScan.NoScanInvalidate = true
	ss := run(noScan)
	if ss.ScanHits != 0 || ss.WindowHits != 0 {
		t.Errorf("noScan still scanned: scan=%d window=%d", ss.ScanHits, ss.WindowHits)
	}
}
