package machine

import (
	"capri/internal/isa"
	"capri/internal/prog"
)

// This file is the pre-decoded threaded-code execution core (DispatchThreaded,
// the default). The decode unit is the basic block — the same unit the
// per-core block-inst cache already tracked — translated once, on first entry,
// into a slice of specialized op thunks (dop). The hottest instruction shapes
// the 19-benchmark suite exhibits (straight-line ALU/load runs feeding a
// store, a compare-and-branch, or an unconditional branch) become fused
// superinstructions: one thunk dispatch executes the whole run and issues the
// timing-model update as a single batched tick.
//
// The threaded core is required to be observationally identical to the switch
// core in exec.go: same cycles, same per-cause ledger sums, same audit event
// stream, same NVM image, same crash/recovery behavior. The arguments, which
// the dispatch differential suite checks end to end:
//
//   - Ledger exactness. tick(cause, n) is the only way cycles advance, and a
//     fused run's interior consists solely of non-stalling ops with fixed
//     costs. Summing k CauseExec costs into one tick leaves both c.cycle and
//     cycleBy[CauseExec] exactly as k individual ticks would — the zero
//     residual `capribench -explain -verify` checks is preserved by
//     construction. The only interior observer of c.cycle mid-run is a load
//     (controllerWriteback books NVM write-queue time at c.cycle, and the
//     EvNVMRead event is stamped with it), so accumulated exec cycles are
//     flushed before every load.
//   - Proxy service. The per-instruction core calls m.service(c) before every
//     instruction, but service(c) is provably a no-op strictly before the
//     core's service event horizon (c.svcAt, memsys.go): the earliest of the
//     next drain completion, the next proxy-path arrival, and the next
//     departure slot. The interior loop therefore checks one comparison per
//     op — true cycle (c.cycle plus the batched-tick accumulator) against the
//     horizon — flushes the accumulator and services exactly when the switch
//     core's per-instruction service would have done work, and skips it
//     everywhere else. Mutations that move the horizon from outside service
//     (a store or boundary entering the front-end) fold the new departure
//     slot into c.svcAt at the mutation site.
//   - Scheduling. The machine's scheduler runs the minimum-cycle core with
//     ties to the lowest ID. A fused run is dispatched only when its
//     worst-case interior cycle consumption cannot make another core the
//     scheduler's pick mid-run (see the quantum budget in machine.go's run
//     loop); otherwise the block single-steps on the switch core.
//   - Crash points. RunUntil needs per-instruction retire granularity around
//     the crash point, so the run loop stops using fused dispatch within
//     maxFuseLen+1 retired instructions of it.
//   - Resume points. Recovery (and a stalled fused tail store) can land the
//     PC in the interior of a fused run. The source-index → thunk map marks
//     interior indices with -1, and dispatch falls back to the switch core
//     until the PC re-reaches a thunk head.
const maxFuseLen = 32

// dop is one decoded op thunk: a direct-dispatched function with its operands
// pre-extracted at decode time.
type dop struct {
	run func(m *Machine, c *core, d *dop)

	// slice is the fused run's interior: a straight-line sequence of
	// non-stalling local ops (re-executable ALU ops, loads, emits, fences,
	// register checkpoints). nil/empty for singles.
	slice []isa.Inst
	// in is the source instruction of a single or of a fused tail
	// (store/branch); nil for a pure run.
	in *isa.Inst
	// cost is the pre-summed CauseExec cost of a pure-ALU interior (used for
	// the one-tick fast path).
	cost uint64
	// wcSched bounds the cycles consumed before the dop's last instruction
	// begins (the scheduler must not want another core mid-run; the final
	// instruction's cost is irrelevant — after it, scheduling re-evaluates).
	// Zero for singles: one instruction can never lose the scheduler's pick
	// mid-dispatch.
	wcSched uint64
	// pure marks an interior of only re-executable ops (execSlice semantics).
	pure bool
	// n is the number of source instructions the interior covers.
	n int
}

// dblock is one decoded basic block.
type dblock struct {
	ops []dop
	// pc maps a source instruction index to its thunk index, or -1 for the
	// interior of a fused run (dispatch falls back to single-stepping).
	pc []int32
	// span maps a source instruction index to the exact cycle span of purely
	// core-local work (re-executable ALU ops, emits, fences, register
	// checkpoints, the block-terminating branch) from that index to the next
	// "stopper" — any op that can touch shared state, emit an event, or
	// interact with the proxy machinery. Zero when the indexed op is itself a
	// stopper. The conflict tracker (quantum.go) reads it to bound other
	// cores' hard horizons.
	span []uint64
}

// dprog is the machine-level decode cache: one decoded block per (fn, blk) of
// the loaded program, filled lazily, plus the decode-cache counters reported
// in Stats and BENCH_sim.json.
type dprog struct {
	prog   *prog.Program
	fns    [][]*dblock
	hits   uint64 // block entries served by the cache (per block switch)
	misses uint64 // blocks decoded
	fused  uint64 // fused superinstructions among the decoded thunks
}

// decodedBlock returns the decoded form of block (fn, blk), decoding on first
// touch. The cache is keyed by program identity: replacing the loaded program
// drops it wholesale.
func (m *Machine) decodedBlock(fn, blk int, b *prog.Block) *dblock {
	dp := m.dec
	if dp == nil || dp.prog != m.prog {
		dp = &dprog{prog: m.prog, fns: make([][]*dblock, len(m.prog.Funcs))}
		m.dec = dp
	}
	if dp.fns[fn] == nil {
		dp.fns[fn] = make([]*dblock, len(m.prog.Funcs[fn].Blocks))
	}
	if db := dp.fns[fn][blk]; db != nil {
		dp.hits++
		return db
	}
	dp.misses++
	db := decodeBlock(b.Insts, &m.cfg, &dp.fused)
	dp.fns[fn][blk] = db
	return db
}

// interiorOp reports whether an instruction may live in a fused run's
// interior: it must retire unconditionally (no stall-retry path) and touch
// nothing the proxy service loop watches.
func interiorOp(in *isa.Inst) bool {
	if in.IsReexecutable() {
		return true
	}
	switch in.Op {
	case isa.OpLoad, isa.OpEmit, isa.OpFence, isa.OpBarrier, isa.OpCkpt:
		return true
	}
	return false
}

// interiorWC returns the worst-case cycle cost of one interior op.
func interiorWC(in *isa.Inst, cfg *Config) uint64 {
	if in.IsReexecutable() {
		return aluCost(in.Op)
	}
	switch in.Op {
	case isa.OpLoad:
		wc := cfg.L2Hit
		if cfg.DRAMHit > wc {
			wc = cfg.DRAMHit
		}
		if cfg.NVMRead > wc {
			wc = cfg.NVMRead
		}
		return cfg.L1Hit + wc/cfg.LoadOverlap
	case isa.OpFence, isa.OpBarrier:
		return 4
	case isa.OpEmit:
		return costALU
	case isa.OpCkpt:
		return 2 * costStore
	}
	return 0
}

// decodeBlock translates one basic block into its thunk run. Maximal
// straight-line interior runs are fused, optionally absorbing a trailing
// store, conditional branch, or unconditional branch (the profile's hottest
// pairs: load+op chains into op+store and cmp+branch).
func decodeBlock(insts []isa.Inst, cfg *Config, fusedCtr *uint64) *dblock {
	db := &dblock{
		pc:   make([]int32, len(insts)),
		span: make([]uint64, len(insts)),
	}
	// Static local spans, back to front: a stopper resets the span; local
	// ops accumulate their exact fixed cost. Local includes fences,
	// barriers, and register checkpoints — each is a fixed per-core tick
	// that cannot stall and touches nothing shared (a Ckpt stages into the
	// core's own front-end). A block-terminating branch is local (one branch
	// slot) but its successor block is unknown at decode time, so the span
	// ends just past it. Local ops cannot stall and services strictly before
	// the horizon are no-ops, so these spans are exact cycle counts, not
	// estimates (see quantum.go).
	var sp uint64
	for k := len(insts) - 1; k >= 0; k-- {
		in := &insts[k]
		switch {
		case in.IsReexecutable():
			sp += aluCost(in.Op)
		case in.Op == isa.OpEmit:
			sp += costALU
		case in.Op == isa.OpFence || in.Op == isa.OpBarrier:
			sp += 4
		case in.Op == isa.OpCkpt:
			sp += 2 * costStore
		case in.Op == isa.OpBr || in.Op == isa.OpBrIf:
			sp = costBranch
		default:
			// Load, store, atomic, lock, boundary, call/ret/halt: a shared
			// line, an event, or a proxy interaction.
			sp = 0
		}
		db.span[k] = sp
	}
	i := 0
	for i < len(insts) {
		j := i
		for j < len(insts) && j-i < maxFuseLen && interiorOp(&insts[j]) {
			j++
		}
		d := dop{n: j - i}
		end := j
		if d.n > 0 {
			d.slice = insts[i:j:j]
			d.pure = true
			var wcSum, wcLast uint64
			for k := range d.slice {
				in := &d.slice[k]
				w := interiorWC(in, cfg)
				wcSum += w
				wcLast = w
				if in.IsReexecutable() {
					d.cost += aluCost(in.Op)
				} else {
					d.pure = false
				}
			}
			d.wcSched = wcSum
			// Try to absorb a fusable tail.
			if end < len(insts) {
				switch insts[end].Op {
				case isa.OpStore:
					d.run, d.in = dRunStore, &insts[end]
					end++
				case isa.OpBr:
					d.run, d.in = dRunBr, &insts[end]
					end++
				case isa.OpBrIf:
					d.run, d.in = dRunBrIf, &insts[end]
					end++
				}
			}
			if d.run == nil {
				d.run = dRun
				// No tail: the last interior op's own cost cannot affect
				// scheduling (nothing of this dop follows it).
				d.wcSched = wcSum - wcLast
			}
		} else {
			in := &insts[i]
			d.in = in
			switch in.Op {
			case isa.OpStore:
				d.run = dRunStore
			case isa.OpBr:
				d.run = dRunBr
			case isa.OpBrIf:
				d.run = dRunBrIf
			default:
				// Call/Ret/Halt/Boundary/atomics/locks and anything unknown
				// dispatch through the reference switch core.
				d.run = dSingle
			}
			end++
		}
		if end-i > 1 {
			*fusedCtr++
		}
		op := int32(len(db.ops))
		db.ops = append(db.ops, d)
		db.pc[i] = op
		for k := i + 1; k < end; k++ {
			db.pc[k] = -1
		}
		i = end
	}
	return db
}

// stepThreaded dispatches one decoded thunk on core c inside the current
// dispatch window (m.winExt, set once per run-queue pop). The run loop
// guarantees c.cycle <= winExt on entry. Fused runs whose worst case might
// overrun the window execute their fitting prefix through runExtended
// (quantum.go) instead of the plain thunk.
func (m *Machine) stepThreaded(c *core) {
	if c.blkFn != c.fn || c.blkId != c.blk || c.dblk == nil {
		b := m.prog.Funcs[c.fn].Blocks[c.blk]
		c.blkInsts = b.Insts
		c.blkFn, c.blkId = c.fn, c.blk
		c.dblk = m.decodedBlock(c.fn, c.blk, b)
	}
	db := c.dblk
	if c.idx >= len(db.pc) {
		m.fatalf("core %d: PC f%d b%d idx %d beyond block", c.id, c.fn, c.blk, c.idx)
		return
	}
	op := db.pc[c.idx]
	if op < 0 {
		// Interior resume point (recovery checkpoint or retried fused tail):
		// single-step on the switch core until the PC re-reaches a thunk head.
		m.step(c)
	} else {
		d := &db.ops[op]
		if d.wcSched != 0 && c.cycle+d.wcSched > m.winExt {
			if m.extOK {
				// The window cannot absorb this run's worst case whole;
				// execute the prefix whose start cycles still fit
				// (quantum.go).
				m.runExtended(c, d)
			} else {
				// Extension disabled (lockstep baseline, crash runs): retire
				// one instruction at a time on the reference core, exactly
				// the pre-extension dispatch rule.
				m.step(c)
			}
		} else {
			d.run(m, c, d)
		}
	}
}

// runInterior executes a fused run's interior with batched timing: exec-cost
// ticks accumulate (`acc`) and flush in one tick — before any load (which
// observes c.cycle via the controller writeback path), before any service,
// and at the end. The per-op service the switch core would run is a no-op
// strictly before the event horizon, so it is gated on the true cycle
// (c.cycle + acc, since accumulated ticks have not landed yet): the gate
// fires exactly when the switch core's service would have done work, and the
// accumulator is flushed first so service observes the true cycle.
func (m *Machine) runInterior(c *core, d *dop) {
	if d.pure && (c.front == nil || c.cycle+d.cost < c.svcAt) {
		execSlice(&c.regs, d.slice)
		c.tick(CauseExec, d.cost)
		return
	}
	gated := c.front != nil
	var acc uint64
	for i := range d.slice {
		if gated && i > 0 && c.cycle+acc >= c.svcAt {
			if acc != 0 {
				c.tick(CauseExec, acc)
				acc = 0
			}
			m.service(c)
		}
		in := &d.slice[i]
		switch in.Op {
		case isa.OpLoad:
			if acc != 0 {
				c.tick(CauseExec, acc)
				acc = 0
			}
			addr := c.regs[in.Ra] + uint64(in.Imm)
			c.regs[in.Rd] = m.mem.Load(addr)
			m.chargeLoad(c, addr)
		case isa.OpFence, isa.OpBarrier:
			c.tick(CauseFence, 4)
		case isa.OpEmit:
			c.stagedEmits = append(c.stagedEmits, c.regs[in.Ra])
			acc += costALU
		case isa.OpCkpt:
			if m.cfg.Capri {
				c.front.StageCkpt(in.Ra, c.regs[in.Ra])
			}
			c.dynCkpts++
			c.curStores++
			c.tick(CauseCkpt, 2*costStore)
		default:
			execOne(&c.regs, in)
			acc += aluCost(in.Op)
		}
	}
	if acc != 0 {
		c.tick(CauseExec, acc)
	}
}

// serviceGate runs the per-instruction service a fused tail is owed, exactly
// when it would not be a no-op.
func (m *Machine) serviceGate(c *core) {
	if c.front != nil && c.cycle >= c.svcAt {
		m.service(c)
	}
}

// dRun executes a fused run with no tail.
func dRun(m *Machine, c *core, d *dop) {
	m.runInterior(c, d)
	c.idx += d.n
	c.instret += uint64(d.n)
	c.curInsts += uint64(d.n)
}

// dRunBr executes a fused run ending in an unconditional branch.
func dRunBr(m *Machine, c *core, d *dop) {
	m.runInterior(c, d)
	m.serviceGate(c) // the switch core services before the branch dispatch
	c.tick(CauseExec, costBranch)
	c.blk, c.idx = int(d.in.Target), 0
	k := uint64(d.n) + 1
	c.instret += k
	c.curInsts += k
}

// dRunBrIf executes a fused run ending in a conditional branch (the fused
// cmp+branch superinstruction — BrIf carries its own comparison).
func dRunBrIf(m *Machine, c *core, d *dop) {
	m.runInterior(c, d)
	m.serviceGate(c)
	in := d.in
	c.tick(CauseExec, costBranch)
	if in.Cond.Eval(c.regs[in.Ra], c.regs[in.Rb]) {
		c.blk = int(in.Target)
	} else {
		c.blk = int(in.Else)
	}
	c.idx = 0
	k := uint64(d.n) + 1
	c.instret += k
	c.curInsts += k
}

// dRunStore executes a fused run ending in a regular store (the op+store
// superinstruction). The interior retires first; a front-end stall then
// leaves the PC on the store itself — an interior index — so the retry
// single-steps through the switch core with identical stall accounting.
// doStore performs its own service call, so no extra pre-tail service is
// needed (a second call at the same cycle would be an idempotent no-op).
func dRunStore(m *Machine, c *core, d *dop) {
	if d.n > 0 {
		m.runInterior(c, d)
		c.idx += d.n
		c.instret += uint64(d.n)
		c.curInsts += uint64(d.n)
	}
	in := d.in
	addr := c.regs[in.Ra] + uint64(in.Imm)
	if !m.doStore(c, addr, c.regs[in.Rb]) {
		return // stalled on the front-end proxy; retry
	}
	c.dynStores++
	c.curStores++
	c.idx++
	c.instret++
	c.curInsts++
}

// dSingle dispatches one instruction through the reference switch core.
func dSingle(m *Machine, c *core, d *dop) {
	m.step(c)
}
