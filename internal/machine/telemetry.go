package machine

import (
	"sync/atomic"

	"capri/internal/telemetry"
)

// Live telemetry hook (DESIGN.md §4j). The scheduler loop publishes
// progress into the process-global telemetry.Machines snapshot in batches
// of telePublishEvery steps, but only when a telemetry bus has armed it:
// run() reads telemetry.ArmedMachine() once per entry, so the cost when
// telemetry is off is one atomic pointer load per run plus one nil check
// per scheduler pop — nothing on the per-instruction path, and zero
// allocations either way.
//
// Counters (cycles, instret, quantum grants/aborts) are published as
// saturating deltas against the machine's last-published values, so
// process totals stay monotone even when recovery rebuilds cores and a
// per-machine total restarts. Gauges (buffer occupancies, WPQ depth) are
// published as wrapping deltas, so the global value is always the exact
// sum over running machines; the exit publish retires this machine's
// gauge contribution back to zero.

// telePublishEvery is the publish batch size in scheduler steps. At the
// simulator's typical tens-of-millions steps per second this yields a few
// thousand publishes per second — far denser than any sampler interval,
// for a handful of atomic adds each.
const telePublishEvery = 1 << 14

// telePub is the machine's last-published telemetry state, the delta
// base for the next publish.
type telePub struct {
	steps   uint64
	cycles  uint64
	instret uint64
	qGrants uint64
	qAborts uint64
	front   uint64
	back    uint64
	path    uint64
	drain   uint64
	wpq     uint64
	// drainCore is the per-core drain-queue delta base; cores at or
	// beyond the gauge bound fold into the last slot, mirroring the
	// snapshot's layout.
	drainCore [telemetry.MaxCoreGauges]uint64
}

// telemetryEnter marks the machine live on the armed snapshot. The delta
// base is NOT reset: counters keep their last-published values across run
// segments (RunUntil resume, recovery re-entry), so nothing is published
// twice.
func (m *Machine) telemetryEnter(t *telemetry.MachineTelemetry) {
	m.tele = t
	t.Active.Add(1)
	t.NoteCores(len(m.cores))
}

// telemetryExit publishes the machine's final counter state, retires its
// gauge contributions, and marks the run complete.
func (m *Machine) telemetryExit() {
	m.publishTelemetry(true)
	m.tele.Runs.Add(1)
	m.tele.Active.Add(-1)
	m.tele = nil
}

// pubCounter adds the saturating delta cur−last to a monotone counter.
// A current value below the base (e.g. cycles after recovery rebuilt the
// cores) publishes nothing and just re-bases.
func pubCounter(c *atomic.Uint64, cur uint64, last *uint64) {
	if cur > *last {
		c.Add(cur - *last)
	}
	*last = cur
}

// pubGauge adds the wrapping delta cur−last to a summed gauge; uint64
// wraparound makes negative movements exact.
func pubGauge(g *atomic.Uint64, cur uint64, last *uint64) {
	if cur != *last {
		g.Add(cur - *last)
	}
	*last = cur
}

// publishTelemetry pushes the machine's current progress into the armed
// snapshot. final (the exit publish) retires the gauges to zero so a
// finished machine stops contributing occupancy. Allocation-free.
func (m *Machine) publishTelemetry(final bool) {
	t := m.tele
	p := &m.telePub
	p.steps = m.steps
	cycles := m.Cycles()
	pubCounter(&t.Cycles, cycles, &p.cycles)
	pubCounter(&t.Instret, m.retired, &p.instret)
	pubCounter(&t.QuantumGrants, m.qGrants, &p.qGrants)
	pubCounter(&t.QuantumAborts, m.qAborts, &p.qAborts)
	var front, back, path, drain, wpq uint64
	var drainCore [telemetry.MaxCoreGauges]uint64
	if !final {
		for i, c := range m.cores {
			if c.front == nil {
				continue
			}
			front += uint64(c.front.Len())
			back += uint64(c.back.Len())
			path += uint64(c.path.InFlight())
			d := uint64(len(c.drainDone))
			drain += d
			if i >= telemetry.MaxCoreGauges {
				i = telemetry.MaxCoreGauges - 1
			}
			drainCore[i] += d
		}
		wpq = m.nvm.PendingLineWrites(cycles, m.cfg.NVMWrite)
	}
	pubGauge(&t.FrontOcc, front, &p.front)
	pubGauge(&t.BackOcc, back, &p.back)
	pubGauge(&t.PathInFlight, path, &p.path)
	pubGauge(&t.DrainQueue, drain, &p.drain)
	pubGauge(&t.WPQDepth, wpq, &p.wpq)
	for i := range drainCore {
		pubGauge(&t.DrainQueueCore[i], drainCore[i], &p.drainCore[i])
	}
}
