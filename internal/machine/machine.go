package machine

import (
	"fmt"

	"capri/internal/audit"
	"capri/internal/cache"
	"capri/internal/isa"
	"capri/internal/mem"
	"capri/internal/prog"
	"capri/internal/proxy"
	"capri/internal/telemetry"
)

// Memory map conventions for compiled programs. Workloads allocate heap data
// from HeapBase upward; each thread's stack grows down from StackBase(core).
const (
	// HeapBase is where workload data begins.
	HeapBase uint64 = 1 << 20
	// stackSpan is the per-thread stack reservation.
	stackSpan uint64 = 1 << 16
	// stackTop is the top of the stack arena (stacks grow downward).
	stackTop uint64 = 1 << 19
)

// StackBase returns the initial stack pointer for a hardware thread.
func StackBase(core int) uint64 {
	return stackTop - uint64(core)*stackSpan
}

// CoreRecord is the per-core recovery record that lives in NVM: the register
// checkpoint array (paper §4.2's global checkpoint storage), the PC
// checkpoint of the most recently committed region boundary, and the halt
// flag. It is updated only when a boundary entry completes phase 2 (or, at
// recovery, when a committed-but-undrained marker is replayed).
type CoreRecord struct {
	Regs   [isa.NumRegs]uint64
	Fn     int32
	Blk    int32
	Idx    int32
	Region uint64
	Halted bool
	// Sync is the detectability descriptor of the most recently committed
	// synchronization operation (zero Op: none yet). Because a sync op
	// commits atomically with its own region, a recovered record either
	// carries the descriptor with its write persisted at Sync.Seq, or
	// predates the sync entirely — never an in-between (the complete-or-
	// absent contract of Ben-David et al.; see VerifyDetectable).
	Sync proxy.SyncRec
}

// core is one hardware thread plus its private persistence plumbing.
type core struct {
	id    int
	regs  [isa.NumRegs]uint64
	fn    int
	blk   int
	idx   int
	cycle uint64

	halted bool

	// Current-block instruction cache: step refreshes it when (fn, blk)
	// moves, saving two pointer chases per executed instruction. dblk is the
	// threaded core's decoded form of the same block (see decode.go); the two
	// are refreshed and invalidated together (invalidateBlockCache).
	blkFn    int
	blkId    int
	blkInsts []isa.Inst
	dblk     *dblock

	// Hard-horizon span cache (quantum.go): cycles of purely local work from
	// the core's parked PC to its next non-local action, plus the PC it was
	// computed at. Refreshed only when the core leaves the scheduler with a
	// moved PC — stall-only pops keep it, since the span depends on the PC
	// alone. extBudget reads it relative to the core's current cycle and
	// caps it with svcAt at attempt time; all inputs are frozen while the
	// core is parked. Simulator-side only.
	horSpan uint64
	horFn   int
	horBlk  int
	horIdx  int

	// lines is scheduleDrain's distinct-line dedup scratch: an epoch-stamped
	// flat table cleared by generation bump and reused across every region
	// (zero steady-state allocation; see scratch.go).
	lines lineTable

	l1    *cache.Cache
	front *proxy.FrontEnd
	path  *proxy.Path
	back  *proxy.BackEnd

	// region tracking
	regionSeq    uint64
	regionStores bool // current region allocated data entries
	stagedEmits  []uint64

	// phase-2 drain scheduling: completion cycles of regions whose boundary
	// has arrived at the back-end, oldest first, and the availability of this
	// core's NVM write-queue bank.
	drainDone []uint64
	drainFree uint64

	// svcAt is the service event horizon: the earliest cycle at which
	// m.service(c) could do anything (next drain completion, next path
	// arrival, or next front-end departure slot). Strictly before it,
	// service is provably a no-op and is skipped; every proxy mutation
	// outside service folds its earliest consequence (the next departure
	// slot) into it, and service itself recomputes it (recomputeSvc).
	// Purely a simulator fast path — the serviced schedule is identical to
	// servicing before every instruction.
	svcAt uint64

	// drain-retry state (fault model): consecutive transient write errors of
	// the oldest booked drain, and lifetime retry/exhaustion counters.
	drainAttempts  int
	drainRetries   uint64
	drainExhausted uint64

	// in-flight data entries on the proxy path (for back-end space
	// accounting).
	inflightData int

	// durable, committed output tape (conceptually in NVM).
	output []uint64

	// statistics
	instret     uint64
	dynStores   uint64
	dynCkpts    uint64
	dynBounds   uint64
	stallCycles uint64

	// cycleBy is the always-on cycle-accounting ledger: every cycle added to
	// c.cycle is attributed to exactly one CycleCause (see causes.go), so the
	// buckets always sum to c.cycle. `capribench -explain` is built on it.
	cycleBy [NumCycleCauses]uint64

	// commitCycles queues the commit cycle of each non-elided boundary, in
	// order, for the commit-latency histogram (metrics enabled only; boundary
	// FIFO order equals drain order per core, so a simple queue pairs them).
	commitCycles []uint64

	// per-region dynamic shape (Figures 10 & 11)
	curInsts     uint64
	curStores    uint64
	sumInsts     uint64
	sumStores    uint64
	regionsEnded uint64
}

// Machine is the simulated system.
type Machine struct {
	cfg  Config
	prog *prog.Program

	mem  *mem.Mem // architectural (volatile)
	nvm  *mem.NVM
	dram *mem.DRAMCache
	l2   *cache.Cache

	cores   []*core
	records []CoreRecord // NVM-resident recovery records

	dec *dprog // decoded-program cache of the threaded core (lazy; see decode.go)

	seq         uint64 // global store sequence
	steps       uint64
	retired     uint64 // running sum of core instret (crash-point check)
	haltedCores int    // running count of halted cores (Done fast path)

	// Scheduler state: the event-ordered run queue and the quantum-extension
	// switch and counters (runq.go, quantum.go). extOK is derived per run()
	// entry; the counters are simulator-side statistics only.
	rq      runq
	extOK   bool   // quantum extension armed for the current run segment
	qGrants uint64 // pops granted a window beyond the strict quantum
	qAborts uint64 // extension attempts that could not beat the strict quantum
	// Abort backoff: after a failed grant the next extBackoff pops skip the
	// attempt (extDefer counts them down); each consecutive failure doubles
	// the distance, any success rearms full-rate attempts. Horizons keep
	// refreshing while attempts are deferred, so the first attempt after a
	// phase change sees current bounds. Purely a simulator heuristic that
	// trims the extension's overhead in conflict-dense phases where no
	// window is possible.
	extDefer   uint32
	extBackoff uint32

	// The dispatch window of the current pop (quantum.go): the highest cycle
	// at which c may still start an op. Without a grant it coincides with
	// the strict quantum and the loop behaves exactly as the reference
	// scheduler.
	winExt uint64

	crashed bool
	fatal   error

	// Live telemetry (telemetry.go): the armed snapshot for the current
	// run segment (nil when telemetry is off) and the last-published
	// delta base. run() captures the arming once per entry.
	tele    *telemetry.MachineTelemetry
	telePub telePub

	tracer  Tracer
	tap     audit.Sink  // nil: provenance event emission off
	metrics *Metrics    // nil: histogram collection off
	flt     *faultState // nil: fault model unarmed (see fault.go)

	// devices receive each core's committed output exactly once (§3.3's
	// open I/O problem: effects are released only when their region's
	// commit marker completes phase 2, so an interrupted region's I/O is
	// never performed early, and re-execution after recovery never repeats
	// I/O that already committed).
	devices []OutputDevice
}

// OutputDevice consumes a hardware thread's committed output values. Unlike
// the machine's internal state, a device models the outside world: it is NOT
// rolled back at a crash, which is exactly why delivery must be exactly-once
// and commit-ordered — the guarantee this machine provides.
type OutputDevice interface {
	Output(core int, val uint64)
}

// AttachOutputDevice registers a device for committed output. Values already
// committed before attachment are not replayed.
func (m *Machine) AttachOutputDevice(d OutputDevice) {
	m.devices = append(m.devices, d)
}

// Tracer receives persistence-relevant events during execution. See the
// trace package for a ready-made recorder. Nil disables tracing.
// TraceDrain carries the drained payload alongside the region: the
// lowest/highest word address among the valid redo entries written and
// their count (all zero for a data-free marker).
type Tracer interface {
	TraceCommit(core int, cycle, region uint64)
	TraceDrain(core int, cycle, region uint64, addrLo, addrHi uint64, entries int)
	TraceWriteback(core int, cycle, addr uint64)
	TraceStall(core int, cycle uint64)
	TraceCrash(cycle uint64)
	TraceRecovery(cores int)
}

// SetTracer installs (or removes, with nil) the machine's event tracer.
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// SetTap installs (or removes, with nil) the machine's provenance tap: a
// per-line event stream covering every lifecycle step of the two-phase
// atomic store (see the audit package). The tap is a strict superset of the
// Tracer events at word granularity; it is how the flight recorder and the
// online Fig. 7 auditor observe the machine. Baseline (non-Capri) machines
// have no persistence protocol to audit, so SetTap is a no-op for them.
func (m *Machine) SetTap(s audit.Sink) {
	if !m.cfg.Capri {
		return
	}
	m.tap = s
	for _, c := range m.cores {
		c.path.Probe = nil
		if s == nil {
			continue
		}
		cc := c
		c.path.Probe = func(e *proxy.Entry, arrives uint64, hit bool) {
			ev := audit.Event{Kind: audit.EvBackArrive, Core: int32(cc.id), Cycle: cc.cycle, Val: arrives}
			if e.Kind == proxy.KindBoundary {
				ev.Flags |= audit.FlagBoundary
				ev.Region = e.Region
			} else {
				ev.Addr, ev.Seq = e.Addr, e.Seq
				if e.Valid {
					ev.Flags |= audit.FlagValid
				}
				if hit {
					ev.Flags |= audit.FlagWindowHit
				}
			}
			m.tap.Tap(ev)
		}
	}
}

// AuditOptions returns the audit.Options matching this machine's
// configuration — the model parameters an Auditor needs to mirror it.
func (m *Machine) AuditOptions() audit.Options {
	return audit.Options{
		ProxyLatency: m.cfg.ProxyLatency,
		Windows:      m.cfg.Capri && !m.cfg.NoScanInvalidate,
	}
}

// New builds a machine for the given compiled program. The program's thread
// count must not exceed cfg.Cores.
func New(p *prog.Program, cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	if p.NumThreads() > cfg.Cores {
		return nil, fmt.Errorf("machine: program wants %d threads, config has %d cores", p.NumThreads(), cfg.Cores)
	}
	m := &Machine{
		cfg:  cfg,
		prog: p,
		mem:  mem.NewMem(),
		nvm:  mem.NewNVM(),
		dram: mem.NewDRAMCache(cfg.DRAMSize),
		l2:   cache.New(cfg.L2Size, cfg.L2Ways),
	}
	if cfg.RefStore {
		m.mem = mem.NewMemRef()
		m.nvm = mem.NewNVMRef()
	}
	for t := 0; t < p.NumThreads(); t++ {
		c := &core{
			id:    t,
			l1:    cache.New(cfg.L1Size, cfg.L1Ways),
			fn:    p.EntryFunc(t),
			blkFn: -1,
		}
		c.blk = p.Funcs[c.fn].Entry
		c.regs[isa.SP] = StackBase(t)
		if cfg.Capri {
			c.front = proxy.NewFrontEnd(cfg.FrontEndEntries)
			c.front.NoMerge = cfg.NoFrontMerge
			c.front.NoElide = cfg.NoElision
			c.path = proxy.NewPath(cfg.ProxyLatency, cfg.ProxyInterval)
			c.back = proxy.NewBackEnd(cfg.Threshold)
			c.back.NoMerge = cfg.NoBackMerge
		}
		m.cores = append(m.cores, c)

		// Thread launch is itself a persisted event: the initial recovery
		// record points at the entry with the initial register file.
		rec := CoreRecord{Fn: int32(c.fn), Blk: int32(c.blk), Idx: 0}
		rec.Regs = c.regs
		m.records = append(m.records, rec)
	}
	return m, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Program returns the loaded program.
func (m *Machine) Program() *prog.Program { return m.prog }

// ReplaceProgram swaps the loaded program in place (hot-patching between
// RunUntil segments, e.g. a firmware update applied at a quiesce point). The
// new program must be position-compatible with every core's current PC —
// callers normally swap in a recompilation of the same source. All decoded
// code and per-core block caches are dropped: nothing decoded from the old
// program may execute afterwards.
func (m *Machine) ReplaceProgram(p *prog.Program) error {
	for _, c := range m.cores {
		if c.halted {
			continue
		}
		if c.fn >= len(p.Funcs) || c.blk >= len(p.Funcs[c.fn].Blocks) ||
			c.idx > len(p.Funcs[c.fn].Blocks[c.blk].Insts) {
			return fmt.Errorf("machine: core %d PC f%d b%d i%d outside replacement program", c.id, c.fn, c.blk, c.idx)
		}
	}
	m.prog = p
	m.invalidateDecode()
	return nil
}

// Done reports whether every core has halted.
func (m *Machine) Done() bool {
	return m.haltedCores == len(m.cores)
}

// Cycles returns the maximum core cycle count — the parallel makespan the
// paper's figures plot.
func (m *Machine) Cycles() uint64 {
	var max uint64
	for _, c := range m.cores {
		if c.cycle > max {
			max = c.cycle
		}
	}
	return max
}

// Output returns core t's committed (durable) output tape.
func (m *Machine) Output(t int) []uint64 {
	return append([]uint64(nil), m.cores[t].output...)
}

// MemSnapshot returns the architectural memory image (golden comparisons).
func (m *Machine) MemSnapshot() map[uint64]uint64 { return m.mem.Snapshot() }

// Records returns a copy of the NVM-resident per-core recovery records.
func (m *Machine) Records() []CoreRecord {
	return append([]CoreRecord(nil), m.records...)
}

// NVMWord returns the persisted word (value and version) at addr.
func (m *Machine) NVMWord(addr uint64) mem.Word { return m.nvm.Peek(addr) }

// VerifyDetectable checks the detectability contract on the machine's
// recovery records: every record carrying a sync descriptor must have the
// descriptor's write persisted in NVM at a version at least Sync.Seq — the
// "complete" half of complete-or-absent. (The "absent" half needs no check:
// a descriptor that did not survive constrains nothing.) It returns the
// first violated record's core index, or -1.
func (m *Machine) VerifyDetectable() int {
	for i, rec := range m.records {
		if rec.Sync.Op == 0 {
			continue
		}
		if m.nvm.Peek(rec.Sync.Addr).Seq < rec.Sync.Seq {
			return i
		}
	}
	return -1
}

// NVMSnapshot returns the persisted NVM image.
func (m *Machine) NVMSnapshot() map[uint64]uint64 { return m.nvm.Snapshot() }

// Run executes until every core halts, a crash is injected via RunUntil, or
// the step budget is exhausted. It returns an error on budget exhaustion or
// an internal invariant violation (e.g. back-end proxy overflow).
func (m *Machine) Run() error { return m.run(^uint64(0)) }

// RunUntil executes until the global retired-instruction count reaches
// crashAt, then stops as if power failed. Use Crash() to harvest the
// persistent image. If the program finishes first, no crash occurs.
func (m *Machine) RunUntil(crashAt uint64) error { return m.run(crashAt) }

// Instret returns the total retired instructions across cores.
func (m *Machine) Instret() uint64 {
	var n uint64
	for _, c := range m.cores {
		n += c.instret
	}
	return n
}

func (m *Machine) run(crashAt uint64) error {
	// m.retired is the running sum of every core's instret, maintained by
	// this loop alone: New starts every core at zero and recovery builds
	// fresh cores, so a machine resumed mid-run (RunUntil segments, or Run
	// after a survived crash point) keeps its counter instead of re-summing
	// Instret() per entry. A dispatch retires at most maxFuseLen+1
	// instructions, so the delta around it is cheap to track.
	threaded := m.cfg.Dispatch == DispatchThreaded
	// The interleaving-safe quantum extension (quantum.go) engages only
	// under threaded dispatch and never on a crash run: crash points are
	// defined at instruction granularity on the reference schedule's global
	// retired-instruction order, which extended quanta reorder.
	m.extOK = threaded && !m.cfg.NoQuantumExt && crashAt == ^uint64(0)
	// Live telemetry arming, read once per run segment (telemetry.go).
	// The conditional defer means a disarmed run pays exactly one atomic
	// pointer load here and one nil check per scheduler pop below.
	if t := telemetry.ArmedMachine(); t != nil {
		m.telemetryEnter(t)
		defer m.telemetryExit()
	}
	// The run queue orders runnable cores by (cycle, coreID) — the reference
	// per-instruction schedule. Rebuilt per entry: cores may have been
	// resumed, recovered, or left stale by a crash/fatal exit.
	m.rq.reset(m.cores)
	// Horizons start degenerate (a zero span grants nothing); each core
	// publishes a real bound the first time it leaves the scheduler.
	for _, o := range m.cores {
		o.horSpan, o.horFn, o.horBlk, o.horIdx = 0, -1, -1, -1
	}
	// c is the scheduled core, held OUT of the queue while it runs; the next
	// round re-enqueues it and takes the new minimum in one pushpop pass.
	var c *core
	for !m.Done() {
		if m.fatal != nil {
			return m.fatal
		}
		if m.tele != nil && m.steps-m.telePub.steps >= telePublishEvery {
			m.publishTelemetry(false)
		}
		if m.retired >= crashAt {
			m.crashed = true
			return nil
		}
		if c == nil {
			c = m.rq.pop()
		} else {
			c = m.rq.pushpop(c)
		}
		if c == nil {
			return fmt.Errorf("machine: no runnable core")
		}
		// The strict quantum: the highest cycle at which the scheduler would
		// still pick c for a further instruction, read off the queue's new
		// minimum. A lower-ID core wins a cycle tie, so it caps the budget
		// one cycle earlier; its cycle is strictly above c's here (c was the
		// minimum), so the -1 is safe.
		budget := ^uint64(0)
		if o := m.rq.peek(); o != nil {
			budget = o.cycle
			if o.id < c.id {
				budget--
			}
		}
		// Open this pop's dispatch window (quantum.go). Without a grant it
		// coincides with the strict quantum and changes nothing; with one, c
		// may keep dispatching up to winExt. The attempt is a handful of
		// loads and compares over published horizons, cheap enough to run on
		// every pop (declined attempts back off, refreshes never do).
		m.winExt = budget
		if m.extOK && budget != ^uint64(0) {
			if m.extDefer > 0 {
				m.extDefer--
			} else if ext := m.extBudget(c); ext != ^uint64(0) && ext >= budget+minExtGain {
				m.qGrants++
				m.extBackoff = 0
				m.winExt = ext
			} else {
				m.qAborts++
				if m.extBackoff < 255 {
					m.extBackoff = m.extBackoff*2 + 1
				}
				m.extDefer = m.extBackoff
			}
		}
		for {
			if m.steps >= m.cfg.MaxSteps {
				return fmt.Errorf("machine: step budget exhausted (%d steps, %d instret) — deadlock?", m.steps, m.Instret())
			}
			m.steps++
			if c.front != nil && c.cycle >= c.svcAt {
				m.service(c)
			}
			before := c.instret
			if threaded && crashAt-m.retired > maxFuseLen+1 && c.cycle < m.winExt {
				m.stepThreaded(c)
			} else {
				// With zero window slack (cores in tight cycle lockstep — no
				// multi-instruction thunk could dispatch), near the crash
				// point (crash injection is defined at instruction
				// granularity), or in switch mode, retire one instruction at
				// a time on the reference core.
				m.step(c)
			}
			m.retired += c.instret - before
			if c.halted || m.fatal != nil || m.retired >= crashAt {
				break
			}
			if c.cycle > m.winExt {
				break
			}
		}
		if m.extOK && (c.idx != c.horIdx || c.blk != c.horBlk || c.fn != c.horFn) {
			// The PC moved: publish the span other cores will read while c
			// is parked. Stall-only pops skip this — their span is current.
			m.refreshHorizon(c)
		}
		if c.halted {
			// Halted cores never re-enqueue; the next round pops fresh.
			// Crash/fatal exits leave the queue stale by design.
			c = nil
		}
	}
	// Quiesce: let every pending region finish phase 2 so the NVM image and
	// output tapes are complete.
	m.quiesce()
	return m.fatal
}

// quiesce drains all proxy machinery after the program completes.
func (m *Machine) quiesce() {
	if !m.cfg.Capri {
		return
	}
	for _, c := range m.cores {
		// Push everything out of the front-end and the path.
		for c.front.Len() > 0 || c.path.InFlight() > 0 || c.back.Len() > 0 || len(c.drainDone) > 0 {
			now := c.cycle + m.cfg.ProxyLatency + m.cfg.ProxyInterval*uint64(m.cfg.FrontEndEntries+2)
			cause := CauseDrainWait
			if c.drainAttempts > 0 {
				// The wait is a drain-retry backoff, not ordinary phase-2
				// bandwidth (fault model).
				cause = CauseDrainRetry
			}
			c.stall(cause, now)
			m.service(c)
			if c.front.Len() > 0 {
				m.drainFront(c)
			}
			if m.fatal != nil {
				return
			}
		}
	}
}
