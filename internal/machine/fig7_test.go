package machine

import (
	"reflect"
	"testing"

	"capri/internal/compile"
	"capri/internal/isa"
	"capri/internal/prog"
)

// TestWritebackRaceFig7 forces the paper's Figure 7 scenario: dirty cache
// writebacks persist data to NVM while the owning regions are still in
// flight in the proxy buffers, so NVM transiently holds values *newer* than
// the last committed boundary. A deliberately tiny cache maximizes
// evictions. Recovery must use the undo images to roll NVM back to the
// boundary state, for every crash point.
func TestWritebackRaceFig7(t *testing.T) {
	// The program rewrites a small set of hot words (merged in cache,
	// evicted by conflicting cold traffic) — the same-address multi-region
	// pattern of Figure 6/7.
	bd := prog.NewBuilder("fig7")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	const (
		rI    = isa.Reg(8)
		rN    = isa.Reg(9)
		rHot  = isa.Reg(10)
		rCold = isa.Reg(11)
		rV    = isa.Reg(12)
		rOff  = isa.Reg(13)
	)

	f.SetBlock(entry)
	f.MovI(isa.SP, int64(StackBase(0)))
	f.MovI(rI, 0)
	f.MovI(rN, 120)
	f.MovI(rHot, int64(HeapBase))
	f.MovI(rCold, int64(HeapBase)+1<<16)
	f.MovI(rV, 1)
	f.Br(header)

	f.SetBlock(header)
	f.BrIf(rI, isa.CondGE, rN, exit, body)

	f.SetBlock(body)
	// Read-modify-write on the hot word: if recovery ever leaves an
	// uncommitted value in NVM, the reload after resume reads it and the
	// final output diverges — making the Figure 7 rollback observable.
	f.Load(rV, rHot, 0)
	f.Add(rV, rV, rI)
	f.AddI(rV, rV, 1)
	f.Store(rHot, 0, rV) // address A of Figure 6: rewritten every region
	f.Store(rHot, 8, rI)
	// Cold conflicting traffic to force evictions of the hot line.
	f.MulI(rOff, rI, 64)
	f.OpI(isa.OpAndI, rOff, rOff, (1<<14)-1)
	f.Add(rOff, rOff, rCold)
	f.Store(rOff, 0, rV)
	f.Load(rOff, rOff, 0)
	f.AddI(rI, rI, 1)
	f.Br(header)

	f.SetBlock(exit)
	f.Emit(rV)
	f.Halt()
	p := bd.Program()

	opts := compile.DefaultOptions()
	opts.Threshold = 64
	opts.MaxUnroll = 8 // long regions: the hot line's writeback lands inside them
	res, err := compile.Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Tiny, direct-mapped-ish caches: hot lines are evicted constantly, so
	// writebacks race the proxy path to NVM.
	cfg := testConfig(64)
	cfg.L1Size = 128
	cfg.L1Ways = 1
	cfg.L2Size = 128
	cfg.L2Ways = 1
	cfg.DRAMSize = 1 << 14
	// A long proxy path delays phase 2, widening the race window.
	cfg.ProxyLatency = 400
	cfg.ProxyInterval = 16

	golden, err := New(res.Program, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Run(); err != nil {
		t.Fatal(err)
	}
	goldenOut := golden.Output(0)
	total := golden.Instret()

	// Sanity: the scenario actually occurred — writebacks must have
	// invalidated buffered redo entries at least once.
	gs := golden.Stats()
	if gs.ScanHits == 0 && gs.WindowHits == 0 && gs.NVMStaleSkips == 0 {
		t.Fatal("test did not provoke any writeback/proxy race; tighten the config")
	}

	undoApplied := 0
	step := total/151 + 1
	for crashAt := uint64(1); crashAt < total; crashAt += step {
		m, _ := New(res.Program, cfg)
		if err := m.RunUntil(crashAt); err != nil {
			t.Fatal(err)
		}
		if m.Done() {
			break
		}
		img, err := m.Crash()
		if err != nil {
			t.Fatal(err)
		}
		r, rep, err := Recover(img)
		if err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
		undoApplied += rep.UndoneApplied
		if err := r.Run(); err != nil {
			t.Fatalf("crash@%d resume: %v", crashAt, err)
		}
		if !reflect.DeepEqual(r.Output(0), goldenOut) {
			t.Fatalf("crash@%d: output %v, want %v", crashAt, r.Output(0), goldenOut)
		}
	}
	// The whole point of Figure 7: at least some crashes must have required
	// rolling NVM *back* with undo data because a writeback persisted
	// uncommitted values.
	if undoApplied == 0 {
		t.Error("no undo restore was ever applied: Figure 7's rollback path untested")
	}
}

// TestNaiveRegionsUpTo2x reproduces the §1.4 claim that a naive
// whole-system-persistence design (a region per basic block, no
// optimizations) can slow programs down to ~2x.
func TestNaiveRegionsUpTo2x(t *testing.T) {
	// A branchy, call-dense program is the worst case for per-block regions.
	bd := prog.NewBuilder("naive2x")
	leaf := bd.Func("leaf")
	leaf.Block()
	leaf.AddI(isa.A0, isa.A0, 3)
	leaf.Ret()

	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	f.SetBlock(entry)
	f.MovI(isa.SP, int64(StackBase(0)))
	f.MovI(8, 0)
	f.MovI(9, 3000)
	f.MovI(10, int64(HeapBase))
	f.MovI(isa.A0, 1)
	f.Br(header)
	f.SetBlock(header)
	f.BrIf(8, isa.CondGE, 9, exit, body)
	f.SetBlock(body)
	f.Call(leaf)
	f.Store(10, 0, isa.A0)
	f.AddI(8, 8, 1)
	f.Br(header)
	f.SetBlock(exit)
	f.Emit(isa.A0)
	f.Halt()
	bd.SetThreadEntries(f)
	p := bd.Program()

	cfgB := testConfig(64)
	cfgB.Capri = false
	mb, _ := New(p, cfgB)
	if err := mb.Run(); err != nil {
		t.Fatal(err)
	}

	opts := compile.Options{Threshold: 64, InsertCheckpoints: true, NaiveRegions: true, MaxUnroll: 1}
	res, err := compile.Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	mn, _ := New(res.Program, testConfig(64))
	if err := mn.Run(); err != nil {
		t.Fatal(err)
	}
	// The paper reports "up to 2X" over full benchmarks; this micro is a
	// deliberate worst case (a call and a store per tiny region), so the
	// naive design lands deep in the multi-x regime.
	ratio := float64(mn.Cycles()) / float64(mb.Cycles())
	if ratio < 1.5 {
		t.Errorf("naive slowdown = %.2fx, want the paper's >= 2X-class regime", ratio)
	}
	if ratio > 10.0 {
		t.Errorf("naive slowdown = %.2fx, implausibly high", ratio)
	}

	// The full Capri pipeline must beat naive decisively.
	full, err := compile.Compile(p, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mf, _ := New(full.Program, testConfig(256))
	if err := mf.Run(); err != nil {
		t.Fatal(err)
	}
	if mf.Cycles() >= mn.Cycles() {
		t.Errorf("full pipeline (%d cycles) not faster than naive (%d)", mf.Cycles(), mn.Cycles())
	}
}
