package machine

import (
	"reflect"
	"testing"

	"capri/internal/isa"
	"capri/internal/prog"
)

// sink records every delivered output value, surviving across machines the
// way a real external device would survive a power failure.
type sink struct {
	got [][]uint64 // per core
}

func newSink(cores int) *sink { return &sink{got: make([][]uint64, cores)} }

func (s *sink) Output(core int, val uint64) {
	s.got[core] = append(s.got[core], val)
}

// emitProgram emits every loop index — a stream of externally visible I/O.
func emitProgram(n int64) *prog.Program {
	bd := prog.NewBuilder("emitter")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	f.SetBlock(entry)
	f.MovI(isa.SP, int64(StackBase(0)))
	f.MovI(8, 0)
	f.MovI(9, n)
	f.MovI(10, int64(HeapBase))
	f.Br(header)
	f.SetBlock(header)
	f.BrIf(8, isa.CondGE, 9, exit, body)
	f.SetBlock(body)
	f.Emit(8)
	f.Store(10, 0, 8)
	f.AddI(8, 8, 1)
	f.Br(header)
	f.SetBlock(exit)
	f.Halt()
	bd.SetThreadEntries(f)
	return bd.Program()
}

func TestDeviceReceivesCommittedOutputInOrder(t *testing.T) {
	cp := compileFor(t, emitProgram(50), 16)
	m, _ := New(cp, testConfig(16))
	d := newSink(1)
	m.AttachOutputDevice(d)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, 50)
	for i := range want {
		want[i] = uint64(i)
	}
	if !reflect.DeepEqual(d.got[0], want) {
		t.Errorf("device stream = %v", d.got[0])
	}
	// The durable tape agrees with the device.
	if !reflect.DeepEqual(m.Output(0), want) {
		t.Errorf("tape = %v", m.Output(0))
	}
}

// TestDeviceExactlyOnceAcrossCrashes is the §3.3 I/O guarantee: the external
// device, which is never rolled back, sees every output value exactly once
// and in order, no matter where the power fails.
func TestDeviceExactlyOnceAcrossCrashes(t *testing.T) {
	cp := compileFor(t, emitProgram(60), 8)

	golden := make([]uint64, 60)
	for i := range golden {
		golden[i] = uint64(i)
	}

	mg, _ := New(cp, testConfig(8))
	if err := mg.Run(); err != nil {
		t.Fatal(err)
	}
	total := mg.Instret()

	step := total/41 + 1
	for crashAt := uint64(1); crashAt < total; crashAt += step {
		d := newSink(1) // the device persists across the "reboot"
		m, _ := New(cp, testConfig(8))
		m.AttachOutputDevice(d)
		if err := m.RunUntil(crashAt); err != nil {
			t.Fatal(err)
		}
		if m.Done() {
			break
		}
		img, err := m.Crash()
		if err != nil {
			t.Fatal(err)
		}
		// The same device instance is attached to the recovered machine
		// BEFORE the protocol replays committed-but-undrained regions.
		r, _, err := RecoverAttached(img, d)
		if err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("crash@%d resume: %v", crashAt, err)
		}
		if !reflect.DeepEqual(d.got[0], golden) {
			t.Fatalf("crash@%d: device saw %v (len %d), want exactly-once 0..59",
				crashAt, d.got[0], len(d.got[0]))
		}
	}
}

func TestDeviceNotCalledForUncommittedEmits(t *testing.T) {
	cp := compileFor(t, emitProgram(50), 16)
	m, _ := New(cp, testConfig(16))
	d := newSink(1)
	m.AttachOutputDevice(d)
	// Stop early: emits of the in-flight region must not have reached the
	// device (only committed, phase-2-complete ones may).
	if err := m.RunUntil(30); err != nil {
		t.Fatal(err)
	}
	tape := m.Output(0)
	if len(d.got[0]) != len(tape) {
		t.Errorf("device has %d values, durable tape %d — device ahead of commit",
			len(d.got[0]), len(tape))
	}
}
