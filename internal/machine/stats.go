package machine

// Stats aggregates the counters the benchmark harness reports.
type Stats struct {
	Cycles      uint64
	Instret     uint64
	Steps       uint64
	Stores      uint64 // regular + sync stores retired
	Ckpts       uint64 // checkpoint stores retired
	Boundaries  uint64 // boundary instructions retired
	StallCycles uint64 // cycles lost to proxy backpressure and spin locks

	// CycleBy is the critical core's cycle-accounting ledger: per-cause cycle
	// totals for the core whose cycle count equals Cycles (the makespan).
	// Its entries sum exactly to Cycles, so two runs' CycleBy can be
	// subtracted to decompose their makespan gap with zero residual — that is
	// what `capribench -explain` prints. (Summing ledgers across cores would
	// instead sum to total core-cycles, which is not what the figures plot.)
	CycleBy [NumCycleCauses]uint64

	// Persistence machinery.
	NVMWrites       uint64 // 64B write-queue occupancies (redo + writebacks)
	NVMWordWrites   uint64
	NVMStaleSkips   uint64 // writes dropped by the sequence guard
	FrontAllocs     uint64
	FrontMerges     uint64
	FrontStalls     uint64
	BoundaryEntries uint64
	ElidedBds       uint64
	ScanHits        uint64 // redo valid-bits unset by writeback scans
	WindowHits      uint64 // redo valid-bits unset by the monitoring window
	RedoSkipped     uint64 // phase-2 entries skipped as invalid
	DrainRetries    uint64 // transient NVM write errors retried (fault model)
	DrainExhausted  uint64 // drains that exhausted the retry budget (fault model)

	// Threaded-dispatch decode cache (decode.go; zero under DispatchSwitch).
	DecodeBlocks uint64 // basic blocks translated into thunk runs (cache misses)
	DecodeHits   uint64 // block entries served from the decode cache
	DecodeFused  uint64 // fused superinstructions among the decoded thunks

	// Multi-core scheduler (runq.go + quantum.go; simulator-side only — none
	// of these ever affect simulated state).
	QuantumGrants uint64 // dispatches extended beyond the strict quantum
	QuantumAborts uint64 // extension attempts declined or cut short by a conflict
	SchedQueueOps uint64 // run-queue pushes + pops

	// Dynamic region shape (Figures 10 and 11).
	Regions         uint64
	AvgRegionInsts  float64
	AvgRegionStores float64

	// Cache behaviour.
	L1Hits, L1Misses     uint64
	L2Hits, L2Misses     uint64
	DRAMHits, DRAMMisses uint64
}

// Stats snapshots the machine's counters.
func (m *Machine) Stats() Stats {
	s := Stats{
		Cycles:        m.Cycles(),
		Steps:         m.steps,
		NVMWrites:     m.nvm.Writes,
		NVMWordWrites: m.nvm.WordWrites,
		NVMStaleSkips: m.nvm.StaleSkips,
		L2Hits:        m.l2.Hits,
		L2Misses:      m.l2.Misses,
		DRAMHits:      m.dram.Hits,
		DRAMMisses:    m.dram.Misses,
		QuantumGrants: m.qGrants,
		QuantumAborts: m.qAborts,
		SchedQueueOps: m.rq.ops,
	}
	if m.dec != nil {
		s.DecodeBlocks = m.dec.misses
		s.DecodeHits = m.dec.hits
		s.DecodeFused = m.dec.fused
	}
	var crit *core
	for _, c := range m.cores {
		if crit == nil || c.cycle > crit.cycle {
			crit = c
		}
		s.Instret += c.instret
		s.Stores += c.dynStores
		s.Ckpts += c.dynCkpts
		s.Boundaries += c.dynBounds
		s.StallCycles += c.stallCycles
		s.L1Hits += c.l1.Hits
		s.L1Misses += c.l1.Misses
		s.Regions += c.regionsEnded
		s.AvgRegionInsts += float64(c.sumInsts)
		s.AvgRegionStores += float64(c.sumStores)
		if m.cfg.Capri {
			s.FrontAllocs += c.front.Allocs
			s.FrontMerges += c.front.Merges
			s.FrontStalls += c.front.Stalls
			s.BoundaryEntries += c.front.Boundary
			s.ElidedBds += c.front.ElidedBds
			s.ScanHits += c.back.ScanHits
			s.WindowHits += c.path.WindowHits
			s.RedoSkipped += c.back.SkippedInvalid
			s.DrainRetries += c.drainRetries
			s.DrainExhausted += c.drainExhausted
		}
	}
	if crit != nil {
		s.CycleBy = crit.cycleBy
	}
	if s.Regions > 0 {
		s.AvgRegionInsts /= float64(s.Regions)
		s.AvgRegionStores /= float64(s.Regions)
	}
	return s
}
