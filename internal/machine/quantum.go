package machine

import "capri/internal/isa"

// This file is the conflict-aware quantum extension of the multi-core
// scheduler (DESIGN §4i). Under the reference per-instruction schedule,
// cores in cycle lockstep pin the strict quantum (machine.go's budget) to a
// single instruction, so the threaded core's fused superinstructions never
// engage and every retired instruction pays a full scheduler round-trip. The
// extension proves, once per run-queue pop, that no other core can touch
// shared state — a cache line, the global store sequence, the NVM write
// queue, the audit event stream, or any proxy interaction — before a window
// of cycles ends. Within that window, core c keeps dispatching without
// surrendering the scheduler, and because every op it starts at a cycle
// inside the window precedes every other core's next shared interaction in
// the reference order too, all simulated observables (per-core cycles and
// ledger, memory/NVM images, event stream order and content) stay
// byte-identical to the reference schedule.
//
// The window is justified by an exchange argument over op start cycles: each
// instruction executes atomically within one dispatch in both schedules, so
// only dispatch start cycles determine the cross-core order of shared
// interactions. Every other core's ops up to its hard horizon are core-local
// (register-only ALU work, emits, fences, staged checkpoints), so running
// c's ops — loads, stores, services, boundaries included — ahead of them
// commutes.
//
// A core's hard horizon is the minimum of facts that are exact and readable
// without touching shared simulator state:
//
//   - The static local span. Each decoded block carries, per instruction
//     index, the exact cycle span of purely core-local work before the next
//     "stopper" (decode.go): local op costs are fixed, local ops cannot
//     stall, and services strictly before the horizon are no-ops, so the
//     span is exact, not an estimate. The span is published as the core
//     leaves the scheduler (refreshHorizon) and only recomputed when the
//     core's PC actually moved — a stall-only pop pays three compares.
//   - Service horizons, folded in at attempt time (extBudget). Not every
//     service phase is a shared interaction, and the cap depends on what is
//     observable: with an audit sink attached every launch event's order is
//     observable, so a parked core's full service horizon (c.svcAt,
//     memsys.go) bounds the window; untapped, only the earliest phase-2
//     drain retirement (writes NVM, the ledger, durable output) and the
//     head in-flight proxy packet's arrival (a later store can fold a
//     writeback note into it, and the note's effect depends on delivery)
//     are hard, and both are exact field reads.
//
// Every horizon input is frozen while the core is parked in the run queue —
// the decoded span table is immutable, and svcAt, the drain book, and the
// proxy path are only ever moved by the core's own dispatches — so an
// attempt is a handful of loads and compares per parked core, which is why
// the extension can afford to test every single pop instead of sampling.
// An earlier design extended horizons past provably-local dynamic shapes
// (spins on held locks, loads hitting the private L1); the peeks walked
// other cores' cold register files and cache tags on every attempt and cost
// more than the few extra window cycles they bought, so the static subset
// is the whole design.
//
// The fallback contract: whenever independence cannot be proven the window
// collapses to the strict quantum and every op executes on the exact
// single-step reference schedule. Crash injection (RunUntil) disables the
// extension entirely — crash points are defined at instruction granularity
// on the reference schedule's global retired-instruction order, and must
// keep landing on its boundaries.

// minExtGain is the narrowest window worth granting, in cycles beyond the
// strict quantum. A granted window routes dispatches through the windowed
// path (threaded dispatch, overflow checks), so a sliver of a window costs
// more simulator time than the two or three batched instructions it buys.
// Purely a simulator heuristic — granting never changes simulated
// observables.
const minExtGain = 8

// refreshHorizon recomputes core c's hard horizon — a sound lower bound on
// the cycle at which its next non-local ("hard") action starts — as it
// leaves the scheduler. The scheduler consults the cached bound (extBudget)
// while c is parked; both inputs are frozen until c runs again.
func (m *Machine) refreshHorizon(c *core) {
	c.horFn, c.horBlk, c.horIdx = c.fn, c.blk, c.idx
	c.horSpan = 0
	if c.halted || c.fn < 0 || c.fn >= len(m.prog.Funcs) {
		return
	}
	f := m.prog.Funcs[c.fn]
	if c.blk < 0 || c.blk >= len(f.Blocks) {
		return
	}
	// A pop usually ends just after a fused branch retired, so the PC sits
	// at the head of a successor block the block cache has not seen yet;
	// refresh it here exactly as the next dispatch would (stepThreaded), or
	// the span lookup would miss the common case. Malformed PCs fall
	// through to the degenerate zero span and fatal on the next dispatch.
	if c.blkFn != c.fn || c.blkId != c.blk || c.dblk == nil {
		b := f.Blocks[c.blk]
		c.blkInsts = b.Insts
		c.blkFn, c.blkId = c.fn, c.blk
		c.dblk = m.decodedBlock(c.fn, c.blk, b)
	}
	if c.idx < len(c.dblk.span) {
		c.horSpan = c.dblk.span[c.idx]
	}
}

// extBudget computes core c's extended window: the highest cycle at which c
// may still start an op without reordering any shared interaction. The
// bound is adjusted for the scheduler's ID tie-break exactly like the
// strict budget: a lower-ID core wins a cycle tie, so c must stay strictly
// below its horizon.
func (m *Machine) extBudget(c *core) (ext uint64) {
	ext = ^uint64(0)
	obs := m.tap != nil
	for _, o := range m.cores {
		if o == c || o.halted {
			continue
		}
		h := o.cycle + o.horSpan
		if o.front != nil {
			// Service horizons. Not every service phase is a shared
			// interaction: front-end departures and path deliveries only
			// move entries between o's own proxy stages, so they commute
			// with anything c does and do not bound the window — with two
			// exceptions, both exact.
			if obs {
				// An audit sink taps every launch, and the stream's event
				// order must match the reference schedule, so o's full
				// service horizon caps the window.
				if o.svcAt < h {
					h = o.svcAt
				}
			} else {
				// A drain retirement writes NVM words, the ledger, and
				// durable output: a hard action.
				if len(o.drainDone) > 0 && o.drainDone[0] < h {
					h = o.drainDone[0]
				}
				// An in-flight packet must be delivered before any later
				// store of c's can hit it (a store invalidating o's dirty
				// L1 line folds a writeback note into o's path, and the
				// note's effect depends on whether the packet has left).
				if a, ok := o.path.HeadArrival(); ok && a < h {
					h = a
				}
			}
		}
		if o.id < c.id && h != 0 {
			h--
		}
		if h < ext {
			ext = h
		}
	}
	return ext
}

// runExtended executes the prefix of fused run d that fits the current
// dispatch window: every op may start at any cycle ≤ winExt, the interior
// mirrors runInterior's batched-tick and service-gate semantics exactly,
// and a tail executes only if its own start cycle is still inside the
// window. When the window is exhausted mid-run the executed prefix retires
// and the PC rests on an interior index, so the remainder single-steps on
// the reference core — identical to the proven stalled-fused-tail shape.
// stepThreaded calls this whenever a run's worst case overflows a granted
// window; the worst case prices loads at their miss cost, so the actual
// execution usually fits.
func (m *Machine) runExtended(c *core, d *dop) {
	gated := c.front != nil
	var acc uint64
	executed := 0
	for i := range d.slice {
		if c.cycle+acc > m.winExt {
			break
		}
		if gated && i > 0 && c.cycle+acc >= c.svcAt {
			if acc != 0 {
				c.tick(CauseExec, acc)
				acc = 0
			}
			m.service(c)
		}
		in := &d.slice[i]
		switch in.Op {
		case isa.OpLoad:
			if acc != 0 {
				c.tick(CauseExec, acc)
				acc = 0
			}
			addr := c.regs[in.Ra] + uint64(in.Imm)
			c.regs[in.Rd] = m.mem.Load(addr)
			m.chargeLoad(c, addr)
		case isa.OpFence, isa.OpBarrier:
			c.tick(CauseFence, 4)
		case isa.OpEmit:
			c.stagedEmits = append(c.stagedEmits, c.regs[in.Ra])
			acc += costALU
		case isa.OpCkpt:
			if m.cfg.Capri {
				c.front.StageCkpt(in.Ra, c.regs[in.Ra])
			}
			c.dynCkpts++
			c.curStores++
			c.tick(CauseCkpt, 2*costStore)
		default:
			execOne(&c.regs, in)
			acc += aluCost(in.Op)
		}
		executed++
	}
	if acc != 0 {
		c.tick(CauseExec, acc)
	}
	c.idx += executed
	c.instret += uint64(executed)
	c.curInsts += uint64(executed)
	if executed < d.n || d.in == nil {
		return // window exhausted mid-interior, or tail-less run fully retired
	}
	if c.cycle > m.winExt {
		return // tail left for the next dispatch (interior resume point)
	}
	switch d.in.Op {
	case isa.OpBr:
		m.serviceGate(c)
		c.tick(CauseExec, costBranch)
		c.blk, c.idx = int(d.in.Target), 0
		c.instret++
		c.curInsts++
	case isa.OpBrIf:
		in := d.in
		m.serviceGate(c)
		c.tick(CauseExec, costBranch)
		if in.Cond.Eval(c.regs[in.Ra], c.regs[in.Rb]) {
			c.blk = int(in.Target)
		} else {
			c.blk = int(in.Else)
		}
		c.idx = 0
		c.instret++
		c.curInsts++
	case isa.OpStore:
		in := d.in
		addr := c.regs[in.Ra] + uint64(in.Imm)
		if !m.doStore(c, addr, c.regs[in.Rb]) {
			return // stalled on the front-end proxy; retry
		}
		c.dynStores++
		c.curStores++
		c.idx++
		c.instret++
		c.curInsts++
	}
}
