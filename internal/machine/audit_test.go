package machine

import (
	"reflect"
	"testing"

	"capri/internal/audit"
	"capri/internal/compile"
	"capri/internal/isa"
	"capri/internal/prog"
)

// attachAudit wires a flight recorder and an online auditor to m (recorder
// first, so violation chains include the offending event) and returns both.
func attachAudit(t *testing.T, m *Machine) (*audit.FlightRecorder, *audit.Auditor) {
	t.Helper()
	rec := audit.NewFlightRecorder(0)
	aud := audit.NewAuditor(m.AuditOptions())
	aud.AttachRecorder(rec)
	m.SetTap(audit.Tee(rec, aud))
	return rec, aud
}

// TestAuditedRunClean runs an unmutated machine under the full provenance
// tap and asserts the Fig. 7 auditor sees zero violations while observing a
// complete event stream (stores, commits, launches, arrivals, drains).
func TestAuditedRunClean(t *testing.T) {
	cp := compileFor(t, sumProgram(300), 32)
	m, err := New(cp, testConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	rec, aud := attachAudit(t, m)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	counts := rec.KindCounts()
	for _, k := range []audit.Kind{audit.EvStore, audit.EvCommit, audit.EvLaunch,
		audit.EvBackArrive, audit.EvDrain, audit.EvDrainWrite} {
		if counts[k] == 0 {
			t.Errorf("no %s events observed", k)
		}
	}
	if aud.EventsAudited() != rec.Total() {
		t.Errorf("auditor saw %d events, recorder %d", aud.EventsAudited(), rec.Total())
	}
}

// raceProgram builds the Figure 7 writeback-race workload: a hot line
// rewritten every region plus cold conflicting traffic that evicts it, so
// dirty writebacks race in-flight proxy entries.
func raceProgram() *prog.Program {
	bd := prog.NewBuilder("fig7audit")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	const (
		rI    = isa.Reg(8)
		rN    = isa.Reg(9)
		rHot  = isa.Reg(10)
		rCold = isa.Reg(11)
		rV    = isa.Reg(12)
		rOff  = isa.Reg(13)
	)
	f.SetBlock(entry)
	f.MovI(isa.SP, int64(StackBase(0)))
	f.MovI(rI, 0)
	f.MovI(rN, 120)
	f.MovI(rHot, int64(HeapBase))
	f.MovI(rCold, int64(HeapBase)+1<<16)
	f.MovI(rV, 1)
	f.Br(header)
	f.SetBlock(header)
	f.BrIf(rI, isa.CondGE, rN, exit, body)
	f.SetBlock(body)
	f.Load(rV, rHot, 0)
	f.Add(rV, rV, rI)
	f.AddI(rV, rV, 1)
	f.Store(rHot, 0, rV)
	f.Store(rHot, 8, rI)
	f.MulI(rOff, rI, 64)
	f.OpI(isa.OpAndI, rOff, rOff, (1<<14)-1)
	f.Add(rOff, rOff, rCold)
	f.Store(rOff, 0, rV)
	f.Load(rOff, rOff, 0)
	f.AddI(rI, rI, 1)
	f.Br(header)
	f.SetBlock(exit)
	f.Emit(rV)
	f.Halt()
	return bd.Program()
}

// raceConfig is the matching machine configuration: tiny direct-mapped
// caches and a long proxy path to widen the race window.
func raceConfig() Config {
	cfg := testConfig(64)
	cfg.L1Size = 128
	cfg.L1Ways = 1
	cfg.L2Size = 128
	cfg.L2Ways = 1
	cfg.DRAMSize = 1 << 14
	cfg.ProxyLatency = 400
	cfg.ProxyInterval = 16
	return cfg
}

func compileRace(t *testing.T) *prog.Program {
	t.Helper()
	opts := compile.DefaultOptions()
	opts.Threshold = 64
	opts.MaxUnroll = 8
	res, err := compile.Compile(raceProgram(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Program
}

// TestAuditedWritebackRace audits the Figure 7 writeback-race configuration:
// tiny caches evict hot lines constantly, so dirty writebacks race in-flight
// proxy entries, exercising the monitoring-window and sequence-guard rules.
// The unmutated machine must still audit clean.
func TestAuditedWritebackRace(t *testing.T) {
	m, err := New(compileRace(t), raceConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec, aud := attachAudit(t, m)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("writeback-race run flagged: %v", err)
	}
	// The race must actually have occurred, or this test proves nothing.
	s := m.Stats()
	if s.ScanHits == 0 && s.WindowHits == 0 && s.NVMStaleSkips == 0 {
		t.Fatal("no writeback/proxy race provoked; tighten the config")
	}
	if rec.KindCounts()[audit.EvWritebackWord] == 0 {
		t.Error("no writeback words observed")
	}
}

// TestAuditedCrashSweep crashes the machine at a spread of points, recovers
// with RecoverInstrumented (the tap installed *before* replay, so the auditor
// observes the recovery protocol itself), resumes under the same auditor, and
// asserts both the audit verdict and the golden output.
func TestAuditedCrashSweep(t *testing.T) {
	cp := compileFor(t, sumProgram(120), 32)
	cfg := testConfig(32)

	golden, err := New(cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Run(); err != nil {
		t.Fatal(err)
	}
	goldenOut := golden.Output(0)
	total := golden.Instret()

	step := total/23 + 1
	recovered := 0
	for crashAt := uint64(1); crashAt < total; crashAt += step {
		m, err := New(cp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := audit.NewFlightRecorder(0)
		aud := audit.NewAuditor(m.AuditOptions())
		aud.AttachRecorder(rec)
		tap := audit.Tee(rec, aud)
		m.SetTap(tap)
		if err := m.RunUntil(crashAt); err != nil {
			t.Fatal(err)
		}
		if m.Done() {
			break
		}
		img, err := m.Crash()
		if err != nil {
			t.Fatal(err)
		}
		// The same auditor stays attached across the crash: its NVM shadow
		// carries over, and it watches the recovery replay and the resumed
		// execution.
		r, _, err := RecoverInstrumented(img, nil, tap)
		if err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("crash@%d resume: %v", crashAt, err)
		}
		if err := aud.Err(); err != nil {
			t.Fatalf("crash@%d audit: %v", crashAt, err)
		}
		if !reflect.DeepEqual(r.Output(0), goldenOut) {
			t.Fatalf("crash@%d: output %v, want %v", crashAt, r.Output(0), goldenOut)
		}
		if rec.KindCounts()[audit.EvCrash] != 1 {
			t.Fatalf("crash@%d: recorded %d crash events", crashAt, rec.KindCounts()[audit.EvCrash])
		}
		recovered++
	}
	if recovered == 0 {
		t.Fatal("sweep never crashed")
	}
}

// TestAuditedCrashSweepWritebackRace repeats the audited crash sweep under
// the Figure 7 race configuration, so the auditor's recovery rules see undo
// rollbacks of lines that dirty writebacks persisted early (the hard case:
// NVM sequence numbers inflated past the entries' own stores).
func TestAuditedCrashSweepWritebackRace(t *testing.T) {
	cp := compileRace(t)
	cfg := raceConfig()

	golden, err := New(cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Run(); err != nil {
		t.Fatal(err)
	}
	goldenOut := golden.Output(0)
	total := golden.Instret()

	undoApplied := 0
	step := total/31 + 1
	for crashAt := uint64(1); crashAt < total; crashAt += step {
		m, err := New(cp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := audit.NewFlightRecorder(0)
		aud := audit.NewAuditor(m.AuditOptions())
		aud.AttachRecorder(rec)
		tap := audit.Tee(rec, aud)
		m.SetTap(tap)
		if err := m.RunUntil(crashAt); err != nil {
			t.Fatal(err)
		}
		if m.Done() {
			break
		}
		img, err := m.Crash()
		if err != nil {
			t.Fatal(err)
		}
		r, rep, err := RecoverInstrumented(img, nil, tap)
		if err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
		undoApplied += rep.UndoneApplied
		if err := r.Run(); err != nil {
			t.Fatalf("crash@%d resume: %v", crashAt, err)
		}
		if err := aud.Err(); err != nil {
			t.Fatalf("crash@%d audit: %v", crashAt, err)
		}
		if !reflect.DeepEqual(r.Output(0), goldenOut) {
			t.Fatalf("crash@%d: output %v, want %v", crashAt, r.Output(0), goldenOut)
		}
	}
	if undoApplied == 0 {
		t.Error("no undo restore applied: the audited rollback path went untested")
	}
}

// TestRedoSkippedCounter pins the SkippedInvalid plumbing: phase 2 must count
// every invalidated redo entry it skips, and the stat must reach Stats().
func TestRedoSkippedCounter(t *testing.T) {
	m, err := New(compileRace(t), raceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.ScanHits+s.WindowHits == 0 {
		t.Fatal("no invalidations provoked; tighten the config")
	}
	if s.RedoSkipped == 0 {
		t.Error("entries were invalidated but RedoSkipped stayed zero")
	}
}
