package machine

import (
	"testing"

	"capri/internal/compile"
	"capri/internal/isa"
	"capri/internal/prog"
)

// genLikeProgram builds a modest branchy/loopy program inline (the machine
// package cannot import progen — progen depends on machine), so the
// convergence invariant gets a richer subject than sumProgram.
func genLikeProgram() *prog.Program {
	bd := prog.NewBuilder("branchy")
	f := bd.Func("main")
	entry := f.Block()
	oHdr := f.Block()
	oBody := f.Block()
	thenB := f.Block()
	elseB := f.Block()
	join := f.Block()
	iHdr := f.Block()
	iBody := f.Block()
	oLatch := f.Block()
	exit := f.Block()

	const (
		rI    = isa.Reg(8)
		rJ    = isa.Reg(9)
		rN    = isa.Reg(10)
		rM    = isa.Reg(11)
		rBase = isa.Reg(12)
		rV    = isa.Reg(13)
		rOff  = isa.Reg(14)
		rTwo  = isa.Reg(15)
	)

	f.SetBlock(entry)
	f.MovI(isa.SP, int64(StackBase(0)))
	f.MovI(rI, 0)
	f.MovI(rN, 40)
	f.MovI(rM, 5)
	f.MovI(rBase, int64(HeapBase))
	f.MovI(rV, 3)
	f.MovI(rTwo, 2)
	f.Br(oHdr)

	f.SetBlock(oHdr)
	f.BrIf(rI, isa.CondGE, rN, exit, oBody)

	f.SetBlock(oBody)
	f.Op3(isa.OpRem, rOff, rI, rTwo)
	f.BrIf(rOff, isa.CondEQ, rTwo, thenB, elseB) // never eq: always else
	f.SetBlock(thenB)
	f.MulI(rV, rV, 5)
	f.Br(join)
	f.SetBlock(elseB)
	f.AddI(rV, rV, 11)
	f.Store(rBase, 0, rV)
	f.Br(join)

	f.SetBlock(join)
	f.MovI(rJ, 0)
	f.Br(iHdr)
	f.SetBlock(iHdr)
	f.BrIf(rJ, isa.CondGE, rM, oLatch, iBody)
	f.SetBlock(iBody)
	f.OpI(isa.OpShlI, rOff, rJ, 3)
	f.Add(rOff, rOff, rBase)
	f.Store(rOff, 64, rV)
	f.AddI(rJ, rJ, 1)
	f.Br(iHdr)

	f.SetBlock(oLatch)
	f.AddI(rI, rI, 1)
	f.Br(oHdr)

	f.SetBlock(exit)
	f.Emit(rV)
	f.Halt()
	bd.SetThreadEntries(f)
	return bd.Program()
}

// TestQuiesceConvergence: after Run (which quiesces the proxy machinery),
// the persisted NVM image must equal the architectural memory for every
// touched word — whole-system persistence at completion, on a branchy
// program and across thresholds.
func TestQuiesceConvergence(t *testing.T) {
	src := genLikeProgram()
	for _, th := range []int{4, 16, 64, 256} {
		opts := compile.DefaultOptions()
		opts.Threshold = th
		res, err := compile.Compile(src, opts)
		if err != nil {
			t.Fatalf("th=%d: %v", th, err)
		}
		m, _ := New(res.Program, testConfig(th))
		if err := m.Run(); err != nil {
			t.Fatalf("th=%d: %v", th, err)
		}
		memImg := m.MemSnapshot()
		nvmImg := m.NVMSnapshot()
		for a, v := range memImg {
			if nvmImg[a] != v {
				t.Errorf("th=%d: nvm[%#x]=%d mem=%d", th, a, nvmImg[a], v)
			}
		}
		// And nothing extra in NVM that memory doesn't have.
		for a, v := range nvmImg {
			if v != 0 && memImg[a] != v {
				t.Errorf("th=%d: stray nvm[%#x]=%d", th, a, v)
			}
		}
	}
}

// TestBackpressureNeverDeadlocks: a pathological configuration (1-entry
// front-end, tiny back-end via threshold 2, slow path) must still complete —
// backpressure stalls, never wedges.
func TestBackpressureNeverDeadlocks(t *testing.T) {
	src := genLikeProgram()
	opts := compile.DefaultOptions()
	opts.Threshold = 2
	res, err := compile.Compile(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2)
	cfg.FrontEndEntries = 1
	cfg.ProxyLatency = 500
	cfg.ProxyInterval = 50
	cfg.MaxSteps = 20_000_000
	m, _ := New(res.Program, cfg)
	if err := m.Run(); err != nil {
		t.Fatalf("deadlock or budget blowout: %v", err)
	}
	if s := m.Stats(); s.FrontStalls == 0 {
		t.Error("pathological config produced no stalls — backpressure untested")
	}
}

// TestDebugPC sanity-checks the debug accessors used by the validation
// harness.
func TestDebugPC(t *testing.T) {
	cp := compileFor(t, sumProgram(10), 16)
	m, _ := New(cp, testConfig(16))
	fn, blk, idx := m.DebugPC(0)
	if fn != 0 || blk != cp.Funcs[0].Entry || idx != 0 {
		t.Errorf("initial PC = (%d,%d,%d)", fn, blk, idx)
	}
	if err := m.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	_, _, idx2 := m.DebugPC(0)
	if idx2 == 0 {
		t.Error("PC did not advance")
	}
}

// TestSchedulerPicksLaggard: with two threads of very different speeds, the
// min-cycle scheduler must keep both progressing (the slow one is always
// picked when behind), so completion requires both halting.
func TestSchedulerPicksLaggard(t *testing.T) {
	bd := prog.NewBuilder("two")
	short := bd.Func("short")
	short.Block()
	short.MovI(isa.SP, int64(StackBase(0)))
	short.MovI(8, 1)
	short.Emit(8)
	short.Halt()

	long := bd.Func("long")
	e := long.Block()
	h := long.Block()
	b := long.Block()
	x := long.Block()
	long.SetBlock(e)
	long.MovI(isa.SP, int64(StackBase(1)))
	long.MovI(8, 0)
	long.MovI(9, 500)
	long.Br(h)
	long.SetBlock(h)
	long.BrIf(8, isa.CondGE, 9, x, b)
	long.SetBlock(b)
	long.AddI(8, 8, 1)
	long.Br(h)
	long.SetBlock(x)
	long.Emit(8)
	long.Halt()
	bd.SetThreadEntries(short, long)

	cp := compileFor(t, bd.Program(), 32)
	m, _ := New(cp, testConfig(32))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("not done")
	}
	if got := m.Output(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("short thread output = %v", got)
	}
	if got := m.Output(1); len(got) != 1 || got[0] != 500 {
		t.Errorf("long thread output = %v", got)
	}
}
