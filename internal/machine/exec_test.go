package machine

import (
	"testing"

	"capri/internal/isa"
	"capri/internal/prog"
)

// runStraight executes a straight-line instruction sequence on a baseline
// machine and returns it for register inspection.
func runStraight(t *testing.T, emit func(f *prog.FuncBuilder)) *Machine {
	t.Helper()
	bd := prog.NewBuilder("straight")
	f := bd.Func("main")
	f.Block()
	f.MovI(isa.SP, int64(StackBase(0)))
	emit(f)
	f.Halt()
	bd.SetThreadEntries(f)
	cfg := testConfig(64)
	cfg.Capri = false
	m, err := New(bd.Program(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExecALUSemantics(t *testing.T) {
	m := runStraight(t, func(f *prog.FuncBuilder) {
		f.MovI(1, 20)
		f.MovI(2, 6)
		f.Add(3, 1, 2)             // 26
		f.Op3(isa.OpSub, 4, 1, 2)  // 14
		f.Mul(5, 1, 2)             // 120
		f.Op3(isa.OpDiv, 6, 1, 2)  // 3
		f.Op3(isa.OpRem, 7, 1, 2)  // 2
		f.Op3(isa.OpAnd, 8, 1, 2)  // 20&6 = 4
		f.Op3(isa.OpOr, 9, 1, 2)   // 22
		f.Op3(isa.OpXor, 10, 1, 2) // 18
		f.Op3(isa.OpShl, 11, 1, 2) // 20<<6 = 1280
		f.Op3(isa.OpShr, 12, 1, 2) // 0
		f.Op3(isa.OpMin, 13, 1, 2) // 6
		f.Op3(isa.OpMax, 14, 1, 2) // 20
	})
	want := map[isa.Reg]uint64{
		3: 26, 4: 14, 5: 120, 6: 3, 7: 2, 8: 4, 9: 22, 10: 18,
		11: 1280, 12: 0, 13: 6, 14: 20,
	}
	regs := m.DebugRegs(0)
	for r, v := range want {
		if regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, regs[r], v)
		}
	}
}

func TestExecDivRemByZero(t *testing.T) {
	m := runStraight(t, func(f *prog.FuncBuilder) {
		f.MovI(1, 42)
		f.MovI(2, 0)
		f.Op3(isa.OpDiv, 3, 1, 2)
		f.Op3(isa.OpRem, 4, 1, 2)
	})
	regs := m.DebugRegs(0)
	if regs[3] != 0 || regs[4] != 0 {
		t.Errorf("div/rem by zero = %d/%d, want 0/0 (ARM UDIV semantics)", regs[3], regs[4])
	}
}

func TestExecSignedDivision(t *testing.T) {
	m := runStraight(t, func(f *prog.FuncBuilder) {
		f.MovI(1, -20)
		f.MovI(2, 6)
		f.Op3(isa.OpDiv, 3, 1, 2)
		f.Op3(isa.OpRem, 4, 1, 2)
		f.Op3(isa.OpMin, 5, 1, 2) // signed: -20
		f.Op3(isa.OpMax, 6, 1, 2) // 6
	})
	regs := m.DebugRegs(0)
	if int64(regs[3]) != -3 || int64(regs[4]) != -2 {
		t.Errorf("signed div/rem = %d/%d, want -3/-2", int64(regs[3]), int64(regs[4]))
	}
	if int64(regs[5]) != -20 || regs[6] != 6 {
		t.Errorf("signed min/max = %d/%d", int64(regs[5]), int64(regs[6]))
	}
}

func TestExecImmediates(t *testing.T) {
	m := runStraight(t, func(f *prog.FuncBuilder) {
		f.MovI(1, 10)
		f.AddI(2, 1, -3)           // 7
		f.MulI(3, 1, 5)            // 50
		f.AndI(4, 1, 6)            // 2
		f.OpI(isa.OpShlI, 5, 1, 2) // 40
		f.OpI(isa.OpShrI, 6, 1, 1) // 5
		f.Mov(7, 1)                // 10
	})
	want := map[isa.Reg]uint64{2: 7, 3: 50, 4: 2, 5: 40, 6: 5, 7: 10}
	regs := m.DebugRegs(0)
	for r, v := range want {
		if regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, regs[r], v)
		}
	}
}

func TestExecSel(t *testing.T) {
	m := runStraight(t, func(f *prog.FuncBuilder) {
		f.MovI(1, 1)
		f.MovI(2, 0)
		f.MovI(3, 77)
		f.MovI(4, 88)
		f.Sel(5, 1, 3, 4) // cond!=0 -> 77
		f.Sel(6, 2, 3, 4) // cond==0 -> 88
	})
	regs := m.DebugRegs(0)
	if regs[5] != 77 || regs[6] != 88 {
		t.Errorf("sel = %d/%d, want 77/88", regs[5], regs[6])
	}
}

func TestExecLoadStoreRoundTrip(t *testing.T) {
	m := runStraight(t, func(f *prog.FuncBuilder) {
		f.MovI(1, int64(HeapBase))
		f.MovI(2, 123456)
		f.Store(1, 16, 2)
		f.Load(3, 1, 16)
		f.Load(4, 1, 24) // never written: zero
	})
	regs := m.DebugRegs(0)
	if regs[3] != 123456 || regs[4] != 0 {
		t.Errorf("load = %d/%d", regs[3], regs[4])
	}
}

func TestExecAtomicCAS(t *testing.T) {
	m := runStraight(t, func(f *prog.FuncBuilder) {
		f.MovI(1, int64(HeapBase))
		f.MovI(2, 5)
		f.Store(1, 0, 2)           // mem = 5
		f.MovI(3, 5)               // expected
		f.MovI(4, 9)               // new
		f.AtomicCAS(5, 1, 0, 3, 4) // succeeds: r5=5, mem=9
		f.AtomicCAS(6, 1, 0, 3, 4) // fails: r6=9, mem stays 9
		f.Load(7, 1, 0)
	})
	regs := m.DebugRegs(0)
	if regs[5] != 5 || regs[6] != 9 || regs[7] != 9 {
		t.Errorf("cas = old1 %d old2 %d final %d, want 5 9 9", regs[5], regs[6], regs[7])
	}
}

func TestExecEmitStagingVsBaseline(t *testing.T) {
	// On the Capri machine, emits staged in an uncommitted region must not
	// appear in the durable output until the boundary commits.
	bd := prog.NewBuilder("emit")
	f := bd.Func("main")
	f.Block()
	f.MovI(isa.SP, int64(StackBase(0)))
	f.MovI(1, 42)
	f.MovI(2, int64(HeapBase))
	f.Emit(1)
	f.Store(2, 0, 1) // ensure the region has a store
	f.Halt()
	bd.SetThreadEntries(f)
	cp := compileForHelper(t, bd.Program(), 16)

	m, _ := New(cp, testConfig(16))
	// Crash after the Emit but before Halt commits it: durable output empty.
	if err := m.RunUntil(4); err != nil {
		t.Fatal(err)
	}
	if !m.Done() && len(m.Output(0)) != 0 {
		t.Errorf("uncommitted emit already durable: %v", m.Output(0))
	}
	// Finish: one output.
	m2, _ := New(cp, testConfig(16))
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(m2.Output(0)) != 1 || m2.Output(0)[0] != 42 {
		t.Errorf("output = %v, want [42]", m2.Output(0))
	}
}

func compileForHelper(t *testing.T, p *prog.Program, threshold int) *prog.Program {
	t.Helper()
	return compileFor(t, p, threshold)
}

func TestLockSpinConsumesCyclesNotInstret(t *testing.T) {
	// A single core spinning on a taken lock must not retire instructions
	// while spinning; with the lock pre-taken in memory by another store and
	// never released, the machine would deadlock — so test the bounded case:
	// acquire a free lock, release, re-acquire.
	bd := prog.NewBuilder("lock")
	f := bd.Func("main")
	f.Block()
	f.MovI(isa.SP, int64(StackBase(0)))
	f.MovI(1, int64(HeapBase))
	f.Lock(1, 0)
	f.Unlock(1, 0)
	f.Lock(1, 0)
	f.Unlock(1, 0)
	f.Halt()
	bd.SetThreadEntries(f)
	cp := compileFor(t, bd.Program(), 16)
	m, _ := New(cp, testConfig(16))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.MemSnapshot()[HeapBase]; got != 0 {
		t.Errorf("lock word = %d, want 0 (released)", got)
	}
}

func TestHaltRecordPersisted(t *testing.T) {
	cp := compileFor(t, sumProgram(10), 16)
	m, _ := New(cp, testConfig(16))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// After quiesce, the recovery record must show the core halted: a crash
	// after completion recovers to "done".
	img, err := m.Crash()
	if err != nil {
		t.Fatal(err)
	}
	if !img.Records[0].Halted {
		t.Error("halt marker not folded into the recovery record")
	}
	r, rep, err := Recover(img)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoresHalted != 1 || rep.CoresResumed != 0 {
		t.Errorf("report = %+v", rep)
	}
	if !r.Done() {
		t.Error("recovered machine not done")
	}
	// Output survived in the durable tape.
	if len(r.Output(0)) != 1 {
		t.Errorf("output lost across post-completion crash: %v", r.Output(0))
	}
}

func TestOrderedSlicesDeterministic(t *testing.T) {
	b := &prog.Block{RecoverySlices: map[isa.Reg][]isa.Inst{
		7: {{Op: isa.OpMovI, Rd: 7, Imm: 1}},
		3: {{Op: isa.OpMovI, Rd: 3, Imm: 2}},
		9: {{Op: isa.OpMovI, Rd: 9, Imm: 3}},
	}}
	s := orderedSlices(b)
	if len(s) != 3 || s[0][0].Rd != 3 || s[1][0].Rd != 7 || s[2][0].Rd != 9 {
		t.Errorf("slices not in ascending register order: %v", s)
	}
	if orderedSlices(&prog.Block{}) != nil {
		t.Error("empty block should yield nil slices")
	}
}

func TestExecSliceAllOpcodes(t *testing.T) {
	// execSlice is the recovery-time evaluator for pruned checkpoints; it
	// must implement every re-executable opcode with the same semantics as
	// the main interpreter.
	var regs [isa.NumRegs]uint64
	regs[1] = 20
	regs[2] = 6
	slice := []isa.Inst{
		{Op: isa.OpAdd, Rd: 3, Ra: 1, Rb: 2},  // 26
		{Op: isa.OpSub, Rd: 4, Ra: 1, Rb: 2},  // 14
		{Op: isa.OpMul, Rd: 5, Ra: 1, Rb: 2},  // 120
		{Op: isa.OpDiv, Rd: 6, Ra: 1, Rb: 2},  // 3
		{Op: isa.OpRem, Rd: 7, Ra: 1, Rb: 2},  // 2
		{Op: isa.OpAnd, Rd: 8, Ra: 1, Rb: 2},  // 4
		{Op: isa.OpOr, Rd: 9, Ra: 1, Rb: 2},   // 22
		{Op: isa.OpXor, Rd: 10, Ra: 1, Rb: 2}, // 18
		{Op: isa.OpShl, Rd: 11, Ra: 1, Rb: 2}, // 1280
		{Op: isa.OpShr, Rd: 12, Ra: 1, Rb: 2}, // 0
		{Op: isa.OpMin, Rd: 13, Ra: 1, Rb: 2}, // 6
		{Op: isa.OpMax, Rd: 14, Ra: 1, Rb: 2}, // 20
		{Op: isa.OpAddI, Rd: 15, Ra: 1, Imm: 5},
		{Op: isa.OpMulI, Rd: 16, Ra: 1, Imm: 3},
		{Op: isa.OpAndI, Rd: 17, Ra: 1, Imm: 7},
		{Op: isa.OpShlI, Rd: 18, Ra: 1, Imm: 1},
		{Op: isa.OpShrI, Rd: 19, Ra: 1, Imm: 2},
		{Op: isa.OpMovI, Rd: 20, Imm: 99},
		{Op: isa.OpMov, Rd: 21, Ra: 1},
		{Op: isa.OpSel, Rd: 22, Ra: 1, Rb: 2, Rc: 3},
	}
	execSlice(&regs, slice)
	want := map[isa.Reg]uint64{
		3: 26, 4: 14, 5: 120, 6: 3, 7: 2, 8: 4, 9: 22, 10: 18,
		11: 1280, 12: 0, 13: 6, 14: 20, 15: 25, 16: 60, 17: 4,
		18: 40, 19: 5, 20: 99, 21: 20, 22: 6,
	}
	for r, v := range want {
		if regs[r] != v {
			t.Errorf("slice r%d = %d, want %d", r, regs[r], v)
		}
	}
	// Division/modulo by zero inside a slice must be safe.
	var r2 [isa.NumRegs]uint64
	r2[1] = 9
	execSlice(&r2, []isa.Inst{
		{Op: isa.OpDiv, Rd: 3, Ra: 1, Rb: 2},
		{Op: isa.OpRem, Rd: 4, Ra: 1, Rb: 2},
		{Op: isa.OpMin, Rd: 5, Ra: 1, Rb: 2},
		{Op: isa.OpMax, Rd: 6, Ra: 1, Rb: 2},
	})
	if r2[3] != 0 || r2[4] != 0 {
		t.Errorf("slice div/rem by zero = %d/%d", r2[3], r2[4])
	}
	if r2[5] != 0 || r2[6] != 9 {
		t.Errorf("slice min/max = %d/%d", r2[5], r2[6])
	}
	// Signed variants.
	var r3 [isa.NumRegs]uint64
	var neg20 int64 = -20
	r3[1] = uint64(neg20)
	r3[2] = 6
	execSlice(&r3, []isa.Inst{
		{Op: isa.OpDiv, Rd: 3, Ra: 1, Rb: 2},
		{Op: isa.OpRem, Rd: 4, Ra: 1, Rb: 2},
		{Op: isa.OpMin, Rd: 5, Ra: 1, Rb: 2},
		{Op: isa.OpSel, Rd: 6, Ra: 0, Rb: 1, Rc: 2}, // cond 0 -> rc
	})
	if int64(r3[3]) != -3 || int64(r3[4]) != -2 || int64(r3[5]) != -20 || r3[6] != 6 {
		t.Errorf("signed slice results: %d %d %d %d", int64(r3[3]), int64(r3[4]), int64(r3[5]), r3[6])
	}
}

func TestAccessors(t *testing.T) {
	cp := compileFor(t, sumProgram(10), 16)
	cfg := testConfig(16)
	m, _ := New(cp, cfg)
	if m.Config().Threshold != 16 {
		t.Error("Config accessor wrong")
	}
	if m.Program() != cp {
		t.Error("Program accessor wrong")
	}
	m.SetTracer(nil) // no-op path
}
