package machine

import "capri/internal/stats"

// CycleCause labels where a core's cycles went. The ledger is exhaustive by
// construction: every addition to a core's cycle count is tagged with exactly
// one cause, so per core the bucket totals always sum to the cycle count
// (checked by TestCycleLedgerExhaustive). That identity is what makes
// `capribench -explain` exact — the Capri-vs-baseline cycle gap decomposes
// into signed per-cause deltas with zero residual.
//
// The causes fall into three groups:
//
//   - Issue costs (CauseExec..CauseFence): cycles the instruction stream
//     spends executing, including the persistence instructions the compiler
//     inserted (checkpoint stores, boundaries). These exist on both the
//     baseline and the Capri machine (the persistence ones are zero on the
//     baseline).
//   - Memory stalls (CauseLoadL1..CauseLoadNVM): load latency attributed to
//     the level of the hierarchy that served the access.
//   - Persistence stalls (CauseLockSpin..CauseDrainWait): cycles lost waiting
//     on the proxy machinery — the decomposition the paper's Figures 8/9
//     argue from. See DESIGN.md §4c for when each one increments.
type CycleCause uint8

// Cycle causes. The order is the display order of `capribench -explain` and
// caprisim's breakdown.
const (
	// CauseExec is plain instruction issue: ALU/branch/mul/div slots.
	CauseExec CycleCause = iota
	// CauseLoadL1 .. CauseLoadNVM attribute a load's stall to the level that
	// served it (the whole charge, including the L1 probe, goes to that
	// level; post-L1 latencies are already divided by Config.LoadOverlap).
	CauseLoadL1
	CauseLoadL2
	CauseLoadDRAM
	CauseLoadNVM
	// CauseStore is store-buffer issue cost of regular and sync stores.
	CauseStore
	// CauseCkpt is the issue cost of compiler-inserted checkpoint stores
	// (register read + staging-storage port) — pure Capri overhead.
	CauseCkpt
	// CauseBoundary is the issue cost of region-boundary instructions
	// (store-buffer serialization slots) — pure Capri overhead.
	CauseBoundary
	// CauseSync is the RMW latency of atomic/lock/unlock memory operations.
	CauseSync
	// CauseFence is fence/barrier pipeline bubbles.
	CauseFence
	// CauseLockSpin is spin-lock back-off (the retry loop of OpLock).
	CauseLockSpin
	// CauseFrontFull is a front-end-proxy-full stall whose root cause is
	// proxy-path bandwidth: the buffer cannot drain because no departure
	// slot is available (§5.2.1's core-stall condition).
	CauseFrontFull
	// CauseBackPressure is a front-end-full stall whose root cause is
	// back-end space: the oldest front-end entry is data, and the back-end
	// buffer plus in-flight packets have reached the threshold, but no
	// phase-2 drain is booked yet (the region's boundary has not arrived).
	CauseBackPressure
	// CauseNVMQueue is a back-pressure stall while a phase-2 drain is booked
	// and waiting on the per-core NVM write-pending-queue bank — the stall
	// the paper attributes to NVM write bandwidth.
	CauseNVMQueue
	// CauseDrainRetry is a stall charged while the core's oldest phase-2
	// drain is re-booked after a transient NVM write error (fault model
	// only — zero unless Machine.ArmFaults installed a DrainError hook).
	CauseDrainRetry
	// CauseDrainWait is the end-of-run quiesce: cycles a finished core waits
	// for its remaining regions to complete phase 2.
	CauseDrainWait

	// NumCycleCauses sizes per-cause arrays.
	NumCycleCauses
)

var causeNames = [NumCycleCauses]string{
	CauseExec:         "exec",
	CauseLoadL1:       "load-l1",
	CauseLoadL2:       "load-l2",
	CauseLoadDRAM:     "load-dram",
	CauseLoadNVM:      "load-nvm",
	CauseStore:        "store",
	CauseCkpt:         "ckpt",
	CauseBoundary:     "boundary",
	CauseSync:         "sync",
	CauseFence:        "fence",
	CauseLockSpin:     "spin",
	CauseFrontFull:    "front-full",
	CauseBackPressure: "backpress",
	CauseNVMQueue:     "nvm-queue",
	CauseDrainRetry:   "drain-retry",
	CauseDrainWait:    "drain-wait",
}

// String returns the cause's short name (as used in explain tables).
func (cc CycleCause) String() string {
	if cc < NumCycleCauses {
		return causeNames[cc]
	}
	return "cause(?)"
}

// IsStall reports whether the cause is a persistence stall (cycles the core
// lost waiting on proxy machinery) rather than issue or memory-latency cost.
func (cc CycleCause) IsStall() bool {
	switch cc {
	case CauseLockSpin, CauseFrontFull, CauseBackPressure, CauseNVMQueue, CauseDrainRetry, CauseDrainWait:
		return true
	}
	return false
}

// tick advances the core's cycle count, attributing the cycles to cause. It
// is the only way core cycles may advance (keeping the ledger exhaustive).
func (c *core) tick(cause CycleCause, n uint64) {
	c.cycle += n
	c.cycleBy[cause] += n
}

// stall advances the core to cycle `until`, attributing the waited cycles to
// cause and to the legacy StallCycles aggregate.
func (c *core) stall(cause CycleCause, until uint64) {
	d := until - c.cycle
	c.stallCycles += d
	c.tick(cause, d)
}

// Metrics is the optional occupancy/latency histogram set (enable with
// Machine.EnableMetrics). Sampling happens at region boundaries and at
// memory-controller writebacks — cold(ish) points — so the enabled overhead
// stays well under the 3% contract of DESIGN.md §4c; when disabled the hot
// path pays a single nil check. All histograms are stats.Hist (power-of-two
// buckets, zero allocation).
type Metrics struct {
	FrontOcc     stats.Hist // front-end proxy occupancy (entries), sampled per committed boundary
	BackOcc      stats.Hist // back-end proxy occupancy (entries), sampled per committed boundary
	PathInFlight stats.Hist // proxy-path packets in flight, sampled per committed boundary
	WindowLive   stats.Hist // monitoring-window entries live, sampled per committed boundary
	L1Dirty      stats.Hist // dirty L1 lines, sampled per committed boundary
	WPQDepth     stats.Hist // shared NVM write-queue depth in pending 64B writes, sampled per controller writeback
	DrainQueue   stats.Hist // per-core phase-2 bank depth in pending entry-writes, sampled per drain booking
	RegionInsts  stats.Hist // instructions per committed region
	RegionStores stats.Hist // stores (incl. checkpoints) per committed region
	CommitLat    stats.Hist // cycles from boundary commit (front-end) to phase-2 completion
	DrainRetries stats.Hist // write-error retries per phase-2 drain (fault model; recorded at final success or exhaustion)
}

// EnableMetrics switches on histogram collection (idempotent) and returns
// the machine's metrics set.
func (m *Machine) EnableMetrics() *Metrics {
	if m.metrics == nil {
		m.metrics = &Metrics{}
	}
	return m.metrics
}

// Metrics returns the histogram set, or nil when collection is disabled.
func (m *Machine) Metrics() *Metrics { return m.metrics }
