package machine

import (
	"reflect"
	"testing"

	"capri/internal/isa"
	"capri/internal/prog"
	"capri/internal/stats"
)

// stridedStoreProgram stores to n line-strided addresses — a working set that
// overflows L1 and L2, forcing dirty evictions down to the memory controller.
func stridedStoreProgram(n int64) *prog.Program {
	bd := prog.NewBuilder("stride")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	f.SetBlock(entry)
	f.MovI(0, 0) // i
	f.MovI(1, n)
	f.MovI(3, int64(HeapBase))
	f.Br(header)

	f.SetBlock(header)
	f.BrIf(0, isa.CondGE, 1, exit, body)

	f.SetBlock(body)
	f.Store(3, 0, 0)
	f.AddI(3, 3, 64) // next cache line
	f.AddI(0, 0, 1)
	f.Br(header)

	f.SetBlock(exit)
	f.Halt()
	return bd.Program()
}

// checkLedger asserts the cycle-accounting invariant the explain tooling
// depends on: for every core, the per-cause buckets sum exactly to the core's
// cycle count.
func checkLedger(t *testing.T, m *Machine) {
	t.Helper()
	for _, c := range m.cores {
		var sum uint64
		for _, n := range c.cycleBy {
			sum += n
		}
		if sum != c.cycle {
			t.Errorf("core %d: ledger sums to %d, cycle count is %d (diff %d)",
				c.id, sum, c.cycle, int64(c.cycle)-int64(sum))
			for cc := CycleCause(0); cc < NumCycleCauses; cc++ {
				if c.cycleBy[cc] != 0 {
					t.Logf("  %-10s %d", cc, c.cycleBy[cc])
				}
			}
		}
	}
}

// TestCycleLedgerExhaustive runs baseline, Capri, and multithreaded-Capri
// machines and checks that every cycle was attributed to a cause.
func TestCycleLedgerExhaustive(t *testing.T) {
	// Baseline: no proxy machinery, only issue + memory causes.
	{
		cfg := testConfig(64)
		cfg.Capri = false
		m, err := New(sumProgram(2000), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		checkLedger(t, m)
		s := m.Stats()
		for _, cc := range []CycleCause{CauseCkpt, CauseBoundary, CauseFrontFull, CauseBackPressure, CauseNVMQueue, CauseDrainWait} {
			if s.CycleBy[cc] != 0 {
				t.Errorf("baseline has %d cycles of Capri-only cause %s", s.CycleBy[cc], cc)
			}
		}
	}

	// Capri with a tight threshold, so backpressure stalls actually occur.
	{
		cfg := testConfig(4)
		m, err := New(compileFor(t, sumProgram(2000), 4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		checkLedger(t, m)
	}

	// Multithreaded Capri: locks, atomics, cross-core invalidations.
	{
		cfg := testConfig(16)
		m, err := New(compileMT(t, mtCounterProgram(300), 16), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		checkLedger(t, m)
	}
}

// TestStatsCycleByMatchesCycles checks that the critical core's ledger
// published in Stats sums to the makespan — the identity `capribench
// -explain` relies on for zero-residual decomposition.
func TestStatsCycleByMatchesCycles(t *testing.T) {
	cfg := testConfig(16)
	m, err := New(compileFor(t, sumProgram(1000), 16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	var sum uint64
	for _, n := range s.CycleBy {
		sum += n
	}
	if sum != s.Cycles {
		t.Fatalf("Stats.CycleBy sums to %d, Cycles = %d", sum, s.Cycles)
	}
}

// TestCycleLedgerContinuityAcrossRecovery pins metrics continuity across a
// crash/recover cycle: the pre-crash machine's ledger is coherent at the
// crash point, the recovered machine's ledger is a fresh epoch that sums
// exactly to its own cycle count (no pre-crash cycles leak in, none are
// double-counted), and the two epochs' histograms merge coherently — counts
// and sums add exactly, min/max form the envelope.
func TestCycleLedgerContinuityAcrossRecovery(t *testing.T) {
	cfg := testConfig(8)
	p := compileFor(t, sumProgram(1500), 8)

	golden, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := golden.Run(); err != nil {
		t.Fatal(err)
	}

	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	preMet := m.EnableMetrics()
	if err := m.RunUntil(golden.Instret() / 2); err != nil {
		t.Fatal(err)
	}
	if m.Done() {
		t.Fatal("program finished before the crash point")
	}
	checkLedger(t, m)
	preStats := m.Stats()
	var preSum uint64
	for _, n := range preStats.CycleBy {
		preSum += n
	}
	if preSum != preStats.Cycles {
		t.Fatalf("pre-crash Stats.CycleBy sums to %d, Cycles = %d", preSum, preStats.Cycles)
	}
	preSnap := *preMet // value copy: Crash/recovery must not retroactively mutate the epoch

	img, err := m.Crash()
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := RecoverTraced(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	postMet := r.EnableMetrics()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	checkLedger(t, r)
	postStats := r.Stats()
	var postSum uint64
	for _, n := range postStats.CycleBy {
		postSum += n
	}
	if postSum != postStats.Cycles {
		t.Fatalf("post-recovery Stats.CycleBy sums to %d, Cycles = %d (pre-crash cycles double-counted?)",
			postSum, postStats.Cycles)
	}
	// The recovered epoch re-executes only from the last committed boundary:
	// its makespan must not include the already-persisted pre-crash work.
	if postStats.Cycles >= preStats.Cycles+golden.Cycles() {
		t.Errorf("post-recovery epoch spans %d cycles — more than crash point + full run (%d + %d)",
			postStats.Cycles, preStats.Cycles, golden.Cycles())
	}
	if got, want := r.Output(0), golden.Output(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered output %v, golden %v", got, want)
	}

	// Histogram merge coherence across the two epochs.
	pairs := []struct {
		name      string
		pre, post *stats.Hist
	}{
		{"front-end occupancy", &preSnap.FrontOcc, &postMet.FrontOcc},
		{"region insts", &preSnap.RegionInsts, &postMet.RegionInsts},
		{"region stores", &preSnap.RegionStores, &postMet.RegionStores},
		{"commit latency", &preSnap.CommitLat, &postMet.CommitLat},
	}
	for _, pr := range pairs {
		if pr.pre.Count == 0 || pr.post.Count == 0 {
			t.Errorf("%s: epoch histogram empty (pre=%d post=%d samples)", pr.name, pr.pre.Count, pr.post.Count)
			continue
		}
		var merged stats.Hist
		merged.Merge(pr.pre)
		merged.Merge(pr.post)
		if merged.Count != pr.pre.Count+pr.post.Count {
			t.Errorf("%s: merged count %d, want %d+%d", pr.name, merged.Count, pr.pre.Count, pr.post.Count)
		}
		if merged.Sum != pr.pre.Sum+pr.post.Sum {
			t.Errorf("%s: merged sum %d, want %d+%d", pr.name, merged.Sum, pr.pre.Sum, pr.post.Sum)
		}
		if merged.Min > pr.pre.Min || merged.Min > pr.post.Min {
			t.Errorf("%s: merged min %d above an epoch min (%d, %d)", pr.name, merged.Min, pr.pre.Min, pr.post.Min)
		}
		if merged.Max < pr.pre.Max || merged.Max < pr.post.Max {
			t.Errorf("%s: merged max %d below an epoch max (%d, %d)", pr.name, merged.Max, pr.pre.Max, pr.post.Max)
		}
	}
}

// TestMetricsCollection checks that enabling metrics populates the occupancy
// and latency histograms and does not perturb timing.
func TestMetricsCollection(t *testing.T) {
	cfg := testConfig(8)
	p := compileFor(t, stridedStoreProgram(8000), 8)

	plain, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Run(); err != nil {
		t.Fatal(err)
	}

	instr, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mt := instr.EnableMetrics()
	if instr.EnableMetrics() != mt {
		t.Fatal("EnableMetrics not idempotent")
	}
	if err := instr.Run(); err != nil {
		t.Fatal(err)
	}

	if got, want := instr.Cycles(), plain.Cycles(); got != want {
		t.Fatalf("metrics changed timing: %d cycles vs %d", got, want)
	}
	if mt.FrontOcc.Count == 0 || mt.RegionInsts.Count == 0 || mt.RegionStores.Count == 0 {
		t.Errorf("boundary-sampled histograms empty: front=%d insts=%d stores=%d",
			mt.FrontOcc.Count, mt.RegionInsts.Count, mt.RegionStores.Count)
	}
	if mt.CommitLat.Count == 0 {
		t.Error("commit-latency histogram empty")
	}
	if mt.CommitLat.Min == 0 {
		t.Error("commit latency of zero cycles recorded — phase 2 cannot complete instantly")
	}
	if mt.WPQDepth.Count == 0 {
		t.Error("WPQ-depth histogram empty (no controller writebacks sampled)")
	}
	if mt.DrainQueue.Count == 0 {
		t.Error("drain-queue histogram empty (no phase-2 bookings sampled)")
	}
	// Commit latency must be at least the proxy path latency: the boundary
	// has to travel front-end -> path -> back-end before phase 2 can start.
	if mt.CommitLat.Min < cfg.ProxyLatency {
		t.Errorf("min commit latency %d < proxy latency %d", mt.CommitLat.Min, cfg.ProxyLatency)
	}
}
