package machine

import "capri/internal/isa"

// BoundaryHook, when non-nil, is invoked after every successful region
// commit with the core ID, the committed region's sequence number, the
// architectural register file at the commit point, and the recorded resume
// PC. It exists for the recovery validation harness: the register file at a
// commit is exactly what recovery must reconstruct when resuming at that
// boundary. Not safe for concurrent machines; test use only.
var BoundaryHook func(core int, region uint64, regs [isa.NumRegs]uint64, fn, blk, idx int32)

// DebugRegs returns a copy of core t's architectural register file
// (test/debug helper).
func (m *Machine) DebugRegs(t int) [isa.NumRegs]uint64 {
	return m.cores[t].regs
}

// DebugPC returns core t's current program counter (test/debug helper).
func (m *Machine) DebugPC(t int) (fn, blk, idx int) {
	c := m.cores[t]
	return c.fn, c.blk, c.idx
}
