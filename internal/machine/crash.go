package machine

import (
	"fmt"
	"sort"

	"capri/internal/audit"
	"capri/internal/isa"
	"capri/internal/mem"
	"capri/internal/prog"
	"capri/internal/proxy"
)

// CrashImage is everything that survives a power failure (paper §3.3 / §5.4):
// the NVM contents (program data plus the per-core recovery records and
// durable output), and the battery-backed proxy buffer contents per core —
// back-end entries first, then entries in flight on the proxy path, then
// front-end entries, preserving FIFO order. All volatile state (registers,
// caches, the DRAM cache, staged checkpoints of the uncommitted region) is
// gone.
//
// The image is fully unshared from the machine it was harvested from (apart
// from the immutable compiled program): mutating the live machine afterwards
// never changes the image, and one image supports any number of recovery
// attempts.
type CrashImage struct {
	Prog    *prog.Program
	Cfg     Config
	NVM     *mem.NVM
	Records []CoreRecord
	Streams [][]proxy.Entry
	Outputs [][]uint64
	Seq     uint64
}

// Crash harvests the persistent image of the machine. It can be taken at any
// stopping point (typically after RunUntil hit its crash step). The machine
// itself must not be used afterwards.
func (m *Machine) Crash() (*CrashImage, error) {
	return m.CrashTorn(nil)
}

// harvest deep-copies the machine's persistent state into a CrashImage.
func (m *Machine) harvest() *CrashImage {
	img := &CrashImage{
		Prog: m.prog,
		Cfg:  m.cfg,
		NVM:  m.nvm.Clone(),
		Seq:  m.seq,
	}
	img.Records = append(img.Records, m.records...)
	for _, c := range m.cores {
		stream := make([]proxy.Entry, 0, c.back.Len()+c.path.InFlight()+c.front.Len())
		stream = append(stream, c.back.Entries()...)
		stream = append(stream, c.path.DrainAll()...)
		stream = append(stream, c.front.Entries()...)
		deepCopyEntries(stream)
		img.Streams = append(img.Streams, stream)
		img.Outputs = append(img.Outputs, append([]uint64(nil), c.output...))
	}
	return img
}

// deepCopyEntries unshares the slice-valued fields of harvested entries:
// boundary entries' Ckpts and Emits otherwise alias the live proxy buffers'
// backing arrays, which the machine reuses as it keeps running.
func deepCopyEntries(stream []proxy.Entry) {
	for i := range stream {
		e := &stream[i]
		if len(e.Ckpts) > 0 {
			e.Ckpts = append([]proxy.RegCkpt(nil), e.Ckpts...)
		}
		if len(e.Emits) > 0 {
			e.Emits = append([]uint64(nil), e.Emits...)
		}
	}
}

// RecoveryReport describes what the recovery protocol did.
type RecoveryReport struct {
	RegionsRedone   int // committed regions replayed from proxy buffers
	EntriesRedone   int // redo applications attempted
	EntriesUndone   int // undo applications attempted
	UndoneApplied   int // undos that actually rewrote NVM
	SlicesExecuted  int // recovery slices run (pruned checkpoints)
	CoresResumed    int
	CoresHalted     int
	ConflictingUndo int // cross-core uncommitted conflicts (0 for DRF code)
}

// Recover rebuilds a runnable machine from a crash image, implementing the
// recovery protocol of §5.4:
//
//  1. For each core's entry stream, every region whose boundary (commit
//     marker) is present is redone: valid redo data moves to NVM under the
//     sequence guard and the marker's checkpoint payload updates the core's
//     recovery record.
//  2. Entries after the last marker belong to the interrupted region and are
//     rolled back: undo data restores NVM, applied across cores in
//     descending global store order.
//  3. Each core reloads its architectural registers from the checkpoint
//     record, executes the recovery slices of its resume block (pruned
//     checkpoints, §4.4.1), and resumes at the recorded PC — the beginning
//     of the interrupted region.
func Recover(img *CrashImage) (*Machine, *RecoveryReport, error) {
	return RecoverAttached(img)
}

// RecoverTraced is RecoverAttached with a tracer installed on the recovered
// machine before the protocol runs; when recovery completes it emits a
// recovery event (so a trace spanning crash and restart shows both edges).
func RecoverTraced(img *CrashImage, tr Tracer, devices ...OutputDevice) (*Machine, *RecoveryReport, error) {
	m, rep, err := RecoverAttached(img, devices...)
	if err != nil {
		return nil, nil, err
	}
	m.tracer = tr
	if tr != nil {
		tr.TraceRecovery(rep.CoresResumed + rep.CoresHalted)
	}
	return m, rep, nil
}

// RecoverAttached is Recover with output devices registered before the
// protocol runs, so regions that committed before the crash but had not yet
// finished phase 2 deliver their output to the devices during replay —
// preserving the exactly-once guarantee across the crash (§3.3's I/O story).
func RecoverAttached(img *CrashImage, devices ...OutputDevice) (*Machine, *RecoveryReport, error) {
	return recoverWithTap(img, nil, devices...)
}

// RecoverInstrumented is recovery with full observability: the provenance tap
// is installed on the rebuilt machine *before* the protocol runs (so the
// recovery events themselves — redo writes, undos, the done marker — reach an
// attached Auditor or FlightRecorder, and the tap stays live for resumed
// execution), and the tracer is installed after replay exactly as
// RecoverTraced does (the trace shows recovery as one event, not a replay).
func RecoverInstrumented(img *CrashImage, tr Tracer, tap audit.Sink, devices ...OutputDevice) (*Machine, *RecoveryReport, error) {
	m, rep, err := recoverWithTap(img, tap, devices...)
	if err != nil {
		return nil, nil, err
	}
	m.tracer = tr
	if tr != nil {
		tr.TraceRecovery(rep.CoresResumed + rep.CoresHalted)
	}
	return m, rep, nil
}

// RecoverInterrupted runs the §5.4 protocol but injects a nested power
// failure after stopAfter persistent protocol steps — redo write
// applications, marker folds, and undo applications, the NVM mutations a
// real recovery performs. If the protocol finishes in fewer steps, the
// recovered machine is returned with a nil nested image. Otherwise recovery
// stops mid-flight and the partially recovered persistent state is harvested
// into a fresh CrashImage (NVM and records as mutated so far; the original
// battery-backed streams, which recovery only reads): §5.4 must be
// restartable from any such point, converging to the same final image as an
// uninterrupted recovery.
func RecoverInterrupted(img *CrashImage, tap audit.Sink, stopAfter uint64, devices ...OutputDevice) (*Machine, *RecoveryReport, *CrashImage, error) {
	return recoverCore(img, tap, stopAfter, nil, devices...)
}

// RecoverOrdered is RecoverInstrumented-style recovery with an explicit core
// order for phase A's per-stream replay. order must be a permutation of the
// core indices (nil: identity). Recovery is order-independent — the sequence
// guard makes cross-core redo applications commute, and phase B's undo pass
// is globally sorted — so every order must converge to the same persistent
// image; the permutation tests pin exactly that.
func RecoverOrdered(img *CrashImage, order []int, tap audit.Sink, devices ...OutputDevice) (*Machine, *RecoveryReport, error) {
	if order != nil {
		seen := make([]bool, len(img.Streams))
		if len(order) != len(img.Streams) {
			return nil, nil, fmt.Errorf("machine: recovery order has %d cores, image has %d", len(order), len(img.Streams))
		}
		for _, t := range order {
			if t < 0 || t >= len(img.Streams) || seen[t] {
				return nil, nil, fmt.Errorf("machine: recovery order %v is not a permutation of %d cores", order, len(img.Streams))
			}
			seen[t] = true
		}
	}
	m, rep, _, err := recoverCore(img, tap, 0, order, devices...)
	return m, rep, err
}

func recoverWithTap(img *CrashImage, tap audit.Sink, devices ...OutputDevice) (*Machine, *RecoveryReport, error) {
	m, rep, _, err := recoverCore(img, tap, 0, nil, devices...)
	return m, rep, err
}

// recoverCore is the one implementation of the recovery protocol. stopAfter
// is the nested-crash fault injection point (0: run to completion); order is
// phase A's stream replay order (nil: core index order).
func recoverCore(img *CrashImage, tap audit.Sink, stopAfter uint64, order []int, devices ...OutputDevice) (*Machine, *RecoveryReport, *CrashImage, error) {
	m, err := New(img.Prog, img.Cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	m.SetTap(tap)
	m.devices = append(m.devices, devices...)
	rep := &RecoveryReport{}
	m.nvm = img.NVM.Clone()
	m.seq = img.Seq
	copy(m.records, img.Records)
	for t := range img.Outputs {
		m.cores[t].output = append(m.cores[t].output[:0], img.Outputs[t]...)
	}

	// Persistent-step counter for the nested-crash injection point.
	steps := uint64(0)
	interrupt := func() bool {
		steps++
		return stopAfter != 0 && steps >= stopAfter
	}

	// Phase A: replay committed regions from the buffers, in stream order.
	type undoEntry struct {
		e    proxy.Entry
		core int
	}
	var uncommitted []undoEntry
	streamOrder := order
	if streamOrder == nil {
		streamOrder = make([]int, len(img.Streams))
		for t := range streamOrder {
			streamOrder[t] = t
		}
	}
	for _, t := range streamOrder {
		stream := img.Streams[t]
		var pending []proxy.Entry
		for i := range stream {
			e := &stream[i]
			if e.Kind == proxy.KindData {
				pending = append(pending, *e)
				continue
			}
			// Commit marker: redo the region.
			rep.RegionsRedone++
			for _, d := range pending {
				if d.Valid {
					rep.EntriesRedone++
					var applied bool
					if Mutations.ReplayNoGuard {
						// MUTATION: the redo bypasses the sequence guard, so
						// replay order across cores becomes visible in NVM.
						m.nvm.Restore(d.Addr, d.Redo, d.Seq)
						applied = true
					} else {
						applied = m.nvm.Write(d.Addr, d.Redo, d.Seq)
					}
					if m.tap != nil {
						ev := audit.Event{
							Kind: audit.EvRecoveryRedoWrite, Core: int32(t),
							Addr: d.Addr, Seq: d.Seq, Region: e.Region, Val: d.Redo,
						}
						if applied {
							ev.Flags |= audit.FlagApplied
						}
						m.tap.Tap(ev)
					}
					if interrupt() {
						return m.nestedCrash(img, rep)
					}
				}
			}
			pending = pending[:0]
			m.applyMarker(t, e)
			if m.tap != nil {
				m.tap.Tap(audit.Event{Kind: audit.EvRecoveryRedo, Core: int32(t), Region: e.Region})
			}
			if interrupt() {
				return m.nestedCrash(img, rep)
			}
		}
		if Mutations.SkipMarkerCheck {
			// MUTATION: the §5.4 marker check is gone — the uncommitted tail
			// is replayed as if its region had committed.
			for _, d := range pending {
				if d.Valid {
					m.nvm.Write(d.Addr, d.Redo, d.Seq)
				}
			}
			continue
		}
		for _, d := range pending {
			uncommitted = append(uncommitted, undoEntry{e: d, core: t})
		}
	}

	// Phase B: roll back the interrupted region(s), newest store first.
	if Mutations.SkipUndo {
		// MUTATION: phase B is dropped — uncommitted stores that reached NVM
		// (writebacks, torn drains) are never rolled back.
		uncommitted = nil
	}
	sort.Slice(uncommitted, func(i, j int) bool {
		return uncommitted[i].e.Seq > uncommitted[j].e.Seq
	})
	seenAddr := map[uint64]int{}
	for _, u := range uncommitted {
		if prev, ok := seenAddr[u.e.Addr]; ok && prev != u.core {
			// Two cores with uncommitted writes to one address: a data race
			// (DRF programs synchronize through committed sync regions).
			rep.ConflictingUndo++
		}
		seenAddr[u.e.Addr] = u.core
		rep.EntriesUndone++
		applied := false
		if m.nvm.Peek(u.e.Addr).Seq >= u.e.FirstSeq {
			// NVM holds the effect of *some* store merged into this entry —
			// a dirty writeback may have persisted any intermediate version
			// of the region, not just the newest — so restore the pre-region
			// image.
			newSeq := uint64(0)
			if u.e.FirstSeq > 0 {
				newSeq = u.e.FirstSeq - 1
			}
			m.nvm.Restore(u.e.Addr, u.e.Undo, newSeq)
			rep.UndoneApplied++
			applied = true
		}
		if m.tap != nil {
			ev := audit.Event{
				Kind: audit.EvRecoveryUndo, Core: int32(u.core),
				Addr: u.e.Addr, Seq: u.e.FirstSeq, Val: u.e.Undo,
			}
			if applied {
				ev.Flags |= audit.FlagApplied
			}
			m.tap.Tap(ev)
		}
		if interrupt() {
			return m.nestedCrash(img, rep)
		}
	}

	// Phase C: rebuild architectural memory from consistent NVM (page-copied,
	// keeping the image's backing kind) and resume every core at its last
	// committed boundary. Purely volatile — a crash here is a crash before
	// the resumed run's first instruction.
	m.mem = mem.MemFromNVM(m.nvm)
	for t := range m.cores {
		c := m.cores[t]
		rec := m.records[t]
		c.resumeAt(rec)
		if rec.Halted {
			m.haltedCores++
			rep.CoresHalted++
			continue
		}
		if rec.Region > 0 {
			blk := m.blockOf(rec.Fn, rec.Blk)
			for _, slice := range orderedSlices(blk) {
				execSlice(&c.regs, slice)
				rep.SlicesExecuted++
			}
		}
		rep.CoresResumed++
	}
	if m.tap != nil {
		m.tap.Tap(audit.Event{Kind: audit.EvRecoveryDone, Count: uint32(len(m.cores))})
	}
	return m, rep, nil, nil
}

// nestedCrash harvests the mid-recovery persistent image: NVM and records as
// mutated by the partial replay, the original battery-backed streams (which
// recovery reads but never consumes), and the output delivered so far.
func (m *Machine) nestedCrash(img *CrashImage, rep *RecoveryReport) (*Machine, *RecoveryReport, *CrashImage, error) {
	if m.tap != nil {
		m.tap.Tap(audit.Event{Kind: audit.EvCrash, Flags: audit.FlagNested, Cycle: m.Cycles()})
	}
	nested := &CrashImage{
		Prog: img.Prog,
		Cfg:  img.Cfg,
		NVM:  m.nvm.Clone(),
		Seq:  img.Seq,
	}
	nested.Records = append(nested.Records, m.records...)
	for t, stream := range img.Streams {
		s := append([]proxy.Entry(nil), stream...)
		deepCopyEntries(s)
		nested.Streams = append(nested.Streams, s)
		nested.Outputs = append(nested.Outputs, append([]uint64(nil), m.cores[t].output...))
	}
	return nil, rep, nested, nil
}

// orderedSlices returns a block's recovery slices in ascending register order
// so recovery is deterministic. Slices are mutually independent: a slice's
// leaf registers always have surviving (unpruned) checkpoints, never another
// slice's output (see prune.go's ascending-order processing).
func orderedSlices(b *prog.Block) [][]isa.Inst {
	if len(b.RecoverySlices) == 0 {
		return nil
	}
	out := make([][]isa.Inst, 0, len(b.RecoverySlices))
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if s, ok := b.RecoverySlices[r]; ok {
			out = append(out, s)
		}
	}
	return out
}

// NVMEntries exports the machine's persisted NVM image, sorted by address —
// the byte-identical form the convergence tests compare.
func (m *Machine) NVMEntries() []mem.WordEntry { return m.nvm.Entries() }
