package machine

import (
	"testing"

	"capri/internal/isa"
	"capri/internal/prog"
)

// markerLoop builds an uncompiled program that loops n times, storing marker
// to HeapBase every iteration. Two programs built with different markers are
// position-compatible: same functions, blocks, and instruction indices.
func markerLoop(n, marker int64) *prog.Program {
	bd := prog.NewBuilder("marker")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	f.SetBlock(entry)
	f.MovI(isa.SP, int64(StackBase(0)))
	f.MovI(0, 0) // i
	f.MovI(1, n)
	f.MovI(3, int64(HeapBase))
	f.Br(header)

	f.SetBlock(header)
	f.BrIf(0, isa.CondGE, 1, exit, body)

	f.SetBlock(body)
	f.MovI(2, marker)
	f.Store(3, 0, 2)
	f.AddI(0, 0, 1)
	f.Br(header)

	f.SetBlock(exit)
	f.Halt()
	return bd.Program()
}

// TestReplaceProgramDropsDecodedCode pins the block-cache invalidation bug:
// swapping the loaded program mid-run must drop every per-core block cache
// and the shared decode cache, or cores keep executing code decoded from the
// dead program. The loop body stores a marker each iteration; after the swap
// the surviving iterations must store the *new* marker.
func TestReplaceProgramDropsDecodedCode(t *testing.T) {
	for _, mode := range []DispatchMode{DispatchThreaded, DispatchSwitch} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := testConfig(64)
			cfg.Capri = false
			cfg.Cores = 1
			cfg.Dispatch = mode
			m, err := New(markerLoop(200, 111), cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm the caches well inside the loop, then hot-patch.
			if err := m.RunUntil(100); err != nil {
				t.Fatal(err)
			}
			if m.Done() {
				t.Fatal("program finished before the swap point")
			}
			if err := m.ReplaceProgram(markerLoop(200, 222)); err != nil {
				t.Fatal(err)
			}
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if got := m.MemSnapshot()[HeapBase]; got != 222 {
				t.Errorf("final marker = %d, want 222 (stale decoded code executed after program replace)", got)
			}
		})
	}
}

func TestReplaceProgramRejectsIncompatiblePC(t *testing.T) {
	cfg := testConfig(64)
	cfg.Capri = false
	cfg.Cores = 1
	m, err := New(markerLoop(200, 111), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	// A program with no room for the cores' current PCs must be refused and
	// the old program kept loaded.
	bd := prog.NewBuilder("tiny")
	f := bd.Func("main")
	f.Block()
	f.Halt()
	if err := m.ReplaceProgram(bd.Program()); err == nil {
		t.Fatal("incompatible replacement accepted")
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.MemSnapshot()[HeapBase]; got != 111 {
		t.Errorf("final marker = %d, want 111 (old program should have kept running)", got)
	}
}

// TestResumeAtDropsBlockCaches pins the recovery half of the same bug:
// reinstalling core state must invalidate the raw block-inst cache and the
// decoded-thunk cache, since the new PC may live in a different program
// generation than the caches were filled from.
func TestResumeAtDropsBlockCaches(t *testing.T) {
	cp := compileFor(t, sumProgram(500), 16)
	m, err := New(cp, testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	c := m.cores[0]
	if c.blkInsts == nil && c.dblk == nil {
		t.Fatal("block caches never warmed — test is not exercising the invalidation path")
	}
	c.resumeAt(CoreRecord{Fn: int32(c.fn), Blk: int32(c.blk)})
	if c.blkInsts != nil || c.dblk != nil || c.blkFn != -1 || c.blkId != -1 {
		t.Errorf("stale block caches after resumeAt: blkInsts=%v dblk=%v blkFn=%d blkId=%d",
			c.blkInsts != nil, c.dblk != nil, c.blkFn, c.blkId)
	}
	if c.svcAt != 0 {
		t.Errorf("svcAt = %d after resumeAt, want 0 (service horizon must be recomputed for rebuilt proxy state)", c.svcAt)
	}
}
