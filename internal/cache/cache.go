// Package cache models the on-chip cache hierarchy of the Capri machine:
// per-core L1 data caches and a shared L2, with LRU set-associative timing
// and dirty-line tracking. Caches are timing/traffic structures — functional
// values live in the architectural memory — but they carry per-line store
// sequence metadata so that evicted dirty lines generate writebacks tagged
// with the newest store that dirtied them, which is what the back-end proxy's
// valid-bit scan keys on (paper §5.3).
package cache

import "capri/internal/mem"

// Writeback describes a dirty line eviction travelling toward the memory
// controller.
type Writeback struct {
	Line  uint64   // line address
	Words []uint64 // dirty word addresses within the line
	Seq   uint64   // newest store sequence among the dirty words
	Core  int      // core whose store most recently dirtied the line
}

// line is one cache line's metadata.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	seq   uint64 // newest store seq
	core  int
	words uint64 // dirty-word bitmap (8 words per 64B line)
	lru   uint64
}

// Cache is a set-associative writeback cache.
type Cache struct {
	sets  [][]line
	ways  int
	clock uint64

	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New builds a cache with the given capacity in bytes and associativity.
func New(capacity uint64, ways int) *Cache {
	nlines := capacity / mem.LineSize
	nsets := int(nlines) / ways
	if nsets == 0 {
		nsets = 1
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*ways)
	for i := range sets {
		sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return &Cache{sets: sets, ways: ways}
}

func (c *Cache) set(lineAddr uint64) []line {
	return c.sets[(lineAddr/mem.LineSize)%uint64(len(c.sets))]
}

// Lookup probes the cache without modifying state. It reports a hit.
func (c *Cache) Lookup(addr uint64) bool {
	la := mem.LineAddr(addr)
	for i := range c.set(la) {
		l := &c.set(la)[i]
		if l.valid && l.tag == la {
			return true
		}
	}
	return false
}

// Access performs a read or write access to addr by core. For writes, seq is
// the store's global sequence number. It returns whether the access hit and,
// when the fill evicted a dirty line, the resulting writeback.
func (c *Cache) Access(addr uint64, write bool, seq uint64, core int) (hit bool, wb *Writeback) {
	la := mem.LineAddr(addr)
	set := c.set(la)
	c.clock++

	for i := range set {
		l := &set[i]
		if l.valid && l.tag == la {
			c.Hits++
			l.lru = c.clock
			if write {
				l.dirty = true
				l.words |= 1 << ((addr % mem.LineSize) / mem.WordSize)
				if seq > l.seq {
					l.seq = seq
					l.core = core
				}
			}
			return true, nil
		}
	}
	c.Misses++

	// Choose a victim: first invalid way, else LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto fill
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].dirty {
		c.Evictions++
		wb = wbOf(&set[victim])
	}
fill:
	l := &set[victim]
	*l = line{tag: la, valid: true, lru: c.clock}
	if write {
		l.dirty = true
		l.seq = seq
		l.core = core
		l.words = 1 << ((addr % mem.LineSize) / mem.WordSize)
	}
	return false, wb
}

func wbOf(l *line) *Writeback {
	wb := &Writeback{Line: l.tag, Seq: l.seq, Core: l.core}
	for w := uint64(0); w < mem.LineSize/mem.WordSize; w++ {
		if l.words&(1<<w) != 0 {
			wb.Words = append(wb.Words, l.tag+w*mem.WordSize)
		}
	}
	return wb
}

// FlushAll evicts every dirty line, returning the writebacks in set order.
// The machine uses it for the baseline (non-Capri) configuration's shutdown
// and for tests; Capri itself never flushes caches (§4.1: "Capri does not
// insert cache-flush instructions").
func (c *Cache) FlushAll() []*Writeback {
	var out []*Writeback
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.dirty {
				out = append(out, wbOf(l))
				l.dirty = false
				l.words = 0
			}
		}
	}
	return out
}

// Invalidate drops the line containing addr if present, returning its
// writeback if it was dirty. Used by the coherence glue when another core
// writes the same line.
func (c *Cache) Invalidate(addr uint64) *Writeback {
	la := mem.LineAddr(addr)
	set := c.set(la)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == la {
			var wb *Writeback
			if l.dirty {
				wb = wbOf(l)
			}
			l.valid = false
			l.dirty = false
			l.words = 0
			return wb
		}
	}
	return nil
}

// Reset clears the cache (power failure: all volatile contents lost).
func (c *Cache) Reset() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			c.sets[si][wi] = line{}
		}
	}
}
