// Package cache models the on-chip cache hierarchy of the Capri machine:
// per-core L1 data caches and a shared L2, with LRU set-associative timing
// and dirty-line tracking. Caches are timing/traffic structures — functional
// values live in the architectural memory — but they carry per-line store
// sequence metadata so that evicted dirty lines generate writebacks tagged
// with the newest store that dirtied them, which is what the back-end proxy's
// valid-bit scan keys on (paper §5.3).
package cache

import "capri/internal/mem"

// wordsPerLine is the number of words a 64 B line holds (and therefore the
// maximum dirty words one writeback can carry).
const wordsPerLine = mem.LineSize / mem.WordSize

// Writeback describes a dirty line eviction travelling toward the memory
// controller. Writebacks returned by Access and Invalidate point into a
// per-cache scratch buffer that is reused by the next Access/Invalidate on
// the same cache — consume (or copy) them before touching that cache again.
type Writeback struct {
	Line  uint64   // line address
	Words []uint64 // dirty word addresses within the line (aliases buf)
	Seq   uint64   // newest store sequence among the dirty words
	Core  int      // core whose store most recently dirtied the line

	buf [wordsPerLine]uint64
}

// fill populates the writeback from an evicted dirty line without heap
// allocation: Words aliases the writeback's own fixed-size buffer.
func (wb *Writeback) fill(l *line) {
	wb.Line, wb.Seq, wb.Core = l.tag, l.seq, l.core
	n := 0
	for w := uint64(0); w < wordsPerLine; w++ {
		if l.words&(1<<w) != 0 {
			wb.buf[n] = l.tag + w*mem.WordSize
			n++
		}
	}
	wb.Words = wb.buf[:n]
}

// line is one cache line's metadata.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	seq   uint64 // newest store seq
	core  int
	words uint64 // dirty-word bitmap (8 words per 64B line)
	lru   uint64
}

// Cache is a set-associative writeback cache.
type Cache struct {
	sets    [][]line
	setMask uint64 // len(sets)-1 when a power of two, else 0
	ways    int
	clock   uint64

	scratch Writeback // reused by Access/Invalidate writeback returns

	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New builds a cache with the given capacity in bytes and associativity.
func New(capacity uint64, ways int) *Cache {
	nlines := capacity / mem.LineSize
	nsets := int(nlines) / ways
	if nsets == 0 {
		nsets = 1
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*ways)
	for i := range sets {
		sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	c := &Cache{sets: sets, ways: ways}
	if n := uint64(nsets); n&(n-1) == 0 {
		c.setMask = n - 1
	}
	return c
}

func (c *Cache) set(lineAddr uint64) []line {
	s := lineAddr / mem.LineSize
	if c.setMask != 0 || len(c.sets) == 1 {
		return c.sets[s&c.setMask]
	}
	return c.sets[s%uint64(len(c.sets))]
}

// Lookup probes the cache without modifying state. It reports a hit.
func (c *Cache) Lookup(addr uint64) bool {
	la := mem.LineAddr(addr)
	set := c.set(la)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == la {
			return true
		}
	}
	return false
}

// Access performs a read or write access to addr by core. For writes, seq is
// the store's global sequence number. It returns whether the access hit and,
// when the fill evicted a dirty line, the resulting writeback (valid until
// the next Access/Invalidate on this cache).
func (c *Cache) Access(addr uint64, write bool, seq uint64, core int) (hit bool, wb *Writeback) {
	la := mem.LineAddr(addr)
	set := c.set(la)
	c.clock++

	for i := range set {
		l := &set[i]
		if l.valid && l.tag == la {
			c.Hits++
			l.lru = c.clock
			if write {
				l.dirty = true
				l.words |= 1 << ((addr % mem.LineSize) / mem.WordSize)
				if seq > l.seq {
					l.seq = seq
					l.core = core
				}
			}
			return true, nil
		}
	}
	c.Misses++

	// Choose a victim: first invalid way, else LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto fill
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].dirty {
		c.Evictions++
		c.scratch.fill(&set[victim])
		wb = &c.scratch
	}
fill:
	l := &set[victim]
	*l = line{tag: la, valid: true, lru: c.clock}
	if write {
		l.dirty = true
		l.seq = seq
		l.core = core
		l.words = 1 << ((addr % mem.LineSize) / mem.WordSize)
	}
	return false, wb
}

// FlushAll evicts every dirty line, returning the writebacks in set order.
// The machine uses it for the baseline (non-Capri) configuration's shutdown
// and for tests; Capri itself never flushes caches (§4.1: "Capri does not
// insert cache-flush instructions"). Unlike Access, the returned writebacks
// are independently allocated (this is a cold path).
func (c *Cache) FlushAll() []*Writeback {
	var out []*Writeback
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.dirty {
				wb := &Writeback{}
				wb.fill(l)
				out = append(out, wb)
				l.dirty = false
				l.words = 0
			}
		}
	}
	return out
}

// Invalidate drops the line containing addr if present, returning its
// writeback if it was dirty (valid until the next Access/Invalidate on this
// cache). Used by the coherence glue when another core writes the same line.
func (c *Cache) Invalidate(addr uint64) *Writeback {
	la := mem.LineAddr(addr)
	set := c.set(la)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == la {
			var wb *Writeback
			if l.dirty {
				c.scratch.fill(l)
				wb = &c.scratch
			}
			l.valid = false
			l.dirty = false
			l.words = 0
			return wb
		}
	}
	return nil
}

// DirtyLines counts currently dirty lines. Observability only (sampled into
// the metrics histograms at region boundaries); it walks every set, so keep it
// off hot paths.
func (c *Cache) DirtyLines() int {
	n := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.dirty {
				n++
			}
		}
	}
	return n
}

// Reset clears the cache (power failure: all volatile contents lost).
func (c *Cache) Reset() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			c.sets[si][wi] = line{}
		}
	}
}
