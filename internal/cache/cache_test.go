package cache

import (
	"testing"

	"capri/internal/mem"
)

func TestHitMissBasics(t *testing.T) {
	c := New(4*mem.LineSize, 2)
	if hit, _ := c.Access(0, false, 0, 0); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.Access(32, false, 0, 0); !hit {
		t.Error("same-line access missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 sets x 2 ways. Lines 0, 128, 256 all map to set 0.
	c := New(4*mem.LineSize, 2)
	c.Access(0, false, 0, 0)
	c.Access(128, false, 0, 0)
	c.Access(0, false, 0, 0) // refresh line 0
	// Fill third conflicting line: victim must be 128 (LRU).
	c.Access(256, false, 0, 0)
	if !c.Lookup(0) {
		t.Error("line 0 (MRU) evicted")
	}
	if c.Lookup(128) {
		t.Error("line 128 (LRU) survived")
	}
}

func TestDirtyEvictionProducesWriteback(t *testing.T) {
	c := New(2*mem.LineSize, 1) // 2 sets, direct mapped
	c.Access(0, true, 5, 3)     // dirty line 0, word 0
	c.Access(8, true, 6, 3)     // same line, word 1
	_, wb := c.Access(128, false, 0, 0)
	if wb == nil {
		t.Fatal("no writeback on dirty eviction")
	}
	if wb.Line != 0 || wb.Seq != 6 || wb.Core != 3 {
		t.Errorf("wb = %+v", wb)
	}
	if len(wb.Words) != 2 || wb.Words[0] != 0 || wb.Words[1] != 8 {
		t.Errorf("wb words = %v", wb.Words)
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	c := New(2*mem.LineSize, 1)
	c.Access(0, false, 0, 0)
	if _, wb := c.Access(128, false, 0, 0); wb != nil {
		t.Error("clean eviction produced a writeback")
	}
}

func TestWritebackSeqIsNewest(t *testing.T) {
	c := New(2*mem.LineSize, 1)
	c.Access(0, true, 10, 0)
	c.Access(0, true, 7, 1) // older seq, different core: must not regress
	_, wb := c.Access(128, false, 0, 0)
	if wb == nil || wb.Seq != 10 || wb.Core != 0 {
		t.Errorf("wb = %+v", wb)
	}
}

func TestFlushAll(t *testing.T) {
	c := New(4*mem.LineSize, 2)
	c.Access(0, true, 1, 0)
	c.Access(64, true, 2, 0)
	c.Access(128, false, 0, 0)
	wbs := c.FlushAll()
	if len(wbs) != 2 {
		t.Fatalf("flush produced %d writebacks, want 2", len(wbs))
	}
	if len(c.FlushAll()) != 0 {
		t.Error("second flush not empty")
	}
	// Lines remain valid (clean) after flush.
	if !c.Lookup(0) || !c.Lookup(64) {
		t.Error("flush invalidated lines")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4*mem.LineSize, 2)
	c.Access(0, true, 9, 2)
	wb := c.Invalidate(8) // same line
	if wb == nil || wb.Seq != 9 {
		t.Fatalf("invalidate wb = %+v", wb)
	}
	if c.Lookup(0) {
		t.Error("line survived invalidation")
	}
	if c.Invalidate(0) != nil {
		t.Error("second invalidate returned a writeback")
	}
}

func TestReset(t *testing.T) {
	c := New(4*mem.LineSize, 2)
	c.Access(0, true, 1, 0)
	c.Reset()
	if c.Lookup(0) {
		t.Error("line survived reset")
	}
	// Reset drops dirty data silently: power failure semantics.
	if wbs := c.FlushAll(); len(wbs) != 0 {
		t.Error("dirty data survived reset")
	}
}

func TestDirtyWordBitmapPerWord(t *testing.T) {
	c := New(2*mem.LineSize, 1)
	c.Access(16, true, 1, 0) // word 2 of line 0
	_, wb := c.Access(128, false, 0, 0)
	if wb == nil || len(wb.Words) != 1 || wb.Words[0] != 16 {
		t.Errorf("wb = %+v", wb)
	}
}
