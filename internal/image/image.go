// Package image serializes crash images to and from disk, so whole-system
// persistence spans process lifetimes: a run can "lose power" in one
// invocation (writing exactly the state the battery-backed hardware would
// preserve — NVM plus the proxy buffer contents), and a later invocation
// recovers from the file and resumes, as a rebooted machine would from its
// physical NVM. See `caprirun -image` and the examples/persistent demo.
//
// The format is versioned JSON wrapped in gzip; it embeds the compiled
// program so a recovering process needs nothing but the image file.
package image

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"capri/internal/machine"
	"capri/internal/mem"
	"capri/internal/prog"
	"capri/internal/proxy"
)

// Version identifies the on-disk format.
const Version = 1

// file is the serialized form of a machine.CrashImage.
type file struct {
	Version int
	Program *prog.Program
	Config  machine.Config
	Records []machine.CoreRecord
	Streams [][]proxy.Entry
	Outputs [][]uint64
	Seq     uint64
	NVM     []mem.WordEntry
}

// Write serializes the crash image to w.
func Write(w io.Writer, img *machine.CrashImage) error {
	gz := gzip.NewWriter(w)
	enc := json.NewEncoder(gz)
	f := file{
		Version: Version,
		Program: img.Prog,
		Config:  img.Cfg,
		Records: img.Records,
		Streams: img.Streams,
		Outputs: img.Outputs,
		Seq:     img.Seq,
		NVM:     img.NVM.Entries(),
	}
	if err := enc.Encode(&f); err != nil {
		gz.Close()
		return fmt.Errorf("image: encode: %w", err)
	}
	return gz.Close()
}

// Read deserializes a crash image from r.
func Read(r io.Reader) (*machine.CrashImage, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("image: %w", err)
	}
	defer gz.Close()
	var f file
	if err := json.NewDecoder(gz).Decode(&f); err != nil {
		return nil, fmt.Errorf("image: decode: %w", err)
	}
	if f.Version != Version {
		return nil, fmt.Errorf("image: unsupported version %d (have %d)", f.Version, Version)
	}
	if f.Program == nil {
		return nil, fmt.Errorf("image: missing embedded program")
	}
	if err := f.Program.Verify(); err != nil {
		return nil, fmt.Errorf("image: embedded program: %w", err)
	}
	img := &machine.CrashImage{
		Prog:    f.Program,
		Cfg:     f.Config,
		Records: f.Records,
		Streams: f.Streams,
		Outputs: f.Outputs,
		Seq:     f.Seq,
		NVM:     mem.NVMFromEntries(f.NVM),
	}
	if len(img.Records) != len(img.Streams) || len(img.Records) != len(img.Outputs) {
		return nil, fmt.Errorf("image: inconsistent core counts (%d records, %d streams, %d outputs)",
			len(img.Records), len(img.Streams), len(img.Outputs))
	}
	return img, nil
}

// Save writes the crash image to a file (atomically via a temp rename).
func Save(path string, img *machine.CrashImage) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(f, img); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a crash image from a file.
func LoadFile(path string) (*machine.CrashImage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
