package image

import (
	"bytes"
	"compress/gzip"
	"path/filepath"
	"reflect"
	"testing"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/progen"
)

// makeCrashImage runs a generated program to a crash point and returns both
// the image and the golden outputs of a crash-free run.
func makeCrashImage(t *testing.T, seed uint64, crashAt uint64) (*machine.CrashImage, [][]uint64) {
	t.Helper()
	gcfg := progen.DefaultConfig()
	gcfg.Threads = 2
	p := progen.Generate(seed, gcfg)
	res, err := compile.Compile(p, compile.OptionsForLevel(compile.LevelLICM, 32))
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	cfg.Threshold = 32
	cfg.L2Size = 256 << 10
	cfg.DRAMSize = 1 << 20

	g, err := machine.New(res.Program, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	var golden [][]uint64
	for th := 0; th < p.NumThreads(); th++ {
		golden = append(golden, g.Output(th))
	}

	m, _ := machine.New(res.Program, cfg)
	if err := m.RunUntil(crashAt); err != nil {
		t.Fatal(err)
	}
	if m.Done() {
		t.Skip("program finished before crash point")
	}
	img, err := m.Crash()
	if err != nil {
		t.Fatal(err)
	}
	return img, golden
}

func TestRoundTripInMemory(t *testing.T) {
	img, golden := makeCrashImage(t, 7, 400)

	var buf bytes.Buffer
	if err := Write(&buf, img); err != nil {
		t.Fatal(err)
	}
	img2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if img2.Seq != img.Seq {
		t.Errorf("seq %d != %d", img2.Seq, img.Seq)
	}
	if !reflect.DeepEqual(img2.Records, img.Records) {
		t.Error("records differ after round trip")
	}
	if !reflect.DeepEqual(img2.Streams, img.Streams) {
		t.Error("streams differ after round trip")
	}
	if !reflect.DeepEqual(img2.NVM.Snapshot(), img.NVM.Snapshot()) {
		t.Error("NVM image differs after round trip")
	}

	// Recovery from the deserialized image must reach the golden state.
	r, _, err := machine.Recover(img2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	for th := range golden {
		if !reflect.DeepEqual(r.Output(th), golden[th]) {
			t.Errorf("thread %d: output %v, golden %v", th, r.Output(th), golden[th])
		}
	}
}

// TestSerializationDeterministic: serializing one crash image twice — and
// serializing the images of two identical runs — must produce byte-identical
// files. This pins down every ordering decision in the pipeline: NVM.Entries
// is sorted by address, JSON map keys are sorted, and gzip carries no
// timestamp. Without it, content-addressed image storage and golden-file
// tests would see spurious diffs (the seed's map-iteration Entries order made
// exactly that happen).
func TestSerializationDeterministic(t *testing.T) {
	img, _ := makeCrashImage(t, 7, 400)

	var a, b bytes.Buffer
	if err := Write(&a, img); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, img); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serializing the same image twice produced different bytes")
	}

	// A second, independent run crashed at the same point must serialize to
	// the same bytes too (the simulator is deterministic; the image format
	// must not launder that determinism away).
	img2, _ := makeCrashImage(t, 7, 400)
	var c bytes.Buffer
	if err := Write(&c, img2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("identical runs serialized to different bytes")
	}
}

func TestSaveLoadFile(t *testing.T) {
	img, golden := makeCrashImage(t, 11, 300)
	path := filepath.Join(t.TempDir(), "crash.img")
	if err := Save(path, img); err != nil {
		t.Fatal(err)
	}
	img2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := machine.Recover(img2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	for th := range golden {
		if !reflect.DeepEqual(r.Output(th), golden[th]) {
			t.Errorf("thread %d diverged after file round trip", th)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	img, _ := makeCrashImage(t, 13, 200)
	var buf bytes.Buffer
	if err := Write(&buf, img); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a bumped version by poking the JSON (decompress,
	// tweak, recompress) — simpler: write a minimal bad-version payload.
	var bad bytes.Buffer
	writeRaw(t, &bad, `{"Version":999}`)
	if _, err := Read(&bad); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestReadRejectsMissingProgram(t *testing.T) {
	var bad bytes.Buffer
	writeRaw(t, &bad, `{"Version":1}`)
	if _, err := Read(&bad); err == nil {
		t.Error("missing program accepted")
	}
}

func TestCrashRecoverAcrossSerializationSweep(t *testing.T) {
	// The end-to-end property: for several crash points, serialize +
	// deserialize + recover + resume == golden.
	for _, crashAt := range []uint64{50, 250, 800, 2000} {
		img, golden := makeCrashImage(t, 21, crashAt)
		var buf bytes.Buffer
		if err := Write(&buf, img); err != nil {
			t.Fatal(err)
		}
		img2, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		r, rep, err := machine.Recover(img2)
		if err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
		if rep.ConflictingUndo != 0 {
			t.Errorf("crash@%d: conflicting undos", crashAt)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
		for th := range golden {
			if !reflect.DeepEqual(r.Output(th), golden[th]) {
				t.Errorf("crash@%d thread %d: output %v, golden %v",
					crashAt, th, r.Output(th), golden[th])
			}
		}
	}
}

// writeRaw gzips a raw JSON string into buf.
func writeRaw(t *testing.T, buf *bytes.Buffer, payload string) {
	t.Helper()
	gz := newGzip(buf)
	if _, err := gz.Write([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
}

// newGzip is a tiny indirection so the test file compiles without importing
// compress/gzip at every call site.
func newGzip(buf *bytes.Buffer) *gzip.Writer { return gzip.NewWriter(buf) }
