package resultstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testKey(i int) Key { return KeyOf("test", []byte(fmt.Sprintf("key-%d", i))) }

func testVal(i int) []byte {
	return bytes.Repeat([]byte{byte(i), byte(i >> 8)}, 40+i%17)
}

// fill puts n entries and flushes them into one sealed segment.
func fill(t *testing.T, s *Store, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		s.Put(testKey(i), testVal(i))
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Pending values are visible before Flush.
	s.Put(testKey(0), testVal(0))
	if v, ok := s.Get(testKey(0)); !ok || !bytes.Equal(v, testVal(0)) {
		t.Fatalf("pending get = %v, %v", v, ok)
	}
	fill(t, s, 1, 50)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything sealed must come back byte-identical.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 50; i++ {
		v, ok := s2.Get(testKey(i))
		if !ok {
			t.Fatalf("key %d missing after reopen", i)
		}
		if !bytes.Equal(v, testVal(i)) {
			t.Fatalf("key %d corrupted: got %x want %x", i, v, testVal(i))
		}
	}
	if _, ok := s2.Get(testKey(999)); ok {
		t.Fatal("absent key reported present")
	}
	st := s2.Stats()
	if st.Entries != 50 || st.Segments == 0 {
		t.Fatalf("stats after reopen: %+v", st)
	}
}

func TestNewestWinsAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put(testKey(1), []byte("old"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Put(testKey(1), []byte("new"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, _ := Open(dir)
	defer s2.Close()
	if v, ok := s2.Get(testKey(1)); !ok || string(v) != "new" {
		t.Fatalf("got %q, %v; want newest value", v, ok)
	}
}

// segPaths lists the sealed segment files in the directory.
func segPaths(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTruncatedSegmentIgnored(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	fill(t, s, 0, 20)
	s.Close()

	paths := segPaths(t, dir)
	if len(paths) != 1 {
		t.Fatalf("want 1 segment, have %v", paths)
	}
	fi, _ := os.Stat(paths[0])
	if err := os.Truncate(paths[0], fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.CorruptSegments != 1 || st.Entries != 0 {
		t.Fatalf("truncated segment not excluded: %+v", st)
	}
	if _, ok := s2.Get(testKey(3)); ok {
		t.Fatal("got a value out of a truncated segment")
	}
}

func TestBitFlippedIndexEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	fill(t, s, 0, 20)
	s.Close()

	path := segPaths(t, dir)[0]
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the index section (between indexOff and the
	// trailer); the index checksum must reject the whole segment.
	idxStart := len(raw) - trailerLen - 20*idxEntryLen
	raw[idxStart+7] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, _ := Open(dir)
	defer s2.Close()
	if st := s2.Stats(); st.CorruptSegments != 1 {
		t.Fatalf("flipped index entry not detected: %+v", st)
	}
	for i := 0; i < 20; i++ {
		if _, ok := s2.Get(testKey(i)); ok {
			t.Fatalf("key %d served from a segment with a corrupt index", i)
		}
	}
}

func TestBitFlippedPayloadIsMissNeverWrongData(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	fill(t, s, 0, 3)
	s.Close()

	path := segPaths(t, dir)[0]
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte of the first record's payload, leaving the index (and
	// its checksum) intact: the segment opens, but the per-record checksum
	// must demote the damaged key to a miss at Get time.
	raw[headerLen+36+3] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, _ := Open(dir)
	defer s2.Close()
	if st := s2.Stats(); st.CorruptSegments != 0 {
		t.Fatalf("segment should open (index intact): %+v", st)
	}
	if v, ok := s2.Get(testKey(0)); ok {
		t.Fatalf("corrupt payload returned as data: %x", v)
	}
	if st := s2.Stats(); st.CorruptRecords != 1 {
		t.Fatalf("corrupt record not counted: %+v", st)
	}
	// The other records are untouched and must still verify.
	for i := 1; i < 3; i++ {
		if v, ok := s2.Get(testKey(i)); !ok || !bytes.Equal(v, testVal(i)) {
			t.Fatalf("undamaged key %d lost: %v %v", i, v, ok)
		}
	}
}

func TestPartialTempWriteIgnored(t *testing.T) {
	dir := t.TempDir()
	// Simulate a writer that died mid-batch: a bare temp file in the store.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-999-1"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if st := s.Stats(); st.Segments != 0 || st.CorruptSegments != 0 {
		t.Fatalf("temp garbage affected open: %+v", st)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.CompactThreshold = 3
	for batch := 0; batch < 5; batch++ {
		fill(t, s, batch*10, batch*10+10)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after 5 batches over threshold 3: %+v", st)
	}
	if st.Segments > 3 {
		t.Fatalf("segment count %d not compacted under threshold", st.Segments)
	}
	if st.Entries != 50 {
		t.Fatalf("entries after compaction: %+v", st)
	}
	for i := 0; i < 50; i++ {
		if v, ok := s.Get(testKey(i)); !ok || !bytes.Equal(v, testVal(i)) {
			t.Fatalf("key %d lost by compaction", i)
		}
	}
	s.Close()

	// Survives reopen, and the merged segment carries everything.
	s2, _ := Open(dir)
	defer s2.Close()
	for i := 0; i < 50; i++ {
		if v, ok := s2.Get(testKey(i)); !ok || !bytes.Equal(v, testVal(i)) {
			t.Fatalf("key %d lost after compaction + reopen", i)
		}
	}
}

// TestCompactionDeterministic: compacting the same live set yields
// byte-identical merged segments (sorted key order), so store state is a
// pure function of its contents.
func TestCompactionDeterministic(t *testing.T) {
	render := func(dir string) []byte {
		s, _ := Open(dir)
		s.CompactThreshold = 1
		// Insert in different orders per call site via the caller.
		for i := 9; i >= 0; i-- {
			s.Put(testKey(i), testVal(i))
		}
		s.Flush()
		for i := 10; i < 20; i++ {
			s.Put(testKey(i), testVal(i))
		}
		s.Flush() // exceeds threshold 1 -> compacts
		s.Close()
		paths := segPaths(t, dir)
		if len(paths) != 1 {
			t.Fatalf("want 1 merged segment, have %v", paths)
		}
		raw, err := os.ReadFile(paths[0])
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a := render(t.TempDir())
	b := render(t.TempDir())
	if !bytes.Equal(a, b) {
		t.Fatal("merged segments differ for identical live sets")
	}
}

func TestConcurrentPutGetFlush(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.CompactThreshold = 2
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := w*50 + i
				s.Put(testKey(k), testVal(k))
				if v, ok := s.Get(testKey(k)); !ok || !bytes.Equal(v, testVal(k)) {
					t.Errorf("worker %d: lost own put %d", w, k)
					return
				}
				if i%20 == 19 {
					if err := s.Flush(); err != nil {
						t.Errorf("flush: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(dir)
	defer s2.Close()
	if st := s2.Stats(); st.Entries != 400 {
		t.Fatalf("entries after concurrent writes: %+v", st)
	}
}

func TestKeyOfDomainsAndParts(t *testing.T) {
	a := KeyOf("sim", []byte("x"), []byte("y"))
	b := KeyOf("compile", []byte("x"), []byte("y"))
	c := KeyOf("sim", []byte("xy"), []byte(""))
	d := KeyOf("sim", []byte("x"), []byte("y"))
	if a == b {
		t.Fatal("domains collide")
	}
	if a == c {
		t.Fatal("part boundaries collide")
	}
	if a != d {
		t.Fatal("KeyOf not deterministic")
	}
}
