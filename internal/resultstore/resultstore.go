// Package resultstore is the on-disk content-addressed result store behind
// the sweep fleet (DESIGN.md §4h): immutable result batches written as
// append-only segment files, each sealed with a checksummed index, and
// merged LSM-style — the incremental-batch discipline of the DBSP Spine —
// once the segment count crosses a threshold.
//
// The store is a cache with a strict never-wrong-data contract. Values are
// opaque byte payloads addressed by a 32-byte content key; a reader either
// gets back exactly the bytes that were stored under that key or a miss.
// Partial segment writes, truncated files, and bit flips in either the index
// or a record are all detected by checksums and demoted to misses — a
// corrupt store can cost re-simulation, never a wrong figure.
//
// Crash safety of the store itself: a segment is built in a temp file,
// fsynced, and published with an atomic link+rename claim, so a crashed
// writer leaves only ignorable *.tmp garbage. Compaction publishes the
// merged segment before deleting its inputs; a crash in between leaves
// duplicate keys that resolve newest-segment-wins on the next open.
package resultstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"capri/internal/telemetry"
)

// Key is a 32-byte content address. Keys are derived with KeyOf so distinct
// domains (simulation results, compiled programs, fault-plan outcomes) can
// never collide even over identical input bytes.
type Key [sha256.Size]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyOf derives a content key: sha256 over the domain tag and every part,
// each length-prefixed so part boundaries cannot be confused.
func KeyOf(domain string, parts ...[]byte) Key {
	h := sha256.New()
	var n [8]byte
	w := func(b []byte) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	w([]byte(domain))
	for _, p := range parts {
		w(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Segment file layout (all integers little-endian):
//
//	header   "capriseg" | version u8
//	records  repeat { key [32] | len u32 | payload | sum [32] }
//	index    repeat { key [32] | payloadOff u64 | len u32 }
//	trailer  indexOff u64 | count u64 | indexSum [32] | "capriidx"
//
// A record's sum is sha256(key || payload); indexSum is sha256 over the raw
// index bytes. A segment without a valid header, trailer, and indexSum is
// ignored wholesale at Open — that is how partial writes and index bit flips
// are excluded — and each record's sum is verified again on Get, so a flipped
// payload byte in an otherwise healthy segment is also just a miss.
const (
	segMagic    = "capriseg"
	idxMagic    = "capriidx"
	segVersion  = 1
	headerLen   = len(segMagic) + 1
	idxEntryLen = sha256.Size + 8 + 4
	trailerLen  = 8 + 8 + sha256.Size + len(idxMagic)

	// DefaultCompactThreshold is the segment count past which Flush merges
	// every sealed segment into one (see Store.CompactThreshold).
	DefaultCompactThreshold = 8
)

// entryRef locates one record's payload inside a sealed segment.
type entryRef struct {
	seg *segment
	off uint64
	len uint32
}

// segment is one sealed on-disk batch.
type segment struct {
	seq  uint64
	path string
	f    *os.File
	keys int
}

// SegmentInfo describes one sealed segment for inspection tooling.
type SegmentInfo struct {
	Seq  uint64 `json:"seq"`
	Path string `json:"path"`
	Keys int    `json:"keys"` // records in the segment (including superseded ones)
	Size int64  `json:"size"` // file size in bytes
}

// Stats is a snapshot of store traffic and shape.
type Stats struct {
	Segments        int    `json:"segments"`
	Entries         int    `json:"entries"` // distinct live keys (sealed + pending)
	Pending         int    `json:"pending"` // buffered puts not yet sealed
	Hits            uint64 `json:"hits"`
	Misses          uint64 `json:"misses"`
	Puts            uint64 `json:"puts"`
	Compactions     uint64 `json:"compactions"`
	CorruptSegments uint64 `json:"corrupt_segments,omitempty"` // ignored at open
	CorruptRecords  uint64 `json:"corrupt_records,omitempty"`  // demoted to misses
}

// Store is a concurrency-safe handle on one store directory. Multiple
// processes may share a directory: segments are immutable once published and
// publication is an atomic link, so the worst cross-process outcome is a
// duplicate batch, resolved newest-wins. One process should use one Store.
type Store struct {
	// CompactThreshold is the sealed-segment count past which Flush merges
	// all segments into one. Set it before concurrent use; zero means
	// DefaultCompactThreshold.
	CompactThreshold int

	dir string

	mu      sync.Mutex
	segs    []*segment // ascending seq; later overrides earlier
	index   map[Key]entryRef
	pending map[Key][]byte
	order   []Key // pending insertion order (deterministic segments)
	tmpSeq  uint64
	stats   Stats
	closed  bool
}

// Open opens (creating if needed) the store rooted at dir and loads every
// sealed segment's index. Unreadable or corrupt segments are skipped and
// counted in Stats.CorruptSegments, never trusted.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{
		CompactThreshold: DefaultCompactThreshold,
		dir:              dir,
		index:            make(map[Key]entryRef),
		pending:          make(map[Key][]byte),
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	var seqs []uint64
	for _, de := range names {
		name := de.Name()
		if !strings.HasSuffix(name, ".seg") || de.IsDir() {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 16, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		if err := s.loadSegment(seq); err != nil {
			// Corrupt or torn segment: its results are lost, not wrong.
			s.stats.CorruptSegments++
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// loadSegment validates and indexes one sealed segment file.
func (s *Store) loadSegment(seq uint64) error {
	path := filepath.Join(s.dir, segName(seq))
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	seg, entries, err := readSegment(f, seq, path)
	if err != nil {
		f.Close()
		return err
	}
	s.segs = append(s.segs, seg)
	for _, e := range entries {
		s.index[e.key] = entryRef{seg: seg, off: e.off, len: e.len}
	}
	return nil
}

type indexEntry struct {
	key Key
	off uint64
	len uint32
}

// readSegment validates header, trailer, and index checksum, returning the
// segment handle and its index entries.
func readSegment(f *os.File, seq uint64, path string) (*segment, []indexEntry, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size < int64(headerLen+trailerLen) {
		return nil, nil, fmt.Errorf("resultstore: %s: truncated (%d bytes)", path, size)
	}
	hdr := make([]byte, headerLen)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, nil, err
	}
	if string(hdr[:len(segMagic)]) != segMagic || hdr[len(segMagic)] != segVersion {
		return nil, nil, fmt.Errorf("resultstore: %s: bad header", path)
	}
	tr := make([]byte, trailerLen)
	if _, err := f.ReadAt(tr, size-int64(trailerLen)); err != nil {
		return nil, nil, err
	}
	if string(tr[16+sha256.Size:]) != idxMagic {
		return nil, nil, fmt.Errorf("resultstore: %s: bad trailer magic", path)
	}
	idxOff := binary.LittleEndian.Uint64(tr[0:8])
	count := binary.LittleEndian.Uint64(tr[8:16])
	var wantSum [sha256.Size]byte
	copy(wantSum[:], tr[16:16+sha256.Size])
	idxLen := count * uint64(idxEntryLen)
	if idxOff < uint64(headerLen) || idxOff+idxLen != uint64(size)-uint64(trailerLen) {
		return nil, nil, fmt.Errorf("resultstore: %s: index out of bounds", path)
	}
	idx := make([]byte, idxLen)
	if _, err := f.ReadAt(idx, int64(idxOff)); err != nil {
		return nil, nil, err
	}
	if sha256.Sum256(idx) != wantSum {
		return nil, nil, fmt.Errorf("resultstore: %s: index checksum mismatch", path)
	}
	entries := make([]indexEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		e := idx[i*uint64(idxEntryLen):]
		var ie indexEntry
		copy(ie.key[:], e[:sha256.Size])
		ie.off = binary.LittleEndian.Uint64(e[sha256.Size : sha256.Size+8])
		ie.len = binary.LittleEndian.Uint32(e[sha256.Size+8 : sha256.Size+12])
		if ie.off+uint64(ie.len)+sha256.Size > idxOff {
			return nil, nil, fmt.Errorf("resultstore: %s: record out of bounds", path)
		}
		entries = append(entries, ie)
	}
	return &segment{seq: seq, path: path, f: f, keys: int(count)}, entries, nil
}

func segName(seq uint64) string { return fmt.Sprintf("%016x.seg", seq) }

// Get returns the payload stored under k. Pending (unflushed) puts are
// visible. A record whose checksum no longer matches is dropped from the
// index and reported as a miss — corrupt data is never returned.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.pending[k]; ok {
		s.stats.Hits++
		telemetry.Caches.StoreHits.Add(1)
		return append([]byte(nil), v...), true
	}
	ref, ok := s.index[k]
	if !ok {
		s.stats.Misses++
		telemetry.Caches.StoreMisses.Add(1)
		return nil, false
	}
	buf := make([]byte, int(ref.len)+sha256.Size)
	if _, err := ref.seg.f.ReadAt(buf, int64(ref.off)); err != nil {
		delete(s.index, k)
		s.stats.CorruptRecords++
		s.stats.Misses++
		telemetry.Caches.StoreMisses.Add(1)
		return nil, false
	}
	payload, sum := buf[:ref.len], buf[ref.len:]
	if recordSum(k, payload) != *(*[sha256.Size]byte)(sum) {
		delete(s.index, k)
		s.stats.CorruptRecords++
		s.stats.Misses++
		telemetry.Caches.StoreMisses.Add(1)
		return nil, false
	}
	s.stats.Hits++
	telemetry.Caches.StoreHits.Add(1)
	return payload, true
}

// recordSum is the per-record integrity checksum: sha256(key || payload).
func recordSum(k Key, payload []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(k[:])
	h.Write(payload)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// Put buffers a payload under k. The value becomes durable at the next
// Flush; until then it is visible to Get in this process only. Re-putting a
// key overwrites the pending value (last wins).
func (s *Store) Put(k Key, v []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if _, ok := s.pending[k]; !ok {
		s.order = append(s.order, k)
	}
	s.pending[k] = append([]byte(nil), v...)
	s.stats.Puts++
	telemetry.Caches.StorePuts.Add(1)
}

// Flush seals the pending batch into a new immutable segment (a no-op when
// nothing is pending) and compacts the store if the sealed-segment count
// exceeds CompactThreshold.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	th := s.CompactThreshold
	if th <= 0 {
		th = DefaultCompactThreshold
	}
	if len(s.segs) > th {
		return s.compactLocked()
	}
	return nil
}

// flushLocked writes the pending batch as one sealed segment.
func (s *Store) flushLocked() error {
	if len(s.pending) == 0 {
		return nil
	}
	var buf bytes.Buffer
	entries := make([]indexEntry, 0, len(s.order))
	buf.WriteString(segMagic)
	buf.WriteByte(segVersion)
	for _, k := range s.order {
		payload := s.pending[k]
		var hdr [sha256.Size + 4]byte
		copy(hdr[:], k[:])
		binary.LittleEndian.PutUint32(hdr[sha256.Size:], uint32(len(payload)))
		buf.Write(hdr[:])
		off := uint64(buf.Len())
		buf.Write(payload)
		sum := recordSum(k, payload)
		buf.Write(sum[:])
		entries = append(entries, indexEntry{key: k, off: off, len: uint32(len(payload))})
	}
	writeIndexAndTrailer(&buf, entries)
	seg, idx, err := s.publish(buf.Bytes(), len(entries))
	if err != nil {
		return err
	}
	for _, e := range idx {
		s.index[e.key] = entryRef{seg: seg, off: e.off, len: e.len}
	}
	s.pending = make(map[Key][]byte)
	s.order = nil
	return nil
}

// writeIndexAndTrailer appends the index section and trailer for entries to
// buf (which must already hold header + records).
func writeIndexAndTrailer(buf *bytes.Buffer, entries []indexEntry) {
	idxOff := uint64(buf.Len())
	idxStart := buf.Len()
	for _, e := range entries {
		var ie [idxEntryLen]byte
		copy(ie[:], e.key[:])
		binary.LittleEndian.PutUint64(ie[sha256.Size:], e.off)
		binary.LittleEndian.PutUint32(ie[sha256.Size+8:], e.len)
		buf.Write(ie[:])
	}
	idxSum := sha256.Sum256(buf.Bytes()[idxStart:])
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint64(tr[0:8], idxOff)
	binary.LittleEndian.PutUint64(tr[8:16], uint64(len(entries)))
	copy(tr[16:], idxSum[:])
	copy(tr[16+sha256.Size:], idxMagic)
	buf.Write(tr[:])
}

// publish durably writes raw as a new sealed segment: temp file, fsync,
// atomic link into the next free sequence slot, directory fsync. It returns
// the opened segment and its re-validated index.
func (s *Store) publish(raw []byte, keys int) (*segment, []indexEntry, error) {
	s.tmpSeq++
	tmp := filepath.Join(s.dir, fmt.Sprintf(".tmp-%d-%d", os.Getpid(), s.tmpSeq))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("resultstore: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, nil, fmt.Errorf("resultstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, nil, fmt.Errorf("resultstore: %w", err)
	}
	f.Close()

	// Claim the next free sequence number with link(2): it fails if the name
	// exists, so concurrent writers (even other processes) cannot clobber
	// each other's batches.
	seq := uint64(1)
	if n := len(s.segs); n > 0 {
		seq = s.segs[n-1].seq + 1
	}
	var path string
	for {
		path = filepath.Join(s.dir, segName(seq))
		err := os.Link(tmp, path)
		if err == nil {
			break
		}
		if os.IsExist(err) {
			seq++
			continue
		}
		os.Remove(tmp)
		return nil, nil, fmt.Errorf("resultstore: %w", err)
	}
	os.Remove(tmp)
	syncDir(s.dir)

	rf, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("resultstore: %w", err)
	}
	seg, idx, err := readSegment(rf, seq, path)
	if err != nil {
		rf.Close()
		return nil, nil, fmt.Errorf("resultstore: reread own segment: %w", err)
	}
	s.segs = append(s.segs, seg)
	return seg, idx, nil
}

// syncDir fsyncs a directory so a published segment's link survives a crash.
// Best effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// compactLocked merges every sealed segment into one (newest key wins),
// publishes the merged segment, then removes the inputs. A crash after
// publish and before removal only leaves duplicates that resolve
// newest-wins at the next Open. Keys are written in sorted order so the
// merged segment is byte-deterministic for a given live set.
func (s *Store) compactLocked() error {
	keys := make([]Key, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i][:], keys[j][:]) < 0 })

	var buf bytes.Buffer
	buf.WriteString(segMagic)
	buf.WriteByte(segVersion)
	entries := make([]indexEntry, 0, len(keys))
	for _, k := range keys {
		ref := s.index[k]
		payload := make([]byte, int(ref.len)+sha256.Size)
		if _, err := ref.seg.f.ReadAt(payload, int64(ref.off)); err != nil {
			s.stats.CorruptRecords++
			continue
		}
		if recordSum(k, payload[:ref.len]) != *(*[sha256.Size]byte)(payload[ref.len:]) {
			s.stats.CorruptRecords++
			continue
		}
		var hdr [sha256.Size + 4]byte
		copy(hdr[:], k[:])
		binary.LittleEndian.PutUint32(hdr[sha256.Size:], ref.len)
		buf.Write(hdr[:])
		entries = append(entries, indexEntry{key: k, off: uint64(buf.Len()), len: ref.len})
		buf.Write(payload)
	}
	writeIndexAndTrailer(&buf, entries)

	old := s.segs
	s.segs = nil
	seg, idx, err := s.publish(buf.Bytes(), len(entries))
	if err != nil {
		s.segs = old
		return err
	}
	s.index = make(map[Key]entryRef, len(idx))
	for _, e := range idx {
		s.index[e.key] = entryRef{seg: seg, off: e.off, len: e.len}
	}
	for _, o := range old {
		o.f.Close()
		os.Remove(o.path)
	}
	syncDir(s.dir)
	s.stats.Compactions++
	return nil
}

// Stats returns a snapshot of store traffic and shape.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Segments = len(s.segs)
	st.Pending = len(s.pending)
	live := len(s.index)
	for k := range s.pending {
		if _, ok := s.index[k]; !ok {
			live++
		}
	}
	st.Entries = live
	return st
}

// Segments lists the sealed segments in sequence order, for inspection
// tooling (capriinspect store).
func (s *Store) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SegmentInfo, 0, len(s.segs))
	for _, seg := range s.segs {
		info := SegmentInfo{Seq: seg.seq, Path: seg.path, Keys: seg.keys}
		if fi, err := seg.f.Stat(); err == nil {
			info.Size = fi.Size()
		}
		out = append(out, info)
	}
	return out
}

// Close flushes pending puts and releases every segment handle. The Store
// must not be used afterwards.
func (s *Store) Close() error {
	err := s.Flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for _, seg := range s.segs {
		seg.f.Close()
	}
	s.segs = nil
	s.index = make(map[Key]entryRef)
	return err
}
