package figures

import (
	"fmt"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/stats"
	"capri/internal/workload"
)

// ExplainCols are the columns of the stall-attribution table, in display
// order. Every value is a signed delta — Capri critical-core cycles minus
// baseline critical-core cycles for that cause bucket — as a percentage of
// baseline cycles, so a row sums (column "total") to the benchmark's
// normalized overhead from Figures 8/9.
var ExplainCols = []string{
	"ckpt",       // checkpoint-store issue cost (compiler-inserted)
	"boundary",   // region-boundary issue cost
	"front-full", // front-end proxy stalls: path bandwidth bound
	"backpress",  // front-end stalls: back-end threshold, drain not booked
	"nvm-queue",  // front-end stalls: waiting on the NVM write-queue bank
	"drain-wait", // end-of-run quiesce: waiting for final phase-2 drains
	"spin",       // lock back-off delta (contention shifts under Capri)
	"load",       // load-latency delta (checkpoints perturb cache behavior)
	"other",      // exec/store/sync/fence issue delta (inserted instructions)
	"total",      // the whole gap: (capri - baseline) / baseline
	"resid",      // total minus the sum of the causes — 0 by construction
}

// explainRow decomposes one benchmark's Capri-vs-baseline cycle gap into
// ExplainCols. The ledgers are exhaustive (per core, buckets sum to the cycle
// count) and both Stats carry the critical core's ledger, so the residual is
// identically zero; it is still computed and printed because the acceptance
// contract for the explain mode is "residual ≤ 5%", and a nonzero value here
// means a cycle increment somewhere lost its cause tag.
func explainRow(base, capri machine.Stats) []float64 {
	d := func(cc machine.CycleCause) float64 {
		return float64(int64(capri.CycleBy[cc]) - int64(base.CycleBy[cc]))
	}
	scale := 100 / float64(base.Cycles)
	ckpt := d(machine.CauseCkpt)
	boundary := d(machine.CauseBoundary)
	frontFull := d(machine.CauseFrontFull)
	backPress := d(machine.CauseBackPressure)
	nvmQueue := d(machine.CauseNVMQueue)
	drainWait := d(machine.CauseDrainWait)
	spin := d(machine.CauseLockSpin)
	load := d(machine.CauseLoadL1) + d(machine.CauseLoadL2) + d(machine.CauseLoadDRAM) + d(machine.CauseLoadNVM)
	other := d(machine.CauseExec) + d(machine.CauseStore) + d(machine.CauseSync) + d(machine.CauseFence)
	total := float64(int64(capri.Cycles) - int64(base.Cycles))
	resid := total - (ckpt + boundary + frontFull + backPress + nvmQueue + drainWait + spin + load + other)
	row := []float64{ckpt, boundary, frontFull, backPress, nvmQueue, drainWait, spin, load, other, total, resid}
	for i := range row {
		row[i] *= scale
	}
	return row
}

// Explain builds the stall-attribution table for every benchmark at the given
// optimization level and threshold: where did the Capri machine's extra (or
// saved) cycles go, relative to the volatile baseline? Rows are benchmarks;
// the closing row is the arithmetic mean (deltas are signed, so a geomean
// would be meaningless).
func (h *Harness) Explain(level compile.Level, threshold int) (*stats.Table, error) {
	if err := h.Prefetch([]compile.Level{level}, []int{threshold}); err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Stall attribution: Capri (%s, threshold %d) vs baseline, Δcycles as %% of baseline",
		level, threshold)
	t := stats.NewTable(title, ExplainCols...)
	sums := make([]float64, len(ExplainCols))
	n := 0
	for _, b := range workload.All() {
		base, err := h.BaselineStats(b)
		if err != nil {
			return nil, err
		}
		r, err := h.Run(b, level, threshold)
		if err != nil {
			return nil, err
		}
		row := explainRow(base, r.Machine)
		t.AddRow(b.Name, row...)
		for i, v := range row {
			sums[i] += v
		}
		n++
	}
	t.AddRule()
	if n > 0 {
		mean := make([]float64, len(sums))
		for i, v := range sums {
			mean[i] = v / float64(n)
		}
		t.AddRow("mean", mean...)
	}
	return t, nil
}
