package figures

import (
	"math"
	"testing"

	"capri/internal/compile"
	"capri/internal/workload"
)

// TestExplainDecomposition checks the explain contract on the default
// configuration: for every benchmark the per-cause deltas sum to the total
// gap with (near-)zero residual — far inside the documented 5% bound — and
// the total column agrees with the Figure-8 normalized overhead.
func TestExplainDecomposition(t *testing.T) {
	h := NewHarness(1)
	tbl, err := h.Explain(compile.LevelLICM, compile.DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range workload.All() {
		resid, ok := tbl.Value(b.Name, "resid")
		if !ok {
			t.Fatalf("%s missing from explain table", b.Name)
		}
		total, _ := tbl.Value(b.Name, "total")
		// The ledger is exhaustive; the only slack allowed is float rounding
		// of the percentage conversion.
		if math.Abs(resid) > 1e-6 {
			t.Errorf("%s: residual %.9f%% (total %.3f%%), want 0", b.Name, resid, total)
		}

		// Cross-check against the cached Run result: total == 100*(norm-1).
		r, err := h.Run(b, compile.LevelLICM, compile.DefaultThreshold)
		if err != nil {
			t.Fatal(err)
		}
		want := 100 * (r.Norm - 1)
		if math.Abs(total-want) > 1e-6 {
			t.Errorf("%s: explain total %.6f%% != figure overhead %.6f%%", b.Name, total, want)
		}
	}
}
