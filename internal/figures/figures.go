// Package figures regenerates the paper's evaluation artifacts: Figure 8
// (normalized cycles vs store threshold), Figure 9 (normalized cycles under
// cumulative compiler optimizations), Figures 10 and 11 (average region
// length in instructions and stores), the §6.2 headline numbers, and
// Table 1. Every figure is a stats.Table whose rows are the 21 benchmarks in
// the paper's plotting order plus per-suite and overall geometric means.
package figures

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"capri/internal/audit"
	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/resultstore"
	"capri/internal/stats"
	"capri/internal/sweep"
	"capri/internal/workload"
)

// Thresholds swept by Figure 8 (the paper plots 128–1024 and discusses 32/64
// in the text; we report all).
var Fig8Thresholds = []int{32, 64, 128, 256, 512, 1024}

// Harness runs benchmarks, caching baseline cycles and per-configuration
// results so the figures reuse runs (Figures 9–11 share the same sweeps),
// and fanning independent simulations across CPUs.
type Harness struct {
	// Scale multiplies workload trip counts (1 = figure scale).
	Scale int
	// Cores overrides the machine core count (0 = default 8). A pinned
	// value is never silently raised: a benchmark needing more threads than
	// the pinned core count fails its run instead.
	Cores int
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// RefStore runs every simulation on the map-backed reference memory
	// store instead of the paged store (perf-baseline measurement only).
	RefStore bool

	mu       sync.Mutex
	baseline map[string]*baselineRun
	results  map[runKey]*resultRun
	compiles *compile.Cache
	store    *resultstore.Store
	instret  atomic.Uint64

	// Simulated-only accounting: runs that actually turned a machine (store
	// hits excluded) and the wall time they took. The perf report divides
	// Instret by SimSeconds for an inst/s that a warm store cannot skew.
	simRuns  atomic.Uint64
	simNanos atomic.Int64

	// Result-store traffic at simulation granularity (baseline + Capri runs;
	// the compile cache's disk tier counts separately).
	storeHits   atomic.Uint64
	storeMisses atomic.Uint64

	// Decode-cache traffic summed over every simulation (zero when the
	// machines run the switch core). The perf report records these beside
	// inst/s so a fusion regression is visible even when wall-clock noise
	// hides it.
	decBlocks atomic.Uint64
	decHits   atomic.Uint64
	decFused  atomic.Uint64
}

// baselineRun is one benchmark's baseline simulation, executed exactly once
// no matter how many callers race for it: losers of the map race share the
// winner's once and block until the single simulation finishes.
type baselineRun struct {
	once  sync.Once
	stats machine.Stats
	err   error
}

type runKey struct {
	bench     string
	level     compile.Level
	threshold int
}

// resultRun single-flights one (benchmark, level, threshold) configuration:
// under a parallel Prefetch, racing callers share one simulation (or one
// store probe) instead of duplicating it, which keeps the harness's sim and
// store counters schedule-independent.
type resultRun struct {
	once sync.Once
	res  Result
	err  error
}

// NewHarness returns a harness at the given workload scale.
func NewHarness(scale int) *Harness {
	return &Harness{
		Scale:    scale,
		baseline: map[string]*baselineRun{},
		results:  map[runKey]*resultRun{},
		compiles: compile.NewCache(),
	}
}

// UseStore attaches a content-addressed result store (DESIGN.md §4h): runs
// whose keys are already present replay from disk instead of simulating, new
// results are published back, and the compile cache gains its persistent
// tier behind the same store. Call before the first run; pass nil to detach
// the simulation tier (the compile tier, once attached, stays).
func (h *Harness) UseStore(s *resultstore.Store) {
	h.store = s
	if s != nil {
		h.compiles.SetPersist(s, sweep.ToolchainSalt())
	}
}

// CompileCacheStats reports the harness's compile-cache traffic. Every
// compilation — result-cached figure runs, instrumented runs, racing
// Prefetch goroutines — goes through one content-addressed cache, so a full
// Fig8+Fig9 sweep compiles each distinct (program, options) pair exactly
// once.
func (h *Harness) CompileCacheStats() compile.CacheStats { return h.compiles.Stats() }

// Instret returns the total instructions simulated through this harness
// (baseline and Capri runs; cache hits do not re-count). The perf harness
// divides it by wall-clock for instructions-per-second.
func (h *Harness) Instret() uint64 { return h.instret.Load() }

// DecodeStats returns the summed decode-cache counters of every simulation:
// blocks decoded (cache misses), block entries served from the cache, and
// fused superinstructions among the decoded thunks.
func (h *Harness) DecodeStats() (blocks, hits, fused uint64) {
	return h.decBlocks.Load(), h.decHits.Load(), h.decFused.Load()
}

// SimRuns returns the number of simulations this harness actually executed —
// store hits replay results without turning a machine and do not count.
func (h *Harness) SimRuns() uint64 { return h.simRuns.Load() }

// SimSeconds returns the wall time spent inside machine.Run across all
// simulations, summed per run (not wall-clock of the sweep: parallel runs
// overlap). Instret / SimSeconds is the store-proof inst/s the perf gate
// compares.
func (h *Harness) SimSeconds() float64 {
	return float64(h.simNanos.Load()) / 1e9
}

// StoreStats reports result-store traffic at simulation granularity: probes
// that replayed a stored result and probes that fell through to a live
// simulation. Both are zero when no store is attached.
func (h *Harness) StoreStats() (hits, misses uint64) {
	return h.storeHits.Load(), h.storeMisses.Load()
}

// addSim folds one finished machine's counters and its simulation wall time
// into the harness totals.
func (h *Harness) addSim(ms machine.Stats, wall time.Duration) {
	h.instret.Add(ms.Instret)
	h.simRuns.Add(1)
	h.simNanos.Add(int64(wall))
	h.decBlocks.Add(ms.DecodeBlocks)
	h.decHits.Add(ms.DecodeHits)
	h.decFused.Add(ms.DecodeFused)
}

// config builds the machine configuration for a run. It errors instead of
// silently overriding an explicitly pinned core count: if the caller set
// h.Cores and a benchmark needs more threads, that is a configuration
// mistake the run must surface, not clobber.
func (h *Harness) config(threads, threshold int, capri bool) (machine.Config, error) {
	cfg := machine.DefaultConfig()
	cfg.Capri = capri
	cfg.RefStore = h.RefStore
	if capri {
		cfg.Threshold = threshold
	}
	if h.Cores > 0 {
		cfg.Cores = h.Cores
		if threads > cfg.Cores {
			return cfg, fmt.Errorf("figures: benchmark needs %d threads but Cores is pinned to %d", threads, h.Cores)
		}
	} else if threads > cfg.Cores {
		cfg.Cores = threads
	}
	// The synthetic working sets are scaled down relative to the paper's
	// full runs; shrink the L2/DRAM cache in proportion so the hierarchy
	// still differentiates the benchmarks.
	cfg.L2Size = 2 << 20
	cfg.DRAMSize = 16 << 20
	return cfg, nil
}

// Baseline returns the volatile-machine cycle count for a benchmark. Each
// benchmark's baseline is simulated exactly once even under concurrent
// callers (a per-benchmark once guard, not just a result cache). Safe for
// concurrent use.
func (h *Harness) Baseline(b workload.Benchmark) (uint64, error) {
	s, err := h.BaselineStats(b)
	return s.Cycles, err
}

// BaselineStats is Baseline returning the full counter snapshot — in
// particular the baseline machine's cycle-accounting ledger (Stats.CycleBy),
// which the explain decomposition subtracts from the Capri run's.
func (h *Harness) BaselineStats(b workload.Benchmark) (machine.Stats, error) {
	h.mu.Lock()
	e, ok := h.baseline[b.Name]
	if !ok {
		e = &baselineRun{}
		h.baseline[b.Name] = e
	}
	h.mu.Unlock()
	e.once.Do(func() {
		cfg, err := h.config(b.Threads, 0, false)
		if err != nil {
			e.err = fmt.Errorf("%s baseline: %w", b.Name, err)
			return
		}
		p := b.Build(h.Scale)
		var key resultstore.Key
		if h.store != nil {
			key = sweep.BaselineKey(p.Fingerprint(), cfg)
			if raw, ok := h.store.Get(key); ok {
				var ms machine.Stats
				if err := json.Unmarshal(raw, &ms); err == nil {
					h.storeHits.Add(1)
					e.stats = ms
					return
				}
			}
			h.storeMisses.Add(1)
		}
		m, err := machine.New(p, cfg)
		if err != nil {
			e.err = fmt.Errorf("%s baseline: %w", b.Name, err)
			return
		}
		start := time.Now()
		if err := m.Run(); err != nil {
			e.err = fmt.Errorf("%s baseline: %w", b.Name, err)
			return
		}
		wall := time.Since(start)
		e.stats = m.Stats()
		h.addSim(e.stats, wall)
		if h.store != nil {
			raw, err := json.Marshal(e.stats)
			if err == nil {
				h.store.Put(key, raw)
			}
		}
	})
	return e.stats, e.err
}

// Result is one Capri run's outcome.
type Result struct {
	Norm         float64 // Capri cycles / baseline cycles
	Machine      machine.Stats
	Compile      compile.Stats
	RegionInsts  float64 // dynamic average instructions per region
	RegionStores float64 // dynamic average stores (incl. ckpts) per region
}

// Run executes one benchmark under Capri at the given optimization level and
// threshold, returning normalized cycles and region statistics. Results are
// cached per (benchmark, level, threshold) behind a per-key singleflight —
// racing callers share one simulation or one store probe, never duplicate
// either — so the harness's counters are the same under any parallelism.
// Safe for concurrent use.
func (h *Harness) Run(b workload.Benchmark, level compile.Level, threshold int) (Result, error) {
	key := runKey{bench: b.Name, level: level, threshold: threshold}
	h.mu.Lock()
	e, ok := h.results[key]
	if !ok {
		e = &resultRun{}
		h.results[key] = e
	}
	h.mu.Unlock()
	e.once.Do(func() {
		e.res, e.err = h.runOnce(b, level, threshold)
	})
	return e.res, e.err
}

// storedSim is the result store's payload for one Capri simulation: the full
// machine counter snapshot plus the compile statistics (timings stripped —
// they are measurement, not result). Everything else in Result derives from
// these plus the benchmark's baseline.
type storedSim struct {
	Machine machine.Stats `json:"machine"`
	Compile compile.Stats `json:"compile"`
}

// runOnce does the work behind Run's singleflight: baseline, store probe,
// and — on a miss — compile + simulate + publish.
func (h *Harness) runOnce(b workload.Benchmark, level compile.Level, threshold int) (Result, error) {
	base, err := h.Baseline(b)
	if err != nil {
		return Result{}, err
	}
	cfg, err := h.config(b.Threads, threshold, true)
	if err != nil {
		return Result{}, fmt.Errorf("%s %s@%d: %w", b.Name, level, threshold, err)
	}
	src := b.Build(h.Scale)
	opts := compile.OptionsForLevel(level, threshold)
	var key resultstore.Key
	if h.store != nil {
		key = sweep.SimKey(src.Fingerprint(), opts, cfg)
		if raw, ok := h.store.Get(key); ok {
			var ss storedSim
			if err := json.Unmarshal(raw, &ss); err == nil {
				h.storeHits.Add(1)
				return resultFrom(ss, base), nil
			}
		}
		h.storeMisses.Add(1)
	}
	res, err := h.compiles.Compile(src, opts)
	if err != nil {
		return Result{}, fmt.Errorf("%s %s@%d: %w", b.Name, level, threshold, err)
	}
	m, err := machine.New(res.Program, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("%s %s@%d: %w", b.Name, level, threshold, err)
	}
	start := time.Now()
	if err := m.Run(); err != nil {
		return Result{}, fmt.Errorf("%s %s@%d: %w", b.Name, level, threshold, err)
	}
	wall := time.Since(start)
	ms := m.Stats()
	h.addSim(ms, wall)
	ss := storedSim{Machine: ms, Compile: res.Stats.StripTimings()}
	if h.store != nil {
		if raw, err := json.Marshal(ss); err == nil {
			h.store.Put(key, raw)
		}
	}
	return resultFrom(ss, base), nil
}

// resultFrom derives the figure-facing Result from a stored (or fresh)
// simulation payload and the benchmark's baseline cycles. Simulated and
// replayed runs go through the same derivation, which is what makes warm
// tables byte-identical to cold ones.
func resultFrom(ss storedSim, base uint64) Result {
	return Result{
		Norm:         float64(ss.Machine.Cycles) / float64(base),
		Machine:      ss.Machine,
		Compile:      ss.Compile,
		RegionInsts:  ss.Machine.AvgRegionInsts,
		RegionStores: ss.Machine.AvgRegionStores,
	}
}

// RunInstrumented executes one Capri run outside the result cache, with the
// given tracer attached and (when collect is set) histogram metrics enabled.
// It returns the finished machine so callers can inspect its metrics, stats
// and configuration — the backing for `caprisim -trace-out` / `-metrics`.
// Instrumented runs are never result-cached — the tracer makes them
// side-effecting — but their compilation still goes through the shared
// compile cache, so re-tracing a configuration never recompiles it.
func (h *Harness) RunInstrumented(b workload.Benchmark, level compile.Level, threshold int, tr machine.Tracer, collect bool) (*machine.Machine, error) {
	return h.RunTapped(b, level, threshold, tr, nil, collect)
}

// RunTapped is RunInstrumented with a provenance tap (see the audit package)
// additionally attached before the run — the backing for `caprisim -audit` /
// `-record-out`. The tap factory receives the freshly built machine (so it
// can size an auditor from m.AuditOptions()) and returns the sink to attach;
// either the factory or its result may be nil. Tap and tracer are independent.
func (h *Harness) RunTapped(b workload.Benchmark, level compile.Level, threshold int, tr machine.Tracer, tap func(*machine.Machine) audit.Sink, collect bool) (*machine.Machine, error) {
	src := b.Build(h.Scale)
	res, err := h.compiles.Compile(src, compile.OptionsForLevel(level, threshold))
	if err != nil {
		return nil, fmt.Errorf("%s %s@%d: %w", b.Name, level, threshold, err)
	}
	cfg, err := h.config(b.Threads, threshold, true)
	if err != nil {
		return nil, fmt.Errorf("%s %s@%d: %w", b.Name, level, threshold, err)
	}
	m, err := machine.New(res.Program, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s %s@%d: %w", b.Name, level, threshold, err)
	}
	if tr != nil {
		m.SetTracer(tr)
	}
	if tap != nil {
		if s := tap(m); s != nil {
			m.SetTap(s)
		}
	}
	if collect {
		m.EnableMetrics()
	}
	start := time.Now()
	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("%s %s@%d: %w", b.Name, level, threshold, err)
	}
	h.addSim(m.Stats(), time.Since(start))
	return m, nil
}

// Prefetch shards the (benchmark × level × threshold) grid across the sweep
// orchestrator (Parallelism workers; 0 = GOMAXPROCS), filling the result
// cache so the figure builders' sequential loops hit it. The reported error
// is the lowest-indexed failing unit (schedule-independent), and every unit
// runs even when one fails. When a result store is attached, the batch of
// newly simulated results is flushed into a sealed segment afterwards.
func (h *Harness) Prefetch(levels []compile.Level, thresholds []int) error {
	units := sweep.Grid(workload.All(), levels, thresholds)
	err := sweep.RunUnits(h.Parallelism, units, func(u sweep.Unit) error {
		_, err := h.Run(u.Bench, u.Level, u.Threshold)
		return err
	})
	if h.store != nil {
		if ferr := h.store.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}

// suiteOf maps a benchmark name to its suite label for geomean rows.
func addGeomeanRows(t *stats.Table, cols []string) {
	bySuite := map[workload.Suite]func(string) bool{}
	for _, s := range []workload.Suite{workload.SuiteSPEC, workload.SuiteSTAMP, workload.SuiteSplash} {
		s := s
		members := map[string]bool{}
		for _, b := range workload.BySuite(s) {
			members[b.Name] = true
		}
		bySuite[s] = func(label string) bool { return members[label] }
	}
	t.AddRule()
	for _, s := range []struct {
		label string
		suite workload.Suite
	}{
		{"cpu2017_gmean", workload.SuiteSPEC},
		{"stamp_gmean", workload.SuiteSTAMP},
		{"splash3_gmean", workload.SuiteSplash},
	} {
		var vals []float64
		for _, c := range cols {
			vals = append(vals, stats.Geomean(t.Column(c, bySuite[s.suite])))
		}
		t.AddRow(s.label, vals...)
	}
	var overall []float64
	names := map[string]bool{}
	for _, b := range workload.All() {
		names[b.Name] = true
	}
	for _, c := range cols {
		overall = append(overall, stats.Geomean(t.Column(c, func(l string) bool { return names[l] })))
	}
	t.AddRow("overall_gmean", overall...)
}

// Fig8 regenerates Figure 8: normalized execution cycles per benchmark for
// each store threshold, all compiler optimizations enabled.
func (h *Harness) Fig8(thresholds []int) (*stats.Table, error) {
	if len(thresholds) == 0 {
		thresholds = Fig8Thresholds
	}
	cols := make([]string, len(thresholds))
	for i, th := range thresholds {
		cols[i] = fmt.Sprint(th)
	}
	if err := h.Prefetch([]compile.Level{compile.LevelLICM}, thresholds); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 8: normalized execution cycles vs store threshold (lower is better)", cols...)
	for _, b := range workload.All() {
		vals := make([]float64, len(thresholds))
		for i, th := range thresholds {
			r, err := h.Run(b, compile.LevelLICM, th)
			if err != nil {
				return nil, err
			}
			vals[i] = r.Norm
		}
		t.AddRow(b.Name, vals...)
	}
	addGeomeanRows(t, cols)
	return t, nil
}

// levelCols are Figure 9–11's column names.
func levelCols() []string {
	cols := make([]string, len(compile.Levels))
	for i, l := range compile.Levels {
		cols[i] = l.String()
	}
	return cols
}

// figByLevel runs every benchmark across the cumulative optimization levels
// at the default threshold and fills a table using pick to select the
// reported metric.
func (h *Harness) figByLevel(title string, pick func(Result) float64) (*stats.Table, error) {
	cols := levelCols()
	if err := h.Prefetch(compile.Levels, []int{compile.DefaultThreshold}); err != nil {
		return nil, err
	}
	t := stats.NewTable(title, cols...)
	for _, b := range workload.All() {
		vals := make([]float64, len(compile.Levels))
		for i, l := range compile.Levels {
			r, err := h.Run(b, l, compile.DefaultThreshold)
			if err != nil {
				return nil, err
			}
			vals[i] = pick(r)
		}
		t.AddRow(b.Name, vals...)
	}
	addGeomeanRows(t, cols)
	return t, nil
}

// Fig9 regenerates Figure 9: normalized cycles under cumulative compiler
// optimizations at threshold 256.
func (h *Harness) Fig9() (*stats.Table, error) {
	return h.figByLevel(
		"Figure 9: normalized execution cycles with cumulative compiler optimizations (threshold 256)",
		func(r Result) float64 { return r.Norm })
}

// Fig10 regenerates Figure 10: average number of instructions per dynamic
// region.
func (h *Harness) Fig10() (*stats.Table, error) {
	return h.figByLevel(
		"Figure 10: average number of instructions in regions",
		func(r Result) float64 { return r.RegionInsts })
}

// Fig11 regenerates Figure 11: average number of store instructions
// (checkpoints included) per dynamic region.
func (h *Harness) Fig11() (*stats.Table, error) {
	return h.figByLevel(
		"Figure 11: average number of stores in regions (incl. checkpoints)",
		func(r Result) float64 { return r.RegionStores })
}

// NVMWrites tabulates dynamic checkpoint stores per thousand instructions
// under the cumulative optimization levels — the paper's §6.2 claim that
// checkpoint pruning and LICM "reduce NVM writes and thus are particularly
// beneficial in terms of improved power consumption and NVM endurance",
// which Figure 9's cycle bars cannot show.
func (h *Harness) NVMWrites() (*stats.Table, error) {
	return h.figByLevel(
		"Checkpoint stores per 1000 instructions (NVM write pressure; §6.2 endurance claim)",
		func(r Result) float64 {
			if r.Machine.Instret == 0 {
				return 0
			}
			return 1000 * float64(r.Machine.Ckpts) / float64(r.Machine.Instret)
		})
}

// Headline computes the §6.2 headline overheads: per-suite geomean slowdown
// at threshold 256 with all optimizations (paper: 0%, 12.4%, 9.1%; overall
// 5.1%).
type Headline struct {
	SPEC, STAMP, Splash, Overall float64
}

// Headline runs the default configuration and reports suite overheads.
func (h *Harness) Headline() (Headline, error) {
	var out Headline
	per := map[workload.Suite][]float64{}
	var all []float64
	for _, b := range workload.All() {
		r, err := h.Run(b, compile.LevelLICM, compile.DefaultThreshold)
		if err != nil {
			return out, err
		}
		per[b.Suite] = append(per[b.Suite], r.Norm)
		all = append(all, r.Norm)
	}
	out.SPEC = stats.Geomean(per[workload.SuiteSPEC]) - 1
	out.STAMP = stats.Geomean(per[workload.SuiteSTAMP]) - 1
	out.Splash = stats.Geomean(per[workload.SuiteSplash]) - 1
	out.Overall = stats.Geomean(all) - 1
	return out, nil
}
