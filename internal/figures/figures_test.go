package figures

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"capri/internal/compile"
	"capri/internal/resultstore"
	"capri/internal/stats"
	"capri/internal/workload"
)

// quick grabs a small-scale harness; figure tests assert trends, not
// absolute numbers, so scale 1 with the default machine is used throughout
// but per-test subsets keep runtime reasonable.
func quick() *Harness { return NewHarness(1) }

func TestBaselineCaching(t *testing.T) {
	h := quick()
	b, err := workload.ByName("ssca2")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := h.Baseline(b)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := h.Baseline(b)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 || c1 == 0 {
		t.Errorf("baseline cache broken: %d vs %d", c1, c2)
	}
}

// TestBaselineRunsExactlyOnceUnderRace: many goroutines racing for a cold
// baseline must trigger exactly one simulation. The seed's check-then-run
// cache let every racer that missed simulate the baseline redundantly; the
// per-benchmark once guard closes that. Instret counts every simulated
// instruction, so a double run is visible as a doubled count.
func TestBaselineRunsExactlyOnceUnderRace(t *testing.T) {
	b, err := workload.ByName("ssca2")
	if err != nil {
		t.Fatal(err)
	}

	// Reference: one sequential baseline's instruction count.
	hseq := quick()
	if _, err := hseq.Baseline(b); err != nil {
		t.Fatal(err)
	}
	want := hseq.Instret()
	if want == 0 {
		t.Fatal("baseline simulated nothing")
	}

	h := quick()
	const racers = 8
	cycles := make([]uint64, racers)
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cycles[i], errs[i] = h.Baseline(b)
		}()
	}
	wg.Wait()
	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if cycles[i] != cycles[0] {
			t.Errorf("racer %d saw cycles %d, racer 0 saw %d", i, cycles[i], cycles[0])
		}
	}
	if got := h.Instret(); got != want {
		t.Errorf("racing baseline simulated %d instructions, want exactly one run's %d", got, want)
	}
}

// TestPinnedCoresErrors: an explicitly pinned core count must never be
// silently raised — a benchmark needing more threads fails its run with a
// diagnostic instead (the seed silently overrode Cores, so sweeps that meant
// to model a small machine quietly simulated a bigger one).
func TestPinnedCoresErrors(t *testing.T) {
	h := quick()
	h.Cores = 1
	mt, err := firstMultithreaded()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(mt, compile.LevelLICM, 256); err == nil {
		t.Fatalf("%s (%d threads) ran on a harness pinned to 1 core", mt.Name, mt.Threads)
	} else if !strings.Contains(err.Error(), "pinned") {
		t.Errorf("error %q does not mention the pinned core count", err)
	}
	if _, err := h.Baseline(mt); err == nil {
		t.Fatalf("%s baseline ran on a harness pinned to 1 core", mt.Name)
	}

	// Unpinned harnesses still auto-size to the benchmark.
	if _, err := quick().Baseline(mt); err != nil {
		t.Errorf("unpinned harness refused %s: %v", mt.Name, err)
	}
}

func firstMultithreaded() (workload.Benchmark, error) {
	for _, b := range workload.All() {
		if b.Threads > 1 {
			return b, nil
		}
	}
	return workload.Benchmark{}, fmt.Errorf("no multithreaded benchmark registered")
}

func TestRunProducesSaneNorm(t *testing.T) {
	h := quick()
	b, _ := workload.ByName("genome")
	r, err := h.Run(b, compile.LevelLICM, 256)
	if err != nil {
		t.Fatal(err)
	}
	if r.Norm < 0.95 || r.Norm > 2.5 {
		t.Errorf("genome norm = %.3f, outside sanity band", r.Norm)
	}
	if r.RegionInsts <= 0 || r.RegionStores <= 0 {
		t.Errorf("region stats missing: %+v", r)
	}
}

func TestThresholdTrendPerBenchmark(t *testing.T) {
	// Figure 8's core claim: larger thresholds never hurt (monotone
	// non-increasing overhead, small tolerance for simulation noise).
	h := quick()
	for _, name := range []string{"508.namd_r", "ssca2", "volrend"} {
		b, _ := workload.ByName(name)
		prev := 1e9
		for _, th := range []int{32, 256} {
			r, err := h.Run(b, compile.LevelLICM, th)
			if err != nil {
				t.Fatal(err)
			}
			if r.Norm > prev*1.02 {
				t.Errorf("%s: overhead grew from threshold increase: %.3f -> %.3f", name, prev, r.Norm)
			}
			prev = r.Norm
		}
	}
}

func TestUnrollingHelpsShortLoopBenchmarks(t *testing.T) {
	// Figure 9's headline: speculative unrolling gives large gains exactly
	// for the short-loop benchmarks the paper names.
	h := quick()
	for _, name := range []string{"508.namd_r", "ssca2", "volrend", "water-spatial"} {
		b, _ := workload.ByName(name)
		ck, err := h.Run(b, compile.LevelCkpt, 256)
		if err != nil {
			t.Fatal(err)
		}
		un, err := h.Run(b, compile.LevelUnroll, 256)
		if err != nil {
			t.Fatal(err)
		}
		if un.Norm >= ck.Norm {
			t.Errorf("%s: unrolling did not help (%.3f -> %.3f)", name, ck.Norm, un.Norm)
		}
		// Overhead should drop by a meaningful factor for these benchmarks.
		if (ck.Norm-1) > 0.05 && (un.Norm-1) > 0.8*(ck.Norm-1) {
			t.Errorf("%s: unrolling gain too small (%.3f -> %.3f)", name, ck.Norm, un.Norm)
		}
	}
}

func TestUnrollingLengthensRegions(t *testing.T) {
	// Figure 10: region instruction counts grow with unrolling.
	h := quick()
	b, _ := workload.ByName("water-nsquared")
	ck, err := h.Run(b, compile.LevelCkpt, 256)
	if err != nil {
		t.Fatal(err)
	}
	un, err := h.Run(b, compile.LevelUnroll, 256)
	if err != nil {
		t.Fatal(err)
	}
	if un.RegionInsts <= ck.RegionInsts*1.5 {
		t.Errorf("region length: ckpt %.1f -> unroll %.1f, want >= 1.5x growth",
			ck.RegionInsts, un.RegionInsts)
	}
}

func TestPruningReducesCheckpoints(t *testing.T) {
	h := quick()
	b, _ := workload.ByName("genome")
	un, err := h.Run(b, compile.LevelUnroll, 256)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := h.Run(b, compile.LevelPrune, 256)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Machine.Ckpts >= un.Machine.Ckpts {
		t.Errorf("pruning did not reduce dynamic checkpoints: %d -> %d",
			un.Machine.Ckpts, pr.Machine.Ckpts)
	}
	if pr.Compile.CkptsPruned == 0 {
		t.Error("no checkpoints statically pruned")
	}
}

func TestFig8SmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	h := quick()
	tbl, err := h.Fig8([]int{64, 256})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 21+4 {
		t.Errorf("rows = %d, want 25 (21 benchmarks + 4 geomeans)", tbl.Rows())
	}
	s := tbl.String()
	for _, want := range []string{"505.mcf_r", "cpu2017_gmean", "overall_gmean", "Figure 8"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig8 table missing %q", want)
		}
	}
	// Monotonicity of the overall geomean.
	g64, _ := tbl.Value("overall_gmean", "64")
	g256, _ := tbl.Value("overall_gmean", "256")
	if g256 > g64*1.01 {
		t.Errorf("overall gmean grew with threshold: %.3f -> %.3f", g64, g256)
	}
	if g256 < 1.0 || g256 > 1.25 {
		t.Errorf("overall gmean at 256 = %.3f, want headline-compatible band", g256)
	}
}

func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("headline sweep")
	}
	h := quick()
	hd, err := h.Headline()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: SPEC 0%, STAMP 12.4%, Splash 9.1%, overall 5.1%. Our shape
	// requirement: SPEC lowest, STAMP highest, everything within a sane band.
	if !(hd.SPEC < hd.STAMP) {
		t.Errorf("suite ordering broken: SPEC %.3f !< STAMP %.3f", hd.SPEC, hd.STAMP)
	}
	if !(hd.Splash < hd.STAMP) {
		t.Errorf("suite ordering broken: Splash %.3f !< STAMP %.3f", hd.Splash, hd.STAMP)
	}
	for name, v := range map[string]float64{
		"SPEC": hd.SPEC, "STAMP": hd.STAMP, "Splash": hd.Splash, "Overall": hd.Overall,
	} {
		if v < -0.02 || v > 0.30 {
			t.Errorf("%s overhead = %.3f, outside plausible band", name, v)
		}
	}
}

func TestGeomeanHelper(t *testing.T) {
	if g := stats.Geomean([]float64{2, 8}); g != 4 {
		t.Errorf("geomean(2,8) = %v", g)
	}
	if g := stats.Geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
	if g := stats.Geomean([]float64{-1, 0, 4}); g != 4 {
		t.Errorf("geomean skips non-positive: %v", g)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := stats.NewTable("T", "a", "b")
	tbl.AddRow("x", 1, 2)
	tbl.AddRule()
	tbl.AddRow("gmean", 1.5, 2.5)
	s := tbl.String()
	for _, want := range []string{"T", "x", "gmean", "1.500"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	if v, ok := tbl.Value("x", "b"); !ok || v != 2 {
		t.Errorf("Value(x,b) = %v,%v", v, ok)
	}
	if _, ok := tbl.Value("x", "zzz"); ok {
		t.Error("unknown column found")
	}
	col := tbl.Column("a", func(l string) bool { return l == "x" })
	if len(col) != 1 || col[0] != 1 {
		t.Errorf("Column = %v", col)
	}
}

func TestPrefetchMatchesSequential(t *testing.T) {
	// Parallel prefetch must produce bitwise-identical results to direct
	// sequential runs (simulations are deterministic and independent).
	h1 := NewHarness(1)
	h1.Parallelism = 4
	if err := h1.Prefetch([]compile.Level{compile.LevelLICM}, []int{64}); err != nil {
		t.Fatal(err)
	}
	h2 := NewHarness(1)
	h2.Parallelism = 1
	for _, b := range workload.BySuite(workload.SuiteSTAMP) {
		r1, err := h1.Run(b, compile.LevelLICM, 64)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := h2.Run(b, compile.LevelLICM, 64)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Norm != r2.Norm || r1.Machine.Cycles != r2.Machine.Cycles {
			t.Errorf("%s: parallel %v vs sequential %v", b.Name, r1.Norm, r2.Norm)
		}
	}
}

func TestRunCacheHits(t *testing.T) {
	h := quick()
	b, _ := workload.ByName("radix")
	r1, err := h.Run(b, compile.LevelLICM, 256)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Run(b, compile.LevelLICM, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("cached result differs")
	}
}

func TestNVMWritesTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	h := quick()
	tbl, err := h.NVMWrites()
	if err != nil {
		t.Fatal(err)
	}
	// The region level has no checkpoints at all; +ckpt must be the peak.
	rg, _ := tbl.Value("overall_gmean", "region")
	ck, _ := tbl.Value("overall_gmean", "+ckpt")
	pr, _ := tbl.Value("overall_gmean", "+pruning")
	if rg != 0 {
		t.Errorf("region level ckpt rate = %v, want 0", rg)
	}
	if !(ck > pr) {
		t.Errorf("ckpt rate not reduced by later levels: %v -> %v", ck, pr)
	}
}

func TestSweepCompilesEachConfigurationOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	// A fresh Fig8+Fig9 sweep must compile each distinct
	// (benchmark, level, threshold) exactly once: Fig8 takes N benchmarks x
	// 2 thresholds at +licm, Fig9 adds N x 5 levels at threshold 256, and
	// the (+licm, 256) column is shared -- 2N + 5N - N = 6N distinct
	// compilations, no matter how the prefetch goroutines race.
	h := NewHarness(1)
	if _, err := h.Fig8([]int{64, 256}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Fig9(); err != nil {
		t.Fatal(err)
	}
	nBench := len(workload.All())
	want := int64(nBench*2 + nBench*5 - nBench)
	s := h.CompileCacheStats()
	if s.Misses != want {
		t.Errorf("sweep compiled %d configurations, want %d", s.Misses, want)
	}
	if s.Hits != 0 {
		t.Errorf("result-cached runs leaked %d compiles into the compile cache", s.Hits)
	}

	// An instrumented re-run of a swept configuration is a pure cache hit.
	b, err := workload.ByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.RunInstrumented(b, compile.LevelLICM, 256, nil, false); err != nil {
		t.Fatal(err)
	}
	s2 := h.CompileCacheStats()
	if s2.Misses != want || s2.Hits != 1 {
		t.Errorf("instrumented re-run: misses %d hits %d, want %d/1", s2.Misses, s2.Hits, want)
	}
}

// TestStoreWarmRunIsByteIdenticalAndSimFree is the package-level version of
// the `capribench -sweepcheck` contract: a harness over a warm result store
// reproduces the cold harness's tables exactly while simulating nothing.
func TestStoreWarmRunIsByteIdenticalAndSimFree(t *testing.T) {
	dir := t.TempDir()
	open := func() *resultstore.Store {
		s, err := resultstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	run := func(s *resultstore.Store, jobs int) (string, *Harness) {
		h := NewHarness(1)
		h.Parallelism = jobs
		h.UseStore(s)
		tbl, err := h.Fig8([]int{64, 256})
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String(), h
	}

	sCold := open()
	cold, hCold := run(sCold, 4)
	if hCold.SimRuns() == 0 {
		t.Fatal("cold run simulated nothing")
	}
	if hits, _ := hCold.StoreStats(); hits != 0 {
		t.Fatalf("cold run hit the empty store %d times", hits)
	}
	if err := sCold.Close(); err != nil {
		t.Fatal(err)
	}

	sWarm := open()
	defer sWarm.Close()
	warm, hWarm := run(sWarm, 4)
	if warm != cold {
		t.Errorf("warm table differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	if n := hWarm.SimRuns(); n != 0 {
		t.Errorf("warm run simulated %d times, want 0", n)
	}
	if hits, misses := hWarm.StoreStats(); misses != 0 || hits == 0 {
		t.Errorf("warm store traffic: %d hits, %d misses", hits, misses)
	}
	if st := hWarm.CompileCacheStats(); st.Misses != 0 {
		t.Errorf("warm run compiled %d times, want 0", st.Misses)
	}

	// And a storeless parallel harness agrees with the store-backed one:
	// the store changes where results come from, never what they are.
	bare, _ := run2sequential(t)
	if bare != cold {
		t.Errorf("store-backed table differs from storeless sequential:\n%s\nvs\n%s", cold, bare)
	}
}

// run2sequential renders the same Fig8 subset with no store and no
// parallelism.
func run2sequential(t *testing.T) (string, *Harness) {
	h := NewHarness(1)
	h.Parallelism = 1
	tbl, err := h.Fig8([]int{64, 256})
	if err != nil {
		t.Fatal(err)
	}
	return tbl.String(), h
}
