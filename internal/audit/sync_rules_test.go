package audit

import "testing"

// Synthetic-stream tests for the cross-core ordering rules backing the
// multi-core fault campaign: a synchronizing store commits atomically with
// its own region (sync-unordered-commit), same-word atomics persist in
// execution order (sync-persist-order), concurrent per-core drains respect
// the per-line version chain (line-version-chain), and recovery's rollback
// never destroys another core's committed data (undo-clobbers-committed).
// Each mutation corresponds to one machine.Mutations flag the fault
// package's mutation campaigns drive end-to-end.

// syncLife is one core's legal synchronizing store: issue, sync, immediate
// commit (the sync seals its own region).
func syncLife(core int32, seq, region uint64, cycle uint64) []Event {
	return []Event{
		{Kind: EvStore, Core: core, Cycle: cycle, Addr: testAddr, Seq: seq, Region: region, Val: seq * 10, Val2: 0},
		{Kind: EvSync, Core: core, Cycle: cycle, Addr: testAddr, Seq: seq, Region: region, Val: seq * 10, Val2: 0},
		{Kind: EvCommit, Core: core, Cycle: cycle + 1, Region: region},
	}
}

// TestAuditorSyncLegal: two cores' atomics to one word, each sealing its own
// region and draining in execution order, audit clean.
func TestAuditorSyncLegal(t *testing.T) {
	var events []Event
	events = append(events, syncLife(0, 1, 1, 10)...)
	events = append(events, syncLife(1, 2, 1, 20)...)
	events = append(events,
		Event{Kind: EvDrain, Core: 0, Cycle: 80, Region: 1, Val: testAddr, Val2: testAddr, Count: 1},
		Event{Kind: EvDrainWrite, Core: 0, Cycle: 80, Addr: testAddr, Seq: 1, Region: 1, Val: 10, Flags: FlagApplied},
		Event{Kind: EvDrain, Core: 1, Cycle: 90, Region: 1, Val: testAddr, Val2: testAddr, Count: 1},
		Event{Kind: EvDrainWrite, Core: 1, Cycle: 90, Addr: testAddr, Seq: 2, Region: 1, Val: 20, Flags: FlagApplied},
	)
	_, aud := feed(t, events)
	if err := aud.Err(); err != nil {
		t.Fatalf("legal sync stream flagged: %v", err)
	}
}

// TestMutationSyncNoCommit: machine.Mutations.SyncNoCommit — the sync's
// sealing commit is dropped, so the core's next store lands in a region
// whose sync is still rollback-able while other cores can observe it.
func TestMutationSyncNoCommit(t *testing.T) {
	events := []Event{
		{Kind: EvStore, Core: 0, Cycle: 10, Addr: testAddr, Seq: 1, Region: 1, Val: 10, Val2: 0},
		{Kind: EvSync, Core: 0, Cycle: 10, Addr: testAddr, Seq: 1, Region: 1, Val: 10, Val2: 0},
		// MUTATION: no EvCommit for region 1 — execution just continues.
		{Kind: EvStore, Core: 0, Cycle: 20, Addr: testAddr + 8, Seq: 2, Region: 1, Val: 5, Val2: 0},
	}
	_, aud := feed(t, events)
	v := requireViolation(t, aud, "sync-unordered-commit")
	if v.Event.Kind != EvStore {
		t.Fatalf("violation anchored to %s, want %s", v.Event.Kind, EvStore)
	}
}

// TestMutationSyncUnknownStore: an EvSync whose data entry never issued.
func TestMutationSyncUnknownStore(t *testing.T) {
	events := []Event{
		{Kind: EvSync, Core: 0, Cycle: 10, Addr: testAddr, Seq: 1, Region: 1, Val: 10},
	}
	_, aud := feed(t, events)
	wantRule(t, aud, "sync-unknown-store")
}

// TestMutationDrainNoGuard: machine.Mutations.DrainNoGuard — core 0's slow
// drain bypasses the sequence guard and clobbers core 1's newer committed
// atomic. Both the cross-core version-chain rule and the sync persist-order
// rule must fire (the guard-mismatch rule fires too; these localize it).
func TestMutationDrainNoGuard(t *testing.T) {
	var events []Event
	events = append(events, syncLife(0, 1, 1, 10)...)
	events = append(events, syncLife(1, 2, 1, 20)...)
	events = append(events,
		// Core 1's drain wins the race and persists the newer atomic first.
		Event{Kind: EvDrain, Core: 1, Cycle: 80, Region: 1, Val: testAddr, Val2: testAddr, Count: 1},
		Event{Kind: EvDrainWrite, Core: 1, Cycle: 80, Addr: testAddr, Seq: 2, Region: 1, Val: 20, Flags: FlagApplied},
		// MUTATION: core 0's stale drain applies anyway (guard bypassed).
		Event{Kind: EvDrain, Core: 0, Cycle: 90, Region: 1, Val: testAddr, Val2: testAddr, Count: 1},
		Event{Kind: EvDrainWrite, Core: 0, Cycle: 90, Addr: testAddr, Seq: 1, Region: 1, Val: 10, Flags: FlagApplied},
	)
	_, aud := feed(t, events)
	wantRule(t, aud, "sync-persist-order")
	wantRule(t, aud, "line-version-chain")
	wantRule(t, aud, "seq-guard-mismatch")
}

// TestMutationReplayNoGuard: machine.Mutations.ReplayNoGuard — recovery's
// redo replay bypasses the sequence guard, so replaying core 0's stream
// after core 1's rewinds the word to the older atomic: replay order became
// visible in NVM and recovery no longer commutes.
func TestMutationReplayNoGuard(t *testing.T) {
	var events []Event
	events = append(events, syncLife(0, 1, 1, 10)...)
	events = append(events, syncLife(1, 2, 1, 20)...)
	events = append(events,
		Event{Kind: EvCrash, Cycle: 50},
		// Recovery replays core 1's committed region first...
		Event{Kind: EvRecoveryRedoWrite, Core: 1, Addr: testAddr, Seq: 2, Region: 1, Val: 20, Flags: FlagApplied},
		Event{Kind: EvRecoveryRedo, Core: 1, Region: 1},
		// MUTATION: ...then core 0's stale redo applies over it unguarded.
		Event{Kind: EvRecoveryRedoWrite, Core: 0, Addr: testAddr, Seq: 1, Region: 1, Val: 10, Flags: FlagApplied},
		Event{Kind: EvRecoveryRedo, Core: 0, Region: 1},
	)
	_, aud := feed(t, events)
	wantRule(t, aud, "sync-persist-order")
	wantRule(t, aud, "line-version-chain")
}

// TestMutationUndoClobbersCommitted: with the sync's commit dropped, core
// 0's atomic stays uncommitted at the crash while core 1's later committed
// atomic to the same word already drained. Recovery's rollback of core 0's
// store then destroys core 1's committed NVM version.
func TestMutationUndoClobbersCommitted(t *testing.T) {
	events := []Event{
		{Kind: EvStore, Core: 0, Cycle: 10, Addr: testAddr, Seq: 1, Region: 1, Val: 10, Val2: 3},
		{Kind: EvSync, Core: 0, Cycle: 10, Addr: testAddr, Seq: 1, Region: 1, Val: 10, Val2: 3},
		// MUTATION: core 0's sealing commit is dropped; core 1's later atomic
		// to the word commits and drains normally.
		{Kind: EvStore, Core: 1, Cycle: 20, Addr: testAddr, Seq: 2, Region: 1, Val: 20, Val2: 10},
		{Kind: EvSync, Core: 1, Cycle: 20, Addr: testAddr, Seq: 2, Region: 1, Val: 20, Val2: 10},
		{Kind: EvCommit, Core: 1, Cycle: 21, Region: 1},
		{Kind: EvDrain, Core: 1, Cycle: 60, Region: 1, Val: testAddr, Val2: testAddr, Count: 1},
		{Kind: EvDrainWrite, Core: 1, Cycle: 60, Addr: testAddr, Seq: 2, Region: 1, Val: 20, Flags: FlagApplied},
		{Kind: EvCrash, Cycle: 80},
		// Recovery rolls back core 0's uncommitted atomic — over committed data.
		{Kind: EvRecoveryUndo, Core: 0, Addr: testAddr, Seq: 1, Val: 3, Flags: FlagApplied},
	}
	_, aud := feed(t, events)
	v := requireViolation(t, aud, "undo-clobbers-committed")
	if v.Event.Kind != EvRecoveryUndo {
		t.Fatalf("violation anchored to %s, want %s", v.Event.Kind, EvRecoveryUndo)
	}
}
