package audit

import "testing"

// Synthetic-stream tests for the fault model's legality rules (DESIGN.md
// §4f): torn writes may only happen at a power failure, may only revert
// words the torn write still owns (backward in version order), a torn drain
// prefix must belong to the committed-but-undrained region, and a nested
// crash is legal only while a recovery is in progress.

func wantRule(t *testing.T, aud *Auditor, rule string) {
	t.Helper()
	for _, v := range aud.Violations() {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("want %s violation, got %v", rule, aud.Violations())
}

// TestAuditorTornWritebackLegal: a word the torn write still owns may revert
// to its pre-writeback version at a power failure.
func TestAuditorTornWritebackLegal(t *testing.T) {
	events := []Event{
		{Kind: EvWritebackWord, Core: 0, Cycle: 10, Addr: testAddr, Seq: 4, Val: 9, Flags: FlagApplied},
		{Kind: EvCrash, Cycle: 40},
		{Kind: EvTornWriteback, Core: -1, Cycle: 40, Addr: testAddr, Seq: 0, Val: 0, Val2: 9, Flags: FlagApplied},
	}
	_, aud := feed(t, events)
	if err := aud.Err(); err != nil {
		t.Fatalf("legal tear flagged: %v", err)
	}
}

// TestAuditorTornOutsideCrash: tearing with no power failure in progress is
// illegal — power failure is the only event that interrupts a line write.
func TestAuditorTornOutsideCrash(t *testing.T) {
	events := []Event{
		{Kind: EvWritebackWord, Core: 0, Cycle: 10, Addr: testAddr, Seq: 4, Val: 9, Flags: FlagApplied},
		{Kind: EvTornWriteback, Core: -1, Cycle: 20, Addr: testAddr, Seq: 0, Val: 0, Val2: 9, Flags: FlagApplied},
	}
	_, aud := feed(t, events)
	wantRule(t, aud, "torn-outside-crash")
}

// TestAuditorTornOwnership: a tear that reverts a word some later write
// installed destroys data the torn write no longer owns.
func TestAuditorTornOwnership(t *testing.T) {
	events := []Event{
		{Kind: EvWritebackWord, Core: 0, Cycle: 10, Addr: testAddr, Seq: 4, Val: 9, Flags: FlagApplied},
		{Kind: EvCrash, Cycle: 40},
		// Val2 claims the torn write installed 7, but the shadow holds 9.
		{Kind: EvTornWriteback, Core: -1, Cycle: 40, Addr: testAddr, Seq: 0, Val: 0, Val2: 7, Flags: FlagApplied},
	}
	_, aud := feed(t, events)
	wantRule(t, aud, "torn-ownership")
}

// TestAuditorTornForward: a tear may only move a word backward in version
// order — "restoring" a future version is not a torn write.
func TestAuditorTornForward(t *testing.T) {
	events := []Event{
		{Kind: EvWritebackWord, Core: 0, Cycle: 10, Addr: testAddr, Seq: 4, Val: 9, Flags: FlagApplied},
		{Kind: EvCrash, Cycle: 40},
		{Kind: EvTornWriteback, Core: -1, Cycle: 40, Addr: testAddr, Seq: 10, Val: 5, Val2: 9, Flags: FlagApplied},
	}
	_, aud := feed(t, events)
	wantRule(t, aud, "torn-forward")
}

// TestAuditorTornDrainLegal: a pre-applied prefix of the committed-but-
// undrained region's phase-2 drain is the legal torn-drain shape.
func TestAuditorTornDrainLegal(t *testing.T) {
	events := []Event{
		{Kind: EvStore, Core: 0, Cycle: 10, Addr: testAddr, Seq: 1, Region: 1, Val: 7},
		{Kind: EvCommit, Core: 0, Cycle: 12, Region: 1},
		{Kind: EvCrash, Cycle: 40},
		{Kind: EvTornDrainWrite, Core: 0, Cycle: 40, Addr: testAddr, Seq: 1, Region: 1, Val: 7, Flags: FlagApplied},
	}
	_, aud := feed(t, events)
	if err := aud.Err(); err != nil {
		t.Fatalf("legal torn drain flagged: %v", err)
	}
}

// TestAuditorTornDrainUncommitted: a torn drain can never push redo data of
// a region that had not committed — an uncommitted region has no booked
// drain to tear.
func TestAuditorTornDrainUncommitted(t *testing.T) {
	events := []Event{
		{Kind: EvStore, Core: 0, Cycle: 10, Addr: testAddr, Seq: 1, Region: 2, Val: 7},
		{Kind: EvCrash, Cycle: 40},
		{Kind: EvTornDrainWrite, Core: 0, Cycle: 40, Addr: testAddr, Seq: 1, Region: 2, Val: 7, Flags: FlagApplied},
	}
	_, aud := feed(t, events)
	wantRule(t, aud, "torn-uncommitted-region")
}

// TestAuditorTornDrainAlreadyDrained: a region that completed phase 2 before
// the crash has no drain left in flight to tear.
func TestAuditorTornDrainAlreadyDrained(t *testing.T) {
	events := []Event{
		{Kind: EvStore, Core: 0, Cycle: 10, Addr: testAddr, Seq: 1, Region: 1, Val: 7},
		{Kind: EvCommit, Core: 0, Cycle: 12, Region: 1},
		{Kind: EvLaunch, Core: 0, Cycle: 12, Addr: testAddr, Seq: 1, Val: 12},
		{Kind: EvLaunch, Core: 0, Cycle: 20, Region: 1, Val: 20, Flags: FlagBoundary},
		{Kind: EvBackArrive, Core: 0, Cycle: 52, Addr: testAddr, Seq: 1, Val: 52, Flags: FlagValid},
		{Kind: EvBackArrive, Core: 0, Cycle: 60, Region: 1, Val: 60, Flags: FlagBoundary},
		{Kind: EvDrain, Core: 0, Cycle: 76, Region: 1, Val: testAddr, Val2: testAddr, Count: 1},
		{Kind: EvDrainWrite, Core: 0, Cycle: 76, Addr: testAddr, Seq: 1, Region: 1, Val: 7, Flags: FlagApplied},
		{Kind: EvCrash, Cycle: 80},
		{Kind: EvTornDrainWrite, Core: 0, Cycle: 80, Addr: testAddr, Seq: 1, Region: 1, Val: 7},
	}
	_, aud := feed(t, events)
	wantRule(t, aud, "torn-drained-region")
}

// TestAuditorNestedCrashOutsideRecovery: a crash flagged nested with no
// recovery in progress is a provenance bug, not a legal fault.
func TestAuditorNestedCrashOutsideRecovery(t *testing.T) {
	_, aud := feed(t, []Event{
		{Kind: EvCrash, Cycle: 10, Flags: FlagNested},
	})
	wantRule(t, aud, "nested-crash-outside-recovery")
}

// TestAuditorNestedCrashRestartsReplay: a nested crash mid-recovery resets
// the replay watermarks (the restarted protocol replays the streams from the
// top) while the crash watermarks stand — the restarted replay's redo writes
// are then judged as idempotent re-applications, not ordering violations.
func TestAuditorNestedCrashRestartsReplay(t *testing.T) {
	events := []Event{
		{Kind: EvStore, Core: 0, Cycle: 10, Addr: testAddr, Seq: 1, Region: 1, Val: 7},
		{Kind: EvCommit, Core: 0, Cycle: 12, Region: 1},
		{Kind: EvCrash, Cycle: 40},
		// First recovery attempt applies the redo, then power fails again.
		{Kind: EvRecoveryRedoWrite, Core: 0, Addr: testAddr, Seq: 1, Region: 1, Val: 7, Flags: FlagApplied},
		{Kind: EvCrash, Cycle: 41, Flags: FlagNested},
		// The restarted recovery replays from the top: the sequence guard
		// drops the already-applied write, the marker folds, recovery ends.
		{Kind: EvRecoveryRedoWrite, Core: 0, Addr: testAddr, Seq: 1, Region: 1, Val: 7},
		{Kind: EvRecoveryRedo, Core: 0, Region: 1},
		{Kind: EvRecoveryDone, Count: 1},
	}
	_, aud := feed(t, events)
	if err := aud.Err(); err != nil {
		t.Fatalf("legal interrupted-recovery stream flagged: %v", err)
	}
}
