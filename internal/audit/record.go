package audit

import (
	"encoding/json"
	"fmt"
	"os"
)

// RecordSchema identifies the run-record JSON format.
const RecordSchema = "capri/run-record/v1"

// RecordEvent is the JSON form of one Event. Kinds and flags serialize as
// their stable wire names so records stay readable and diffable.
type RecordEvent struct {
	Kind   string `json:"k"`
	Flags  string `json:"f,omitempty"`
	Core   int32  `json:"core"`
	Cycle  uint64 `json:"cycle"`
	Addr   uint64 `json:"addr,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
	Region uint64 `json:"region,omitempty"`
	Val    uint64 `json:"val,omitempty"`
	Val2   uint64 `json:"val2,omitempty"`
	Count  uint32 `json:"count,omitempty"`
}

// ToRecordEvent converts an Event to its JSON form.
func ToRecordEvent(e Event) RecordEvent {
	return RecordEvent{
		Kind: e.Kind.String(), Flags: e.Flags.String(),
		Core: e.Core, Cycle: e.Cycle, Addr: e.Addr, Seq: e.Seq,
		Region: e.Region, Val: e.Val, Val2: e.Val2, Count: e.Count,
	}
}

// Event decodes the JSON form back to an Event; ok is false for an unknown
// kind name.
func (re RecordEvent) Event() (Event, bool) {
	k, ok := KindFromString(re.Kind)
	if !ok {
		return Event{}, false
	}
	return Event{
		Kind: k, Flags: FlagsFromString(re.Flags),
		Core: re.Core, Cycle: re.Cycle, Addr: re.Addr, Seq: re.Seq,
		Region: re.Region, Val: re.Val, Val2: re.Val2, Count: re.Count,
	}, true
}

// AuditSummary is the auditor's verdict embedded in a run record.
type AuditSummary struct {
	Enabled     bool   `json:"enabled"`
	Events      uint64 `json:"events"`
	Violations  uint64 `json:"violations"`
	FirstRule   string `json:"first_rule,omitempty"`
	FirstDetail string `json:"first_detail,omitempty"`
}

// RunRecord is the self-describing record of one simulated run: the schema
// tag, the workload identity (name + program fingerprint), the machine
// configuration and final statistics (opaque JSON, so this leaf package
// needs no machine types), the auditor's verdict, and the flight recorder's
// retained event tail plus a digest over the *complete* event stream.
type RunRecord struct {
	Schema      string          `json:"schema"`
	Name        string          `json:"name,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Config      json.RawMessage `json:"config,omitempty"`
	Stats       json.RawMessage `json:"stats,omitempty"`
	Audit       *AuditSummary   `json:"audit,omitempty"`
	// Faults is the injected fault plan (capri/fault-plan/v1 JSON) when the
	// run was a fault-campaign trial — opaque here so this leaf package
	// needs no fault types; capriinspect renders it and diff treats it as
	// part of the run's identity.
	Faults json.RawMessage `json:"faults,omitempty"`
	// Metrics is the run's occupancy/latency histogram set
	// (machine.Metrics JSON) when the run collected them — opaque here
	// like Config/Stats; capriinspect summary derives its percentile
	// report from it. Set with SetMetrics.
	Metrics     json.RawMessage `json:"metrics,omitempty"`
	EventsTotal uint64          `json:"events_total"`
	EventsKept  int             `json:"events_kept"`
	Dropped     uint64          `json:"events_dropped"`
	Digest      string          `json:"digest"`
	Events      []RecordEvent   `json:"events,omitempty"`
}

// NewRunRecord assembles a run record from a flight recorder and an
// optional auditor. Callers fill Name/Fingerprint/Config/Stats.
func NewRunRecord(rec *FlightRecorder, aud *Auditor) *RunRecord {
	events := rec.Events()
	r := &RunRecord{
		Schema:      RecordSchema,
		EventsTotal: rec.Total(),
		EventsKept:  len(events),
		Dropped:     rec.Dropped(),
		Digest:      fmt.Sprintf("%x", rec.Digest()),
		Events:      make([]RecordEvent, 0, len(events)),
	}
	for _, e := range events {
		r.Events = append(r.Events, ToRecordEvent(e))
	}
	if aud != nil {
		s := &AuditSummary{
			Enabled:    true,
			Events:     aud.EventsAudited(),
			Violations: aud.ViolationCount(),
		}
		if vs := aud.Violations(); len(vs) > 0 {
			s.FirstRule = vs[0].Rule
			s.FirstDetail = vs[0].Detail
		}
		r.Audit = s
	}
	return r
}

// NewRunRecordFull is NewRunRecord plus the workload identity and the opaque
// config/stats payloads (any JSON-marshalable values — this leaf package
// never sees the machine types).
func NewRunRecordFull(rec *FlightRecorder, aud *Auditor, name, fingerprint string, config, stats any) (*RunRecord, error) {
	r := NewRunRecord(rec, aud)
	r.Name = name
	r.Fingerprint = fingerprint
	if config != nil {
		b, err := json.Marshal(config)
		if err != nil {
			return nil, fmt.Errorf("run record config: %w", err)
		}
		r.Config = b
	}
	if stats != nil {
		b, err := json.Marshal(stats)
		if err != nil {
			return nil, fmt.Errorf("run record stats: %w", err)
		}
		r.Stats = b
	}
	return r, nil
}

// SetMetrics attaches the run's histogram payload (any JSON-marshalable
// value; in practice *machine.Metrics) to the record. A nil value clears
// it.
func (r *RunRecord) SetMetrics(v any) error {
	if v == nil {
		r.Metrics = nil
		return nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("run record metrics: %w", err)
	}
	r.Metrics = b
	return nil
}

// DecodedEvents returns the record's retained events, skipping any with
// unknown kinds (forward compatibility).
func (r *RunRecord) DecodedEvents() []Event {
	out := make([]Event, 0, len(r.Events))
	for _, re := range r.Events {
		if e, ok := re.Event(); ok {
			out = append(out, e)
		}
	}
	return out
}

// WriteFile serializes the record as indented JSON ("-" writes to stdout).
func (r *RunRecord) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadRunRecord loads a run record, rejecting unknown schemas.
func ReadRunRecord(path string) (*RunRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &RunRecord{}
	if err := json.Unmarshal(b, r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != RecordSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, RecordSchema)
	}
	return r, nil
}
